#include "runtime/fork_join_executor.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "runtime/dag_dataflow.hpp"
#include "runtime/dag_verify.hpp"
#include "runtime/thread_pool_executor.hpp"

namespace hatrix::rt {

ForkJoinExecutor::ForkJoinExecutor(int num_workers)
    : num_workers_(num_workers),
      verify_dag_(verify_dag_default()),
      analyze_dag_(analyze_dag_default()) {
  HATRIX_CHECK(num_workers >= 1, "executor needs at least one worker");
}

ExecutionStats ForkJoinExecutor::run(const TaskGraph& graph,
                                     std::exception_ptr* error_out) {
  if (verify_dag_) (void)verify_dag(graph);
  if (analyze_dag_) (void)analyze_dag(graph);
  const auto n = static_cast<std::size_t>(graph.num_tasks());
  ExecutionStats stats;
  stats.workers = num_workers_;
  stats.traces.resize(n);
  stats.worker_discovery.assign(static_cast<std::size_t>(num_workers_), 0.0);
  if (n == 0) return stats;

  // Check the fork-join invariant: edges never point to an earlier phase.
  for (std::size_t t = 0; t < n; ++t)
    for (TaskId s : graph.successors()[t])
      HATRIX_CHECK(graph.tasks()[static_cast<std::size_t>(s)].phase >=
                       graph.tasks()[t].phase,
                   "fork-join executor: dependency crosses phases backwards");

  // Group tasks by phase, preserving insertion order.
  std::map<int, std::vector<TaskId>> phases;
  for (std::size_t t = 0; t < n; ++t)
    phases[graph.tasks()[t].phase].push_back(static_cast<TaskId>(t));

  // Last-use early release, at barrier granularity: after a phase joins,
  // every access its tasks declared has completed, so the coordinating
  // thread drains the release schedule for the whole phase at once. Plain
  // counters suffice — nothing runs concurrently with the barrier.
  const bool do_release = static_cast<bool>(graph.release_hook());
  const ReleasePlan plan = do_release ? release_plan(graph) : ReleasePlan{};
  std::vector<int> release_remaining(plan.initial_uses);
  auto release_phase = [&](const std::vector<TaskId>& ids) {
    if (!do_release) return;
    for (TaskId id : ids)
      for (DataId d : plan.task_data[static_cast<std::size_t>(id)])
        if (--release_remaining[static_cast<std::size_t>(d)] == 0)
          graph.release_hook()(d);
  };

  const auto t0 = std::chrono::steady_clock::now();
  auto now_seconds = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  // Execute each phase as its own sub-graph through the asynchronous
  // executor, with a barrier (the join) between phases.
  std::exception_ptr first_error;
  for (const auto& [phase, ids] : phases) {
    // The per-phase sub-graph re-derivation IS this executor's task
    // discovery: like a DTD process re-discovering the graph, the
    // coordinating thread replays every insertion (and its dependency
    // inference) once per phase. Charge it to worker 0.
    const double t_discover = now_seconds();
    TaskGraph sub;
    // Recreate accesses so intra-phase dependencies survive; data ids are
    // shared with the parent graph (same registration order).
    for (const auto& d : graph.data()) sub.register_data(d.name, d.bytes, d.owner);
    for (TaskId id : ids) {
      const Task& t = graph.tasks()[static_cast<std::size_t>(id)];
      Task copy;
      copy.name = t.name;
      copy.kind = t.kind;
      copy.dims = t.dims;
      copy.work = t.work;
      copy.accesses = t.accesses;
      copy.priority = t.priority;
      copy.phase = t.phase;
      sub.insert_task(std::move(copy));
    }
    stats.worker_discovery[0] += now_seconds() - t_discover;
    const double phase_start = now_seconds();
    ThreadPoolExecutor pool(num_workers_);
    // The whole graph was already verified/analyzed above; the per-phase
    // sub-graphs re-derive their edges from the same access sets but carry
    // no input/output marks or release hook.
    pool.set_verify_dag(false);
    pool.set_analyze_dag(false);
    std::exception_ptr phase_error;
    ExecutionStats phase_stats = pool.run(sub, &phase_error);
    // Splice the phase trace back into global task ids / global clock.
    // Tasks the inner executor never ran (possible when a phase fails) keep
    // their default unstamped trace.
    for (std::size_t k = 0; k < ids.size(); ++k) {
      const auto& tr = phase_stats.traces[k];
      if (tr.task < 0) continue;
      auto& out = stats.traces[static_cast<std::size_t>(ids[k])];
      out.task = ids[k];
      out.worker = tr.worker;
      out.start = phase_start + tr.start;
      out.end = phase_start + tr.end;
    }
    for (std::size_t w = 0; w < phase_stats.worker_discovery.size(); ++w)
      stats.worker_discovery[w] += phase_stats.worker_discovery[w];
    if (phase_error) {
      // The barrier model makes error handling simple: the failing phase
      // has drained (its traces are spliced, the failing task is
      // end-stamped by the inner executor) and no later phase starts.
      first_error = phase_error;
      break;
    }
    release_phase(ids);
  }

  stats.wall_time = now_seconds();
  for (const auto& tr : stats.traces) stats.compute_total += tr.duration();
  stats.overhead_total = stats.wall_time * num_workers_ - stats.compute_total;
  for (double d : stats.worker_discovery) stats.discovery_total += d;

  if (first_error) {
    if (error_out != nullptr) {
      *error_out = first_error;
      return stats;
    }
    std::rethrow_exception(first_error);
  }
  return stats;
}

}  // namespace hatrix::rt
