// Tests for the BLAS-style kernels: gemm/syrk/trsm/trmm/gemv against naive
// references, including all transpose/side/uplo variants (parameterized).
#include <gtest/gtest.h>

#include "common/flops.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"

namespace hatrix::la {
namespace {

Matrix naive_matmul(ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb) {
  const index_t m = ta == Trans::No ? a.rows : a.cols;
  const index_t k = ta == Trans::No ? a.cols : a.rows;
  const index_t n = tb == Trans::No ? b.cols : b.rows;
  Matrix c(m, n);
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (index_t l = 0; l < k; ++l) {
        const double av = ta == Trans::No ? a(i, l) : a(l, i);
        const double bv = tb == Trans::No ? b(l, j) : b(j, l);
        s += av * bv;
      }
      c(i, j) = s;
    }
  return c;
}

class GemmVariants : public ::testing::TestWithParam<std::tuple<Trans, Trans>> {};

TEST_P(GemmVariants, MatchesNaive) {
  auto [ta, tb] = GetParam();
  Rng rng(11);
  const index_t m = 7, k = 5, n = 6;
  Matrix a = Matrix::random_normal(rng, ta == Trans::No ? m : k, ta == Trans::No ? k : m);
  Matrix b = Matrix::random_normal(rng, tb == Trans::No ? k : n, tb == Trans::No ? n : k);
  Matrix c = Matrix::random_normal(rng, m, n);
  Matrix expect = naive_matmul(a.view(), ta, b.view(), tb);
  // C := 2*op(A)op(B) + 3*C
  Matrix c_in = Matrix::from_view(c.view());
  gemm(2.0, a.view(), ta, b.view(), tb, 3.0, c.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      EXPECT_NEAR(c(i, j), 2.0 * expect(i, j) + 3.0 * c_in(i, j), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllTrans, GemmVariants,
                         ::testing::Combine(::testing::Values(Trans::No, Trans::Yes),
                                            ::testing::Values(Trans::No, Trans::Yes)));

TEST(Gemm, BetaZeroOverwritesGarbage) {
  Rng rng(12);
  Matrix a = Matrix::random_normal(rng, 3, 3);
  Matrix b = Matrix::random_normal(rng, 3, 3);
  Matrix c(3, 3);
  fill(c.view(), std::numeric_limits<double>::quiet_NaN());
  gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.0, c.view());
  Matrix expect = naive_matmul(a.view(), Trans::No, b.view(), Trans::No);
  EXPECT_LT(rel_error(expect.view(), c.view()), 1e-13);
}

TEST(Gemm, InnerDimensionMismatchThrows) {
  Matrix a(3, 4), b(5, 2), c(3, 2);
  EXPECT_THROW(gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.0, c.view()),
               Error);
}

TEST(Syrk, MatchesGemmBothOrientations) {
  Rng rng(13);
  Matrix a = Matrix::random_normal(rng, 6, 4);
  Matrix c1(6, 6), c2(4, 4);
  syrk(1.0, a.view(), Trans::No, 0.0, c1.view());
  syrk(1.0, a.view(), Trans::Yes, 0.0, c2.view());
  Matrix e1 = naive_matmul(a.view(), Trans::No, a.view(), Trans::Yes);
  Matrix e2 = naive_matmul(a.view(), Trans::Yes, a.view(), Trans::No);
  EXPECT_LT(rel_error(e1.view(), c1.view()), 1e-13);
  EXPECT_LT(rel_error(e2.view(), c2.view()), 1e-13);
}

TEST(Syrk, AccumulatesWithBeta) {
  Rng rng(14);
  Matrix a = Matrix::random_normal(rng, 5, 3);
  Matrix c = Matrix::identity(5);
  syrk(-1.0, a.view(), Trans::No, 2.0, c.view());
  Matrix expect = Matrix::identity(5);
  scale(expect.view(), 2.0);
  Matrix aat = naive_matmul(a.view(), Trans::No, a.view(), Trans::Yes);
  add_scaled(expect.view(), -1.0, aat.view());
  EXPECT_LT(rel_error(expect.view(), c.view()), 1e-13);
}

// Build a well-conditioned triangular matrix for solve tests.
Matrix make_triangular(Rng& rng, index_t n, UpLo uplo, Diag diag) {
  Matrix t = Matrix::random_normal(rng, n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      const bool keep = uplo == UpLo::Lower ? i >= j : i <= j;
      if (!keep) t(i, j) = 0.0;
    }
  for (index_t i = 0; i < n; ++i)
    t(i, i) = diag == Diag::Unit ? 1.0 : 3.0 + std::abs(t(i, i));
  return t;
}

class TrsmVariants
    : public ::testing::TestWithParam<std::tuple<Side, UpLo, Trans, Diag>> {};

TEST_P(TrsmVariants, SolvesAgainstTrmm) {
  auto [side, uplo, trans, diag] = GetParam();
  Rng rng(15);
  const index_t n = 6, nrhs = 4;
  Matrix t = make_triangular(rng, n, uplo, diag);
  Matrix b = side == Side::Left ? Matrix::random_normal(rng, n, nrhs)
                                : Matrix::random_normal(rng, nrhs, n);
  Matrix x = Matrix::from_view(b.view());
  trsm(side, uplo, trans, diag, 1.0, t.view(), x.view());
  // Verify by multiplying back with trmm.
  Matrix back = Matrix::from_view(x.view());
  trmm(side, uplo, trans, diag, 1.0, t.view(), back.view());
  EXPECT_LT(rel_error(b.view(), back.view()), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, TrsmVariants,
    ::testing::Combine(::testing::Values(Side::Left, Side::Right),
                       ::testing::Values(UpLo::Lower, UpLo::Upper),
                       ::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(Diag::NonUnit, Diag::Unit)));

class TrmmVariants
    : public ::testing::TestWithParam<std::tuple<Side, UpLo, Trans, Diag>> {};

TEST_P(TrmmVariants, MatchesDenseGemm) {
  auto [side, uplo, trans, diag] = GetParam();
  Rng rng(16);
  const index_t n = 5, other = 3;
  Matrix t = make_triangular(rng, n, uplo, diag);
  Matrix dense = Matrix::from_view(t.view());
  if (diag == Diag::Unit)
    for (index_t i = 0; i < n; ++i) dense(i, i) = 1.0;
  Matrix b = side == Side::Left ? Matrix::random_normal(rng, n, other)
                                : Matrix::random_normal(rng, other, n);
  Matrix got = Matrix::from_view(b.view());
  trmm(side, uplo, trans, diag, 1.0, t.view(), got.view());
  Matrix expect = side == Side::Left
                      ? naive_matmul(dense.view(), trans, b.view(), Trans::No)
                      : naive_matmul(b.view(), Trans::No, dense.view(), trans);
  EXPECT_LT(rel_error(expect.view(), got.view()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, TrmmVariants,
    ::testing::Combine(::testing::Values(Side::Left, Side::Right),
                       ::testing::Values(UpLo::Lower, UpLo::Upper),
                       ::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(Diag::NonUnit, Diag::Unit)));

TEST(Trsm, GarbageInOppositeTriangleIsIgnored) {
  Rng rng(17);
  Matrix t = make_triangular(rng, 5, UpLo::Lower, Diag::NonUnit);
  // Poison the strict upper triangle: trsm must never read it.
  for (index_t j = 1; j < 5; ++j)
    for (index_t i = 0; i < j; ++i) t(i, j) = std::numeric_limits<double>::quiet_NaN();
  Matrix b = Matrix::random_normal(rng, 5, 2);
  Matrix x = Matrix::from_view(b.view());
  trsm(Side::Left, UpLo::Lower, Trans::No, Diag::NonUnit, 1.0, t.view(), x.view());
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < 5; ++i) EXPECT_FALSE(std::isnan(x(i, j)));
}

TEST(Gemv, BothTransposes) {
  Rng rng(18);
  Matrix a = Matrix::random_normal(rng, 4, 3);
  std::vector<double> x{1.0, -2.0, 0.5};
  std::vector<double> y(4, 1.0);
  gemv(1.0, a.view(), Trans::No, x.data(), 2.0, y.data());
  for (index_t i = 0; i < 4; ++i) {
    double s = 2.0;
    for (index_t j = 0; j < 3; ++j) s += a(i, j) * x[static_cast<std::size_t>(j)];
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], s, 1e-13);
  }
  std::vector<double> xt{1.0, 2.0, 3.0, 4.0};
  std::vector<double> yt(3, 0.0);
  gemv(1.0, a.view(), Trans::Yes, xt.data(), 0.0, yt.data());
  for (index_t j = 0; j < 3; ++j) {
    double s = 0.0;
    for (index_t i = 0; i < 4; ++i) s += a(i, j) * xt[static_cast<std::size_t>(i)];
    EXPECT_NEAR(yt[static_cast<std::size_t>(j)], s, 1e-13);
  }
}

TEST(Blas, FlopCountGemmCubicScaling) {
  Rng rng(19);
  Matrix a = Matrix::random_normal(rng, 32, 32);
  Matrix c(32, 32);
  hatrix::flops::reset();
  gemm(1.0, a.view(), Trans::No, a.view(), Trans::No, 0.0, c.view());
  EXPECT_EQ(hatrix::flops::total(), 2ull * 32 * 32 * 32);
}

}  // namespace
}  // namespace hatrix::la
