#include "distsim/des.hpp"

#include <algorithm>
#include <map>
#include <queue>

#include "common/error.hpp"

namespace hatrix::distsim {

namespace {

/// Reconstruct the producing task of every read access (the TaskGraph keeps
/// only the collapsed edge list): walk tasks in insertion order tracking the
/// last writer per data block, exactly as the DTD inference did.
struct CommEdge {
  rt::TaskId from;
  rt::TaskId to;
  std::int64_t bytes;
};

std::vector<CommEdge> data_flow_edges(const rt::TaskGraph& graph) {
  std::vector<rt::TaskId> last_writer(graph.data().size(), -1);
  std::vector<CommEdge> edges;
  for (const auto& t : graph.tasks()) {
    // Aggregate per (producer -> this task) over all read blocks.
    std::map<rt::TaskId, std::int64_t> incoming;
    for (const auto& [d, mode] : t.accesses) {
      const rt::TaskId w = last_writer[static_cast<std::size_t>(d)];
      if (w >= 0 && w != t.id) incoming[w] += graph.data(d).bytes;
      if (rt::is_write(mode)) last_writer[static_cast<std::size_t>(d)] = t.id;
    }
    for (const auto& [w, bytes] : incoming) edges.push_back({w, t.id, bytes});
  }
  return edges;
}

/// Event-queue entry: a task whose dependencies are all satisfied, keyed by
/// the time they were satisfied (earlier first; priority breaks ties).
struct ReadyEntry {
  double time;
  int priority;
  rt::TaskId task;
  bool operator>(const ReadyEntry& o) const {
    if (time != o.time) return time > o.time;
    if (priority != o.priority) return priority < o.priority;
    return task > o.task;
  }
};

}  // namespace

double SimResult::compute_per_worker(const SimConfig& cfg) const {
  double total = 0.0;
  for (double c : compute) total += c;
  const double workers = static_cast<double>(cfg.procs) * cfg.cores_per_proc;
  return workers > 0 ? total / workers : 0.0;
}

double SimResult::overhead_per_worker(const SimConfig& cfg) const {
  // Everything a worker spent not inside a task body, as in the paper's
  // PaRSEC instrumentation: scheduling, waiting on dependencies and
  // messages, graph discovery.
  return makespan - compute_per_worker(cfg);
}

double SimResult::mpi_per_process(const SimConfig& cfg) const {
  double total = 0.0;
  for (double m : msg_time) total += m;
  return cfg.procs > 0 ? total / cfg.procs : 0.0;
}

CommStats count_messages(const rt::TaskGraph& graph, const Mapping& mapping) {
  CommStats out;
  for (const auto& e : data_flow_edges(graph)) {
    const int ps = mapping.task_owner[static_cast<std::size_t>(e.from)];
    const int pd = mapping.task_owner[static_cast<std::size_t>(e.to)];
    if (ps == pd) continue;
    ++out.messages;
    out.bytes += e.bytes;
  }
  return out;
}

SimResult simulate(const rt::TaskGraph& graph, const Mapping& mapping,
                   const CostModel& cost, const SimConfig& cfg) {
  const auto n = static_cast<std::size_t>(graph.num_tasks());
  HATRIX_CHECK(mapping.task_owner.size() == n, "mapping/graph size mismatch");
  HATRIX_CHECK(cfg.procs >= 1 && cfg.cores_per_proc >= 1, "bad sim config");

  SimResult res;
  res.compute.assign(static_cast<std::size_t>(cfg.procs), 0.0);
  res.msg_time.assign(static_cast<std::size_t>(cfg.procs), 0.0);
  if (n == 0) return res;

  // Incoming data-flow messages per task.
  std::vector<std::vector<CommEdge>> incoming(n);
  for (const auto& e : data_flow_edges(graph))
    incoming[static_cast<std::size_t>(e.to)].push_back(e);

  // Per-process state.
  std::vector<std::vector<double>> core_free(
      static_cast<std::size_t>(cfg.procs),
      std::vector<double>(static_cast<std::size_t>(cfg.cores_per_proc), 0.0));
  std::vector<double> nic_send(static_cast<std::size_t>(cfg.procs), 0.0);
  std::vector<double> nic_recv(static_cast<std::size_t>(cfg.procs), 0.0);
  std::vector<double> launch_clock(static_cast<std::size_t>(cfg.procs), 0.0);

  // Runtime startup: under DTD every process discovers the *entire* task
  // graph before any local task can launch (Sec. 5.3.3); under PTG each
  // process only generates its own tasks. Fork-join runtimes pay neither.
  if (cfg.model == ExecModel::AsyncDtd) {
    const double discovery =
        cfg.overhead.discovery_per_task * static_cast<double>(n);
    std::fill(launch_clock.begin(), launch_clock.end(), discovery);
  } else if (cfg.model == ExecModel::AsyncPtg) {
    std::vector<std::int64_t> local(static_cast<std::size_t>(cfg.procs), 0);
    for (std::size_t t = 0; t < n; ++t) ++local[static_cast<std::size_t>(mapping.task_owner[t])];
    for (int p = 0; p < cfg.procs; ++p)
      launch_clock[static_cast<std::size_t>(p)] =
          cfg.overhead.discovery_per_task * static_cast<double>(local[static_cast<std::size_t>(p)]);
  }

  std::vector<double> finish(n, 0.0);
  std::vector<int> remaining(graph.in_degree());
  std::vector<double> dep_ready(n, 0.0);

  // Group tasks by phase for the fork-join barriers. AsyncDtd treats the
  // whole graph as one phase.
  std::map<int, std::vector<rt::TaskId>> phases;
  if (cfg.model == ExecModel::ForkJoin) {
    for (std::size_t t = 0; t < n; ++t)
      phases[graph.tasks()[t].phase].push_back(static_cast<rt::TaskId>(t));
  } else {
    auto& all = phases[0];
    all.reserve(n);
    for (std::size_t t = 0; t < n; ++t) all.push_back(static_cast<rt::TaskId>(t));
  }

  double phase_floor = 0.0;
  bool first_phase = true;
  for (const auto& [phase_tag, ids] : phases) {
    (void)phase_tag;
    if (cfg.model == ExecModel::ForkJoin && !first_phase) {
      // Barrier + ScaLAPACK-style redistribution into the next level's
      // layout. Every process sits in this collective: it is MPI time.
      const double coll = cfg.network.barrier_time(cfg.procs) +
                          cfg.overhead.forkjoin_redist_alpha * cfg.procs;
      phase_floor = res.makespan + coll;
      for (auto& m : res.msg_time) m += coll;
    }
    first_phase = false;

    // Event loop over this phase (the whole graph for AsyncDtd): pop the
    // earliest dependency-satisfied task, place it on its process.
    std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, std::greater<>> ready;
    for (rt::TaskId id : ids)
      if (remaining[static_cast<std::size_t>(id)] == 0)
        ready.push({std::max(dep_ready[static_cast<std::size_t>(id)], phase_floor),
                    graph.tasks()[static_cast<std::size_t>(id)].priority, id});

    while (!ready.empty()) {
      const auto entry = ready.top();
      ready.pop();
      const auto t = static_cast<std::size_t>(entry.task);
      const auto& task = graph.tasks()[t];
      const int p = mapping.task_owner[t];

      double r = std::max(entry.time, phase_floor);

      // Cross-process inputs: serialize on sender and receiver NICs.
      for (const auto& e : incoming[t]) {
        const int ps = mapping.task_owner[static_cast<std::size_t>(e.from)];
        if (ps == p) continue;
        const double t0 = std::max({finish[static_cast<std::size_t>(e.from)],
                                    nic_send[static_cast<std::size_t>(ps)],
                                    nic_recv[static_cast<std::size_t>(p)]});
        const double dt = cfg.network.transfer_time(e.bytes);
        nic_send[static_cast<std::size_t>(ps)] = t0 + dt;
        nic_recv[static_cast<std::size_t>(p)] = t0 + dt;
        res.msg_time[static_cast<std::size_t>(p)] += dt;
        ++res.messages;
        res.bytes += e.bytes;
        r = std::max(r, t0 + dt);
      }

      // The process's scheduler launches one task at a time.
      const double launch = std::max(r, launch_clock[static_cast<std::size_t>(p)]);
      launch_clock[static_cast<std::size_t>(p)] =
          launch + cfg.overhead.schedule_per_task;

      auto& cores = core_free[static_cast<std::size_t>(p)];
      auto it = std::min_element(cores.begin(), cores.end());
      const double start = std::max(launch, *it);
      const double dur = cost.seconds(task);
      *it = start + dur;
      finish[t] = start + dur;
      res.compute[static_cast<std::size_t>(p)] += dur;
      res.makespan = std::max(res.makespan, finish[t]);

      for (rt::TaskId s : graph.successors()[t]) {
        auto su = static_cast<std::size_t>(s);
        dep_ready[su] = std::max(dep_ready[su], finish[t]);
        if (--remaining[su] == 0 &&
            (cfg.model != ExecModel::ForkJoin ||
             graph.tasks()[su].phase == phase_tag))
          ready.push({std::max(dep_ready[su], phase_floor),
                      graph.tasks()[su].priority, s});
      }
    }
  }
  return res;
}

}  // namespace hatrix::distsim
