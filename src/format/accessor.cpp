#include "format/accessor.hpp"

#include "common/error.hpp"

namespace hatrix::fmt {

void DenseAccessor::fill_block(index_t row0, index_t col0, la::MatrixView out) const {
  la::copy(a_.block(row0, col0, out.rows, out.cols), out);
}

Matrix DenseAccessor::gather(const std::vector<index_t>& rows,
                             const std::vector<index_t>& cols) const {
  Matrix out(static_cast<index_t>(rows.size()), static_cast<index_t>(cols.size()));
  for (std::size_t j = 0; j < cols.size(); ++j)
    for (std::size_t i = 0; i < rows.size(); ++i)
      out(static_cast<index_t>(i), static_cast<index_t>(j)) = a_(rows[i], cols[j]);
  return out;
}

void KernelAccessor::fill_block(index_t row0, index_t col0, la::MatrixView out) const {
  km_->fill_block(row0, col0, out);
}

Matrix KernelAccessor::gather(const std::vector<index_t>& rows,
                              const std::vector<index_t>& cols) const {
  Matrix out(static_cast<index_t>(rows.size()), static_cast<index_t>(cols.size()));
  for (std::size_t j = 0; j < cols.size(); ++j)
    for (std::size_t i = 0; i < rows.size(); ++i)
      out(static_cast<index_t>(i), static_cast<index_t>(j)) =
          km_->entry(rows[i], cols[j]);
  return out;
}

}  // namespace hatrix::fmt
