#pragma once
/// \file accessor.hpp
/// \brief Uniform block access to the matrix being compressed.
///
/// The HSS/BLR2/BLR builders only ever ask for sub-blocks and scattered
/// (row-set x column-set) gathers. A DenseAccessor serves them from an
/// explicit matrix (tests, small problems); a KernelAccessor evaluates the
/// Green's function on demand so large problems never materialize N^2
/// entries.

#include <vector>

#include "kernels/kernel_matrix.hpp"
#include "linalg/matrix.hpp"

namespace hatrix::fmt {

using la::index_t;
using la::Matrix;

/// Read-only block access to a (symmetric) N x N matrix.
class BlockAccessor {
 public:
  virtual ~BlockAccessor() = default;

  /// Matrix dimension N.
  [[nodiscard]] virtual index_t size() const = 0;

  /// Fill `out` with A([row0, row0+out.rows) x [col0, col0+out.cols)).
  virtual void fill_block(index_t row0, index_t col0, la::MatrixView out) const = 0;

  /// Gather A(rows, cols) for arbitrary index sets.
  [[nodiscard]] virtual Matrix gather(const std::vector<index_t>& rows,
                                      const std::vector<index_t>& cols) const = 0;

  /// Contiguous block as a new matrix.
  [[nodiscard]] Matrix block(index_t row0, index_t col0, index_t rows,
                             index_t cols) const {
    Matrix out(rows, cols);
    fill_block(row0, col0, out.view());
    return out;
  }
};

/// Accessor over an explicit dense matrix (not owned).
class DenseAccessor final : public BlockAccessor {
 public:
  /// Wrap a dense matrix view; the storage must outlive the accessor.
  explicit DenseAccessor(la::ConstMatrixView a) : a_(a) {}

  /// \copydoc BlockAccessor::size
  [[nodiscard]] index_t size() const override { return a_.rows; }
  /// \copydoc BlockAccessor::fill_block
  void fill_block(index_t row0, index_t col0, la::MatrixView out) const override;
  /// \copydoc BlockAccessor::gather
  [[nodiscard]] Matrix gather(const std::vector<index_t>& rows,
                              const std::vector<index_t>& cols) const override;

 private:
  la::ConstMatrixView a_;
};

/// Accessor that evaluates a kernel matrix entry-by-entry (matrix-free).
class KernelAccessor final : public BlockAccessor {
 public:
  /// Wrap a kernel matrix; it must outlive the accessor.
  explicit KernelAccessor(const kernels::KernelMatrix& km) : km_(&km) {}

  /// \copydoc BlockAccessor::size
  [[nodiscard]] index_t size() const override { return km_->size(); }
  /// \copydoc BlockAccessor::fill_block
  void fill_block(index_t row0, index_t col0, la::MatrixView out) const override;
  /// \copydoc BlockAccessor::gather
  [[nodiscard]] Matrix gather(const std::vector<index_t>& rows,
                              const std::vector<index_t>& cols) const override;

 private:
  const kernels::KernelMatrix* km_;
};

}  // namespace hatrix::fmt
