#include "lowrank/adaptive.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "lowrank/compress.hpp"

namespace hatrix::lr {

namespace {

/// Orthogonalize the columns of `y` against the basis `q` (classical
/// Gram-Schmidt, applied twice for stability): y -= q (qᵀ y).
void project_out(la::ConstMatrixView q, la::MatrixView y) {
  if (q.cols == 0) return;
  for (int pass = 0; pass < 2; ++pass) {
    Matrix c = la::matmul(q, y, la::Trans::Yes, la::Trans::No);
    la::gemm(-1.0, q, la::Trans::No, c.view(), la::Trans::No, 1.0, y);
  }
}

}  // namespace

AdaptiveLowRank rsvd_adaptive(la::ConstMatrixView a, index_t max_rank, double tol,
                              Rng& rng, index_t block, index_t probe_cols) {
  const index_t m = a.rows, n = a.cols;
  max_rank = std::min({max_rank, m, n});
  AdaptiveLowRank out;
  if (m == 0 || n == 0 || max_rank == 0) return out;
  block = std::max<index_t>(1, block);
  probe_cols = std::max<index_t>(1, probe_cols);

  Matrix q(m, 0);
  for (;;) {
    const index_t b = std::min(block, max_rank - q.cols());
    if (b <= 0) break;
    Matrix omega = Matrix::random_normal(rng, n, b);
    Matrix y = la::matmul(a, omega.view());
    project_out(q.view(), y.view());
    auto qy = la::qr(y.view());
    q = la::hconcat({q.view(), qy.q.view()});
    ++out.rounds;

    if (q.cols() >= max_rank) {
      // Rank budget exhausted: report the probe residual anyway.
      Matrix p = la::matmul(a, Matrix::random_normal(rng, n, probe_cols).view());
      const double pn = la::norm_fro(p.view());
      project_out(q.view(), p.view());
      out.residual = pn > 0.0 ? la::norm_fro(p.view()) / pn : 0.0;
      break;
    }
    // Fresh probe: the projection residual of new random samples estimates
    // ||A - Q Qᵀ A||_F / ||A||_F without touching the accepted sketch.
    Matrix p = la::matmul(a, Matrix::random_normal(rng, n, probe_cols).view());
    const double pn = la::norm_fro(p.view());
    project_out(q.view(), p.view());
    out.residual = pn > 0.0 ? la::norm_fro(p.view()) / pn : 0.0;
    if (out.residual <= tol) break;
  }

  // B = Qᵀ A, SVD-truncate the small core at the same relative tolerance.
  Matrix bmat = la::matmul(q.view(), a, la::Trans::Yes, la::Trans::No);
  LowRank small = truncated_svd(bmat.view(), max_rank, tol);
  out.lr = LowRank(la::matmul(q.view(), small.u.view()), std::move(small.v));
  return out;
}

AdaptiveLowRank aca_adaptive(const EntryFn& entry, index_t rows, index_t cols,
                             index_t max_rank, double tol, Rng& rng,
                             index_t probe_rows, index_t probe_cols) {
  max_rank = std::min({max_rank, rows, cols});
  AdaptiveLowRank out;
  if (rows == 0 || cols == 0 || max_rank == 0) return out;
  probe_rows = std::min(probe_rows, rows);
  probe_cols = std::min(probe_cols, cols);

  double inner_tol = tol;
  for (;;) {
    out.lr = aca(entry, rows, cols, max_rank, inner_tol);
    ++out.rounds;

    // Probe: exact residual on a random row x column entry sample.
    std::vector<index_t> ri(static_cast<std::size_t>(probe_rows));
    std::vector<index_t> cj(static_cast<std::size_t>(probe_cols));
    for (auto& i : ri) i = rng.index(rows);
    for (auto& j : cj) j = rng.index(cols);
    double num = 0.0, den = 0.0;
    for (index_t i : ri) {
      for (index_t j : cj) {
        const double exact = entry(i, j);
        double approx = 0.0;
        for (index_t k = 0; k < out.lr.rank(); ++k)
          approx += out.lr.u(i, k) * out.lr.v(j, k);
        num += (exact - approx) * (exact - approx);
        den += exact * exact;
      }
    }
    out.residual = den > 0.0 ? std::sqrt(num / den) : 0.0;
    if (out.residual <= tol || out.lr.rank() >= max_rank) break;
    // The heuristic stopping rule quit early: tighten it and rebuild.
    inner_tol = inner_tol > 0.0 ? inner_tol * 0.1 : 0.0;
    if (inner_tol == 0.0) break;  // already running to max_rank
  }
  return out;
}

namespace {

Matrix interp_error(la::ConstMatrixView p, la::ConstMatrixView x,
                    const std::vector<index_t>& sel) {
  Matrix e = Matrix::from_view(p);
  if (!sel.empty()) {
    Matrix psk = la::gather_rows(p, sel);
    la::gemm(-1.0, x, la::Trans::No, psk.view(), la::Trans::No, 1.0, e.view());
  }
  return e;
}

}  // namespace

double interp_residual(la::ConstMatrixView p, la::ConstMatrixView x,
                       const std::vector<index_t>& sel) {
  if (p.rows == 0 || p.cols == 0) return 0.0;
  const double pn = la::norm_fro(p);
  if (pn == 0.0) return 0.0;
  Matrix e = interp_error(p, x, sel);
  return la::norm_fro(e.view()) / pn;
}

double interp_residual_maxcol(la::ConstMatrixView p, la::ConstMatrixView x,
                              const std::vector<index_t>& sel) {
  if (p.rows == 0 || p.cols == 0) return 0.0;
  Matrix e = interp_error(p, x, sel);
  double worst = 0.0;
  for (index_t j = 0; j < e.cols(); ++j) {
    double s = 0.0;
    for (index_t i = 0; i < e.rows(); ++i) s += e(i, j) * e(i, j);
    worst = std::max(worst, s);
  }
  return std::sqrt(worst);
}

}  // namespace hatrix::lr
