#pragma once
/// \file trace.hpp
/// \brief Execution traces and the compute/overhead breakdown of Fig. 10.
///
/// Both executors record one record per task (who ran it, when). The
/// aggregate statistics reproduce the paper's instrumentation: "COMPUTE TASK
/// TIME" is per-worker time inside task bodies; "RUNTIME OVERHEAD" is
/// everything else the worker spent while the executor was live (scheduling,
/// queue contention, dependency management, idling on unmet dependencies).

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/task_graph.hpp"

namespace hatrix::rt {

/// Timing record for one executed task (seconds relative to executor start).
struct TaskTrace {
  TaskId task = -1;   ///< which task ran
  int worker = -1;    ///< worker thread that ran it
  double start = 0.0; ///< start time (s since executor start)
  double end = 0.0;   ///< end time (s since executor start)

  /// Time spent inside the task body.
  [[nodiscard]] double duration() const { return end - start; }
};

/// Aggregate execution statistics.
struct ExecutionStats {
  double wall_time = 0.0;            ///< executor start to last task end
  int workers = 0;                   ///< worker thread count
  double compute_total = 0.0;        ///< sum of task durations over all workers
  double overhead_total = 0.0;       ///< workers*wall - compute
  std::vector<TaskTrace> traces;     ///< one record per executed task

  /// Time all workers spent on task discovery and ready-queue management:
  /// popping/stealing ready tasks, releasing dependents when a task
  /// finishes, (fork-join) re-deriving the per-phase sub-graphs, and
  /// (priority) computing the cost-weighted bottom levels. This is the
  /// measured shared-memory analogue of the paper's DTD discovery overhead
  /// (Sec. 5.3.3); it deliberately excludes idle waiting, which
  /// overhead_total already accounts for.
  double discovery_total = 0.0;
  /// Per-worker slice of discovery_total (size == workers). The fork-join
  /// executor charges its per-phase sub-graph re-derivation to worker 0,
  /// the coordinating thread that performs it.
  std::vector<double> worker_discovery;

  /// Average per-worker compute time (the paper's "COMPUTE TASK TIME").
  [[nodiscard]] double compute_per_worker() const {
    return workers > 0 ? compute_total / workers : 0.0;
  }
  /// Average per-worker overhead (the paper's "RUNTIME OVERHEAD").
  [[nodiscard]] double overhead_per_worker() const {
    return workers > 0 ? overhead_total / workers : 0.0;
  }
  /// Average per-worker discovery / ready-queue time.
  [[nodiscard]] double discovery_per_worker() const {
    return workers > 0 ? discovery_total / workers : 0.0;
  }
  /// Fraction of total worker-seconds spent on discovery — the ablation's
  /// "DTD overhead share" once the DAG emission time is added by the caller.
  [[nodiscard]] double discovery_share() const {
    const double denom = wall_time * workers;
    return denom > 0.0 ? discovery_total / denom : 0.0;
  }
};

/// Validate a trace against the graph: every task ran exactly once, no task
/// started before all of its predecessors ended, no two tasks overlap on the
/// same worker (per-worker trace streams are disjoint), and the discovery
/// timer totals stay within the wall-clock bounds
/// (0 <= discovery_total <= workers * wall_time). Returns an empty string
/// when consistent, else a description of the first violation.
std::string validate_trace(const TaskGraph& graph, const ExecutionStats& stats);

/// Duration-weighted critical path of an executed graph: the cost of the
/// most expensive dependency chain with every task weighted by its measured
/// duration. critical_path_time / wall_time is the critical-path
/// utilization — 1.0 means the executor ran the critical path back-to-back
/// with zero stall, lower means scheduling stalls stretched it.
double critical_path_time(const TaskGraph& graph, const ExecutionStats& stats);

/// Export a trace as Chrome/Perfetto trace-event JSON (open in
/// chrome://tracing or ui.perfetto.dev): one row per worker, one slice per
/// task.
std::string to_chrome_trace(const TaskGraph& graph, const ExecutionStats& stats);

/// Export the DAG as Graphviz DOT (tasks colored by kind) for inspection of
/// small graphs — the Fig. 6 / Fig. 8 pictures, generated from real graphs.
std::string to_dot(const TaskGraph& graph);

}  // namespace hatrix::rt
