#pragma once
/// \file hss_builder.hpp
/// \brief HSS construction from a block accessor (Sec. 2 of the paper).
///
/// Algorithm: interpolative-decomposition skeletonization with per-node
/// orthonormalization.
///
/// * Leaf i: the shared row basis comes from compressing the off-diagonal
///   block row A(I_i, I_i^c) (Eq. 2) — either against the full complement
///   (`sample_cols == 0`, exact) or against a random column sample
///   (matrix-free O(N) construction, the same idea STRUMPACK's randomized
///   construction uses). A row-ID selects `rank` skeleton rows and the
///   interpolation factor is QR-orthonormalized into U_i; the R factor is
///   retained so upper levels can work on skeleton rows only.
/// * Internal node p: the transfer basis W_p (Eq. 6 nesting) is built from
///   the union of the children's skeleton rows, so each level costs O(rank)
///   kernel evaluations per node.
/// * Couplings: exact U_jᵀ A(I_j, I_i) U_i at the leaf level; skeleton-
///   compressed R̄_j A(sk_j, sk_i) R̄_iᵀ at upper levels.

#include <memory>

#include "format/accessor.hpp"
#include "format/hss.hpp"

namespace hatrix::fmt {

/// Number of tree levels build_hss will use for a given size/leaf choice.
int hss_levels(index_t n, index_t leaf_size);

/// Build a symmetric HSS approximation of the matrix behind `acc`.
HSSMatrix build_hss(const BlockAccessor& acc, const HSSOptions& opts);

/// Structure-only HSS "skeleton": index intervals and ranks are assigned
/// (uniform `rank`, clipped by block sizes) but no numerical data is
/// allocated. Used to emit costing-only ULV DAGs at scales where
/// materializing the matrix is pointless — the discrete-event simulator
/// needs shapes, not numbers.
HSSMatrix make_hss_skeleton(index_t n, index_t leaf_size, index_t rank);

/// Random symmetric positive definite HSS matrix with the given tree shape:
/// random orthonormal bases and couplings, leaf diagonals shifted by a bound
/// on the off-diagonal spectral mass so the represented operator is SPD by
/// construction. Lets property tests exercise the ULV machinery on matrices
/// that did not come from any kernel or builder.
HSSMatrix make_random_spd_hss(index_t n, index_t leaf_size, index_t rank, Rng& rng);

}  // namespace hatrix::fmt
