// Regression for the ROADMAP open item that motivated the accuracy guard:
// sampled HSS construction of the short-correlation Matérn covariance
// (N=8192 scattered sites, the kriging_matern setting) with a fixed 512
// column sample silently destroys positive definiteness — the failure only
// surfaces as a "not positive definite" pivot error deep inside the ULV
// Cholesky. The guarded adaptive builder must (a) reproduce that diagnosis
// honestly when disabled and (b) recover automatically when enabled, with a
// solve residual at the direct-solver level.
//
// Carries the `slow` label: the recovery build grows node samples toward
// the full complement wherever the rank-80 truncation floor sits above the
// guard tolerance, which costs tens of seconds at this N.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "format/accessor.hpp"
#include "format/hss_builder.hpp"
#include "format/hss_builder_tasks.hpp"
#include "geometry/cluster_tree.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "ulv/hss_ulv.hpp"

namespace hatrix {
namespace {

using la::index_t;

/// The kriging_matern example's covariance: Matérn(sigma=1, mu=0.03,
/// rho=0.5) on N scattered sites with a 1e-4 nugget.
struct KrigingProblem {
  geom::Domain sites;
  std::unique_ptr<geom::ClusterTree> tree;
  kernels::Matern cov{1.0, 0.03, 0.5};
  std::unique_ptr<kernels::KernelMatrix> km;

  explicit KrigingProblem(index_t n) {
    Rng rng(11);
    sites = geom::random2d(n, rng);
    tree = std::make_unique<geom::ClusterTree>(sites, 256);
    km = std::make_unique<kernels::KernelMatrix>(cov, tree->points(), 1e-4);
  }
};

TEST(HssGuardRegression, UnguardedUnderSamplingDestroysPositiveDefiniteness) {
  KrigingProblem p(8192);
  fmt::KernelAccessor acc(*p.km);
  // guard_tol = 0: the pre-guard behavior — 512 sampled columns per node,
  // trusted blindly. Construction "succeeds"...
  fmt::HSSMatrix h = fmt::build_hss(
      acc, {.leaf_size = 256, .max_rank = 80, .sample_cols = 512});
  // ...and the damage surfaces later, in the Cholesky layer.
  EXPECT_THROW(ulv::HSSULV::factorize(h), Error);
}

TEST(HssGuardRegression, AdaptiveGuardRecoversFactorizationAndResidual) {
  KrigingProblem p(8192);
  fmt::KernelAccessor acc(*p.km);
  fmt::HSSBuildReport rep;
  // Same 512 initial samples; the guard (at the nugget scale, the smallest
  // eigenvalue of the covariance) grows each node until its probe passes.
  fmt::HSSMatrix h = fmt::build_hss_parallel(
      acc,
      {.leaf_size = 256, .max_rank = 80, .sample_cols = 512, .guard_tol = 1e-4},
      2, &rep);
  EXPECT_GT(rep.total_growths, 0);
  EXPECT_GT(rep.max_samples, 512);

  auto f = ulv::HSSULV::factorize(h);  // must not throw
  Rng rng(7);
  std::vector<double> b = rng.normal_vector(8192);
  EXPECT_LT(ulv::ulv_solve_error(h, f, b), 1e-6);
}

}  // namespace
}  // namespace hatrix
