#include "common/flops.hpp"

#include <atomic>
#include <mutex>
#include <vector>

namespace hatrix::flops {
namespace {

// Per-thread counters avoid cache-line ping-pong on the hot path; `total()`
// walks the registry under a lock (cold path, benches only).
struct Counter {
  std::atomic<std::uint64_t> value{0};
  std::atomic<bool> in_use{false};
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

// Never destroyed: detached threads may still bump their counter during
// program teardown, and the leaked vector keeps every Counter reachable.
std::vector<Counter*>& registry() {
  static auto* r = new std::vector<Counter*>();
  return *r;
}

Counter* acquire_counter() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (Counter* c : registry()) {
    if (!c->in_use.load(std::memory_order_relaxed)) {
      c->in_use.store(true, std::memory_order_relaxed);
      return c;
    }
  }
  auto* c = new Counter();
  c->in_use.store(true, std::memory_order_relaxed);
  registry().push_back(c);
  return c;
}

// Releases the slot at thread exit so the registry stays bounded by the peak
// concurrent thread count. The accumulated value is left in place: `total()`
// must keep seeing flops from threads that have already joined.
struct Slot {
  Counter* c = acquire_counter();
  ~Slot() { c->in_use.store(false, std::memory_order_relaxed); }
};

Counter& local_counter() {
  thread_local Slot slot;
  return *slot.c;
}

}  // namespace

void add(std::uint64_t n) noexcept {
  local_counter().value.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t total() noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::uint64_t sum = 0;
  for (const Counter* c : registry()) sum += c->value.load(std::memory_order_relaxed);
  return sum;
}

void reset() noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (Counter* c : registry()) c->value.store(0, std::memory_order_relaxed);
}

}  // namespace hatrix::flops
