#!/usr/bin/env sh
# Mirrors the tier-1 verification line locally.
#   scripts/check.sh        -> configure, build, run ALL test suites
#   scripts/check.sh fast   -> same, but only suites labeled `fast` (< 60 s)
set -eu

cd "$(dirname "$0")/.."

LABEL_ARGS=""
if [ "${1:-}" = "fast" ]; then
  LABEL_ARGS="-L fast"
fi

cmake -B build -S .
cmake --build build -j "$(nproc 2>/dev/null || echo 4)"
# shellcheck disable=SC2086  # LABEL_ARGS is intentionally word-split
ctest --test-dir build --output-on-failure -j "$(nproc 2>/dev/null || echo 4)" $LABEL_ARGS
