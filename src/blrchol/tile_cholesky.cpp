#include "blrchol/tile_cholesky.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"

namespace hatrix::blrchol {

index_t num_tiles(index_t n, index_t tile) {
  HATRIX_CHECK(n > 0 && tile > 0, "bad tile parameters");
  return (n + tile - 1) / tile;
}

void tile_cholesky(la::MatrixView a, index_t tile) {
  HATRIX_CHECK(a.rows == a.cols, "tile_cholesky requires a square matrix");
  const index_t n = a.rows;
  const index_t p = num_tiles(n, tile);
  auto tb = [&](index_t t) { return t * tile; };
  auto ts = [&](index_t t) { return std::min(tile, n - t * tile); };

  for (index_t k = 0; k < p; ++k) {
    la::potrf(a.block(tb(k), tb(k), ts(k), ts(k)));
    for (index_t i = k + 1; i < p; ++i) {
      la::trsm(la::Side::Right, la::UpLo::Lower, la::Trans::Yes, la::Diag::NonUnit,
               1.0, a.block(tb(k), tb(k), ts(k), ts(k)),
               a.block(tb(i), tb(k), ts(i), ts(k)));
    }
    for (index_t i = k + 1; i < p; ++i) {
      // SYRK on the diagonal tile: only the lower triangle matters; syrk
      // writes both, which later steps overwrite consistently.
      la::syrk(-1.0, a.block(tb(i), tb(k), ts(i), ts(k)), la::Trans::No, 1.0,
               a.block(tb(i), tb(i), ts(i), ts(i)));
      for (index_t j = k + 1; j < i; ++j) {
        la::gemm(-1.0, a.block(tb(i), tb(k), ts(i), ts(k)), la::Trans::No,
                 a.block(tb(j), tb(k), ts(j), ts(k)), la::Trans::Yes, 1.0,
                 a.block(tb(i), tb(j), ts(i), ts(j)));
      }
    }
  }

  for (index_t j = 1; j < n; ++j)
    for (index_t i = 0; i < j; ++i) a(i, j) = 0.0;
}

}  // namespace hatrix::blrchol
