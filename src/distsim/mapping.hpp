#pragma once
/// \file mapping.hpp
/// \brief Process distribution policies (Sec. 4.3, Fig. 7).
///
/// A mapping assigns every task (and every data block) to a process.
/// HATRIX-DTD uses a row-cyclic distribution per HSS level; STRUMPACK-style
/// execution distributes blocks block-cyclically (ScaLAPACK); LORAPO uses a
/// 2D block-cyclic tile distribution.

#include <vector>

#include "blrchol/blr_cholesky_tasks.hpp"
#include "runtime/task_graph.hpp"
#include "ulv/hss_ulv_tasks.hpp"

namespace hatrix::distsim {

/// Task-to-process assignment; data owners are written into the graph.
struct Mapping {
  int num_procs = 1;
  std::vector<int> task_owner;  ///< indexed by TaskId
};

/// HATRIX-DTD's distribution (Fig. 7): node i at every level lives on
/// process (i mod P); the merge of two children lands on the parent's
/// process. Tasks follow their output block (owner computes).
Mapping map_hss_row_cyclic(const ulv::HSSULVDag& dag, rt::TaskGraph& graph,
                           int num_procs);

/// STRUMPACK-style block-cyclic assignment: blocks are dealt round-robin in
/// registration order regardless of tree locality, which is what generates
/// the extra communication the paper discusses (Sec. 4.3).
Mapping map_hss_block_cyclic(const ulv::HSSULVDag& dag, rt::TaskGraph& graph,
                             int num_procs);

/// LORAPO's 2D block-cyclic tile distribution over a pr x pc process grid
/// (pr*pc == num_procs, chosen as square as possible).
Mapping map_blr_block_cyclic(const blrchol::BLRCholDag& dag, rt::TaskGraph& graph,
                             int num_procs);

/// Dense tile Cholesky (DPLASMA) on a 2D block-cyclic grid.
Mapping map_dense_block_cyclic(const blrchol::DenseCholDag& dag,
                               rt::TaskGraph& graph, int num_procs);

}  // namespace hatrix::distsim
