#pragma once
/// \file lu.hpp
/// \brief LU factorization with partial pivoting and general solves.

#include <vector>

#include "linalg/matrix.hpp"

namespace hatrix::la {

/// In-place LU with partial pivoting: A = P·L·U with unit-diagonal L stored
/// below the diagonal and U on/above it. Returns the pivot rows (LAPACK
/// convention: row i was swapped with piv[i]). Throws on exact singularity.
std::vector<index_t> getrf(MatrixView a);

/// Solve A·X = B given the getrf output; B is overwritten with X.
void getrs(ConstMatrixView lu, const std::vector<index_t>& piv, MatrixView b);

/// Convenience: solve a general square system; returns X.
Matrix solve(ConstMatrixView a, ConstMatrixView b);

}  // namespace hatrix::la
