#include "geometry/cluster_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace hatrix::geom {

namespace {

struct Box {
  Point lo, hi;
};

Box bounding_box(const std::vector<Point>& pts, index_t begin, index_t end) {
  Box b;
  for (int d = 0; d < 3; ++d) {
    b.lo[static_cast<std::size_t>(d)] = pts[static_cast<std::size_t>(begin)][static_cast<std::size_t>(d)];
    b.hi[static_cast<std::size_t>(d)] = b.lo[static_cast<std::size_t>(d)];
  }
  for (index_t k = begin; k < end; ++k)
    for (std::size_t d = 0; d < 3; ++d) {
      b.lo[d] = std::min(b.lo[d], pts[static_cast<std::size_t>(k)][d]);
      b.hi[d] = std::max(b.hi[d], pts[static_cast<std::size_t>(k)][d]);
    }
  return b;
}

}  // namespace

ClusterTree::ClusterTree(const Domain& domain, index_t leaf_size) {
  const index_t n = domain.size();
  HATRIX_CHECK(n > 0, "cluster tree needs a non-empty domain");
  HATRIX_CHECK(leaf_size > 0, "leaf_size must be positive");

  points_ = domain.points;
  perm_.resize(static_cast<std::size_t>(n));
  std::iota(perm_.begin(), perm_.end(), index_t{0});

  // Depth so that ceil(n / 2^L) <= leaf_size.
  max_level_ = 0;
  while ((n + (index_t{1} << max_level_) - 1) / (index_t{1} << max_level_) > leaf_size)
    ++max_level_;

  levels_.assign(static_cast<std::size_t>(max_level_) + 1, {});
  levels_[0].push_back({0, n});

  // Recursive coordinate bisection, level by level. Sorting the interval
  // along its widest axis and cutting at the midpoint keeps the tree
  // complete (sizes differ by at most one across a level).
  for (int l = 0; l < max_level_; ++l) {
    auto& next = levels_[static_cast<std::size_t>(l) + 1];
    next.reserve(levels_[static_cast<std::size_t>(l)].size() * 2);
    for (const ClusterNode& nd : levels_[static_cast<std::size_t>(l)]) {
      Box box = bounding_box(points_, nd.begin, nd.end);
      std::size_t axis = 0;
      double width = -1.0;
      for (std::size_t d = 0; d < 3; ++d) {
        const double w = box.hi[d] - box.lo[d];
        if (w > width) {
          width = w;
          axis = d;
        }
      }
      // Sort [begin, end) of (points_, perm_) jointly along the axis.
      std::vector<index_t> order(static_cast<std::size_t>(nd.size()));
      std::iota(order.begin(), order.end(), index_t{0});
      std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
        return points_[static_cast<std::size_t>(nd.begin + a)][axis] <
               points_[static_cast<std::size_t>(nd.begin + b)][axis];
      });
      std::vector<Point> tmp_pts(static_cast<std::size_t>(nd.size()));
      std::vector<index_t> tmp_perm(static_cast<std::size_t>(nd.size()));
      for (index_t k = 0; k < nd.size(); ++k) {
        tmp_pts[static_cast<std::size_t>(k)] =
            points_[static_cast<std::size_t>(nd.begin + order[static_cast<std::size_t>(k)])];
        tmp_perm[static_cast<std::size_t>(k)] =
            perm_[static_cast<std::size_t>(nd.begin + order[static_cast<std::size_t>(k)])];
      }
      std::copy(tmp_pts.begin(), tmp_pts.end(),
                points_.begin() + static_cast<std::ptrdiff_t>(nd.begin));
      std::copy(tmp_perm.begin(), tmp_perm.end(),
                perm_.begin() + static_cast<std::ptrdiff_t>(nd.begin));

      const index_t mid = nd.begin + (nd.size() + 1) / 2;
      next.push_back({nd.begin, mid});
      next.push_back({mid, nd.end});
    }
  }
}

const ClusterNode& ClusterTree::node(int level, index_t i) const {
  HATRIX_CHECK(level >= 0 && level <= max_level_, "level out of range");
  HATRIX_CHECK(i >= 0 && i < num_nodes(level), "node index out of range");
  return levels_[static_cast<std::size_t>(level)][static_cast<std::size_t>(i)];
}

double ClusterTree::diameter(int level, index_t i) const {
  const ClusterNode& nd = node(level, i);
  if (nd.size() == 0) return 0.0;
  Box b = bounding_box(points_, nd.begin, nd.end);
  double s = 0.0;
  for (std::size_t d = 0; d < 3; ++d) {
    const double w = b.hi[d] - b.lo[d];
    s += w * w;
  }
  return std::sqrt(s);
}

double ClusterTree::box_distance(int level, index_t i, index_t j) const {
  const ClusterNode& a = node(level, i);
  const ClusterNode& b = node(level, j);
  if (a.size() == 0 || b.size() == 0) return 0.0;
  Box ba = bounding_box(points_, a.begin, a.end);
  Box bb = bounding_box(points_, b.begin, b.end);
  double s = 0.0;
  for (std::size_t d = 0; d < 3; ++d) {
    const double gap = std::max({0.0, ba.lo[d] - bb.hi[d], bb.lo[d] - ba.hi[d]});
    s += gap * gap;
  }
  return std::sqrt(s);
}

bool weakly_admissible(index_t i, index_t j) { return i != j; }

bool strongly_admissible(const ClusterTree& tree, int level, index_t i, index_t j,
                         double eta) {
  if (i == j) return false;
  const double d = tree.box_distance(level, i, j);
  const double diam = std::min(tree.diameter(level, i), tree.diameter(level, j));
  return diam <= eta * d;
}

}  // namespace hatrix::geom
