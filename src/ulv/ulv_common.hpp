#pragma once
/// \file ulv_common.hpp
/// \brief Shared pieces of the BLR²-ULV and HSS-ULV factorizations.
///
/// Both algorithms repeat the same per-node step (Sec. 3, Eq. 7-12):
/// rotate the diagonal block by the full basis U_F = [Uᴿ Uˢ], partially
/// Cholesky-factorize the redundant (RR) part, and leave a Schur-complement
/// skeleton (SS) block for the next level / merge step.

#include <vector>

#include "linalg/matrix.hpp"

namespace hatrix::ulv {

using la::index_t;
using la::Matrix;

/// Per-node ULV factor: the complement basis and the partial Cholesky
/// pieces. With k = rank and m = the node's current dimension:
///   q_comp : m x (m-k)   orthonormal complement Uᴿ of the shared basis Uˢ
///   l_rr   : (m-k)x(m-k) lower Cholesky factor of Â^RR (Eq. 10)
///   l_sr   : k x (m-k)   coupling Â^SR L_RR^{-T} (Eq. 11)
/// The Schur complement Â^SS - L_SR L_SRᵀ (Eq. 12) is returned separately
/// and consumed by the merge step.
struct NodeFactor {
  Matrix q_comp;
  Matrix l_rr;
  Matrix l_sr;
  index_t m = 0;
  index_t k = 0;
};

/// Result of the per-node "diagonal product + partial factorization":
/// the factor plus the skeleton Schur complement passed to the parent.
struct PartialFactorResult {
  NodeFactor factor;
  Matrix ss_schur;  ///< k x k
};

/// Output of the "Diagonal Product" task (Fig. 8): the complement basis and
/// the rotated diagonal Â = U_Fᵀ D U_F laid out complement-first,
/// [RR SRᵀ; SR SS] (Eq. 7).
struct DiagProductResult {
  Matrix q_comp;   ///< m x (m-k)
  Matrix rotated;  ///< m x m
};

/// The "Diagonal Product" step: rotate the node's dense diagonal block by
/// [Uᴿ Uˢ]. `basis` must have orthonormal columns.
DiagProductResult diag_product(la::ConstMatrixView diag, la::ConstMatrixView basis);

/// The "Partial Factorization" step (Eq. 10-12) on an already-rotated
/// diagonal: Cholesky of the leading (m-k) RR block, the SR coupling solve,
/// and the SS Schur complement. Throws if RR is not positive definite.
PartialFactorResult partial_factor_rotated(la::ConstMatrixView rotated, index_t k,
                                           Matrix q_comp);

/// Both steps fused (the sequential path).
PartialFactorResult partial_factor(la::ConstMatrixView diag,
                                   la::ConstMatrixView basis);

/// Forward-solve bookkeeping for one node: rotated RHS pieces.
struct NodeForward {
  std::vector<double> z_r;  ///< L_RR^{-1} Qᵀ b (length m-k)
  std::vector<double> z_s;  ///< Uˢᵀ b - L_SR z_r (length k), passed up
};

/// Apply the forward step of the ULV solve at one node (Eq. 15/17 inner
/// factor): rotate the local RHS and eliminate the redundant part.
NodeForward forward_step(const NodeFactor& f, la::ConstMatrixView basis,
                         const double* b_local);

/// Apply the backward step: given the skeleton solution x_s (length k),
/// reconstruct the node-local solution x = Uᴿ x_r + Uˢ x_s (length m).
std::vector<double> backward_step(const NodeFactor& f, la::ConstMatrixView basis,
                                  const NodeForward& fw,
                                  const std::vector<double>& x_s);

/// Forward-solve bookkeeping for a whole RHS panel at one node. The panel
/// analogue of NodeForward: each column is one right-hand side, and the
/// rotations / triangular solves are applied to all of them at once
/// (gemm/trsm instead of per-column gemv/trsv), which streams the node's
/// factor blocks through the cache once per panel instead of once per RHS.
struct NodeForwardPanel {
  Matrix z_r;  ///< (m-k) x nrhs: L_RR^{-1} Qᵀ B
  Matrix z_s;  ///< k x nrhs: Uˢᵀ B - L_SR Z_R, passed up
};

/// Panel forward step: forward_step applied to every column of `b_local`
/// ((m x nrhs) view) in blocked form. Column j of the result equals
/// forward_step on column j of the panel exactly (same operation order per
/// column), so blocked and per-column solves are bit-identical.
NodeForwardPanel forward_step_panel(const NodeFactor& f, la::ConstMatrixView basis,
                                    la::ConstMatrixView b_local);

/// Panel backward step: reconstruct the node-local solution panel
/// X = Uᴿ X_R + Uˢ X_S (m x nrhs) into `x_out` from the skeleton solution
/// panel `x_s` (k x nrhs).
void backward_step_panel(const NodeFactor& f, la::ConstMatrixView basis,
                         const NodeForwardPanel& fw, la::ConstMatrixView x_s,
                         la::MatrixView x_out);

}  // namespace hatrix::ulv
