#include "linalg/blas.hpp"

#include "common/flops.hpp"

namespace hatrix::la {

namespace {

// Dimension of op(A): rows(op(A)) and cols(op(A)).
index_t op_rows(ConstMatrixView a, Trans t) { return t == Trans::No ? a.rows : a.cols; }
index_t op_cols(ConstMatrixView a, Trans t) { return t == Trans::No ? a.cols : a.rows; }

}  // namespace

void gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb,
          double beta, MatrixView c) {
  const index_t m = op_rows(a, ta), k = op_cols(a, ta);
  const index_t n = op_cols(b, tb);
  HATRIX_CHECK(op_rows(b, tb) == k, "gemm inner dimension mismatch");
  HATRIX_CHECK(c.rows == m && c.cols == n, "gemm output shape mismatch");
  flops::add(static_cast<std::uint64_t>(2) * m * n * k);

  if (beta == 0.0) {
    fill(c, 0.0);
  } else if (beta != 1.0) {
    scale(c, beta);
  }
  if (alpha == 0.0 || k == 0) return;

  // Column-major friendly loop orders; the A-no-trans cases stream down
  // columns of A and C.
  if (ta == Trans::No && tb == Trans::No) {
    for (index_t j = 0; j < n; ++j)
      for (index_t l = 0; l < k; ++l) {
        const double blj = alpha * b(l, j);
        if (blj == 0.0) continue;
        for (index_t i = 0; i < m; ++i) c(i, j) += a(i, l) * blj;
      }
  } else if (ta == Trans::No && tb == Trans::Yes) {
    for (index_t j = 0; j < n; ++j)
      for (index_t l = 0; l < k; ++l) {
        const double blj = alpha * b(j, l);
        if (blj == 0.0) continue;
        for (index_t i = 0; i < m; ++i) c(i, j) += a(i, l) * blj;
      }
  } else if (ta == Trans::Yes && tb == Trans::No) {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) {
        double s = 0.0;
        for (index_t l = 0; l < k; ++l) s += a(l, i) * b(l, j);
        c(i, j) += alpha * s;
      }
  } else {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) {
        double s = 0.0;
        for (index_t l = 0; l < k; ++l) s += a(l, i) * b(j, l);
        c(i, j) += alpha * s;
      }
  }
}

Matrix matmul(ConstMatrixView a, ConstMatrixView b, Trans ta, Trans tb) {
  Matrix c(op_rows(a, ta), op_cols(b, tb));
  gemm(1.0, a, ta, b, tb, 0.0, c.view());
  return c;
}

void syrk(double alpha, ConstMatrixView a, Trans trans, double beta, MatrixView c) {
  const index_t n = op_rows(a, trans), k = op_cols(a, trans);
  HATRIX_CHECK(c.rows == n && c.cols == n, "syrk output shape mismatch");
  flops::add(static_cast<std::uint64_t>(n) * n * k);  // symmetric half counted

  if (beta == 0.0) {
    fill(c, 0.0);
  } else if (beta != 1.0) {
    scale(c, beta);
  }
  // Compute the lower triangle, then mirror.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      double s = 0.0;
      if (trans == Trans::No) {
        for (index_t l = 0; l < k; ++l) s += a(i, l) * a(j, l);
      } else {
        for (index_t l = 0; l < k; ++l) s += a(l, i) * a(l, j);
      }
      c(i, j) += alpha * s;
    }
  }
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j + 1; i < n; ++i) c(j, i) = c(i, j);
}

void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b) {
  HATRIX_CHECK(t.rows == t.cols, "trsm triangular matrix must be square");
  const index_t n = t.rows;
  if (side == Side::Left) {
    HATRIX_CHECK(b.rows == n, "trsm dimension mismatch");
  } else {
    HATRIX_CHECK(b.cols == n, "trsm dimension mismatch");
  }
  flops::add(static_cast<std::uint64_t>(n) * n *
             (side == Side::Left ? b.cols : b.rows));
  if (alpha != 1.0) scale(b, alpha);

  // Effective orientation: solving with op(T). Lower-no-trans and
  // upper-trans both resolve forward; the other two resolve backward.
  const bool lower = (uplo == UpLo::Lower);
  const bool forward = (lower == (trans == Trans::No));
  const bool unit = (diag == Diag::Unit);

  auto tval = [&](index_t i, index_t j) {
    return trans == Trans::No ? t(i, j) : t(j, i);
  };

  if (side == Side::Left) {
    // Solve op(T) X = B, column by column of B.
    for (index_t col = 0; col < b.cols; ++col) {
      if (forward) {
        for (index_t i = 0; i < n; ++i) {
          double s = b(i, col);
          for (index_t j = 0; j < i; ++j) s -= tval(i, j) * b(j, col);
          b(i, col) = unit ? s : s / tval(i, i);
        }
      } else {
        for (index_t i = n - 1; i >= 0; --i) {
          double s = b(i, col);
          for (index_t j = i + 1; j < n; ++j) s -= tval(i, j) * b(j, col);
          b(i, col) = unit ? s : s / tval(i, i);
        }
      }
    }
  } else {
    // Solve X op(T) = B, row by row of B: X(r,:) uses previously solved cols.
    for (index_t row = 0; row < b.rows; ++row) {
      if (forward) {
        // op(T) effectively lower => X columns resolve from last to first:
        // X(:,j) = (B(:,j) - sum_{l>j} X(:,l) op(T)(l,j)) / op(T)(j,j)
        for (index_t j = n - 1; j >= 0; --j) {
          double s = b(row, j);
          for (index_t l = j + 1; l < n; ++l) s -= b(row, l) * tval(l, j);
          b(row, j) = unit ? s : s / tval(j, j);
        }
      } else {
        for (index_t j = 0; j < n; ++j) {
          double s = b(row, j);
          for (index_t l = 0; l < j; ++l) s -= b(row, l) * tval(l, j);
          b(row, j) = unit ? s : s / tval(j, j);
        }
      }
    }
  }
}

void trmm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b) {
  HATRIX_CHECK(t.rows == t.cols, "trmm triangular matrix must be square");
  const index_t n = t.rows;
  if (side == Side::Left) {
    HATRIX_CHECK(b.rows == n, "trmm dimension mismatch");
  } else {
    HATRIX_CHECK(b.cols == n, "trmm dimension mismatch");
  }
  flops::add(static_cast<std::uint64_t>(n) * n *
             (side == Side::Left ? b.cols : b.rows));

  const bool unit = (diag == Diag::Unit);
  auto tval = [&](index_t i, index_t j) {
    double v = trans == Trans::No ? t(i, j) : t(j, i);
    return v;
  };
  // op(T) is lower iff (uplo==Lower) == (trans==No).
  const bool op_lower = ((uplo == UpLo::Lower) == (trans == Trans::No));

  if (side == Side::Left) {
    for (index_t col = 0; col < b.cols; ++col) {
      if (op_lower) {
        for (index_t i = n - 1; i >= 0; --i) {
          double s = unit ? b(i, col) : tval(i, i) * b(i, col);
          for (index_t j = 0; j < i; ++j) s += tval(i, j) * b(j, col);
          b(i, col) = alpha * s;
        }
      } else {
        for (index_t i = 0; i < n; ++i) {
          double s = unit ? b(i, col) : tval(i, i) * b(i, col);
          for (index_t j = i + 1; j < n; ++j) s += tval(i, j) * b(j, col);
          b(i, col) = alpha * s;
        }
      }
    }
  } else {
    for (index_t row = 0; row < b.rows; ++row) {
      if (op_lower) {
        // B := B * op(T); column j of result uses cols l >= j of B.
        for (index_t j = 0; j < n; ++j) {
          double s = unit ? b(row, j) : b(row, j) * tval(j, j);
          for (index_t l = j + 1; l < n; ++l) s += b(row, l) * tval(l, j);
          b(row, j) = alpha * s;
        }
      } else {
        for (index_t j = n - 1; j >= 0; --j) {
          double s = unit ? b(row, j) : b(row, j) * tval(j, j);
          for (index_t l = 0; l < j; ++l) s += b(row, l) * tval(l, j);
          b(row, j) = alpha * s;
        }
      }
    }
  }
}

void gemv(double alpha, ConstMatrixView a, Trans ta, const double* x, double beta,
          double* y) {
  const index_t m = op_rows(a, ta), n = op_cols(a, ta);
  flops::add(static_cast<std::uint64_t>(2) * m * n);
  for (index_t i = 0; i < m; ++i) y[i] *= beta;
  if (ta == Trans::No) {
    for (index_t j = 0; j < n; ++j) {
      const double xj = alpha * x[j];
      if (xj == 0.0) continue;
      for (index_t i = 0; i < m; ++i) y[i] += a(i, j) * xj;
    }
  } else {
    for (index_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (index_t j = 0; j < n; ++j) s += a(j, i) * x[j];
      y[i] += alpha * s;
    }
  }
}

void add_scaled(MatrixView y, double alpha, ConstMatrixView x) {
  HATRIX_CHECK(y.rows == x.rows && y.cols == x.cols, "add_scaled shape mismatch");
  flops::add(static_cast<std::uint64_t>(2) * y.rows * y.cols);
  for (index_t j = 0; j < y.cols; ++j)
    for (index_t i = 0; i < y.rows; ++i) y(i, j) += alpha * x(i, j);
}

void scale(MatrixView a, double alpha) {
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i) a(i, j) *= alpha;
}

double dot(ConstMatrixView a, ConstMatrixView b) {
  HATRIX_CHECK(a.rows == b.rows && a.cols == b.cols, "dot shape mismatch");
  double s = 0.0;
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i) s += a(i, j) * b(i, j);
  return s;
}

}  // namespace hatrix::la
