#include "kernels/kernels.hpp"

#include <cmath>

#include "common/error.hpp"
#include "kernels/bessel.hpp"

namespace hatrix::kernels {

double Laplace2D::operator()(const geom::Point& x, const geom::Point& y) const {
  return -std::log(eps_ + geom::dist(x, y));
}

double Yukawa::operator()(const geom::Point& x, const geom::Point& y) const {
  const double r = theta_ + geom::dist(x, y);
  return std::exp(-alpha_ * r) / r;
}

double Matern::operator()(const geom::Point& x, const geom::Point& y) const {
  const double r = geom::dist(x, y);
  if (r == 0.0) return sigma_ * sigma_;
  const double z = r / mu_;
  const double scale =
      sigma_ * sigma_ / (std::pow(2.0, rho_ - 1.0) * std::tgamma(rho_));
  const double k = bessel_k(rho_, z);
  if (k == 0.0) return 0.0;  // underflow at long range
  return scale * std::pow(z, rho_) * k;
}

double Gaussian::operator()(const geom::Point& x, const geom::Point& y) const {
  const double r = geom::dist(x, y);
  return std::exp(-r * r / (2.0 * l_ * l_));
}

double Laplace3D::operator()(const geom::Point& x, const geom::Point& y) const {
  return 1.0 / (eps_ + geom::dist(x, y));
}

double InverseMultiquadric::operator()(const geom::Point& x,
                                       const geom::Point& y) const {
  const double r = geom::dist(x, y);
  return 1.0 / std::sqrt(c_ * c_ + r * r);
}

std::unique_ptr<Kernel> make_kernel(const std::string& name) {
  if (name == "laplace2d") return std::make_unique<Laplace2D>();
  if (name == "yukawa") return std::make_unique<Yukawa>();
  if (name == "matern") return std::make_unique<Matern>();
  if (name == "gaussian") return std::make_unique<Gaussian>();
  if (name == "laplace3d") return std::make_unique<Laplace3D>();
  if (name == "imq") return std::make_unique<InverseMultiquadric>();
  throw Error("unknown kernel: " + name);
}

}  // namespace hatrix::kernels
