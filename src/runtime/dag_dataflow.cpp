#include "runtime/dag_dataflow.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>

namespace hatrix::rt {

namespace {

std::string task_label(const TaskGraph& g, TaskId t) {
  return g.tasks()[static_cast<std::size_t>(t)].name + " (#" + std::to_string(t) +
         ")";
}

std::string data_label(const TaskGraph& g, DataId d) {
  return "\"" + g.data(d).name + "\" (data #" + std::to_string(d) + ")";
}

/// One declared access in per-handle chain order.
struct Event {
  TaskId task;
  Access mode;
};

/// Per-handle event chains in DTD (task-insertion, then declaration) order —
/// the exact order the dependency inference consumed them in.
std::vector<std::vector<Event>> event_chains(const TaskGraph& graph) {
  std::vector<std::vector<Event>> ev(graph.data().size());
  for (const auto& t : graph.tasks())
    for (const auto& [d, mode] : t.accesses)
      ev[static_cast<std::size_t>(d)].push_back({t.id, mode});
  return ev;
}

/// Distinct tasks touching a handle, preserving first-touch order. Chains
/// are short (single-digit accessors on the production DAGs), so the
/// quadratic dedup beats sorting.
std::vector<TaskId> distinct_tasks(const std::vector<Event>& chain) {
  std::vector<TaskId> out;
  for (const Event& e : chain)
    if (std::find(out.begin(), out.end(), e.task) == out.end())
      out.push_back(e.task);
  return out;
}

}  // namespace

DagUseBeforeDefError::DagUseBeforeDefError(TaskId t, std::string t_name,
                                           DataId res, std::string res_name)
    : Error("dag_dataflow: use before def — task " + t_name + " (#" +
            std::to_string(t) + ") reads resource \"" + res_name + "\" (data #" +
            std::to_string(res) +
            ") which no earlier task writes and which is not marked a graph "
            "input (TaskGraph::mark_input)"),
      task(t),
      resource(res),
      task_name(std::move(t_name)),
      resource_name(std::move(res_name)) {}

ReleasePlan release_plan(const TaskGraph& graph) {
  const auto n = static_cast<std::size_t>(graph.num_tasks());
  const auto ev = event_chains(graph);
  ReleasePlan plan;
  plan.initial_uses.assign(graph.data().size(), 0);
  plan.task_data.assign(n, {});
  for (std::size_t d = 0; d < ev.size(); ++d) {
    if (graph.data()[d].output) continue;  // outputs are never released
    const auto owners = distinct_tasks(ev[d]);
    plan.initial_uses[d] = static_cast<int>(owners.size());
    for (TaskId t : owners)
      plan.task_data[static_cast<std::size_t>(t)].push_back(
          static_cast<DataId>(d));
  }
  return plan;
}

DagDataflowReport analyze_dag(const TaskGraph& graph) {
  const auto n = static_cast<std::size_t>(graph.num_tasks());
  const auto nd = graph.data().size();
  const auto ev = event_chains(graph);

  DagDataflowReport rep;
  rep.stats.tasks = graph.num_tasks();
  rep.stats.edges = graph.num_edges();
  rep.lifetimes.resize(nd);
  for (std::size_t d = 0; d < nd; ++d)
    rep.lifetimes[d].data = static_cast<DataId>(d);

  // --- Depth/width statistics (as in verify_dag; insertion order is
  // topological, non-forward test splices are skipped like
  // critical_path_length does).
  if (n > 0) {
    std::vector<std::int64_t> depth(n, 1);
    for (std::size_t t = 0; t < n; ++t)
      for (TaskId s : graph.successors()[t])
        if (s > static_cast<TaskId>(t) && s < graph.num_tasks())
          depth[static_cast<std::size_t>(s)] =
              std::max(depth[static_cast<std::size_t>(s)], depth[t] + 1);
    rep.stats.critical_path = *std::max_element(depth.begin(), depth.end());
    std::vector<std::int64_t> width(
        static_cast<std::size_t>(rep.stats.critical_path), 0);
    for (std::size_t t = 0; t < n; ++t)
      ++width[static_cast<std::size_t>(depth[t] - 1)];
    rep.stats.max_width = *std::max_element(width.begin(), width.end());
    rep.stats.avg_width = static_cast<double>(rep.stats.tasks) /
                          static_cast<double>(rep.stats.critical_path);
  }

  // --- Def-use chains: use-before-def (fatal), write-after-last-read, dead
  // stores. A value is an (producer task, handle) pair; "dead" means no task
  // ever consumes it and the handle is not a graph output.
  std::vector<std::vector<std::pair<TaskId, bool>>> dead_writes(n);
  auto record_write = [&](TaskId t, DataId d) {
    dead_writes[static_cast<std::size_t>(t)].emplace_back(d, false);
  };
  auto mark_dead = [&](TaskId t, DataId d) {
    for (auto& [res, dead] : dead_writes[static_cast<std::size_t>(t)])
      if (res == d) dead = true;
  };

  for (std::size_t d = 0; d < nd; ++d) {
    const auto& chain = ev[d];
    if (chain.empty()) continue;
    const DataHandle& h = graph.data()[d];

    TaskId def = -1;        // first writing task
    TaskId producer = -1;   // task that produced the current value
    Access producer_mode = Access::Write;
    bool consumed = true;   // current value has been read (or none exists)

    for (const Event& e : chain) {
      if (e.mode == Access::Read) {
        if (def < 0 && !h.input)
          throw DagUseBeforeDefError(
              e.task, graph.tasks()[static_cast<std::size_t>(e.task)].name,
              static_cast<DataId>(d), h.name);
        consumed = true;
      } else {
        // ReadWrite consumes the prior value (it reads before mutating); a
        // pure Write clobbers it, so an unconsumed prior value is wasted.
        if (e.mode == Access::Write && producer >= 0 && !consumed) {
          mark_dead(producer, static_cast<DataId>(d));
          rep.warnings.push_back(
              {DagWarningKind::WriteAfterLastRead, e.task, static_cast<DataId>(d),
               graph.tasks()[static_cast<std::size_t>(e.task)].name, h.name,
               "dag_dataflow: task " + task_label(graph, e.task) +
                   " overwrites resource " + data_label(graph, static_cast<DataId>(d)) +
                   " whose value from " + task_label(graph, producer) +
                   " was never read"});
        }
        if (def < 0) def = e.task;
        producer = e.task;
        producer_mode = e.mode;
        consumed = false;
        record_write(e.task, static_cast<DataId>(d));
      }
    }

    auto& life = rep.lifetimes[d];
    life.def = def;
    life.last_use = chain.back().task;
    life.uses = static_cast<std::int64_t>(distinct_tasks(chain).size());

    if (!consumed && producer >= 0 && !h.output) {
      // A trailing non-def ReadWrite is an in-place update chain whose
      // final state the caller inspects directly (tile-Cholesky panels,
      // rotated-buffer clears): not a dead store. The def itself, or a pure
      // Write, produced a value nothing will ever see.
      const bool exempt = producer != def && producer_mode == Access::ReadWrite;
      if (!exempt) {
        mark_dead(producer, static_cast<DataId>(d));
        rep.warnings.push_back(
            {DagWarningKind::DeadStore, producer, static_cast<DataId>(d),
             graph.tasks()[static_cast<std::size_t>(producer)].name, h.name,
             "dag_dataflow: dead store — the final value of resource " +
                 data_label(graph, static_cast<DataId>(d)) + " written by " +
                 task_label(graph, producer) +
                 " is never read and the handle is not marked a graph output "
                 "(TaskGraph::mark_output)"});
      }
    }
  }

  // --- Dead tasks: every produced value is dead and no write is an
  // in-place (non-def ReadWrite) update. Reads alone never keep a task
  // alive — a task whose outputs all go unread did nothing observable.
  for (std::size_t t = 0; t < n; ++t) {
    const auto& writes = dead_writes[t];
    if (writes.empty()) continue;
    bool all_dead = true;
    for (const auto& [d, dead] : writes)
      if (!dead) {
        all_dead = false;
        break;
      }
    if (!all_dead) continue;
    rep.warnings.push_back(
        {DagWarningKind::DeadTask, static_cast<TaskId>(t), writes.front().first,
         graph.tasks()[t].name, graph.data(writes.front().first).name,
         "dag_dataflow: dead task — every value " +
             task_label(graph, static_cast<TaskId>(t)) +
             " produces is never consumed"});
  }

  // --- Zero-byte handles poison every byte statistic downstream.
  for (std::size_t d = 0; d < nd; ++d) {
    if (ev[d].empty() || graph.data()[d].bytes > 0) continue;
    rep.warnings.push_back(
        {DagWarningKind::ZeroBytes, -1, static_cast<DataId>(d), "",
         graph.data()[d].name,
         "dag_dataflow: resource " + data_label(graph, static_cast<DataId>(d)) +
             " is accessed but registered with bytes == 0 — peak-memory and "
             "traffic accounting undercounts it"});
  }

  // --- Exact peak along the serial insertion order: a handle materializes
  // at its first touch (inputs at time zero) and retires when its last
  // accessor finishes, outputs never.
  std::vector<int> remaining(nd, 0);
  std::vector<char> live(nd, 0);
  std::int64_t resident = 0;
  for (std::size_t d = 0; d < nd; ++d) {
    if (ev[d].empty()) continue;
    remaining[d] = static_cast<int>(rep.lifetimes[d].uses);
    rep.stats.data_bytes += graph.data()[d].bytes;
    if (graph.data()[d].input) {
      live[d] = 1;
      resident += graph.data()[d].bytes;
    }
  }
  std::int64_t peak = resident;
  for (std::size_t t = 0; t < n; ++t) {
    const auto& acc = graph.tasks()[t].accesses;
    for (const auto& [d, mode] : acc) {
      (void)mode;
      const auto di = static_cast<std::size_t>(d);
      if (!live[di]) {
        live[di] = 1;
        resident += graph.data()[di].bytes;
      }
    }
    peak = std::max(peak, resident);
    // Decrement once per distinct handle; a task may declare two accesses
    // to the same handle.
    for (std::size_t i = 0; i < acc.size(); ++i) {
      const DataId d = acc[i].first;
      bool seen = false;
      for (std::size_t j = 0; j < i; ++j)
        if (acc[j].first == d) {
          seen = true;
          break;
        }
      if (seen) continue;
      const auto di = static_cast<std::size_t>(d);
      if (--remaining[di] == 0 && !graph.data()[di].output) {
        resident -= graph.data()[di].bytes;
        live[di] = 0;
      }
    }
  }
  rep.stats.peak_bytes_serial = peak;

  // --- Peak bound over any edge-consistent schedule. Ancestor bitsets (the
  // race check's representation): handle h can be live while task t runs
  // unless t provably precedes h's materialization (t ≺ def(h)) or h is
  // provably retired (every accessor ≺ t, and h is neither an output nor
  // touched by t itself).
  if (n > 0) {
    const std::size_t words = (n + 63) / 64;
    std::vector<std::vector<TaskId>> preds(n);
    for (std::size_t t = 0; t < n; ++t)
      for (TaskId s : graph.successors()[t])
        if (s > static_cast<TaskId>(t) && s < graph.num_tasks())
          preds[static_cast<std::size_t>(s)].push_back(static_cast<TaskId>(t));
    std::vector<std::uint64_t> anc(n * words, 0);
    for (std::size_t t = 0; t < n; ++t) {
      std::uint64_t* row = anc.data() + t * words;
      for (TaskId p : preds[t]) {
        const auto pi = static_cast<std::size_t>(p);
        const std::uint64_t* prow = anc.data() + pi * words;
        for (std::size_t w = 0; w < words; ++w) row[w] |= prow[w];
        row[pi / 64] |= std::uint64_t{1} << (pi % 64);
      }
    }
    auto before = [&](TaskId a, TaskId b) {
      const auto ai = static_cast<std::size_t>(a);
      return ((anc[static_cast<std::size_t>(b) * words + ai / 64] >> (ai % 64)) &
              1) != 0;
    };

    std::vector<std::vector<TaskId>> accessors(nd);
    for (std::size_t d = 0; d < nd; ++d) accessors[d] = distinct_tasks(ev[d]);

    std::int64_t peak_any = 0;
    for (std::size_t t = 0; t < n; ++t) {
      const auto tid = static_cast<TaskId>(t);
      std::int64_t r = 0;
      for (std::size_t d = 0; d < nd; ++d) {
        if (ev[d].empty()) continue;
        const DataHandle& h = graph.data()[d];
        const TaskId def = rep.lifetimes[d].def;
        if (!h.input && def >= 0 && def != tid && before(tid, def))
          continue;  // not yet materialized while t runs
        if (!h.output) {
          bool retired = true;
          for (TaskId a : accessors[d])
            if (a == tid || !before(a, tid)) {
              retired = false;
              break;
            }
          if (retired) continue;
        }
        r += h.bytes;
      }
      peak_any = std::max(peak_any, r);
    }
    rep.stats.peak_bytes_any = peak_any;
  }

  rep.plan = release_plan(graph);
  return rep;
}

RankUsage analyze_dag_ranks(const TaskGraph& graph,
                            const std::vector<int>& task_owner, int num_procs) {
  const auto n = static_cast<std::size_t>(graph.num_tasks());
  HATRIX_CHECK(task_owner.size() == n, "mapping/graph size mismatch");
  HATRIX_CHECK(num_procs >= 1, "bad process count");
  for (int o : task_owner)
    HATRIX_CHECK(o >= 0 && o < num_procs, "task owner out of range");

  RankUsage out;
  out.footprint_bytes.assign(static_cast<std::size_t>(num_procs), 0);
  out.sent_bytes.assign(static_cast<std::size_t>(num_procs), 0);

  // Footprint: a touched block is resident on its owner plus every rank
  // whose tasks touch it (the received copy a message-passing backend must
  // hold while the task runs).
  const auto ev = event_chains(graph);
  std::vector<char> on_rank(static_cast<std::size_t>(num_procs), 0);
  for (std::size_t d = 0; d < ev.size(); ++d) {
    if (ev[d].empty()) continue;
    const DataHandle& h = graph.data()[d];
    std::fill(on_rank.begin(), on_rank.end(), 0);
    on_rank[static_cast<std::size_t>(h.owner)] = 1;
    for (const Event& e : ev[d])
      on_rank[static_cast<std::size_t>(
          task_owner[static_cast<std::size_t>(e.task)])] = 1;
    for (int r = 0; r < num_procs; ++r)
      if (on_rank[static_cast<std::size_t>(r)])
        out.footprint_bytes[static_cast<std::size_t>(r)] += h.bytes;
  }

  // Traffic: the simulator's data-flow walk — last writer per handle, one
  // message per cross-rank (producer → consumer task) pair aggregating all
  // blocks it supplies (matches distsim::count_messages exactly).
  std::vector<TaskId> last_writer(graph.data().size(), -1);
  for (const auto& t : graph.tasks()) {
    std::map<TaskId, std::int64_t> incoming;
    for (const auto& [d, mode] : t.accesses) {
      const TaskId w = last_writer[static_cast<std::size_t>(d)];
      if (w >= 0 && w != t.id) incoming[w] += graph.data(d).bytes;
      if (is_write(mode)) last_writer[static_cast<std::size_t>(d)] = t.id;
    }
    const int pd = task_owner[static_cast<std::size_t>(t.id)];
    for (const auto& [w, bytes] : incoming) {
      const int ps = task_owner[static_cast<std::size_t>(w)];
      if (ps == pd) continue;
      out.sent_bytes[static_cast<std::size_t>(ps)] += bytes;
      out.cross_bytes += bytes;
      ++out.cross_messages;
    }
  }
  return out;
}

bool analyze_dag_default() {
  if (const char* env = std::getenv("HATRIX_ANALYZE_DAG")) {
    const std::string v(env);
    if (v == "0" || v == "false" || v == "off" || v == "OFF") return false;
    return true;
  }
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

}  // namespace hatrix::rt
