#pragma once
/// \file priority_executor.hpp
/// \brief Critical-path-aware work-stealing executor.
///
/// The third point on the paper's runtime axis, between the FIFO thread pool
/// (PaRSEC-DTD's default scheduler) and the fork-join barrier model: every
/// task is prioritized by its cost-weighted *bottom level* — the cost of the
/// most expensive dependency chain from the task to a sink, computed once up
/// front via rt::bottom_levels with a pluggable per-task cost hook. Workers
/// drain per-worker deques highest-priority-first and steal from a victim's
/// deque when their own runs dry, so the scheduler keeps the critical path
/// (in HSS-ULV: the top-of-tree merge/factor chain) moving while leaf-level
/// parallelism fills the remaining worker slots. Li & Liu (PAPERS.md) call
/// the serialized top-of-tree exactly the bottleneck this ordering attacks;
/// Hatrix's `factorize_noparsec` drives the same ULV DAG with the same idea.
///
/// Drop-in compatible with the other two executors: the same
/// `run(graph, error_out)` interface, the same set_verify_dag() gate (the
/// static DAG verifier runs before any priority is computed), the same
/// ExecutionStats — including the discovery/ready-queue timer, which here
/// additionally charges the up-front bottom-level computation.

#include <exception>

#include "runtime/dag_verify.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/trace.hpp"

namespace hatrix::rt {

/// Default per-task cost when no cost hook is set: the product of the
/// task's cost-model dims (minimum 1.0) — a crude flop proxy that already
/// separates an O(m^3) PARTIAL_FACTOR from an O(k^2) MERGE. Plug in
/// distsim::CostModel::task_flops (via PriorityExecutor::set_cost) for
/// flop-true weighting.
double default_task_cost(const Task& t);

/// Critical-path-aware executor: per-worker work-stealing deques popped
/// highest-bottom-level-first.
class PriorityExecutor {
 public:
  /// `num_workers` worker threads (>= 1). The calling thread coordinates.
  explicit PriorityExecutor(int num_workers = 1);

  /// Run every task in the graph respecting dependencies; returns the
  /// execution statistics. Same contract as ThreadPoolExecutor::run —
  /// task-body exceptions are captured, the failing task's trace is
  /// end-stamped, and the error is rethrown after draining (or stored in
  /// `error_out` when non-null).
  ExecutionStats run(const TaskGraph& graph, std::exception_ptr* error_out = nullptr);

  /// Worker thread count this executor was built with.
  [[nodiscard]] int num_workers() const { return num_workers_; }

  /// Override the per-task cost used to weight the critical path; pass an
  /// empty function to restore default_task_cost.
  void set_cost(TaskCostFn cost) { cost_ = std::move(cost); }

  /// Toggle static DAG verification (dag_verify.hpp) before execution.
  /// Identical semantics to the other executors: throws DagStructureError /
  /// DagRaceError directly, never through `error_out`, before any priority
  /// is computed or task body runs. Defaults to rt::verify_dag_default().
  void set_verify_dag(bool enabled) { verify_dag_ = enabled; }
  /// Whether run() statically verifies the graph before executing it.
  [[nodiscard]] bool verify_dag_enabled() const { return verify_dag_; }

  /// Toggle static dataflow analysis (dag_dataflow.hpp) before execution —
  /// identical semantics to ThreadPoolExecutor::set_analyze_dag. Defaults
  /// to rt::analyze_dag_default().
  void set_analyze_dag(bool enabled) { analyze_dag_ = enabled; }
  /// Whether run() runs the dataflow pass before executing the graph.
  [[nodiscard]] bool analyze_dag_enabled() const { return analyze_dag_; }

 private:
  int num_workers_;
  bool verify_dag_;
  bool analyze_dag_;
  TaskCostFn cost_;
};

}  // namespace hatrix::rt
