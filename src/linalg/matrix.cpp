#include "linalg/matrix.hpp"

namespace hatrix::la {

namespace detail {
std::atomic<std::int64_t> g_matrix_live{0};
std::atomic<std::int64_t> g_matrix_peak{0};
}  // namespace detail

std::int64_t matrix_bytes_live() {
  return detail::g_matrix_live.load(std::memory_order_relaxed);
}

std::int64_t matrix_bytes_peak() {
  return detail::g_matrix_peak.load(std::memory_order_relaxed);
}

void reset_matrix_peak() {
  detail::g_matrix_peak.store(detail::g_matrix_live.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
}

Matrix Matrix::identity(index_t n) {
  Matrix a(n, n);
  for (index_t i = 0; i < n; ++i) a(i, i) = 1.0;
  return a;
}

Matrix Matrix::random_normal(Rng& rng, index_t r, index_t c) {
  Matrix a(r, c);
  for (index_t j = 0; j < c; ++j)
    for (index_t i = 0; i < r; ++i) a(i, j) = rng.normal();
  return a;
}

Matrix Matrix::random_spd(Rng& rng, index_t n) {
  Matrix g = random_normal(rng, n, n);
  Matrix a(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (index_t k = 0; k < n; ++k) s += g(i, k) * g(j, k);
      a(i, j) = s;
    }
  // Diagonal shift guarantees positive definiteness independent of the draw.
  for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

Matrix Matrix::from_view(ConstMatrixView v) {
  Matrix a(v.rows, v.cols);
  copy(v, a.view());
  return a;
}

void Matrix::demote_storage() {
  if (!data32_.empty() || data_.empty()) return;
  data32_.resize(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i)
    data32_[i] = static_cast<float>(data_[i]);
  data_.clear();
  data_.shrink_to_fit();
}

void Matrix::promote_storage() {
  if (data32_.empty()) return;
  data_.resize(data32_.size());
  for (std::size_t i = 0; i < data32_.size(); ++i)
    data_[i] = static_cast<double>(data32_[i]);
  data32_.clear();
  data32_.shrink_to_fit();
}

Matrix Matrix::f64_copy() const {
  Matrix out(rows_, cols_);
  if (is_f32()) {
    for (std::size_t i = 0; i < data32_.size(); ++i)
      out.data_[i] = static_cast<double>(data32_[i]);
  } else {
    out.data_ = data_;
  }
  return out;
}

void copy(ConstMatrixView src, MatrixView dst) {
  HATRIX_CHECK(src.rows == dst.rows && src.cols == dst.cols, "copy shape mismatch");
  for (index_t j = 0; j < src.cols; ++j)
    for (index_t i = 0; i < src.rows; ++i) dst(i, j) = src(i, j);
}

void copy(ConstMatrixViewF src, MatrixViewF dst) {
  HATRIX_CHECK(src.rows == dst.rows && src.cols == dst.cols, "copy shape mismatch");
  for (index_t j = 0; j < src.cols; ++j)
    for (index_t i = 0; i < src.rows; ++i) dst(i, j) = src(i, j);
}

void widen(ConstMatrixViewF src, MatrixView dst) {
  HATRIX_CHECK(src.rows == dst.rows && src.cols == dst.cols, "widen shape mismatch");
  for (index_t j = 0; j < src.cols; ++j)
    for (index_t i = 0; i < src.rows; ++i)
      dst(i, j) = static_cast<double>(src(i, j));
}

void narrow(ConstMatrixView src, MatrixViewF dst) {
  HATRIX_CHECK(src.rows == dst.rows && src.cols == dst.cols, "narrow shape mismatch");
  for (index_t j = 0; j < src.cols; ++j)
    for (index_t i = 0; i < src.rows; ++i)
      dst(i, j) = static_cast<float>(src(i, j));
}

MatrixF to_f32(ConstMatrixView v) {
  MatrixF out(v.rows, v.cols);
  narrow(v, out.view());
  return out;
}

Matrix to_f64(ConstMatrixViewF v) {
  Matrix out(v.rows, v.cols);
  widen(v, out.view());
  return out;
}

Matrix transpose(ConstMatrixView a) {
  Matrix t(a.cols, a.rows);
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i) t(j, i) = a(i, j);
  return t;
}

Matrix vconcat(const std::vector<ConstMatrixView>& parts) {
  HATRIX_CHECK(!parts.empty(), "vconcat of nothing");
  index_t rows = 0;
  const index_t cols = parts.front().cols;
  for (const auto& p : parts) {
    HATRIX_CHECK(p.cols == cols, "vconcat column mismatch");
    rows += p.rows;
  }
  Matrix out(rows, cols);
  index_t at = 0;
  for (const auto& p : parts) {
    copy(p, out.block(at, 0, p.rows, p.cols));
    at += p.rows;
  }
  return out;
}

Matrix hconcat(const std::vector<ConstMatrixView>& parts) {
  HATRIX_CHECK(!parts.empty(), "hconcat of nothing");
  const index_t rows = parts.front().rows;
  index_t cols = 0;
  for (const auto& p : parts) {
    HATRIX_CHECK(p.rows == rows, "hconcat row mismatch");
    cols += p.cols;
  }
  Matrix out(rows, cols);
  index_t at = 0;
  for (const auto& p : parts) {
    copy(p, out.block(0, at, p.rows, p.cols));
    at += p.cols;
  }
  return out;
}

Matrix gather_rows(ConstMatrixView src, const std::vector<index_t>& rows) {
  Matrix out(static_cast<index_t>(rows.size()), src.cols);
  for (index_t j = 0; j < src.cols; ++j)
    for (std::size_t i = 0; i < rows.size(); ++i)
      out(static_cast<index_t>(i), j) = src(rows[i], j);
  return out;
}

Matrix gather_cols(ConstMatrixView src, const std::vector<index_t>& cols) {
  Matrix out(src.rows, static_cast<index_t>(cols.size()));
  for (std::size_t j = 0; j < cols.size(); ++j)
    for (index_t i = 0; i < src.rows; ++i)
      out(i, static_cast<index_t>(j)) = src(i, cols[j]);
  return out;
}

void fill(MatrixView a, double value) {
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i) a(i, j) = value;
}

void fill(MatrixViewF a, float value) {
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i) a(i, j) = value;
}

}  // namespace hatrix::la
