// Tests for the Matrix type, views, and structural helpers.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "linalg/matrix.hpp"
#include "linalg/norms.hpp"

namespace hatrix::la {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix a(3, 4);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 4);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 3; ++i) EXPECT_EQ(a(i, j), 0.0);
}

TEST(Matrix, IdentityDiagonal) {
  Matrix e = Matrix::identity(5);
  for (index_t j = 0; j < 5; ++j)
    for (index_t i = 0; i < 5; ++i) EXPECT_EQ(e(i, j), i == j ? 1.0 : 0.0);
}

TEST(Matrix, ColumnMajorLayout) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(1, 0) = 2;
  a(0, 1) = 3;
  a(1, 1) = 4;
  EXPECT_EQ(a.data()[0], 1);
  EXPECT_EQ(a.data()[1], 2);
  EXPECT_EQ(a.data()[2], 3);
  EXPECT_EQ(a.data()[3], 4);
}

TEST(Matrix, BlockViewAliasesStorage) {
  Matrix a(4, 4);
  auto b = a.block(1, 2, 2, 2);
  b(0, 0) = 7.5;
  EXPECT_EQ(a(1, 2), 7.5);
  EXPECT_EQ(b.ld, 4);
}

TEST(Matrix, BlockOutOfRangeThrows) {
  Matrix a(4, 4);
  EXPECT_THROW((void)a.block(2, 2, 3, 1), Error);
  EXPECT_THROW((void)a.block(-1, 0, 1, 1), Error);
}

TEST(Matrix, FromViewDeepCopies) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  Matrix b = Matrix::from_view(a.view());
  b(0, 0) = 9;
  EXPECT_EQ(a(0, 0), 1);
}

TEST(Matrix, TransposeRoundTrip) {
  Rng rng(1);
  Matrix a = Matrix::random_normal(rng, 3, 5);
  Matrix t = transpose(a.view());
  ASSERT_EQ(t.rows(), 5);
  ASSERT_EQ(t.cols(), 3);
  Matrix tt = transpose(t.view());
  EXPECT_LT(rel_error(a.view(), tt.view()), 1e-16);
}

TEST(Matrix, VConcatStacks) {
  Matrix a(1, 2), b(2, 2);
  a(0, 0) = 1;
  b(1, 1) = 5;
  Matrix c = vconcat({a.view(), b.view()});
  ASSERT_EQ(c.rows(), 3);
  EXPECT_EQ(c(0, 0), 1);
  EXPECT_EQ(c(2, 1), 5);
}

TEST(Matrix, HConcatStacks) {
  Matrix a(2, 1), b(2, 3);
  a(1, 0) = 2;
  b(0, 2) = 8;
  Matrix c = hconcat({a.view(), b.view()});
  ASSERT_EQ(c.cols(), 4);
  EXPECT_EQ(c(1, 0), 2);
  EXPECT_EQ(c(0, 3), 8);
}

TEST(Matrix, ConcatShapeMismatchThrows) {
  Matrix a(1, 2), b(1, 3);
  EXPECT_THROW(vconcat({a.view(), b.view()}), Error);
  Matrix c(2, 1), d(3, 1);
  EXPECT_THROW(hconcat({c.view(), d.view()}), Error);
}

TEST(Matrix, GatherRowsSelects) {
  Rng rng(2);
  Matrix a = Matrix::random_normal(rng, 4, 3);
  Matrix g = gather_rows(a.view(), {2, 0});
  ASSERT_EQ(g.rows(), 2);
  for (index_t j = 0; j < 3; ++j) {
    EXPECT_EQ(g(0, j), a(2, j));
    EXPECT_EQ(g(1, j), a(0, j));
  }
}

TEST(Matrix, GatherColsSelects) {
  Rng rng(3);
  Matrix a = Matrix::random_normal(rng, 3, 4);
  Matrix g = gather_cols(a.view(), {3, 1});
  ASSERT_EQ(g.cols(), 2);
  for (index_t i = 0; i < 3; ++i) {
    EXPECT_EQ(g(i, 0), a(i, 3));
    EXPECT_EQ(g(i, 1), a(i, 1));
  }
}

TEST(Matrix, RandomSpdIsSymmetric) {
  Rng rng(4);
  Matrix a = Matrix::random_spd(rng, 16);
  for (index_t j = 0; j < 16; ++j)
    for (index_t i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(a(i, j), a(j, i));
}

TEST(Matrix, BytesReportsFootprint) {
  Matrix a(10, 3);
  EXPECT_EQ(a.bytes(), 240);
}

}  // namespace
}  // namespace hatrix::la
