# Sanitizer toggle for the whole tree.
#
#   cmake -B build-asan -S . -DHATRIX_SANITIZE=address,undefined
#   cmake -B build-tsan -S . -DHATRIX_SANITIZE=thread
#
# HATRIX_SANITIZE is a comma- (or semicolon-) separated subset of
# {address, undefined, thread, leak}. Unlike hand-passing -fsanitize=...
# through CMAKE_CXX_FLAGS (the old scripts/check.sh approach), this module
# composes with the build type: the default optimization, debug-info, and
# warning flags all stay in force. Include it from the top-level
# CMakeLists.txt before any target is defined.

set(HATRIX_SANITIZE "" CACHE STRING
  "Sanitizers to enable: comma-separated subset of address;undefined;thread;leak")

if(HATRIX_SANITIZE)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang|AppleClang")
    message(FATAL_ERROR "HATRIX_SANITIZE requires GCC or Clang (got ${CMAKE_CXX_COMPILER_ID})")
  endif()

  string(REPLACE "," ";" _hatrix_san_list "${HATRIX_SANITIZE}")
  set(_hatrix_san_allowed address undefined thread leak)
  foreach(_san IN LISTS _hatrix_san_list)
    if(NOT _san IN_LIST _hatrix_san_allowed)
      message(FATAL_ERROR "HATRIX_SANITIZE: unknown sanitizer '${_san}' "
                          "(allowed: ${_hatrix_san_allowed})")
    endif()
  endforeach()

  # ThreadSanitizer is incompatible with ASan/LSan instrumentation.
  if("thread" IN_LIST _hatrix_san_list AND
     ("address" IN_LIST _hatrix_san_list OR "leak" IN_LIST _hatrix_san_list))
    message(FATAL_ERROR "HATRIX_SANITIZE: 'thread' cannot be combined with "
                        "'address' or 'leak'")
  endif()

  list(JOIN _hatrix_san_list "," _hatrix_san_spec)
  set(_hatrix_san_flags -fsanitize=${_hatrix_san_spec} -fno-omit-frame-pointer)
  if("undefined" IN_LIST _hatrix_san_list)
    # Make UBSan findings hard failures instead of log lines.
    list(APPEND _hatrix_san_flags -fno-sanitize-recover=undefined)
  endif()

  message(STATUS "hatrix: sanitizers enabled (${_hatrix_san_spec})")
  add_compile_options(${_hatrix_san_flags})
  add_link_options(${_hatrix_san_flags})
endif()
