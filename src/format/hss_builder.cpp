#include "format/hss_builder.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "format/hss_builder_tasks.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "runtime/task_graph.hpp"

namespace hatrix::fmt {

namespace {

std::string under_resolved_message(int level, index_t node, index_t sample_cols,
                                   double residual, double tol) {
  return "HSS basis under-resolved at node (" + std::to_string(level) + "," +
         std::to_string(node) + "): probe residual " + std::to_string(residual) +
         " > guard tolerance " + std::to_string(tol) + " with " +
         std::to_string(sample_cols) +
         " sampled columns (max_sample_cols cap reached); raise the cap or the "
         "initial sample";
}

}  // namespace

BasisUnderResolvedError::BasisUnderResolvedError(int level, index_t node,
                                                index_t sample_cols,
                                                double residual, double tol)
    : Error(under_resolved_message(level, node, sample_cols, residual, tol)),
      level_(level),
      node_(node),
      sample_cols_(sample_cols),
      residual_(residual),
      tol_(tol) {}

void assign_hss_intervals(HSSMatrix& h) {
  const int L = h.max_level();
  h.node(0, 0).begin = 0;
  h.node(0, 0).end = h.size();
  for (int l = 0; l < L; ++l) {
    for (index_t i = 0; i < h.num_nodes(l); ++i) {
      const auto& parent = h.node(l, i);
      const index_t mid = parent.begin + (parent.block_size() + 1) / 2;
      h.node(l + 1, 2 * i).begin = parent.begin;
      h.node(l + 1, 2 * i).end = mid;
      h.node(l + 1, 2 * i + 1).begin = mid;
      h.node(l + 1, 2 * i + 1).end = parent.end;
    }
  }
}

HSSMatrix make_hss_skeleton(index_t n, index_t leaf_size, index_t rank) {
  const int L = hss_levels(n, leaf_size);
  HSSMatrix h(n, L);
  assign_hss_intervals(h);
  // Leaf ranks clip at the block size; internal ranks clip at the stacked
  // children ranks (the transfer basis has k_c0 + k_c1 rows).
  for (index_t i = 0; i < h.num_nodes(L); ++i)
    h.node(L, i).rank = std::min(rank, h.node(L, i).block_size());
  for (int l = L - 1; l >= 1; --l)
    for (index_t i = 0; i < h.num_nodes(l); ++i)
      h.node(l, i).rank = std::min(
          rank, h.node(l + 1, 2 * i).rank + h.node(l + 1, 2 * i + 1).rank);
  return h;
}

HSSMatrix make_random_spd_hss(index_t n, index_t leaf_size, index_t rank, Rng& rng) {
  HSSMatrix h = make_hss_skeleton(n, leaf_size, rank);
  const int L = h.max_level();

  // Random orthonormal bases (leaf and transfer) and random couplings.
  for (index_t i = 0; i < h.num_nodes(L); ++i) {
    auto& nd = h.node(L, i);
    auto qf = la::qr(Matrix::random_normal(rng, nd.block_size(), nd.rank).view());
    nd.basis = std::move(qf.q);
    nd.diag = Matrix::random_spd(rng, nd.block_size());
  }
  for (int l = L - 1; l >= 1; --l) {
    for (index_t i = 0; i < h.num_nodes(l); ++i) {
      auto& nd = h.node(l, i);
      const index_t rows = h.node(l + 1, 2 * i).rank + h.node(l + 1, 2 * i + 1).rank;
      auto qf = la::qr(Matrix::random_normal(rng, rows, nd.rank).view());
      nd.basis = std::move(qf.q);
    }
  }
  double offdiag_bound = 0.0;
  for (int l = 1; l <= L; ++l) {
    double level_max = 0.0;
    for (index_t t = 0; t < h.num_pairs(l); ++t) {
      Matrix s = Matrix::random_normal(rng, h.node(l, 2 * t + 1).rank,
                                       h.node(l, 2 * t).rank);
      level_max = std::max(level_max, la::norm_fro(s.view()));
      h.coupling(l, t) = std::move(s);
    }
    offdiag_bound += level_max;
  }

  // Shift every leaf diagonal beyond the accumulated off-diagonal mass so
  // the whole operator is SPD (Gershgorin-style bound across levels).
  for (index_t i = 0; i < h.num_nodes(L); ++i) {
    auto& d = h.node(L, i).diag;
    for (index_t r = 0; r < d.rows(); ++r) d(r, r) += offdiag_bound + 1.0;
  }
  return h;
}

int hss_levels(index_t n, index_t leaf_size) {
  HATRIX_CHECK(n > 0 && leaf_size > 0, "bad hss_levels arguments");
  int levels = 0;
  while ((n + (index_t{1} << levels) - 1) / (index_t{1} << levels) > leaf_size)
    ++levels;
  return levels;
}

HSSMatrix build_hss(const BlockAccessor& acc, const HSSOptions& opts) {
  // The sequential build runs the construction task graph in insertion
  // order (DTD insertion order is a valid topological order by
  // construction), so it is the exact same per-node code — and produces the
  // exact same matrix — as the parallel executors.
  rt::TaskGraph graph;
  HSSBuildDag dag = emit_hss_build_dag(acc, opts, graph);
  for (const auto& t : graph.tasks())
    if (t.work) t.work();
  HSSMatrix h = extract_built_hss(dag);
  // Construction is pure FP64 regardless of precision mode (executor
  // bit-identity); the one-shot demotion happens on the settled matrix.
  if (opts.precision == PrecisionMode::MixedFP32) h.demote_lowrank();
  return h;
}

}  // namespace hatrix::fmt
