#pragma once
/// \file dag_dataflow.hpp
/// \brief Static dataflow & memory-lifetime analysis for task DAGs.
///
/// dag_verify.hpp proves the *edge set* complete against the declared
/// accesses; this pass analyzes the *values* flowing through those accesses.
/// Per data handle it reconstructs the def-use chain exactly as the DTD
/// inference saw it (tasks in insertion order, each access Read / ReadWrite /
/// Write), and from the chains derives:
///
///  1. typed diagnostics — a pure Read of a handle no task has yet written
///     (and that is not marked a graph input) throws DagUseBeforeDefError
///     naming the task and the resource; values produced but never consumed
///     (dead stores, fully dead tasks), writes that clobber an unconsumed
///     value, and zero-byte handles are reported as warnings;
///  2. lifetime intervals — def task and last-use task per handle — and from
///     them a static peak-resident-bytes bound: exact along the serial
///     insertion order, plus a bound valid for *any* edge-consistent
///     schedule (via the same ancestor bitsets the race check uses);
///  3. a last-use release schedule (ReleasePlan) the executors consume via
///     TaskGraph::set_release_hook, so emitters can free retired blocks at
///     their statically-proven last use instead of at teardown;
///  4. under a distsim mapping, per-rank footprint and cross-rank traffic
///     (analyze_dag_ranks), matching distsim::count_messages' edge walk.
///
/// This is the static block-storage budgeting that task-based sparse solvers
/// (Jacquelin et al.'s fan-both Cholesky, Lacoste et al.'s runtime-backed
/// PaStiX — see PAPERS.md) perform before executing a single task: the
/// paper's O(N) memory claim holds only if samples, rotated panels and Schur
/// pieces retire as the tree sweep ascends, and this pass proves where.
///
/// Gating mirrors the verifier: HATRIX_ANALYZE_DAG env /
/// Executor::set_analyze_dag / `--analyze-dag` bench flags, default on in
/// debug builds (analyze_dag_default).

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "runtime/dag_verify.hpp"
#include "runtime/task_graph.hpp"

namespace hatrix::rt {

/// A task declared a pure Read of a handle that no earlier task writes and
/// that is not marked a graph input (TaskGraph::mark_input): under DTD
/// semantics the task would consume uninitialized storage.
class DagUseBeforeDefError : public Error {
 public:
  DagUseBeforeDefError(TaskId task, std::string task_name, DataId resource,
                       std::string resource_name);

  TaskId task = -1;            ///< the reading task
  DataId resource = -1;        ///< the never-written handle
  std::string task_name;       ///< display name of the task
  std::string resource_name;   ///< display name of the handle
};

/// Non-fatal findings of the dataflow pass.
enum class DagWarningKind {
  DeadStore,           ///< final value of a handle is never consumed: the
                       ///< producing task's write is wasted (unless the
                       ///< handle is marked a graph output)
  DeadTask,            ///< every value the task produces is dead — the task
                       ///< could be deleted without changing any consumed
                       ///< result
  WriteAfterLastRead,  ///< a pure Write clobbers a value no task ever read
  ZeroBytes,           ///< an accessed handle has bytes == 0, so every byte
                       ///< accounting (peaks, traffic, release savings)
                       ///< silently undercounts it
};

/// One warning: the offending task/handle pair plus a rendered message.
struct DagWarning {
  DagWarningKind kind = DagWarningKind::DeadStore;
  TaskId task = -1;           ///< offending task (-1 for ZeroBytes)
  DataId resource = -1;       ///< handle the finding is about
  std::string task_name;      ///< display name of the task ("" if task < 0)
  std::string resource_name;  ///< display name of the handle
  std::string message;        ///< human-readable description
};

/// Lifetime interval of one handle, in task-insertion coordinates.
struct DataLifetime {
  DataId data = -1;      ///< the handle
  TaskId def = -1;       ///< first writing task (-1: input-only / untouched)
  TaskId last_use = -1;  ///< last task touching it (-1: untouched)
  std::int64_t uses = 0; ///< number of distinct tasks touching it
};

/// Last-use release schedule. Executors seed a refcount per handle from
/// `initial_uses`, decrement the counts in `task_data[t]` when task t's body
/// has completed, and fire TaskGraph::release_hook() the moment a count hits
/// zero — at that point every task that declared an access to the handle has
/// finished, on any edge-consistent schedule. Handles marked output (and
/// untouched handles) have initial_uses == 0 and never appear in task_data,
/// so the hook never fires for them.
struct ReleasePlan {
  std::vector<int> initial_uses;             ///< per-DataId distinct-task count
  std::vector<std::vector<DataId>> task_data;  ///< per-task deduped handles
};

/// Full analysis result. `stats` extends the verifier's structural numbers
/// with the byte accounting (data_bytes / peak_bytes_serial / peak_bytes_any).
struct DagDataflowReport {
  DagStats stats;
  std::vector<DataLifetime> lifetimes;  ///< indexed by DataId
  std::vector<DagWarning> warnings;
  ReleasePlan plan;
};

/// Per-rank usage under a task→rank mapping (analyze_dag_ranks).
struct RankUsage {
  /// Bytes resident on each rank: blocks it owns plus copies of remote
  /// blocks its tasks touch.
  std::vector<std::int64_t> footprint_bytes;
  /// Bytes each rank sends to other ranks (producer-side accounting).
  std::vector<std::int64_t> sent_bytes;
  std::int64_t cross_bytes = 0;     ///< total cross-rank traffic
  std::int64_t cross_messages = 0;  ///< producer→consumer-task messages,
                                    ///< aggregated per pair like
                                    ///< distsim::count_messages
};

/// Run the dataflow pass: throws DagUseBeforeDefError on the first read of a
/// never-written non-input handle; otherwise returns lifetimes, warnings,
/// the release schedule and the peak-bytes statistics. Cost is O(V + E + A)
/// for the chains plus O(V·A/64) bit-parallel work for the any-schedule
/// peak bound (A = total declared accesses) — the same ms-scale budget as
/// verify_dag on the production DAGs.
DagDataflowReport analyze_dag(const TaskGraph& graph);

/// Just the release schedule (no diagnostics, no peak accounting): a single
/// O(V + A) sweep. Executors call this when a release hook is installed,
/// whether or not full analysis is enabled.
ReleasePlan release_plan(const TaskGraph& graph);

/// Per-rank footprint and cross-rank traffic of `graph` under the mapping
/// `task_owner` (one rank id per task, e.g. distsim::Mapping::task_owner).
/// Traffic walks the last-writer chain exactly like the simulator's
/// data-flow edges, so cross_messages/cross_bytes agree with
/// distsim::count_messages on the same mapping.
RankUsage analyze_dag_ranks(const TaskGraph& graph,
                            const std::vector<int>& task_owner, int num_procs);

/// Default analyze-before-run policy for executors, mirroring
/// verify_dag_default(): HATRIX_ANALYZE_DAG forces on/off; unset means on in
/// debug builds, off in release builds.
bool analyze_dag_default();

/// How an emitter wires early release (the defaulted parameter of the
/// emit_* functions that support it).
enum class ReleaseMode {
  None,    ///< no release hook: blocks live until teardown (seed behavior)
  Free,    ///< free a block's backing storage at its proven last use
  Poison,  ///< debug: overwrite the block with NaNs instead of freeing, so
           ///< any task reading past the proven last use corrupts its
           ///< output and the conformance suite's bit-identity check fails
};

}  // namespace hatrix::rt
