// Fig. 12: impact of leaf size at N = 262,144 on 128 nodes (Yukawa).
//
// Rank fixed at 100 for HATRIX/STRUMPACK; LORAPO's max rank is half the
// leaf size (the paper's setting). Expected shape: HATRIX is fastest at
// small leaves (more level parallelism) and degrades steeply as the leaf
// grows (less parallelism, more work per task); LORAPO prefers mid/large
// tiles; STRUMPACK sits between.
//
// Note: the LORAPO task graph at leaf 512 would have (N/512)^3/6 ≈ 2.2e7
// tasks; the DAG itself (not the simulated cluster) would exceed this
// machine's memory, so the LORAPO sweep starts at leaf 1024 and the log
// says so — the paper's own LORAPO optimum is in the plotted range.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "hatrix/drivers.hpp"

using namespace hatrix;
using driver::SimExperiment;
using driver::System;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int nodes = static_cast<int>(cli.get_int("nodes", 128));
  const la::index_t n = cli.get_int("n", 262144);
  auto leaves = cli.get_int_list("leaves", {512, 1024, 2048, 4096, 8192, 16384});
  cli.reject_unknown();

  std::printf("Fig. 12: leaf-size sweep at N = %lld on %d nodes (Yukawa), rank 100\n",
              static_cast<long long>(n), nodes);
  TextTable table({"LEAF", "LORAPO (s)", "STRUMPACK (s)", "HATRIX-DTD (s)"});
  for (auto leaf : leaves) {
    SimExperiment e;
    e.n = n;
    e.leaf_size = leaf;
    e.rank = 100;
    e.nodes = nodes;
    auto hat = run_simulated(System::HatrixDTD, e);
    auto strum = run_simulated(System::StrumpackSim, e);
    std::string lor_s = "- (DAG too large)";
    if (n / leaf <= 256) {
      SimExperiment l = e;
      l.rank = leaf / 2;  // paper: LORAPO max rank = half the leaf size
      auto lor = run_simulated(System::LorapoSim, l);
      lor_s = fmt_fixed(lor.factor_time, 3);
    }
    table.add_row({std::to_string(leaf), lor_s, fmt_fixed(strum.factor_time, 3),
                   fmt_fixed(hat.factor_time, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape (paper): HATRIX wins at small leaves; large leaves hurt\n"
      "HATRIX (less parallelism, more work per task); LORAPO needs large tiles.\n");
  return 0;
}
