// Regenerate the paper's DAG figures from the real task graphs:
//
//  * Fig. 6 — the POTRF/TRSM/SYRK/GEMM DAG of a 3x3 tile Cholesky,
//  * Fig. 8 — the DIAG_PRODUCT/PARTIAL_FACTOR/MERGE DAG of a 2-level
//    HSS-ULV factorization.
//
// Emits Graphviz DOT (render with `dot -Tpng`). The point: these are not
// hand-drawn illustrations — the same emitters that execute and simulate
// also produce the figures, so the figures are guaranteed to match the
// implementation.
//
//   ./fig6_fig8_dags [--out-dir .] [--verify-dag]
//
// --verify-dag runs the static race & ordering verifier
// (runtime/dag_verify.hpp) on each emitted graph and prints its
// width/critical-path statistics.
#include <cstdio>
#include <fstream>

#include "common/cli.hpp"
#include "blrchol/blr_cholesky_tasks.hpp"
#include "format/hss_builder.hpp"
#include "runtime/dag_verify.hpp"
#include "runtime/trace.hpp"
#include "ulv/hss_ulv_tasks.hpp"

using namespace hatrix;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string dir = cli.get_string("out-dir", ".");
  const bool verify = cli.has("verify-dag");
  cli.reject_unknown();

  auto emit = [&](const char* what, rt::TaskGraph& g, const std::string& path) {
    std::ofstream(path) << rt::to_dot(g);
    std::printf("%s DAG: %lld tasks, %lld edges, critical path %lld -> %s\n",
                what, static_cast<long long>(g.num_tasks()),
                static_cast<long long>(g.num_edges()),
                static_cast<long long>(g.critical_path_length()), path.c_str());
    if (verify) {
      rt::DagStats s = rt::verify_dag(g);
      std::printf("  verified: no unordered conflicting accesses; "
                  "max width %lld, mean parallelism %.2f\n",
                  static_cast<long long>(s.max_width), s.avg_width);
    }
  };

  // Fig. 6: dense tile Cholesky on a 3x3 tiling.
  {
    rt::TaskGraph g;
    (void)blrchol::emit_dense_cholesky_dag({}, 3 * 32, 32, g, /*with_work=*/false);
    emit("Fig. 6", g, dir + "/fig6_tile_cholesky.dot");
  }

  // Fig. 8: HSS-ULV for a 2-level HSS matrix (4 leaves).
  {
    auto skel = fmt::make_hss_skeleton(1024, 256, 64);
    rt::TaskGraph g;
    (void)ulv::emit_hss_ulv_dag(skel, g, /*with_work=*/false);
    emit("Fig. 8", g, dir + "/fig8_hss_ulv.dot");
  }

  std::printf("Render with: dot -Tpng <file>.dot -o <file>.png\n");
  return 0;
}
