#pragma once
/// \file matrix.hpp
/// \brief Dense column-major matrix types and lightweight views.
///
/// The library is self-contained (no external BLAS/LAPACK required; an
/// optional vendor backend can be compiled in, see blas.hpp). Every dense
/// kernel operates on these types. `Matrix` owns its storage; the view
/// structs reference sub-blocks with a leading dimension, which is what
/// blocked factorization algorithms need. Views and the kernel layer are
/// templated on the scalar type: `double` everywhere by default, `float`
/// for the mixed-precision low-rank storage path and the FP32 kernels.
///
/// Mixed-precision storage: a `Matrix` (FP64 interface) can *demote* its
/// buffer to FP32 (`demote_storage()`), halving its resident footprint.
/// Demoted matrices cannot hand out FP64 views directly; readers promote
/// through `F64Block`, which is free for FP64-stored matrices and
/// materializes a short-lived FP64 copy for demoted ones.

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hatrix::la {

using index_t = std::int64_t;

class Matrix;

/// Live/peak bytes currently held by Matrix storage across all threads.
/// getrusage's ru_maxrss is monotone (an allocator rarely returns pages), so
/// the early-release measurements track allocations at the source instead:
/// every Matrix buffer is counted in on allocate and out on deallocate.
[[nodiscard]] std::int64_t matrix_bytes_live();
/// High-water mark of matrix_bytes_live() since the last reset.
[[nodiscard]] std::int64_t matrix_bytes_peak();
/// Reset the peak to the current live count (start of a measured region).
void reset_matrix_peak();

namespace detail {

/// Counters behind the free functions above (defined in matrix.cpp).
extern std::atomic<std::int64_t> g_matrix_live;
extern std::atomic<std::int64_t> g_matrix_peak;

/// Minimal std::vector allocator that maintains the live/peak counters.
template <class T>
struct TrackingAllocator {
  using value_type = T;
  TrackingAllocator() = default;
  template <class U>
  TrackingAllocator(const TrackingAllocator<U>&) {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
    const auto bytes = static_cast<std::int64_t>(n * sizeof(T));
    const std::int64_t live =
        g_matrix_live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::int64_t peak = g_matrix_peak.load(std::memory_order_relaxed);
    while (live > peak &&
           !g_matrix_peak.compare_exchange_weak(peak, live,
                                                std::memory_order_relaxed)) {
    }
    return std::allocator<T>{}.allocate(n);
  }
  void deallocate(T* p, std::size_t n) {
    g_matrix_live.fetch_sub(static_cast<std::int64_t>(n * sizeof(T)),
                            std::memory_order_relaxed);
    std::allocator<T>{}.deallocate(p, n);
  }
  friend bool operator==(const TrackingAllocator&, const TrackingAllocator&) {
    return true;
  }
  friend bool operator!=(const TrackingAllocator&, const TrackingAllocator&) {
    return false;
  }
};

}  // namespace detail

/// Non-owning read-only view of a column-major block of `T`.
template <class T>
struct ConstMatrixViewT {
  const T* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;  ///< leading dimension (stride between columns)

  const T& operator()(index_t i, index_t j) const { return data[i + j * ld]; }

  /// Sub-block view [i0, i0+m) x [j0, j0+n).
  [[nodiscard]] ConstMatrixViewT block(index_t i0, index_t j0, index_t m,
                                       index_t n) const {
    HATRIX_CHECK(i0 >= 0 && j0 >= 0 && i0 + m <= rows && j0 + n <= cols,
                 "block out of range");
    return {data + i0 + j0 * ld, m, n, ld};
  }
};

/// Non-owning mutable view of a column-major block of `T`.
template <class T>
struct MatrixViewT {
  T* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;

  T& operator()(index_t i, index_t j) const { return data[i + j * ld]; }

  operator ConstMatrixViewT<T>() const { return {data, rows, cols, ld}; }

  [[nodiscard]] MatrixViewT block(index_t i0, index_t j0, index_t m,
                                  index_t n) const {
    HATRIX_CHECK(i0 >= 0 && j0 >= 0 && i0 + m <= rows && j0 + n <= cols,
                 "block out of range");
    return {data + i0 + j0 * ld, m, n, ld};
  }
};

using ConstMatrixView = ConstMatrixViewT<double>;
using MatrixView = MatrixViewT<double>;
using ConstMatrixViewF = ConstMatrixViewT<float>;
using MatrixViewF = MatrixViewT<float>;

/// Owning dense column-major FP32 matrix. The storage sibling of `Matrix`
/// for the FP32 kernel path (benchmarks, conformance tests); the format
/// layers use `Matrix::demote_storage()` rather than this type so their
/// interfaces stay FP64.
class MatrixF {
 public:
  MatrixF() = default;
  MatrixF(index_t r, index_t c)
      : rows_(r), cols_(c), data_(static_cast<std::size_t>(r * c), 0.0F) {
    HATRIX_CHECK(r >= 0 && c >= 0, "negative dimension");
  }

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }
  [[nodiscard]] std::int64_t bytes() const {
    return static_cast<std::int64_t>(data_.size() * sizeof(float));
  }

  float& operator()(index_t i, index_t j) {
    return data_[static_cast<std::size_t>(i + j * rows_)];
  }
  const float& operator()(index_t i, index_t j) const {
    return data_[static_cast<std::size_t>(i + j * rows_)];
  }

  float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

  [[nodiscard]] MatrixViewF view() { return {data_.data(), rows_, cols_, rows_}; }
  [[nodiscard]] ConstMatrixViewF view() const {
    return {data_.data(), rows_, cols_, rows_};
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<float, detail::TrackingAllocator<float>> data_;
};

/// Owning dense column-major matrix with an FP64 interface. Normally backed
/// by an FP64 buffer; `demote_storage()` swaps the backing store to FP32
/// (rounding every entry once), halving the resident footprint — the
/// mixed-precision resting state for low-rank factors whose compression
/// error already exceeds FP32 rounding.
class Matrix {
 public:
  Matrix() = default;

  /// Zero-initialized r x c matrix.
  Matrix(index_t r, index_t c)
      : rows_(r), cols_(c), data_(static_cast<std::size_t>(r * c), 0.0) {
    HATRIX_CHECK(r >= 0 && c >= 0, "negative dimension");
  }

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  // The implicit moves would steal the buffers but copy rows_/cols_, leaving
  // the source with nonzero dimensions over a null buffer — view() on it
  // would then hand out a writable null view (the release-hook poison path
  // fills whatever view it is given). Reset the source to a genuine empty
  // matrix.
  Matrix(Matrix&& other) noexcept
      : rows_(std::exchange(other.rows_, 0)),
        cols_(std::exchange(other.cols_, 0)),
        data_(std::move(other.data_)),
        data32_(std::move(other.data32_)) {}
  Matrix& operator=(Matrix&& other) noexcept {
    rows_ = std::exchange(other.rows_, 0);
    cols_ = std::exchange(other.cols_, 0);
    data_ = std::move(other.data_);
    data32_ = std::move(other.data32_);
    return *this;
  }
  ~Matrix() = default;

  static Matrix zeros(index_t r, index_t c) { return Matrix(r, c); }
  static Matrix identity(index_t n);
  /// i.i.d. standard normal entries.
  static Matrix random_normal(Rng& rng, index_t r, index_t c);
  /// Random symmetric positive definite matrix (GGᵀ + n·I shift).
  static Matrix random_spd(Rng& rng, index_t n);
  /// Deep copy of an arbitrary view.
  static Matrix from_view(ConstMatrixView v);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }
  /// Storage footprint in bytes of the *actual* backing store (FP32 when
  /// demoted), used by the communication and memory models.
  [[nodiscard]] std::int64_t bytes() const {
    return static_cast<std::int64_t>(data_.size() * sizeof(double) +
                                     data32_.size() * sizeof(float));
  }

  double& operator()(index_t i, index_t j) { return data_[static_cast<std::size_t>(i + j * rows_)]; }
  const double& operator()(index_t i, index_t j) const {
    return data_[static_cast<std::size_t>(i + j * rows_)];
  }

  double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  [[nodiscard]] MatrixView view() {
    HATRIX_CHECK(data32_.empty(), "view() on FP32-demoted matrix; promote first");
    return {data_.data(), rows_, cols_, rows_};
  }
  [[nodiscard]] ConstMatrixView view() const {
    HATRIX_CHECK(data32_.empty(), "view() on FP32-demoted matrix; promote first");
    return {data_.data(), rows_, cols_, rows_};
  }
  operator MatrixView() { return view(); }
  operator ConstMatrixView() const { return view(); }

  [[nodiscard]] MatrixView block(index_t i0, index_t j0, index_t m, index_t n) {
    return view().block(i0, j0, m, n);
  }
  [[nodiscard]] ConstMatrixView block(index_t i0, index_t j0, index_t m, index_t n) const {
    return view().block(i0, j0, m, n);
  }

  /// True when the backing store is FP32 (demoted).
  [[nodiscard]] bool is_f32() const { return !data32_.empty(); }
  /// FP32 view of a demoted matrix (the FP32 kernels consume this).
  [[nodiscard]] ConstMatrixViewF f32_view() const {
    HATRIX_CHECK(data_.empty(), "f32_view() on FP64-stored matrix");
    return {data32_.data(), rows_, cols_, rows_};
  }

  /// Round every entry through FP32 and keep the FP32 buffer as the backing
  /// store (the FP64 buffer is freed). No-op on empty or already-demoted
  /// matrices. Deterministic: round-to-nearest per entry, no arithmetic.
  void demote_storage();
  /// Restore an FP64 backing store in place (exact widening). No-op unless
  /// demoted.
  void promote_storage();
  /// FP64 copy of the contents regardless of storage precision.
  [[nodiscard]] Matrix f64_copy() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<double, detail::TrackingAllocator<double>> data_;
  /// FP32 backing store when demoted; empty otherwise. At most one of
  /// data_/data32_ is non-empty for a non-empty matrix.
  std::vector<float, detail::TrackingAllocator<float>> data32_;
};

/// Read guard yielding an FP64 view of a possibly-demoted Matrix: a direct
/// (zero-copy) view when the matrix is FP64-stored, a promoted temporary
/// owned by the guard when it is FP32-stored. Usable inline —
/// `f(F64Block(m).view())` — because the temporary lives to the end of the
/// full expression.
class F64Block {
 public:
  explicit F64Block(const Matrix& m) : src_(&m) {
    if (m.is_f32()) tmp_ = m.f64_copy();
  }
  F64Block(const F64Block&) = delete;
  F64Block& operator=(const F64Block&) = delete;

  [[nodiscard]] ConstMatrixView view() const {
    return src_->is_f32() ? tmp_.view() : src_->view();
  }

 private:
  const Matrix* src_;
  Matrix tmp_;
};

/// Deep copy helper (dst and src must have equal shapes).
void copy(ConstMatrixView src, MatrixView dst);
void copy(ConstMatrixViewF src, MatrixViewF dst);

/// Precision converters between view element types (shape-checked).
void widen(ConstMatrixViewF src, MatrixView dst);
void narrow(ConstMatrixView src, MatrixViewF dst);
/// FP32 deep copy of an FP64 view (entry-wise rounding).
MatrixF to_f32(ConstMatrixView v);
/// FP64 deep copy of an FP32 view (exact widening).
Matrix to_f64(ConstMatrixViewF v);

/// Return the transpose as a new matrix.
Matrix transpose(ConstMatrixView a);

/// Stack views vertically: [A; B; ...]. All must share the column count.
Matrix vconcat(const std::vector<ConstMatrixView>& parts);

/// Stack views horizontally: [A, B, ...]. All must share the row count.
Matrix hconcat(const std::vector<ConstMatrixView>& parts);

/// dst(i, :) = src(perm[i], :): gathers rows by index.
Matrix gather_rows(ConstMatrixView src, const std::vector<index_t>& rows);

/// dst(:, j) = src(:, perm[j]): gathers columns by index.
Matrix gather_cols(ConstMatrixView src, const std::vector<index_t>& cols);

/// Set every entry of the view to `value`.
void fill(MatrixView a, double value);
void fill(MatrixViewF a, float value);

}  // namespace hatrix::la
