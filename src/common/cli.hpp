#pragma once
/// \file cli.hpp
/// \brief Minimal command-line flag parser shared by benches and examples.
///
/// Supports `--name value` and `--name=value` forms. Unknown flags raise an
/// error so typos in experiment scripts fail loudly.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace hatrix {

/// Parses `--key value` / `--key=value` style argument lists.
///
/// Numeric getters reject malformed values (`--n foo`), and
/// `reject_unknown()` throws for any flag the program never queried, so a
/// typo'd flag name fails loudly instead of silently using the fallback.
class Cli {
 public:
  Cli(int argc, char** argv);

  /// True if the flag was given on the command line.
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] std::string get_string(const std::string& name, const std::string& fallback) const;

  /// Comma-separated list of integers, e.g. `--nodes 2,8,32,128`.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& name, const std::vector<std::int64_t>& fallback) const;

  /// Throws hatrix::Error if any given flag was never queried via has()/get_*.
  /// Call after reading all expected flags.
  void reject_unknown() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> queried_;
};

}  // namespace hatrix
