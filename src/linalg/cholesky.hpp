#pragma once
/// \file cholesky.hpp
/// \brief Cholesky factorization and SPD solves.

#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

namespace hatrix::la {

/// In-place lower Cholesky A = L·Lᵀ. Only the lower triangle of `a` is
/// referenced; on return the matrix holds exactly L (the strict upper
/// triangle is zeroed). Throws hatrix::Error if a non-positive pivot is met,
/// i.e. the matrix is not positive definite. Blocked right-looking algorithm
/// on top of the dispatched trsm/syrk/gemm kernels, in both precisions.
void potrf(MatrixView a);
void potrf(MatrixViewF a);

/// Solve A·X = B given the lower Cholesky factor L from potrf (B is
/// overwritten with the solution).
void potrs(ConstMatrixView l, MatrixView b);

/// Convenience: solve SPD system A·X = B without destroying A; returns X.
Matrix solve_spd(ConstMatrixView a, ConstMatrixView b);

}  // namespace hatrix::la
