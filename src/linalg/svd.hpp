#pragma once
/// \file svd.hpp
/// \brief Singular value decomposition (one-sided Jacobi).
///
/// Used for truncation-quality low-rank recompression (rounded addition in
/// the BLR Cholesky) and as the reference decomposition in tests. Intended
/// for the small-to-medium blocks this library manipulates (up to a few
/// thousand rows/columns).

#include "linalg/matrix.hpp"

namespace hatrix::la {

/// Full (economy) SVD: A = U · diag(s) · Vᵀ with U (m x k), V (n x k),
/// k = min(m, n), singular values sorted descending.
struct SvdResult {
  Matrix u;
  std::vector<double> s;
  Matrix v;
};
SvdResult svd(ConstMatrixView a);

/// Number of singular values strictly greater than `tol` (absolute) —
/// the numerical epsilon-rank.
index_t numerical_rank(const std::vector<double>& s, double tol);

}  // namespace hatrix::la
