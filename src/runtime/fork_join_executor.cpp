#include "runtime/fork_join_executor.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "runtime/dag_verify.hpp"
#include "runtime/thread_pool_executor.hpp"

namespace hatrix::rt {

ForkJoinExecutor::ForkJoinExecutor(int num_workers)
    : num_workers_(num_workers), verify_dag_(verify_dag_default()) {
  HATRIX_CHECK(num_workers >= 1, "executor needs at least one worker");
}

ExecutionStats ForkJoinExecutor::run(const TaskGraph& graph) {
  if (verify_dag_) (void)verify_dag(graph);
  const auto n = static_cast<std::size_t>(graph.num_tasks());
  ExecutionStats stats;
  stats.workers = num_workers_;
  stats.traces.resize(n);
  if (n == 0) return stats;

  // Check the fork-join invariant: edges never point to an earlier phase.
  for (std::size_t t = 0; t < n; ++t)
    for (TaskId s : graph.successors()[t])
      HATRIX_CHECK(graph.tasks()[static_cast<std::size_t>(s)].phase >=
                       graph.tasks()[t].phase,
                   "fork-join executor: dependency crosses phases backwards");

  // Group tasks by phase, preserving insertion order.
  std::map<int, std::vector<TaskId>> phases;
  for (std::size_t t = 0; t < n; ++t)
    phases[graph.tasks()[t].phase].push_back(static_cast<TaskId>(t));

  const auto t0 = std::chrono::steady_clock::now();
  auto now_seconds = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  // Execute each phase as its own sub-graph through the asynchronous
  // executor, with a barrier (the join) between phases.
  for (const auto& [phase, ids] : phases) {
    TaskGraph sub;
    // Recreate accesses so intra-phase dependencies survive; data ids are
    // shared with the parent graph (same registration order).
    for (const auto& d : graph.data()) sub.register_data(d.name, d.bytes, d.owner);
    for (TaskId id : ids) {
      const Task& t = graph.tasks()[static_cast<std::size_t>(id)];
      Task copy;
      copy.name = t.name;
      copy.kind = t.kind;
      copy.dims = t.dims;
      copy.work = t.work;
      copy.accesses = t.accesses;
      copy.priority = t.priority;
      copy.phase = t.phase;
      sub.insert_task(std::move(copy));
    }
    const double phase_start = now_seconds();
    ThreadPoolExecutor pool(num_workers_);
    // The whole graph was already verified above; the per-phase sub-graphs
    // re-derive their edges from the same access sets.
    pool.set_verify_dag(false);
    ExecutionStats phase_stats = pool.run(sub);
    // Splice the phase trace back into global task ids / global clock.
    for (std::size_t k = 0; k < ids.size(); ++k) {
      const auto& tr = phase_stats.traces[k];
      auto& out = stats.traces[static_cast<std::size_t>(ids[k])];
      out.task = ids[k];
      out.worker = tr.worker;
      out.start = phase_start + tr.start;
      out.end = phase_start + tr.end;
    }
  }

  stats.wall_time = now_seconds();
  for (const auto& tr : stats.traces) stats.compute_total += tr.duration();
  stats.overhead_total = stats.wall_time * num_workers_ - stats.compute_total;
  return stats;
}

}  // namespace hatrix::rt
