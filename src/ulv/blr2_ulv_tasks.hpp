#pragma once
/// \file blr2_ulv_tasks.hpp
/// \brief BLR²-ULV (Alg. 1) as a task graph.
///
/// Per block: DIAG_PRODUCT(i) and PARTIAL_FACTOR(i), all mutually
/// independent (the weak-admissibility ULV property); then a single MERGE
/// task permutes every skeleton block into one dense matrix, and one final
/// CHOLESKY factorizes it. The DAG makes Alg. 1's scaling defect visible:
/// the merge/Cholesky pair is a serial O((N·rank/leaf)^3) bottleneck that
/// grows with N — exactly why the multi-level HSS-ULV exists (Sec. 3.1).

#include <memory>

#include "runtime/task_graph.hpp"
#include "ulv/blr2_ulv.hpp"

namespace hatrix::ulv {

struct BLR2ULVTaskState {
  const fmt::BLR2Matrix* a = nullptr;
  std::vector<DiagProductResult> rotated;
  std::vector<NodeFactor> factors;
  std::vector<Matrix> schur;
  Matrix merged_l;
};

struct BLR2ULVDag {
  std::shared_ptr<BLR2ULVTaskState> state;
};

/// Emit the Alg. 1 DAG; with work closures the graph computes the real
/// factorization (read it back with `extract_blr2_factorization`), without
/// it carries kinds/dims for costing.
BLR2ULVDag emit_blr2_ulv_dag(const fmt::BLR2Matrix& a, rt::TaskGraph& graph,
                             bool with_work);

/// Package the executed DAG's results as a BLR2ULV equivalent to the
/// sequential factorization.
BLR2ULV extract_blr2_factorization(const BLR2ULVDag& dag);

}  // namespace hatrix::ulv
