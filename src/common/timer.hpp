#pragma once
/// \file timer.hpp
/// \brief Monotonic wall-clock timer used by benches and the runtime tracer.

#include <chrono>

namespace hatrix {

/// Simple monotonic stopwatch. Constructed running; `seconds()` reports the
/// elapsed time since construction or the last `reset()`.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction / last reset.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace hatrix
