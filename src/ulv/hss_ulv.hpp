#pragma once
/// \file hss_ulv.hpp
/// \brief HSS-ULV factorization and solve (Alg. 2, Eq. 16-17).
///
/// The O(N) direct factorization at the heart of the paper: per level, every
/// node's diagonal is rotated by its shared basis and partially factorized
/// independently (embarrassingly parallel within a level); the merge step
/// stitches the two children's skeleton Schur complements and their sibling
/// coupling into the parent's dense diagonal. The root block gets a plain
/// dense Cholesky.

#include <vector>

#include "format/hss.hpp"
#include "ulv/ulv_common.hpp"

namespace hatrix::ulv {

/// The factored form of an SPD HSS matrix. Holds per-node partial factors
/// plus the root Cholesky factor; solves run in O(N·rank).
class HSSULV {
 public:
  HSSULV() = default;

  /// Assemble a factorization from externally computed pieces — used by the
  /// task-based factorization (hss_ulv_tasks) after the runtime has executed
  /// the DAG. `factors[level][node]`; `root_l` is the Cholesky factor of A_0.
  HSSULV(const fmt::HSSMatrix& a, std::vector<std::vector<NodeFactor>> factors,
         Matrix root_l)
      : a_(&a), factors_(std::move(factors)), root_l_(std::move(root_l)) {}

  /// Factorize a symmetric positive definite HSS matrix. Throws
  /// hatrix::Error if a pivot fails (matrix not SPD on the compressed
  /// representation).
  static HSSULV factorize(const fmt::HSSMatrix& a);

  /// Solve A x = b; returns x. `b.size()` must equal `a.size()`.
  [[nodiscard]] std::vector<double> solve(const std::vector<double>& b) const;

  /// Solve A X = B column by column for a block of right-hand sides.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// Solve with iterative refinement: after the direct ULV solve, perform
  /// `iterations` residual-correction steps r = b - A x (A applied through
  /// the compressed matvec), x += A^{-1} r. Cheap (O(N·rank) per step) and
  /// recovers digits lost to compression roundoff.
  [[nodiscard]] std::vector<double> solve_refined(const std::vector<double>& b,
                                                  int iterations = 1) const;

  /// Total bytes held by the factors (complements + triangles + root).
  [[nodiscard]] std::int64_t memory_bytes() const;

  /// The matrix this factorization refers to (not owned).
  [[nodiscard]] const fmt::HSSMatrix& matrix() const { return *a_; }

  /// Per-node factor access (used by the task-based solve).
  [[nodiscard]] const NodeFactor& factor(int level, index_t i) const {
    return factors_[static_cast<std::size_t>(level)][static_cast<std::size_t>(i)];
  }
  /// Cholesky factor of the root block A_0.
  [[nodiscard]] const Matrix& root_factor() const { return root_l_; }

 private:
  const fmt::HSSMatrix* a_ = nullptr;
  std::vector<std::vector<NodeFactor>> factors_;  // [level][node]
  Matrix root_l_;                                 // dense Cholesky of A_0
};

/// Convenience: relative solve error of Eq. (19),
/// || b - A^{-1} (A b) || / || b ||, using the compressed matvec for A·b.
double ulv_solve_error(const fmt::HSSMatrix& a, const HSSULV& f,
                       const std::vector<double>& b);

}  // namespace hatrix::ulv
