// Ablation: process-distribution policy for the HSS-ULV (Sec. 4.3, Fig. 7).
//
// Same DAG, same runtime, same cluster — only the data distribution varies:
// HATRIX-DTD's row-cyclic layout vs a ScaLAPACK-style block-cyclic deal.
// Reports messages, bytes, and simulated factorization time; row-cyclic
// should ship less data and run faster, which is exactly why the paper
// chose it. --verify-dag statically verifies the emitted DAG
// (runtime/dag_verify.hpp) before it is mapped and simulated.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "distsim/des.hpp"
#include "format/hss_builder.hpp"
#include "runtime/dag_verify.hpp"
#include "ulv/hss_ulv_tasks.hpp"

using namespace hatrix;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const la::index_t n = cli.get_int("n", 65536);
  const la::index_t leaf = cli.get_int("leaf", 256);
  const la::index_t rank = cli.get_int("rank", 100);
  auto nodes_list = cli.get_int_list("nodes", {4, 16, 64});
  const bool verify = cli.has("verify-dag");
  cli.reject_unknown();

  std::printf("Ablation: HSS-ULV data distribution (N=%lld leaf=%lld rank=%lld)\n\n",
              static_cast<long long>(n), static_cast<long long>(leaf),
              static_cast<long long>(rank));
  TextTable table({"NODES", "policy", "messages", "MB shipped", "sim time (s)"});

  fmt::HSSMatrix skel = fmt::make_hss_skeleton(n, leaf, rank);
  distsim::CostModel cost(40.0);
  for (auto nodes : nodes_list) {
    for (int policy = 0; policy < 2; ++policy) {
      rt::TaskGraph graph;
      auto dag = ulv::emit_hss_ulv_dag(skel, graph, false);
      if (verify) (void)rt::verify_dag(graph);
      distsim::Mapping map =
          policy == 0 ? distsim::map_hss_row_cyclic(dag, graph, static_cast<int>(nodes))
                      : distsim::map_hss_block_cyclic(dag, graph, static_cast<int>(nodes));
      distsim::SimConfig cfg;
      cfg.procs = static_cast<int>(nodes);
      cfg.cores_per_proc = 48;
      auto res = distsim::simulate(graph, map, cost, cfg);
      table.add_row({std::to_string(nodes), policy == 0 ? "row-cyclic" : "block-cyclic",
                     std::to_string(res.messages),
                     fmt_fixed(static_cast<double>(res.bytes) / 1e6, 2),
                     fmt_fixed(res.makespan, 4)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
