// Table 1: measured compute and communication complexity classes.
//
// The paper's table is analytic; here we *measure* both columns from the
// real task DAGs: total modeled flops and total cross-process communication
// bytes while sweeping N, then fit the scaling exponent. Expected:
//   DPLASMA  dense  Cholesky  ~N^3 compute, heavy comm
//   LORAPO   BLR    Cholesky  ~N^2 compute (between HSS and dense)
//   HATRIX   HSS    ULV       ~N^1 compute, ~N^1 comm
//   STRUMPACK HSS   ULV       ~N^1 compute, more comm than HATRIX
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "hatrix/drivers.hpp"

using namespace hatrix;
using driver::SimExperiment;
using driver::System;

namespace {

struct Fit {
  double flop_exp;
  double comm_exp;
  double flops_hi;
  double bytes_hi;
};

Fit fit_system(System sys, la::index_t n_lo, la::index_t n_hi, la::index_t leaf,
               la::index_t rank, int nodes, bool blr_tuned_tile = false) {
  auto run = [&](la::index_t n) {
    SimExperiment e;
    e.n = n;
    e.leaf_size = leaf;
    e.rank = rank;
    e.nodes = nodes;
    if (blr_tuned_tile) {
      // BLR reaches its O(N^2 r) bound with tiles of size ~ sqrt(N r)
      // (rounded to a power of two) — the tuning the paper applies.
      la::index_t b = 128;
      while (b * b < n * rank) b *= 2;
      e.leaf_size = b / 2;
    }
    return run_simulated(sys, e);
  };
  auto lo = run(n_lo);
  auto hi = run(n_hi);
  const double ratio = static_cast<double>(n_hi) / static_cast<double>(n_lo);
  Fit f;
  f.flop_exp = std::log(hi.flops / lo.flops) / std::log(ratio);
  f.comm_exp = (lo.comm_bytes > 0 && hi.comm_bytes > 0)
                   ? std::log(static_cast<double>(hi.comm_bytes) /
                              static_cast<double>(lo.comm_bytes)) /
                         std::log(ratio)
                   : 0.0;
  f.flops_hi = hi.flops;
  f.bytes_hi = static_cast<double>(hi.comm_bytes);
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int nodes = static_cast<int>(cli.get_int("nodes", 16));
  const la::index_t n_lo = cli.get_int("n-lo", 16384);
  const la::index_t n_hi = cli.get_int("n-hi", 65536);
  cli.reject_unknown();

  std::printf("Table 1 reproduction: measured complexity exponents (N: %lld -> %lld, %d nodes)\n\n",
              static_cast<long long>(n_lo), static_cast<long long>(n_hi), nodes);

  TextTable table({"Library", "Format", "Algorithm", "Paradigm",
                   "Compute exp (paper)", "Comm exp (relative)"});

  auto dplasma = fit_system(System::DenseDplasmaSim, n_lo / 4, n_hi / 4, 2048, 0, nodes);
  table.add_row({"DPLASMA", "Dense", "Tile Cholesky", "Asynchronous",
                 fmt_fixed(dplasma.flop_exp, 2) + "  (3 = O(N^3))",
                 fmt_fixed(dplasma.comm_exp, 2)});

  auto lorapo = fit_system(System::LorapoSim, n_lo, n_hi, 1024, 128, nodes,
                           /*blr_tuned_tile=*/true);
  table.add_row({"LORAPO", "BLR", "Tile Cholesky", "Asynchronous",
                 fmt_fixed(lorapo.flop_exp, 2) + "  (2 = O(N^2))",
                 fmt_fixed(lorapo.comm_exp, 2)});

  auto strum = fit_system(System::StrumpackSim, n_lo, n_hi, 256, 100, nodes);
  table.add_row({"STRUMPACK", "HSS", "ULV", "Fork-join",
                 fmt_fixed(strum.flop_exp, 2) + "  (1 = O(N))",
                 fmt_fixed(strum.comm_exp, 2)});

  auto hatrix = fit_system(System::HatrixDTD, n_lo, n_hi, 256, 100, nodes);
  table.add_row({"HATRIX-DTD", "HSS", "ULV", "Asynchronous",
                 fmt_fixed(hatrix.flop_exp, 2) + "  (1 = O(N))",
                 fmt_fixed(hatrix.comm_exp, 2)});

  std::printf("%s\n", table.to_string().c_str());

  std::printf("Absolute comm volume at N = %lld: HATRIX %.3g MB vs STRUMPACK %.3g MB\n",
              static_cast<long long>(n_hi), hatrix.bytes_hi / 1e6, strum.bytes_hi / 1e6);
  std::printf("(HSS row-cyclic ships less data than block-cyclic, Sec. 4.3.)\n");
  return 0;
}
