#include "linalg/qr.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/flops.hpp"
#include "linalg/blas.hpp"

namespace hatrix::la {

namespace {

// Generate a Householder reflector for x (length m): H = I - tau v vᵀ with
// v[0] = 1, such that H x = (beta, 0, ..., 0). Returns {tau, beta}; v is
// written over x[1:].
struct Reflector {
  double tau;
  double beta;
};

Reflector make_reflector(double* x, index_t m) {
  double sigma = 0.0;
  for (index_t i = 1; i < m; ++i) sigma += x[i] * x[i];
  const double alpha = x[0];
  if (sigma == 0.0) {
    return {0.0, alpha};  // already e1-aligned; H = I
  }
  const double norm = std::sqrt(alpha * alpha + sigma);
  const double beta = alpha >= 0.0 ? -norm : norm;
  const double v0 = alpha - beta;
  for (index_t i = 1; i < m; ++i) x[i] /= v0;
  const double tau = (beta - alpha) / beta;
  return {tau, beta};
}

// Apply H = I - tau v vᵀ (v[0] implicit 1, stored in col below diag) to the
// block C (m x n) from the left: C := H C.
void apply_reflector(const double* v, double tau, MatrixView c) {
  if (tau == 0.0) return;
  const index_t m = c.rows, n = c.cols;
  flops::add(static_cast<std::uint64_t>(4) * m * n);
  for (index_t j = 0; j < n; ++j) {
    double s = c(0, j);
    for (index_t i = 1; i < m; ++i) s += v[i] * c(i, j);
    s *= tau;
    c(0, j) -= s;
    for (index_t i = 1; i < m; ++i) c(i, j) -= v[i] * s;
  }
}

}  // namespace

QrResult qr(ConstMatrixView a) {
  const index_t m = a.rows, n = a.cols;
  const index_t k = std::min(m, n);
  Matrix work = Matrix::from_view(a);
  std::vector<double> tau(static_cast<std::size_t>(k), 0.0);

  for (index_t j = 0; j < k; ++j) {
    MatrixView col = work.block(j, j, m - j, 1);
    auto refl = make_reflector(col.data, m - j);
    tau[static_cast<std::size_t>(j)] = refl.tau;
    const double beta = refl.beta;
    if (j + 1 < n)
      apply_reflector(col.data, refl.tau, work.block(j, j + 1, m - j, n - j - 1));
    work(j, j) = beta;  // R diagonal; v is stored below
  }

  QrResult out;
  out.r = Matrix(k, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= std::min(j, k - 1); ++i) out.r(i, j) = work(i, j);

  // Accumulate Q = H_0 ... H_{k-1} applied to the first k columns of I,
  // by applying reflectors in reverse order.
  out.q = Matrix(m, k);
  for (index_t j = 0; j < k; ++j) out.q(j, j) = 1.0;
  for (index_t j = k - 1; j >= 0; --j) {
    // Reflector j acts on rows [j, m).
    std::vector<double> v(static_cast<std::size_t>(m - j));
    v[0] = 1.0;
    for (index_t i = 1; i < m - j; ++i) v[static_cast<std::size_t>(i)] = work(j + i, j);
    apply_reflector(v.data(), tau[static_cast<std::size_t>(j)],
                    out.q.block(j, j, m - j, k - j));
  }
  return out;
}

PivotedQrResult pivoted_qr(ConstMatrixView a, index_t max_rank, double tol) {
  const index_t m = a.rows, n = a.cols;
  const index_t kmax = std::min({m, n, std::max<index_t>(max_rank, 0)});
  Matrix work = Matrix::from_view(a);

  PivotedQrResult out;
  out.perm.resize(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) out.perm[static_cast<std::size_t>(j)] = j;

  std::vector<double> tau;
  tau.reserve(static_cast<std::size_t>(kmax));
  // Trailing column norms, downdated LAPACK dgeqp3-style: keep the norm when
  // it was last recomputed exactly, and recompute when the accumulated
  // downdates could be dominated by cancellation.
  std::vector<double> colnorm(static_cast<std::size_t>(n), 0.0);
  std::vector<double> colnorm_ref(static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (index_t i = 0; i < m; ++i) s += work(i, j) * work(i, j);
    colnorm[static_cast<std::size_t>(j)] = std::sqrt(s);
    colnorm_ref[static_cast<std::size_t>(j)] = colnorm[static_cast<std::size_t>(j)];
  }

  index_t k = 0;
  for (; k < kmax; ++k) {
    // Pivot: column with the largest remaining norm.
    index_t p = k;
    for (index_t j = k + 1; j < n; ++j)
      if (colnorm[static_cast<std::size_t>(j)] > colnorm[static_cast<std::size_t>(p)])
        p = j;
    if (colnorm[static_cast<std::size_t>(p)] <= tol) break;
    if (p != k) {
      for (index_t i = 0; i < m; ++i) std::swap(work(i, k), work(i, p));
      std::swap(colnorm[static_cast<std::size_t>(k)], colnorm[static_cast<std::size_t>(p)]);
      std::swap(colnorm_ref[static_cast<std::size_t>(k)], colnorm_ref[static_cast<std::size_t>(p)]);
      std::swap(out.perm[static_cast<std::size_t>(k)], out.perm[static_cast<std::size_t>(p)]);
    }

    MatrixView col = work.block(k, k, m - k, 1);
    auto refl = make_reflector(col.data, m - k);
    tau.push_back(refl.tau);
    if (k + 1 < n)
      apply_reflector(col.data, refl.tau, work.block(k, k + 1, m - k, n - k - 1));
    work(k, k) = refl.beta;

    for (index_t j = k + 1; j < n; ++j) {
      auto& cn = colnorm[static_cast<std::size_t>(j)];
      if (cn == 0.0) continue;
      double temp = std::abs(work(k, j)) / cn;
      temp = std::max(0.0, (1.0 + temp) * (1.0 - temp));
      const double ratio = cn / colnorm_ref[static_cast<std::size_t>(j)];
      // When the downdated norm has lost ~half the mantissa relative to the
      // reference norm, recompute it exactly from the trailing rows.
      if (temp * ratio * ratio <= 1e-14) {
        double s = 0.0;
        for (index_t i = k + 1; i < m; ++i) s += work(i, j) * work(i, j);
        cn = std::sqrt(s);
        colnorm_ref[static_cast<std::size_t>(j)] = cn;
      } else {
        cn *= std::sqrt(temp);
      }
    }
  }
  out.rank = k;

  out.r = Matrix(k, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= std::min(j, k - 1); ++i) out.r(i, j) = work(i, j);

  out.q = Matrix(m, k);
  for (index_t j = 0; j < k; ++j) out.q(j, j) = 1.0;
  for (index_t j = k - 1; j >= 0; --j) {
    std::vector<double> v(static_cast<std::size_t>(m - j));
    v[0] = 1.0;
    for (index_t i = 1; i < m - j; ++i) v[static_cast<std::size_t>(i)] = work(j + i, j);
    apply_reflector(v.data(), tau[static_cast<std::size_t>(j)],
                    out.q.block(j, j, m - j, k - j));
  }
  return out;
}

Matrix orth_complement(ConstMatrixView u) {
  const index_t m = u.rows, k = u.cols;
  HATRIX_CHECK(k <= m, "orth_complement: more columns than rows");
  if (k == 0) return Matrix::identity(m);

  // Householder-factorize U; the full Q's trailing m-k columns span the
  // complement of col(U) because U = Q[:, :k] R.
  Matrix work = Matrix::from_view(u);
  std::vector<double> tau(static_cast<std::size_t>(k), 0.0);
  for (index_t j = 0; j < k; ++j) {
    MatrixView col = work.block(j, j, m - j, 1);
    auto refl = make_reflector(col.data, m - j);
    tau[static_cast<std::size_t>(j)] = refl.tau;
    if (j + 1 < k)
      apply_reflector(col.data, refl.tau, work.block(j, j + 1, m - j, k - j - 1));
    work(j, j) = refl.beta;
  }

  // Apply H_0 ... H_{k-1} to the identity columns k..m.
  Matrix q(m, m - k);
  for (index_t j = 0; j < m - k; ++j) q(k + j, j) = 1.0;
  for (index_t j = k - 1; j >= 0; --j) {
    std::vector<double> v(static_cast<std::size_t>(m - j));
    v[0] = 1.0;
    for (index_t i = 1; i < m - j; ++i) v[static_cast<std::size_t>(i)] = work(j + i, j);
    apply_reflector(v.data(), tau[static_cast<std::size_t>(j)],
                    q.block(j, 0, m - j, m - k));
  }
  return q;
}

}  // namespace hatrix::la
