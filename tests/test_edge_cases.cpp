// Edge-case and failure-injection tests across modules: degenerate shapes,
// zero ranks, pathological inputs, and the umbrella header.
#include <gtest/gtest.h>

#include "hatrix/hatrix.hpp"  // umbrella header must compile standalone

namespace hatrix {
namespace {

using la::index_t;
using la::Matrix;

TEST(EdgeLinalg, EmptyMatrixOperations) {
  Matrix a(0, 0), b(0, 0), c(0, 0);
  EXPECT_NO_THROW(la::gemm(1.0, a.view(), la::Trans::No, b.view(), la::Trans::No,
                           0.0, c.view()));
  EXPECT_NO_THROW(la::potrf(a.view()));
  auto f = la::qr(Matrix(5, 0).view());
  EXPECT_EQ(f.q.cols(), 0);
  auto s = la::svd(Matrix(0, 0).view());
  EXPECT_TRUE(s.s.empty());
}

TEST(EdgeLinalg, OneByOneEverything) {
  Matrix a(1, 1);
  a(0, 0) = 4.0;
  la::potrf(a.view());
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  auto f = la::pivoted_qr(a.view(), 1, 0.0);
  EXPECT_EQ(f.rank, 1);
}

TEST(EdgeLinalg, OrthComplementOfFullBasisIsEmpty) {
  Rng rng(601);
  auto qf = la::qr(Matrix::random_normal(rng, 6, 6).view());
  Matrix c = la::orth_complement(qf.q.view());
  EXPECT_EQ(c.cols(), 0);
  EXPECT_EQ(c.rows(), 6);
}

TEST(EdgeLinalg, OrthComplementOfNothingIsIdentity) {
  Matrix u(4, 0);
  Matrix c = la::orth_complement(u.view());
  EXPECT_LT(la::rel_error(Matrix::identity(4).view(), c.view()), 1e-15);
}

TEST(EdgeLowRank, ZeroRankBlockBehaves) {
  lr::LowRank z(Matrix(5, 0), Matrix(3, 0));
  EXPECT_EQ(z.rank(), 0);
  Matrix d = z.dense();
  EXPECT_EQ(la::norm_fro(d.view()), 0.0);
  std::vector<double> x(3, 1.0), y(5, 2.0);
  z.matvec(1.0, x.data(), 1.0, y.data());
  for (double v : y) EXPECT_EQ(v, 2.0);
}

TEST(EdgeLowRank, CompressOfZeroMatrixIsRankZero) {
  Matrix zero(8, 8);
  auto c = lr::compress(zero.view(), 8, 1e-14);
  EXPECT_EQ(c.rank(), 0);
  auto t = lr::truncated_svd(zero.view(), 8, 1e-14);
  EXPECT_EQ(t.rank(), 0);
}

TEST(EdgeUlv, PartialFactorWithZeroRank) {
  // rank 0: the whole block is "redundant"; SS part is empty.
  Rng rng(602);
  Matrix d = Matrix::random_spd(rng, 8);
  Matrix u(8, 0);
  auto res = ulv::partial_factor(d.view(), u.view());
  EXPECT_EQ(res.factor.k, 0);
  EXPECT_EQ(res.factor.l_rr.rows(), 8);
  EXPECT_EQ(res.ss_schur.rows(), 0);
}

TEST(EdgeUlv, PartialFactorWithFullRank) {
  // rank == m: nothing to eliminate; SS is the rotated block itself.
  Rng rng(603);
  Matrix d = Matrix::random_spd(rng, 8);
  auto qf = la::qr(Matrix::random_normal(rng, 8, 8).view());
  auto res = ulv::partial_factor(d.view(), qf.q.view());
  EXPECT_EQ(res.factor.k, 8);
  EXPECT_EQ(res.factor.l_rr.rows(), 0);
  EXPECT_EQ(res.ss_schur.rows(), 8);
}

TEST(EdgeFormats, TwoPointProblem) {
  geom::Domain d = geom::grid2d(2);
  geom::ClusterTree tree(d, 1);
  kernels::Yukawa k;
  kernels::KernelMatrix km(k, tree.points());
  fmt::KernelAccessor acc(km);
  auto h = fmt::build_hss(acc, {.leaf_size = 1, .max_rank = 1, .tol = 0.0});
  auto f = ulv::HSSULV::factorize(h);
  std::vector<double> b{1.0, 2.0};
  std::vector<double> ab;
  h.matvec(b, ab);
  auto x = f.solve(ab);
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
}

TEST(EdgeFormats, BlrSingleTileIsJustDense) {
  Rng rng(604);
  Matrix a = Matrix::random_spd(rng, 32);
  fmt::DenseAccessor acc(a.view());
  auto blr = fmt::build_blr(acc, {.tile_size = 64, .max_rank = 8, .tol = 1e-8});
  EXPECT_EQ(blr.num_tiles(), 1);
  EXPECT_LT(la::rel_error(a.view(), blr.dense().view()), 1e-15);
}

TEST(EdgeDistsim, OneTaskGraph) {
  rt::TaskGraph g;
  rt::DataId d = g.register_data("x", 100);
  g.insert_task("only", "potrf", {16}, {}, {{d, rt::Access::ReadWrite}});
  distsim::Mapping map;
  map.num_procs = 4;
  map.task_owner = {2};
  distsim::CostModel cost(1.0);
  distsim::SimConfig cfg;
  cfg.procs = 4;
  cfg.cores_per_proc = 2;
  cfg.overhead = {0.0, 0.0, 5e-4};
  auto res = distsim::simulate(g, map, cost, cfg);
  EXPECT_NEAR(res.makespan, 16.0 * 16 * 16 / 3.0 / 1e9, 1e-12);
  EXPECT_EQ(res.messages, 0);
}

TEST(EdgeDistsim, EmptyGraphSimulates) {
  rt::TaskGraph g;
  distsim::Mapping map;
  map.num_procs = 2;
  distsim::CostModel cost(1.0);
  distsim::SimConfig cfg;
  cfg.procs = 2;
  auto res = distsim::simulate(g, map, cost, cfg);
  EXPECT_EQ(res.makespan, 0.0);
}

TEST(EdgeKernels, KernelMatrixSinglePoint) {
  kernels::Gaussian k;
  geom::Domain d = geom::grid2d(1);
  kernels::KernelMatrix km(k, d.points);
  EXPECT_DOUBLE_EQ(km.entry(0, 0), 1.0);
  std::vector<double> x{3.0}, y;
  km.matvec(x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
}

TEST(EdgeRuntime, TaskWithNoAccessesRunsImmediately) {
  rt::TaskGraph g;
  bool ran = false;
  g.insert_task("free", "k", {}, [&ran] { ran = true; }, {});
  rt::ThreadPoolExecutor ex(1);
  auto stats = ex.run(g);
  EXPECT_TRUE(ran);
  EXPECT_EQ(rt::validate_trace(g, stats), "");
}

TEST(EdgeRuntime, ManyWorkersFewTasks) {
  rt::TaskGraph g;
  rt::DataId d = g.register_data("x");
  g.insert_task("t", "k", {}, [] {}, {{d, rt::Access::ReadWrite}});
  rt::ThreadPoolExecutor ex(16);
  auto stats = ex.run(g);
  EXPECT_EQ(rt::validate_trace(g, stats), "");
}

}  // namespace
}  // namespace hatrix
