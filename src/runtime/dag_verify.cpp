#include "runtime/dag_verify.hpp"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace hatrix::rt {

namespace {

std::string task_label(const TaskGraph& g, TaskId t) {
  return g.tasks()[static_cast<std::size_t>(t)].name + " (#" + std::to_string(t) +
         ")";
}

[[noreturn]] void structure_fail(const std::string& what) {
  throw DagStructureError("dag_verify: " + what);
}

}  // namespace

DagRaceError::DagRaceError(TaskId a, std::string a_name, TaskId b,
                           std::string b_name, DataId res,
                           std::string res_name)
    : Error("dag_verify: race — tasks " + a_name + " (#" + std::to_string(a) +
            ") and " + b_name + " (#" + std::to_string(b) +
            ") both access resource \"" + res_name + "\" (data #" +
            std::to_string(res) +
            ") with at least one write, but no dependency path orders them"),
      task_a(a),
      task_b(b),
      resource(res),
      task_a_name(std::move(a_name)),
      task_b_name(std::move(b_name)),
      resource_name(std::move(res_name)) {}

DagStats verify_dag(const TaskGraph& graph) {
  const auto n = static_cast<std::size_t>(graph.num_tasks());
  DagStats stats;
  stats.tasks = graph.num_tasks();
  stats.edges = graph.num_edges();
  if (n == 0) return stats;

  // --- Structural pass: dangling successors, self-dependencies, and
  // in-degree bookkeeping that disagrees with the edge lists.
  std::vector<int> indeg(n, 0);
  for (std::size_t t = 0; t < n; ++t) {
    for (TaskId s : graph.successors()[t]) {
      if (s < 0 || s >= graph.num_tasks())
        structure_fail("dangling dependency — task " +
                       task_label(graph, static_cast<TaskId>(t)) +
                       " lists successor #" + std::to_string(s) +
                       " which is not a task of this graph");
      if (s == static_cast<TaskId>(t))
        structure_fail("self-dependency on task " +
                       task_label(graph, static_cast<TaskId>(t)));
      ++indeg[static_cast<std::size_t>(s)];
    }
  }
  for (std::size_t t = 0; t < n; ++t) {
    if (indeg[t] != graph.in_degree()[t])
      structure_fail("in-degree bookkeeping mismatch on task " +
                     task_label(graph, static_cast<TaskId>(t)) + " (stored " +
                     std::to_string(graph.in_degree()[t]) + ", edges say " +
                     std::to_string(indeg[t]) + ")");
  }

  // --- Kahn topological sort: detects cycles and yields the order the
  // depth and reachability sweeps run in. Duplicate (parallel) edges are
  // harmless: each occurrence was counted into indeg above and is
  // decremented once here.
  std::vector<TaskId> topo;
  topo.reserve(n);
  std::vector<int> remaining = indeg;
  for (std::size_t t = 0; t < n; ++t)
    if (remaining[t] == 0) topo.push_back(static_cast<TaskId>(t));
  for (std::size_t head = 0; head < topo.size(); ++head) {
    const auto t = static_cast<std::size_t>(topo[head]);
    for (TaskId s : graph.successors()[t])
      if (--remaining[static_cast<std::size_t>(s)] == 0) topo.push_back(s);
  }
  if (topo.size() != n) {
    // Any task with dependencies left unsatisfied sits on (or behind) a cycle.
    for (std::size_t t = 0; t < n; ++t)
      if (remaining[t] > 0)
        structure_fail("dependency cycle through task " +
                       task_label(graph, static_cast<TaskId>(t)));
  }

  // --- Depth / width statistics over the topological order.
  std::vector<std::int64_t> depth(n, 1);
  for (TaskId id : topo) {
    const auto t = static_cast<std::size_t>(id);
    for (TaskId s : graph.successors()[t])
      depth[static_cast<std::size_t>(s)] =
          std::max(depth[static_cast<std::size_t>(s)], depth[t] + 1);
  }
  stats.critical_path = *std::max_element(depth.begin(), depth.end());
  std::vector<std::int64_t> width(static_cast<std::size_t>(stats.critical_path), 0);
  for (std::size_t t = 0; t < n; ++t)
    ++width[static_cast<std::size_t>(depth[t] - 1)];
  stats.max_width = *std::max_element(width.begin(), width.end());
  stats.avg_width =
      static_cast<double>(stats.tasks) / static_cast<double>(stats.critical_path);

  // --- Race detection. Ancestor sets as bitsets, built in topological
  // order: anc[t] = union over predecessors p of (anc[p] | {p}). One
  // 64-bit word covers 64 tasks, so the sweep is O(E·V/64) time and
  // O(V²/64) space — a 5 000-task production DAG costs ~3 MB and
  // single-digit milliseconds.
  const std::size_t words = (n + 63) / 64;
  std::vector<std::vector<TaskId>> preds(n);
  for (std::size_t t = 0; t < n; ++t)
    for (TaskId s : graph.successors()[t])
      preds[static_cast<std::size_t>(s)].push_back(static_cast<TaskId>(t));
  std::vector<std::uint64_t> anc(n * words, 0);
  for (TaskId id : topo) {
    const auto t = static_cast<std::size_t>(id);
    std::uint64_t* row = anc.data() + t * words;
    for (TaskId p : preds[t]) {
      const auto pi = static_cast<std::size_t>(p);
      const std::uint64_t* prow = anc.data() + pi * words;
      for (std::size_t w = 0; w < words; ++w) row[w] |= prow[w];
      row[pi / 64] |= std::uint64_t{1} << (pi % 64);
    }
  }
  auto ordered = [&](TaskId a, TaskId b) {
    const auto ai = static_cast<std::size_t>(a), bi = static_cast<std::size_t>(b);
    return ((anc[bi * words + ai / 64] >> (ai % 64)) & 1) != 0 ||
           ((anc[ai * words + bi / 64] >> (bi % 64)) & 1) != 0;
  };

  // Per resource, every pair with at least one writer must be ordered.
  // Read-only sharing is free; the nested loop only walks writer×accessor
  // pairs, and production DAGs have single-digit accessor counts per
  // resource.
  const auto nd = static_cast<std::size_t>(graph.data().size());
  std::vector<std::vector<std::pair<TaskId, Access>>> touch(nd);
  for (std::size_t t = 0; t < n; ++t)
    for (const auto& [d, mode] : graph.tasks()[t].accesses)
      touch[static_cast<std::size_t>(d)].emplace_back(static_cast<TaskId>(t), mode);
  for (std::size_t d = 0; d < nd; ++d) {
    const auto& acc = touch[d];
    for (std::size_t i = 0; i < acc.size(); ++i) {
      if (!is_write(acc[i].second)) continue;
      for (std::size_t j = 0; j < acc.size(); ++j) {
        if (j == i) continue;
        // Writer/writer pairs are checked once (from the earlier index).
        if (is_write(acc[j].second) && j < i) continue;
        if (acc[i].first == acc[j].first) continue;  // same task, two accesses
        if (!ordered(acc[i].first, acc[j].first)) {
          const TaskId a = std::min(acc[i].first, acc[j].first);
          const TaskId b = std::max(acc[i].first, acc[j].first);
          throw DagRaceError(
              a, graph.tasks()[static_cast<std::size_t>(a)].name, b,
              graph.tasks()[static_cast<std::size_t>(b)].name,
              static_cast<DataId>(d),
              graph.data()[d].name);
        }
      }
    }
  }

  return stats;
}

std::vector<double> bottom_levels(const TaskGraph& graph, const TaskCostFn& cost) {
  HATRIX_CHECK(static_cast<bool>(cost), "bottom_levels needs a cost callback");
  const auto n = static_cast<std::size_t>(graph.num_tasks());
  std::vector<double> bl(n, 0.0);
  // Insertion order is topological, so a single reverse sweep resolves every
  // successor before its predecessors. Non-forward edges (test-only splices)
  // are skipped, matching critical_path_length().
  for (std::size_t t = n; t-- > 0;) {
    double down = 0.0;
    for (TaskId s : graph.successors()[t])
      if (s > static_cast<TaskId>(t) && s < graph.num_tasks())
        down = std::max(down, bl[static_cast<std::size_t>(s)]);
    bl[t] = std::max(0.0, cost(graph.tasks()[t])) + down;
  }
  return bl;
}

double weighted_critical_path(const TaskGraph& graph, const TaskCostFn& cost) {
  const auto bl = bottom_levels(graph, cost);
  return bl.empty() ? 0.0 : *std::max_element(bl.begin(), bl.end());
}

bool verify_dag_default() {
  if (const char* env = std::getenv("HATRIX_VERIFY_DAG")) {
    const std::string v(env);
    if (v == "0" || v == "false" || v == "off" || v == "OFF") return false;
    return true;
  }
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

}  // namespace hatrix::rt
