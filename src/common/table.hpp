#pragma once
/// \file table.hpp
/// \brief Aligned text-table printer used by the bench harness to emit the
/// rows/series the paper's tables and figures report.

#include <string>
#include <vector>

namespace hatrix {

/// Collects rows of string cells and prints them with aligned columns.
/// Also exports CSV so bench output can be re-plotted.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with space-padded, pipe-separated columns.
  [[nodiscard]] std::string to_string() const;

  /// Render as comma-separated values (header first).
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with %.3e style (benches report errors/times this way).
std::string fmt_sci(double v);

/// Format a double with fixed decimals.
std::string fmt_fixed(double v, int decimals = 3);

}  // namespace hatrix
