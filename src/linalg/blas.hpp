#pragma once
/// \file blas.hpp
/// \brief BLAS-style dense kernels (levels 1-3) on matrix views.
///
/// All kernels count their classical flop totals through hatrix::flops so
/// benches can measure algorithmic complexity (Table 1 of the paper).

#include "linalg/matrix.hpp"

namespace hatrix::la {

/// Transposition selector for gemm-family kernels.
enum class Trans { No, Yes };
/// Which triangle of a triangular/symmetric matrix is referenced.
enum class UpLo { Lower, Upper };
/// Whether the triangular matrix multiplies from the left or right.
enum class Side { Left, Right };
/// Whether the triangular matrix has an implicit unit diagonal.
enum class Diag { NonUnit, Unit };

/// C = alpha * op(A) * op(B) + beta * C.
void gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb,
          double beta, MatrixView c);

/// Convenience: returns op(A)*op(B) as a new matrix.
Matrix matmul(ConstMatrixView a, ConstMatrixView b, Trans ta = Trans::No,
              Trans tb = Trans::No);

/// C = alpha * A * Aᵀ + beta * C (trans==No) or alpha * Aᵀ * A + beta * C
/// (trans==Yes). Both triangles of C are written (full symmetric result).
void syrk(double alpha, ConstMatrixView a, Trans trans, double beta, MatrixView c);

/// B = alpha * op(T)⁻¹ B (Side::Left) or alpha * B op(T)⁻¹ (Side::Right),
/// where T is triangular per `uplo`/`diag`.
void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b);

/// B = op(T) * B (Side::Left) or B * op(T) (Side::Right).
void trmm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b);

/// y = alpha * op(A) * x + beta * y.
void gemv(double alpha, ConstMatrixView a, Trans ta, const double* x, double beta,
          double* y);

/// Y += alpha * X (same shapes).
void add_scaled(MatrixView y, double alpha, ConstMatrixView x);

/// A *= alpha.
void scale(MatrixView a, double alpha);

/// Frobenius inner product <A, B>.
double dot(ConstMatrixView a, ConstMatrixView b);

}  // namespace hatrix::la
