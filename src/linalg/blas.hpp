#pragma once
/// \file blas.hpp
/// \brief BLAS-style dense kernels (levels 1-3) on matrix views, behind a
/// runtime-selectable backend.
///
/// Three interchangeable backends implement the level-3 kernels
/// (gemm/syrk/trsm and the blocked potrf built on them, in `double` and
/// `float`):
///
///   - `Backend::Blocked` (default): cache-blocked, packing gemm with
///     register-tiled micro-kernels; trsm/syrk/potrf are recast as small
///     diagonal-block solves plus gemm panel updates, so one tuned kernel
///     speeds every level-3 operation.
///   - `Backend::Naive`: the original reference triple loops, retained as
///     the conformance oracle (also reachable directly via `la::ref::`).
///   - `Backend::Vendor`: an external BLAS (compiled in with
///     -DHATRIX_WITH_BLAS=ON; `vendor_available()` reports it).
///
/// Select with `set_backend()` or the HATRIX_LA_BACKEND environment
/// variable (`naive` | `blocked` | `vendor`, read once at startup).
///
/// Determinism contract (the solve layer depends on it): for the Naive and
/// Blocked backends, column j of a gemm or Side::Left trsm result is
/// bit-identical whether the call covers one column or a whole panel —
/// per-column accumulation order never depends on the panel width. `gemv`
/// is routed through gemm with one column for the same reason. Vendor
/// backends make no such promise.
///
/// All kernels count their classical flop totals through hatrix::flops so
/// benches can measure algorithmic complexity (Table 1 of the paper). The
/// count is recorded only when work is actually performed (no-op calls with
/// alpha == 0 or an empty inner dimension add nothing), and composite
/// kernels (potrf) count once at the top rather than re-counting their
/// internal panel updates.

#include "linalg/matrix.hpp"

namespace hatrix::la {

/// Transposition selector for gemm-family kernels.
enum class Trans { No, Yes };
/// Which triangle of a triangular/symmetric matrix is referenced.
enum class UpLo { Lower, Upper };
/// Whether the triangular matrix multiplies from the left or right.
enum class Side { Left, Right };
/// Whether the triangular matrix has an implicit unit diagonal.
enum class Diag { NonUnit, Unit };

/// Kernel implementation selector (see file comment).
enum class Backend { Naive, Blocked, Vendor };

/// The currently active backend (process-wide, atomic).
[[nodiscard]] Backend backend() noexcept;
/// Select the backend for subsequent kernel calls. Throws hatrix::Error if
/// `Backend::Vendor` is requested but the library was built without
/// HATRIX_WITH_BLAS.
void set_backend(Backend b);
/// True when a vendor BLAS was compiled in.
[[nodiscard]] bool vendor_available() noexcept;
/// Human-readable backend name ("naive" / "blocked" / "vendor").
[[nodiscard]] const char* backend_name(Backend b) noexcept;
/// Parse a backend name (as accepted by HATRIX_LA_BACKEND); throws on an
/// unknown name.
[[nodiscard]] Backend backend_from_name(const std::string& name);

/// C = alpha * op(A) * op(B) + beta * C.
void gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb,
          double beta, MatrixView c);
void gemm(float alpha, ConstMatrixViewF a, Trans ta, ConstMatrixViewF b, Trans tb,
          float beta, MatrixViewF c);

/// Convenience: returns op(A)*op(B) as a new matrix.
Matrix matmul(ConstMatrixView a, ConstMatrixView b, Trans ta = Trans::No,
              Trans tb = Trans::No);

/// C = alpha * A * Aᵀ + beta * C (trans==No) or alpha * Aᵀ * A + beta * C
/// (trans==Yes). Both triangles of C are written (full symmetric result).
void syrk(double alpha, ConstMatrixView a, Trans trans, double beta, MatrixView c);
void syrk(float alpha, ConstMatrixViewF a, Trans trans, float beta, MatrixViewF c);

/// B = alpha * op(T)⁻¹ B (Side::Left) or alpha * B op(T)⁻¹ (Side::Right),
/// where T is triangular per `uplo`/`diag`.
void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b);
void trsm(Side side, UpLo uplo, Trans trans, Diag diag, float alpha,
          ConstMatrixViewF t, MatrixViewF b);

/// B = op(T) * B (Side::Left) or B * op(T) (Side::Right).
void trmm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b);
void trmm(Side side, UpLo uplo, Trans trans, Diag diag, float alpha,
          ConstMatrixViewF t, MatrixViewF b);

/// y = alpha * op(A) * x + beta * y. Routed through gemm with a one-column
/// panel so vector and panel solves stay bit-identical per column.
void gemv(double alpha, ConstMatrixView a, Trans ta, const double* x, double beta,
          double* y);

/// Y += alpha * X (same shapes).
void add_scaled(MatrixView y, double alpha, ConstMatrixView x);

/// A *= alpha.
void scale(MatrixView a, double alpha);
void scale(MatrixViewF a, float alpha);

/// Frobenius inner product <A, B>.
double dot(ConstMatrixView a, ConstMatrixView b);

/// The retained naive reference kernels — the conformance oracle the other
/// backends are tested against (tests/test_linalg_conformance). Shapes are
/// checked, flops are NOT counted (the public entry points own accounting).
namespace ref {
void gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb,
          double beta, MatrixView c);
void gemm(float alpha, ConstMatrixViewF a, Trans ta, ConstMatrixViewF b, Trans tb,
          float beta, MatrixViewF c);
void syrk(double alpha, ConstMatrixView a, Trans trans, double beta, MatrixView c);
void syrk(float alpha, ConstMatrixViewF a, Trans trans, float beta, MatrixViewF c);
void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b);
void trsm(Side side, UpLo uplo, Trans trans, Diag diag, float alpha,
          ConstMatrixViewF t, MatrixViewF b);
void trmm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b);
void trmm(Side side, UpLo uplo, Trans trans, Diag diag, float alpha,
          ConstMatrixViewF t, MatrixViewF b);
/// Unblocked lower Cholesky (the dpotf2-style reference; throws on a
/// non-positive pivot). Zeroes the strict upper triangle like la::potrf.
void potrf(MatrixView a);
void potrf(MatrixViewF a);
}  // namespace ref

}  // namespace hatrix::la
