#pragma once
/// \file bench_json.hpp
/// \brief Minimal JSON emitter for benchmark results.
///
/// Every bench that wants machine-readable output writes one flat document:
///
///   { "bench": "<name>", "rows": [ { "key": value, ... }, ... ] }
///
/// Values are numbers or strings; rows keep insertion order. The format is
/// deliberately tiny — just enough for the committed BENCH_*.json files to
/// be diffable across PRs and parseable by any JSON reader — so no external
/// dependency is pulled in.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hatrix {

/// Accumulates rows of key/value results and renders/writes the document.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : name_(std::move(bench_name)) {}

  /// One result record; chain add() calls, e.g.
  /// `j.row().add("n", 1024).add("seconds", 0.12);`
  class Row {
   public:
    Row& add(const std::string& key, double value);
    Row& add(const std::string& key, std::int64_t value);
    Row& add(const std::string& key, const std::string& value);

   private:
    friend class BenchJson;
    std::vector<std::pair<std::string, std::string>> fields_;  // key -> literal
  };

  /// Append (and return) a fresh row. Chain add() calls on the returned
  /// reference immediately — it is invalidated by the next row() call.
  Row& row();

  /// Render the whole document.
  [[nodiscard]] std::string to_string() const;

  /// Write the document to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  std::string name_;
  std::vector<Row> rows_;
};

}  // namespace hatrix
