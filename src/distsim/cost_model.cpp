#include "distsim/cost_model.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/flops.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"

namespace hatrix::distsim {

namespace {

double dim(const rt::Task& t, std::size_t i) {
  return i < t.dims.size() ? static_cast<double>(t.dims[i]) : 0.0;
}

}  // namespace

CostModel::CostModel(double gflops_per_core) : gflops_(gflops_per_core) {
  HATRIX_CHECK(gflops_per_core > 0.0, "flop rate must be positive");
}

CostModel CostModel::calibrated() {
  // Time a representative kernel mix and take the harmonic-mean rate.
  Rng rng(7);
  la::Matrix a = la::Matrix::random_normal(rng, 256, 256);
  la::Matrix b = la::Matrix::random_normal(rng, 256, 256);
  la::Matrix c(256, 256);
  la::Matrix spd = la::Matrix::random_spd(rng, 256);

  flops::reset();
  WallTimer timer;
  la::gemm(1.0, a.view(), la::Trans::No, b.view(), la::Trans::No, 0.0, c.view());
  la::Matrix l = la::Matrix::from_view(spd.view());
  la::potrf(l.view());
  const double elapsed = timer.seconds();
  const double rate = static_cast<double>(flops::total()) / elapsed / 1e9;
  return CostModel(std::max(0.1, rate));
}

double CostModel::task_flops(const rt::Task& t) {
  const std::string& k = t.kind;
  const double d0 = dim(t, 0), d1 = dim(t, 1), d2 = dim(t, 2);
  if (k == "potrf") return d0 * d0 * d0 / 3.0;
  if (k == "trsm") return d0 * d1 * d1;          // (b_i x b_k) vs b_k triangle
  if (k == "syrk") return d0 * d0 * d1;
  if (k == "gemm") return 2.0 * d0 * d1 * d2;
  if (k == "diag_product") {
    // Complement construction (~2 m k^2) + the rotated products (~4 m^3).
    return 4.0 * d0 * d0 * d0 + 2.0 * d0 * d1 * d1;
  }
  if (k == "partial_factor") {
    const double r = d0 - d1;  // redundant dimension m - k
    return r * r * r / 3.0 + d1 * r * r + d1 * d1 * r;
  }
  if (k == "merge") {
    // Memory-bound assembly of a (k0+k1)^2 block; count entries as flops.
    const double m = d0 + d1;
    return m * m;
  }
  if (k == "trsm_lr") return d0 * d0 * d1;       // b^2 r triangular solve on V
  if (k == "syrk_lr") return 2.0 * d0 * d1 * d1 + 2.0 * d0 * d0 * d1;
  if (k == "gemm_lr") {
    // Product core + rounded-addition recompression (QR of stacked factors).
    const double rsum = d1 + d2;
    return 2.0 * d0 * d1 * d2 + 6.0 * d0 * rsum * rsum;
  }
  if (k == "fwd_solve" || k == "bwd_solve") return 2.0 * d0 * d0;  // gemv-bound
  if (k == "potrs") return 2.0 * d0 * d0;
  if (k == "gather" || k == "scatter") return d0 + d1;  // memory copy
  // HSS construction kinds (format/hss_builder_tasks): dims are
  // {rows, rank, sampled far-field cols}. The row-ID over the b x s sample
  // dominates (pivoted QR of the transposed sample, ~2 b s k), plus the
  // final QR of the b x k interpolation factor.
  if (k == "compress" || k == "transfer") {
    const double s = d2 > 0.0 ? d2 : 2.0 * d1;
    return 2.0 * d0 * s * d1 + 2.0 * d0 * d1 * d1;
  }
  if (k == "merge_sample") {
    // Leaf couplings ({b, k, k}) are two dense products through the b x b
    // block; upper couplings ({k, k}) only touch k x k skeleton gathers.
    return 2.0 * d0 * d0 * d1 + 2.0 * d0 * d1 * d2;
  }
  return 1e3;  // unknown task kinds: negligible fixed cost
}

double CostModel::seconds(const rt::Task& t) const {
  return task_flops(t) / (gflops_ * 1e9);
}

}  // namespace hatrix::distsim
