#pragma once
/// \file hss_ulv.hpp
/// \brief HSS-ULV factorization and solve (Alg. 2, Eq. 16-17).
///
/// The O(N) direct factorization at the heart of the paper: per level, every
/// node's diagonal is rotated by its shared basis and partially factorized
/// independently (embarrassingly parallel within a level); the merge step
/// stitches the two children's skeleton Schur complements and their sibling
/// coupling into the parent's dense diagonal. The root block gets a plain
/// dense Cholesky.

#include <vector>

#include "format/hss.hpp"
#include "ulv/ulv_common.hpp"

namespace hatrix::ulv {

/// The factored form of an SPD HSS matrix. Holds per-node partial factors
/// plus the root Cholesky factor; solves run in O(N·rank).
///
/// Thread safety: a factorization is immutable once built. Every solve
/// entry point is const, keeps all per-solve workspace (rotated RHS pieces,
/// carried skeleton panels) in the caller's stack frame, and only reads the
/// factor data — so any number of threads may call solve()/solve_refined()
/// concurrently on one shared HSSULV with no synchronization and
/// bit-identical results (test_concurrent_solve asserts this under TSan).
class HSSULV {
 public:
  HSSULV() = default;

  /// Assemble a factorization from externally computed pieces — used by the
  /// task-based factorization (hss_ulv_tasks) after the runtime has executed
  /// the DAG. `factors[level][node]`; `root_l` is the Cholesky factor of A_0.
  HSSULV(const fmt::HSSMatrix& a, std::vector<std::vector<NodeFactor>> factors,
         Matrix root_l)
      : a_(&a), factors_(std::move(factors)), root_l_(std::move(root_l)) {}

  /// Factorize a symmetric positive definite HSS matrix. Throws
  /// hatrix::Error if a pivot fails (matrix not SPD on the compressed
  /// representation).
  static HSSULV factorize(const fmt::HSSMatrix& a);

  /// Solve A x = b; returns x. `b.size()` must equal `a.size()`.
  [[nodiscard]] std::vector<double> solve(const std::vector<double>& b) const;

  /// Solve A X = B for a whole panel of right-hand sides through the
  /// blocked multi-RHS path: the level-by-level rotations and triangular
  /// solves are applied to the entire panel via gemm/trsm, so each node's
  /// factor blocks are streamed through the cache once per panel instead of
  /// once per column. Column j of the result is bit-identical to
  /// solve(column j) and to solve_columnwise(b) — the per-column operation
  /// order is unchanged, only the blocking is.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// Test oracle: the pre-blocked column-by-column solve (one full
  /// single-RHS sweep per column of B). Kept only so tests and
  /// bench_solve_throughput can assert the blocked path is bit-identical
  /// and measure its speedup; new code should call solve(const Matrix&).
  [[nodiscard]] Matrix solve_columnwise(const Matrix& b) const;

  /// Solve with iterative refinement: after the direct ULV solve, perform
  /// `iterations` residual-correction steps r = b - A x (A applied through
  /// the compressed matvec), x += A^{-1} r. Cheap (O(N·rank) per step) and
  /// recovers digits lost to compression roundoff — and, in MixedFP32
  /// storage mode, the digits lost to FP32 rounding of the low-rank factors.
  /// When `residual_history` is non-null it receives iterations + 1 relative
  /// residual norms ||b - A x|| / ||b||: one before each correction step and
  /// one after the last (costs one extra compressed matvec).
  [[nodiscard]] std::vector<double> solve_refined(
      const std::vector<double>& b, int iterations = 1,
      std::vector<double>* residual_history = nullptr) const;

  /// Total bytes held by the factors (complements + triangles + root).
  [[nodiscard]] std::int64_t memory_bytes() const;

  /// The matrix this factorization refers to (not owned).
  [[nodiscard]] const fmt::HSSMatrix& matrix() const { return *a_; }

  /// Per-node factor access (used by the task-based solve).
  [[nodiscard]] const NodeFactor& factor(int level, index_t i) const {
    return factors_[static_cast<std::size_t>(level)][static_cast<std::size_t>(i)];
  }
  /// Cholesky factor of the root block A_0.
  [[nodiscard]] const Matrix& root_factor() const { return root_l_; }

 private:
  const fmt::HSSMatrix* a_ = nullptr;
  std::vector<std::vector<NodeFactor>> factors_;  // [level][node]
  Matrix root_l_;                                 // dense Cholesky of A_0
};

/// Convenience: relative solve error of Eq. (19),
/// || b - A^{-1} (A b) || / || b ||, using the compressed matvec for A·b.
double ulv_solve_error(const fmt::HSSMatrix& a, const HSSULV& f,
                       const std::vector<double>& b);

}  // namespace hatrix::ulv
