#pragma once
/// \file kernel_matrix.hpp
/// \brief Lazy kernel-matrix generator.
///
/// Presents A_ij = K(p_i, p_j) (+ optional diagonal shift) over a tree-
/// ordered point set without materializing the full dense matrix. HSS
/// builders request blocks on demand, and the accuracy benches compute
/// A_dense * b in streamed row panels, so N = 65,536 never allocates N^2
/// doubles.

#include <vector>

#include "geometry/cluster_tree.hpp"
#include "kernels/kernels.hpp"
#include "linalg/matrix.hpp"

namespace hatrix::kernels {

class KernelMatrix {
 public:
  /// `points` must already be in cluster-tree order. `diag_shift` is added
  /// to every diagonal entry (0 keeps the pure Green's function; a positive
  /// shift regularizes kernels that are only conditionally positive
  /// definite on a given geometry).
  KernelMatrix(const Kernel& kernel, std::vector<geom::Point> points,
               double diag_shift = 0.0);

  [[nodiscard]] la::index_t size() const {
    return static_cast<la::index_t>(points_.size());
  }

  /// Single entry A(i, j).
  [[nodiscard]] double entry(la::index_t i, la::index_t j) const;

  /// Fill `out` with the block A([row0, row0+out.rows), [col0, col0+out.cols)).
  void fill_block(la::index_t row0, la::index_t col0, la::MatrixView out) const;

  /// The block as a new matrix.
  [[nodiscard]] la::Matrix block(la::index_t row0, la::index_t col0,
                                 la::index_t rows, la::index_t cols) const;

  /// Full dense matrix (only sensible for modest N; tests and reference
  /// paths).
  [[nodiscard]] la::Matrix dense() const;

  /// y = A x computed in streamed row panels; O(N) memory.
  void matvec(const std::vector<double>& x, std::vector<double>& y) const;

  [[nodiscard]] const std::vector<geom::Point>& points() const { return points_; }
  [[nodiscard]] const Kernel& kernel() const { return *kernel_; }
  [[nodiscard]] double diag_shift() const { return diag_shift_; }

 private:
  const Kernel* kernel_;
  std::vector<geom::Point> points_;
  double diag_shift_;
};

}  // namespace hatrix::kernels
