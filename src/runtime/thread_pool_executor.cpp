#include "runtime/thread_pool_executor.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <queue>
#include <thread>

#include "runtime/dag_dataflow.hpp"
#include "runtime/dag_verify.hpp"

namespace hatrix::rt {

namespace {

/// Ready-queue ordering: higher priority first, then insertion order (FIFO
/// within a priority class keeps execution close to the DTD submission
/// order, like PaRSEC's default scheduler).
struct ReadyOrder {
  const std::vector<Task>* tasks;
  bool operator()(TaskId a, TaskId b) const {
    const Task& ta = (*tasks)[static_cast<std::size_t>(a)];
    const Task& tb = (*tasks)[static_cast<std::size_t>(b)];
    if (ta.priority != tb.priority) return ta.priority < tb.priority;  // max-heap
    return a > b;  // earlier insertion first
  }
};

}  // namespace

ThreadPoolExecutor::ThreadPoolExecutor(int num_workers)
    : num_workers_(num_workers),
      verify_dag_(verify_dag_default()),
      analyze_dag_(analyze_dag_default()) {
  HATRIX_CHECK(num_workers >= 1, "executor needs at least one worker");
}

ExecutionStats ThreadPoolExecutor::run(const TaskGraph& graph,
                                       std::exception_ptr* error_out) {
  // A malformed or racy graph is a programming error, not a task failure:
  // it throws before any work runs and never lands in `error_out`.
  if (verify_dag_) (void)verify_dag(graph);
  if (analyze_dag_) (void)analyze_dag(graph);
  const auto n = static_cast<std::size_t>(graph.num_tasks());
  ExecutionStats stats;
  stats.workers = num_workers_;
  stats.traces.resize(n);
  stats.worker_discovery.assign(static_cast<std::size_t>(num_workers_), 0.0);
  if (n == 0) return stats;

  std::vector<std::atomic<int>> remaining(n);
  for (std::size_t t = 0; t < n; ++t)
    remaining[t].store(graph.in_degree()[t], std::memory_order_relaxed);

  std::mutex mu;
  std::condition_variable cv;
  std::priority_queue<TaskId, std::vector<TaskId>, ReadyOrder> ready(
      ReadyOrder{&graph.tasks()});
  std::size_t completed = 0;
  std::exception_ptr first_error;

  for (std::size_t t = 0; t < n; ++t)
    if (graph.in_degree()[t] == 0) ready.push(static_cast<TaskId>(t));

  // Last-use early release: when the graph carries a release hook, seed a
  // refcount per handle from the static release schedule and fire the hook
  // the moment the last accessor's body has completed. fetch_sub with
  // acq_rel gives the hook a happens-before edge over every access.
  const bool do_release = static_cast<bool>(graph.release_hook());
  const ReleasePlan plan = do_release ? release_plan(graph) : ReleasePlan{};
  std::vector<std::atomic<int>> release_remaining(plan.initial_uses.size());
  for (std::size_t d = 0; d < plan.initial_uses.size(); ++d)
    release_remaining[d].store(plan.initial_uses[d], std::memory_order_relaxed);
  auto release_after = [&](TaskId id) {
    if (!do_release) return;
    for (DataId d : plan.task_data[static_cast<std::size_t>(id)])
      if (release_remaining[static_cast<std::size_t>(d)].fetch_sub(
              1, std::memory_order_acq_rel) == 1)
        graph.release_hook()(d);
  };

  const auto t0 = std::chrono::steady_clock::now();
  auto now_seconds = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  auto worker_fn = [&](int worker_id) {
    // Ready-queue / dependency-management time this worker accumulates — the
    // measured DTD discovery overhead. Idle waiting inside cv.wait is
    // deliberately excluded; overhead_total already covers it.
    double my_discovery = 0.0;
    auto publish_discovery = [&] {
      stats.worker_discovery[static_cast<std::size_t>(worker_id)] = my_discovery;
    };
    for (;;) {
      TaskId id;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !ready.empty() || completed == n || first_error; });
        const double t_pop = now_seconds();
        if ((completed == n && ready.empty()) || first_error) {
          publish_discovery();
          return;
        }
        if (ready.empty()) continue;
        id = ready.top();
        ready.pop();
        my_discovery += now_seconds() - t_pop;
      }

      const Task& task = graph.tasks()[static_cast<std::size_t>(id)];
      auto& trace = stats.traces[static_cast<std::size_t>(id)];
      trace.task = id;
      trace.worker = worker_id;
      trace.start = now_seconds();
      if (task.work) {
        try {
          task.work();
        } catch (...) {
          // Stamp the end time before recording the error: the failing
          // task's trace must report a real (non-negative) duration so the
          // compute_total/overhead accounting stays meaningful.
          trace.end = now_seconds();
          std::lock_guard<std::mutex> lock(mu);
          if (!first_error) first_error = std::current_exception();
          cv.notify_all();
          publish_discovery();
          return;
        }
      }
      trace.end = now_seconds();
      release_after(id);

      {
        const double t_rel = now_seconds();
        std::lock_guard<std::mutex> lock(mu);
        ++completed;
        for (TaskId s : graph.successors()[static_cast<std::size_t>(id)]) {
          if (remaining[static_cast<std::size_t>(s)].fetch_sub(
                  1, std::memory_order_acq_rel) == 1)
            ready.push(s);
        }
        cv.notify_all();
        my_discovery += now_seconds() - t_rel;
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) workers.emplace_back(worker_fn, w);
  for (auto& w : workers) w.join();

  stats.wall_time = now_seconds();
  for (const auto& tr : stats.traces) stats.compute_total += tr.duration();
  stats.overhead_total = stats.wall_time * num_workers_ - stats.compute_total;
  for (double d : stats.worker_discovery) stats.discovery_total += d;

  if (first_error) {
    if (error_out != nullptr) {
      *error_out = first_error;
      return stats;
    }
    std::rethrow_exception(first_error);
  }
  return stats;
}

}  // namespace hatrix::rt
