#include "hatrix/experiment.hpp"

#include <cmath>

#include "blrchol/blr_cholesky.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "format/accessor.hpp"
#include "format/blr.hpp"
#include "format/hss_builder.hpp"
#include "format/hss_builder_tasks.hpp"
#include "geometry/cluster_tree.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "linalg/norms.hpp"
#include "ulv/hss_ulv.hpp"

namespace hatrix::driver {

namespace {

struct GridProblem {
  std::unique_ptr<kernels::Kernel> kernel;
  std::unique_ptr<kernels::KernelMatrix> km;

  GridProblem(const std::string& kname, la::index_t n, la::index_t leaf) {
    geom::Domain domain = geom::grid2d(n);
    geom::ClusterTree tree(domain, leaf);
    kernel = kernels::make_kernel(kname);
    km = std::make_unique<kernels::KernelMatrix>(*kernel, tree.points());
  }
};

double rel_diff(const std::vector<double>& ref, const std::vector<double>& got) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    num += (ref[i] - got[i]) * (ref[i] - got[i]);
    den += ref[i] * ref[i];
  }
  return std::sqrt(num / den);
}

}  // namespace

AccuracyOutcome hss_accuracy(const AccuracySetup& setup) {
  GridProblem p(setup.kernel, setup.n, setup.leaf_size);
  fmt::KernelAccessor acc(*p.km);

  AccuracyOutcome out;
  WallTimer timer;
  const fmt::HSSOptions opts{.leaf_size = setup.leaf_size,
                             .max_rank = setup.max_rank,
                             .tol = setup.tol,
                             .sample_cols = setup.sample_cols,
                             .seed = setup.seed,
                             .guard_tol = setup.guard_tol};
  fmt::HSSMatrix h = setup.workers > 1
                         ? fmt::build_hss_parallel(acc, opts, setup.workers)
                         : fmt::build_hss(acc, opts);
  out.build_seconds = timer.seconds();
  out.rank_used = h.max_rank_used();
  out.compressed_bytes = h.memory_bytes();

  Rng rng(setup.seed + 1);
  std::vector<double> b = rng.normal_vector(setup.n);

  // Construction error (Eq. 18): dense matvec streamed, compressed matvec.
  std::vector<double> ab_dense, ab_hss;
  p.km->matvec(b, ab_dense);
  h.matvec(b, ab_hss);
  out.construct_error = rel_diff(ab_dense, ab_hss);

  timer.reset();
  auto f = ulv::HSSULV::factorize(h);
  out.factor_seconds = timer.seconds();

  // Solve error (Eq. 19) on the compressed operator.
  timer.reset();
  std::vector<double> x = f.solve(ab_hss);
  out.solve_seconds = timer.seconds();
  out.solve_error = rel_diff(b, x);
  return out;
}

AccuracyOutcome blr_accuracy(const AccuracySetup& setup) {
  GridProblem p(setup.kernel, setup.n, setup.leaf_size);
  fmt::KernelAccessor acc(*p.km);

  AccuracyOutcome out;
  WallTimer timer;
  fmt::BLRMatrix m = fmt::build_blr(acc, {.tile_size = setup.leaf_size,
                                          .max_rank = setup.max_rank,
                                          .tol = setup.tol});
  out.build_seconds = timer.seconds();
  out.rank_used = m.max_rank_used();
  out.compressed_bytes = m.memory_bytes();

  Rng rng(setup.seed + 1);
  std::vector<double> b = rng.normal_vector(setup.n);

  std::vector<double> ab_dense, ab_blr;
  p.km->matvec(b, ab_dense);
  m.matvec(b, ab_blr);
  out.construct_error = rel_diff(ab_dense, ab_blr);

  timer.reset();
  auto f = blrchol::BLRCholesky::factorize(
      m, {.max_rank = setup.max_rank, .tol = setup.tol > 0 ? setup.tol * 1e-2 : 1e-12});
  out.factor_seconds = timer.seconds();

  timer.reset();
  std::vector<double> x = f.solve(ab_blr);
  out.solve_seconds = timer.seconds();
  out.solve_error = rel_diff(b, x);
  return out;
}

}  // namespace hatrix::driver
