// Tests for the low-rank block type and all compressors (pivoted QR, SVD,
// ACA, RSVD) plus rounded addition.
#include <gtest/gtest.h>

#include <cmath>

#include "geometry/domain.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "lowrank/aca.hpp"
#include "lowrank/compress.hpp"
#include "lowrank/lowrank.hpp"
#include "lowrank/rsvd.hpp"

namespace hatrix::lr {
namespace {

Matrix make_rank_k(Rng& rng, index_t m, index_t n, index_t k) {
  Matrix u = Matrix::random_normal(rng, m, k);
  Matrix v = Matrix::random_normal(rng, n, k);
  return la::matmul(u.view(), v.view(), la::Trans::No, la::Trans::Yes);
}

// A kernel block between two separated clusters: numerically low rank with
// fast singular value decay (the admissible-block situation).
Matrix far_field_block(index_t m, index_t n) {
  geom::Domain src = geom::grid2d(m);
  geom::Domain dst = geom::grid2d(n);
  for (auto& p : dst.points) p[0] += 3.0;  // separate the clusters
  kernels::Matern kern(1.0, 0.7, 0.5);
  la::Matrix a(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      a(i, j) = kern(src.points[static_cast<std::size_t>(i)],
                     dst.points[static_cast<std::size_t>(j)]);
  return a;
}

TEST(LowRank, ShapeAndDense) {
  Rng rng(41);
  Matrix u = Matrix::random_normal(rng, 6, 2);
  Matrix v = Matrix::random_normal(rng, 4, 2);
  LowRank lr(Matrix::from_view(u.view()), Matrix::from_view(v.view()));
  EXPECT_EQ(lr.rows(), 6);
  EXPECT_EQ(lr.cols(), 4);
  EXPECT_EQ(lr.rank(), 2);
  Matrix expect = la::matmul(u.view(), v.view(), la::Trans::No, la::Trans::Yes);
  EXPECT_LT(la::rel_error(expect.view(), lr.dense().view()), 1e-15);
}

TEST(LowRank, RankMismatchThrows) {
  Matrix u(3, 2), v(3, 1);
  EXPECT_THROW(LowRank(std::move(u), std::move(v)), Error);
}

TEST(LowRank, MatvecMatchesDense) {
  Rng rng(42);
  LowRank lr(Matrix::random_normal(rng, 8, 3), Matrix::random_normal(rng, 5, 3));
  std::vector<double> x = rng.normal_vector(5);
  std::vector<double> y(8, 1.0);
  lr.matvec(2.0, x.data(), 0.5, y.data());
  Matrix d = lr.dense();
  std::vector<double> y_ref(8, 1.0);
  la::gemv(2.0, d.view(), la::Trans::No, x.data(), 0.5, y_ref.data());
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-12);
}

TEST(LowRank, MatvecTransMatchesDense) {
  Rng rng(43);
  LowRank lr(Matrix::random_normal(rng, 8, 3), Matrix::random_normal(rng, 5, 3));
  std::vector<double> x = rng.normal_vector(8);
  std::vector<double> y(5, 0.0);
  lr.matvec_trans(1.0, x.data(), 0.0, y.data());
  Matrix d = lr.dense();
  std::vector<double> y_ref(5, 0.0);
  la::gemv(1.0, d.view(), la::Trans::Yes, x.data(), 0.0, y_ref.data());
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-12);
}

TEST(Compress, ExactForTrueLowRank) {
  Rng rng(44);
  Matrix a = make_rank_k(rng, 30, 20, 5);
  LowRank lr = compress(a.view(), 10, 1e-10);
  EXPECT_LE(lr.rank(), 6);
  EXPECT_LT(approx_error(lr, a.view()), 1e-9);
}

TEST(Compress, UHasOrthonormalColumns) {
  Rng rng(45);
  Matrix a = make_rank_k(rng, 30, 20, 5);
  LowRank lr = compress(a.view(), 5, 0.0);
  Matrix utu = la::matmul(lr.u.view(), lr.u.view(), la::Trans::Yes, la::Trans::No);
  EXPECT_LT(la::rel_error(Matrix::identity(5).view(), utu.view()), 1e-12);
}

TEST(Compress, RankCapGivesBestEffort) {
  Matrix a = far_field_block(40, 40);
  LowRank lr3 = compress(a.view(), 3, 0.0);
  LowRank lr10 = compress(a.view(), 10, 0.0);
  EXPECT_EQ(lr3.rank(), 3);
  // More rank, better approximation (monotone improvement).
  EXPECT_LT(approx_error(lr10, a.view()), approx_error(lr3, a.view()));
}

TEST(TruncatedSvd, OptimalityBeatsQrAtSameRank) {
  Matrix a = far_field_block(36, 44);
  LowRank qr_lr = compress(a.view(), 4, 0.0);
  LowRank svd_lr = truncated_svd(a.view(), 4, 0.0);
  // SVD truncation is optimal in Frobenius norm; allow equality tolerance.
  EXPECT_LE(approx_error(svd_lr, a.view()),
            approx_error(qr_lr, a.view()) * (1.0 + 1e-10));
}

TEST(TruncatedSvd, ToleranceControlsRank) {
  Matrix a = far_field_block(40, 40);
  LowRank tight = truncated_svd(a.view(), 40, 1e-12);
  LowRank loose = truncated_svd(a.view(), 40, 1e-3);
  EXPECT_GT(tight.rank(), loose.rank());
  EXPECT_LT(approx_error(tight, a.view()), 1e-10);
}

TEST(Recompress, ReducesInflatedRank) {
  Rng rng(46);
  Matrix base = make_rank_k(rng, 25, 25, 3);
  // Inflate: represent with rank 12 factors.
  LowRank fat = compress(base.view(), 12, 0.0);
  LowRank slim = recompress(fat, 12, 1e-10);
  EXPECT_LE(slim.rank(), 4);
  EXPECT_LT(approx_error(slim, base.view()), 1e-9);
}

TEST(LrAddRound, MatchesDenseSum) {
  Rng rng(47);
  Matrix a = make_rank_k(rng, 20, 15, 3);
  Matrix b = make_rank_k(rng, 20, 15, 2);
  LowRank la_ = compress(a.view(), 3, 0.0);
  LowRank lb = compress(b.view(), 2, 0.0);
  LowRank sum = lr_add_round(2.0, la_, -1.0, lb, 10, 1e-12);
  Matrix expect = Matrix::from_view(a.view());
  la::scale(expect.view(), 2.0);
  la::add_scaled(expect.view(), -1.0, b.view());
  EXPECT_LT(approx_error(sum, expect.view()), 1e-9);
  EXPECT_LE(sum.rank(), 5);
}

TEST(LrAddRound, RespectsMaxRankCap) {
  Rng rng(48);
  LowRank a(Matrix::random_normal(rng, 30, 6), Matrix::random_normal(rng, 30, 6));
  LowRank b(Matrix::random_normal(rng, 30, 6), Matrix::random_normal(rng, 30, 6));
  LowRank sum = lr_add_round(1.0, a, 1.0, b, 4, 0.0);
  EXPECT_LE(sum.rank(), 4);
}

TEST(Aca, ExactRecoveryOnLowRankEntries) {
  Rng rng(49);
  Matrix a = make_rank_k(rng, 30, 25, 4);
  auto entry = [&](index_t i, index_t j) { return a(i, j); };
  LowRank lr = aca(entry, 30, 25, 10, 1e-12);
  EXPECT_LT(approx_error(lr, a.view()), 1e-8);
}

TEST(Aca, FarFieldKernelBlock) {
  Matrix a = far_field_block(50, 50);
  auto entry = [&](index_t i, index_t j) { return a(i, j); };
  LowRank lr = aca(entry, 50, 50, 25, 1e-10);
  EXPECT_LT(approx_error(lr, a.view()), 1e-6);
  EXPECT_LT(lr.rank(), 25);  // decays well before the cap
}

TEST(Aca, ZeroMatrixGivesRankZero) {
  auto entry = [](index_t, index_t) { return 0.0; };
  LowRank lr = aca(entry, 10, 10, 5, 1e-10);
  EXPECT_EQ(lr.rank(), 0);
}

TEST(Rsvd, RecoversLowRankMatrix) {
  Rng rng(50);
  Matrix a = make_rank_k(rng, 60, 40, 6);
  LowRank lr = rsvd(a.view(), 6, rng);
  EXPECT_EQ(lr.rank(), 6);
  EXPECT_LT(approx_error(lr, a.view()), 1e-9);
}

TEST(Rsvd, PowerIterationsImproveFlatSpectra) {
  Rng rng(51);
  // Random full-rank matrix: truncation error is large either way, but
  // power iterations should not make it worse.
  Matrix a = Matrix::random_normal(rng, 50, 50);
  Rng r1(7), r2(7);
  LowRank lr0 = rsvd(a.view(), 10, r1, 8, 0);
  LowRank lr2 = rsvd(a.view(), 10, r2, 8, 3);
  EXPECT_LE(approx_error(lr2, a.view()), approx_error(lr0, a.view()) * 1.05);
}

TEST(Compressors, AgreeOnFarFieldBlock) {
  Matrix a = far_field_block(40, 40);
  Rng rng(52);
  const index_t k = 12;
  double e_qr = approx_error(compress(a.view(), k, 0.0), a.view());
  double e_svd = approx_error(truncated_svd(a.view(), k, 0.0), a.view());
  double e_rsvd = approx_error(rsvd(a.view(), k, rng, 8, 2), a.view());
  // All within an order of magnitude of the optimal truncation.
  EXPECT_LT(e_qr, 10.0 * e_svd + 1e-14);
  EXPECT_LT(e_rsvd, 10.0 * e_svd + 1e-14);
}

}  // namespace
}  // namespace hatrix::lr
