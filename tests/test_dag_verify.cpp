// Static race & ordering verifier (runtime/dag_verify.hpp): structural
// rejection (self-dependency, dangling edge, cycle, corrupted in-degree),
// reachability-based race detection over declared TaskAccess sets, the
// width/critical-path statistics, the verify-before-run executor mode, and
// the regression proving a dropped TRANSFER edge in the real N=8192 HSS
// builder DAG is caught as the race it is.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>

#include "blrchol/blr_cholesky_tasks.hpp"
#include "common/rng.hpp"
#include "format/accessor.hpp"
#include "format/hss_builder.hpp"
#include "format/hss_builder_tasks.hpp"
#include "geometry/cluster_tree.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "runtime/dag_verify.hpp"
#include "runtime/fork_join_executor.hpp"
#include "runtime/thread_pool_executor.hpp"
#include "ulv/hss_solve_tasks.hpp"
#include "ulv/hss_ulv_tasks.hpp"

namespace hatrix {
namespace {

using la::index_t;

rt::TaskId find_task(const rt::TaskGraph& g, const std::string& name) {
  for (const auto& t : g.tasks())
    if (t.name == name) return t.id;
  ADD_FAILURE() << "no task named " << name;
  return -1;
}

// Small real kernel-matrix problem shared by the production-DAG tests.
struct Problem {
  std::unique_ptr<geom::ClusterTree> tree;
  std::unique_ptr<kernels::Kernel> kernel;
  std::unique_ptr<kernels::KernelMatrix> km;
  std::unique_ptr<fmt::KernelAccessor> acc;

  explicit Problem(index_t n, index_t leaf) {
    geom::Domain d = geom::grid2d(n);
    tree = std::make_unique<geom::ClusterTree>(d, leaf);
    kernel = kernels::make_kernel("yukawa");
    km = std::make_unique<kernels::KernelMatrix>(*kernel, tree->points());
    acc = std::make_unique<fmt::KernelAccessor>(*km);
  }
};

// ---------------------------------------------------------------- structure

TEST(DagVerifyStructure, EmptyGraphPasses) {
  rt::TaskGraph g;
  rt::DagStats s = rt::verify_dag(g);
  EXPECT_EQ(s.tasks, 0);
  EXPECT_EQ(s.edges, 0);
  EXPECT_EQ(s.critical_path, 0);
}

TEST(DagVerifyStructure, SelfDependencyRejected) {
  rt::TaskGraph g;
  auto a = g.insert_task("A", "noop", {}, {}, {});
  g.add_dependency_for_test(a, a);
  try {
    rt::verify_dag(g);
    FAIL() << "self-dependency not rejected";
  } catch (const rt::DagStructureError& e) {
    EXPECT_NE(std::string(e.what()).find("self-dependency"), std::string::npos);
  }
}

TEST(DagVerifyStructure, DanglingDependencyRejected) {
  rt::TaskGraph g;
  auto a = g.insert_task("A", "noop", {}, {}, {});
  g.add_dependency_for_test(a, 57);  // no such task
  try {
    rt::verify_dag(g);
    FAIL() << "dangling edge not rejected";
  } catch (const rt::DagStructureError& e) {
    EXPECT_NE(std::string(e.what()).find("dangling"), std::string::npos);
  }
}

TEST(DagVerifyStructure, CycleRejected) {
  rt::TaskGraph g;
  auto a = g.insert_task("A", "noop", {}, {}, {});
  auto b = g.insert_task("B", "noop", {}, {}, {});
  g.add_dependency_for_test(a, b);
  g.add_dependency_for_test(b, a);
  try {
    rt::verify_dag(g);
    FAIL() << "cycle not rejected";
  } catch (const rt::DagStructureError& e) {
    EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos);
  }
}

TEST(DagVerifyStructure, DuplicateEdgesAreHarmless) {
  rt::TaskGraph g;
  auto r = g.register_data("r");
  auto a = g.insert_task("A", "noop", {}, {}, {{r, rt::Access::ReadWrite}});
  auto b = g.insert_task("B", "noop", {}, {}, {{r, rt::Access::ReadWrite}});
  // A second, parallel A->B edge on top of the derived W/W edge: bookkeeping
  // stays consistent (the helper counts it) and verification still passes.
  g.add_dependency_for_test(a, b);
  rt::DagStats s = rt::verify_dag(g);
  EXPECT_EQ(s.tasks, 2);
  EXPECT_EQ(s.edges, 2);
  EXPECT_EQ(s.critical_path, 2);
}

// -------------------------------------------------------------------- races

TEST(DagVerifyRaces, ReadOnlySharingIsAllowed) {
  rt::TaskGraph g;
  auto r = g.register_data("shared");
  g.insert_task("R1", "noop", {}, {}, {{r, rt::Access::Read}});
  g.insert_task("R2", "noop", {}, {}, {{r, rt::Access::Read}});
  g.insert_task("R3", "noop", {}, {}, {{r, rt::Access::Read}});
  rt::DagStats s = rt::verify_dag(g);  // three unordered readers: fine
  EXPECT_EQ(s.edges, 0);
  EXPECT_EQ(s.max_width, 3);
  EXPECT_EQ(s.critical_path, 1);
}

TEST(DagVerifyRaces, UnorderedWriteWriteRejected) {
  rt::TaskGraph g;
  auto r = g.register_data("block");
  auto a = g.insert_task("W1", "noop", {}, {}, {{r, rt::Access::ReadWrite}});
  auto b = g.insert_task("W2", "noop", {}, {}, {{r, rt::Access::ReadWrite}});
  ASSERT_TRUE(g.drop_dependency_for_test(a, b));
  try {
    rt::verify_dag(g);
    FAIL() << "unordered W/W not rejected";
  } catch (const rt::DagRaceError& e) {
    EXPECT_EQ(e.task_a, a);
    EXPECT_EQ(e.task_b, b);
    EXPECT_EQ(e.resource, r);
    EXPECT_EQ(e.task_a_name, "W1");
    EXPECT_EQ(e.task_b_name, "W2");
    EXPECT_EQ(e.resource_name, "block");
  }
}

TEST(DagVerifyRaces, UnorderedReadWriteRejected) {
  rt::TaskGraph g;
  auto r = g.register_data("block");
  auto w = g.insert_task("W", "noop", {}, {}, {{r, rt::Access::ReadWrite}});
  auto rd = g.insert_task("R", "noop", {}, {}, {{r, rt::Access::Read}});
  ASSERT_TRUE(g.drop_dependency_for_test(w, rd));
  EXPECT_THROW(rt::verify_dag(g), rt::DagRaceError);
}

TEST(DagVerifyRaces, DiamondOrderingAcceptedWithoutDirectEdge) {
  // A writes, B and C read, D writes again. Dropping the direct A->D
  // (W/W) edge must still verify: D remains ordered after A through
  // A->B->D — the verifier checks reachability, not direct edges.
  rt::TaskGraph g;
  auto r = g.register_data("r");
  auto a = g.insert_task("A", "noop", {}, {}, {{r, rt::Access::ReadWrite}});
  g.insert_task("B", "noop", {}, {}, {{r, rt::Access::Read}});
  g.insert_task("C", "noop", {}, {}, {{r, rt::Access::Read}});
  auto d = g.insert_task("D", "noop", {}, {}, {{r, rt::Access::ReadWrite}});
  ASSERT_TRUE(g.drop_dependency_for_test(a, d));
  rt::DagStats s = rt::verify_dag(g);
  EXPECT_EQ(s.critical_path, 3);  // A -> {B,C} -> D
  EXPECT_EQ(s.max_width, 2);
  // But cutting one of the diamond's sides as well IS a race: D still
  // depends on B, yet nothing orders it after C's read.
  auto c = find_task(g, "C");
  ASSERT_TRUE(g.drop_dependency_for_test(c, d));
  EXPECT_THROW(rt::verify_dag(g), rt::DagRaceError);
}

TEST(DagVerifyRaces, TwoAccessesOfOneTaskDoNotSelfConflict) {
  rt::TaskGraph g;
  auto r = g.register_data("r");
  // One task declaring the same resource twice (read + write) is not a race
  // with itself.
  g.insert_task("A", "noop", {}, {},
                {{r, rt::Access::Read}, {r, rt::Access::ReadWrite}});
  EXPECT_NO_THROW(rt::verify_dag(g));
}

// -------------------------------------------------------------------- stats

TEST(DagVerifyStats, ChainPlusIndependentTask) {
  rt::TaskGraph g;
  auto r = g.register_data("r");
  g.insert_task("A", "noop", {}, {}, {{r, rt::Access::ReadWrite}});
  g.insert_task("B", "noop", {}, {}, {{r, rt::Access::ReadWrite}});
  g.insert_task("C", "noop", {}, {}, {{r, rt::Access::ReadWrite}});
  g.insert_task("D", "noop", {}, {}, {});
  rt::DagStats s = rt::verify_dag(g);
  EXPECT_EQ(s.tasks, 4);
  EXPECT_EQ(s.edges, 2);
  EXPECT_EQ(s.critical_path, 3);      // A -> B -> C
  EXPECT_EQ(s.max_width, 2);          // depth 1 holds A and D
  EXPECT_DOUBLE_EQ(s.avg_width, 4.0 / 3.0);
  EXPECT_EQ(s.critical_path, g.critical_path_length());
}

// --------------------------------------------------------- production DAGs

TEST(DagVerifyProduction, ConstructionFactorAndSolveDagsAllPass) {
  Problem p(512, 64);
  fmt::HSSOptions opts{.leaf_size = 64, .max_rank = 24, .sample_cols = 48,
                       .guard_tol = 1e-4};

  // Construction DAG, as emitted (and also after really executing it).
  rt::TaskGraph build_graph;
  auto build_dag = fmt::emit_hss_build_dag(*p.acc, opts, build_graph);
  rt::DagStats bs = rt::verify_dag(build_graph);
  EXPECT_GT(bs.tasks, 0);
  EXPECT_GT(bs.max_width, 1);

  rt::ThreadPoolExecutor ex(2);
  ex.set_verify_dag(true);  // verify-before-run on the real executor path
  ex.run(build_graph);
  fmt::HSSMatrix h = fmt::extract_built_hss(build_dag);

  // Factorization DAG on the built matrix.
  rt::TaskGraph factor_graph;
  auto factor_dag = ulv::emit_hss_ulv_dag(h, factor_graph, /*with_work=*/true);
  EXPECT_NO_THROW(rt::verify_dag(factor_graph));
  ex.run(factor_graph);
  ulv::HSSULV f = ulv::extract_factorization(factor_dag);

  // Solve DAG on the finished factorization.
  Rng rng(3);
  std::vector<double> b = rng.normal_vector(512);
  rt::TaskGraph solve_graph;
  auto solve_dag = ulv::emit_hss_solve_dag(f, b, solve_graph);
  rt::DagStats ss = rt::verify_dag(solve_graph);
  // Forward sweep up the tree, root solve, backward sweep down again.
  EXPECT_GE(ss.critical_path, 2 * (ss.max_width > 1 ? 2 : 1));
  ex.run(solve_graph);
  EXPECT_EQ(solve_dag.state->x_col().size(), 512u);
}

TEST(DagVerifyProduction, CholeskyDagsPass) {
  rt::TaskGraph dense;
  (void)blrchol::emit_dense_cholesky_dag({}, 4 * 32, 32, dense, /*with_work=*/false);
  EXPECT_NO_THROW(rt::verify_dag(dense));

  auto blr = fmt::make_blr_skeleton(1024, 128, 16);
  rt::TaskGraph blr_graph;
  (void)blrchol::emit_blr_cholesky_dag(blr, blr_graph, /*with_work=*/false);
  EXPECT_NO_THROW(rt::verify_dag(blr_graph));
}

// The verifier stays cheap on the largest DAGs the simulations emit (~5k
// tasks): bit-parallel reachability keeps it well inside the fast label.
TEST(DagVerifyProduction, LargeUlvDagVerifiesFast) {
  auto skel = fmt::make_hss_skeleton(262144, 256, 100);
  rt::TaskGraph g;
  (void)ulv::emit_hss_ulv_dag(skel, g, /*with_work=*/false);
  rt::DagStats s = rt::verify_dag(g);
  EXPECT_GT(s.tasks, 3000);
  EXPECT_EQ(s.critical_path, g.critical_path_length());
}

// ------------------------------------------------- the builder-race regression

// The race that motivated the verifier: the N=8192 task-parallel HSS build
// (the guard-regression configuration) with one TRANSFER dependency edge
// dropped — exactly what an emitter bug losing a child->parent edge would
// produce. COMPRESS(L,0) writes node(L,0)'s basis/skeleton state and
// TRANSFER(L-1,0) reads it; without the edge nothing orders them and an
// asynchronous executor is free to run the transfer against a half-written
// basis. The verifier must name that exact pair and resource. Emission is
// cheap (closures never run), so this uses the full-size DAG.
TEST(DagVerifyRegression, DroppedTransferEdgeInBuilderDagIsARace) {
  Problem p(8192, 64);
  fmt::HSSOptions opts{.leaf_size = 64, .max_rank = 20, .sample_cols = 64};
  rt::TaskGraph g;
  auto dag = fmt::emit_hss_build_dag(*p.acc, opts, g);
  ASSERT_NO_THROW(rt::verify_dag(g));  // the unmutated DAG is complete

  const int L = fmt::hss_levels(8192, 64);
  const std::string child = "COMPRESS(" + std::to_string(L) + ",0)";
  const std::string parent = "TRANSFER(" + std::to_string(L - 1) + ",0)";
  const rt::TaskId c = find_task(g, child);
  const rt::TaskId t = find_task(g, parent);
  ASSERT_TRUE(g.drop_dependency_for_test(c, t));

  try {
    rt::verify_dag(g);
    FAIL() << "dropped TRANSFER edge not flagged";
  } catch (const rt::DagRaceError& e) {
    EXPECT_EQ(e.task_a, c);
    EXPECT_EQ(e.task_b, t);
    EXPECT_EQ(e.task_a_name, child);
    EXPECT_EQ(e.task_b_name, parent);
    EXPECT_EQ(e.resource, dag.node_data[static_cast<std::size_t>(L)][0]);
    EXPECT_EQ(e.resource_name, "node(" + std::to_string(L) + ",0)");
    // The message is actionable on its own.
    const std::string what = e.what();
    EXPECT_NE(what.find(child), std::string::npos);
    EXPECT_NE(what.find(parent), std::string::npos);
    EXPECT_NE(what.find("node(" + std::to_string(L) + ",0)"), std::string::npos);
  }
}

// ------------------------------------------------------- executor integration

TEST(DagVerifyExecutors, VerifyingExecutorRefusesRacyGraphBeforeAnyWork) {
  std::atomic<int> ran{0};
  rt::TaskGraph g;
  auto r = g.register_data("r");
  auto a = g.insert_task("W1", "noop", {}, [&] { ++ran; },
                         {{r, rt::Access::ReadWrite}});
  auto b = g.insert_task("W2", "noop", {}, [&] { ++ran; },
                         {{r, rt::Access::ReadWrite}});
  ASSERT_TRUE(g.drop_dependency_for_test(a, b));

  rt::ThreadPoolExecutor pool(2);
  pool.set_verify_dag(true);
  EXPECT_THROW(pool.run(g), rt::DagRaceError);
  // A racy graph is a programming error: it throws even when the caller
  // opted into capturing task-body failures, and nothing ever runs.
  std::exception_ptr err;
  EXPECT_THROW(pool.run(g, &err), rt::DagRaceError);
  EXPECT_EQ(ran.load(), 0);

  rt::ForkJoinExecutor fj(2);
  fj.set_verify_dag(true);
  EXPECT_THROW(fj.run(g), rt::DagRaceError);
  EXPECT_EQ(ran.load(), 0);

  // With verification off the (benignly) racy graph still executes — the
  // verifier is a gate, not a scheduler constraint.
  pool.set_verify_dag(false);
  EXPECT_FALSE(pool.verify_dag_enabled());
  pool.run(g);
  EXPECT_EQ(ran.load(), 2);
}

}  // namespace
}  // namespace hatrix
