// Tests for src/common: flop counting, tables, CLI parsing, RNG determinism.
#include <gtest/gtest.h>

#include <thread>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/flops.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace hatrix {
namespace {

TEST(Flops, AddAndReset) {
  flops::reset();
  flops::add(100);
  flops::add(23);
  EXPECT_EQ(flops::total(), 123u);
  flops::reset();
  EXPECT_EQ(flops::total(), 0u);
}

TEST(Flops, ScopeCountsDelta) {
  flops::reset();
  flops::add(10);
  flops::Scope scope;
  flops::add(32);
  EXPECT_EQ(scope.count(), 32u);
}

TEST(Flops, AggregatesAcrossThreads) {
  flops::reset();
  std::thread t1([] { flops::add(40); });
  std::thread t2([] { flops::add(2); });
  t1.join();
  t2.join();
  EXPECT_EQ(flops::total(), 42u);
}

TEST(TextTable, AlignsAndCsv) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "name,value\nalpha,1\nb,22\n");
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Cli, ParsesFormsAndDefaults) {
  const char* argv[] = {"prog", "--n", "1024", "--tol=1e-8", "--verbose",
                        "--nodes", "2,8,32"};
  Cli cli(7, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 1024);
  EXPECT_DOUBLE_EQ(cli.get_double("tol", 0.0), 1e-8);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("missing"));
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  auto nodes = cli.get_int_list("nodes", {});
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0], 2);
  EXPECT_EQ(nodes[2], 32);
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(Cli(2, const_cast<char**>(argv)), Error);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(a.normal(), b.normal());
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.index(17);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 17);
  }
}

}  // namespace
}  // namespace hatrix
