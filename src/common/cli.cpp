#include "common/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/error.hpp"

namespace hatrix {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    HATRIX_CHECK(arg.rfind("--", 0) == 0, "expected --flag, got: " + arg);
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag
    }
  }
}

bool Cli::has(const std::string& name) const {
  queried_.insert(name);
  return values_.count(name) != 0;
}

namespace {

std::int64_t parse_int(const std::string& name, const std::string& text) {
  char* end = nullptr;
  errno = 0;
  std::int64_t v = std::strtoll(text.c_str(), &end, 10);
  HATRIX_CHECK(end != text.c_str() && *end == '\0' && errno != ERANGE,
               "--" + name + ": not an integer: " + text);
  return v;
}

}  // namespace

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  queried_.insert(name);
  auto it = values_.find(name);
  return it == values_.end() ? fallback : parse_int(name, it->second);
}

double Cli::get_double(const std::string& name, double fallback) const {
  queried_.insert(name);
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(it->second.c_str(), &end);
  // ERANGE also fires on underflow to a (usable) denormal; only overflow to
  // ±HUGE_VAL means the value is unrepresentable.
  const bool overflow = errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL);
  HATRIX_CHECK(end != it->second.c_str() && *end == '\0' && !overflow,
               "--" + name + ": not a number: " + it->second);
  return v;
}

std::string Cli::get_string(const std::string& name, const std::string& fallback) const {
  queried_.insert(name);
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::vector<std::int64_t> Cli::get_int_list(
    const std::string& name, const std::vector<std::int64_t>& fallback) const {
  queried_.insert(name);
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<std::int64_t> out;
  const std::string& s = it->second;
  HATRIX_CHECK(!s.empty() && s.back() != ',', "--" + name + ": malformed list: " + s);
  std::size_t pos = 0;
  while (pos < s.size()) {
    auto comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(parse_int(name, s.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out;
}

void Cli::reject_unknown() const {
  std::string unknown;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (queried_.count(key) == 0) unknown += (unknown.empty() ? "--" : ", --") + key;
  }
  HATRIX_CHECK(unknown.empty(), "unknown flag(s): " + unknown);
}

}  // namespace hatrix
