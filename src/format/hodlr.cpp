#include "format/hodlr.hpp"

#include "common/error.hpp"
#include "format/hss_builder.hpp"  // hss_levels (same tree convention)
#include "linalg/blas.hpp"
#include "lowrank/aca.hpp"

namespace hatrix::fmt {

HODLRMatrix::HODLRMatrix(index_t n, int max_level) : n_(n), max_level_(max_level) {
  HATRIX_CHECK(n > 0 && max_level >= 0, "bad HODLR dimensions");
  diags_.resize(static_cast<std::size_t>(num_nodes(max_level)));
  blocks_.resize(static_cast<std::size_t>(max_level) + 1);
  for (int l = 1; l <= max_level; ++l)
    blocks_[static_cast<std::size_t>(l)].resize(static_cast<std::size_t>(num_pairs(l)));
}

std::pair<index_t, index_t> HODLRMatrix::range(int level, index_t i) const {
  HATRIX_CHECK(level >= 0 && level <= max_level_, "level out of range");
  HATRIX_CHECK(i >= 0 && i < num_nodes(level), "node out of range");
  // Recreate the midpoint splits down from the root.
  index_t begin = 0, end = n_;
  for (int l = level - 1; l >= 0; --l) {
    const index_t mid = begin + (end - begin + 1) / 2;
    if ((i >> l) & 1)
      begin = mid;
    else
      end = mid;
  }
  return {begin, end};
}

la::Matrix& HODLRMatrix::diag(index_t i) {
  HATRIX_CHECK(i >= 0 && i < num_nodes(max_level_), "diag out of range");
  return diags_[static_cast<std::size_t>(i)];
}

const la::Matrix& HODLRMatrix::diag(index_t i) const {
  return const_cast<HODLRMatrix*>(this)->diag(i);
}

lr::LowRank& HODLRMatrix::block(int level, index_t pair) {
  HATRIX_CHECK(level >= 1 && level <= max_level_, "block level out of range");
  HATRIX_CHECK(pair >= 0 && pair < num_pairs(level), "block pair out of range");
  return blocks_[static_cast<std::size_t>(level)][static_cast<std::size_t>(pair)];
}

const lr::LowRank& HODLRMatrix::block(int level, index_t pair) const {
  return const_cast<HODLRMatrix*>(this)->block(level, pair);
}

void HODLRMatrix::matvec(const std::vector<double>& x, std::vector<double>& y) const {
  HATRIX_CHECK(static_cast<index_t>(x.size()) == n_, "matvec dimension mismatch");
  y.assign(static_cast<std::size_t>(n_), 0.0);
  for (index_t i = 0; i < num_nodes(max_level_); ++i) {
    auto [b, e] = range(max_level_, i);
    (void)e;
    la::gemv(1.0, diags_[static_cast<std::size_t>(i)].view(), la::Trans::No,
             x.data() + b, 1.0, y.data() + b);
  }
  for (int l = 1; l <= max_level_; ++l) {
    for (index_t t = 0; t < num_pairs(l); ++t) {
      const auto& lr_block = block(l, t);
      if (lr_block.rank() == 0) continue;
      auto [b0, e0] = range(l, 2 * t);
      auto [b1, e1] = range(l, 2 * t + 1);
      (void)e0;
      (void)e1;
      lr_block.matvec(1.0, x.data() + b0, 1.0, y.data() + b1);
      lr_block.matvec_trans(1.0, x.data() + b1, 1.0, y.data() + b0);
    }
  }
}

la::Matrix HODLRMatrix::dense() const {
  la::Matrix a(n_, n_);
  for (index_t i = 0; i < num_nodes(max_level_); ++i) {
    auto [b, e] = range(max_level_, i);
    la::copy(diags_[static_cast<std::size_t>(i)].view(), a.block(b, b, e - b, e - b));
  }
  for (int l = 1; l <= max_level_; ++l) {
    for (index_t t = 0; t < num_pairs(l); ++t) {
      auto [b0, e0] = range(l, 2 * t);
      auto [b1, e1] = range(l, 2 * t + 1);
      la::Matrix lower = block(l, t).dense();
      la::copy(lower.view(), a.block(b1, b0, e1 - b1, e0 - b0));
      la::Matrix upper = la::transpose(lower.view());
      la::copy(upper.view(), a.block(b0, b1, e0 - b0, e1 - b1));
    }
  }
  return a;
}

std::int64_t HODLRMatrix::memory_bytes() const {
  std::int64_t total = 0;
  for (const auto& d : diags_) total += d.bytes();
  for (const auto& level : blocks_)
    for (const auto& b : level) total += b.bytes();
  return total;
}

index_t HODLRMatrix::max_rank_used() const {
  index_t r = 0;
  for (const auto& level : blocks_)
    for (const auto& b : level) r = std::max(r, b.rank());
  return r;
}

HODLRMatrix build_hodlr(const BlockAccessor& acc, const HSSOptions& opts) {
  const index_t n = acc.size();
  const int L = hss_levels(n, opts.leaf_size);
  HODLRMatrix m(n, L);

  for (index_t i = 0; i < m.num_nodes(L); ++i) {
    auto [b, e] = m.range(L, i);
    m.diag(i) = acc.block(b, b, e - b, e - b);
  }
  for (int l = 1; l <= L; ++l) {
    for (index_t t = 0; t < m.num_pairs(l); ++t) {
      auto [b0, e0] = m.range(l, 2 * t);
      auto [b1, e1] = m.range(l, 2 * t + 1);
      // ACA evaluates only O((rows+cols)·rank) entries of the block.
      auto entry = [&acc, b0 = b0, b1 = b1](index_t i, index_t j) {
        la::Matrix e1x(1, 1);
        acc.fill_block(b1 + i, b0 + j, e1x.view());
        return e1x(0, 0);
      };
      m.block(l, t) = lr::aca(entry, e1 - b1, e0 - b0, opts.max_rank,
                              opts.tol > 0.0 ? opts.tol : 1e-10);
    }
  }
  return m;
}

}  // namespace hatrix::fmt
