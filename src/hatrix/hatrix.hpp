#pragma once
/// \file hatrix.hpp
/// \brief Umbrella header: the library's public API in one include.
///
/// Typical flow:
///   1. geometry  -> geom::grid2d / circle2d / random2d + geom::ClusterTree
///   2. operator  -> kernels::make_kernel + kernels::KernelMatrix
///   3. compress  -> fmt::build_hss (or build_blr2 / build_blr / build_hodlr)
///   4. factorize -> ulv::HSSULV::factorize (O(N))
///   5. solve     -> factor.solve(b) / solve_refined(b)
///
/// Parallel execution: ulv::emit_hss_ulv_dag + rt::ThreadPoolExecutor.
/// Distributed what-if studies: driver::run_simulated (see DESIGN.md).

#include "blrchol/blr_cholesky.hpp"
#include "blrchol/blr_cholesky_tasks.hpp"
#include "blrchol/tile_cholesky.hpp"
#include "common/cli.hpp"
#include "common/flops.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "distsim/cost_model.hpp"
#include "distsim/des.hpp"
#include "distsim/mapping.hpp"
#include "distsim/network_model.hpp"
#include "format/accessor.hpp"
#include "format/blr.hpp"
#include "format/blr2.hpp"
#include "format/blr2_strong.hpp"
#include "format/hodlr.hpp"
#include "format/hss.hpp"
#include "format/hss_builder.hpp"
#include "geometry/cluster_tree.hpp"
#include "geometry/domain.hpp"
#include "hatrix/drivers.hpp"
#include "hatrix/experiment.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "lowrank/aca.hpp"
#include "lowrank/compress.hpp"
#include "lowrank/lowrank.hpp"
#include "lowrank/rsvd.hpp"
#include "runtime/fork_join_executor.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/thread_pool_executor.hpp"
#include "runtime/trace.hpp"
#include "ulv/blr2_ulv.hpp"
#include "ulv/blr2_ulv_tasks.hpp"
#include "ulv/hss_solve_tasks.hpp"
#include "ulv/hss_ulv.hpp"
#include "ulv/hss_ulv_tasks.hpp"
