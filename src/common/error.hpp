#pragma once
/// \file error.hpp
/// \brief Error handling used across the library: checked preconditions and a
/// library-specific exception type.

#include <stdexcept>
#include <string>

namespace hatrix {

/// Exception thrown for all recoverable library errors (bad arguments,
/// numerically impossible requests such as Cholesky of an indefinite matrix).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* cond, const char* file, int line,
                              const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) +
              ": check failed (" + cond + ") " + msg);
}
}  // namespace detail

}  // namespace hatrix

/// Precondition check that stays on in release builds; throws hatrix::Error.
#define HATRIX_CHECK(cond, msg)                                    \
  do {                                                             \
    if (!(cond)) ::hatrix::detail::fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
