#pragma once
/// \file des.hpp
/// \brief Discrete-event simulator for distributed task-graph execution.
///
/// This is the repo's stand-in for the 128-node Fugaku runs of the paper's
/// evaluation: it replays a *real* task DAG (emitted by the same code that
/// performs the factorization) on a modeled cluster — P processes with C
/// cores each, an α-β interconnect with NIC serialization, a DTD runtime
/// overhead model (every process discovers the whole graph, Sec. 5.3.3),
/// and an optional fork-join mode with a barrier and collective exchange
/// per phase (the STRUMPACK execution model, Sec. 5.3.2).
///
/// Outputs are the observables of Figs. 9-12: makespan, per-worker compute
/// time, per-worker runtime overhead, per-worker MPI time, and message
/// counts/volumes.

#include <cstdint>
#include <vector>

#include "distsim/cost_model.hpp"
#include "distsim/mapping.hpp"
#include "distsim/network_model.hpp"
#include "runtime/task_graph.hpp"

namespace hatrix::distsim {

/// Execution-model selector.
enum class ExecModel {
  AsyncDtd,  ///< asynchronous runtime (PaRSEC DTD): no barriers, but every
             ///< process discovers the whole task graph
  AsyncPtg,  ///< asynchronous runtime, PaRSEC PTG-style: only local tasks
             ///< are generated per process (the paper's suggested fix for
             ///< the DTD discovery overhead, Sec. 4.2 / conclusion)
  ForkJoin,  ///< bulk-synchronous: barrier + collective per phase
};

/// Runtime-overhead constants.
struct OverheadModel {
  /// DTD graph discovery: every process walks the *entire* task graph at
  /// startup (PaRSEC DTD submits all tasks on every rank, Sec. 4.2). This
  /// is the overhead the paper identifies as HATRIX-DTD's scaling limit
  /// (Sec. 5.3.3).
  double discovery_per_task = 7.0e-5;
  /// Per-local-task scheduling cost (queue ops, dependency bookkeeping);
  /// serializes task launches within a process.
  double schedule_per_task = 2.0e-6;
  /// Fork-join only: ScaLAPACK-style data redistribution between phases
  /// (per-phase cost = this * procs). Latency-bound pairwise exchanges when
  /// re-laying out blocks for the next level's contexts; calibrated so the
  /// per-process MPI time tracks the paper's Fig. 10b.
  double forkjoin_redist_alpha = 5.0e-4;
};

struct SimConfig {
  int procs = 1;
  int cores_per_proc = 48;  ///< Fugaku A64FX: 48 compute cores
  ExecModel model = ExecModel::AsyncDtd;
  NetworkModel network;
  OverheadModel overhead;
};

/// Per-run observables.
struct SimResult {
  double makespan = 0.0;
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
  std::vector<double> compute;   ///< per-process busy seconds
  std::vector<double> msg_time;  ///< per-process time inside transfers

  /// Paper Fig. 10 observables. Compute and overhead are averaged per
  /// worker (process x core), matching the PaRSEC instrumentation; MPI time
  /// is averaged per process, matching mpiP's per-rank accounting (every
  /// rank sits inside the collective).
  [[nodiscard]] double compute_per_worker(const SimConfig& cfg) const;
  [[nodiscard]] double overhead_per_worker(const SimConfig& cfg) const;
  [[nodiscard]] double mpi_per_process(const SimConfig& cfg) const;
};

/// Simulate the DAG under the mapping and configuration. The task costs
/// come from `cost`; communication is derived from the graph's data-flow
/// (producer on process p, consumer on q != p => one message of the block's
/// bytes).
SimResult simulate(const rt::TaskGraph& graph, const Mapping& mapping,
                   const CostModel& cost, const SimConfig& cfg);

/// Data-flow messages of a mapped graph without timing them (used by the
/// communication-complexity measurements of Table 1).
struct CommStats {
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
};
CommStats count_messages(const rt::TaskGraph& graph, const Mapping& mapping);

}  // namespace hatrix::distsim
