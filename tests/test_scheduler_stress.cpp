// Randomized DAG stress/property tests for the three executors.
//
// Seeded shape-fuzzed graphs — random task counts, random declared accesses
// over a random data-block pool, random cost dims — are first checked by the
// static DAG verifier (rt::verify_dag: the derived edges must order every
// conflicting access pair), then executed at worker counts {1, 2, 4, 8} on
// the fork-join, FIFO and priority executors. Properties asserted per run:
//
//   * every task executes exactly once,
//   * the observed execution sequence never violates a dependency edge —
//     in particular, priority-order scheduling may only reorder *ready*
//     tasks, never run a successor before its predecessor,
//   * the trace passes validate_trace (interval sanity, per-worker
//     disjointness, discovery-timer bounds).
//
// The suite runs under TSan in CI (label `concurrency`), which is the point:
// random shapes at 8 workers exercise the steal/release/idle-wakeup paths no
// hand-written DAG reaches.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "runtime/dag_dataflow.hpp"
#include "runtime/dag_verify.hpp"
#include "runtime/fork_join_executor.hpp"
#include "runtime/priority_executor.hpp"
#include "runtime/thread_pool_executor.hpp"
#include "runtime/trace.hpp"

namespace hatrix::rt {
namespace {

struct Shape {
  std::uint64_t seed;
  std::int64_t num_data;
  std::int64_t num_tasks;
  int num_phases;     // fork-join needs monotone phases; see build_random_dag
  int max_accesses;   // declared accesses per task (>= 1)
};

/// The execution record one stress run produces: a global sequence number
/// per task, stamped by whichever worker ran it.
struct ExecutionLog {
  std::atomic<std::int64_t> seq{0};
  std::vector<std::int64_t> order;  // order[t] = global sequence; -1 = not run

  explicit ExecutionLog(std::int64_t n)
      : order(static_cast<std::size_t>(n), -1) {}
};

/// Build a seeded random DAG. Tasks declare 1..max_accesses accesses over a
/// pool of num_data blocks (60% Read / 40% ReadWrite), so the graph derives
/// a random mix of RAW/WAR/WAW edges. The first access of every block is
/// forced to ReadWrite, so each handle has an in-graph def and the dataflow
/// analyzer (which the executors run in debug builds) finds no
/// use-before-def; blocks carry non-zero byte sizes for the same reason.
/// Phases are monotone non-decreasing in insertion order
/// (phase = i * num_phases / num_tasks), which is the fork-join executor's
/// structural requirement; dependency edges may still cross several phases
/// at once. Cost dims are random so the priority executor's bottom levels
/// are non-trivial.
void build_random_dag(const Shape& sh, TaskGraph& g, ExecutionLog& log) {
  Rng rng(sh.seed);
  std::vector<DataId> data;
  for (std::int64_t d = 0; d < sh.num_data; ++d)
    data.push_back(g.register_data("blk" + std::to_string(d), 64 + 8 * d));
  std::vector<char> written(static_cast<std::size_t>(sh.num_data), 0);

  for (std::int64_t i = 0; i < sh.num_tasks; ++i) {
    const int phase =
        static_cast<int>(i * sh.num_phases / sh.num_tasks);
    const int na = 1 + static_cast<int>(rng.index(sh.max_accesses));
    std::vector<TaskAccess> acc;
    for (int a = 0; a < na; ++a) {
      const std::int64_t di = rng.index(sh.num_data);
      const DataId d = data[static_cast<std::size_t>(di)];
      bool dup = false;
      for (const auto& [prev, mode] : acc) dup = dup || prev == d;
      if (dup) continue;  // one declaration per block per task
      const bool read = rng.uniform() < 0.6 &&
                        written[static_cast<std::size_t>(di)] != 0;
      acc.emplace_back(d, read ? Access::Read : Access::ReadWrite);
      if (!read) written[static_cast<std::size_t>(di)] = 1;
    }
    if (acc.empty()) {
      const std::int64_t di = rng.index(sh.num_data);
      acc.emplace_back(data[static_cast<std::size_t>(di)], Access::ReadWrite);
      written[static_cast<std::size_t>(di)] = 1;
    }
    std::vector<std::int64_t> dims{1 + rng.index(64), 1 + rng.index(64)};
    auto* lp = &log;
    g.insert_task("t" + std::to_string(i), "fuzz", std::move(dims),
                  [lp, i] {
                    lp->order[static_cast<std::size_t>(i)] =
                        lp->seq.fetch_add(1, std::memory_order_acq_rel);
                  },
                  std::move(acc), /*priority=*/0, phase);
  }
}

/// Assert the run's sequence respects every dependency edge and covered
/// every task exactly once (one closure per task writing its own slot —
/// a double execution would be a data race TSan flags, a missed one stays -1).
void check_order(const TaskGraph& g, const ExecutionLog& log,
                 const std::string& what) {
  ASSERT_EQ(log.seq.load(), g.num_tasks()) << what << ": task count mismatch";
  const auto& order = log.order;
  for (std::size_t t = 0; t < order.size(); ++t)
    ASSERT_GE(order[t], 0) << what << ": task " << t << " never ran";
  for (std::size_t t = 0; t < order.size(); ++t)
    for (TaskId s : g.successors()[t])
      ASSERT_LT(order[t], order[static_cast<std::size_t>(s)])
          << what << ": edge " << t << " -> " << s << " violated";
}

const Shape kShapes[] = {
    // seed, data, tasks, phases, max_accesses
    {11, 6, 80, 4, 3},     // small pool: dense conflict chains
    {23, 24, 250, 6, 4},   // medium, mixed fan-out
    {37, 64, 400, 8, 3},   // wide: lots of concurrent ready tasks
    {53, 3, 120, 2, 2},    // tiny pool: near-serial WAW chains, high contention
};

class SchedulerStress : public ::testing::TestWithParam<int> {
 protected:
  [[nodiscard]] int workers() const { return GetParam(); }
};

TEST_P(SchedulerStress, ForkJoinRandomDags) {
  for (const Shape& sh : kShapes) {
    TaskGraph g;
    ExecutionLog log(sh.num_tasks);
    build_random_dag(sh, g, log);
    ASSERT_NO_THROW((void)verify_dag(g)) << "seed " << sh.seed;
    ForkJoinExecutor ex(workers());
    auto stats = ex.run(g);
    ASSERT_EQ(validate_trace(g, stats), "") << "seed " << sh.seed;
    check_order(g, log, "forkjoin seed " + std::to_string(sh.seed));
  }
}

TEST_P(SchedulerStress, FifoRandomDags) {
  for (const Shape& sh : kShapes) {
    TaskGraph g;
    ExecutionLog log(sh.num_tasks);
    build_random_dag(sh, g, log);
    ASSERT_NO_THROW((void)verify_dag(g)) << "seed " << sh.seed;
    ThreadPoolExecutor ex(workers());
    auto stats = ex.run(g);
    ASSERT_EQ(validate_trace(g, stats), "") << "seed " << sh.seed;
    check_order(g, log, "fifo seed " + std::to_string(sh.seed));
  }
}

TEST_P(SchedulerStress, PriorityRandomDags) {
  for (const Shape& sh : kShapes) {
    TaskGraph g;
    ExecutionLog log(sh.num_tasks);
    build_random_dag(sh, g, log);
    ASSERT_NO_THROW((void)verify_dag(g)) << "seed " << sh.seed;
    PriorityExecutor ex(workers());
    auto stats = ex.run(g);
    ASSERT_EQ(validate_trace(g, stats), "") << "seed " << sh.seed;
    check_order(g, log, "priority seed " + std::to_string(sh.seed));
    // The discovery timer must account for the up-front bottom-level
    // computation without exceeding the wall budget.
    EXPECT_GT(stats.discovery_total, 0.0);
    EXPECT_LE(stats.discovery_total, stats.wall_time * workers() + 1e-6);
  }
}

TEST_P(SchedulerStress, PriorityWithCostHookStillHonorsDependencies) {
  // An adversarial cost function (later tasks look maximally urgent) can
  // reorder ready tasks arbitrarily but must never reorder a dependency.
  const Shape sh{71, 10, 200, 5, 3};
  TaskGraph g;
  ExecutionLog log(sh.num_tasks);
  build_random_dag(sh, g, log);
  PriorityExecutor ex(workers());
  ex.set_cost([](const Task& t) { return static_cast<double>(t.id * t.id); });
  auto stats = ex.run(g);
  ASSERT_EQ(validate_trace(g, stats), "");
  check_order(g, log, "priority adversarial-cost");
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, SchedulerStress,
                         ::testing::Values(1, 2, 4, 8));

TEST(AnalyzerFuzz, DroppedAccessFlagsExactTaskAndResource) {
  // Satellite of the dataflow analyzer: reuse the random-DAG generator,
  // delete ONE declared access from an otherwise-clean graph, and require
  // the analyzer to name exactly the seeded task/resource pair —
  //   * dropping a handle's def turns its first reader into a use-before-def;
  //   * dropping the sole read of a single-writer handle turns that writer
  //     into a dead store.
  int def_drops = 0;
  int read_drops = 0;
  for (std::uint64_t seed = 200; seed < 216; ++seed) {
    const Shape sh{seed, 10, 120, 4, 3};

    // Reconstruct the per-handle access chains from an intact copy.
    TaskGraph probe;
    ExecutionLog plog(sh.num_tasks);
    build_random_dag(sh, probe, plog);
    std::vector<std::vector<std::pair<TaskId, Access>>> ev(probe.data().size());
    for (const auto& t : probe.tasks())
      for (const auto& [d, m] : t.accesses)
        ev[static_cast<std::size_t>(d)].push_back({t.id, m});
    ASSERT_NO_THROW((void)analyze_dag(probe)) << "seed " << seed;

    // Mutation A: drop the def of a handle whose next accessor is a pure
    // Read; the analyzer must blame that reader for that handle.
    for (std::size_t d = 0; d < ev.size(); ++d) {
      const auto& ch = ev[d];
      if (ch.size() < 2 || !is_write(ch[0].second) ||
          ch[1].second != Access::Read)
        continue;
      TaskGraph g;
      ExecutionLog log(sh.num_tasks);
      build_random_dag(sh, g, log);
      ASSERT_TRUE(g.drop_access_for_test(ch[0].first, static_cast<DataId>(d)));
      try {
        (void)analyze_dag(g);
        FAIL() << "seed " << seed << ": dropped def of blk" << d
               << " not flagged";
      } catch (const DagUseBeforeDefError& e) {
        EXPECT_EQ(e.task, ch[1].first) << "seed " << seed;
        EXPECT_EQ(e.resource, static_cast<DataId>(d)) << "seed " << seed;
      }
      ++def_drops;
      break;
    }

    // Mutation B: drop the sole read of a write-once handle; the analyzer
    // must report its writer as a dead store on that handle. A sparse shape
    // (more blocks than accesses) makes write-then-single-read chains common.
    const Shape shb{seed + 1000, 40, 30, 4, 2};
    TaskGraph probe_b;
    ExecutionLog plog_b(shb.num_tasks);
    build_random_dag(shb, probe_b, plog_b);
    std::vector<std::vector<std::pair<TaskId, Access>>> evb(
        probe_b.data().size());
    for (const auto& t : probe_b.tasks())
      for (const auto& [d, m] : t.accesses)
        evb[static_cast<std::size_t>(d)].push_back({t.id, m});
    for (std::size_t d = 0; d < evb.size(); ++d) {
      const auto& ch = evb[d];
      if (ch.size() != 2 || !is_write(ch[0].second) ||
          ch[1].second != Access::Read)
        continue;
      TaskGraph g;
      ExecutionLog log(shb.num_tasks);
      build_random_dag(shb, g, log);
      ASSERT_TRUE(g.drop_access_for_test(ch[1].first, static_cast<DataId>(d)));
      DagDataflowReport rep = analyze_dag(g);
      bool found = false;
      for (const auto& w : rep.warnings)
        found = found || (w.kind == DagWarningKind::DeadStore &&
                          w.task == ch[0].first &&
                          w.resource == static_cast<DataId>(d));
      EXPECT_TRUE(found) << "seed " << seed << ": dead store on blk" << d
                         << " not flagged";
      ++read_drops;
      break;
    }
  }
  // The seed range must actually exercise both mutations.
  EXPECT_GT(def_drops, 4);
  EXPECT_GT(read_drops, 4);
}

TEST(SchedulerStressRepeats, PriorityManySeedsAtEightWorkers) {
  // Extra seeds at the highest worker count: the steal path and idle
  // wake-ups depend on timing, so give TSan more schedules to explore.
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    const Shape sh{seed, 12, 150, 4, 3};
    TaskGraph g;
    ExecutionLog log(sh.num_tasks);
    build_random_dag(sh, g, log);
    PriorityExecutor ex(8);
    auto stats = ex.run(g);
    ASSERT_EQ(validate_trace(g, stats), "") << "seed " << seed;
    check_order(g, log, "priority seed " + std::to_string(seed));
  }
}

}  // namespace
}  // namespace hatrix::rt
