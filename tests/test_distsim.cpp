// Tests for the distributed-execution simulator: mappings, network model,
// cost model, message accounting, and the qualitative properties the paper
// reports (async beats fork-join; O(N) comm for HSS vs heavy comm for BLR).
#include <gtest/gtest.h>

#include <cmath>

#include "blrchol/blr_cholesky_tasks.hpp"
#include "distsim/cost_model.hpp"
#include "distsim/des.hpp"
#include "distsim/mapping.hpp"
#include "distsim/network_model.hpp"
#include "format/blr.hpp"
#include "format/hss_builder.hpp"
#include "ulv/hss_ulv_tasks.hpp"

namespace hatrix::distsim {
namespace {

using la::index_t;

/// Costing-only HSS-ULV DAG + row-cyclic mapping at a given scale.
struct HssSim {
  rt::TaskGraph graph;
  fmt::HSSMatrix skeleton;
  ulv::HSSULVDag dag;
  Mapping mapping;

  HssSim(index_t n, index_t leaf, index_t rank, int procs)
      : skeleton(fmt::make_hss_skeleton(n, leaf, rank)) {
    dag = ulv::emit_hss_ulv_dag(skeleton, graph, /*with_work=*/false);
    mapping = map_hss_row_cyclic(dag, graph, procs);
  }
};

TEST(NetworkModel, TransferAndBarrier) {
  NetworkModel net;
  net.latency = 1e-6;
  net.bandwidth = 1e9;
  EXPECT_NEAR(net.transfer_time(1000), 1e-6 + 1e-6, 1e-12);
  EXPECT_NEAR(net.barrier_time(8), 3 * net.barrier_alpha, 1e-12);
  EXPECT_EQ(net.barrier_time(1), 0.0);
}

TEST(CostModel, KnownFlopFormulas) {
  rt::Task t;
  t.kind = "potrf";
  t.dims = {30};
  EXPECT_NEAR(CostModel::task_flops(t), 9000.0, 1e-9);
  t.kind = "gemm";
  t.dims = {4, 5, 6};
  EXPECT_NEAR(CostModel::task_flops(t), 240.0, 1e-9);
  t.kind = "merge";
  t.dims = {10, 10};
  EXPECT_NEAR(CostModel::task_flops(t), 400.0, 1e-9);
}

TEST(CostModel, SecondsScalesWithRate) {
  rt::Task t;
  t.kind = "potrf";
  t.dims = {100};
  CostModel slow(1.0), fast(10.0);
  EXPECT_NEAR(slow.seconds(t) / fast.seconds(t), 10.0, 1e-9);
}

TEST(CostModel, CalibratedIsPositive) {
  CostModel c = CostModel::calibrated();
  EXPECT_GT(c.gflops_per_core(), 0.0);
}

TEST(Mapping, RowCyclicFollowsFig7) {
  HssSim sim(1024, 256, 20, 4);  // 2 levels, 4 leaves
  const auto& a = sim.skeleton;
  ASSERT_EQ(a.max_level(), 2);
  // Leaves on P0..P3; level-1 nodes on P0, P1; root data on P0.
  for (index_t i = 0; i < 4; ++i)
    EXPECT_EQ(sim.graph.data(sim.dag.diag_data[2][static_cast<std::size_t>(i)]).owner,
              static_cast<int>(i));
  EXPECT_EQ(sim.graph.data(sim.dag.diag_data[1][0]).owner, 0);
  EXPECT_EQ(sim.graph.data(sim.dag.diag_data[1][1]).owner, 1);
  EXPECT_EQ(sim.graph.data(sim.dag.root_data).owner, 0);
}

TEST(Mapping, OwnerComputesTasksFollowData) {
  HssSim sim(1024, 256, 20, 4);
  for (const auto& t : sim.graph.tasks()) {
    for (const auto& [d, mode] : t.accesses) {
      if (mode == rt::Access::ReadWrite) {
        EXPECT_EQ(sim.mapping.task_owner[static_cast<std::size_t>(t.id)],
                  sim.graph.data(d).owner)
            << t.name;
        break;
      }
    }
  }
}

TEST(Mapping, SingleProcessHasNoMessages) {
  HssSim sim(2048, 256, 30, 1);
  auto stats = count_messages(sim.graph, sim.mapping);
  EXPECT_EQ(stats.messages, 0);
  EXPECT_EQ(stats.bytes, 0);
}

TEST(Mapping, BlockCyclicGeneratesMoreMessagesThanRowCyclic) {
  // The paper's Sec. 4.3 argument for row-cyclic over block-cyclic.
  const index_t n = 8192, leaf = 256, rank = 40;
  const int procs = 8;
  fmt::HSSMatrix skel = fmt::make_hss_skeleton(n, leaf, rank);

  rt::TaskGraph g1;
  auto dag1 = ulv::emit_hss_ulv_dag(skel, g1, false);
  auto m1 = map_hss_row_cyclic(dag1, g1, procs);
  auto row = count_messages(g1, m1);

  rt::TaskGraph g2;
  auto dag2 = ulv::emit_hss_ulv_dag(skel, g2, false);
  auto m2 = map_hss_block_cyclic(dag2, g2, procs);
  auto blk = count_messages(g2, m2);

  EXPECT_GT(blk.bytes, row.bytes);
}

TEST(Des, SingleProcSingleCoreMakespanIsSerialTime) {
  HssSim sim(1024, 256, 20, 1);
  CostModel cost(2.0);
  SimConfig cfg;
  cfg.procs = 1;
  cfg.cores_per_proc = 1;
  cfg.overhead = {0.0, 0.0};
  auto res = simulate(sim.graph, sim.mapping, cost, cfg);
  double serial = 0.0;
  for (const auto& t : sim.graph.tasks()) serial += cost.seconds(t);
  EXPECT_NEAR(res.makespan, serial, 1e-12);
  EXPECT_EQ(res.messages, 0);
}

TEST(Des, MoreCoresNeverSlower) {
  HssSim sim(8192, 256, 40, 4);
  CostModel cost(2.0);
  SimConfig c1, c2;
  c1.procs = c2.procs = 4;
  c1.cores_per_proc = 1;
  c2.cores_per_proc = 8;
  auto r1 = simulate(sim.graph, sim.mapping, cost, c1);
  auto r2 = simulate(sim.graph, sim.mapping, cost, c2);
  EXPECT_LE(r2.makespan, r1.makespan * (1.0 + 1e-9));
}

TEST(Des, MakespanAtLeastCriticalPathWork) {
  HssSim sim(4096, 256, 30, 64);
  CostModel cost(2.0);
  SimConfig cfg;
  cfg.procs = 64;
  cfg.cores_per_proc = 48;
  auto res = simulate(sim.graph, sim.mapping, cost, cfg);
  // Lower bound: the most expensive single task.
  double max_task = 0.0;
  for (const auto& t : sim.graph.tasks())
    max_task = std::max(max_task, cost.seconds(t));
  EXPECT_GE(res.makespan, max_task);
}

TEST(Des, ForkJoinNeverFasterThanAsync) {
  // The paper's central runtime claim (Sec. 5.2): barriers can only delay.
  for (index_t n : {4096, 16384}) {
    fmt::HSSMatrix skel = fmt::make_hss_skeleton(n, 256, 50);
    rt::TaskGraph g;
    auto dag = ulv::emit_hss_ulv_dag(skel, g, false);
    auto map = map_hss_row_cyclic(dag, g, 8);
    CostModel cost(2.0);
    SimConfig async_cfg, fj_cfg;
    async_cfg.procs = fj_cfg.procs = 8;
    async_cfg.cores_per_proc = fj_cfg.cores_per_proc = 4;
    async_cfg.model = ExecModel::AsyncDtd;
    async_cfg.overhead = {0.0, 0.0};  // isolate the barrier effect
    fj_cfg.model = ExecModel::ForkJoin;
    fj_cfg.overhead = {0.0, 0.0};
    auto ra = simulate(g, map, cost, async_cfg);
    auto rf = simulate(g, map, cost, fj_cfg);
    EXPECT_LE(ra.makespan, rf.makespan * (1.0 + 1e-9)) << n;
  }
}

TEST(Des, DtdDiscoveryGrowsWithTaskCount) {
  CostModel cost(2.0);
  SimConfig cfg;
  cfg.procs = 4;
  cfg.cores_per_proc = 4;
  double prev_overhead = -1.0;
  for (index_t n : {4096, 16384, 65536}) {
    fmt::HSSMatrix skel = fmt::make_hss_skeleton(n, 256, 30);
    rt::TaskGraph g;
    auto dag = ulv::emit_hss_ulv_dag(skel, g, false);
    auto map = map_hss_row_cyclic(dag, g, cfg.procs);
    auto res = simulate(g, map, cost, cfg);
    const double oh = res.overhead_per_worker(cfg);
    EXPECT_GT(oh, prev_overhead);
    prev_overhead = oh;
  }
}

TEST(Des, HssWeakScalingComputeFlat) {
  // Fig. 10c's key feature: per-worker compute stays flat when N scales
  // with the node count.
  CostModel cost(2.0);
  double first = -1.0;
  for (int procs : {2, 8, 32}) {
    const index_t n = 2048 * procs;
    fmt::HSSMatrix skel = fmt::make_hss_skeleton(n, 256, 50);
    rt::TaskGraph g;
    auto dag = ulv::emit_hss_ulv_dag(skel, g, false);
    auto map = map_hss_row_cyclic(dag, g, procs);
    SimConfig cfg;
    cfg.procs = procs;
    cfg.cores_per_proc = 8;
    auto res = simulate(g, map, cost, cfg);
    const double cpw = res.compute_per_worker(cfg);
    if (first < 0)
      first = cpw;
    else
      EXPECT_NEAR(cpw, first, 0.35 * first) << procs;  // flat within 35%
  }
}

TEST(Des, HssCommVolumeLinearInN) {
  // Table 1: O(N) communication for the HSS-ULV.
  auto bytes_for = [](index_t n) {
    fmt::HSSMatrix skel = fmt::make_hss_skeleton(n, 256, 50);
    rt::TaskGraph g;
    auto dag = ulv::emit_hss_ulv_dag(skel, g, false);
    auto map = map_hss_row_cyclic(dag, g, 16);
    return static_cast<double>(count_messages(g, map).bytes);
  };
  const double b1 = bytes_for(16384);
  const double b2 = bytes_for(65536);
  const double exponent = std::log(b2 / b1) / std::log(4.0);
  EXPECT_LT(exponent, 1.3);
}

TEST(Des, BlrCommVolumeSuperlinearInN) {
  // LORAPO's trailing updates ship far more data (Table 1: O(N^3) class).
  auto bytes_for = [](index_t n) {
    auto skel = fmt::make_blr_skeleton(n, 512, 128);
    rt::TaskGraph g;
    auto dag = blrchol::emit_blr_cholesky_dag(skel, g, false);
    auto map = map_blr_block_cyclic(dag, g, 16);
    return static_cast<double>(count_messages(g, map).bytes);
  };
  const double b1 = bytes_for(8192);
  const double b2 = bytes_for(32768);
  const double exponent = std::log(b2 / b1) / std::log(4.0);
  EXPECT_GT(exponent, 1.5);
}

TEST(Des, MessageCountsMatchBetweenCountAndSimulate) {
  HssSim sim(8192, 256, 40, 8);
  CostModel cost(2.0);
  SimConfig cfg;
  cfg.procs = 8;
  cfg.cores_per_proc = 4;
  auto counted = count_messages(sim.graph, sim.mapping);
  auto simmed = simulate(sim.graph, sim.mapping, cost, cfg);
  EXPECT_EQ(counted.messages, simmed.messages);
  EXPECT_EQ(counted.bytes, simmed.bytes);
}

TEST(Des, StatsDecomposition) {
  HssSim sim(4096, 256, 30, 4);
  CostModel cost(2.0);
  SimConfig cfg;
  cfg.procs = 4;
  cfg.cores_per_proc = 2;
  auto res = simulate(sim.graph, sim.mapping, cost, cfg);
  EXPECT_GT(res.makespan, 0.0);
  EXPECT_GE(res.overhead_per_worker(cfg), 0.0);
  EXPECT_GT(res.compute_per_worker(cfg), 0.0);
  // Per-worker compute can never exceed the makespan.
  EXPECT_LE(res.compute_per_worker(cfg), res.makespan * (1.0 + 1e-9));
}

}  // namespace
}  // namespace hatrix::distsim
