// Tests for the baselines: dense tile Cholesky (DPLASMA-style) and BLR tile
// Cholesky (LORAPO-style) — correctness vs dense reference, adaptivity,
// complexity measurements.
#include <gtest/gtest.h>

#include <cmath>

#include "blrchol/blr_cholesky.hpp"
#include "blrchol/tile_cholesky.hpp"
#include "common/flops.hpp"
#include "format/accessor.hpp"
#include "format/hss_builder.hpp"
#include "geometry/cluster_tree.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/norms.hpp"
#include "ulv/hss_ulv.hpp"

namespace hatrix::blrchol {
namespace {

struct Problem {
  geom::Domain domain;
  std::unique_ptr<geom::ClusterTree> tree;
  std::unique_ptr<kernels::Kernel> kernel;
  std::unique_ptr<kernels::KernelMatrix> km;

  Problem(la::index_t n, la::index_t leaf, const std::string& kname = "yukawa") {
    domain = geom::grid2d(n);
    tree = std::make_unique<geom::ClusterTree>(domain, leaf);
    kernel = kernels::make_kernel(kname);
    km = std::make_unique<kernels::KernelMatrix>(*kernel, tree->points());
  }
};

double vec_rel_err(const std::vector<double>& a, const std::vector<double>& b) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - b[i]) * (a[i] - b[i]);
    den += a[i] * a[i];
  }
  return std::sqrt(num / den);
}

class TileCholSizes
    : public ::testing::TestWithParam<std::pair<la::index_t, la::index_t>> {};

TEST_P(TileCholSizes, MatchesUnblockedCholesky) {
  auto [n, tile] = GetParam();
  Rng rng(91);
  Matrix a = Matrix::random_spd(rng, n);
  Matrix ref = Matrix::from_view(a.view());
  la::potrf(ref.view());
  Matrix tiled = Matrix::from_view(a.view());
  tile_cholesky(tiled.view(), tile);
  EXPECT_LT(la::rel_error(ref.view(), tiled.view()), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TileCholSizes,
    ::testing::Values(std::pair<la::index_t, la::index_t>{64, 16},
                      std::pair<la::index_t, la::index_t>{100, 32},
                      std::pair<la::index_t, la::index_t>{128, 128},
                      std::pair<la::index_t, la::index_t>{130, 64},
                      std::pair<la::index_t, la::index_t>{37, 8}));

TEST(TileCholesky, RejectsIndefinite) {
  Matrix a = Matrix::identity(32);
  a(20, 20) = -1.0;
  EXPECT_THROW(tile_cholesky(a.view(), 8), Error);
}

TEST(TileCholesky, NumTiles) {
  EXPECT_EQ(num_tiles(100, 32), 4);
  EXPECT_EQ(num_tiles(96, 32), 3);
  EXPECT_EQ(num_tiles(1, 32), 1);
}

class BlrCholKernels : public ::testing::TestWithParam<const char*> {};

TEST_P(BlrCholKernels, SolvesCompressedOperatorExactly) {
  Problem p(1024, 256, GetParam());
  fmt::KernelAccessor acc(*p.km);
  auto blr = fmt::build_blr(acc, {.tile_size = 256, .max_rank = 256, .tol = 1e-9});
  auto f = BLRCholesky::factorize(blr, {.max_rank = 256, .tol = 1e-12});
  Rng rng(92);
  std::vector<double> b = rng.normal_vector(1024);
  std::vector<double> ab;
  blr.matvec(b, ab);
  auto x = f.solve(ab);
  // Residual limited only by the rounded additions (1e-12) and conditioning.
  EXPECT_LT(vec_rel_err(b, x), 1e-6) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PaperKernels, BlrCholKernels,
                         ::testing::Values("laplace2d", "yukawa", "matern"));

TEST(BlrCholesky, AccurateAgainstTrueKernelMatrix) {
  Problem p(1024, 256, "yukawa");
  fmt::KernelAccessor acc(*p.km);
  auto blr = fmt::build_blr(acc, {.tile_size = 256, .max_rank = 256, .tol = 1e-10});
  auto f = BLRCholesky::factorize(blr, {.max_rank = 256, .tol = 1e-12});
  Rng rng(93);
  std::vector<double> b = rng.normal_vector(1024);
  std::vector<double> ab;
  p.km->matvec(b, ab);  // true dense matvec
  auto x = f.solve(ab);
  EXPECT_LT(vec_rel_err(b, x), 1e-6);
}

TEST(BlrCholesky, FactorReconstructsLLT) {
  Problem p(512, 128, "matern");
  fmt::KernelAccessor acc(*p.km);
  auto blr = fmt::build_blr(acc, {.tile_size = 128, .max_rank = 128, .tol = 1e-12});
  auto f = BLRCholesky::factorize(blr, {.max_rank = 128, .tol = 1e-14});
  Matrix l = f.factor().dense();
  // dense() mirrors the lower triangle into the upper; rebuild L by zeroing
  // the strict upper before forming L·Lᵀ.
  for (la::index_t j = 0; j < l.cols(); ++j)
    for (la::index_t i = 0; i < j; ++i) l(i, j) = 0.0;
  Matrix llt = la::matmul(l.view(), l.view(), la::Trans::No, la::Trans::Yes);
  Matrix a = blr.dense();
  EXPECT_LT(la::rel_error(a.view(), llt.view()), 1e-8);
}

TEST(BlrCholesky, MaxRankCapHolds) {
  Problem p(1024, 128, "laplace2d");
  fmt::KernelAccessor acc(*p.km);
  auto blr = fmt::build_blr(acc, {.tile_size = 128, .max_rank = 40, .tol = 0.0});
  auto f = BLRCholesky::factorize(blr, {.max_rank = 40, .tol = 0.0});
  EXPECT_LE(f.max_rank_used(), 40);
}

TEST(BlrCholesky, RejectsIndefinite) {
  Rng rng(94);
  Matrix a = Matrix::random_spd(rng, 256);
  for (la::index_t i = 0; i < 256; ++i) a(i, i) -= 270.0;
  fmt::DenseAccessor acc(a.view());
  auto blr = fmt::build_blr(acc, {.tile_size = 64, .max_rank = 64, .tol = 1e-10});
  EXPECT_THROW(BLRCholesky::factorize(blr, {}), Error);
}

TEST(Complexity, HssUlvFlopsGrowLinearly) {
  // Empirical Table-1 check: HSS-ULV flops ~ O(N) at fixed leaf/rank.
  auto flops_for = [](la::index_t n) {
    Problem p(n, 128, "yukawa");
    fmt::KernelAccessor acc(*p.km);
    auto h = fmt::build_hss(
        acc, {.leaf_size = 128, .max_rank = 30, .tol = 0.0, .sample_cols = 256});
    hatrix::flops::reset();
    auto f = ulv::HSSULV::factorize(h);
    return static_cast<double>(hatrix::flops::total());
  };
  const double f1 = flops_for(1024);
  const double f4 = flops_for(4096);
  const double exponent = std::log(f4 / f1) / std::log(4.0);
  EXPECT_LT(exponent, 1.4);  // near-linear
  EXPECT_GT(exponent, 0.6);
}

TEST(Complexity, DenseCholeskyFlopsGrowCubically) {
  auto flops_for = [](la::index_t n) {
    Rng rng(95);
    Matrix a = Matrix::random_spd(rng, n);
    hatrix::flops::reset();
    tile_cholesky(a.view(), 64);
    return static_cast<double>(hatrix::flops::total());
  };
  const double f1 = flops_for(128);
  const double f2 = flops_for(256);
  const double exponent = std::log(f2 / f1) / std::log(2.0);
  EXPECT_GT(exponent, 2.6);
  EXPECT_LT(exponent, 3.4);
}

}  // namespace
}  // namespace hatrix::blrchol
