#pragma once
/// \file hss_builder.hpp
/// \brief HSS construction from a block accessor (Sec. 2 of the paper).
///
/// Algorithm: interpolative-decomposition skeletonization with per-node
/// orthonormalization.
///
/// * Leaf i: the shared row basis comes from compressing the off-diagonal
///   block row A(I_i, I_i^c) (Eq. 2) — either against the full complement
///   (`sample_cols == 0`, exact) or against a random column sample
///   (matrix-free O(N) construction, the same idea STRUMPACK's randomized
///   construction uses). A row-ID selects `rank` skeleton rows and the
///   interpolation factor is QR-orthonormalized into U_i; the R factor is
///   retained so upper levels can work on skeleton rows only.
/// * Internal node p: the transfer basis W_p (Eq. 6 nesting) is built from
///   the union of the children's skeleton rows, so each level costs O(rank)
///   kernel evaluations per node.
/// * Couplings: exact U_jᵀ A(I_j, I_i) U_i at the leaf level; skeleton-
///   compressed R̄_j A(sk_j, sk_i) R̄_iᵀ at upper levels.
///
/// Sampled construction carries an optional accuracy guard
/// (HSSOptions::guard_tol): each node's interpolation is validated on fresh
/// probe columns and the sample grows until the probe passes — see
/// hss_builder_tasks.hpp, which also exposes the construction as a task
/// graph for parallel execution. build_hss here is the sequential driver
/// over the same per-node tasks.

#include <memory>

#include "common/error.hpp"
#include "format/accessor.hpp"
#include "format/hss.hpp"

namespace hatrix::fmt {

/// Thrown by the guarded sampled construction when a node's column sample
/// hit HSSOptions::max_sample_cols without the residual probe reaching
/// guard_tol. This names the failure mode that otherwise surfaces much
/// later — and misleadingly — as a "matrix not positive definite" pivot
/// failure inside the ULV Cholesky: the compressed operator was not close
/// enough to the true kernel matrix because the basis was built from too
/// few columns.
class BasisUnderResolvedError : public Error {
 public:
  /// Construct with the failing node's coordinates and guard evidence.
  BasisUnderResolvedError(int level, index_t node, index_t sample_cols,
                          double residual, double tol);

  [[nodiscard]] int level() const { return level_; }          ///< tree level of the node
  [[nodiscard]] index_t node() const { return node_; }        ///< node index in its level
  [[nodiscard]] index_t sample_cols() const { return sample_cols_; }  ///< columns sampled at failure
  [[nodiscard]] double residual() const { return residual_; } ///< last probe residual
  [[nodiscard]] double tol() const { return tol_; }           ///< guard tolerance demanded

 private:
  int level_;
  index_t node_;
  index_t sample_cols_;
  double residual_;
  double tol_;
};

/// Number of tree levels build_hss will use for a given size/leaf choice.
int hss_levels(index_t n, index_t leaf_size);

/// Assign index intervals to every tree node by recursive midpoint splitting
/// (matches geom::ClusterTree, so tree-ordered kernel matrices line up).
/// `h` must already be sized (HSSMatrix(n, levels)).
void assign_hss_intervals(HSSMatrix& h);

/// Build a symmetric HSS approximation of the matrix behind `acc`
/// sequentially. Numerically identical to build_hss_parallel (per-node
/// deterministic sampling streams); throws BasisUnderResolvedError under
/// the conditions documented there.
HSSMatrix build_hss(const BlockAccessor& acc, const HSSOptions& opts);

/// Structure-only HSS "skeleton": index intervals and ranks are assigned
/// (uniform `rank`, clipped by block sizes) but no numerical data is
/// allocated. Used to emit costing-only ULV DAGs at scales where
/// materializing the matrix is pointless — the discrete-event simulator
/// needs shapes, not numbers.
HSSMatrix make_hss_skeleton(index_t n, index_t leaf_size, index_t rank);

/// Random symmetric positive definite HSS matrix with the given tree shape:
/// random orthonormal bases and couplings, leaf diagonals shifted by a bound
/// on the off-diagonal spectral mass so the represented operator is SPD by
/// construction. Lets property tests exercise the ULV machinery on matrices
/// that did not come from any kernel or builder.
HSSMatrix make_random_spd_hss(index_t n, index_t leaf_size, index_t rank, Rng& rng);

}  // namespace hatrix::fmt
