#pragma once
/// \file blas_detail.hpp
/// \brief Internal templated kernel implementations behind la::gemm et al.
///
/// Two families, templated on the scalar type:
///
///   *_naive   — the original reference triple loops (the conformance
///               oracle; exposed publicly through la::ref).
///   *_blocked — cache-blocked, packing GEBP gemm with a register-tiled
///               micro-kernel; trsm/syrk are recast as unblocked
///               diagonal-block solves plus blocked-gemm panel updates.
///
/// Determinism invariant (the solve layer's panel/column bit-identity
/// depends on it): in every kernel here, the arithmetic performed for
/// column j of the output depends only on (m, k) and column j of the
/// inputs — never on how many other columns the call carries. The blocked
/// gemm keeps one accumulator per (i, j), visits l in ascending order
/// within each KC chunk, and applies chunks in ascending order, so a
/// one-column call and a panel call round identically.
///
/// Nothing in this header counts flops or validates shapes: the public
/// entry points in blas.cpp own both.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "linalg/blas.hpp"

namespace hatrix::la::detail {

template <class T>
index_t op_rows(ConstMatrixViewT<T> a, Trans t) {
  return t == Trans::No ? a.rows : a.cols;
}
template <class T>
index_t op_cols(ConstMatrixViewT<T> a, Trans t) {
  return t == Trans::No ? a.cols : a.rows;
}

template <class T>
void fill_impl(MatrixViewT<T> a, T value) {
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i) a(i, j) = value;
}

template <class T>
void scale_impl(MatrixViewT<T> a, T alpha) {
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i) a(i, j) *= alpha;
}

// ---------------------------------------------------------------------------
// Naive reference kernels (the original hand-rolled loops).
// ---------------------------------------------------------------------------

template <class T>
void gemm_naive(T alpha, ConstMatrixViewT<T> a, Trans ta, ConstMatrixViewT<T> b,
                Trans tb, T beta, MatrixViewT<T> c) {
  const index_t m = c.rows, n = c.cols, k = op_cols(a, ta);
  if (beta == T(0)) {
    fill_impl(c, T(0));
  } else if (beta != T(1)) {
    scale_impl(c, beta);
  }
  if (alpha == T(0) || k == 0) return;

  // Column-major friendly loop orders; the A-no-trans cases stream down
  // columns of A and C.
  if (ta == Trans::No && tb == Trans::No) {
    for (index_t j = 0; j < n; ++j)
      for (index_t l = 0; l < k; ++l) {
        const T blj = alpha * b(l, j);
        if (blj == T(0)) continue;
        for (index_t i = 0; i < m; ++i) c(i, j) += a(i, l) * blj;
      }
  } else if (ta == Trans::No && tb == Trans::Yes) {
    for (index_t j = 0; j < n; ++j)
      for (index_t l = 0; l < k; ++l) {
        const T blj = alpha * b(j, l);
        if (blj == T(0)) continue;
        for (index_t i = 0; i < m; ++i) c(i, j) += a(i, l) * blj;
      }
  } else if (ta == Trans::Yes && tb == Trans::No) {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) {
        T s = T(0);
        for (index_t l = 0; l < k; ++l) s += a(l, i) * b(l, j);
        c(i, j) += alpha * s;
      }
  } else {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) {
        T s = T(0);
        for (index_t l = 0; l < k; ++l) s += a(l, i) * b(j, l);
        c(i, j) += alpha * s;
      }
  }
}

template <class T>
void syrk_naive(T alpha, ConstMatrixViewT<T> a, Trans trans, T beta,
                MatrixViewT<T> c) {
  const index_t n = c.rows, k = op_cols(a, trans);
  if (beta == T(0)) {
    fill_impl(c, T(0));
  } else if (beta != T(1)) {
    scale_impl(c, beta);
  }
  // Compute the lower triangle, then mirror. The mirror runs even for a
  // no-op update (alpha == 0 / k == 0): syrk's contract is that both
  // triangles of C hold the symmetric result on return.
  if (alpha != T(0) && k != 0) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = j; i < n; ++i) {
        T s = T(0);
        if (trans == Trans::No) {
          for (index_t l = 0; l < k; ++l) s += a(i, l) * a(j, l);
        } else {
          for (index_t l = 0; l < k; ++l) s += a(l, i) * a(l, j);
        }
        c(i, j) += alpha * s;
      }
    }
  }
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j + 1; i < n; ++i) c(j, i) = c(i, j);
}

template <class T>
void trsm_naive(Side side, UpLo uplo, Trans trans, Diag diag, T alpha,
                ConstMatrixViewT<T> t, MatrixViewT<T> b) {
  const index_t n = t.rows;
  if (alpha != T(1)) scale_impl(b, alpha);

  // Effective orientation: solving with op(T). Lower-no-trans and
  // upper-trans both resolve forward; the other two resolve backward.
  const bool lower = (uplo == UpLo::Lower);
  const bool forward = (lower == (trans == Trans::No));
  const bool unit = (diag == Diag::Unit);

  auto tval = [&](index_t i, index_t j) {
    return trans == Trans::No ? t(i, j) : t(j, i);
  };

  if (side == Side::Left) {
    // Solve op(T) X = B, column by column of B.
    for (index_t col = 0; col < b.cols; ++col) {
      if (forward) {
        for (index_t i = 0; i < n; ++i) {
          T s = b(i, col);
          for (index_t j = 0; j < i; ++j) s -= tval(i, j) * b(j, col);
          b(i, col) = unit ? s : s / tval(i, i);
        }
      } else {
        for (index_t i = n - 1; i >= 0; --i) {
          T s = b(i, col);
          for (index_t j = i + 1; j < n; ++j) s -= tval(i, j) * b(j, col);
          b(i, col) = unit ? s : s / tval(i, i);
        }
      }
    }
  } else {
    // Solve X op(T) = B, row by row of B: X(r,:) uses previously solved cols.
    for (index_t row = 0; row < b.rows; ++row) {
      if (forward) {
        // op(T) effectively lower => X columns resolve from last to first:
        // X(:,j) = (B(:,j) - sum_{l>j} X(:,l) op(T)(l,j)) / op(T)(j,j)
        for (index_t j = n - 1; j >= 0; --j) {
          T s = b(row, j);
          for (index_t l = j + 1; l < n; ++l) s -= b(row, l) * tval(l, j);
          b(row, j) = unit ? s : s / tval(j, j);
        }
      } else {
        for (index_t j = 0; j < n; ++j) {
          T s = b(row, j);
          for (index_t l = 0; l < j; ++l) s -= b(row, l) * tval(l, j);
          b(row, j) = unit ? s : s / tval(j, j);
        }
      }
    }
  }
}

template <class T>
void trmm_naive(Side side, UpLo uplo, Trans trans, Diag diag, T alpha,
                ConstMatrixViewT<T> t, MatrixViewT<T> b) {
  const index_t n = t.rows;
  const bool unit = (diag == Diag::Unit);
  auto tval = [&](index_t i, index_t j) {
    return trans == Trans::No ? t(i, j) : t(j, i);
  };
  // op(T) is lower iff (uplo==Lower) == (trans==No).
  const bool op_lower = ((uplo == UpLo::Lower) == (trans == Trans::No));

  if (side == Side::Left) {
    for (index_t col = 0; col < b.cols; ++col) {
      if (op_lower) {
        for (index_t i = n - 1; i >= 0; --i) {
          T s = unit ? b(i, col) : tval(i, i) * b(i, col);
          for (index_t j = 0; j < i; ++j) s += tval(i, j) * b(j, col);
          b(i, col) = alpha * s;
        }
      } else {
        for (index_t i = 0; i < n; ++i) {
          T s = unit ? b(i, col) : tval(i, i) * b(i, col);
          for (index_t j = i + 1; j < n; ++j) s += tval(i, j) * b(j, col);
          b(i, col) = alpha * s;
        }
      }
    }
  } else {
    for (index_t row = 0; row < b.rows; ++row) {
      if (op_lower) {
        // B := B * op(T); column j of result uses cols l >= j of B.
        for (index_t j = 0; j < n; ++j) {
          T s = unit ? b(row, j) : b(row, j) * tval(j, j);
          for (index_t l = j + 1; l < n; ++l) s += b(row, l) * tval(l, j);
          b(row, j) = alpha * s;
        }
      } else {
        for (index_t j = n - 1; j >= 0; --j) {
          T s = unit ? b(row, j) : b(row, j) * tval(j, j);
          for (index_t l = 0; l < j; ++l) s += b(row, l) * tval(l, j);
          b(row, j) = alpha * s;
        }
      }
    }
  }
}

/// Unblocked lower Cholesky (dpotf2-style). Used for diagonal blocks by the
/// blocked potrf and as the reference factorization. Does NOT touch the
/// strict upper triangle — the callers zero it once at the end.
template <class T>
void potrf_unblocked(MatrixViewT<T> a) {
  const index_t n = a.rows;
  for (index_t j = 0; j < n; ++j) {
    T d = a(j, j);
    for (index_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    HATRIX_CHECK(d > T(0), "matrix not positive definite (pivot " +
                               std::to_string(j) + ")");
    d = std::sqrt(d);
    a(j, j) = d;
    for (index_t i = j + 1; i < n; ++i) {
      T s = a(i, j);
      for (index_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / d;
    }
  }
}

// ---------------------------------------------------------------------------
// Blocked, packing kernels (the GEBP decomposition).
// ---------------------------------------------------------------------------

/// Register-tile and cache-block sizes. MR spans whole SIMD registers; the
/// accumulator tile (MR x NR) stays resident in registers across the KC
/// loop. MC x KC of packed A targets L2; KC x NC of packed B targets L3.
template <class T>
struct GemmBlocking;
template <>
struct GemmBlocking<double> {
  static constexpr index_t MR = 8, NR = 6;
  static constexpr index_t MC = 128, KC = 256, NC = 768;
};
template <>
struct GemmBlocking<float> {
  static constexpr index_t MR = 16, NR = 6;
  static constexpr index_t MC = 256, KC = 256, NC = 1536;
};

/// Pack op(A)[i0..i0+mc) x [p0..p0+kc) into MR-row panels: panel ir holds
/// element (ii, l) at [ir*MR*kc + l*MR + ii], rows zero-padded to MR so the
/// micro-kernel never branches on the edge.
template <class T, index_t MR>
void pack_a(ConstMatrixViewT<T> a, Trans ta, index_t i0, index_t p0, index_t mc,
            index_t kc, T* dst) {
  for (index_t ir = 0; ir < mc; ir += MR) {
    const index_t mr = std::min(MR, mc - ir);
    T* p = dst;
    if (ta == Trans::No) {
      for (index_t l = 0; l < kc; ++l) {
        const T* col = &a(i0 + ir, p0 + l);
        index_t ii = 0;
        for (; ii < mr; ++ii) p[ii] = col[ii];
        for (; ii < MR; ++ii) p[ii] = T(0);
        p += MR;
      }
    } else {
      for (index_t l = 0; l < kc; ++l) {
        index_t ii = 0;
        for (; ii < mr; ++ii) p[ii] = a(p0 + l, i0 + ir + ii);
        for (; ii < MR; ++ii) p[ii] = T(0);
        p += MR;
      }
    }
    dst += MR * kc;
  }
}

/// Pack op(B)[p0..p0+kc) x [j0..j0+nc) into NR-column panels: panel jr
/// holds element (l, jj) at [jr*NR*kc + l*NR + jj], columns zero-padded to
/// NR. Padded (all-zero) columns contribute nothing and are never stored
/// back, so real columns round independently of the panel's edge.
template <class T, index_t NR>
void pack_b(ConstMatrixViewT<T> b, Trans tb, index_t p0, index_t j0, index_t kc,
            index_t nc, T* dst) {
  for (index_t jr = 0; jr < nc; jr += NR) {
    const index_t nr = std::min(NR, nc - jr);
    T* p = dst;
    for (index_t l = 0; l < kc; ++l) {
      index_t jj = 0;
      if (tb == Trans::No) {
        for (; jj < nr; ++jj) p[jj] = b(p0 + l, j0 + jr + jj);
      } else {
        for (; jj < nr; ++jj) p[jj] = b(j0 + jr + jj, p0 + l);
      }
      for (; jj < NR; ++jj) p[jj] = T(0);
      p += NR;
    }
    dst += NR * kc;
  }
}

#if defined(__GNUC__) || defined(__clang__)
#define HATRIX_LA_VECTOR_EXT 1
#endif

/// The register-tiled micro-kernel: acc(MR x NR) = sum_l Ap(:, l) Bp(l, :),
/// then C(0..m_eff, 0..n_eff) += alpha * acc. Each of the NR accumulators is
/// a named MR-lane vector (GCC/Clang vector extension) so they provably live
/// in registers across the KC loop — a plain T[MR*NR] local exceeds the
/// compilers' scalarization limits and gets spilled per iteration. Each
/// (i, j) accumulates over l in ascending order, independent of every other
/// column (the per-column determinism contract).
template <class T, int MR, int NR>
inline void micro_kernel(index_t kc, const T* ap, const T* bp, T alpha,
                         MatrixViewT<T> c, index_t m_eff, index_t n_eff) {
  T acc[MR * NR];
#if HATRIX_LA_VECTOR_EXT
  static_assert(NR == 6, "micro-kernel is hand-unrolled for NR == 6");
  typedef T V __attribute__((vector_size(MR * sizeof(T))));
  V c0{}, c1{}, c2{}, c3{}, c4{}, c5{};
  for (index_t l = 0; l < kc; ++l) {
    V av;
    __builtin_memcpy(&av, ap + l * MR, sizeof(V));  // packed, possibly unaligned
    const T* b = bp + l * NR;
    c0 += av * b[0];
    c1 += av * b[1];
    c2 += av * b[2];
    c3 += av * b[3];
    c4 += av * b[4];
    c5 += av * b[5];
  }
  __builtin_memcpy(acc + 0 * MR, &c0, sizeof(V));
  __builtin_memcpy(acc + 1 * MR, &c1, sizeof(V));
  __builtin_memcpy(acc + 2 * MR, &c2, sizeof(V));
  __builtin_memcpy(acc + 3 * MR, &c3, sizeof(V));
  __builtin_memcpy(acc + 4 * MR, &c4, sizeof(V));
  __builtin_memcpy(acc + 5 * MR, &c5, sizeof(V));
#else
  for (int i = 0; i < MR * NR; ++i) acc[i] = T(0);
  for (index_t l = 0; l < kc; ++l) {
    const T* a = ap + l * MR;
    const T* b = bp + l * NR;
    for (int j = 0; j < NR; ++j) {
      const T blj = b[j];
      for (int i = 0; i < MR; ++i) acc[j * MR + i] += a[i] * blj;
    }
  }
#endif
  if (m_eff == MR && n_eff == NR) {
    for (int j = 0; j < NR; ++j)
      for (int i = 0; i < MR; ++i) c(i, j) += alpha * acc[j * MR + i];
  } else {
    for (index_t j = 0; j < n_eff; ++j)
      for (index_t i = 0; i < m_eff; ++i) c(i, j) += alpha * acc[j * MR + i];
  }
}

template <class T>
void gemm_blocked(T alpha, ConstMatrixViewT<T> a, Trans ta, ConstMatrixViewT<T> b,
                  Trans tb, T beta, MatrixViewT<T> c) {
  const index_t m = c.rows, n = c.cols, k = op_cols(a, ta);
  if (beta == T(0)) {
    fill_impl(c, T(0));
  } else if (beta != T(1)) {
    scale_impl(c, beta);
  }
  if (alpha == T(0) || k == 0 || m == 0 || n == 0) return;

  using Bl = GemmBlocking<T>;
  thread_local std::vector<T> apack;
  thread_local std::vector<T> bpack;
  apack.resize(static_cast<std::size_t>(Bl::MC * Bl::KC));
  bpack.resize(static_cast<std::size_t>(Bl::KC * Bl::NC));

  for (index_t jc = 0; jc < n; jc += Bl::NC) {
    const index_t nc = std::min(Bl::NC, n - jc);
    for (index_t pc = 0; pc < k; pc += Bl::KC) {
      const index_t kc = std::min(Bl::KC, k - pc);
      pack_b<T, Bl::NR>(b, tb, pc, jc, kc, nc, bpack.data());
      for (index_t ic = 0; ic < m; ic += Bl::MC) {
        const index_t mc = std::min(Bl::MC, m - ic);
        pack_a<T, Bl::MR>(a, ta, ic, pc, mc, kc, apack.data());
        for (index_t jr = 0; jr < nc; jr += Bl::NR) {
          const index_t n_eff = std::min(Bl::NR, nc - jr);
          const T* bp = bpack.data() + (jr / Bl::NR) * Bl::NR * kc;
          for (index_t ir = 0; ir < mc; ir += Bl::MR) {
            const index_t m_eff = std::min(Bl::MR, mc - ir);
            const T* ap = apack.data() + (ir / Bl::MR) * Bl::MR * kc;
            micro_kernel<T, Bl::MR, Bl::NR>(
                kc, ap, bp, alpha, c.block(ic + ir, jc + jr, m_eff, n_eff),
                m_eff, n_eff);
          }
        }
      }
    }
  }
}

/// Block size for the triangular-solve and syrk diagonal blocks: big enough
/// that the gemm panel updates dominate, small enough that the unblocked
/// diagonal work stays cache-resident.
inline constexpr index_t kTrsmBlock = 64;

template <class T>
void trsm_blocked(Side side, UpLo uplo, Trans trans, Diag diag, T alpha,
                  ConstMatrixViewT<T> t, MatrixViewT<T> b) {
  const index_t n = t.rows;
  if (alpha == T(0)) {
    fill_impl(b, T(0));
    return;
  }
  if (alpha != T(1)) scale_impl(b, alpha);
  if (n == 0 || b.rows == 0 || b.cols == 0) return;

  const bool forward = ((uplo == UpLo::Lower) == (trans == Trans::No));
  const index_t nb = kTrsmBlock;
  const index_t nblocks = (n + nb - 1) / nb;

  // View of op(T)'s block (bi, bj) expressed as (source block, Trans flag).
  auto opt_block = [&](index_t bi0, index_t bj0, index_t mi,
                       index_t mj) -> std::pair<ConstMatrixViewT<T>, Trans> {
    if (trans == Trans::No) return {t.block(bi0, bj0, mi, mj), Trans::No};
    return {t.block(bj0, bi0, mj, mi), Trans::Yes};
  };

  if (side == Side::Left) {
    // Solve op(T) X = B: factor block row bi, then eliminate it from every
    // still-unsolved block row (right-looking). Column j of X only ever
    // sees column j of B — unblocked diagonal solves and gemm updates are
    // both column-independent.
    for (index_t step = 0; step < nblocks; ++step) {
      const index_t bi = forward ? step : nblocks - 1 - step;
      const index_t i0 = bi * nb, ni = std::min(nb, n - i0);
      trsm_naive<T>(Side::Left, uplo, trans, diag, T(1), t.block(i0, i0, ni, ni),
                    b.block(i0, 0, ni, b.cols));
      for (index_t step2 = step + 1; step2 < nblocks; ++step2) {
        const index_t bj = forward ? step2 : nblocks - 1 - step2;
        const index_t j0 = bj * nb, nj = std::min(nb, n - j0);
        auto [tv, tt] = opt_block(j0, i0, nj, ni);
        gemm_blocked<T>(T(-1), tv, tt,
                        ConstMatrixViewT<T>(b.block(i0, 0, ni, b.cols)),
                        Trans::No, T(1), b.block(j0, 0, nj, b.cols));
      }
    }
  } else {
    // Solve X op(T) = B over column blocks of B. `forward` means op(T) is
    // effectively lower, so columns resolve last-to-first.
    for (index_t step = 0; step < nblocks; ++step) {
      const index_t bj = forward ? nblocks - 1 - step : step;
      const index_t j0 = bj * nb, nj = std::min(nb, n - j0);
      trsm_naive<T>(Side::Right, uplo, trans, diag, T(1), t.block(j0, j0, nj, nj),
                    b.block(0, j0, b.rows, nj));
      for (index_t step2 = step + 1; step2 < nblocks; ++step2) {
        const index_t bc = forward ? nblocks - 1 - step2 : step2;
        const index_t c0 = bc * nb, ncw = std::min(nb, n - c0);
        auto [tv, tt] = opt_block(j0, c0, nj, ncw);
        gemm_blocked<T>(T(-1), ConstMatrixViewT<T>(b.block(0, j0, b.rows, nj)),
                        Trans::No, tv, tt, T(1), b.block(0, c0, b.rows, ncw));
      }
    }
  }
}

/// Lower-triangle-only unblocked syrk used for the diagonal blocks of the
/// blocked syrk (beta already applied by the caller).
template <class T>
void syrk_lower_unblocked(T alpha, ConstMatrixViewT<T> a, Trans trans,
                          MatrixViewT<T> c) {
  const index_t n = c.rows, k = op_cols(a, trans);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      T s = T(0);
      if (trans == Trans::No) {
        for (index_t l = 0; l < k; ++l) s += a(i, l) * a(j, l);
      } else {
        for (index_t l = 0; l < k; ++l) s += a(l, i) * a(l, j);
      }
      c(i, j) += alpha * s;
    }
  }
}

template <class T>
void syrk_blocked(T alpha, ConstMatrixViewT<T> a, Trans trans, T beta,
                  MatrixViewT<T> c) {
  const index_t n = c.rows, k = op_cols(a, trans);
  if (beta == T(0)) {
    fill_impl(c, T(0));
  } else if (beta != T(1)) {
    scale_impl(c, beta);
  }
  if (alpha != T(0) && k != 0) {
    // Lower triangle blockwise: unblocked diagonal tiles, gemm panels below.
    const index_t nb = kTrsmBlock;
    for (index_t j0 = 0; j0 < n; j0 += nb) {
      const index_t nj = std::min(nb, n - j0);
      syrk_lower_unblocked<T>(
          alpha,
          trans == Trans::No ? a.block(j0, 0, nj, k) : a.block(0, j0, k, nj),
          trans, c.block(j0, j0, nj, nj));
      for (index_t i0 = j0 + nb; i0 < n; i0 += nb) {
        const index_t ni = std::min(nb, n - i0);
        if (trans == Trans::No) {
          gemm_blocked<T>(alpha, a.block(i0, 0, ni, k), Trans::No,
                          a.block(j0, 0, nj, k), Trans::Yes, T(1),
                          c.block(i0, j0, ni, nj));
        } else {
          gemm_blocked<T>(alpha, a.block(0, i0, k, ni), Trans::Yes,
                          a.block(0, j0, k, nj), Trans::No, T(1),
                          c.block(i0, j0, ni, nj));
        }
      }
    }
  }
  // Mirror (both triangles are written, as the naive kernel does — also for
  // no-op updates, where syrk still symmetrizes C).
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j + 1; i < n; ++i) c(j, i) = c(i, j);
}

// ---------------------------------------------------------------------------
// Internal backend dispatchers (defined in blas.cpp): route to the active
// backend WITHOUT counting flops or re-checking shapes. Composite kernels
// (blocked potrf's panel updates) call these so work is counted exactly once
// at the public entry point.
// ---------------------------------------------------------------------------

void gemm_nc(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b,
             Trans tb, double beta, MatrixView c);
void gemm_nc(float alpha, ConstMatrixViewF a, Trans ta, ConstMatrixViewF b,
             Trans tb, float beta, MatrixViewF c);
void syrk_nc(double alpha, ConstMatrixView a, Trans trans, double beta,
             MatrixView c);
void syrk_nc(float alpha, ConstMatrixViewF a, Trans trans, float beta,
             MatrixViewF c);
void trsm_nc(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
             ConstMatrixView t, MatrixView b);
void trsm_nc(Side side, UpLo uplo, Trans trans, Diag diag, float alpha,
             ConstMatrixViewF t, MatrixViewF b);

}  // namespace hatrix::la::detail
