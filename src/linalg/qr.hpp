#pragma once
/// \file qr.hpp
/// \brief Householder QR and rank-revealing (column-pivoted, truncated) QR.
///
/// The pivoted variant is the workhorse of low-rank compression: shared HSS
/// bases are produced by truncating it at a maximum rank and/or tolerance
/// (Eq. (2) of the paper).

#include <vector>

#include "linalg/matrix.hpp"

namespace hatrix::la {

/// Economy QR of an m x n matrix (m >= n or m < n both supported):
/// A = Q·R with Q (m x k), R (k x n), k = min(m, n). Q has orthonormal
/// columns.
struct QrResult {
  Matrix q;
  Matrix r;
};
QrResult qr(ConstMatrixView a);

/// Truncated column-pivoted QR: A·P ≈ Q·R with Q (m x rank) orthonormal.
///
/// The factorization stops when `rank == max_rank` or when the largest
/// remaining column norm drops below `tol` (absolute) — whichever comes
/// first. `perm[j]` gives the original column index of permuted column j.
struct PivotedQrResult {
  Matrix q;                   ///< m x rank, orthonormal columns
  Matrix r;                   ///< rank x n, upper trapezoidal in permuted order
  std::vector<index_t> perm;  ///< column permutation applied to A
  index_t rank = 0;
};
PivotedQrResult pivoted_qr(ConstMatrixView a, index_t max_rank, double tol = 0.0);

/// Orthonormal basis of the orthogonal complement of col(U) in R^m, where U
/// (m x k) has orthonormal columns: returns Q_c (m x (m-k)) with
/// [Q_c U] orthogonal. Used by the ULV factorization to form the
/// complement-first full basis U_F = [Uᴿ Uˢ] of Eq. (3).
Matrix orth_complement(ConstMatrixView u);

}  // namespace hatrix::la
