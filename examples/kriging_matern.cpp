// Geostatistics: kriging (Gaussian-process interpolation) with the Matérn
// covariance from Table 3 — the statistics application the paper's
// evaluation targets.
//
// Synthetic truth f(x, y) is sampled at N scattered sites with noise; the
// kriging predictor at M held-out targets needs K^{-1} (solves against the
// N x N Matérn covariance), done here through the HSS-ULV factorization
// served from the keyed SolverCache: a hyperparameter sweep that revisits a
// nugget value gets the already-built factorization back instead of paying
// construction + factorization again. The prediction variance needs
// K^{-1} K_* for the whole N x M cross-covariance panel — one blocked
// multi-RHS solve instead of M vector solves.
//
//   ./kriging_matern [--n 8192] [--targets 500] [--nugget 1e-4]
//                    [--sweep 1e-4,1e-3,1e-4] [--samples 512]
//                    [--guard-tol 1e-4] [--workers 1]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "format/accessor.hpp"
#include "format/hss_builder_tasks.hpp"
#include "geometry/cluster_tree.hpp"
#include "hatrix/solver_cache.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "ulv/hss_ulv.hpp"

using namespace hatrix;

namespace {

double truth(const geom::Point& p) {
  return std::sin(6.0 * p[0]) * std::cos(4.0 * p[1]) + 0.5 * p[0] * p[1];
}

std::vector<double> parse_sweep(const std::string& spec, double fallback) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    out.push_back(std::stod(spec.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  if (out.empty()) out.push_back(fallback);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const la::index_t n = cli.get_int("n", 8192);
  const la::index_t m = cli.get_int("targets", 500);
  const double nugget = cli.get_double("nugget", 1e-4);
  // The short correlation length (mu=0.03) means a fixed column sample can
  // miss near-range interactions and silently destroy positive definiteness
  // of the compressed covariance. The accuracy guard grows the sample per
  // node until its residual probe passes, so the initial 512 is just a
  // starting point, not a correctness knob. The guard tolerance must sit at
  // or below the smallest eigenvalue scale of the covariance — the nugget —
  // or compression error can push eigenvalues below zero.
  const la::index_t samples = cli.get_int("samples", 512);
  const int workers = static_cast<int>(cli.get_int("workers", 1));
  // Comma-separated nugget values to fit in sequence (default: just
  // --nugget). Revisited values hit the factorization cache, e.g.
  // --sweep 1e-4,1e-3,1e-4 builds twice and serves the third fit for free.
  const std::vector<double> sweep =
      parse_sweep(cli.get_string("sweep", ""), nugget);
  const bool explicit_guard = cli.has("guard-tol");
  const double guard_tol_flag = cli.get_double("guard-tol", 1e-4);
  cli.reject_unknown();

  std::printf(
      "Kriging with Matérn(sigma=1, mu=0.03, rho=0.5), %lld sites, %lld targets, "
      "%zu sweep step(s)\n",
      static_cast<long long>(n), static_cast<long long>(m), sweep.size());

  Rng rng(11);
  geom::Domain sites = geom::random2d(n, rng);
  geom::ClusterTree tree(sites, 256);

  kernels::Matern cov(1.0, 0.03, 0.5);

  // Observations y_i = f(x_i) + noise.
  std::vector<double> y(static_cast<std::size_t>(n));
  for (la::index_t i = 0; i < n; ++i)
    y[static_cast<std::size_t>(i)] =
        truth(tree.points()[static_cast<std::size_t>(i)]) +
        std::sqrt(nugget) * rng.normal();

  // Held-out targets and their cross-covariance panel K_* (n x m): column t
  // is k_* for target t. Solved in one blocked multi-RHS pass per fit.
  geom::Domain targets = geom::random2d(m, rng);
  la::Matrix kstar(n, m);
  for (la::index_t t = 0; t < m; ++t)
    for (la::index_t i = 0; i < n; ++i)
      kstar(i, t) = cov(targets.points[static_cast<std::size_t>(t)],
                        tree.points()[static_cast<std::size_t>(i)]);

  driver::SolverCache cache(/*capacity=*/4);

  for (double nug : sweep) {
    // The guard tolerance must track the nugget (see above) unless pinned.
    const double guard_tol =
        explicit_guard ? guard_tol_flag : std::min(1e-4, nug);
    // The nugget regularizes K = C + nug*I, so it is part of the operator's
    // identity: the cache key's kernel id encodes it alongside the Matérn
    // parameters.
    const fmt::HSSOptions opts{.leaf_size = 256, .max_rank = 80,
                               .sample_cols = samples, .guard_tol = guard_tol};
    const driver::SolverKey key = driver::make_solver_key(
        "matern(sigma=1,mu=0.03,rho=0.5)+nugget=" + std::to_string(nug),
        tree.points(), opts);

    WallTimer timer;
    const std::int64_t misses_before = cache.stats().misses;
    auto op = cache.get_or_build(key, [&](fmt::HSSBuildReport& rep) {
      kernels::KernelMatrix km(cov, tree.points(), nug);
      fmt::KernelAccessor acc(km);
      return fmt::build_hss_parallel(acc, opts, workers, &rep);
    });
    const double fit_seconds = timer.seconds();
    const bool was_hit = cache.stats().misses == misses_before;
    const ulv::HSSULV& f = op->factorization();

    std::vector<double> alpha = f.solve(y);  // K^{-1} y, the kriging weights
    la::Matrix kinv_kstar = f.solve(kstar);  // K^{-1} K_*, blocked (m RHS)

    const auto& rep = op->build_report();
    std::printf(
        "nugget %.0e: factorization %s in %.3f s (max rank %lld, sample "
        "%lld->%lld over %lld rounds, %lld rank escapes)\n",
        nug, was_hit ? "served from cache" : "built",
        fit_seconds, static_cast<long long>(op->matrix().max_rank_used()),
        static_cast<long long>(samples), static_cast<long long>(rep.max_samples),
        static_cast<long long>(rep.total_growths),
        static_cast<long long>(rep.rank_escapes));

    // Predict at the held-out targets: f̂(t) = k_*ᵀ alpha; prediction
    // variance sigma²(t) = cov(t,t) - k_*ᵀ K^{-1} k_* uses the panel solve.
    double se = 0.0, var = 0.0, mean = 0.0, mean_pred_sd = 0.0;
    for (la::index_t t = 0; t < m; ++t)
      mean += truth(targets.points[static_cast<std::size_t>(t)]);
    mean /= static_cast<double>(m);
    for (la::index_t t = 0; t < m; ++t) {
      double pred = 0.0, kvar = 0.0;
      for (la::index_t i = 0; i < n; ++i) {
        pred += kstar(i, t) * alpha[static_cast<std::size_t>(i)];
        kvar += kstar(i, t) * kinv_kstar(i, t);
      }
      mean_pred_sd += std::sqrt(std::max(0.0, 1.0 - kvar));
      const double tv = truth(targets.points[static_cast<std::size_t>(t)]);
      se += (pred - tv) * (pred - tv);
      var += (tv - mean) * (tv - mean);
    }
    std::printf(
        "  prediction RMSE %.4f (truth std %.4f) — R^2 = %.4f, mean pred sd "
        "%.4f\n",
        std::sqrt(se / static_cast<double>(m)),
        std::sqrt(var / static_cast<double>(m)), 1.0 - se / var,
        mean_pred_sd / static_cast<double>(m));
  }

  const auto stats = cache.stats();
  std::printf("solver cache: %lld hit(s), %lld miss(es), %zu resident\n",
              static_cast<long long>(stats.hits),
              static_cast<long long>(stats.misses), stats.size);
  return 0;
}
