// Ablation: asynchronous runtime vs fork-join on the *same* HSS-ULV DAG
// with the *same* row-cyclic distribution (isolates the paper's claim 2:
// the runtime model itself, not the format, causes STRUMPACK's slowdown).
//
// Also sweeps the DTD discovery constant to show where async loses its
// edge — the paper's Sec. 5.3.3 observation that DTD's whole-graph
// discovery is HATRIX's own scaling limit (and why PTG would be better).
//
// --verify-dag additionally times the static race & ordering verifier
// (runtime/dag_verify.hpp) on each emitted DAG and prints an Ablation C
// table: verifier wall time vs DAG size, the overhead figure quoted in
// docs/BENCHMARKS.md.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "distsim/des.hpp"
#include "format/hss_builder.hpp"
#include "runtime/dag_verify.hpp"
#include "ulv/hss_ulv_tasks.hpp"

using namespace hatrix;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const la::index_t leaf = cli.get_int("leaf", 256);
  const la::index_t rank = cli.get_int("rank", 100);
  auto nodes_list = cli.get_int_list("nodes", {2, 8, 32, 128});
  const bool verify = cli.has("verify-dag");
  cli.reject_unknown();

  std::printf("Ablation A: async vs fork-join, same DAG, same distribution\n");
  TextTable ta({"NODES", "N", "async (s)", "fork-join (s)", "fj/async"});
  distsim::CostModel cost(40.0);
  for (auto nodes : nodes_list) {
    const la::index_t n = 2048 * nodes;
    fmt::HSSMatrix skel = fmt::make_hss_skeleton(n, leaf, rank);

    auto run = [&](distsim::ExecModel model, double discovery) {
      rt::TaskGraph graph;
      auto dag = ulv::emit_hss_ulv_dag(skel, graph, false);
      auto map = distsim::map_hss_row_cyclic(dag, graph, static_cast<int>(nodes));
      distsim::SimConfig cfg;
      cfg.procs = static_cast<int>(nodes);
      cfg.cores_per_proc = 48;
      cfg.model = model;
      cfg.overhead.discovery_per_task = discovery;
      return distsim::simulate(graph, map, cost, cfg);
    };
    auto async = run(distsim::ExecModel::AsyncDtd, 5e-5);
    auto fj = run(distsim::ExecModel::ForkJoin, 0.0);
    ta.add_row({std::to_string(nodes), std::to_string(n), fmt_fixed(async.makespan, 4),
                fmt_fixed(fj.makespan, 4),
                fmt_fixed(fj.makespan / async.makespan, 2)});
  }
  std::printf("%s\n", ta.to_string().c_str());

  std::printf("Ablation B: DTD discovery cost sweep (128 nodes, N=262144)\n");
  TextTable tb({"discovery per task (s)", "sim time (s)", "overhead share"});
  {
    const la::index_t n = 262144;
    fmt::HSSMatrix skel = fmt::make_hss_skeleton(n, leaf, rank);
    for (double d : {0.0, 1e-5, 5e-5, 2e-4, 1e-3}) {
      rt::TaskGraph graph;
      auto dag = ulv::emit_hss_ulv_dag(skel, graph, false);
      auto map = distsim::map_hss_row_cyclic(dag, graph, 128);
      distsim::SimConfig cfg;
      cfg.procs = 128;
      cfg.cores_per_proc = 48;
      cfg.overhead.discovery_per_task = d;
      auto res = distsim::simulate(graph, map, cost, cfg);
      tb.add_row({fmt_sci(d), fmt_fixed(res.makespan, 4),
                  fmt_fixed(res.overhead_per_worker(cfg) / res.makespan, 3)});
    }
  }
  std::printf("%s\n", tb.to_string().c_str());
  std::printf(
      "A PTG-style interface (local-only task generation) corresponds to the\n"
      "discovery=0 row — the paper's suggested future improvement.\n");

  if (verify) {
    std::printf("\nAblation C: static DAG verifier cost (dag_verify) vs DAG size\n");
    TextTable tc({"N", "tasks", "edges", "crit path", "max width", "verify (ms)",
                  "us/task"});
    for (auto nodes : nodes_list) {
      const la::index_t n = 2048 * nodes;
      fmt::HSSMatrix skel = fmt::make_hss_skeleton(n, leaf, rank);
      rt::TaskGraph graph;
      (void)ulv::emit_hss_ulv_dag(skel, graph, false);
      WallTimer t;
      rt::DagStats s = rt::verify_dag(graph);
      const double ms = t.seconds() * 1e3;
      tc.add_row({std::to_string(n), std::to_string(s.tasks),
                  std::to_string(s.edges), std::to_string(s.critical_path),
                  std::to_string(s.max_width), fmt_fixed(ms, 3),
                  fmt_fixed(ms * 1e3 / static_cast<double>(s.tasks), 3)});
    }
    std::printf("%s\n", tc.to_string().c_str());
  }
  return 0;
}
