#pragma once
/// \file solver_cache.hpp
/// \brief Keyed cache of HSS-ULV factorizations ("solve as a service").
///
/// A factorization is the expensive part of a direct solve; the solves that
/// follow are O(N·rank). Workloads like kriging hyperparameter sweeps or
/// repeated posterior draws re-request the same (kernel, geometry,
/// compression parameters) operator over and over — without a cache every
/// request pays the full construct + factor cost again. SolverCache keys a
/// shared, immutable FactoredOperator by everything that determines the
/// factorization bit-for-bit:
///
///   kernel id (name + parameters + nugget) x geometry fingerprint x
///   admissibility x HSSOptions (leaf size, rank cap, tolerances, sampling
///   seed).
///
/// Construction is deterministic given that key (per-node RNG streams), so
/// two requests with equal keys would produce identical factorizations —
/// the cache simply hands out the one already built.
///
/// Thread safety: all members are safe to call concurrently. Distinct keys
/// build in parallel; concurrent requests for the same key block on one
/// build and then share the result. The returned FactoredOperator is
/// immutable (see HSSULV's thread-safety contract), so any number of
/// clients may solve against it simultaneously.

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "format/hss.hpp"
#include "format/hss_builder_tasks.hpp"
#include "geometry/domain.hpp"
#include "ulv/hss_ulv.hpp"

namespace hatrix::driver {

/// Order-sensitive fingerprint of a point set (the tree-ordered geometry the
/// kernel matrix is evaluated on). Two geometries with equal fingerprints
/// are treated as the same; the hash mixes every coordinate's bit pattern,
/// so any reordering or perturbation changes it.
std::uint64_t geometry_fingerprint(const std::vector<geom::Point>& points);

/// Everything that determines an HSS-ULV factorization bit-for-bit.
struct SolverKey {
  /// Kernel identity including parameters and regularization, e.g.
  /// "matern(sigma=1,mu=0.03,rho=0.5)+nugget=1e-4". The caller owns the
  /// encoding; equal strings must mean equal matrix entries.
  std::string kernel;
  std::uint64_t geometry = 0;      ///< geometry_fingerprint of the ordered points
  la::index_t n = 0;               ///< matrix dimension
  std::string admissibility = "hss-weak";  ///< structure variant
  la::index_t leaf_size = 0;
  la::index_t max_rank = 0;
  double tol = 0.0;
  double guard_tol = 0.0;
  la::index_t sample_cols = 0;
  std::uint64_t seed = 0;
  /// Storage precision of the built matrix's low-rank data
  /// (fmt::precision_name): "fp64" or "mixed-fp32". Factorizations of the
  /// same operator at different storage precisions differ bit-for-bit, so
  /// they must occupy distinct cache entries.
  std::string precision = "fp64";

  bool operator==(const SolverKey&) const = default;
};

/// Hash for SolverKey (unordered_map support).
struct SolverKeyHash {
  std::size_t operator()(const SolverKey& k) const;
};

/// Convenience: assemble the key for a kernel matrix on tree-ordered points
/// compressed with `opts` under weak admissibility.
SolverKey make_solver_key(const std::string& kernel_id,
                          const std::vector<geom::Point>& points,
                          const fmt::HSSOptions& opts);

/// An HSS matrix pinned together with its ULV factorization. HSSULV holds a
/// pointer to the matrix it factored, so the pair must live (and stay put)
/// together: FactoredOperator is non-copyable and non-movable and is always
/// handed out through shared_ptr<const ...>. Immutable once constructed —
/// share freely across threads.
class FactoredOperator {
 public:
  /// Takes ownership of the built matrix and factorizes it in place.
  /// Throws hatrix::Error if the matrix is not SPD on the compressed
  /// representation.
  explicit FactoredOperator(fmt::HSSMatrix h, fmt::HSSBuildReport report = {})
      : h_(std::move(h)), report_(report), f_(ulv::HSSULV::factorize(h_)) {}

  FactoredOperator(const FactoredOperator&) = delete;
  FactoredOperator& operator=(const FactoredOperator&) = delete;
  FactoredOperator(FactoredOperator&&) = delete;
  FactoredOperator& operator=(FactoredOperator&&) = delete;

  [[nodiscard]] const fmt::HSSMatrix& matrix() const { return h_; }
  [[nodiscard]] const ulv::HSSULV& factorization() const { return f_; }
  [[nodiscard]] const fmt::HSSBuildReport& build_report() const { return report_; }

 private:
  fmt::HSSMatrix h_;
  fmt::HSSBuildReport report_;
  ulv::HSSULV f_;  // declared after h_: factorized from the settled matrix
};

/// Cache statistics snapshot.
struct SolverCacheStats {
  std::int64_t hits = 0;       ///< requests served by an existing entry
  std::int64_t misses = 0;     ///< requests that triggered a build
  std::int64_t evictions = 0;  ///< entries dropped by the LRU policy
  std::size_t size = 0;        ///< entries currently resident
};

/// Thread-safe LRU cache of factorizations keyed by SolverKey.
class SolverCache {
 public:
  /// Builds the compressed matrix for a key on a miss. Runs outside the
  /// cache-wide lock (only same-key requests wait on it); may throw, in
  /// which case the failed entry is removed and the exception propagates to
  /// every waiter of that key.
  using Builder = std::function<fmt::HSSMatrix(fmt::HSSBuildReport& report)>;

  /// `capacity` bounds resident entries; least-recently-used complete
  /// entries are evicted first (entries still building are never evicted).
  explicit SolverCache(std::size_t capacity = 8);

  /// The factorization for `key`, building it via `build` exactly once per
  /// resident key. Evicted keys rebuild on next request; clients holding
  /// the shared_ptr keep evicted operators alive until they drop it.
  std::shared_ptr<const FactoredOperator> get_or_build(const SolverKey& key,
                                                       const Builder& build);

  /// Current hit/miss/eviction counters.
  [[nodiscard]] SolverCacheStats stats() const;

  /// Drop every resident entry (outstanding shared_ptrs stay valid).
  void clear();

 private:
  struct Entry {
    std::mutex build_mu;  ///< serializes the one build of this entry
    std::shared_ptr<const FactoredOperator> op;  ///< null until built
  };

  void evict_overflow_locked();

  std::size_t capacity_;
  mutable std::mutex mu_;  ///< guards map_, lru_, counters
  std::unordered_map<SolverKey, std::shared_ptr<Entry>, SolverKeyHash> map_;
  std::list<SolverKey> lru_;  ///< most recently used at the front
  std::int64_t hits_ = 0, misses_ = 0, evictions_ = 0;
};

}  // namespace hatrix::driver
