#pragma once
/// \file norms.hpp
/// \brief Matrix and vector norms.

#include <vector>

#include "linalg/matrix.hpp"

namespace hatrix::la {

/// Frobenius norm.
double norm_fro(ConstMatrixView a);

/// Largest absolute entry.
double norm_max(ConstMatrixView a);

/// Euclidean norm of a vector.
double norm2(const std::vector<double>& x);

/// Relative Frobenius distance ||A - B||_F / ||A||_F (0 if both empty).
double rel_error(ConstMatrixView a, ConstMatrixView b);

/// Two-norm estimate via power iteration on AᵀA (tests / diagnostics).
double norm2_estimate(ConstMatrixView a, int iterations = 30);

}  // namespace hatrix::la
