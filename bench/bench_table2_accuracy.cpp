// Table 2: impact of rank and kernel on construction and solve error, for
// HATRIX (HSS, rank-capped), LORAPO (BLR, adaptive ranks at 1e-8), and
// STRUMPACK (HSS, tolerance-driven) rows.
//
// Paper runs N = 65,536; the default here is N = 4,096 so the full table
// regenerates in minutes on one core (the error mechanisms are
// N-independent in character). Flags:
//   --n 65536          full paper size
//   --sample 0         exact (unsampled) HSS construction
//   --kernels yukawa   restrict kernels (comma list not supported; repeat runs)
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "hatrix/experiment.hpp"

using namespace hatrix;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const la::index_t n = cli.get_int("n", 4096);
  const la::index_t sample = cli.get_int("sample", 1024);
  cli.reject_unknown();
  const std::vector<std::string> kernels = {"laplace2d", "yukawa", "matern"};

  std::printf("Table 2 reproduction: N = %lld (paper: 65,536)\n",
              static_cast<long long>(n));
  std::printf("columns per kernel: construction error (Eq. 18), solve error (Eq. 19)\n\n");

  TextTable table({"Construct", "MaxRank", "Leaf", "Laplace Const.", "Laplace Solve",
                   "Yukawa Const.", "Yukawa Solve", "Matern Const.", "Matern Solve"});

  // --- HATRIX rows: rank-capped HSS (paper's four configurations). ---
  struct RankLeaf {
    la::index_t rank, leaf;
  };
  const std::vector<RankLeaf> hatrix_rows = {
      {100, 256}, {200, 256}, {200, 512}, {400, 512}};
  for (const auto& rl : hatrix_rows) {
    std::vector<std::string> row = {"HATRIX", std::to_string(rl.rank),
                                    std::to_string(rl.leaf)};
    for (const auto& k : kernels) {
      driver::AccuracySetup s;
      s.kernel = k;
      s.n = n;
      s.leaf_size = rl.leaf;
      s.max_rank = rl.rank;
      s.sample_cols = sample;
      auto out = driver::hss_accuracy(s);
      row.push_back(fmt_sci(out.construct_error));
      row.push_back(fmt_sci(out.solve_error));
    }
    table.add_row(row);
  }

  // --- LORAPO rows: adaptive-rank BLR at tolerance 1e-8. Tile sizes scale
  // with N in the same proportion as the paper's 2048/4096 @ 65,536. ---
  const la::index_t t1 = std::max<la::index_t>(n / 32, 128);
  const la::index_t t2 = std::max<la::index_t>(n / 16, 256);
  struct BlrCfg {
    la::index_t max_rank, tile;
  };
  const std::vector<BlrCfg> lorapo_rows = {
      {t1 / 2, t1}, {3 * t1 / 4, t1}, {t2 / 2, t2}, {3 * t2 / 4, t2}};
  for (const auto& c : lorapo_rows) {
    std::vector<std::string> row = {"LORAPO", std::to_string(c.max_rank),
                                    std::to_string(c.tile)};
    for (const auto& k : kernels) {
      driver::AccuracySetup s;
      s.kernel = k;
      s.n = n;
      s.leaf_size = c.tile;
      s.max_rank = c.max_rank;
      s.tol = 1e-8;
      auto out = driver::blr_accuracy(s);
      row.push_back(fmt_sci(out.construct_error));
      row.push_back(fmt_sci(out.solve_error));
    }
    table.add_row(row);
  }

  // --- STRUMPACK rows: HSS with tolerance-driven ranks (1e-8), same
  // rank/leaf caps as the HATRIX rows. ---
  for (const auto& rl : hatrix_rows) {
    std::vector<std::string> row = {"STRUMPACK", std::to_string(rl.rank),
                                    std::to_string(rl.leaf)};
    for (const auto& k : kernels) {
      driver::AccuracySetup s;
      s.kernel = k;
      s.n = n;
      s.leaf_size = rl.leaf;
      s.max_rank = rl.rank;
      s.tol = 1e-8;
      s.sample_cols = sample;
      auto out = driver::hss_accuracy(s);
      row.push_back(fmt_sci(out.construct_error));
      row.push_back(fmt_sci(out.solve_error));
    }
    table.add_row(row);
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("CSV:\n%s", table.to_csv().c_str());
  return 0;
}
