// Tests for the DTD task graph (dependency inference), the asynchronous,
// fork-join and priority executors, and trace validation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "runtime/dag_verify.hpp"
#include "runtime/fork_join_executor.hpp"
#include "runtime/priority_executor.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/thread_pool_executor.hpp"
#include "runtime/trace.hpp"

namespace hatrix::rt {
namespace {

TEST(TaskGraph, ReadAfterWriteEdge) {
  TaskGraph g;
  DataId d = g.register_data("x");
  TaskId w = g.insert_task("w", "k", {}, {}, {{d, Access::ReadWrite}});
  TaskId r = g.insert_task("r", "k", {}, {}, {{d, Access::Read}});
  ASSERT_EQ(g.successors()[static_cast<std::size_t>(w)].size(), 1u);
  EXPECT_EQ(g.successors()[static_cast<std::size_t>(w)][0], r);
  EXPECT_EQ(g.in_degree()[static_cast<std::size_t>(r)], 1);
}

TEST(TaskGraph, WriteAfterReadEdge) {
  TaskGraph g;
  DataId d = g.register_data("x");
  TaskId r1 = g.insert_task("r1", "k", {}, {}, {{d, Access::Read}});
  TaskId r2 = g.insert_task("r2", "k", {}, {}, {{d, Access::Read}});
  TaskId w = g.insert_task("w", "k", {}, {}, {{d, Access::ReadWrite}});
  // Both readers must precede the writer; the readers are unordered.
  std::set<TaskId> preds;
  for (std::size_t t = 0; t < 2; ++t)
    for (TaskId s : g.successors()[t]) preds.insert(s);
  EXPECT_EQ(preds, std::set<TaskId>{w});
  EXPECT_EQ(g.in_degree()[static_cast<std::size_t>(w)], 2);
  EXPECT_EQ(g.in_degree()[static_cast<std::size_t>(r1)], 0);
  EXPECT_EQ(g.in_degree()[static_cast<std::size_t>(r2)], 0);
}

TEST(TaskGraph, WriteAfterWriteChain) {
  TaskGraph g;
  DataId d = g.register_data("x");
  TaskId w1 = g.insert_task("w1", "k", {}, {}, {{d, Access::ReadWrite}});
  TaskId w2 = g.insert_task("w2", "k", {}, {}, {{d, Access::ReadWrite}});
  TaskId w3 = g.insert_task("w3", "k", {}, {}, {{d, Access::ReadWrite}});
  EXPECT_EQ(g.successors()[static_cast<std::size_t>(w1)],
            std::vector<TaskId>{w2});
  EXPECT_EQ(g.successors()[static_cast<std::size_t>(w2)],
            std::vector<TaskId>{w3});
}

TEST(TaskGraph, ReadersAfterWriteClearOnNextWrite) {
  TaskGraph g;
  DataId d = g.register_data("x");
  g.insert_task("w1", "k", {}, {}, {{d, Access::ReadWrite}});
  TaskId r = g.insert_task("r", "k", {}, {}, {{d, Access::Read}});
  TaskId w2 = g.insert_task("w2", "k", {}, {}, {{d, Access::ReadWrite}});
  TaskId r2 = g.insert_task("r2", "k", {}, {}, {{d, Access::Read}});
  // r2 depends on w2 only; r's edge goes to w2.
  EXPECT_EQ(g.in_degree()[static_cast<std::size_t>(r2)], 1);
  EXPECT_EQ(g.successors()[static_cast<std::size_t>(r)], std::vector<TaskId>{w2});
}

TEST(TaskGraph, EdgesDeduplicated) {
  TaskGraph g;
  DataId d1 = g.register_data("a");
  DataId d2 = g.register_data("b");
  TaskId w = g.insert_task("w", "k", {}, {},
                           {{d1, Access::ReadWrite}, {d2, Access::ReadWrite}});
  TaskId r = g.insert_task("r", "k", {}, {},
                           {{d1, Access::Read}, {d2, Access::Read}});
  EXPECT_EQ(g.successors()[static_cast<std::size_t>(w)].size(), 1u);
  EXPECT_EQ(g.in_degree()[static_cast<std::size_t>(r)], 1);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(TaskGraph, CriticalPathLength) {
  TaskGraph g;
  DataId d = g.register_data("x");
  DataId e = g.register_data("y");
  g.insert_task("w1", "k", {}, {}, {{d, Access::ReadWrite}});
  g.insert_task("w2", "k", {}, {}, {{d, Access::ReadWrite}});
  g.insert_task("w3", "k", {}, {}, {{d, Access::ReadWrite}});
  g.insert_task("solo", "k", {}, {}, {{e, Access::ReadWrite}});
  EXPECT_EQ(g.critical_path_length(), 3);
}

TEST(TaskGraph, RejectsUnregisteredData) {
  TaskGraph g;
  EXPECT_THROW(g.insert_task("bad", "k", {}, {}, {{7, Access::Read}}), Error);
}

class Executors : public ::testing::TestWithParam<int> {};

TEST_P(Executors, RunsEveryTaskOnceRespectingDeps) {
  const int workers = GetParam();
  TaskGraph g;
  // Chain of accumulating writes: order-sensitive result.
  DataId d = g.register_data("acc");
  auto value = std::make_shared<std::atomic<long>>(0);
  for (int i = 1; i <= 20; ++i) {
    g.insert_task("mul_add" + std::to_string(i), "k", {},
                  [value, i] { value->store(value->load() * 2 + i); },
                  {{d, Access::ReadWrite}});
  }
  ThreadPoolExecutor ex(workers);
  auto stats = ex.run(g);
  // Sequential reference.
  long ref = 0;
  for (int i = 1; i <= 20; ++i) ref = ref * 2 + i;
  EXPECT_EQ(value->load(), ref);
  EXPECT_EQ(validate_trace(g, stats), "");
  EXPECT_EQ(stats.workers, workers);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, Executors, ::testing::Values(1, 2, 4));

TEST(ThreadPoolExecutor, IndependentTasksAllRun) {
  TaskGraph g;
  auto counter = std::make_shared<std::atomic<int>>(0);
  for (int i = 0; i < 100; ++i) {
    DataId d = g.register_data("d" + std::to_string(i));
    g.insert_task("t" + std::to_string(i), "k", {},
                  [counter] { counter->fetch_add(1); }, {{d, Access::ReadWrite}});
  }
  ThreadPoolExecutor ex(4);
  auto stats = ex.run(g);
  EXPECT_EQ(counter->load(), 100);
  EXPECT_EQ(validate_trace(g, stats), "");
}

TEST(ThreadPoolExecutor, DiamondDependency) {
  TaskGraph g;
  DataId a = g.register_data("a"), b = g.register_data("b"),
         c = g.register_data("c");
  std::vector<int> order;
  std::mutex mu;
  auto log = [&](int id) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(id);
  };
  g.insert_task("src", "k", {}, [&] { log(0); }, {{a, Access::ReadWrite}});
  g.insert_task("left", "k", {}, [&] { log(1); },
                {{a, Access::Read}, {b, Access::ReadWrite}});
  g.insert_task("right", "k", {}, [&] { log(2); },
                {{a, Access::Read}, {c, Access::ReadWrite}});
  g.insert_task("sink", "k", {}, [&] { log(3); },
                {{b, Access::Read}, {c, Access::Read}});
  ThreadPoolExecutor ex(2);
  auto stats = ex.run(g);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 0);
  EXPECT_EQ(order.back(), 3);
  EXPECT_EQ(validate_trace(g, stats), "");
}

TEST(ThreadPoolExecutor, PropagatesTaskExceptions) {
  TaskGraph g;
  DataId d = g.register_data("x");
  g.insert_task("boom", "k", {}, [] { throw Error("boom"); },
                {{d, Access::ReadWrite}});
  ThreadPoolExecutor ex(2);
  EXPECT_THROW((void)ex.run(g), Error);
}

TEST(ThreadPoolExecutor, ThrowingTaskStillGetsEndStamped) {
  // Regression: the exception path used to return without stamping the
  // failing task's trace.end, leaving a negative duration that poisoned the
  // compute/overhead accounting. error_out lets the caller observe the
  // statistics instead of losing them to the rethrow.
  TaskGraph g;
  DataId d = g.register_data("x");
  g.insert_task("slow_boom", "k", {},
                [] {
                  std::this_thread::sleep_for(std::chrono::milliseconds(5));
                  throw Error("boom");
                },
                {{d, Access::ReadWrite}});
  ThreadPoolExecutor ex(1);
  std::exception_ptr err;
  auto stats = ex.run(g, &err);
  ASSERT_TRUE(err != nullptr);
  EXPECT_THROW(std::rethrow_exception(err), Error);
  ASSERT_EQ(stats.traces.size(), 1u);
  const auto& tr = stats.traces[0];
  EXPECT_GE(tr.end, tr.start);
  EXPECT_GT(tr.duration(), 0.0);
  EXPECT_GT(stats.wall_time, 0.0);
  EXPECT_GE(stats.compute_total, 0.0);
}

TEST(ThreadPoolExecutor, EmptyGraph) {
  TaskGraph g;
  ThreadPoolExecutor ex(2);
  auto stats = ex.run(g);
  EXPECT_EQ(stats.traces.size(), 0u);
  EXPECT_EQ(stats.wall_time, 0.0);
}

TEST(ThreadPoolExecutor, PriorityOrderWithSingleWorker) {
  TaskGraph g;
  std::vector<int> order;
  // All independent; single worker must drain by priority.
  for (int i = 0; i < 5; ++i) {
    DataId d = g.register_data("d" + std::to_string(i));
    Task t;
    t.name = "t" + std::to_string(i);
    t.kind = "k";
    t.work = [&order, i] { order.push_back(i); };
    t.accesses = {{d, Access::ReadWrite}};
    t.priority = i;  // later tasks have higher priority
    g.insert_task(std::move(t));
  }
  ThreadPoolExecutor ex(1);
  (void)ex.run(g);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order.front(), 4);  // highest priority first
}

TEST(ForkJoinExecutor, BarrierBetweenPhases) {
  TaskGraph g;
  std::atomic<int> phase0_done{0};
  std::atomic<bool> violated{false};
  for (int i = 0; i < 8; ++i) {
    DataId d = g.register_data("a" + std::to_string(i));
    Task t;
    t.name = "p0_" + std::to_string(i);
    t.kind = "k";
    t.work = [&phase0_done] { phase0_done.fetch_add(1); };
    t.accesses = {{d, Access::ReadWrite}};
    t.phase = 0;
    g.insert_task(std::move(t));
  }
  for (int i = 0; i < 8; ++i) {
    DataId d = g.register_data("b" + std::to_string(i));
    Task t;
    t.name = "p1_" + std::to_string(i);
    t.kind = "k";
    t.work = [&phase0_done, &violated] {
      if (phase0_done.load() != 8) violated.store(true);
    };
    t.accesses = {{d, Access::ReadWrite}};
    t.phase = 1;
    g.insert_task(std::move(t));
  }
  ForkJoinExecutor ex(4);
  auto stats = ex.run(g);
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(validate_trace(g, stats), "");
}

TEST(ForkJoinExecutor, RejectsBackwardPhaseEdges) {
  TaskGraph g;
  DataId d = g.register_data("x");
  Task t1;
  t1.name = "late";
  t1.kind = "k";
  t1.accesses = {{d, Access::ReadWrite}};
  t1.phase = 1;
  g.insert_task(std::move(t1));
  Task t2;
  t2.name = "early";
  t2.kind = "k";
  t2.accesses = {{d, Access::Read}};  // depends on phase-1 task
  t2.phase = 0;
  g.insert_task(std::move(t2));
  ForkJoinExecutor ex(1);
  EXPECT_THROW((void)ex.run(g), Error);
}

TEST(TaskGraph, CriticalPathMemoizationSurvivesMutation) {
  // critical_path_length() is cached; every edge-set mutation — another
  // insert_task or the test-only edge surgery — must invalidate the cache so
  // a later query never returns a stale length.
  TaskGraph g;
  DataId d = g.register_data("x");
  TaskId w1 = g.insert_task("w1", "k", {}, {}, {{d, Access::ReadWrite}});
  TaskId w2 = g.insert_task("w2", "k", {}, {}, {{d, Access::ReadWrite}});
  EXPECT_EQ(g.critical_path_length(), 2);
  EXPECT_EQ(g.critical_path_length(), 2);  // cached query

  g.insert_task("w3", "k", {}, {}, {{d, Access::ReadWrite}});
  EXPECT_EQ(g.critical_path_length(), 3);  // insert invalidated the cache

  ASSERT_TRUE(g.drop_dependency_for_test(w1, w2));
  EXPECT_EQ(g.critical_path_length(), 2);  // w2 -> w3 is now the longest chain

  g.add_dependency_for_test(w1, w2);
  EXPECT_EQ(g.critical_path_length(), 3);  // spliced edge restores the chain

  // A failed drop must not invalidate incorrectly either (no edge removed).
  EXPECT_FALSE(g.drop_dependency_for_test(w2, w1));
  EXPECT_EQ(g.critical_path_length(), 3);
}

TEST(DagCosts, BottomLevelsWeightChains) {
  // d-chain: a(5) -> b(1) -> c(2); solo task on e with cost 100.
  TaskGraph g;
  DataId d = g.register_data("x");
  DataId e = g.register_data("y");
  g.insert_task("a", "k", {5}, {}, {{d, Access::ReadWrite}});
  g.insert_task("b", "k", {1}, {}, {{d, Access::ReadWrite}});
  g.insert_task("c", "k", {2}, {}, {{d, Access::ReadWrite}});
  g.insert_task("solo", "k", {100}, {}, {{e, Access::ReadWrite}});
  auto cost = [](const Task& t) { return static_cast<double>(t.dims[0]); };
  auto bl = bottom_levels(g, cost);
  ASSERT_EQ(bl.size(), 4u);
  EXPECT_DOUBLE_EQ(bl[0], 8.0);  // 5 + 1 + 2
  EXPECT_DOUBLE_EQ(bl[1], 3.0);
  EXPECT_DOUBLE_EQ(bl[2], 2.0);
  EXPECT_DOUBLE_EQ(bl[3], 100.0);
  // The weighted critical path is the heaviest chain, not the longest one.
  EXPECT_DOUBLE_EQ(weighted_critical_path(g, cost), 100.0);
  EXPECT_EQ(g.critical_path_length(), 3);  // unit-cost view still the d-chain
}

TEST(PriorityExecutor, RunsOrderSensitiveChain) {
  TaskGraph g;
  DataId d = g.register_data("acc");
  auto value = std::make_shared<std::atomic<long>>(0);
  for (int i = 1; i <= 20; ++i)
    g.insert_task("mul_add" + std::to_string(i), "k", {},
                  [value, i] { value->store(value->load() * 2 + i); },
                  {{d, Access::ReadWrite}});
  PriorityExecutor ex(4);
  auto stats = ex.run(g);
  long ref = 0;
  for (int i = 1; i <= 20; ++i) ref = ref * 2 + i;
  EXPECT_EQ(value->load(), ref);
  EXPECT_EQ(validate_trace(g, stats), "");
  EXPECT_EQ(stats.workers, 4);
}

TEST(PriorityExecutor, SingleWorkerDrainsByBottomLevel) {
  // Two independent chains; the heavy chain's head has the larger bottom
  // level, so a single worker must run the whole heavy chain first.
  TaskGraph g;
  DataId heavy = g.register_data("heavy");
  DataId light = g.register_data("light");
  std::vector<int> order;
  auto log = [&order](int id) { order.push_back(id); };
  g.insert_task("light0", "k", {2}, [&, log] { log(10); },
                {{light, Access::ReadWrite}});
  g.insert_task("heavy0", "k", {50}, [&, log] { log(0); },
                {{heavy, Access::ReadWrite}});
  g.insert_task("heavy1", "k", {50}, [&, log] { log(1); },
                {{heavy, Access::ReadWrite}});
  g.insert_task("light1", "k", {2}, [&, log] { log(11); },
                {{light, Access::ReadWrite}});
  PriorityExecutor ex(1);
  (void)ex.run(g);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 10);
  EXPECT_EQ(order[3], 11);
}

TEST(PriorityExecutor, CostHookOverridesDefault) {
  // Invert the urgency: make the "light" chain expensive via set_cost.
  TaskGraph g;
  DataId a = g.register_data("a");
  DataId b = g.register_data("b");
  std::vector<int> order;
  auto log = [&order](int id) { order.push_back(id); };
  g.insert_task("a0", "small", {100}, [&, log] { log(0); },
                {{a, Access::ReadWrite}});
  g.insert_task("b0", "big", {1}, [&, log] { log(1); },
                {{b, Access::ReadWrite}});
  PriorityExecutor ex(1);
  ex.set_cost([](const Task& t) { return t.kind == "big" ? 1e6 : 1.0; });
  (void)ex.run(g);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // "big" kind outranks the larger dims
}

TEST(PriorityExecutor, PropagatesTaskExceptionsWithEndStamp) {
  TaskGraph g;
  DataId d = g.register_data("x");
  g.insert_task("slow_boom", "k", {},
                [] {
                  std::this_thread::sleep_for(std::chrono::milliseconds(5));
                  throw Error("boom");
                },
                {{d, Access::ReadWrite}});
  PriorityExecutor ex(2);
  std::exception_ptr err;
  auto stats = ex.run(g, &err);
  ASSERT_TRUE(err != nullptr);
  EXPECT_THROW(std::rethrow_exception(err), Error);
  ASSERT_EQ(stats.traces.size(), 1u);
  EXPECT_GE(stats.traces[0].end, stats.traces[0].start);
  EXPECT_GT(stats.traces[0].duration(), 0.0);
}

TEST(PriorityExecutor, VerifyDagGateRejectsRacyGraph) {
  TaskGraph g;
  DataId d = g.register_data("x");
  TaskId w1 = g.insert_task("w1", "k", {}, [] {}, {{d, Access::ReadWrite}});
  TaskId w2 = g.insert_task("w2", "k", {}, [] {}, {{d, Access::ReadWrite}});
  ASSERT_TRUE(g.drop_dependency_for_test(w1, w2));
  PriorityExecutor ex(2);
  ex.set_verify_dag(true);
  EXPECT_THROW((void)ex.run(g), DagRaceError);
  // With the gate off the (racy but acyclic) graph still executes.
  ex.set_verify_dag(false);
  auto stats = ex.run(g);
  EXPECT_EQ(stats.traces.size(), 2u);
}

TEST(Stats, DiscoveryTimerWithinBoundsOnAllExecutors) {
  auto make = [](TaskGraph& g) {
    DataId d = g.register_data("x");
    for (int i = 0; i < 12; ++i)
      g.insert_task("t" + std::to_string(i), "k", {},
                    [] { std::this_thread::sleep_for(std::chrono::microseconds(100)); },
                    {{d, Access::ReadWrite}}, 0, i / 4);
  };
  auto check = [](const TaskGraph& g, const ExecutionStats& stats, int workers) {
    EXPECT_EQ(validate_trace(g, stats), "");
    ASSERT_EQ(stats.worker_discovery.size(), static_cast<std::size_t>(workers));
    double sum = 0.0;
    for (double w : stats.worker_discovery) {
      EXPECT_GE(w, 0.0);
      sum += w;
    }
    EXPECT_NEAR(stats.discovery_total, sum, 1e-9);
    EXPECT_LE(stats.discovery_total, stats.wall_time * workers + 1e-6);
    EXPECT_GE(stats.discovery_per_worker(), 0.0);
    EXPECT_GE(stats.discovery_share(), 0.0);
    EXPECT_LE(stats.discovery_share(), 1.0 + 1e-9);
  };
  {
    TaskGraph g;
    make(g);
    ThreadPoolExecutor ex(2);
    check(g, ex.run(g), 2);
  }
  {
    TaskGraph g;
    make(g);
    ForkJoinExecutor ex(2);
    check(g, ex.run(g), 2);
  }
  {
    TaskGraph g;
    make(g);
    PriorityExecutor ex(2);
    check(g, ex.run(g), 2);
  }
}

TEST(Stats, CriticalPathTimeBoundedByWall) {
  TaskGraph g;
  DataId d = g.register_data("x");
  for (int i = 0; i < 5; ++i)
    g.insert_task("t" + std::to_string(i), "k", {},
                  [] { std::this_thread::sleep_for(std::chrono::microseconds(200)); },
                  {{d, Access::ReadWrite}});
  ThreadPoolExecutor ex(2);
  auto stats = ex.run(g);
  const double cp = critical_path_time(g, stats);
  // A pure chain: the duration-weighted critical path is the whole compute.
  EXPECT_NEAR(cp, stats.compute_total, 1e-9);
  EXPECT_LE(cp, stats.wall_time + 1e-6);
}

TEST(Stats, OverheadIsWallMinusCompute) {
  TaskGraph g;
  DataId d = g.register_data("x");
  g.insert_task("t", "k", {}, [] {}, {{d, Access::ReadWrite}});
  ThreadPoolExecutor ex(3);
  auto stats = ex.run(g);
  EXPECT_NEAR(stats.overhead_total,
              stats.wall_time * 3 - stats.compute_total, 1e-12);
  EXPECT_GE(stats.overhead_per_worker(), 0.0);
}

}  // namespace
}  // namespace hatrix::rt
