// Construction-phase scaling: the HSS build expressed as a task graph
// (COMPRESS / TRANSFER / MERGE_SAMPLE per node, dependencies through the
// cluster tree) executed by the asynchronous runtime at increasing worker
// counts, against the ULV factorization of the same matrix. Before PR 3 the
// construction was the pipeline's only serial stage; this bench reports the
// compress-vs-factor wall-time split and the achieved rank so the
// construction phase can be tracked the same way Figs. 9-12 track the
// factorization.
//
//   ./bench_construction [--n 8192] [--leaf 256] [--rank 80] [--tol 0]
//                        [--kernel yukawa] [--samples 512] [--guard-tol 1e-4]
//                        [--max-workers 8] [--csv] [--verify-dag]
//                        [--analyze-dag] [--release]
//
// --verify-dag statically verifies both task graphs (construction and
// factorization) against their declared access sets before execution
// (runtime/dag_verify.hpp): any unordered conflicting task pair aborts the
// run with a typed DagRaceError instead of racing.
//
// --analyze-dag additionally runs the dataflow & lifetime analyzer
// (runtime/dag_dataflow.hpp) on both graphs and reports its cost and the
// static peak-bytes bound; --release frees retired sampling/panel blocks at
// their statically-proven last use, shrinking the measured peak.
//
// Workers sweep 1, 2, 4, ... up to --max-workers; speedup is relative to
// the 1-worker run of the same DAG (not the sequential builder, which is
// the same code run in insertion order).
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "hatrix/drivers.hpp"

using namespace hatrix;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  driver::ConstructionExperiment cfg;
  cfg.n = cli.get_int("n", 8192);
  cfg.leaf_size = cli.get_int("leaf", 256);
  cfg.max_rank = cli.get_int("rank", 80);
  cfg.tol = cli.get_double("tol", 0.0);
  cfg.kernel = cli.get_string("kernel", "yukawa");
  cfg.sample_cols = cli.get_int("samples", 512);
  cfg.guard_tol = cli.get_double("guard-tol", 1e-4);
  const int max_workers = static_cast<int>(cli.get_int("max-workers", 8));
  const bool csv = cli.has("csv");
  cfg.verify_dag = cli.has("verify-dag");
  cfg.analyze_dag = cli.has("analyze-dag");
  cfg.early_release = cli.has("release");
  cli.reject_unknown();

  std::printf(
      "HSS construction scaling: %s kernel, N=%lld leaf=%lld rank=%lld "
      "samples=%lld guard=%.1e\n",
      cfg.kernel.c_str(), static_cast<long long>(cfg.n),
      static_cast<long long>(cfg.leaf_size), static_cast<long long>(cfg.max_rank),
      static_cast<long long>(cfg.sample_cols), cfg.guard_tol);

  TextTable table({"workers", "build (s)", "speedup", "factor (s)", "build/factor",
                   "rank", "max samples", "peak MB", "solve err"});
  double base_build = 0.0;
  for (int w = 1; w <= max_workers; w *= 2) {
    cfg.workers = w;
    auto out = driver::run_construction(cfg);
    if (w == 1) base_build = out.build_seconds;
    table.add_row({std::to_string(w), fmt_fixed(out.build_seconds, 3),
                   fmt_fixed(base_build / out.build_seconds, 2),
                   fmt_fixed(out.factor_seconds, 3),
                   fmt_fixed(out.build_seconds / out.factor_seconds, 2),
                   std::to_string(out.rank_used),
                   std::to_string(out.max_samples),
                   fmt_fixed(static_cast<double>(out.peak_matrix_bytes) / 1048576.0, 1),
                   fmt_sci(out.solve_error)});
    std::printf("  %d workers: build %.3f s, factor %.3f s (%lld+%lld tasks, "
                "%lld guard growths, peak %.1f MB)\n",
                w, out.build_seconds, out.factor_seconds,
                static_cast<long long>(out.build_tasks),
                static_cast<long long>(out.factor_tasks),
                static_cast<long long>(out.guard_growths),
                static_cast<double>(out.peak_matrix_bytes) / 1048576.0);
    if (cfg.analyze_dag)
      std::printf("    analyzer: %.1f ms, static serial-peak bound %.1f MB\n",
                  out.analyze_seconds * 1e3,
                  static_cast<double>(out.static_peak_bytes) / 1048576.0);
  }
  std::printf("%s\n", csv ? table.to_csv().c_str() : table.to_string().c_str());
  return 0;
}
