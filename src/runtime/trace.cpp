#include "runtime/trace.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace hatrix::rt {

std::string validate_trace(const TaskGraph& graph, const ExecutionStats& stats) {
  const auto n = static_cast<std::size_t>(graph.num_tasks());
  std::vector<int> runs(n, 0);
  std::vector<double> end_time(n, 0.0);
  for (const auto& tr : stats.traces) {
    if (tr.task < 0 || static_cast<std::size_t>(tr.task) >= n)
      return "trace references unknown task " + std::to_string(tr.task);
    ++runs[static_cast<std::size_t>(tr.task)];
    end_time[static_cast<std::size_t>(tr.task)] = tr.end;
    if (tr.end < tr.start) return "task " + std::to_string(tr.task) + " ends before it starts";
  }
  for (std::size_t t = 0; t < n; ++t)
    if (runs[t] != 1)
      return "task " + std::to_string(t) + " ran " + std::to_string(runs[t]) +
             " times";

  std::vector<double> start_time(n, 0.0);
  for (const auto& tr : stats.traces)
    start_time[static_cast<std::size_t>(tr.task)] = tr.start;
  for (std::size_t t = 0; t < n; ++t) {
    for (TaskId s : graph.successors()[t]) {
      // Allow a small clock-resolution slack.
      if (start_time[static_cast<std::size_t>(s)] + 1e-9 < end_time[t])
        return "task " + std::to_string(s) + " started before predecessor " +
               std::to_string(t) + " finished";
    }
  }

  // Per-worker trace streams must be disjoint: one thread cannot run two
  // task bodies at once, so overlapping intervals on the same worker id mean
  // a worker attribution or stamping bug.
  std::map<int, std::vector<const TaskTrace*>> by_worker;
  for (const auto& tr : stats.traces) by_worker[tr.worker].push_back(&tr);
  for (auto& [worker, trs] : by_worker) {
    std::sort(trs.begin(), trs.end(), [](const TaskTrace* a, const TaskTrace* b) {
      return a->start < b->start;
    });
    for (std::size_t i = 1; i < trs.size(); ++i) {
      if (trs[i]->start + 1e-9 < trs[i - 1]->end)
        return "tasks " + std::to_string(trs[i - 1]->task) + " and " +
               std::to_string(trs[i]->task) + " overlap on worker " +
               std::to_string(worker);
    }
  }

  // The discovery timers only ever accumulate time the workers actually
  // spent, so the total is bounded by the workers' wall-clock budget.
  if (stats.discovery_total < 0.0)
    return "negative discovery time " + std::to_string(stats.discovery_total);
  if (stats.discovery_total >
      stats.wall_time * static_cast<double>(stats.workers) + 1e-6)
    return "discovery time " + std::to_string(stats.discovery_total) +
           " exceeds the worker wall-clock budget " +
           std::to_string(stats.wall_time * stats.workers);
  double worker_sum = 0.0;
  for (double d : stats.worker_discovery) {
    if (d < 0.0) return "negative per-worker discovery time";
    worker_sum += d;
  }
  if (!stats.worker_discovery.empty() &&
      std::abs(worker_sum - stats.discovery_total) > 1e-6)
    return "per-worker discovery times do not sum to discovery_total";
  return "";
}

double critical_path_time(const TaskGraph& graph, const ExecutionStats& stats) {
  const auto n = static_cast<std::size_t>(graph.num_tasks());
  if (n == 0) return 0.0;
  std::vector<double> dur(n, 0.0);
  for (const auto& tr : stats.traces)
    if (tr.task >= 0 && static_cast<std::size_t>(tr.task) < n)
      dur[static_cast<std::size_t>(tr.task)] = std::max(0.0, tr.duration());
  // comp[t] = dur[t] + max over predecessors comp[p]; insertion order is
  // topological so one forward sweep over the successor lists suffices.
  std::vector<double> comp = dur;
  double best = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    best = std::max(best, comp[t]);
    for (TaskId s : graph.successors()[t]) {
      if (s <= static_cast<TaskId>(t) || s >= graph.num_tasks()) continue;
      auto& c = comp[static_cast<std::size_t>(s)];
      c = std::max(c, comp[t] + dur[static_cast<std::size_t>(s)]);
    }
  }
  return best;
}

std::string to_chrome_trace(const TaskGraph& graph, const ExecutionStats& stats) {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const auto& tr : stats.traces) {
    if (tr.task < 0) continue;
    const Task& task = graph.tasks()[static_cast<std::size_t>(tr.task)];
    if (!first) out << ",";
    first = false;
    // Durations in microseconds, as the trace-event format expects.
    out << "{\"name\":\"" << task.name << "\",\"cat\":\"" << task.kind
        << "\",\"ph\":\"X\",\"ts\":" << tr.start * 1e6
        << ",\"dur\":" << tr.duration() * 1e6 << ",\"pid\":0,\"tid\":" << tr.worker
        << "}";
  }
  out << "]";
  return out.str();
}

std::string to_dot(const TaskGraph& graph) {
  // Stable colors per kind so POTRF/TRSM/... are visually grouped as in the
  // paper's Fig. 6.
  static const char* palette[] = {"lightblue", "lightgreen", "salmon",
                                  "gold",      "plum",       "lightgray"};
  std::map<std::string, const char*> color;
  std::ostringstream out;
  out << "digraph tasks {\n  rankdir=TB;\n";
  for (const auto& t : graph.tasks()) {
    if (color.find(t.kind) == color.end())
      color[t.kind] = palette[color.size() % 6];
    out << "  t" << t.id << " [label=\"" << (t.name.empty() ? t.kind : t.name)
        << "\",style=filled,fillcolor=" << color[t.kind] << "];\n";
  }
  for (std::size_t u = 0; u < graph.tasks().size(); ++u)
    for (TaskId s : graph.successors()[u]) out << "  t" << u << " -> t" << s << ";\n";
  out << "}\n";
  return out.str();
}

}  // namespace hatrix::rt
