#include "runtime/priority_executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/dag_dataflow.hpp"

namespace hatrix::rt {

namespace {

/// One entry of a worker's ready deque: the task plus its precomputed
/// bottom-level priority (stored to avoid re-indexing under the deque lock).
struct ReadyEntry {
  double prio = 0.0;
  TaskId id = -1;
};

/// Heap order: larger bottom level first; earlier insertion breaks ties so
/// single-worker execution is deterministic and stays close to the DTD
/// submission order.
struct EntryLess {
  bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
    if (a.prio != b.prio) return a.prio < b.prio;
    return a.id > b.id;
  }
};

/// A worker's ready set: a mutex-guarded binary max-heap. The owner and
/// thieves both pop the highest-priority entry — stealing the *best* task of
/// the victim (not the worst, as classic bottom-stealing would) is what
/// keeps the critical path moving when the owner is stuck inside a long
/// task body.
struct WorkerDeque {
  std::mutex mu;
  std::vector<ReadyEntry> heap;

  void push(ReadyEntry e) {
    std::lock_guard<std::mutex> lock(mu);
    heap.push_back(e);
    std::push_heap(heap.begin(), heap.end(), EntryLess{});
  }

  bool pop(ReadyEntry& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (heap.empty()) return false;
    std::pop_heap(heap.begin(), heap.end(), EntryLess{});
    out = heap.back();
    heap.pop_back();
    return true;
  }
};

}  // namespace

double default_task_cost(const Task& t) {
  double c = 1.0;
  for (std::int64_t d : t.dims) c *= std::max(1.0, static_cast<double>(d));
  return c;
}

PriorityExecutor::PriorityExecutor(int num_workers)
    : num_workers_(num_workers),
      verify_dag_(verify_dag_default()),
      analyze_dag_(analyze_dag_default()) {
  HATRIX_CHECK(num_workers >= 1, "executor needs at least one worker");
}

ExecutionStats PriorityExecutor::run(const TaskGraph& graph,
                                     std::exception_ptr* error_out) {
  // A malformed or racy graph is a programming error, not a task failure:
  // it throws before any priority is computed and never lands in error_out.
  if (verify_dag_) (void)verify_dag(graph);
  if (analyze_dag_) (void)analyze_dag(graph);
  const auto n = static_cast<std::size_t>(graph.num_tasks());
  const auto nw = static_cast<std::size_t>(num_workers_);
  ExecutionStats stats;
  stats.workers = num_workers_;
  stats.traces.resize(n);
  stats.worker_discovery.assign(nw, 0.0);
  if (n == 0) return stats;

  const auto t0 = std::chrono::steady_clock::now();
  auto now_seconds = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  // Priority derivation is scheduler work, charged to the discovery timer
  // (worker 0, which performs it on the calling thread).
  const TaskCostFn& cost = cost_ ? cost_ : TaskCostFn(&default_task_cost);
  const std::vector<double> prio = bottom_levels(graph, cost);
  std::vector<std::atomic<int>> remaining(n);
  for (std::size_t t = 0; t < n; ++t)
    remaining[t].store(graph.in_degree()[t], std::memory_order_relaxed);

  // Last-use early release (same contract as ThreadPoolExecutor): refcounts
  // from the static release schedule, hook fired when the last accessor's
  // body has completed.
  const bool do_release = static_cast<bool>(graph.release_hook());
  const ReleasePlan plan = do_release ? release_plan(graph) : ReleasePlan{};
  std::vector<std::atomic<int>> release_remaining(plan.initial_uses.size());
  for (std::size_t d = 0; d < plan.initial_uses.size(); ++d)
    release_remaining[d].store(plan.initial_uses[d], std::memory_order_relaxed);
  auto release_after = [&](TaskId id) {
    if (!do_release) return;
    for (DataId d : plan.task_data[static_cast<std::size_t>(id)])
      if (release_remaining[static_cast<std::size_t>(d)].fetch_sub(
              1, std::memory_order_acq_rel) == 1)
        graph.release_hook()(d);
  };

  std::vector<WorkerDeque> deques(nw);
  std::atomic<std::int64_t> ready_count{0};
  {
    // Seed sources round-robin so every worker starts with local work.
    std::size_t next = 0;
    for (std::size_t t = 0; t < n; ++t) {
      if (graph.in_degree()[t] != 0) continue;
      deques[next % nw].heap.push_back({prio[t], static_cast<TaskId>(t)});
      ++next;
    }
    for (auto& d : deques)
      std::make_heap(d.heap.begin(), d.heap.end(), EntryLess{});
    ready_count.store(static_cast<std::int64_t>(next), std::memory_order_relaxed);
  }
  stats.worker_discovery[0] += now_seconds();

  std::atomic<std::size_t> completed{0};
  std::atomic<bool> stop{false};
  std::mutex err_mu;
  std::exception_ptr first_error;
  // Idle coordination: workers sleep here when every deque looks empty. The
  // empty lock/unlock before notify_all closes the classic check-then-sleep
  // window against the atomic predicate reads.
  std::mutex idle_mu;
  std::condition_variable idle_cv;
  auto wake_all = [&] {
    { std::lock_guard<std::mutex> lock(idle_mu); }
    idle_cv.notify_all();
  };

  auto worker_fn = [&](int worker_id) {
    const auto w = static_cast<std::size_t>(worker_id);
    double my_discovery = 0.0;
    for (;;) {
      if (stop.load(std::memory_order_acquire)) break;
      if (completed.load(std::memory_order_acquire) == n) break;

      // Pop locally, else steal the victim's highest-priority task.
      const double t_pop = now_seconds();
      ReadyEntry entry;
      bool got = deques[w].pop(entry);
      for (std::size_t i = 1; !got && i < nw; ++i)
        got = deques[(w + i) % nw].pop(entry);
      if (got) ready_count.fetch_sub(1, std::memory_order_acq_rel);
      my_discovery += now_seconds() - t_pop;

      if (!got) {
        std::unique_lock<std::mutex> lock(idle_mu);
        idle_cv.wait(lock, [&] {
          return stop.load(std::memory_order_acquire) ||
                 completed.load(std::memory_order_acquire) == n ||
                 ready_count.load(std::memory_order_acquire) > 0;
        });
        continue;
      }

      const auto ti = static_cast<std::size_t>(entry.id);
      const Task& task = graph.tasks()[ti];
      auto& trace = stats.traces[ti];
      trace.task = entry.id;
      trace.worker = worker_id;
      trace.start = now_seconds();
      if (task.work) {
        try {
          task.work();
        } catch (...) {
          // End-stamp before recording the error so the failing task's
          // trace never reports a negative duration.
          trace.end = now_seconds();
          {
            std::lock_guard<std::mutex> lock(err_mu);
            if (!first_error) first_error = std::current_exception();
          }
          stop.store(true, std::memory_order_release);
          wake_all();
          break;
        }
      }
      trace.end = now_seconds();
      release_after(entry.id);

      // Release dependents into the local deque (locality: the successor's
      // inputs were just produced here) and publish completion.
      const double t_rel = now_seconds();
      std::int64_t pushed = 0;
      for (TaskId s : graph.successors()[ti]) {
        if (remaining[static_cast<std::size_t>(s)].fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
          deques[w].push({prio[static_cast<std::size_t>(s)], s});
          ++pushed;
        }
      }
      if (pushed > 0) ready_count.fetch_add(pushed, std::memory_order_acq_rel);
      const std::size_t done = completed.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (pushed > 0 || done == n) wake_all();
      my_discovery += now_seconds() - t_rel;
    }
    stats.worker_discovery[w] += my_discovery;
  };

  std::vector<std::thread> workers;
  workers.reserve(nw);
  for (int w = 0; w < num_workers_; ++w) workers.emplace_back(worker_fn, w);
  for (auto& t : workers) t.join();

  stats.wall_time = now_seconds();
  for (const auto& tr : stats.traces) stats.compute_total += tr.duration();
  stats.overhead_total = stats.wall_time * num_workers_ - stats.compute_total;
  for (double d : stats.worker_discovery) stats.discovery_total += d;

  if (first_error) {
    if (error_out != nullptr) {
      *error_out = first_error;
      return stats;
    }
    std::rethrow_exception(first_error);
  }
  return stats;
}

}  // namespace hatrix::rt
