#pragma once
/// \file blr2.hpp
/// \brief BLR² matrix: single-level block low rank with shared bases
/// (Fig. 1 of the paper, weak admissibility, symmetric).
///
/// A_ii = D_i dense; A_ij = U_i S_ij U_jᵀ for i != j with one shared basis
/// per block row. The BLR²-ULV factorization (Alg. 1) runs on this format;
/// an HSS matrix is one BLR² matrix per level (Sec. 2).

#include <vector>

#include "format/accessor.hpp"
#include "format/hss.hpp"  // HSSOptions

namespace hatrix::fmt {

class BLR2Matrix {
 public:
  struct Node {
    index_t begin = 0;
    index_t end = 0;
    index_t rank = 0;
    Matrix basis;  ///< U_i, block_size x rank, orthonormal columns
    Matrix diag;   ///< D_i dense

    [[nodiscard]] index_t block_size() const { return end - begin; }
  };

  BLR2Matrix() = default;
  BLR2Matrix(index_t n, index_t num_blocks);

  [[nodiscard]] index_t size() const { return n_; }
  [[nodiscard]] index_t num_blocks() const { return static_cast<index_t>(nodes_.size()); }

  [[nodiscard]] Node& node(index_t i);
  [[nodiscard]] const Node& node(index_t i) const;

  /// Skeleton block S_ij for i > j (lower triangle; symmetry gives upper).
  [[nodiscard]] Matrix& coupling(index_t i, index_t j);
  [[nodiscard]] const Matrix& coupling(index_t i, index_t j) const;

  /// y = A x in O(N·rank + N·leaf) flops.
  void matvec(const std::vector<double>& x, std::vector<double>& y) const;

  /// Materialize the represented dense matrix (tests).
  [[nodiscard]] Matrix dense() const;

  [[nodiscard]] std::int64_t memory_bytes() const;

 private:
  index_t n_ = 0;
  std::vector<Node> nodes_;
  std::vector<Matrix> couplings_;  // packed strict lower triangle
};

/// Build a symmetric BLR² approximation: bases from the off-diagonal block
/// row (sampled when opts.sample_cols > 0), couplings exact projections.
BLR2Matrix build_blr2(const BlockAccessor& acc, const HSSOptions& opts);

}  // namespace hatrix::fmt
