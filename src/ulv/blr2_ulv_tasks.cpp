#include "ulv/blr2_ulv_tasks.hpp"

#include "common/error.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"

namespace hatrix::ulv {

BLR2ULVDag emit_blr2_ulv_dag(const fmt::BLR2Matrix& a, rt::TaskGraph& graph,
                             bool with_work) {
  const index_t p = a.num_blocks();
  BLR2ULVDag dag;
  dag.state = std::make_shared<BLR2ULVTaskState>();
  auto& st = *dag.state;
  st.a = &a;
  st.rotated.resize(static_cast<std::size_t>(p));
  st.factors.resize(static_cast<std::size_t>(p));
  st.schur.resize(static_cast<std::size_t>(p));

  std::vector<rt::DataId> diag_d(static_cast<std::size_t>(p));
  std::vector<rt::DataId> rot_d(static_cast<std::size_t>(p));
  std::vector<rt::DataId> schur_d(static_cast<std::size_t>(p));
  index_t total_rank = 0;
  for (index_t i = 0; i < p; ++i) {
    const auto& nd = a.node(i);
    total_rank += nd.rank;
    const std::string tag = "(" + std::to_string(i) + ")";
    diag_d[static_cast<std::size_t>(i)] = graph.register_data(
        "diag" + tag, nd.block_size() * nd.block_size() * 8);
    // The diagonal blocks come from the built matrix: no task writes them.
    graph.mark_input(diag_d[static_cast<std::size_t>(i)]);
    rot_d[static_cast<std::size_t>(i)] = graph.register_data(
        "rotated" + tag, nd.block_size() * nd.block_size() * 8);
    schur_d[static_cast<std::size_t>(i)] =
        graph.register_data("schur" + tag, nd.rank * nd.rank * 8);
  }
  rt::DataId merged_d = graph.register_data("merged", total_rank * total_rank * 8);
  graph.mark_output(merged_d);  // becomes the factorization's root factor

  auto stp = dag.state;
  for (index_t i = 0; i < p; ++i) {
    const auto& nd = a.node(i);
    const std::string tag = "(" + std::to_string(i) + ")";
    const index_t ii = i;
    graph.insert_task(
        "DIAG_PRODUCT" + tag, "diag_product", {nd.block_size(), nd.rank},
        with_work ? std::function<void()>([stp, ii] {
          const auto& nd2 = stp->a->node(ii);
          stp->rotated[static_cast<std::size_t>(ii)] =
              diag_product(nd2.diag.view(), la::F64Block(nd2.basis).view());
        })
                  : std::function<void()>(),
        {{diag_d[static_cast<std::size_t>(i)], rt::Access::Read},
         {rot_d[static_cast<std::size_t>(i)], rt::Access::Write}},
        1, 0);
    graph.insert_task(
        "PARTIAL_FACTOR" + tag, "partial_factor", {nd.block_size(), nd.rank},
        with_work ? std::function<void()>([stp, ii] {
          auto& rot = stp->rotated[static_cast<std::size_t>(ii)];
          auto res = partial_factor_rotated(rot.rotated.view(),
                                            stp->a->node(ii).rank,
                                            std::move(rot.q_comp));
          stp->factors[static_cast<std::size_t>(ii)] = std::move(res.factor);
          stp->schur[static_cast<std::size_t>(ii)] = std::move(res.ss_schur);
          rot.rotated = Matrix();
        })
                  : std::function<void()>(),
        {{rot_d[static_cast<std::size_t>(i)], rt::Access::Read},
         {schur_d[static_cast<std::size_t>(i)], rt::Access::Write}},
        1, 0);
  }

  // One merge of every skeleton block (the permutation of Fig. 4), then one
  // dense Cholesky of the (Σ rank)^2 matrix — Alg. 1's serial bottleneck.
  std::vector<std::pair<rt::DataId, rt::Access>> merge_access;
  for (index_t i = 0; i < p; ++i)
    merge_access.push_back({schur_d[static_cast<std::size_t>(i)], rt::Access::Read});
  merge_access.push_back({merged_d, rt::Access::Write});
  graph.insert_task(
      "MERGE", "merge", {total_rank, 0},
      with_work ? std::function<void()>([stp, total_rank] {
        const auto& a2 = *stp->a;
        const index_t pp = a2.num_blocks();
        Matrix merged(total_rank, total_rank);
        index_t oi = 0;
        for (index_t i = 0; i < pp; ++i) {
          const index_t ki = a2.node(i).rank;
          if (ki > 0)
            la::copy(stp->schur[static_cast<std::size_t>(i)].view(),
                     merged.block(oi, oi, ki, ki));
          index_t oj = 0;
          for (index_t j = 0; j < i; ++j) {
            const index_t kj = a2.node(j).rank;
            if (ki > 0 && kj > 0) {
              la::F64Block sb(a2.coupling(i, j));
              la::copy(sb.view(), merged.block(oi, oj, ki, kj));
              Matrix t = la::transpose(sb.view());
              la::copy(t.view(), merged.block(oj, oi, kj, ki));
            }
            oj += kj;
          }
          oi += ki;
        }
        stp->merged_l = std::move(merged);
      })
                : std::function<void()>(),
      std::move(merge_access), 0, 1);

  graph.insert_task(
      "CHOLESKY", "potrf", {total_rank},
      with_work
          ? std::function<void()>([stp] { la::potrf(stp->merged_l.view()); })
          : std::function<void()>(),
      {{merged_d, rt::Access::ReadWrite}}, 0, 2);
  return dag;
}

BLR2ULV extract_blr2_factorization(const BLR2ULVDag& dag) {
  auto& st = *dag.state;
  HATRIX_CHECK(st.a != nullptr, "dag state has no matrix");
  return BLR2ULV(*st.a, std::move(st.factors), std::move(st.merged_l));
}

}  // namespace hatrix::ulv
