/// \file blas_vendor.cpp
/// \brief Vendor-BLAS backend: thin adapters over the Fortran BLAS ABI.
///
/// Compiled to an empty TU unless HATRIX_WITH_BLAS is defined (the layer
/// library globs every .cpp, so the gate lives here rather than in CMake
/// source lists). Only level-3 kernels are delegated — potrf stays the
/// blocked algorithm on top of the dispatched trsm/syrk/gemm, so no LAPACK
/// is required.

#if defined(HATRIX_WITH_BLAS)

#include "linalg/blas_vendor.hpp"

extern "C" {
void dgemm_(const char* transa, const char* transb, const int* m, const int* n,
            const int* k, const double* alpha, const double* a, const int* lda,
            const double* b, const int* ldb, const double* beta, double* c,
            const int* ldc);
void sgemm_(const char* transa, const char* transb, const int* m, const int* n,
            const int* k, const float* alpha, const float* a, const int* lda,
            const float* b, const int* ldb, const float* beta, float* c,
            const int* ldc);
void dsyrk_(const char* uplo, const char* trans, const int* n, const int* k,
            const double* alpha, const double* a, const int* lda,
            const double* beta, double* c, const int* ldc);
void ssyrk_(const char* uplo, const char* trans, const int* n, const int* k,
            const float* alpha, const float* a, const int* lda, const float* beta,
            float* c, const int* ldc);
void dtrsm_(const char* side, const char* uplo, const char* transa,
            const char* diag, const int* m, const int* n, const double* alpha,
            const double* a, const int* lda, double* b, const int* ldb);
void strsm_(const char* side, const char* uplo, const char* transa,
            const char* diag, const int* m, const int* n, const float* alpha,
            const float* a, const int* lda, float* b, const int* ldb);
}

namespace hatrix::la::vendor {

namespace {

int as_int(index_t v) { return static_cast<int>(v); }
char trans_char(Trans t) { return t == Trans::No ? 'N' : 'T'; }

}  // namespace

void gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb,
          double beta, MatrixView c) {
  const int m = as_int(c.rows), n = as_int(c.cols);
  const int k = as_int(ta == Trans::No ? a.cols : a.rows);
  const int lda = as_int(a.ld), ldb = as_int(b.ld), ldc = as_int(c.ld);
  const char tca = trans_char(ta), tcb = trans_char(tb);
  dgemm_(&tca, &tcb, &m, &n, &k, &alpha, a.data, &lda, b.data, &ldb, &beta,
         c.data, &ldc);
}

void gemm(float alpha, ConstMatrixViewF a, Trans ta, ConstMatrixViewF b, Trans tb,
          float beta, MatrixViewF c) {
  const int m = as_int(c.rows), n = as_int(c.cols);
  const int k = as_int(ta == Trans::No ? a.cols : a.rows);
  const int lda = as_int(a.ld), ldb = as_int(b.ld), ldc = as_int(c.ld);
  const char tca = trans_char(ta), tcb = trans_char(tb);
  sgemm_(&tca, &tcb, &m, &n, &k, &alpha, a.data, &lda, b.data, &ldb, &beta,
         c.data, &ldc);
}

void syrk(double alpha, ConstMatrixView a, Trans trans, double beta, MatrixView c) {
  const int n = as_int(c.rows);
  const int k = as_int(trans == Trans::No ? a.cols : a.rows);
  const int lda = as_int(a.ld), ldc = as_int(c.ld);
  const char ul = 'L', tc = trans_char(trans);
  dsyrk_(&ul, &tc, &n, &k, &alpha, a.data, &lda, &beta, c.data, &ldc);
  // la::syrk writes both triangles; the vendor routine only the lower one.
  for (index_t j = 0; j < c.cols; ++j)
    for (index_t i = j + 1; i < c.rows; ++i) c(j, i) = c(i, j);
}

void syrk(float alpha, ConstMatrixViewF a, Trans trans, float beta, MatrixViewF c) {
  const int n = as_int(c.rows);
  const int k = as_int(trans == Trans::No ? a.cols : a.rows);
  const int lda = as_int(a.ld), ldc = as_int(c.ld);
  const char ul = 'L', tc = trans_char(trans);
  ssyrk_(&ul, &tc, &n, &k, &alpha, a.data, &lda, &beta, c.data, &ldc);
  for (index_t j = 0; j < c.cols; ++j)
    for (index_t i = j + 1; i < c.rows; ++i) c(j, i) = c(i, j);
}

void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b) {
  const int m = as_int(b.rows), n = as_int(b.cols);
  const int lda = as_int(t.ld), ldb = as_int(b.ld);
  const char sc = side == Side::Left ? 'L' : 'R';
  const char ul = uplo == UpLo::Lower ? 'L' : 'U';
  const char tc = trans_char(trans);
  const char dc = diag == Diag::Unit ? 'U' : 'N';
  dtrsm_(&sc, &ul, &tc, &dc, &m, &n, &alpha, t.data, &lda, b.data, &ldb);
}

void trsm(Side side, UpLo uplo, Trans trans, Diag diag, float alpha,
          ConstMatrixViewF t, MatrixViewF b) {
  const int m = as_int(b.rows), n = as_int(b.cols);
  const int lda = as_int(t.ld), ldb = as_int(b.ld);
  const char sc = side == Side::Left ? 'L' : 'R';
  const char ul = uplo == UpLo::Lower ? 'L' : 'U';
  const char tc = trans_char(trans);
  const char dc = diag == Diag::Unit ? 'U' : 'N';
  strsm_(&sc, &ul, &tc, &dc, &m, &n, &alpha, t.data, &lda, b.data, &ldb);
}

}  // namespace hatrix::la::vendor

#endif  // HATRIX_WITH_BLAS
