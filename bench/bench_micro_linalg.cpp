// Micro-benchmarks of the dense kernels behind every factorization, plus
// the cost-model calibration data (the sustained flop rate the simulator's
// CostModel::calibrated() would pick on this host). Self-timed — each case
// repeats until it has accumulated enough wall time for a stable average —
// and the results land in BENCH_linalg.json next to the solve-throughput
// numbers so kernel regressions show up in version control.
//
//   ./bench_micro_linalg [--min-time 0.2] [--json BENCH_linalg.json] [--csv]
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/bench_json.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "lowrank/compress.hpp"

namespace {

using namespace hatrix;
using la::Matrix;

struct Case {
  std::string name;
  la::index_t n = 0;
  double seconds_per_iter = 0.0;
  std::int64_t iterations = 0;
  double gflops = 0.0;  ///< 0 when no flop count applies
};

/// Run `body` repeatedly until `min_time` seconds have accumulated (at least
/// 3 iterations), returning the average seconds per iteration.
Case timed(const std::string& name, la::index_t n, double flops_per_iter,
           double min_time, const std::function<void()>& body) {
  body();  // warm-up (first touch, page faults)
  WallTimer timer;
  std::int64_t iters = 0;
  do {
    body();
    ++iters;
  } while ((timer.seconds() < min_time || iters < 3) && iters < 1000000);
  Case c;
  c.name = name;
  c.n = n;
  c.iterations = iters;
  c.seconds_per_iter = timer.seconds() / static_cast<double>(iters);
  if (flops_per_iter > 0.0) c.gflops = flops_per_iter / c.seconds_per_iter / 1e9;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double min_time = cli.get_double("min-time", 0.2);
  const std::string json_path = cli.get_string("json", "BENCH_linalg.json");
  const bool csv = cli.has("csv");
  cli.reject_unknown();

  std::vector<Case> cases;

  for (la::index_t n : {64, 128, 256}) {
    Rng rng(1);
    Matrix a = Matrix::random_normal(rng, n, n);
    Matrix b = Matrix::random_normal(rng, n, n);
    Matrix c(n, n);
    cases.push_back(timed("gemm", n, 2.0 * n * n * n, min_time, [&] {
      la::gemm(1.0, a.view(), la::Trans::No, b.view(), la::Trans::No, 0.0, c.view());
    }));
  }

  // Tall-skinny panel products: the m x r (r = rank) basis updates that
  // dominate the HSS build and ULV sweeps. Small inner dimension, so these
  // measure the packing overhead the square cases amortize away.
  for (la::index_t m : {1024, 4096}) {
    const la::index_t r = 40, k = 40;
    Rng rng(7);
    Matrix a = Matrix::random_normal(rng, m, k);
    Matrix b = Matrix::random_normal(rng, k, r);
    Matrix c(m, r);
    cases.push_back(timed("gemm_tall", m, 2.0 * m * r * k, min_time, [&] {
      la::gemm(1.0, a.view(), la::Trans::No, b.view(), la::Trans::No, 0.0, c.view());
    }));
  }

  // FP32 gemm: the storage precision of mixed-mode low-rank blocks. Twice
  // the lanes per vector register, so the target is ~2x the FP64 rate.
  for (la::index_t n : {64, 256}) {
    Rng rng(8);
    Matrix ad = Matrix::random_normal(rng, n, n);
    Matrix bd = Matrix::random_normal(rng, n, n);
    la::MatrixF a(n, n), b(n, n), c(n, n);
    for (la::index_t j = 0; j < n; ++j)
      for (la::index_t i = 0; i < n; ++i) {
        a(i, j) = static_cast<float>(ad(i, j));
        b(i, j) = static_cast<float>(bd(i, j));
      }
    cases.push_back(timed("gemm_f32", n, 2.0 * n * n * n, min_time, [&] {
      la::gemm(1.0F, a.view(), la::Trans::No, b.view(), la::Trans::No, 0.0F,
               c.view());
    }));
  }

  for (la::index_t n : {64, 128, 256, 512}) {
    Rng rng(2);
    Matrix a = Matrix::random_spd(rng, n);
    cases.push_back(timed("potrf", n, n * n * n / 3.0, min_time, [&] {
      Matrix work = Matrix::from_view(a.view());
      la::potrf(work.view());
    }));
  }

  {
    const la::index_t n = 256;
    Rng rng(9);
    Matrix ad = Matrix::random_spd(rng, n);
    la::MatrixF a(n, n);
    for (la::index_t j = 0; j < n; ++j)
      for (la::index_t i = 0; i < n; ++i) a(i, j) = static_cast<float>(ad(i, j));
    la::MatrixF work(n, n);
    cases.push_back(timed("potrf_f32", n, n * n * n / 3.0, min_time, [&] {
      for (la::index_t j = 0; j < n; ++j)
        for (la::index_t i = 0; i < n; ++i) work(i, j) = a(i, j);
      la::potrf(work.view());
    }));
  }

  // syrk: the Schur-complement update of every partial factorization.
  for (la::index_t n : {64, 128, 256}) {
    Rng rng(10);
    Matrix a = Matrix::random_normal(rng, n, n);
    Matrix c(n, n);
    cases.push_back(timed("syrk", n, 2.0 * n * n * n, min_time, [&] {
      la::syrk(1.0, a.view(), la::Trans::No, 0.0, c.view());
    }));
  }

  for (la::index_t n : {128, 256, 512}) {
    Rng rng(3);
    Matrix a = Matrix::random_spd(rng, n);
    la::potrf(a.view());
    Matrix b = Matrix::random_normal(rng, n, n);
    cases.push_back(timed("trsm", n, static_cast<double>(n) * n * n, min_time, [&] {
      Matrix x = Matrix::from_view(b.view());
      la::trsm(la::Side::Left, la::UpLo::Lower, la::Trans::No, la::Diag::NonUnit,
               1.0, a.view(), x.view());
    }));
  }

  for (la::index_t n : {128, 256}) {
    Rng rng(4);
    Matrix a = Matrix::random_normal(rng, n, 4 * n);
    cases.push_back(timed("pivoted_qr", n, 0.0, min_time,
                          [&] { auto f = la::pivoted_qr(a.view(), n / 4, 0.0); }));
  }

  for (la::index_t n : {32, 64, 128}) {
    Rng rng(5);
    Matrix a = Matrix::random_normal(rng, n, n);
    cases.push_back(
        timed("svd", n, 0.0, min_time, [&] { auto f = la::svd(a.view()); }));
  }

  for (la::index_t n : {256, 1024}) {
    Rng rng(6);
    lr::LowRank a(Matrix::random_normal(rng, n, 32), Matrix::random_normal(rng, n, 32));
    lr::LowRank b(Matrix::random_normal(rng, n, 32), Matrix::random_normal(rng, n, 32));
    cases.push_back(timed("lr_add_round", n, 0.0, min_time, [&] {
      auto s = lr::lr_add_round(1.0, a, -1.0, b, 32, 1e-10);
    }));
  }

  TextTable table({"kernel", "n", "us/iter", "iters", "GFLOP/s"});
  BenchJson json("micro_linalg");
  for (const auto& c : cases) {
    table.add_row({c.name, std::to_string(c.n),
                   fmt_fixed(c.seconds_per_iter * 1e6, 1),
                   std::to_string(c.iterations),
                   c.gflops > 0.0 ? fmt_fixed(c.gflops, 2) : "-"});
    json.row()
        .add("kernel", c.name)
        .add("n", static_cast<std::int64_t>(c.n))
        .add("seconds_per_iter", c.seconds_per_iter)
        .add("iterations", c.iterations)
        .add("gflops", c.gflops);
  }
  std::printf("%s\n", csv ? table.to_csv().c_str() : table.to_string().c_str());
  if (!json_path.empty()) {
    if (json.write(json_path))
      std::printf("wrote %s\n", json_path.c_str());
    else
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
  }
  return 0;
}
