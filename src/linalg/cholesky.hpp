#pragma once
/// \file cholesky.hpp
/// \brief Cholesky factorization and SPD solves.

#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

namespace hatrix::la {

/// In-place lower Cholesky A = L·Lᵀ. Only the lower triangle of `a` is
/// referenced and overwritten with L (the strict upper triangle is left
/// untouched). Throws hatrix::Error if a non-positive pivot is met, i.e. the
/// matrix is not positive definite.
void potrf(MatrixView a);

/// Solve A·X = B given the lower Cholesky factor L from potrf (B is
/// overwritten with the solution).
void potrs(ConstMatrixView l, MatrixView b);

/// Convenience: solve SPD system A·X = B without destroying A; returns X.
Matrix solve_spd(ConstMatrixView a, ConstMatrixView b);

}  // namespace hatrix::la
