// Boundary-element electrostatics (the paper's Sec. 1 motivation): solve a
// screened-potential single-layer problem on a closed 2D boundary.
//
// A charged conductor occupies the unit disk; its boundary is discretized
// into N panels. Collocation with the Yukawa (screened Coulomb) Green's
// function yields a dense SPD system  A q = v  for the panel charge
// densities q given the prescribed boundary potential v. We compress A into
// HSS form, factorize with the ULV, solve, and validate against a dense
// direct solve at a size where that is feasible.
//
//   ./bem_electrostatics [--n 8192]
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "format/accessor.hpp"
#include "format/hss_builder.hpp"
#include "geometry/cluster_tree.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "linalg/cholesky.hpp"
#include "ulv/hss_ulv.hpp"

using namespace hatrix;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const la::index_t n = cli.get_int("n", 2048);
  const la::index_t leaf = cli.get_int("leaf", 128);
  const la::index_t rank = cli.get_int("rank", 80);
  cli.reject_unknown();

  std::printf("BEM: screened potential on the unit circle, %lld panels\n",
              static_cast<long long>(n));

  // Boundary discretization + cluster ordering.
  geom::Domain boundary = geom::circle2d(n);
  geom::ClusterTree tree(boundary, leaf);
  // Screening length of one panel: the r -> 0 regularization then models the
  // panel self-interaction at the correct O(1/h) scale.
  const double panel = 2.0 * 3.14159265358979323846 / static_cast<double>(n);
  kernels::Yukawa green(1.0, panel);
  kernels::KernelMatrix km(green, tree.points());
  fmt::KernelAccessor acc(km);

  // Prescribed boundary potential: v(x) = 1 + 0.5 cos(3θ).
  std::vector<double> v(static_cast<std::size_t>(n));
  for (la::index_t i = 0; i < n; ++i) {
    const auto& p = tree.points()[static_cast<std::size_t>(i)];
    v[static_cast<std::size_t>(i)] = 1.0 + 0.5 * std::cos(3.0 * std::atan2(p[1], p[0]));
  }

  WallTimer timer;
  fmt::HSSMatrix a = fmt::build_hss(
      acc, {.leaf_size = leaf, .max_rank = rank, .sample_cols = 512});
  auto f = ulv::HSSULV::factorize(a);
  std::vector<double> q = f.solve(v);
  std::printf("HSS build+factor+solve: %.3f s (max rank %lld)\n", timer.seconds(),
              static_cast<long long>(a.max_rank_used()));

  // Total induced charge (panel weight 2πR/N each).
  double total_charge = 0.0;
  for (double qi : q) total_charge += qi;
  total_charge *= 2.0 * 3.14159265358979323846 / static_cast<double>(n);
  std::printf("total induced charge: %.6f\n", total_charge);

  // Residual of the compressed solve against the true dense operator,
  // measured matrix-free: r = A_dense q - v.
  std::vector<double> aq;
  km.matvec(q, aq);
  double rnum = 0.0, rden = 0.0;
  for (la::index_t i = 0; i < n; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    rnum += (aq[iu] - v[iu]) * (aq[iu] - v[iu]);
    rden += v[iu] * v[iu];
  }
  std::printf("relative residual ||A q - v|| / ||v||: %.3e\n",
              std::sqrt(rnum / rden));

  // Validation against a dense Cholesky solve (only at modest N).
  if (n <= 8192) {
    timer.reset();
    la::Matrix dense = km.dense();
    la::Matrix rhs(n, 1);
    for (la::index_t i = 0; i < n; ++i) rhs(i, 0) = v[static_cast<std::size_t>(i)];
    la::Matrix x = la::solve_spd(dense.view(), rhs.view());
    double dnum = 0.0, dden = 0.0;
    for (la::index_t i = 0; i < n; ++i) {
      const double d = x(i, 0) - q[static_cast<std::size_t>(i)];
      dnum += d * d;
      dden += x(i, 0) * x(i, 0);
    }
    std::printf("dense reference solve: %.3f s, HSS vs dense rel diff %.3e\n",
                timer.seconds(), std::sqrt(dnum / dden));
  }
  return 0;
}
