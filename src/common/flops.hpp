#pragma once
/// \file flops.hpp
/// \brief Global floating-point-operation accounting.
///
/// Every linalg kernel reports the classical flop count of the operation it
/// performed. The counters are the measurement device behind the empirical
/// complexity table (Table 1 of the paper): benches reset the counter, run a
/// factorization, and read back the total.

#include <cstdint>

namespace hatrix::flops {

/// Add `n` flops to the calling thread's counter.
void add(std::uint64_t n) noexcept;

/// Sum of all threads' counters since the last reset.
std::uint64_t total() noexcept;

/// Reset all threads' counters to zero.
void reset() noexcept;

/// RAII scope that reports the flops executed between construction and
/// `count()`; nested scopes are fine because it reads the global counter.
class Scope {
 public:
  Scope() : start_(total()) {}
  [[nodiscard]] std::uint64_t count() const noexcept { return total() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace hatrix::flops
