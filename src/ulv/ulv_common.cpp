#include "ulv/ulv_common.hpp"

#include "common/error.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"

namespace hatrix::ulv {

DiagProductResult diag_product(la::ConstMatrixView diag, la::ConstMatrixView basis) {
  const index_t m = diag.rows, k = basis.cols;
  HATRIX_CHECK(diag.cols == m, "diag_product: diagonal must be square");
  HATRIX_CHECK(basis.rows == m, "diag_product: basis/diagonal size mismatch");

  DiagProductResult out;
  out.q_comp = la::orth_complement(basis);
  out.rotated = Matrix(m, m);

  const Matrix& q = out.q_comp;  // m x (m-k)
  // Â = [Qᵀ; Uᵀ] D [Q U] assembled piecewise (Eq. 7), complement first.
  Matrix dq = la::matmul(diag, q.view());   // m x (m-k)
  Matrix du = la::matmul(diag, basis);      // m x k
  if (m - k > 0) {
    la::gemm(1.0, q.view(), la::Trans::Yes, dq.view(), la::Trans::No, 0.0,
             out.rotated.block(0, 0, m - k, m - k));
    if (k > 0) {
      la::gemm(1.0, basis, la::Trans::Yes, dq.view(), la::Trans::No, 0.0,
               out.rotated.block(m - k, 0, k, m - k));
      la::gemm(1.0, q.view(), la::Trans::Yes, du.view(), la::Trans::No, 0.0,
               out.rotated.block(0, m - k, m - k, k));
    }
  }
  if (k > 0)
    la::gemm(1.0, basis, la::Trans::Yes, du.view(), la::Trans::No, 0.0,
             out.rotated.block(m - k, m - k, k, k));
  return out;
}

PartialFactorResult partial_factor_rotated(la::ConstMatrixView rotated, index_t k,
                                           Matrix q_comp) {
  const index_t m = rotated.rows;
  HATRIX_CHECK(rotated.cols == m, "partial_factor_rotated: square input required");
  HATRIX_CHECK(k >= 0 && k <= m, "partial_factor_rotated: bad rank");

  PartialFactorResult out;
  out.factor.m = m;
  out.factor.k = k;
  out.factor.q_comp = std::move(q_comp);

  Matrix rr = Matrix::from_view(rotated.block(0, 0, m - k, m - k));
  Matrix sr = Matrix::from_view(rotated.block(m - k, 0, k, m - k));
  Matrix ss = Matrix::from_view(rotated.block(m - k, m - k, k, k));

  la::potrf(rr.view());  // Eq. 10
  out.factor.l_rr = std::move(rr);
  la::trsm(la::Side::Right, la::UpLo::Lower, la::Trans::Yes, la::Diag::NonUnit, 1.0,
           out.factor.l_rr.view(), sr.view());  // Eq. 11
  out.factor.l_sr = std::move(sr);
  la::syrk(-1.0, out.factor.l_sr.view(), la::Trans::No, 1.0, ss.view());  // Eq. 12
  out.ss_schur = std::move(ss);
  return out;
}

PartialFactorResult partial_factor(la::ConstMatrixView diag,
                                   la::ConstMatrixView basis) {
  DiagProductResult rot = diag_product(diag, basis);
  return partial_factor_rotated(rot.rotated.view(), basis.cols,
                                std::move(rot.q_comp));
}

NodeForward forward_step(const NodeFactor& f, la::ConstMatrixView basis,
                         const double* b_local) {
  NodeForward fw;
  fw.z_r.assign(static_cast<std::size_t>(f.m - f.k), 0.0);
  fw.z_s.assign(static_cast<std::size_t>(f.k), 0.0);
  if (f.m - f.k > 0) {
    la::gemv(1.0, f.q_comp.view(), la::Trans::Yes, b_local, 0.0, fw.z_r.data());
    // z_r = L_RR^{-1} (Qᵀ b)
    la::MatrixView zr{fw.z_r.data(), f.m - f.k, 1, f.m - f.k};
    la::trsm(la::Side::Left, la::UpLo::Lower, la::Trans::No, la::Diag::NonUnit, 1.0,
             f.l_rr.view(), zr);
  }
  if (f.k > 0) {
    la::gemv(1.0, basis, la::Trans::Yes, b_local, 0.0, fw.z_s.data());
    if (f.m - f.k > 0)
      la::gemv(-1.0, f.l_sr.view(), la::Trans::No, fw.z_r.data(), 1.0, fw.z_s.data());
  }
  return fw;
}

NodeForwardPanel forward_step_panel(const NodeFactor& f, la::ConstMatrixView basis,
                                    la::ConstMatrixView b_local) {
  HATRIX_CHECK(b_local.rows == f.m, "forward_step_panel: rhs panel row mismatch");
  const index_t nrhs = b_local.cols;
  NodeForwardPanel fw;
  fw.z_r = Matrix(f.m - f.k, nrhs);
  fw.z_s = Matrix(f.k, nrhs);
  if (f.m - f.k > 0) {
    la::gemm(1.0, f.q_comp.view(), la::Trans::Yes, b_local, la::Trans::No, 0.0,
             fw.z_r.view());
    // Z_R = L_RR^{-1} (Qᵀ B)
    la::trsm(la::Side::Left, la::UpLo::Lower, la::Trans::No, la::Diag::NonUnit, 1.0,
             f.l_rr.view(), fw.z_r.view());
  }
  if (f.k > 0) {
    la::gemm(1.0, basis, la::Trans::Yes, b_local, la::Trans::No, 0.0, fw.z_s.view());
    if (f.m - f.k > 0)
      la::gemm(-1.0, f.l_sr.view(), la::Trans::No, fw.z_r.view(), la::Trans::No, 1.0,
               fw.z_s.view());
  }
  return fw;
}

void backward_step_panel(const NodeFactor& f, la::ConstMatrixView basis,
                         const NodeForwardPanel& fw, la::ConstMatrixView x_s,
                         la::MatrixView x_out) {
  HATRIX_CHECK(x_s.rows == f.k, "backward_step_panel: skeleton panel row mismatch");
  HATRIX_CHECK(x_out.rows == f.m && x_out.cols == x_s.cols,
               "backward_step_panel: output shape mismatch");
  if (f.m - f.k > 0) {
    // X_R = L_RRᵀ^{-1} (Z_R - L_SRᵀ X_S)
    Matrix rhs = Matrix::from_view(fw.z_r.view());
    if (f.k > 0)
      la::gemm(-1.0, f.l_sr.view(), la::Trans::Yes, x_s, la::Trans::No, 1.0,
               rhs.view());
    la::trsm(la::Side::Left, la::UpLo::Lower, la::Trans::Yes, la::Diag::NonUnit, 1.0,
             f.l_rr.view(), rhs.view());
    la::gemm(1.0, f.q_comp.view(), la::Trans::No, rhs.view(), la::Trans::No, 0.0,
             x_out);
    if (f.k > 0)
      la::gemm(1.0, basis, la::Trans::No, x_s, la::Trans::No, 1.0, x_out);
  } else if (f.k > 0) {
    la::gemm(1.0, basis, la::Trans::No, x_s, la::Trans::No, 0.0, x_out);
  } else {
    la::fill(x_out, 0.0);
  }
}

std::vector<double> backward_step(const NodeFactor& f, la::ConstMatrixView basis,
                                  const NodeForward& fw,
                                  const std::vector<double>& x_s) {
  HATRIX_CHECK(static_cast<index_t>(x_s.size()) == f.k,
               "backward_step: skeleton solution has wrong length");
  std::vector<double> x(static_cast<std::size_t>(f.m), 0.0);
  if (f.m - f.k > 0) {
    // x_r = L_RRᵀ^{-1} (z_r - L_SRᵀ x_s)
    std::vector<double> rhs = fw.z_r;
    if (f.k > 0)
      la::gemv(-1.0, f.l_sr.view(), la::Trans::Yes, x_s.data(), 1.0, rhs.data());
    la::MatrixView rv{rhs.data(), f.m - f.k, 1, f.m - f.k};
    la::trsm(la::Side::Left, la::UpLo::Lower, la::Trans::Yes, la::Diag::NonUnit, 1.0,
             f.l_rr.view(), rv);
    la::gemv(1.0, f.q_comp.view(), la::Trans::No, rhs.data(), 0.0, x.data());
  }
  if (f.k > 0)
    la::gemv(1.0, basis, la::Trans::No, x_s.data(), 1.0, x.data());
  return x;
}

}  // namespace hatrix::ulv
