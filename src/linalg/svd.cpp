#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/flops.hpp"
#include "linalg/blas.hpp"
#include "linalg/qr.hpp"

namespace hatrix::la {

namespace {

// One-sided Jacobi on a tall matrix W (m x n, m >= n): rotates column pairs
// until all are mutually orthogonal. V accumulates the rotations.
void jacobi_sweeps(Matrix& w, Matrix& v) {
  const index_t m = w.rows(), n = w.cols();
  const double eps = 1e-15;
  const int max_sweeps = 60;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (index_t i = 0; i < m; ++i) {
          app += w(i, p) * w(i, p);
          aqq += w(i, q) * w(i, q);
          apq += w(i, p) * w(i, q);
        }
        flops::add(static_cast<std::uint64_t>(6) * m);
        if (std::abs(apq) <= eps * std::sqrt(app * aqq) || apq == 0.0) continue;
        converged = false;

        // Two-sided rotation of the 2x2 Gram block [app apq; apq aqq].
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (index_t i = 0; i < m; ++i) {
          const double wp = w(i, p), wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
        for (index_t i = 0; i < v.rows(); ++i) {
          const double vp = v(i, p), vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
        flops::add(static_cast<std::uint64_t>(6) * (m + v.rows()));
      }
    }
    if (converged) break;
  }
}

}  // namespace

SvdResult svd(ConstMatrixView a) {
  const bool wide = a.cols > a.rows;
  // Work on the tall orientation; swap U/V at the end if we transposed.
  Matrix w = wide ? transpose(a) : Matrix::from_view(a);
  const index_t m = w.rows(), n = w.cols();

  // A preliminary QR keeps the Jacobi iteration on an n x n problem when the
  // matrix is very tall (the common case when recompressing stacked blocks).
  Matrix q_pre;
  bool pre_qr = m > 2 * n && n > 0;
  if (pre_qr) {
    auto f = qr(w.view());
    q_pre = std::move(f.q);
    w = std::move(f.r);
  }

  Matrix v = Matrix::identity(n);
  jacobi_sweeps(w, v);

  // Column norms of the rotated matrix are the singular values.
  SvdResult out;
  out.s.resize(static_cast<std::size_t>(n));
  Matrix u(w.rows(), n);
  for (index_t j = 0; j < n; ++j) {
    double nrm = 0.0;
    for (index_t i = 0; i < w.rows(); ++i) nrm += w(i, j) * w(i, j);
    nrm = std::sqrt(nrm);
    out.s[static_cast<std::size_t>(j)] = nrm;
    if (nrm > 0.0)
      for (index_t i = 0; i < w.rows(); ++i) u(i, j) = w(i, j) / nrm;
    else
      u(j % w.rows(), j) = 1.0;  // arbitrary unit vector for a null column
  }

  // Sort singular values descending and permute U, V accordingly.
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](index_t x, index_t y) {
    return out.s[static_cast<std::size_t>(x)] > out.s[static_cast<std::size_t>(y)];
  });
  std::vector<double> s_sorted(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j)
    s_sorted[static_cast<std::size_t>(j)] = out.s[static_cast<std::size_t>(order[static_cast<std::size_t>(j)])];
  out.s = std::move(s_sorted);
  u = gather_cols(u.view(), order);
  v = gather_cols(v.view(), order);

  if (pre_qr) u = matmul(q_pre.view(), u.view());

  if (wide) {
    out.u = std::move(v);
    out.v = std::move(u);
  } else {
    out.u = std::move(u);
    out.v = std::move(v);
  }
  return out;
}

index_t numerical_rank(const std::vector<double>& s, double tol) {
  index_t r = 0;
  for (double x : s)
    if (x > tol) ++r;
  return r;
}

}  // namespace hatrix::la
