#include "blrchol/blr_cholesky_tasks.hpp"

#include <algorithm>

#include "blrchol/tile_cholesky.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "lowrank/compress.hpp"

namespace hatrix::blrchol {

BLRCholDag emit_blr_cholesky_dag(const BLRMatrix& a, rt::TaskGraph& graph,
                                 bool with_work, const BLRCholOptions& opts) {
  BLRCholDag dag;
  dag.state = std::make_shared<BLRMatrix>(a);  // factorization copy
  const index_t p = a.num_tiles();

  dag.diag_data.resize(static_cast<std::size_t>(p));
  dag.tile_data.resize(static_cast<std::size_t>(p));
  for (index_t i = 0; i < p; ++i) {
    // Byte sizes from shapes (tile size x rank), so rank-skeleton matrices
    // price communication the same as materialized ones.
    dag.diag_data[static_cast<std::size_t>(i)] = graph.register_data(
        "D(" + std::to_string(i) + ")", a.tile_size(i) * a.tile_size(i) * 8);
    // In-place factorization: every block is preloaded from the matrix copy
    // and holds a piece of the factor when the graph finishes.
    graph.mark_input(dag.diag_data[static_cast<std::size_t>(i)]);
    graph.mark_output(dag.diag_data[static_cast<std::size_t>(i)]);
    dag.tile_data[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(i));
    for (index_t j = 0; j < i; ++j) {
      dag.tile_data[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          graph.register_data(
              "A(" + std::to_string(i) + "," + std::to_string(j) + ")",
              (a.tile_size(i) + a.tile_size(j)) *
                  std::max<index_t>(a.tile(i, j).rank(), 1) * 8);
      graph.mark_input(
          dag.tile_data[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
      graph.mark_output(
          dag.tile_data[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
    }
  }

  auto st = dag.state;
  for (index_t k = 0; k < p; ++k) {
    const int phase = static_cast<int>(k);
    // The critical path runs down the diagonal: give panel-k tasks higher
    // priority than later panels (LORAPO's critical-path prioritization).
    const int prio = static_cast<int>(p - k);
    const index_t bk = a.tile_size(k);

    graph.insert_task(
        "POTRF(" + std::to_string(k) + ")", "potrf", {bk},
        with_work ? std::function<void()>([st, k] { la::potrf(st->diag(k).view()); })
                  : std::function<void()>(),
        {{dag.diag_data[static_cast<std::size_t>(k)], rt::Access::ReadWrite}},
        prio + 1, phase);

    for (index_t i = k + 1; i < p; ++i) {
      const index_t rank = a.tile(i, k).rank();
      graph.insert_task(
          "TRSM(" + std::to_string(i) + "," + std::to_string(k) + ")", "trsm_lr",
          {bk, rank},
          with_work ? std::function<void()>([st, i, k] {
            auto& t = st->tile(i, k);
            if (t.rank() > 0)
              la::trsm(la::Side::Left, la::UpLo::Lower, la::Trans::No,
                       la::Diag::NonUnit, 1.0, st->diag(k).view(), t.v.view());
          })
                    : std::function<void()>(),
          {{dag.diag_data[static_cast<std::size_t>(k)], rt::Access::Read},
           {dag.tile_data[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)],
            rt::Access::ReadWrite}},
          prio, phase);
    }

    for (index_t i = k + 1; i < p; ++i) {
      const index_t bi = a.tile_size(i);
      const index_t rik = a.tile(i, k).rank();
      graph.insert_task(
          "SYRK(" + std::to_string(i) + "," + std::to_string(k) + ")", "syrk_lr",
          {bi, rik},
          with_work ? std::function<void()>([st, i, k] {
            const auto& aik = st->tile(i, k);
            if (aik.rank() == 0) return;
            Matrix w = la::matmul(aik.v.view(), aik.v.view(), la::Trans::Yes,
                                  la::Trans::No);
            Matrix uw = la::matmul(aik.u.view(), w.view());
            la::gemm(-1.0, uw.view(), la::Trans::No, aik.u.view(), la::Trans::Yes,
                     1.0, st->diag(i).view());
          })
                    : std::function<void()>(),
          {{dag.tile_data[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)],
            rt::Access::Read},
           {dag.diag_data[static_cast<std::size_t>(i)], rt::Access::ReadWrite}},
          prio, phase);

      for (index_t j = k + 1; j < i; ++j) {
        const index_t rjk = a.tile(j, k).rank();
        graph.insert_task(
            "GEMM(" + std::to_string(i) + "," + std::to_string(j) + "," +
                std::to_string(k) + ")",
            "gemm_lr", {bi, rik, rjk},
            with_work ? std::function<void()>([st, i, j, k, opts] {
              const auto& aik = st->tile(i, k);
              const auto& ajk = st->tile(j, k);
              if (aik.rank() == 0 || ajk.rank() == 0) return;
              Matrix w = la::matmul(aik.v.view(), ajk.v.view(), la::Trans::Yes,
                                    la::Trans::No);
              lr::LowRank term(la::matmul(aik.u.view(), w.view()),
                               Matrix::from_view(ajk.u.view()));
              st->tile(i, j) = lr::lr_add_round(1.0, st->tile(i, j), -1.0, term,
                                                opts.max_rank, opts.tol);
            })
                      : std::function<void()>(),
            {{dag.tile_data[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)],
              rt::Access::Read},
             {dag.tile_data[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)],
              rt::Access::Read},
             {dag.tile_data[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
              rt::Access::ReadWrite}},
            prio, phase);
      }
    }
  }
  return dag;
}

DenseCholDag emit_dense_cholesky_dag(la::ConstMatrixView a, la::index_t n,
                                     la::index_t tile, rt::TaskGraph& graph,
                                     bool with_work) {
  DenseCholDag dag;
  const index_t p = num_tiles(n, tile);
  dag.tiles = p;
  if (with_work) {
    HATRIX_CHECK(a.rows == n && a.cols == n, "dense DAG: matrix size mismatch");
    dag.state = std::make_shared<la::Matrix>(la::Matrix::from_view(a));
  }

  // Captured by value into task closures, which outlive this function.
  auto ts = [n, tile](index_t t) { return std::min(tile, n - t * tile); };
  auto tb = [tile](index_t t) { return t * tile; };

  dag.tile_data.resize(static_cast<std::size_t>(p));
  for (index_t i = 0; i < p; ++i) {
    dag.tile_data[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(i) + 1);
    for (index_t j = 0; j <= i; ++j) {
      dag.tile_data[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          graph.register_data(
              "T(" + std::to_string(i) + "," + std::to_string(j) + ")",
              ts(i) * ts(j) * 8);
      // In-place tiled Cholesky: tiles are preloaded and hold the factor.
      graph.mark_input(
          dag.tile_data[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
      graph.mark_output(
          dag.tile_data[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
    }
  }

  auto st = dag.state;
  for (index_t k = 0; k < p; ++k) {
    const int phase = static_cast<int>(k);
    const int prio = static_cast<int>(p - k);
    graph.insert_task(
        "POTRF(" + std::to_string(k) + ")", "potrf", {ts(k)},
        with_work ? std::function<void()>([st, tb, ts, k] {
          la::potrf(st->block(tb(k), tb(k), ts(k), ts(k)));
        })
                  : std::function<void()>(),
        {{dag.tile_data[static_cast<std::size_t>(k)][static_cast<std::size_t>(k)],
          rt::Access::ReadWrite}},
        prio + 1, phase);

    for (index_t i = k + 1; i < p; ++i) {
      graph.insert_task(
          "TRSM(" + std::to_string(i) + "," + std::to_string(k) + ")", "trsm",
          {ts(i), ts(k)},
          with_work ? std::function<void()>([st, tb, ts, i, k] {
            la::trsm(la::Side::Right, la::UpLo::Lower, la::Trans::Yes,
                     la::Diag::NonUnit, 1.0, st->block(tb(k), tb(k), ts(k), ts(k)),
                     st->block(tb(i), tb(k), ts(i), ts(k)));
          })
                    : std::function<void()>(),
          {{dag.tile_data[static_cast<std::size_t>(k)][static_cast<std::size_t>(k)],
            rt::Access::Read},
           {dag.tile_data[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)],
            rt::Access::ReadWrite}},
          prio, phase);
    }
    for (index_t i = k + 1; i < p; ++i) {
      graph.insert_task(
          "SYRK(" + std::to_string(i) + "," + std::to_string(k) + ")", "syrk",
          {ts(i), ts(k)},
          with_work ? std::function<void()>([st, tb, ts, i, k] {
            la::syrk(-1.0, st->block(tb(i), tb(k), ts(i), ts(k)), la::Trans::No,
                     1.0, st->block(tb(i), tb(i), ts(i), ts(i)));
          })
                    : std::function<void()>(),
          {{dag.tile_data[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)],
            rt::Access::Read},
           {dag.tile_data[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)],
            rt::Access::ReadWrite}},
          prio, phase);
      for (index_t j = k + 1; j < i; ++j) {
        graph.insert_task(
            "GEMM(" + std::to_string(i) + "," + std::to_string(j) + "," +
                std::to_string(k) + ")",
            "gemm", {ts(i), ts(j), ts(k)},
            with_work ? std::function<void()>([st, tb, ts, i, j, k] {
              la::gemm(-1.0, st->block(tb(i), tb(k), ts(i), ts(k)), la::Trans::No,
                       st->block(tb(j), tb(k), ts(j), ts(k)), la::Trans::Yes, 1.0,
                       st->block(tb(i), tb(j), ts(i), ts(j)));
            })
                      : std::function<void()>(),
            {{dag.tile_data[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)],
              rt::Access::Read},
             {dag.tile_data[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)],
              rt::Access::Read},
             {dag.tile_data[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
              rt::Access::ReadWrite}},
            prio, phase);
      }
    }
  }
  return dag;
}

}  // namespace hatrix::blrchol
