#include "lowrank/aca.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/flops.hpp"

namespace hatrix::lr {

LowRank aca(const EntryFn& entry, index_t rows, index_t cols, index_t max_rank,
            double tol) {
  HATRIX_CHECK(rows >= 0 && cols >= 0, "aca negative dimensions");
  max_rank = std::min({max_rank, rows, cols});

  std::vector<std::vector<double>> us, vs;  // rank-1 terms
  std::vector<bool> row_used(static_cast<std::size_t>(rows), false);
  std::vector<bool> col_used(static_cast<std::size_t>(cols), false);

  double approx_norm2 = 0.0;  // ||A_k||_F^2 accumulated incrementally
  index_t next_row = 0;

  for (index_t k = 0; k < max_rank; ++k) {
    // Row of the residual at the pivot row.
    std::vector<double> row(static_cast<std::size_t>(cols));
    for (index_t j = 0; j < cols; ++j) {
      double r = entry(next_row, j);
      for (std::size_t t = 0; t < us.size(); ++t)
        r -= us[t][static_cast<std::size_t>(next_row)] * vs[t][static_cast<std::size_t>(j)];
      row[static_cast<std::size_t>(j)] = r;
    }
    flops::add(static_cast<std::uint64_t>(2) * cols * us.size());

    // Column pivot: largest residual entry in this row among unused columns.
    index_t pj = -1;
    double best = 0.0;
    for (index_t j = 0; j < cols; ++j) {
      if (col_used[static_cast<std::size_t>(j)]) continue;
      if (std::abs(row[static_cast<std::size_t>(j)]) > best) {
        best = std::abs(row[static_cast<std::size_t>(j)]);
        pj = j;
      }
    }
    if (pj < 0 || best == 0.0) break;
    const double pivot = row[static_cast<std::size_t>(pj)];

    // Column of the residual at the pivot column, scaled by 1/pivot.
    std::vector<double> col(static_cast<std::size_t>(rows));
    for (index_t i = 0; i < rows; ++i) {
      double r = entry(i, pj);
      for (std::size_t t = 0; t < us.size(); ++t)
        r -= us[t][static_cast<std::size_t>(i)] * vs[t][static_cast<std::size_t>(pj)];
      col[static_cast<std::size_t>(i)] = r / pivot;
    }
    flops::add(static_cast<std::uint64_t>(2) * rows * us.size());

    row_used[static_cast<std::size_t>(next_row)] = true;
    col_used[static_cast<std::size_t>(pj)] = true;

    // Convergence: ||u_k v_kᵀ||_F vs the running approximation norm.
    double nu = 0.0, nv = 0.0;
    for (double x : col) nu += x * x;
    for (double x : row) nv += x * x;
    const double term_norm2 = nu * nv;
    approx_norm2 += term_norm2;  // cross terms omitted: standard ACA heuristic

    us.push_back(std::move(col));
    vs.push_back(std::move(row));

    if (tol > 0.0 && term_norm2 <= tol * tol * approx_norm2) break;

    // Next row pivot: largest entry of u_k among unused rows.
    index_t pi = -1;
    double bestu = -1.0;
    for (index_t i = 0; i < rows; ++i) {
      if (row_used[static_cast<std::size_t>(i)]) continue;
      if (std::abs(us.back()[static_cast<std::size_t>(i)]) > bestu) {
        bestu = std::abs(us.back()[static_cast<std::size_t>(i)]);
        pi = i;
      }
    }
    if (pi < 0) break;
    next_row = pi;
  }

  const index_t k = static_cast<index_t>(us.size());
  Matrix u(rows, k), v(cols, k);
  for (index_t t = 0; t < k; ++t) {
    for (index_t i = 0; i < rows; ++i) u(i, t) = us[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)];
    for (index_t j = 0; j < cols; ++j) v(j, t) = vs[static_cast<std::size_t>(t)][static_cast<std::size_t>(j)];
  }
  return LowRank(std::move(u), std::move(v));
}

}  // namespace hatrix::lr
