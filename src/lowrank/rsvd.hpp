#pragma once
/// \file rsvd.hpp
/// \brief Randomized SVD compression (Halko-Martinsson-Tropp sketch).
///
/// The second compression algorithm the paper cites. Works from matvec-style
/// access: sample Y = A·Ω, orthonormalize, project. Used in tests as an
/// alternative compressor and by the HSS builder's randomized path.

#include "common/rng.hpp"
#include "lowrank/lowrank.hpp"

namespace hatrix::lr {

/// Randomized low-rank factorization of an explicit block: rank `rank` plus
/// `oversample` extra sample vectors, `power_iters` subspace iterations for
/// slowly-decaying spectra. The result is truncated back to `rank`.
LowRank rsvd(la::ConstMatrixView a, index_t rank, Rng& rng, index_t oversample = 8,
             int power_iters = 1);

}  // namespace hatrix::lr
