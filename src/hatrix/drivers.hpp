#pragma once
/// \file drivers.hpp
/// \brief Top-level drivers for the three systems the paper compares.
///
/// * HATRIX-DTD  = HSS-ULV x asynchronous DTD runtime x row-cyclic
/// * STRUMPACK   = HSS-ULV x fork-join (barrier per level) x block-cyclic
/// * LORAPO      = BLR tile Cholesky x DTD runtime x 2D block-cyclic
/// * DPLASMA     = dense tile Cholesky x DTD runtime x 2D block-cyclic
///
/// `run_simulated` replays the real task DAG of the chosen system through
/// the discrete-event cluster model (the repo's Fugaku substitution);
/// the benches drive it to regenerate Figs. 9-12 and Table 1.

#include <cstdint>
#include <string>

#include "distsim/des.hpp"

namespace hatrix::driver {

/// Which of the compared implementations to model. HatrixPTG is the paper's
/// suggested evolution (conclusion / Sec. 4.2): same algorithm and
/// distribution as HATRIX-DTD, but PTG-style local-only task generation.
enum class System { HatrixDTD, HatrixPTG, StrumpackSim, LorapoSim, DenseDplasmaSim };

/// Display name ("HATRIX-DTD", "HATRIX-PTG", "STRUMPACK", "LORAPO", "DPLASMA").
std::string system_name(System s);

/// One simulated distributed factorization run.
struct SimExperiment {
  la::index_t n = 16384;          ///< problem size
  la::index_t leaf_size = 256;    ///< HSS leaf / BLR-dense tile size
  la::index_t rank = 100;         ///< max rank (HSS) / tile rank (BLR)
  int nodes = 2;                  ///< processes (1 per node, as the paper)
  int cores_per_node = 48;        ///< Fugaku A64FX
  double gflops_per_core = 40.0;  ///< sustained per-core rate (A64FX-like)
  distsim::NetworkModel network;  ///< TofuD-like defaults
  distsim::OverheadModel overhead;
};

/// Observables shared by Figs. 9-12 and Table 1.
struct SimOutcome {
  double factor_time = 0.0;          ///< simulated makespan (s)
  double compute_per_worker = 0.0;   ///< Fig. 10 "COMPUTE TASK TIME"
  double overhead_per_worker = 0.0;  ///< Fig. 10 "RUNTIME OVERHEAD"
  double mpi_per_process = 0.0;      ///< Fig. 10b "MPI TIME" (per rank)
  std::int64_t tasks = 0;
  std::int64_t messages = 0;
  std::int64_t comm_bytes = 0;
  double flops = 0.0;                ///< modeled compute flops of the DAG
};

/// Build the system's costing DAG at the requested scale (rank skeletons,
/// no numerical data), map it with the system's distribution policy, and
/// run the discrete-event simulation.
SimOutcome run_simulated(System sys, const SimExperiment& cfg);

/// One real (non-simulated) shared-memory construction run: build the HSS
/// form of a kernel matrix through the guarded, task-parallel builder, then
/// factorize it with HSS-ULV. The compress-vs-factor split this reports is
/// what bench_construction sweeps over worker counts.
struct ConstructionExperiment {
  std::string kernel = "yukawa";   ///< kernel name (kernels::make_kernel)
  la::index_t n = 8192;            ///< problem size
  la::index_t leaf_size = 256;     ///< HSS leaf block size
  la::index_t max_rank = 80;       ///< rank cap for every basis
  double tol = 0.0;                ///< truncation tolerance (0: rank-only)
  la::index_t sample_cols = 512;   ///< initial per-node column sample
  double guard_tol = 1e-4;         ///< accuracy-guard tolerance (0: off)
  la::index_t max_sample_cols = 0; ///< guard growth cap (0: uncapped)
  int workers = 1;                 ///< construction/factorization workers
  std::uint64_t seed = 42;         ///< sampling seed
  bool verify_dag = false;         ///< statically verify both DAGs before running
  bool analyze_dag = false;        ///< run the dataflow analyzer on both DAGs
  bool early_release = false;      ///< free retired blocks at their last use
};

/// Observables of one construction run.
struct ConstructionOutcome {
  double build_seconds = 0.0;      ///< task-parallel construction wall time
  double factor_seconds = 0.0;     ///< task-parallel ULV factorization wall time
  double solve_error = 0.0;        ///< Eq. 19 solve error on a random rhs
  la::index_t rank_used = 0;       ///< largest basis rank in the built matrix
  la::index_t max_samples = 0;     ///< largest per-node column sample the guard grew to
  la::index_t guard_growths = 0;   ///< guard-triggered growth rounds (all nodes)
  la::index_t rank_escapes = 0;    ///< guard rank-cap escalations past max_rank
  double worst_residual = 0.0;     ///< largest accepted guard probe residual
  std::int64_t build_tasks = 0;    ///< construction DAG size
  std::int64_t factor_tasks = 0;   ///< factorization DAG size
  std::int64_t peak_matrix_bytes = 0;   ///< measured matrix-allocation high water
  std::int64_t static_peak_bytes = 0;   ///< analyzer serial-schedule peak bound (0: analyzer off)
  double analyze_seconds = 0.0;         ///< dataflow-analysis wall time, both DAGs (0: off)
};

/// Run one construction experiment. Throws fmt::BasisUnderResolvedError if
/// the guard cap is hit (see hss_builder.hpp).
ConstructionOutcome run_construction(const ConstructionExperiment& cfg);

/// One solve-throughput run: factorize once, then stream `solves` right-hand
/// sides through the shared, immutable factorization in panels of `batch`
/// columns, split across `clients` concurrent threads (each solving whole
/// panels; no locking anywhere — HSSULV::solve is const and race-free).
/// When `compare_oracle` is set, the same workload additionally runs through
/// the per-column oracle (HSSULV::solve_columnwise) so the blocked path's
/// speedup and bit-identity can be reported.
struct SolveThroughputExperiment {
  std::string kernel = "yukawa";   ///< kernel name (kernels::make_kernel)
  la::index_t n = 2048;            ///< problem size
  la::index_t leaf_size = 256;     ///< HSS leaf block size
  la::index_t max_rank = 60;       ///< rank cap for every basis
  la::index_t sample_cols = 256;   ///< initial per-node column sample (0: exact)
  double guard_tol = 1e-4;         ///< accuracy-guard tolerance (0: off)
  std::uint64_t seed = 42;         ///< sampling / RHS seed
  la::index_t batch = 16;          ///< RHS panel width per solve call
  int clients = 1;                 ///< concurrent solver threads
  la::index_t solves = 64;         ///< total RHS columns solved (all clients)
  bool compare_oracle = true;      ///< also time the column-loop oracle
};

/// Observables of one solve-throughput run.
struct SolveThroughputOutcome {
  double build_seconds = 0.0;      ///< HSS construction wall time
  double factor_seconds = 0.0;     ///< ULV factorization wall time
  double blocked_seconds = 0.0;    ///< wall time of all solves, blocked path
  double oracle_seconds = 0.0;     ///< wall time, column-loop oracle (0: skipped)
  double solves_per_second = 0.0;  ///< solved columns / blocked wall time
  double speedup_vs_oracle = 0.0;  ///< oracle_seconds / blocked_seconds (0: skipped)
  double max_col_diff = 0.0;       ///< max |blocked - oracle| (bit-identity: 0)
  double solve_error = 0.0;        ///< Eq. 19 relative error of one solved column
  la::index_t rank_used = 0;       ///< largest basis rank in the built matrix
};

/// Run one solve-throughput experiment.
SolveThroughputOutcome run_solve_throughput(const SolveThroughputExperiment& cfg);

}  // namespace hatrix::driver
