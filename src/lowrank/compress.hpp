#pragma once
/// \file compress.hpp
/// \brief Dense-block compressors and rounded low-rank arithmetic.
///
/// `compress` (truncated pivoted QR) is the paper's compression primitive
/// (Eq. 2); `truncated_svd` gives optimal truncation for recompression;
/// `lr_add_round` is the rounded addition the BLR Cholesky (LORAPO baseline)
/// uses to keep ranks bounded during Schur updates.

#include "lowrank/lowrank.hpp"

namespace hatrix::lr {

/// Truncated pivoted-QR compression: A ≈ U·Vᵀ with rank ≤ max_rank and
/// remaining column norm ≤ tol·||A||_F (relative tolerance; tol = 0 means
/// rank-only truncation). U has orthonormal columns.
LowRank compress(la::ConstMatrixView a, index_t max_rank, double tol = 0.0);

/// SVD-based optimal truncation: keeps singular values > tol·s_max, capped
/// at max_rank. Singular values are folded into V.
LowRank truncated_svd(la::ConstMatrixView a, index_t max_rank, double tol = 0.0);

/// Recompress an existing low-rank block to a (possibly) smaller rank using
/// QR of both factors followed by an SVD of the small core.
LowRank recompress(const LowRank& a, index_t max_rank, double tol = 0.0);

/// Rounded addition: alpha*A + beta*B for low-rank A, B, recompressed to
/// max_rank/tol. The exact sum has rank(A)+rank(B); rounding keeps storage
/// and flops bounded.
LowRank lr_add_round(double alpha, const LowRank& a, double beta, const LowRank& b,
                     index_t max_rank, double tol = 0.0);

}  // namespace hatrix::lr
