#!/usr/bin/env sh
# Mirrors the tier-1 verification line locally.
#   scripts/check.sh        -> configure, build, run ALL test suites, then
#                              run the concurrency suite under ThreadSanitizer
#   scripts/check.sh fast   -> same, but only suites labeled `fast` (< 60 s)
#                              and no TSan pass
set -eu

cd "$(dirname "$0")/.."

LABEL_ARGS=""
FULL=1
if [ "${1:-}" = "fast" ]; then
  LABEL_ARGS="-L fast"
  FULL=0
fi

cmake -B build -S .
cmake --build build -j "$(nproc 2>/dev/null || echo 4)"
# Full mode runs everything with the dataflow analyzer forced on, so a DAG
# whose declared accesses drift from its task bodies fails here even in a
# Release build where the debug-default gate would leave the analyzer off.
if [ "$FULL" = "1" ]; then
  HATRIX_ANALYZE_DAG=1
  export HATRIX_ANALYZE_DAG
fi
# shellcheck disable=SC2086  # LABEL_ARGS is intentionally word-split
ctest --test-dir build --output-on-failure -j "$(nproc 2>/dev/null || echo 4)" $LABEL_ARGS

# Full mode: rebuild the concurrency suites with ThreadSanitizer via the
# HATRIX_SANITIZE option (cmake/Sanitizers.cmake) and run them. Passing
# -fsanitize=thread through CMAKE_CXX_FLAGS, as this script used to, silently
# replaced the build type's optimization and debug-info flags; the dedicated
# option composes with them instead. The factored-operator immutability
# contract (docs/ARCHITECTURE.md) is only as good as this check.
if [ "$FULL" = "1" ]; then
  # Quick executor sweep: run the real ULV DAG through fork-join, FIFO and
  # priority (Ablation D of bench_ablation_runtime) with the DAG verifier on,
  # so a scheduling regression that slips past the unit suites still fails
  # the check line.
  HATRIX_VERIFY_DAG=1 ./build/bench/bench_ablation_runtime --skip-sim \
    --measured-n 1024 --workers 2 --reps 1 --mem-n 1024 \
    --json /tmp/hatrix_check_bench_runtime.json

  # Kernel-layer perf regression gate: fresh micro-bench rates vs the
  # committed BENCH_linalg.json baseline (hard floor on gemm n=256).
  ./scripts/perf_gate.sh build

  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DHATRIX_SANITIZE=thread \
    -DHATRIX_BUILD_BENCH=OFF -DHATRIX_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j "$(nproc 2>/dev/null || echo 4)" \
    --target test_concurrent_solve test_runtime test_dag_verify \
    test_dag_dataflow test_executor_conformance test_scheduler_stress \
    test_linalg_conformance
  ctest --test-dir build-tsan --output-on-failure -L concurrency \
    -j "$(nproc 2>/dev/null || echo 4)"
fi
