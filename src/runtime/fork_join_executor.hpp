#pragma once
/// \file fork_join_executor.hpp
/// \brief Bulk-synchronous (fork-join) executor — the STRUMPACK model.
///
/// Tasks are grouped by their `phase` tag (the HSS level) and every phase is
/// separated by a barrier: no task of phase p+1 may start until every task
/// of phase p finished, even if its own dependencies were already satisfied.
/// This is precisely the execution model the paper contrasts against the
/// asynchronous runtime (Sec. 4.2, Sec. 5.2) — the merge step stalls on the
/// barrier instead of firing as soon as its two children are done.

#include <exception>

#include "runtime/task_graph.hpp"
#include "runtime/trace.hpp"

namespace hatrix::rt {

/// Bulk-synchronous executor: tasks grouped by `phase`, barrier between
/// phases (the STRUMPACK execution model).
class ForkJoinExecutor {
 public:
  /// `num_workers` worker threads (>= 1) per phase.
  explicit ForkJoinExecutor(int num_workers = 1);

  /// Run phases in ascending order with a barrier after each. Dependencies
  /// inside a phase are respected; dependencies that point to a *later*
  /// phase are satisfied by the barrier construction. Throws if the graph
  /// has a dependency from a later phase back into an earlier one.
  /// Exceptions thrown by task bodies are rethrown after the failing phase
  /// drains, with the failing task's trace end-stamped; later phases never
  /// start. When `error_out` is non-null the exception is stored there
  /// instead of rethrown and the partial statistics are returned.
  ExecutionStats run(const TaskGraph& graph, std::exception_ptr* error_out = nullptr);

  /// Worker thread count this executor was built with.
  [[nodiscard]] int num_workers() const { return num_workers_; }

  /// Toggle static DAG verification (dag_verify.hpp) before execution: the
  /// whole graph is verified once up front (the per-phase sub-graphs are
  /// re-derived from the same access declarations and are not re-verified).
  /// Defaults to rt::verify_dag_default().
  void set_verify_dag(bool enabled) { verify_dag_ = enabled; }
  /// Whether run() statically verifies the graph before executing it.
  [[nodiscard]] bool verify_dag_enabled() const { return verify_dag_; }

  /// Toggle static dataflow analysis (dag_dataflow.hpp) before execution:
  /// like verification, the whole graph is analyzed once up front (the
  /// per-phase sub-graphs carry no input/output marks and are not
  /// re-analyzed). Defaults to rt::analyze_dag_default(). The release
  /// schedule is coarser here than on the asynchronous executors: handles
  /// retire at the phase barrier after their last accessor's phase.
  void set_analyze_dag(bool enabled) { analyze_dag_ = enabled; }
  /// Whether run() runs the dataflow pass before executing the graph.
  [[nodiscard]] bool analyze_dag_enabled() const { return analyze_dag_; }

 private:
  int num_workers_;
  bool verify_dag_;
  bool analyze_dag_;
};

}  // namespace hatrix::rt
