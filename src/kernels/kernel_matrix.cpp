#include "kernels/kernel_matrix.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "linalg/blas.hpp"

namespace hatrix::kernels {

using la::index_t;

KernelMatrix::KernelMatrix(const Kernel& kernel, std::vector<geom::Point> points,
                           double diag_shift)
    : kernel_(&kernel), points_(std::move(points)), diag_shift_(diag_shift) {}

double KernelMatrix::entry(index_t i, index_t j) const {
  double v = (*kernel_)(points_[static_cast<std::size_t>(i)],
                        points_[static_cast<std::size_t>(j)]);
  if (i == j) v += diag_shift_;
  return v;
}

void KernelMatrix::fill_block(index_t row0, index_t col0, la::MatrixView out) const {
  HATRIX_CHECK(row0 >= 0 && col0 >= 0 && row0 + out.rows <= size() &&
                   col0 + out.cols <= size(),
               "kernel block out of range");
  for (index_t j = 0; j < out.cols; ++j)
    for (index_t i = 0; i < out.rows; ++i) out(i, j) = entry(row0 + i, col0 + j);
}

la::Matrix KernelMatrix::block(index_t row0, index_t col0, index_t rows,
                               index_t cols) const {
  la::Matrix out(rows, cols);
  fill_block(row0, col0, out.view());
  return out;
}

la::Matrix KernelMatrix::dense() const { return block(0, 0, size(), size()); }

void KernelMatrix::matvec(const std::vector<double>& x, std::vector<double>& y) const {
  const index_t n = size();
  HATRIX_CHECK(static_cast<index_t>(x.size()) == n, "matvec dimension mismatch");
  y.assign(static_cast<std::size_t>(n), 0.0);
  constexpr index_t kPanel = 512;
  la::Matrix panel(std::min(kPanel, n), n);
  for (index_t r0 = 0; r0 < n; r0 += kPanel) {
    const index_t m = std::min(kPanel, n - r0);
    la::MatrixView p = panel.block(0, 0, m, n);
    fill_block(r0, 0, p);
    la::gemv(1.0, p, la::Trans::No, x.data(), 0.0, y.data() + r0);
  }
}

}  // namespace hatrix::kernels
