#include "linalg/cholesky.hpp"

#include <cmath>

#include "common/flops.hpp"

namespace hatrix::la {

namespace {

// Unblocked lower Cholesky (dpotf2-style), used for diagonal blocks.
void potf2(MatrixView a) {
  const index_t n = a.rows;
  for (index_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (index_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    HATRIX_CHECK(d > 0.0, "matrix not positive definite (pivot " +
                              std::to_string(j) + ")");
    d = std::sqrt(d);
    a(j, j) = d;
    for (index_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (index_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / d;
    }
  }
}

constexpr index_t kBlock = 64;

}  // namespace

void potrf(MatrixView a) {
  HATRIX_CHECK(a.rows == a.cols, "potrf requires a square matrix");
  const index_t n = a.rows;
  flops::add(static_cast<std::uint64_t>(n) * n * n / 3);

  // Right-looking blocked algorithm: factor diagonal block, solve the panel,
  // update the trailing lower triangle.
  for (index_t k = 0; k < n; k += kBlock) {
    const index_t nb = std::min(kBlock, n - k);
    potf2(a.block(k, k, nb, nb));
    const index_t rest = n - k - nb;
    if (rest == 0) continue;
    MatrixView panel = a.block(k + nb, k, rest, nb);
    trsm(Side::Right, UpLo::Lower, Trans::Yes, Diag::NonUnit, 1.0,
         a.block(k, k, nb, nb), panel);
    // Trailing update only needs the lower triangle, but syrk writes both;
    // that is harmless because potrf never reads the strict upper triangle.
    syrk(-1.0, panel, Trans::No, 1.0, a.block(k + nb, k + nb, rest, rest));
  }

  // Zero the strict upper triangle so the output is exactly L as a full
  // matrix (callers reconstruct L·Lᵀ with general matmuls).
  for (index_t j = 1; j < n; ++j)
    for (index_t i = 0; i < j; ++i) a(i, j) = 0.0;
}

void potrs(ConstMatrixView l, MatrixView b) {
  trsm(Side::Left, UpLo::Lower, Trans::No, Diag::NonUnit, 1.0, l, b);
  trsm(Side::Left, UpLo::Lower, Trans::Yes, Diag::NonUnit, 1.0, l, b);
}

Matrix solve_spd(ConstMatrixView a, ConstMatrixView b) {
  Matrix l = Matrix::from_view(a);
  potrf(l.view());
  Matrix x = Matrix::from_view(b);
  potrs(l.view(), x.view());
  return x;
}

}  // namespace hatrix::la
