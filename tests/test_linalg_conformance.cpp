// Kernel-layer conformance suite: every non-reference backend (Blocked
// always; Vendor when compiled in) is checked against the retained naive
// reference kernels `la::ref::` across the full option space — all
// Trans/Side/UpLo/Diag combinations, odd and power-of-two sizes, zero
// dimensions, non-contiguous (strided) views, and both scalar precisions.
// The backends reorder accumulation, so comparisons are tolerance-based
// (scaled by the inner dimension and the scalar epsilon), not bitwise —
// bit-identity is the *dispatch-default* contract tested elsewhere
// (test_solve_blocked, test_executor_conformance), not a cross-backend one.
//
// Also exercises the backend dispatch point under concurrency (runs under
// TSan via the `concurrency` label): set_backend() races against kernel
// calls must stay data-race-free and every call must execute a complete,
// correct kernel from one backend or the other.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"

namespace hatrix {
namespace {

using la::Backend;
using la::ConstMatrixView;
using la::ConstMatrixViewF;
using la::Diag;
using la::index_t;
using la::Matrix;
using la::MatrixF;
using la::MatrixView;
using la::MatrixViewF;
using la::Side;
using la::Trans;
using la::UpLo;

/// RAII: select a backend for one scope, restore the previous on exit.
class BackendGuard {
 public:
  explicit BackendGuard(Backend b) : prev_(la::backend()) { la::set_backend(b); }
  ~BackendGuard() { la::set_backend(prev_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  Backend prev_;
};

/// The backends under test: everything except the reference oracle itself.
std::vector<Backend> backends_under_test() {
  std::vector<Backend> b{Backend::Blocked};
  if (la::vendor_available()) b.push_back(Backend::Vendor);
  return b;
}

Matrix random_matrix(index_t r, index_t c, Rng& rng) {
  Matrix m(r, c);
  for (index_t j = 0; j < c; ++j)
    for (index_t i = 0; i < r; ++i) m(i, j) = rng.normal();
  return m;
}

MatrixF to_f32(const Matrix& m) {
  MatrixF f(m.rows(), m.cols());
  for (index_t j = 0; j < m.cols(); ++j)
    for (index_t i = 0; i < m.rows(); ++i) f(i, j) = static_cast<float>(m(i, j));
  return f;
}

/// Well-conditioned triangular factor: unit-scale off-diagonal entries with
/// a dominant diagonal, so trsm solves stay far from overflow in float.
Matrix random_triangular(index_t n, UpLo uplo, Rng& rng) {
  Matrix t(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      const bool in_tri = uplo == UpLo::Lower ? i >= j : i <= j;
      if (!in_tri) continue;
      t(i, j) = i == j ? 4.0 + rng.uniform() : 0.25 * rng.normal();
    }
  return t;
}

/// Max |a - b| over the matrix.
template <typename ViewA, typename ViewB>
double max_diff(ViewA a, ViewB b) {
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.cols, b.cols);
  double d = 0.0;
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i)
      d = std::max(d, std::abs(static_cast<double>(a(i, j)) -
                               static_cast<double>(b(i, j))));
  return d;
}

template <typename View>
double max_abs(View a) {
  double m = 0.0;
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i)
      m = std::max(m, std::abs(static_cast<double>(a(i, j))));
  return m;
}

/// Accumulation-order-aware tolerance: eps * inner-dimension * magnitude,
/// with generous constant headroom (backends and the oracle may differ by
/// many reassociations but never by more than O(k) rounding steps).
double tolerance(index_t inner, double magnitude, double eps) {
  return 64.0 * static_cast<double>(std::max<index_t>(inner, 1)) * eps *
         (magnitude + 1.0);
}

constexpr double kEps64 = std::numeric_limits<double>::epsilon();
constexpr double kEps32 = std::numeric_limits<float>::epsilon();

std::string ctx(Backend b, const std::string& what) {
  return std::string(la::backend_name(b)) + ": " + what;
}

// ---------------------------------------------------------------------------
// gemm

struct GemmShape {
  index_t m, n, k;
};

const std::vector<GemmShape>& gemm_shapes() {
  // Odd sizes straddle every micro-kernel edge case (partial MR/NR tiles,
  // partial KC strips); zero dims must be clean no-ops; the tall-skinny
  // shapes mirror the low-rank panel products that dominate the solver.
  static const std::vector<GemmShape> shapes = {
      {0, 5, 3},  {5, 0, 3},   {5, 3, 0},   {1, 1, 1},   {2, 3, 4},
      {7, 5, 9},  {17, 13, 11}, {33, 33, 33}, {64, 64, 64}, {65, 63, 67},
      {129, 40, 17}, {200, 8, 40}, {8, 200, 40}};
  return shapes;
}

TEST(LinalgConformance, GemmDoubleAllTransCombos) {
  Rng rng(31);
  for (Backend be : backends_under_test()) {
    BackendGuard guard(be);
    for (const auto& s : gemm_shapes()) {
      for (Trans ta : {Trans::No, Trans::Yes}) {
        for (Trans tb : {Trans::No, Trans::Yes}) {
          const Matrix a = ta == Trans::No ? random_matrix(s.m, s.k, rng)
                                           : random_matrix(s.k, s.m, rng);
          const Matrix b = tb == Trans::No ? random_matrix(s.k, s.n, rng)
                                           : random_matrix(s.n, s.k, rng);
          const Matrix c0 = random_matrix(s.m, s.n, rng);
          for (auto [alpha, beta] : {std::pair{1.0, 0.0},
                                     std::pair{-0.5, 2.0},
                                     std::pair{0.0, 1.0}}) {
            Matrix c_ref = c0.f64_copy();
            la::ref::gemm(alpha, a.view(), ta, b.view(), tb, beta, c_ref.view());
            Matrix c_got = c0.f64_copy();
            la::gemm(alpha, a.view(), ta, b.view(), tb, beta, c_got.view());
            const double tol =
                tolerance(s.k, max_abs(c_ref.view()), kEps64);
            EXPECT_LE(max_diff(c_got.view(), c_ref.view()), tol)
                << ctx(be, "gemm d " + std::to_string(s.m) + "x" +
                               std::to_string(s.n) + "x" + std::to_string(s.k))
                << " ta=" << (ta == Trans::Yes) << " tb=" << (tb == Trans::Yes)
                << " alpha=" << alpha << " beta=" << beta;
          }
        }
      }
    }
  }
}

TEST(LinalgConformance, GemmFloatAllTransCombos) {
  Rng rng(32);
  for (Backend be : backends_under_test()) {
    BackendGuard guard(be);
    for (const auto& s : gemm_shapes()) {
      for (Trans ta : {Trans::No, Trans::Yes}) {
        for (Trans tb : {Trans::No, Trans::Yes}) {
          const MatrixF a = to_f32(ta == Trans::No ? random_matrix(s.m, s.k, rng)
                                                   : random_matrix(s.k, s.m, rng));
          const MatrixF b = to_f32(tb == Trans::No ? random_matrix(s.k, s.n, rng)
                                                   : random_matrix(s.n, s.k, rng));
          const MatrixF c0 = to_f32(random_matrix(s.m, s.n, rng));
          MatrixF c_ref(s.m, s.n), c_got(s.m, s.n);
          for (index_t j = 0; j < s.n; ++j)
            for (index_t i = 0; i < s.m; ++i) c_ref(i, j) = c_got(i, j) = c0(i, j);
          la::ref::gemm(1.0F, a.view(), ta, b.view(), tb, 0.5F, c_ref.view());
          la::gemm(1.0F, a.view(), ta, b.view(), tb, 0.5F, c_got.view());
          const double tol = tolerance(s.k, max_abs(c_ref.view()), kEps32);
          EXPECT_LE(max_diff(c_got.view(), c_ref.view()), tol)
              << ctx(be, "gemm f " + std::to_string(s.m) + "x" +
                             std::to_string(s.n) + "x" + std::to_string(s.k))
              << " ta=" << (ta == Trans::Yes) << " tb=" << (tb == Trans::Yes);
        }
      }
    }
  }
}

TEST(LinalgConformance, GemmNonContiguousViews) {
  // Operands and destination are interior blocks of larger matrices, so
  // every view has ld > rows — the packing paths must honor the stride.
  Rng rng(33);
  for (Backend be : backends_under_test()) {
    BackendGuard guard(be);
    const index_t m = 37, n = 29, k = 41, pad = 11;
    Matrix abuf = random_matrix(m + pad, k + pad, rng);
    Matrix bbuf = random_matrix(k + pad, n + pad, rng);
    Matrix cbuf = random_matrix(m + pad, n + pad, rng);
    Matrix cref = cbuf.f64_copy();
    const ConstMatrixView a = abuf.view().block(3, 5, m, k);
    const ConstMatrixView b = bbuf.view().block(7, 2, k, n);
    la::ref::gemm(1.5, a, Trans::No, b, Trans::No, -0.5,
                  cref.view().block(4, 6, m, n));
    la::gemm(1.5, a, Trans::No, b, Trans::No, -0.5,
             cbuf.view().block(4, 6, m, n));
    // The whole buffer must match: the kernel may not write outside its block.
    EXPECT_LE(max_diff(cbuf.view(), cref.view()),
              tolerance(k, max_abs(cref.view()), kEps64))
        << ctx(be, "gemm strided");
  }
}

// ---------------------------------------------------------------------------
// syrk

TEST(LinalgConformance, SyrkBothTransBothPrecisions) {
  Rng rng(34);
  for (Backend be : backends_under_test()) {
    BackendGuard guard(be);
    for (index_t n : {0, 1, 2, 7, 33, 65, 129}) {
      for (index_t k : {0, 1, 5, 40, 67}) {
        for (Trans tr : {Trans::No, Trans::Yes}) {
          const Matrix a = tr == Trans::No ? random_matrix(n, k, rng)
                                           : random_matrix(k, n, rng);
          const Matrix c0 = random_matrix(n, n, rng);
          Matrix c_ref = c0.f64_copy(), c_got = c0.f64_copy();
          la::ref::syrk(1.0, a.view(), tr, 0.5, c_ref.view());
          la::syrk(1.0, a.view(), tr, 0.5, c_got.view());
          EXPECT_LE(max_diff(c_got.view(), c_ref.view()),
                    tolerance(k, max_abs(c_ref.view()), kEps64))
              << ctx(be, "syrk d n=" + std::to_string(n) + " k=" + std::to_string(k))
              << " trans=" << (tr == Trans::Yes);

          const MatrixF af = to_f32(a);
          const MatrixF cf0 = to_f32(c0);
          MatrixF cf_ref(n, n), cf_got(n, n);
          for (index_t j = 0; j < n; ++j)
            for (index_t i = 0; i < n; ++i) cf_ref(i, j) = cf_got(i, j) = cf0(i, j);
          la::ref::syrk(1.0F, af.view(), tr, 0.5F, cf_ref.view());
          la::syrk(1.0F, af.view(), tr, 0.5F, cf_got.view());
          EXPECT_LE(max_diff(cf_got.view(), cf_ref.view()),
                    tolerance(k, max_abs(cf_ref.view()), kEps32))
              << ctx(be, "syrk f n=" + std::to_string(n) + " k=" + std::to_string(k))
              << " trans=" << (tr == Trans::Yes);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// trsm / trmm: all Side x UpLo x Trans x Diag combinations

TEST(LinalgConformance, TrsmAllSixteenCombos) {
  Rng rng(35);
  for (Backend be : backends_under_test()) {
    BackendGuard guard(be);
    for (index_t n : {0, 1, 3, 17, 64, 65, 129}) {
      for (index_t w : {0, 1, 5, 40}) {
        for (Side side : {Side::Left, Side::Right}) {
          for (UpLo uplo : {UpLo::Lower, UpLo::Upper}) {
            const Matrix t = random_triangular(n, uplo, rng);
            const index_t br = side == Side::Left ? n : w;
            const index_t bc = side == Side::Left ? w : n;
            const Matrix b0 = random_matrix(br, bc, rng);
            for (Trans tr : {Trans::No, Trans::Yes}) {
              for (Diag dg : {Diag::NonUnit, Diag::Unit}) {
                Matrix b_ref = b0.f64_copy(), b_got = b0.f64_copy();
                la::ref::trsm(side, uplo, tr, dg, 1.25, t.view(), b_ref.view());
                la::trsm(side, uplo, tr, dg, 1.25, t.view(), b_got.view());
                EXPECT_LE(max_diff(b_got.view(), b_ref.view()),
                          tolerance(n, max_abs(b_ref.view()), kEps64))
                    << ctx(be, "trsm n=" + std::to_string(n) + " w=" +
                                   std::to_string(w))
                    << " side=" << (side == Side::Right)
                    << " uplo=" << (uplo == UpLo::Upper)
                    << " trans=" << (tr == Trans::Yes)
                    << " diag=" << (dg == Diag::Unit);
              }
            }
          }
        }
      }
    }
  }
}

TEST(LinalgConformance, TrsmFloatCombos) {
  Rng rng(36);
  for (Backend be : backends_under_test()) {
    BackendGuard guard(be);
    for (index_t n : {1, 17, 65}) {
      for (Side side : {Side::Left, Side::Right}) {
        for (UpLo uplo : {UpLo::Lower, UpLo::Upper}) {
          const MatrixF t = to_f32(random_triangular(n, uplo, rng));
          const index_t w = 9;
          const MatrixF b0 = to_f32(random_matrix(side == Side::Left ? n : w,
                                                  side == Side::Left ? w : n, rng));
          for (Trans tr : {Trans::No, Trans::Yes}) {
            for (Diag dg : {Diag::NonUnit, Diag::Unit}) {
              MatrixF b_ref(b0.rows(), b0.cols()), b_got(b0.rows(), b0.cols());
              for (index_t j = 0; j < b0.cols(); ++j)
                for (index_t i = 0; i < b0.rows(); ++i)
                  b_ref(i, j) = b_got(i, j) = b0(i, j);
              la::ref::trsm(side, uplo, tr, dg, 1.0F, t.view(), b_ref.view());
              la::trsm(side, uplo, tr, dg, 1.0F, t.view(), b_got.view());
              EXPECT_LE(max_diff(b_got.view(), b_ref.view()),
                        tolerance(n, max_abs(b_ref.view()), kEps32))
                  << ctx(be, "trsm f n=" + std::to_string(n))
                  << " side=" << (side == Side::Right)
                  << " uplo=" << (uplo == UpLo::Upper)
                  << " trans=" << (tr == Trans::Yes)
                  << " diag=" << (dg == Diag::Unit);
            }
          }
        }
      }
    }
  }
}

TEST(LinalgConformance, TrmmAllSixteenCombos) {
  Rng rng(37);
  for (Backend be : backends_under_test()) {
    BackendGuard guard(be);
    for (index_t n : {0, 1, 3, 17, 65}) {
      for (Side side : {Side::Left, Side::Right}) {
        for (UpLo uplo : {UpLo::Lower, UpLo::Upper}) {
          const Matrix t = random_triangular(n, uplo, rng);
          const index_t w = 7;
          const Matrix b0 = random_matrix(side == Side::Left ? n : w,
                                          side == Side::Left ? w : n, rng);
          for (Trans tr : {Trans::No, Trans::Yes}) {
            for (Diag dg : {Diag::NonUnit, Diag::Unit}) {
              Matrix b_ref = b0.f64_copy(), b_got = b0.f64_copy();
              la::ref::trmm(side, uplo, tr, dg, 0.75, t.view(), b_ref.view());
              la::trmm(side, uplo, tr, dg, 0.75, t.view(), b_got.view());
              EXPECT_LE(max_diff(b_got.view(), b_ref.view()),
                        tolerance(n, max_abs(b_ref.view()), kEps64))
                  << ctx(be, "trmm n=" + std::to_string(n))
                  << " side=" << (side == Side::Right)
                  << " uplo=" << (uplo == UpLo::Upper)
                  << " trans=" << (tr == Trans::Yes)
                  << " diag=" << (dg == Diag::Unit);
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// potrf

TEST(LinalgConformance, PotrfAgainstUnblockedReference) {
  Rng rng(38);
  for (Backend be : backends_under_test()) {
    BackendGuard guard(be);
    for (index_t n : {1, 2, 7, 33, 64, 65, 129, 200}) {
      // SPD by construction: B·Bᵀ + n·I keeps the condition number modest so
      // the two factorizations agree to working accuracy.
      const Matrix b = random_matrix(n, n, rng);
      Matrix a(n, n);
      la::ref::gemm(1.0, b.view(), Trans::No, b.view(), Trans::Yes, 0.0, a.view());
      for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);

      Matrix l_ref = a.f64_copy(), l_got = a.f64_copy();
      la::ref::potrf(l_ref.view());
      la::potrf(l_got.view());
      EXPECT_LE(max_diff(l_got.view(), l_ref.view()),
                tolerance(n, max_abs(l_ref.view()), kEps64))
          << ctx(be, "potrf n=" + std::to_string(n));
      // Strict upper triangle explicitly zeroed by both.
      for (index_t j = 1; j < n; ++j)
        for (index_t i = 0; i < j; ++i)
          EXPECT_EQ(l_got(i, j), 0.0) << ctx(be, "potrf upper not zeroed");

      MatrixF af = to_f32(a);
      MatrixF lf_ref(n, n), lf_got(n, n);
      for (index_t j = 0; j < n; ++j)
        for (index_t i = 0; i < n; ++i) lf_ref(i, j) = lf_got(i, j) = af(i, j);
      la::ref::potrf(lf_ref.view());
      la::potrf(lf_got.view());
      EXPECT_LE(max_diff(lf_got.view(), lf_ref.view()),
                tolerance(n, max_abs(lf_ref.view()), kEps32))
          << ctx(be, "potrf f n=" + std::to_string(n));
    }
  }
}

TEST(LinalgConformance, PotrfThrowsOnIndefinite) {
  for (Backend be : backends_under_test()) {
    BackendGuard guard(be);
    Matrix a(3, 3);
    a(0, 0) = 1.0;
    a(1, 1) = -1.0;  // negative pivot
    a(2, 2) = 1.0;
    EXPECT_THROW(la::potrf(a.view()), Error) << ctx(be, "potrf indefinite");
  }
}

// ---------------------------------------------------------------------------
// Backend dispatch

TEST(LinalgConformance, BackendNamesRoundTrip) {
  EXPECT_EQ(la::backend_from_name("naive"), Backend::Naive);
  EXPECT_EQ(la::backend_from_name("blocked"), Backend::Blocked);
  EXPECT_EQ(la::backend_from_name("vendor"), Backend::Vendor);
  EXPECT_THROW((void)la::backend_from_name("accelerated"), Error);
  EXPECT_STREQ(la::backend_name(Backend::Naive), "naive");
  EXPECT_STREQ(la::backend_name(Backend::Blocked), "blocked");
  EXPECT_STREQ(la::backend_name(Backend::Vendor), "vendor");
}

TEST(LinalgConformance, VendorSelectionWithoutLibraryThrows) {
  if (la::vendor_available()) GTEST_SKIP() << "vendor BLAS compiled in";
  EXPECT_THROW(la::set_backend(Backend::Vendor), Error);
}

TEST(LinalgConformance, BackendDispatchIsThreadSafe) {
  // The dispatch point is one atomic load per kernel call; flipping the
  // backend from another thread mid-stream must never tear a kernel. Every
  // result must be the (identical) bit pattern both deterministic backends
  // produce for this k<=inner-kernel-width problem, or at least match the
  // oracle to tolerance.
  const Backend prev = la::backend();
  Rng rng(39);
  const index_t n = 48;
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  Matrix c_ref(n, n);
  la::ref::gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.0, c_ref.view());
  const double tol = tolerance(n, max_abs(c_ref.view()), kEps64);

  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      la::set_backend((i++ % 2) == 0 ? Backend::Naive : Backend::Blocked);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      for (int it = 0; it < 50; ++it) {
        Matrix c(n, n);
        la::gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.0, c.view());
        if (max_diff(c.view(), c_ref.view()) > tol)
          failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : workers) t.join();
  stop.store(true);
  flipper.join();
  la::set_backend(prev);
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace hatrix
