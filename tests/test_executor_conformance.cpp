// Executor conformance suite: one parameterized fixture run against all
// three executors (fork-join, FIFO thread pool, critical-path priority) at
// several worker counts. Every executor must (a) produce bit-identical
// results to serial insertion-order execution on the full N=2048 HSS
// construct + factor + solve chain, (b) propagate typed task errors with the
// failing task's trace end-stamped, and (c) handle the empty / single-task /
// diamond DAG edge cases. This is the contract that lets the format, ulv and
// solve DAG emitters treat the executor as a drop-in choice.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "format/accessor.hpp"
#include "format/hss_builder_tasks.hpp"
#include "geometry/cluster_tree.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "linalg/matrix.hpp"
#include "runtime/fork_join_executor.hpp"
#include "runtime/priority_executor.hpp"
#include "runtime/thread_pool_executor.hpp"
#include "runtime/trace.hpp"
#include "ulv/hss_solve_tasks.hpp"
#include "ulv/hss_ulv_tasks.hpp"

namespace hatrix {
namespace {

using la::index_t;
using la::Matrix;

enum class Exec { ForkJoin = 0, Fifo = 1, Priority = 2 };

const char* exec_name(Exec e) {
  switch (e) {
    case Exec::ForkJoin: return "ForkJoin";
    case Exec::Fifo: return "Fifo";
    default: return "Priority";
  }
}

/// Run `graph` through the selected executor with the uniform
/// run(graph, error_out) contract all three now share.
rt::ExecutionStats run_any(Exec e, int workers, const rt::TaskGraph& graph,
                           std::exception_ptr* error_out = nullptr) {
  switch (e) {
    case Exec::ForkJoin: {
      rt::ForkJoinExecutor ex(workers);
      return ex.run(graph, error_out);
    }
    case Exec::Fifo: {
      rt::ThreadPoolExecutor ex(workers);
      return ex.run(graph, error_out);
    }
    default: {
      rt::PriorityExecutor ex(workers);
      return ex.run(graph, error_out);
    }
  }
}

/// Serial reference: execute the closures in insertion (DTD submission)
/// order, bypassing every scheduler.
void run_serial(const rt::TaskGraph& graph) {
  for (const auto& t : graph.tasks())
    if (t.work) t.work();
}

// ---------------------------------------------------------------------------
// The N=2048 construct + factor + solve chain.

constexpr index_t kChainN = 2048;

struct ChainProblem {
  geom::Domain domain;
  std::unique_ptr<geom::ClusterTree> tree;
  std::unique_ptr<kernels::Kernel> kernel;
  std::unique_ptr<kernels::KernelMatrix> km;
  std::vector<double> b;

  ChainProblem() {
    domain = geom::grid2d(kChainN);
    tree = std::make_unique<geom::ClusterTree>(domain, 256);
    kernel = kernels::make_kernel("yukawa");
    km = std::make_unique<kernels::KernelMatrix>(*kernel, tree->points());
    Rng rng(2718);
    b = rng.normal_vector(kChainN);
  }

  [[nodiscard]] fmt::HSSOptions opts() const {
    return {.leaf_size = 256, .max_rank = 40, .tol = 0.0};
  }
};

struct ChainResult {
  fmt::HSSMatrix h;
  std::vector<double> x;
  Matrix root;
};

/// Build + factor + solve, running all three DAGs through `runner`.
/// `release` wires the emitters' early-release hooks (dag_dataflow last-use
/// schedule): Free drops retired blocks, Poison NaN-fills them so any task
/// reading past its proven last use corrupts the chain's bits. `mixed`
/// demotes the built matrix's low-rank blocks to FP32 storage before
/// factorization — the same end-of-build demotion build_hss applies under
/// HSSOptions::precision == MixedFP32.
template <typename Runner>
ChainResult run_chain(const ChainProblem& p, Runner&& runner,
                      rt::ReleaseMode release = rt::ReleaseMode::None,
                      bool mixed = false) {
  fmt::KernelAccessor acc(*p.km);

  rt::TaskGraph build_graph;
  auto build_dag = fmt::emit_hss_build_dag(acc, p.opts(), build_graph, release);
  runner(build_graph);
  ChainResult out{fmt::extract_built_hss(build_dag), {}, {}};
  if (mixed) out.h.demote_lowrank();

  rt::TaskGraph ulv_graph;
  auto ulv_dag =
      ulv::emit_hss_ulv_dag(out.h, ulv_graph, /*with_work=*/true, release);
  runner(ulv_graph);
  auto factor = ulv::extract_factorization(ulv_dag);
  out.root = Matrix::from_view(factor.root_factor().view());

  rt::TaskGraph solve_graph;
  auto solve_dag = ulv::emit_hss_solve_dag(factor, p.b, solve_graph);
  runner(solve_graph);
  out.x = solve_dag.state->x_col();
  return out;
}

const ChainProblem& chain_problem() {
  static const ChainProblem p;
  return p;
}

/// Serial insertion-order reference, computed once for the whole suite.
const ChainResult& serial_chain() {
  static const ChainResult ref =
      run_chain(chain_problem(), [](const rt::TaskGraph& g) { run_serial(g); });
  return ref;
}

/// Serial reference for the mixed-precision (FP32-demoted low-rank storage)
/// chain. Distinct from serial_chain(): demotion rounds the low-rank blocks
/// once, so the factorization and solution bits legitimately differ from the
/// pure-FP64 chain — but they must still be schedule-independent.
const ChainResult& serial_mixed_chain() {
  static const ChainResult ref =
      run_chain(chain_problem(), [](const rt::TaskGraph& g) { run_serial(g); },
                rt::ReleaseMode::None, /*mixed=*/true);
  return ref;
}

// ---------------------------------------------------------------------------

class ExecutorConformance
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  [[nodiscard]] Exec exec() const { return static_cast<Exec>(std::get<0>(GetParam())); }
  [[nodiscard]] int workers() const { return std::get<1>(GetParam()); }
};

/// Bit-identical, not approximately equal: the per-node deterministic RNG
/// and disjoint task outputs make every schedule produce the same bits.
void expect_chain_bit_identical(const ChainResult& got, const ChainResult& ref,
                                const std::string& what) {
  ASSERT_EQ(got.x.size(), ref.x.size()) << what;
  for (std::size_t i = 0; i < ref.x.size(); ++i)
    ASSERT_EQ(got.x[i], ref.x[i]) << what << ": solution differs at " << i;

  ASSERT_EQ(got.root.rows(), ref.root.rows()) << what;
  ASSERT_EQ(got.root.cols(), ref.root.cols()) << what;
  for (index_t i = 0; i < ref.root.rows(); ++i)
    for (index_t j = 0; j < ref.root.cols(); ++j)
      ASSERT_EQ(got.root(i, j), ref.root(i, j))
          << what << ": root factor differs";

  // Spot-check a built leaf basis, bitwise. F64Block handles both storage
  // precisions (FP32→FP64 promotion is exact, so bit-comparing promoted
  // copies is equivalent to comparing the stored bits).
  const int L = ref.h.max_level();
  ASSERT_EQ(got.h.mixed(), ref.h.mixed()) << what;
  la::F64Block bref(ref.h.node(L, 0).basis);
  la::F64Block bgot(got.h.node(L, 0).basis);
  const la::ConstMatrixView vref = bref.view(), vgot = bgot.view();
  ASSERT_EQ(vgot.rows, vref.rows) << what;
  ASSERT_EQ(vgot.cols, vref.cols) << what;
  for (index_t i = 0; i < vref.rows; ++i)
    for (index_t j = 0; j < vref.cols; ++j)
      ASSERT_EQ(vgot(i, j), vref(i, j)) << what << ": leaf basis differs";
}

TEST_P(ExecutorConformance, ChainBitIdenticalToSerialInsertionOrder) {
  const auto& p = chain_problem();
  const auto& ref = serial_chain();
  auto got = run_chain(p, [&](const rt::TaskGraph& g) {
    auto stats = run_any(exec(), workers(), g);
    ASSERT_EQ(rt::validate_trace(g, stats), "")
        << exec_name(exec()) << " workers=" << workers();
  });
  expect_chain_bit_identical(got, ref, exec_name(exec()));
}

TEST_P(ExecutorConformance, ChainBitIdenticalWithEarlyRelease) {
  // Free mode drops every retired sampling/panel block at its statically
  // proven last use; the chain's bits must not move. The executors fire the
  // release hook from worker threads, so this also exercises the refcount
  // path at every worker count.
  const auto& p = chain_problem();
  const auto& ref = serial_chain();
  auto got = run_chain(
      p,
      [&](const rt::TaskGraph& g) { (void)run_any(exec(), workers(), g); },
      rt::ReleaseMode::Free);
  expect_chain_bit_identical(got, ref,
                             std::string(exec_name(exec())) + "+release");
}

TEST_P(ExecutorConformance, MixedPrecisionChainBitIdenticalToSerial) {
  // Mixed storage mode: the built matrix's low-rank blocks are demoted to
  // FP32 after construction (one deterministic rounding pass), then the ULV
  // factorization and solve read them back through F64Block promotion.
  // Demotion happens after the build DAG completes, so the bit-identity
  // contract must hold in this mode exactly as in FP64 — against a mixed
  // serial reference.
  const auto& p = chain_problem();
  const auto& ref = serial_mixed_chain();
  ASSERT_TRUE(ref.h.mixed());
  ASSERT_LT(ref.h.lowrank_bytes(),
            serial_chain().h.lowrank_bytes());  // really demoted
  auto got = run_chain(
      p,
      [&](const rt::TaskGraph& g) {
        auto stats = run_any(exec(), workers(), g);
        ASSERT_EQ(rt::validate_trace(g, stats), "")
            << exec_name(exec()) << " workers=" << workers();
      },
      rt::ReleaseMode::None, /*mixed=*/true);
  expect_chain_bit_identical(got, ref,
                             std::string(exec_name(exec())) + "+mixed");
}

TEST_P(ExecutorConformance, PoisonOnReleaseKeepsChainBitIdentical) {
  // Debug mode: retired blocks are NaN-filled instead of freed. If any task
  // read a block past its statically-proven last use, the NaNs would
  // propagate into the factor/solution and the bitwise compare would fail —
  // this is the executable proof the analyzer's lifetimes are conservative.
  const auto& p = chain_problem();
  const auto& ref = serial_chain();
  auto got = run_chain(
      p,
      [&](const rt::TaskGraph& g) { (void)run_any(exec(), workers(), g); },
      rt::ReleaseMode::Poison);
  expect_chain_bit_identical(got, ref,
                             std::string(exec_name(exec())) + "+poison");
}

/// The typed error every executor must deliver intact.
class ConformanceError : public Error {
 public:
  using Error::Error;
};

TEST_P(ExecutorConformance, TypedErrorPropagatesWithEndStampedTrace) {
  rt::TaskGraph g;
  rt::DataId a = g.register_data("a");
  rt::DataId b = g.register_data("b");
  g.insert_task("ok", "k", {}, [] {}, {{a, rt::Access::ReadWrite}}, 0, 0);
  g.insert_task("boom", "k", {},
                [] {
                  std::this_thread::sleep_for(std::chrono::milliseconds(5));
                  throw ConformanceError("typed boom");
                },
                {{b, rt::Access::ReadWrite}}, 0, 0);
  g.insert_task("after", "k", {}, [] {},
                {{b, rt::Access::ReadWrite}}, 0, 1);

  std::exception_ptr err;
  auto stats = run_any(exec(), workers(), g, &err);
  ASSERT_TRUE(err != nullptr) << exec_name(exec());
  EXPECT_THROW(std::rethrow_exception(err), ConformanceError);

  // The failing task's trace is end-stamped with a real duration.
  const auto& tr = stats.traces[1];
  ASSERT_EQ(tr.task, 1);
  EXPECT_GE(tr.end, tr.start);
  EXPECT_GT(tr.duration(), 0.0);
  EXPECT_GE(stats.compute_total, 0.0);

  // The rethrowing overload delivers the same typed error.
  EXPECT_THROW((void)run_any(exec(), workers(), g), ConformanceError);
}

TEST_P(ExecutorConformance, EmptyGraph) {
  rt::TaskGraph g;
  auto stats = run_any(exec(), workers(), g);
  EXPECT_EQ(stats.traces.size(), 0u);
  EXPECT_EQ(stats.wall_time, 0.0);
  EXPECT_EQ(stats.discovery_total, 0.0);
  EXPECT_EQ(stats.workers, workers());
  EXPECT_EQ(rt::validate_trace(g, stats), "");
}

TEST_P(ExecutorConformance, SingleTask) {
  rt::TaskGraph g;
  rt::DataId d = g.register_data("x");
  auto hits = std::make_shared<std::atomic<int>>(0);
  g.insert_task("only", "k", {}, [hits] { hits->fetch_add(1); },
                {{d, rt::Access::ReadWrite}});
  auto stats = run_any(exec(), workers(), g);
  EXPECT_EQ(hits->load(), 1);
  EXPECT_EQ(rt::validate_trace(g, stats), "");
}

TEST_P(ExecutorConformance, DiamondRespectsDependencyOrder) {
  rt::TaskGraph g;
  rt::DataId a = g.register_data("a"), b = g.register_data("b"),
             c = g.register_data("c");
  auto seq = std::make_shared<std::atomic<int>>(0);
  std::vector<int> order(4, -1);
  auto log = [seq, &order](int id) { order[static_cast<std::size_t>(id)] = seq->fetch_add(1); };
  g.insert_task("src", "k", {}, [&, log] { log(0); }, {{a, rt::Access::ReadWrite}}, 0, 0);
  g.insert_task("left", "k", {}, [&, log] { log(1); },
                {{a, rt::Access::Read}, {b, rt::Access::ReadWrite}}, 0, 1);
  g.insert_task("right", "k", {}, [&, log] { log(2); },
                {{a, rt::Access::Read}, {c, rt::Access::ReadWrite}}, 0, 1);
  g.insert_task("sink", "k", {}, [&, log] { log(3); },
                {{b, rt::Access::Read}, {c, rt::Access::Read}}, 0, 2);
  auto stats = run_any(exec(), workers(), g);
  EXPECT_EQ(rt::validate_trace(g, stats), "");
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[3], 3);
  EXPECT_GT(order[1], order[0]);
  EXPECT_GT(order[2], order[0]);
}

TEST_P(ExecutorConformance, TraceInvariants) {
  // Regression-proofing the new trace fields on a graph wide enough to keep
  // every worker busy: start <= end per task, discovery totals within the
  // wall-clock budget (validate_trace enforces both), per-worker streams
  // disjoint, and the per-worker discovery breakdown consistent.
  rt::TaskGraph g;
  std::vector<rt::DataId> chains;
  for (int c = 0; c < 8; ++c)
    chains.push_back(g.register_data("chain" + std::to_string(c)));
  for (int step = 0; step < 6; ++step)
    for (int c = 0; c < 8; ++c)
      g.insert_task("t", "k", {},
                    [] { std::this_thread::sleep_for(std::chrono::microseconds(200)); },
                    {{chains[static_cast<std::size_t>(c)], rt::Access::ReadWrite}},
                    0, step);
  auto stats = run_any(exec(), workers(), g);
  ASSERT_EQ(rt::validate_trace(g, stats), "");
  for (const auto& tr : stats.traces) EXPECT_LE(tr.start, tr.end);
  ASSERT_EQ(stats.worker_discovery.size(), static_cast<std::size_t>(workers()));
  EXPECT_GT(stats.discovery_total, 0.0);
  EXPECT_LE(stats.discovery_total, stats.wall_time * workers() + 1e-6);
  // critical_path_time is bounded by the wall clock (the executor cannot
  // run a chain faster than back-to-back).
  const double cp = rt::critical_path_time(g, stats);
  EXPECT_GT(cp, 0.0);
  EXPECT_LE(cp, stats.wall_time + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    AllExecutors, ExecutorConformance,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Values(1, 2, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(exec_name(static_cast<Exec>(std::get<0>(info.param)))) +
             "_w" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace hatrix
