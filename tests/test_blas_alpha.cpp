// Scaling-parameter coverage for the triangular kernels (alpha != 1 paths)
// and gemm alpha==0 short-circuit — gaps the main BLAS suite left open.
#include <gtest/gtest.h>

#include "linalg/blas.hpp"
#include "linalg/norms.hpp"

namespace hatrix::la {
namespace {

Matrix lower_tri(Rng& rng, index_t n) {
  Matrix t = Matrix::random_normal(rng, n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < j; ++i) t(i, j) = 0.0;
    t(j, j) = 3.0 + std::abs(t(j, j));
  }
  return t;
}

TEST(BlasAlpha, TrsmScalesSolution) {
  Rng rng(701);
  Matrix t = lower_tri(rng, 6);
  Matrix b = Matrix::random_normal(rng, 6, 3);
  Matrix x1 = Matrix::from_view(b.view());
  trsm(Side::Left, UpLo::Lower, Trans::No, Diag::NonUnit, 1.0, t.view(), x1.view());
  Matrix x2 = Matrix::from_view(b.view());
  trsm(Side::Left, UpLo::Lower, Trans::No, Diag::NonUnit, -2.5, t.view(), x2.view());
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 6; ++i) EXPECT_NEAR(x2(i, j), -2.5 * x1(i, j), 1e-12);
}

TEST(BlasAlpha, TrmmScalesProduct) {
  Rng rng(702);
  Matrix t = lower_tri(rng, 5);
  Matrix b = Matrix::random_normal(rng, 5, 4);
  Matrix y1 = Matrix::from_view(b.view());
  trmm(Side::Left, UpLo::Lower, Trans::No, Diag::NonUnit, 1.0, t.view(), y1.view());
  Matrix y2 = Matrix::from_view(b.view());
  trmm(Side::Left, UpLo::Lower, Trans::No, Diag::NonUnit, 0.5, t.view(), y2.view());
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 5; ++i) EXPECT_NEAR(y2(i, j), 0.5 * y1(i, j), 1e-12);
}

TEST(BlasAlpha, GemmAlphaZeroLeavesScaledC) {
  Rng rng(703);
  Matrix a = Matrix::random_normal(rng, 4, 4);
  Matrix c = Matrix::identity(4);
  gemm(0.0, a.view(), Trans::No, a.view(), Trans::No, 3.0, c.view());
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 4; ++i) EXPECT_EQ(c(i, j), i == j ? 3.0 : 0.0);
}

TEST(BlasAlpha, SyrkAlphaSign) {
  Rng rng(704);
  Matrix a = Matrix::random_normal(rng, 5, 3);
  Matrix c1(5, 5), c2(5, 5);
  syrk(1.0, a.view(), Trans::No, 0.0, c1.view());
  syrk(-1.0, a.view(), Trans::No, 0.0, c2.view());
  add_scaled(c2.view(), 1.0, c1.view());
  EXPECT_LT(norm_max(c2.view()), 1e-14);
}

TEST(BlasAlpha, GemvBetaAccumulation) {
  Rng rng(705);
  Matrix a = Matrix::random_normal(rng, 3, 3);
  std::vector<double> x{1.0, 1.0, 1.0};
  std::vector<double> y1(3, 5.0), y2(3, 5.0);
  gemv(2.0, a.view(), Trans::No, x.data(), 0.0, y1.data());
  gemv(2.0, a.view(), Trans::No, x.data(), 1.0, y2.data());
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(y2[i], y1[i] + 5.0, 1e-13);
}

}  // namespace
}  // namespace hatrix::la
