// Tests for the matrix formats: HSS (nested bases), BLR2 (shared bases),
// BLR (flat tiles) — construction accuracy, matvec consistency, structure
// invariants, and the sampled (matrix-free) construction path.
#include <gtest/gtest.h>

#include <cmath>

#include "format/accessor.hpp"
#include "format/blr.hpp"
#include "format/blr2.hpp"
#include "format/hss.hpp"
#include "format/hss_builder.hpp"
#include "geometry/cluster_tree.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"

namespace hatrix::fmt {
namespace {

// Kernel matrix on a tree-ordered 2D grid: the evaluation setting.
struct Problem {
  geom::Domain domain;
  std::unique_ptr<geom::ClusterTree> tree;
  std::unique_ptr<kernels::Kernel> kernel;
  std::unique_ptr<kernels::KernelMatrix> km;

  Problem(index_t n, index_t leaf, const std::string& kname = "yukawa") {
    domain = geom::grid2d(n);
    tree = std::make_unique<geom::ClusterTree>(domain, leaf);
    kernel = kernels::make_kernel(kname);
    km = std::make_unique<kernels::KernelMatrix>(*kernel, tree->points());
  }
};

TEST(HssBuilder, LevelsMatchClusterTree) {
  EXPECT_EQ(hss_levels(1024, 256), 2);
  EXPECT_EQ(hss_levels(1024, 1024), 0);
  EXPECT_EQ(hss_levels(1000, 100), 4);  // ceil(1000/16)=63 > 100? no: check below
}

TEST(HssBuilder, LevelsAgreeWithClusterTreeDepth) {
  for (index_t n : {64, 100, 1000, 4096}) {
    for (index_t leaf : {16, 50, 256}) {
      geom::Domain d = geom::grid2d(n);
      geom::ClusterTree tree(d, leaf);
      EXPECT_EQ(hss_levels(n, leaf), tree.max_level()) << "n=" << n << " leaf=" << leaf;
    }
  }
}

TEST(Hss, StructureIntervalsMatchTree) {
  Problem p(512, 64);
  KernelAccessor acc(*p.km);
  HSSMatrix h = build_hss(acc, {.leaf_size = 64, .max_rank = 30, .tol = 0.0});
  ASSERT_EQ(h.max_level(), p.tree->max_level());
  for (int l = 0; l <= h.max_level(); ++l)
    for (index_t i = 0; i < h.num_nodes(l); ++i) {
      EXPECT_EQ(h.node(l, i).begin, p.tree->node(l, i).begin);
      EXPECT_EQ(h.node(l, i).end, p.tree->node(l, i).end);
    }
}

TEST(Hss, BasesAreOrthonormal) {
  Problem p(512, 64);
  KernelAccessor acc(*p.km);
  HSSMatrix h = build_hss(acc, {.leaf_size = 64, .max_rank = 20, .tol = 0.0});
  for (int l = h.max_level(); l >= 1; --l)
    for (index_t i = 0; i < h.num_nodes(l); ++i) {
      const auto& nd = h.node(l, i);
      if (nd.rank == 0) continue;
      Matrix id = la::matmul(nd.basis.view(), nd.basis.view(), la::Trans::Yes,
                             la::Trans::No);
      EXPECT_LT(la::rel_error(Matrix::identity(nd.rank).view(), id.view()), 1e-12)
          << "level " << l << " node " << i;
    }
}

TEST(Hss, NestedFullBasisIsOrthonormal) {
  Problem p(512, 64);
  KernelAccessor acc(*p.km);
  HSSMatrix h = build_hss(acc, {.leaf_size = 64, .max_rank = 20, .tol = 0.0});
  for (int l = 1; l <= h.max_level(); ++l)
    for (index_t i = 0; i < h.num_nodes(l); ++i) {
      Matrix u = h.full_basis(l, i);
      if (u.cols() == 0) continue;
      Matrix id = la::matmul(u.view(), u.view(), la::Trans::Yes, la::Trans::No);
      EXPECT_LT(la::rel_error(Matrix::identity(u.cols()).view(), id.view()), 1e-11);
    }
}

class HssAccuracy : public ::testing::TestWithParam<const char*> {};

TEST_P(HssAccuracy, DenseReconstructionError) {
  Problem p(1024, 128, GetParam());
  KernelAccessor acc(*p.km);
  HSSMatrix h = build_hss(acc, {.leaf_size = 128, .max_rank = 60, .tol = 0.0});
  Matrix a = p.km->dense();
  Matrix rec = h.dense();
  // Weak-admissibility compression of smooth kernels at generous rank: the
  // construction error should be small (Table 2 regime).
  EXPECT_LT(la::rel_error(a.view(), rec.view()), 1e-4) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PaperKernels, HssAccuracy,
                         ::testing::Values("laplace2d", "yukawa", "matern"));

TEST(Hss, RankIncreaseImprovesAccuracy) {
  Problem p(1024, 128);
  KernelAccessor acc(*p.km);
  Matrix a = p.km->dense();
  double prev = 1e9;
  for (index_t rank : {10, 30, 60}) {
    HSSMatrix h = build_hss(acc, {.leaf_size = 128, .max_rank = rank, .tol = 0.0});
    double err = la::rel_error(a.view(), h.dense().view());
    EXPECT_LT(err, prev * 1.5);  // monotone modulo noise
    prev = err;
  }
  EXPECT_LT(prev, 1e-5);
}

TEST(Hss, MatvecMatchesDenseReconstruction) {
  Problem p(777, 100, "matern");  // non power of two
  KernelAccessor acc(*p.km);
  HSSMatrix h = build_hss(acc, {.leaf_size = 100, .max_rank = 25, .tol = 0.0});
  Rng rng(61);
  std::vector<double> x = rng.normal_vector(777);
  std::vector<double> y;
  h.matvec(x, y);
  Matrix rec = h.dense();
  std::vector<double> y_ref(777, 0.0);
  la::gemv(1.0, rec.view(), la::Trans::No, x.data(), 0.0, y_ref.data());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < 777; ++i) {
    num += (y[i] - y_ref[i]) * (y[i] - y_ref[i]);
    den += y_ref[i] * y_ref[i];
  }
  EXPECT_LT(std::sqrt(num / den), 1e-12);
}

TEST(Hss, SampledConstructionCloseToExact) {
  Problem p(2048, 256);
  KernelAccessor acc(*p.km);
  HSSMatrix exact = build_hss(acc, {.leaf_size = 256, .max_rank = 40, .tol = 0.0});
  HSSMatrix sampled = build_hss(
      acc, {.leaf_size = 256, .max_rank = 40, .tol = 0.0, .sample_cols = 400});
  Matrix a = p.km->dense();
  const double e_exact = la::rel_error(a.view(), exact.dense().view());
  const double e_sampled = la::rel_error(a.view(), sampled.dense().view());
  EXPECT_LT(e_sampled, std::max(50.0 * e_exact, 1e-6));
}

TEST(Hss, SingleLevelDegeneratesToDense) {
  Problem p(100, 128);
  KernelAccessor acc(*p.km);
  HSSMatrix h = build_hss(acc, {.leaf_size = 128, .max_rank = 10, .tol = 0.0});
  EXPECT_EQ(h.max_level(), 0);
  Matrix a = p.km->dense();
  EXPECT_LT(la::rel_error(a.view(), h.dense().view()), 1e-15);
}

TEST(Hss, DenseAccessorAgreesWithKernelAccessor) {
  Problem p(512, 64);
  Matrix a = p.km->dense();
  DenseAccessor dacc(a.view());
  KernelAccessor kacc(*p.km);
  HSSOptions opts{.leaf_size = 64, .max_rank = 25, .tol = 0.0};
  HSSMatrix h1 = build_hss(dacc, opts);
  HSSMatrix h2 = build_hss(kacc, opts);
  EXPECT_LT(la::rel_error(h1.dense().view(), h2.dense().view()), 1e-12);
}

TEST(Hss, ToleranceDrivenRanksAdapt) {
  Problem p(1024, 128, "matern");
  KernelAccessor acc(*p.km);
  HSSMatrix tight = build_hss(acc, {.leaf_size = 128, .max_rank = 128, .tol = 1e-10});
  HSSMatrix loose = build_hss(acc, {.leaf_size = 128, .max_rank = 128, .tol = 1e-3});
  EXPECT_GT(tight.max_rank_used(), loose.max_rank_used());
}

TEST(Hss, MemoryBytesIsLinearish) {
  // O(N) storage: doubling N should far less than quadruple memory.
  Problem p1(1024, 128);
  Problem p2(2048, 128);
  KernelAccessor a1(*p1.km), a2(*p2.km);
  HSSOptions opts{.leaf_size = 128, .max_rank = 30, .tol = 0.0, .sample_cols = 300};
  auto h1 = build_hss(a1, opts);
  auto h2 = build_hss(a2, opts);
  EXPECT_LT(static_cast<double>(h2.memory_bytes()),
            2.8 * static_cast<double>(h1.memory_bytes()));
}

TEST(Blr2, DenseReconstruction) {
  Problem p(1024, 128);
  KernelAccessor acc(*p.km);
  BLR2Matrix m = build_blr2(acc, {.leaf_size = 128, .max_rank = 60, .tol = 0.0});
  EXPECT_EQ(m.num_blocks(), 8);
  Matrix a = p.km->dense();
  EXPECT_LT(la::rel_error(a.view(), m.dense().view()), 1e-5);
}

TEST(Blr2, MatvecMatchesDense) {
  Problem p(640, 128, "matern");
  KernelAccessor acc(*p.km);
  BLR2Matrix m = build_blr2(acc, {.leaf_size = 128, .max_rank = 40, .tol = 0.0});
  Rng rng(62);
  std::vector<double> x = rng.normal_vector(640);
  std::vector<double> y;
  m.matvec(x, y);
  Matrix rec = m.dense();
  std::vector<double> y_ref(640, 0.0);
  la::gemv(1.0, rec.view(), la::Trans::No, x.data(), 0.0, y_ref.data());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < 640; ++i) {
    num += (y[i] - y_ref[i]) * (y[i] - y_ref[i]);
    den += y_ref[i] * y_ref[i];
  }
  EXPECT_LT(std::sqrt(num / den), 1e-12);
}

TEST(Blr2, BasesOrthonormal) {
  Problem p(512, 64);
  KernelAccessor acc(*p.km);
  BLR2Matrix m = build_blr2(acc, {.leaf_size = 64, .max_rank = 20, .tol = 0.0});
  for (index_t i = 0; i < m.num_blocks(); ++i) {
    const auto& nd = m.node(i);
    Matrix id = la::matmul(nd.basis.view(), nd.basis.view(), la::Trans::Yes,
                           la::Trans::No);
    EXPECT_LT(la::rel_error(Matrix::identity(nd.rank).view(), id.view()), 1e-12);
  }
}

TEST(Blr, AdaptiveRankReconstruction) {
  Problem p(1024, 256);
  KernelAccessor acc(*p.km);
  BLRMatrix m = build_blr(acc, {.tile_size = 256, .max_rank = 256, .tol = 1e-8});
  Matrix a = p.km->dense();
  EXPECT_LT(la::rel_error(a.view(), m.dense().view()), 1e-6);
  EXPECT_GT(m.max_rank_used(), 0);
  EXPECT_LT(m.max_rank_used(), 256);  // adaptivity found low rank
}

TEST(Blr, MatvecMatchesDense) {
  Problem p(512, 128, "matern");
  KernelAccessor acc(*p.km);
  BLRMatrix m = build_blr(acc, {.tile_size = 128, .max_rank = 128, .tol = 1e-10});
  Rng rng(63);
  std::vector<double> x = rng.normal_vector(512);
  std::vector<double> y;
  m.matvec(x, y);
  Matrix rec = m.dense();
  std::vector<double> y_ref(512, 0.0);
  la::gemv(1.0, rec.view(), la::Trans::No, x.data(), 0.0, y_ref.data());
  for (std::size_t i = 0; i < 512; ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-8);
}

TEST(Blr, MemoryBelowDense) {
  Problem p(1024, 256);
  KernelAccessor acc(*p.km);
  BLRMatrix m = build_blr(acc, {.tile_size = 256, .max_rank = 256, .tol = 1e-6});
  EXPECT_LT(m.memory_bytes(), 1024 * 1024 * 8);
}

TEST(Accessor, DenseGatherMatchesEntries) {
  Rng rng(64);
  Matrix a = Matrix::random_normal(rng, 10, 10);
  DenseAccessor acc(a.view());
  Matrix g = acc.gather({1, 5, 7}, {0, 9});
  EXPECT_EQ(g(0, 0), a(1, 0));
  EXPECT_EQ(g(2, 1), a(7, 9));
}

}  // namespace
}  // namespace hatrix::fmt
