// Build/link smoke suite: one end-to-end path through every layer so tier-1
// catches cross-layer link or ABI breakage even when the per-layer suites
// are skipped (ctest -L fast runs this in well under a second of setup).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "format/accessor.hpp"
#include "format/blr2.hpp"
#include "geometry/cluster_tree.hpp"
#include "hatrix/drivers.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "linalg/norms.hpp"
#include "ulv/blr2_ulv.hpp"

namespace hatrix {
namespace {

// kernel matrix -> BLR2 compress -> ULV factor -> solve, residual against the
// *true* (uncompressed) kernel matrix. leaf_size == max_rank makes the BLR2
// representation exact, so the only error left is factorization roundoff.
TEST(BuildSanity, KernelToBlr2UlvSolveResidualSmall) {
  const la::index_t n = 512;
  geom::Domain domain = geom::grid2d(n);
  geom::ClusterTree tree(domain, 64);
  auto kernel = kernels::make_kernel("yukawa");
  kernels::KernelMatrix km(*kernel, tree.points());

  fmt::KernelAccessor acc(km);
  auto m = fmt::build_blr2(acc, {.leaf_size = 64, .max_rank = 64, .tol = 0.0});
  auto f = ulv::BLR2ULV::factorize(m);

  Rng rng(2023);
  std::vector<double> b = rng.normal_vector(n);
  std::vector<double> x = f.solve(b);

  std::vector<double> ax;
  km.matvec(x, ax);
  double num = 0.0;
  for (la::index_t i = 0; i < n; ++i) {
    const auto u = static_cast<std::size_t>(i);
    num += (ax[u] - b[u]) * (ax[u] - b[u]);
  }
  double residual = std::sqrt(num) / la::norm2(b);
  EXPECT_LT(residual, 1e-8);
}

// Distributed-simulation path: DAG construction, mapping, and the DES all
// link and produce a sane outcome at a toy scale.
TEST(BuildSanity, SimulatedDriverRunsAtToyScale) {
  driver::SimExperiment cfg;
  cfg.n = 1024;
  cfg.leaf_size = 128;
  cfg.rank = 32;
  cfg.nodes = 2;
  cfg.cores_per_node = 2;
  auto out = driver::run_simulated(driver::System::HatrixDTD, cfg);
  EXPECT_GT(out.factor_time, 0.0);
  EXPECT_GT(out.tasks, 0);
}

}  // namespace
}  // namespace hatrix
