// Static dataflow & memory-lifetime analyzer (runtime/dag_dataflow.hpp):
// def-use chain semantics (use-before-def, dead stores and the trailing
// in-place-update exemption, write-after-last-read, dead tasks, zero-byte
// handles), lifetime intervals and the last-use release schedule, the exact
// serial peak and the any-schedule peak bound, per-rank footprint/traffic
// against distsim::count_messages, the analyze-before-run executor mode, the
// release hook firing exactly once per handle on all three executors, and
// the regression proving seeded annotation bugs in the real N=8192 HSS
// builder DAG are flagged with the exact task and resource names.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "format/blr2.hpp"

#include "blrchol/blr_cholesky_tasks.hpp"
#include "common/timer.hpp"
#include "distsim/des.hpp"
#include "format/accessor.hpp"
#include "format/hss_builder.hpp"
#include "format/hss_builder_tasks.hpp"
#include "geometry/cluster_tree.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "runtime/dag_dataflow.hpp"
#include "runtime/fork_join_executor.hpp"
#include "runtime/priority_executor.hpp"
#include "runtime/thread_pool_executor.hpp"
#include "ulv/blr2_ulv_tasks.hpp"
#include "ulv/hss_solve_tasks.hpp"
#include "ulv/hss_ulv_tasks.hpp"

namespace hatrix {
namespace {

using la::index_t;

rt::TaskId find_task(const rt::TaskGraph& g, const std::string& name) {
  for (const auto& t : g.tasks())
    if (t.name == name) return t.id;
  ADD_FAILURE() << "no task named " << name;
  return -1;
}

int count_warnings(const rt::DagDataflowReport& rep, rt::DagWarningKind kind) {
  int n = 0;
  for (const auto& w : rep.warnings)
    if (w.kind == kind) ++n;
  return n;
}

// Small real kernel-matrix problem shared by the production-DAG tests.
struct Problem {
  std::unique_ptr<geom::ClusterTree> tree;
  std::unique_ptr<kernels::Kernel> kernel;
  std::unique_ptr<kernels::KernelMatrix> km;
  std::unique_ptr<fmt::KernelAccessor> acc;

  explicit Problem(index_t n, index_t leaf) {
    geom::Domain d = geom::grid2d(n);
    tree = std::make_unique<geom::ClusterTree>(d, leaf);
    kernel = kernels::make_kernel("yukawa");
    km = std::make_unique<kernels::KernelMatrix>(*kernel, tree->points());
    acc = std::make_unique<fmt::KernelAccessor>(*km);
  }
};

// ---------------------------------------------------------------- semantics

TEST(DagDataflow, EmptyGraphClean) {
  rt::TaskGraph g;
  rt::DagDataflowReport rep = rt::analyze_dag(g);
  EXPECT_EQ(rep.stats.tasks, 0);
  EXPECT_EQ(rep.stats.data_bytes, 0);
  EXPECT_EQ(rep.stats.peak_bytes_serial, 0);
  EXPECT_EQ(rep.stats.peak_bytes_any, 0);
  EXPECT_TRUE(rep.warnings.empty());
}

TEST(DagDataflow, UseBeforeDefThrows) {
  rt::TaskGraph g;
  auto d = g.register_data("blk", 64);
  g.insert_task("READER", "noop", {}, {}, {{d, rt::Access::Read}});
  try {
    rt::analyze_dag(g);
    FAIL() << "read of never-written handle not rejected";
  } catch (const rt::DagUseBeforeDefError& e) {
    EXPECT_EQ(e.task, 0);
    EXPECT_EQ(e.resource, d);
    EXPECT_EQ(e.task_name, "READER");
    EXPECT_EQ(e.resource_name, "blk");
    EXPECT_NE(std::string(e.what()).find("READER"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("blk"), std::string::npos);
  }
}

TEST(DagDataflow, InputMarkAcceptsPreloadedRead) {
  rt::TaskGraph g;
  auto d = g.register_data("seeded", 128);
  g.mark_input(d);
  g.insert_task("READER", "noop", {}, {}, {{d, rt::Access::Read}});
  rt::DagDataflowReport rep = rt::analyze_dag(g);
  EXPECT_TRUE(rep.warnings.empty());
  EXPECT_EQ(rep.lifetimes[static_cast<std::size_t>(d)].def, -1);
  EXPECT_EQ(rep.lifetimes[static_cast<std::size_t>(d)].last_use, 0);
  EXPECT_EQ(rep.lifetimes[static_cast<std::size_t>(d)].uses, 1);
  // Inputs are resident from the start of the schedule.
  EXPECT_EQ(rep.stats.peak_bytes_serial, 128);
}

TEST(DagDataflow, ReadWriteIsAnImplicitDef) {
  rt::TaskGraph g;
  auto d = g.register_data("blk", 64);
  g.mark_output(d);
  g.insert_task("INIT", "noop", {}, {}, {{d, rt::Access::ReadWrite}});
  EXPECT_NO_THROW(rt::analyze_dag(g));
}

TEST(DagDataflow, DeadStoreWarnedAndOutputMarkSuppresses) {
  for (const bool output : {false, true}) {
    rt::TaskGraph g;
    auto d = g.register_data("result", 64);
    if (output) g.mark_output(d);
    g.insert_task("PRODUCER", "noop", {}, {}, {{d, rt::Access::Write}});
    rt::DagDataflowReport rep = rt::analyze_dag(g);
    if (output) {
      EXPECT_TRUE(rep.warnings.empty());
    } else {
      ASSERT_EQ(count_warnings(rep, rt::DagWarningKind::DeadStore), 1);
      ASSERT_EQ(count_warnings(rep, rt::DagWarningKind::DeadTask), 1);
      EXPECT_EQ(rep.warnings[0].task_name, "PRODUCER");
      EXPECT_EQ(rep.warnings[0].resource_name, "result");
    }
  }
}

TEST(DagDataflow, TrailingInPlaceUpdateIsNotADeadStore) {
  // A defines the value, B updates it in place (ReadWrite): the chain's
  // final state is inspected by the caller — tile-Cholesky panels do this.
  rt::TaskGraph g;
  auto d = g.register_data("panel", 64);
  g.insert_task("A", "noop", {}, {}, {{d, rt::Access::Write}});
  g.insert_task("B", "noop", {}, {}, {{d, rt::Access::ReadWrite}});
  rt::DagDataflowReport rep = rt::analyze_dag(g);
  EXPECT_EQ(count_warnings(rep, rt::DagWarningKind::DeadStore), 0);
  EXPECT_EQ(count_warnings(rep, rt::DagWarningKind::DeadTask), 0);
}

TEST(DagDataflow, WriteAfterLastReadWarned) {
  // A's value is clobbered by B's pure Write before anyone read it; C then
  // consumes B's value so only the clobber is reported.
  rt::TaskGraph g;
  auto d = g.register_data("blk", 64);
  g.insert_task("A", "noop", {}, {}, {{d, rt::Access::Write}});
  g.insert_task("B", "noop", {}, {}, {{d, rt::Access::Write}});
  g.insert_task("C", "noop", {}, {}, {{d, rt::Access::Read}});
  rt::DagDataflowReport rep = rt::analyze_dag(g);
  ASSERT_EQ(count_warnings(rep, rt::DagWarningKind::WriteAfterLastRead), 1);
  EXPECT_EQ(count_warnings(rep, rt::DagWarningKind::DeadStore), 0);
  // A produced nothing observable.
  EXPECT_EQ(count_warnings(rep, rt::DagWarningKind::DeadTask), 1);
  for (const auto& w : rep.warnings)
    if (w.kind == rt::DagWarningKind::WriteAfterLastRead) {
      EXPECT_EQ(w.task_name, "B");
      EXPECT_NE(w.message.find("A"), std::string::npos);
    }
}

TEST(DagDataflow, ReadWriteConsumesSoNoClobberWarning) {
  rt::TaskGraph g;
  auto d = g.register_data("blk", 64);
  g.mark_output(d);
  g.insert_task("A", "noop", {}, {}, {{d, rt::Access::Write}});
  g.insert_task("B", "noop", {}, {}, {{d, rt::Access::ReadWrite}});
  rt::DagDataflowReport rep = rt::analyze_dag(g);
  EXPECT_TRUE(rep.warnings.empty());
}

TEST(DagDataflow, ZeroByteHandleWarnedOnlyWhenAccessed) {
  rt::TaskGraph g;
  auto d0 = g.register_data("touched", 0);
  g.register_data("untouched", 0);
  g.mark_output(d0);
  g.insert_task("A", "noop", {}, {}, {{d0, rt::Access::Write}});
  rt::DagDataflowReport rep = rt::analyze_dag(g);
  ASSERT_EQ(count_warnings(rep, rt::DagWarningKind::ZeroBytes), 1);
  EXPECT_EQ(rep.warnings[0].resource_name, "touched");
  EXPECT_EQ(rep.warnings[0].task, -1);
}

// ------------------------------------------------------- lifetimes & peaks

TEST(DagDataflow, LifetimesAndSerialPeakExact) {
  // a (input, 100 B) --T1--> b (200 B) --T2--> c (output, 400 B).
  // Serial residency: 100 | T1: 300, then a retires -> 200 | T2: 600, then
  // b retires -> 400. Peak = 600.
  rt::TaskGraph g;
  auto a = g.register_data("a", 100);
  auto b = g.register_data("b", 200);
  auto c = g.register_data("c", 400);
  g.mark_input(a);
  g.mark_output(c);
  auto t1 = g.insert_task("T1", "noop", {}, {},
                          {{a, rt::Access::Read}, {b, rt::Access::Write}});
  auto t2 = g.insert_task("T2", "noop", {}, {},
                          {{b, rt::Access::Read}, {c, rt::Access::Write}});
  rt::DagDataflowReport rep = rt::analyze_dag(g);
  EXPECT_TRUE(rep.warnings.empty());
  EXPECT_EQ(rep.stats.data_bytes, 700);
  EXPECT_EQ(rep.stats.peak_bytes_serial, 600);
  // A chain admits exactly one schedule: the bound is tight.
  EXPECT_EQ(rep.stats.peak_bytes_any, 600);

  const auto& lb = rep.lifetimes[static_cast<std::size_t>(b)];
  EXPECT_EQ(lb.def, t1);
  EXPECT_EQ(lb.last_use, t2);
  EXPECT_EQ(lb.uses, 2);
}

TEST(DagDataflow, AnySchedulePeakDominatesSerial) {
  // Two unordered producer tasks: serially one block retires before the
  // other materializes (peak 300), but a parallel schedule can hold both.
  rt::TaskGraph g;
  auto a = g.register_data("a", 300);
  auto b = g.register_data("b", 200);
  g.insert_task("A", "noop", {}, {}, {{a, rt::Access::Write}});
  g.insert_task("B", "noop", {}, {}, {{b, rt::Access::Write}});
  g.mark_output(a);  // silence dead-store warnings; a stays resident
  rt::DagDataflowReport rep = rt::analyze_dag(g);
  EXPECT_EQ(rep.stats.peak_bytes_serial, 500);  // a is an output: no retire
  EXPECT_GE(rep.stats.peak_bytes_any, rep.stats.peak_bytes_serial);
}

TEST(DagDataflow, ReleasePlanCountsDistinctTasksAndSkipsOutputs) {
  rt::TaskGraph g;
  auto a = g.register_data("a", 8);
  auto b = g.register_data("b", 8);
  g.mark_output(b);
  // T0 declares a twice; the plan must count it once.
  g.insert_task("T0", "noop", {}, {},
                {{a, rt::Access::Write}, {a, rt::Access::ReadWrite}});
  g.insert_task("T1", "noop", {}, {},
                {{a, rt::Access::Read}, {b, rt::Access::Write}});
  rt::ReleasePlan plan = rt::release_plan(g);
  EXPECT_EQ(plan.initial_uses[static_cast<std::size_t>(a)], 2);
  EXPECT_EQ(plan.initial_uses[static_cast<std::size_t>(b)], 0);
  ASSERT_EQ(plan.task_data.size(), 2u);
  EXPECT_EQ(plan.task_data[0], std::vector<rt::DataId>{a});
  EXPECT_EQ(plan.task_data[1], std::vector<rt::DataId>{a});
}

// ------------------------------------------------------------- executors

TEST(DagDataflow, ExecutorAnalyzeGateRejectsUseBeforeDef) {
  rt::TaskGraph g;
  auto d = g.register_data("blk", 64);
  g.insert_task("READER", "noop", {}, [] {}, {{d, rt::Access::Read}});
  rt::ThreadPoolExecutor ex(2);
  ex.set_verify_dag(false);
  ex.set_analyze_dag(true);
  EXPECT_THROW(ex.run(g), rt::DagUseBeforeDefError);
  ex.set_analyze_dag(false);
  EXPECT_NO_THROW(ex.run(g));
}

TEST(DagDataflow, ReleaseHookFiresExactlyOncePerHandleOnAllExecutors) {
  for (int which = 0; which < 3; ++which) {
    rt::TaskGraph g;
    auto in = g.register_data("in", 8);
    auto mid = g.register_data("mid", 8);
    auto out = g.register_data("out", 8);
    g.mark_input(in);
    g.mark_output(out);
    g.insert_task("A", "noop", {}, [] {},
                  {{in, rt::Access::Read}, {mid, rt::Access::Write}});
    for (int i = 0; i < 4; ++i)
      g.insert_task("R" + std::to_string(i), "noop", {}, [] {},
                    {{mid, rt::Access::Read}});
    g.insert_task("Z", "noop", {}, [] {},
                  {{mid, rt::Access::Read}, {out, rt::Access::Write}});

    auto fires = std::make_shared<std::array<std::atomic<int>, 3>>();
    for (auto& f : *fires) f.store(0);
    g.set_release_hook([fires](rt::DataId d) {
      (*fires)[static_cast<std::size_t>(d)].fetch_add(1);
    });

    switch (which) {
      case 0: {
        rt::ThreadPoolExecutor ex(3);
        ex.run(g);
        break;
      }
      case 1: {
        rt::PriorityExecutor ex(3);
        ex.run(g);
        break;
      }
      default: {
        rt::ForkJoinExecutor ex(3);
        ex.run(g);
        break;
      }
    }
    EXPECT_EQ((*fires)[static_cast<std::size_t>(in)].load(), 1) << which;
    EXPECT_EQ((*fires)[static_cast<std::size_t>(mid)].load(), 1) << which;
    EXPECT_EQ((*fires)[static_cast<std::size_t>(out)].load(), 0) << which;
  }
}

// ------------------------------------------------- production DAGs run clean

TEST(DagDataflow, ProductionEmittersAnalyzeClean) {
  Problem p(512, 64);
  fmt::HSSOptions opts{.leaf_size = 64, .max_rank = 16, .tol = 0.0,
                       .sample_cols = 64};

  rt::TaskGraph build_graph;
  auto build_dag = fmt::emit_hss_build_dag(*p.acc, opts, build_graph);
  rt::DagDataflowReport build_rep = rt::analyze_dag(build_graph);
  EXPECT_TRUE(build_rep.warnings.empty());
  EXPECT_GT(build_rep.stats.peak_bytes_serial, 0);
  EXPECT_GE(build_rep.stats.peak_bytes_any, build_rep.stats.peak_bytes_serial);

  rt::ThreadPoolExecutor ex(2);
  ex.run(build_graph);
  fmt::HSSMatrix h = fmt::extract_built_hss(build_dag);

  rt::TaskGraph factor_graph;
  auto factor_dag = ulv::emit_hss_ulv_dag(h, factor_graph, /*with_work=*/true);
  rt::DagDataflowReport factor_rep = rt::analyze_dag(factor_graph);
  EXPECT_TRUE(factor_rep.warnings.empty());
  ex.run(factor_graph);
  ulv::HSSULV f = ulv::extract_factorization(factor_dag);

  rt::TaskGraph solve_graph;
  std::vector<double> b(512, 1.0);
  auto solve_dag = ulv::emit_hss_solve_dag(f, b, solve_graph);
  EXPECT_TRUE(rt::analyze_dag(solve_graph).warnings.empty());
  (void)solve_dag;
}

TEST(DagDataflow, CostingDagsAnalyzeClean) {
  fmt::HSSMatrix hss_skel = fmt::make_hss_skeleton(2048, 128, 20);
  rt::TaskGraph ulv_graph;
  (void)ulv::emit_hss_ulv_dag(hss_skel, ulv_graph, /*with_work=*/false);
  EXPECT_TRUE(rt::analyze_dag(ulv_graph).warnings.empty());

  fmt::BLRMatrix blr_skel = fmt::make_blr_skeleton(1024, 128, 16);
  rt::TaskGraph blr_graph;
  (void)blrchol::emit_blr_cholesky_dag(blr_skel, blr_graph, /*with_work=*/false);
  EXPECT_TRUE(rt::analyze_dag(blr_graph).warnings.empty());

  rt::TaskGraph dense_graph;
  (void)blrchol::emit_dense_cholesky_dag({}, 1024, 128, dense_graph,
                                         /*with_work=*/false);
  EXPECT_TRUE(rt::analyze_dag(dense_graph).warnings.empty());
}

TEST(DagDataflow, Blr2UlvDagAnalyzesClean) {
  Problem p(512, 128);
  fmt::HSSOptions opts{.leaf_size = 128, .max_rank = 16, .tol = 0.0,
                       .sample_cols = 64};
  fmt::BLR2Matrix a = fmt::build_blr2(*p.acc, opts);
  rt::TaskGraph g;
  (void)ulv::emit_blr2_ulv_dag(a, g, /*with_work=*/false);
  EXPECT_TRUE(rt::analyze_dag(g).warnings.empty());
}

// ----------------------------------------------- per-rank usage vs distsim

TEST(DagDataflow, RankTrafficMatchesDistsimCountMessages) {
  fmt::HSSMatrix skel = fmt::make_hss_skeleton(4096, 256, 32);
  rt::TaskGraph graph;
  auto dag = ulv::emit_hss_ulv_dag(skel, graph, /*with_work=*/false);
  distsim::Mapping map = distsim::map_hss_row_cyclic(dag, graph, 4);

  rt::RankUsage usage = rt::analyze_dag_ranks(graph, map.task_owner, 4);
  distsim::CommStats comm = distsim::count_messages(graph, map);
  EXPECT_EQ(usage.cross_messages, comm.messages);
  EXPECT_EQ(usage.cross_bytes, comm.bytes);

  std::int64_t sent = 0;
  for (auto s : usage.sent_bytes) sent += s;
  EXPECT_EQ(sent, usage.cross_bytes);
  // Every rank holds something; replicated copies push the total footprint
  // to at least the touched bytes.
  std::int64_t foot = 0;
  for (auto f : usage.footprint_bytes) {
    EXPECT_GT(f, 0);
    foot += f;
  }
  rt::DagDataflowReport rep = rt::analyze_dag(graph);
  EXPECT_GE(foot, rep.stats.data_bytes);
}

// ------------------------------------- seeded mutations, real N=8192 builder

TEST(DagDataflow, SeededMutationsFlaggedOnRealBuilderDag) {
  Problem p(8192, 256);
  fmt::HSSOptions opts{.leaf_size = 256, .max_rank = 40, .tol = 0.0,
                       .sample_cols = 64};

  // Intact DAG: clean, and analysis stays in the ms-scale budget.
  {
    rt::TaskGraph g;
    (void)fmt::emit_hss_build_dag(*p.acc, opts, g);
    WallTimer t;
    rt::DagDataflowReport rep = rt::analyze_dag(g);
    const double ms = t.seconds() * 1e3;
    EXPECT_TRUE(rep.warnings.empty());
    EXPECT_LT(ms, 250.0) << "analyzer left the ms-scale budget";
  }

  // Mutation 1: drop COMPRESS(5,3)'s write of node(5,3). The parent
  // TRANSFER(4,1) now reads a handle no task writes.
  {
    rt::TaskGraph g;
    auto dag = fmt::emit_hss_build_dag(*p.acc, opts, g);
    const rt::DataId node53 = dag.node_data[5][3];
    ASSERT_TRUE(g.drop_access_for_test(find_task(g, "COMPRESS(5,3)"), node53));
    try {
      rt::analyze_dag(g);
      FAIL() << "dropped def not flagged";
    } catch (const rt::DagUseBeforeDefError& e) {
      EXPECT_EQ(e.task_name, "TRANSFER(4,1)");
      EXPECT_EQ(e.resource_name, "node(5,3)");
      EXPECT_EQ(e.resource, node53);
    }
  }

  // Mutation 2: drop MERGE_SAMPLE(1,0)'s read of node(1,0). Its producer
  // TRANSFER(1,0) becomes a dead store (level-1 nodes have no parent
  // TRANSFER; the sibling coupling was the only consumer).
  {
    rt::TaskGraph g;
    auto dag = fmt::emit_hss_build_dag(*p.acc, opts, g);
    const rt::DataId node10 = dag.node_data[1][0];
    ASSERT_TRUE(g.drop_access_for_test(find_task(g, "MERGE_SAMPLE(1,0)"), node10));
    rt::DagDataflowReport rep = rt::analyze_dag(g);
    ASSERT_EQ(count_warnings(rep, rt::DagWarningKind::DeadStore), 1);
    for (const auto& w : rep.warnings)
      if (w.kind == rt::DagWarningKind::DeadStore) {
        EXPECT_EQ(w.task_name, "TRANSFER(1,0)");
        EXPECT_EQ(w.resource_name, "node(1,0)");
        EXPECT_EQ(w.resource, node10);
      }
  }
}

// ------------------------------------------------------------- env gating

TEST(DagDataflow, EnvGateControlsDefault) {
  setenv("HATRIX_ANALYZE_DAG", "0", 1);
  EXPECT_FALSE(rt::analyze_dag_default());
  setenv("HATRIX_ANALYZE_DAG", "1", 1);
  EXPECT_TRUE(rt::analyze_dag_default());
  unsetenv("HATRIX_ANALYZE_DAG");
#ifdef NDEBUG
  EXPECT_FALSE(rt::analyze_dag_default());
#else
  EXPECT_TRUE(rt::analyze_dag_default());
#endif
}

}  // namespace
}  // namespace hatrix
