#pragma once
/// \file tile_cholesky.hpp
/// \brief Dense tile (right-looking) Cholesky — the DPLASMA/SLATE baseline.
///
/// The classic POTRF/TRSM/SYRK/GEMM tile algorithm whose DAG the paper uses
/// to introduce runtime systems (Fig. 6). O(N^3) compute, O(N^3)
/// communication volume when distributed (Table 1, rows 1-2).

#include "linalg/matrix.hpp"

namespace hatrix::blrchol {

using la::index_t;
using la::Matrix;

/// In-place lower tile Cholesky of a dense SPD matrix with square tiles of
/// size `tile` (last tile may be smaller). The strict upper triangle is
/// zeroed on output, matching la::potrf. Throws if not SPD.
void tile_cholesky(la::MatrixView a, index_t tile);

/// Tile counts for a given matrix/tile size (helper for DAG builders).
index_t num_tiles(index_t n, index_t tile);

}  // namespace hatrix::blrchol
