// Tests for the ULV factorizations (Alg. 1 and Alg. 2): exactness on the
// compressed operator, solve accuracy (Eq. 19), SPD rejection, edge cases.
#include <gtest/gtest.h>

#include <cmath>

#include "format/accessor.hpp"
#include "format/blr2.hpp"
#include "format/hss_builder.hpp"
#include "geometry/cluster_tree.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "ulv/blr2_ulv.hpp"
#include "ulv/hss_ulv.hpp"

namespace hatrix::ulv {
namespace {

struct Problem {
  geom::Domain domain;
  std::unique_ptr<geom::ClusterTree> tree;
  std::unique_ptr<kernels::Kernel> kernel;
  std::unique_ptr<kernels::KernelMatrix> km;

  Problem(la::index_t n, la::index_t leaf, const std::string& kname = "yukawa") {
    domain = geom::grid2d(n);
    tree = std::make_unique<geom::ClusterTree>(domain, leaf);
    kernel = kernels::make_kernel(kname);
    km = std::make_unique<kernels::KernelMatrix>(*kernel, tree->points());
  }
};

// Reference: dense solve of the *reconstructed* compressed matrix. ULV is an
// exact factorization of the compressed operator, so these must agree to
// roundoff regardless of compression quality.
std::vector<double> dense_reference_solve(const Matrix& rec,
                                          const std::vector<double>& b) {
  Matrix rhs(static_cast<index_t>(b.size()), 1);
  for (index_t i = 0; i < rhs.rows(); ++i) rhs(i, 0) = b[static_cast<std::size_t>(i)];
  Matrix x = la::solve_spd(rec.view(), rhs.view());
  std::vector<double> out(b.size());
  for (index_t i = 0; i < x.rows(); ++i) out[static_cast<std::size_t>(i)] = x(i, 0);
  return out;
}

double vec_rel_err(const std::vector<double>& a, const std::vector<double>& b) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - b[i]) * (a[i] - b[i]);
    den += a[i] * a[i];
  }
  return std::sqrt(num / den);
}

class HssUlvKernels : public ::testing::TestWithParam<const char*> {};

TEST_P(HssUlvKernels, SolveMatchesDenseSolveOfCompressedOperator) {
  Problem p(1024, 128, GetParam());
  fmt::KernelAccessor acc(*p.km);
  auto h = fmt::build_hss(acc, {.leaf_size = 128, .max_rank = 40, .tol = 0.0});
  auto f = HSSULV::factorize(h);
  Rng rng(71);
  std::vector<double> b = rng.normal_vector(1024);
  auto x_ulv = f.solve(b);
  auto x_ref = dense_reference_solve(h.dense(), b);
  EXPECT_LT(vec_rel_err(x_ref, x_ulv), 1e-9) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PaperKernels, HssUlvKernels,
                         ::testing::Values("laplace2d", "yukawa", "matern"));

TEST(HssUlv, SolveErrorEq19IsSmall) {
  Problem p(2048, 256, "yukawa");
  fmt::KernelAccessor acc(*p.km);
  auto h = fmt::build_hss(acc, {.leaf_size = 256, .max_rank = 50, .tol = 0.0});
  auto f = HSSULV::factorize(h);
  Rng rng(72);
  std::vector<double> b = rng.normal_vector(2048);
  EXPECT_LT(ulv_solve_error(h, f, b), 1e-10);
}

TEST(HssUlv, DeepTreeMultipleLevels) {
  Problem p(1024, 64, "matern");  // 4 levels
  fmt::KernelAccessor acc(*p.km);
  auto h = fmt::build_hss(acc, {.leaf_size = 64, .max_rank = 30, .tol = 0.0});
  EXPECT_GE(h.max_level(), 4);
  auto f = HSSULV::factorize(h);
  Rng rng(73);
  std::vector<double> b = rng.normal_vector(1024);
  auto x_ulv = f.solve(b);
  auto x_ref = dense_reference_solve(h.dense(), b);
  EXPECT_LT(vec_rel_err(x_ref, x_ulv), 1e-9);
}

TEST(HssUlv, NonPowerOfTwoSize) {
  Problem p(900, 100, "yukawa");
  fmt::KernelAccessor acc(*p.km);
  auto h = fmt::build_hss(acc, {.leaf_size = 100, .max_rank = 30, .tol = 0.0});
  auto f = HSSULV::factorize(h);
  Rng rng(74);
  std::vector<double> b = rng.normal_vector(900);
  auto x_ulv = f.solve(b);
  auto x_ref = dense_reference_solve(h.dense(), b);
  EXPECT_LT(vec_rel_err(x_ref, x_ulv), 1e-9);
}

TEST(HssUlv, FullRankBasesStillWork) {
  // max_rank >= leaf size: no compression, complement is empty everywhere at
  // the leaves; the algorithm must degrade gracefully.
  Problem p(256, 64, "yukawa");
  fmt::KernelAccessor acc(*p.km);
  auto h = fmt::build_hss(acc, {.leaf_size = 64, .max_rank = 64, .tol = 0.0});
  auto f = HSSULV::factorize(h);
  Rng rng(75);
  std::vector<double> b = rng.normal_vector(256);
  auto x_ulv = f.solve(b);
  auto x_ref = dense_reference_solve(h.dense(), b);
  EXPECT_LT(vec_rel_err(x_ref, x_ulv), 1e-9);
}

TEST(HssUlv, DegenerateSingleLeaf) {
  Problem p(50, 64, "matern");
  fmt::KernelAccessor acc(*p.km);
  auto h = fmt::build_hss(acc, {.leaf_size = 64, .max_rank = 10, .tol = 0.0});
  EXPECT_EQ(h.max_level(), 0);
  auto f = HSSULV::factorize(h);
  Rng rng(76);
  std::vector<double> b = rng.normal_vector(50);
  auto x = f.solve(b);
  auto x_ref = dense_reference_solve(h.dense(), b);
  EXPECT_LT(vec_rel_err(x_ref, x), 1e-10);
}

TEST(HssUlv, RejectsIndefiniteMatrix) {
  // Shift the kernel matrix down until it is indefinite; ULV must throw.
  Problem p(256, 64, "matern");
  Matrix a = p.km->dense();
  for (index_t i = 0; i < a.rows(); ++i) a(i, i) -= 3.0;
  fmt::DenseAccessor acc(a.view());
  auto h = fmt::build_hss(acc, {.leaf_size = 64, .max_rank = 64, .tol = 0.0});
  EXPECT_THROW(HSSULV::factorize(h), Error);
}

TEST(HssUlv, SolveRejectsWrongLength) {
  Problem p(256, 64);
  fmt::KernelAccessor acc(*p.km);
  auto h = fmt::build_hss(acc, {.leaf_size = 64, .max_rank = 20, .tol = 0.0});
  auto f = HSSULV::factorize(h);
  std::vector<double> bad(100, 1.0);
  EXPECT_THROW((void)f.solve(bad), Error);
}

TEST(HssUlv, MemoryBytesPositiveAndBounded) {
  Problem p(1024, 128);
  fmt::KernelAccessor acc(*p.km);
  auto h = fmt::build_hss(acc, {.leaf_size = 128, .max_rank = 30, .tol = 0.0});
  auto f = HSSULV::factorize(h);
  EXPECT_GT(f.memory_bytes(), 0);
  // Factor memory stays below the dense matrix footprint.
  EXPECT_LT(f.memory_bytes(), 1024 * 1024 * 8);
}

TEST(HssUlv, SampledConstructionSolvesAccurately) {
  Problem p(2048, 256, "matern");
  fmt::KernelAccessor acc(*p.km);
  auto h = fmt::build_hss(
      acc, {.leaf_size = 256, .max_rank = 60, .tol = 0.0, .sample_cols = 500});
  auto f = HSSULV::factorize(h);
  Rng rng(77);
  std::vector<double> b = rng.normal_vector(2048);
  EXPECT_LT(ulv_solve_error(h, f, b), 1e-9);
}

class Blr2UlvKernels : public ::testing::TestWithParam<const char*> {};

TEST_P(Blr2UlvKernels, SolveMatchesDenseSolveOfCompressedOperator) {
  Problem p(1024, 128, GetParam());
  fmt::KernelAccessor acc(*p.km);
  auto m = fmt::build_blr2(acc, {.leaf_size = 128, .max_rank = 40, .tol = 0.0});
  auto f = BLR2ULV::factorize(m);
  Rng rng(78);
  std::vector<double> b = rng.normal_vector(1024);
  auto x_ulv = f.solve(b);
  auto x_ref = dense_reference_solve(m.dense(), b);
  EXPECT_LT(vec_rel_err(x_ref, x_ulv), 1e-9) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PaperKernels, Blr2UlvKernels,
                         ::testing::Values("laplace2d", "yukawa", "matern"));

TEST(Blr2Ulv, SolveErrorAgainstTrueMatrix) {
  Problem p(1024, 128, "yukawa");
  fmt::KernelAccessor acc(*p.km);
  auto m = fmt::build_blr2(acc, {.leaf_size = 128, .max_rank = 60, .tol = 0.0});
  auto f = BLR2ULV::factorize(m);
  Rng rng(79);
  std::vector<double> b = rng.normal_vector(1024);
  std::vector<double> ab;
  m.matvec(b, ab);
  auto x = f.solve(ab);
  EXPECT_LT(vec_rel_err(b, x), 1e-10);
}

TEST(Blr2Ulv, RejectsIndefinite) {
  Problem p(256, 64, "matern");
  Matrix a = p.km->dense();
  for (index_t i = 0; i < a.rows(); ++i) a(i, i) -= 3.0;
  fmt::DenseAccessor acc(a.view());
  auto m = fmt::build_blr2(acc, {.leaf_size = 64, .max_rank = 64, .tol = 0.0});
  EXPECT_THROW(BLR2ULV::factorize(m), Error);
}

TEST(Blr2Ulv, HssAndBlr2AgreeOnTwoLevelProblem) {
  // With leaf = n/2 the HSS has one level: BLR2 with 2 blocks must give the
  // same compressed operator and the same solution.
  Problem p(512, 256, "yukawa");
  fmt::KernelAccessor acc(*p.km);
  fmt::HSSOptions opts{.leaf_size = 256, .max_rank = 50, .tol = 0.0};
  auto h = fmt::build_hss(acc, opts);
  auto m = fmt::build_blr2(acc, opts);
  ASSERT_EQ(h.max_level(), 1);
  ASSERT_EQ(m.num_blocks(), 2);
  auto fh = HSSULV::factorize(h);
  auto fm = BLR2ULV::factorize(m);
  Rng rng(80);
  std::vector<double> b = rng.normal_vector(512);
  auto xh = fh.solve(b);
  auto xm = fm.solve(b);
  // Bases may differ by sign/rotation, but the compressed operators should
  // approximate the same matrix; compare both against the true solve.
  auto x_true = dense_reference_solve(p.km->dense(), b);
  EXPECT_LT(vec_rel_err(x_true, xh), 1e-4);
  EXPECT_LT(vec_rel_err(x_true, xm), 1e-4);
}

TEST(UlvCommon, PartialFactorReconstructs) {
  // After partial factorization, [L_RR 0; L_SR I] [L_RRᵀ L_SRᵀ; 0 SS_schur]
  // must reconstruct the rotated diagonal [RR SRᵀ; SR SS].
  Rng rng(81);
  const index_t m = 32, k = 8;
  Matrix d = Matrix::random_spd(rng, m);
  Matrix g = Matrix::random_normal(rng, m, k);
  auto qr_g = la::qr(g.view());
  auto res = partial_factor(d.view(), qr_g.q.view());
  const auto& f = res.factor;

  Matrix rr = la::matmul(f.l_rr.view(), f.l_rr.view(), la::Trans::No, la::Trans::Yes);
  Matrix rr_ref(m - k, m - k);
  Matrix dq = la::matmul(d.view(), f.q_comp.view());
  la::gemm(1.0, f.q_comp.view(), la::Trans::Yes, dq.view(), la::Trans::No, 0.0,
           rr_ref.view());
  EXPECT_LT(la::rel_error(rr_ref.view(), rr.view()), 1e-11);

  // SR = L_SR L_RRᵀ.
  Matrix sr = la::matmul(f.l_sr.view(), f.l_rr.view(), la::Trans::No, la::Trans::Yes);
  Matrix sr_ref = la::matmul(qr_g.q.view(), dq.view(), la::Trans::Yes, la::Trans::No);
  EXPECT_LT(la::rel_error(sr_ref.view(), sr.view()), 1e-11);

  // SS = schur + L_SR L_SRᵀ.
  Matrix ss = Matrix::from_view(res.ss_schur.view());
  la::syrk(1.0, f.l_sr.view(), la::Trans::No, 1.0, ss.view());
  Matrix du = la::matmul(d.view(), qr_g.q.view());
  Matrix ss_ref = la::matmul(qr_g.q.view(), du.view(), la::Trans::Yes, la::Trans::No);
  EXPECT_LT(la::rel_error(ss_ref.view(), ss.view()), 1e-11);
}

TEST(UlvCommon, ComplementIsOrthogonalToBasis) {
  Rng rng(82);
  Matrix g = Matrix::random_normal(rng, 40, 10);
  auto qr_g = la::qr(g.view());
  Matrix q = la::orth_complement(qr_g.q.view());
  ASSERT_EQ(q.cols(), 30);
  Matrix cross = la::matmul(q.view(), qr_g.q.view(), la::Trans::Yes, la::Trans::No);
  EXPECT_LT(la::norm_max(cross.view()), 1e-13);
  Matrix qtq = la::matmul(q.view(), q.view(), la::Trans::Yes, la::Trans::No);
  EXPECT_LT(la::rel_error(Matrix::identity(30).view(), qtq.view()), 1e-12);
}

}  // namespace
}  // namespace hatrix::ulv
