#include "runtime/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace hatrix::rt {

std::string validate_trace(const TaskGraph& graph, const ExecutionStats& stats) {
  const auto n = static_cast<std::size_t>(graph.num_tasks());
  std::vector<int> runs(n, 0);
  std::vector<double> end_time(n, 0.0);
  for (const auto& tr : stats.traces) {
    if (tr.task < 0 || static_cast<std::size_t>(tr.task) >= n)
      return "trace references unknown task " + std::to_string(tr.task);
    ++runs[static_cast<std::size_t>(tr.task)];
    end_time[static_cast<std::size_t>(tr.task)] = tr.end;
    if (tr.end < tr.start) return "task " + std::to_string(tr.task) + " ends before it starts";
  }
  for (std::size_t t = 0; t < n; ++t)
    if (runs[t] != 1)
      return "task " + std::to_string(t) + " ran " + std::to_string(runs[t]) +
             " times";

  std::vector<double> start_time(n, 0.0);
  for (const auto& tr : stats.traces)
    start_time[static_cast<std::size_t>(tr.task)] = tr.start;
  for (std::size_t t = 0; t < n; ++t) {
    for (TaskId s : graph.successors()[t]) {
      // Allow a small clock-resolution slack.
      if (start_time[static_cast<std::size_t>(s)] + 1e-9 < end_time[t])
        return "task " + std::to_string(s) + " started before predecessor " +
               std::to_string(t) + " finished";
    }
  }
  return "";
}

std::string to_chrome_trace(const TaskGraph& graph, const ExecutionStats& stats) {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const auto& tr : stats.traces) {
    if (tr.task < 0) continue;
    const Task& task = graph.tasks()[static_cast<std::size_t>(tr.task)];
    if (!first) out << ",";
    first = false;
    // Durations in microseconds, as the trace-event format expects.
    out << "{\"name\":\"" << task.name << "\",\"cat\":\"" << task.kind
        << "\",\"ph\":\"X\",\"ts\":" << tr.start * 1e6
        << ",\"dur\":" << tr.duration() * 1e6 << ",\"pid\":0,\"tid\":" << tr.worker
        << "}";
  }
  out << "]";
  return out.str();
}

std::string to_dot(const TaskGraph& graph) {
  // Stable colors per kind so POTRF/TRSM/... are visually grouped as in the
  // paper's Fig. 6.
  static const char* palette[] = {"lightblue", "lightgreen", "salmon",
                                  "gold",      "plum",       "lightgray"};
  std::map<std::string, const char*> color;
  std::ostringstream out;
  out << "digraph tasks {\n  rankdir=TB;\n";
  for (const auto& t : graph.tasks()) {
    if (color.find(t.kind) == color.end())
      color[t.kind] = palette[color.size() % 6];
    out << "  t" << t.id << " [label=\"" << (t.name.empty() ? t.kind : t.name)
        << "\",style=filled,fillcolor=" << color[t.kind] << "];\n";
  }
  for (std::size_t u = 0; u < graph.tasks().size(); ++u)
    for (TaskId s : graph.successors()[u]) out << "  t" << u << " -> t" << s << ";\n";
  out << "}\n";
  return out.str();
}

}  // namespace hatrix::rt
