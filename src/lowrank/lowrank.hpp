#pragma once
/// \file lowrank.hpp
/// \brief Low-rank block representation A ≈ U·Vᵀ.
///
/// The unit of storage for admissible blocks in the BLR format (LORAPO
/// baseline) and the output type of every compressor.

#include "linalg/matrix.hpp"

namespace hatrix::lr {

using la::index_t;
using la::Matrix;

/// A low-rank factorization U (m x k) times Vᵀ (k x n).
struct LowRank {
  Matrix u;
  Matrix v;

  LowRank() = default;
  LowRank(Matrix u_, Matrix v_);

  [[nodiscard]] index_t rows() const { return u.rows(); }
  [[nodiscard]] index_t cols() const { return v.rows(); }
  [[nodiscard]] index_t rank() const { return u.cols(); }

  /// Storage footprint in bytes (used by communication models).
  [[nodiscard]] std::int64_t bytes() const { return u.bytes() + v.bytes(); }

  /// Demote both factors to FP32 backing storage (halves bytes()); see
  /// Matrix::demote_storage. dense()/matvec promote on the fly, but code
  /// that mutates the factors in place (the BLR Cholesky's lr_add_round)
  /// requires FP64 tiles and fails loudly on demoted ones.
  void demote_storage();

  /// True when the factors are FP32-demoted.
  [[nodiscard]] bool is_f32() const { return u.is_f32() || v.is_f32(); }

  /// Materialize U·Vᵀ.
  [[nodiscard]] Matrix dense() const;

  /// y = alpha * (U Vᵀ) x + beta * y  in O((m+n)k).
  void matvec(double alpha, const double* x, double beta, double* y) const;

  /// y = alpha * (U Vᵀ)ᵀ x + beta * y.
  void matvec_trans(double alpha, const double* x, double beta, double* y) const;
};

/// Relative Frobenius error of the approximation against a dense reference.
double approx_error(const LowRank& lr, la::ConstMatrixView reference);

}  // namespace hatrix::lr
