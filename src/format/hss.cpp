#include "format/hss.hpp"

#include "common/error.hpp"
#include "linalg/blas.hpp"

namespace hatrix::fmt {

const char* precision_name(PrecisionMode p) {
  return p == PrecisionMode::MixedFP32 ? "mixed-fp32" : "fp64";
}

HSSMatrix::HSSMatrix(index_t n, int max_level) : n_(n), max_level_(max_level) {
  HATRIX_CHECK(n > 0 && max_level >= 0, "bad HSS dimensions");
  nodes_.resize(static_cast<std::size_t>(max_level) + 1);
  couplings_.resize(static_cast<std::size_t>(max_level) + 1);
  for (int l = 0; l <= max_level; ++l) {
    nodes_[static_cast<std::size_t>(l)].resize(static_cast<std::size_t>(num_nodes(l)));
    if (l >= 1)
      couplings_[static_cast<std::size_t>(l)].resize(
          static_cast<std::size_t>(num_pairs(l)));
  }
}

HSSMatrix::Node& HSSMatrix::node(int level, index_t i) {
  HATRIX_CHECK(level >= 0 && level <= max_level_, "level out of range");
  HATRIX_CHECK(i >= 0 && i < num_nodes(level), "node out of range");
  return nodes_[static_cast<std::size_t>(level)][static_cast<std::size_t>(i)];
}

const HSSMatrix::Node& HSSMatrix::node(int level, index_t i) const {
  return const_cast<HSSMatrix*>(this)->node(level, i);
}

Matrix& HSSMatrix::coupling(int level, index_t pair) {
  HATRIX_CHECK(level >= 1 && level <= max_level_, "coupling level out of range");
  HATRIX_CHECK(pair >= 0 && pair < num_pairs(level), "coupling pair out of range");
  return couplings_[static_cast<std::size_t>(level)][static_cast<std::size_t>(pair)];
}

const Matrix& HSSMatrix::coupling(int level, index_t pair) const {
  return const_cast<HSSMatrix*>(this)->coupling(level, pair);
}

void HSSMatrix::matvec(const std::vector<double>& x, std::vector<double>& y) const {
  HATRIX_CHECK(static_cast<index_t>(x.size()) == n_, "matvec dimension mismatch");
  y.assign(static_cast<std::size_t>(n_), 0.0);

  const int L = max_level_;
  // Up-sweep: xc[l][i] = Ũ_{l,i}ᵀ x restricted to the node's interval.
  std::vector<std::vector<std::vector<double>>> xc(static_cast<std::size_t>(L) + 1);
  for (int l = L; l >= 0; --l) {
    xc[static_cast<std::size_t>(l)].resize(static_cast<std::size_t>(num_nodes(l)));
    for (index_t i = 0; i < num_nodes(l); ++i) {
      const Node& nd = node(l, i);
      if (nd.basis.empty() && nd.rank == 0) continue;
      auto& out = xc[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)];
      out.assign(static_cast<std::size_t>(nd.rank), 0.0);
      // F64Block promotes FP32-demoted bases/couplings on the fly (free for
      // FP64 storage); the dense diagonals are always FP64.
      la::F64Block ub(nd.basis);
      if (l == L) {
        la::gemv(1.0, ub.view(), la::Trans::Yes,
                 x.data() + nd.begin, 0.0, out.data());
      } else {
        const auto& c0 = xc[static_cast<std::size_t>(l) + 1][static_cast<std::size_t>(2 * i)];
        const auto& c1 = xc[static_cast<std::size_t>(l) + 1][static_cast<std::size_t>(2 * i + 1)];
        std::vector<double> stacked;
        stacked.reserve(c0.size() + c1.size());
        stacked.insert(stacked.end(), c0.begin(), c0.end());
        stacked.insert(stacked.end(), c1.begin(), c1.end());
        la::gemv(1.0, ub.view(), la::Trans::Yes, stacked.data(), 0.0,
                 out.data());
      }
    }
  }

  // Couple siblings: yc[l][2t] += Sᵀ xc[2t+1], yc[l][2t+1] += S xc[2t].
  std::vector<std::vector<std::vector<double>>> yc(static_cast<std::size_t>(L) + 1);
  for (int l = 0; l <= L; ++l) {
    yc[static_cast<std::size_t>(l)].resize(static_cast<std::size_t>(num_nodes(l)));
    for (index_t i = 0; i < num_nodes(l); ++i)
      yc[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)].assign(
          static_cast<std::size_t>(node(l, i).rank), 0.0);
  }
  for (int l = 1; l <= L; ++l) {
    for (index_t t = 0; t < num_pairs(l); ++t) {
      const Matrix& s = coupling(l, t);
      if (s.empty()) continue;
      const auto& x0 = xc[static_cast<std::size_t>(l)][static_cast<std::size_t>(2 * t)];
      const auto& x1 = xc[static_cast<std::size_t>(l)][static_cast<std::size_t>(2 * t + 1)];
      auto& y0 = yc[static_cast<std::size_t>(l)][static_cast<std::size_t>(2 * t)];
      auto& y1 = yc[static_cast<std::size_t>(l)][static_cast<std::size_t>(2 * t + 1)];
      la::F64Block sb(s);
      la::gemv(1.0, sb.view(), la::Trans::No, x0.data(), 1.0, y1.data());
      la::gemv(1.0, sb.view(), la::Trans::Yes, x1.data(), 1.0, y0.data());
    }
  }

  // Down-sweep: push coupled contributions back through the bases, then add
  // the dense diagonals at the leaves.
  for (int l = 0; l < L; ++l) {
    for (index_t i = 0; i < num_nodes(l); ++i) {
      const Node& nd = node(l, i);
      auto& self = yc[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)];
      if (self.empty() || nd.basis.empty()) continue;
      std::vector<double> stacked(static_cast<std::size_t>(nd.basis.rows()), 0.0);
      la::gemv(1.0, la::F64Block(nd.basis).view(), la::Trans::No, self.data(),
               0.0, stacked.data());
      auto& c0 = yc[static_cast<std::size_t>(l) + 1][static_cast<std::size_t>(2 * i)];
      auto& c1 = yc[static_cast<std::size_t>(l) + 1][static_cast<std::size_t>(2 * i + 1)];
      for (std::size_t k = 0; k < c0.size(); ++k) c0[k] += stacked[k];
      for (std::size_t k = 0; k < c1.size(); ++k) c1[k] += stacked[c0.size() + k];
    }
  }
  for (index_t i = 0; i < num_nodes(L); ++i) {
    const Node& nd = node(L, i);
    const auto& self = yc[static_cast<std::size_t>(L)][static_cast<std::size_t>(i)];
    if (!self.empty())
      la::gemv(1.0, la::F64Block(nd.basis).view(), la::Trans::No, self.data(),
               1.0, y.data() + nd.begin);
    la::gemv(1.0, nd.diag.view(), la::Trans::No, x.data() + nd.begin, 1.0,
             y.data() + nd.begin);
  }
}

Matrix HSSMatrix::full_basis(int level, index_t i) const {
  const Node& nd = node(level, i);
  if (level == max_level_) return nd.basis.f64_copy();
  Matrix b0 = full_basis(level + 1, 2 * i);
  Matrix b1 = full_basis(level + 1, 2 * i + 1);
  HATRIX_CHECK(!nd.basis.empty(), "internal node is missing its transfer basis");
  Matrix out(nd.block_size(), nd.rank);
  // blockdiag(b0, b1) * W, with W split into its top and bottom row groups.
  la::F64Block wb(nd.basis);
  la::gemm(1.0, b0.view(), la::Trans::No,
           wb.view().block(0, 0, b0.cols(), nd.rank), la::Trans::No, 0.0,
           out.block(0, 0, b0.rows(), nd.rank));
  la::gemm(1.0, b1.view(), la::Trans::No,
           wb.view().block(b0.cols(), 0, b1.cols(), nd.rank), la::Trans::No, 0.0,
           out.block(b0.rows(), 0, b1.rows(), nd.rank));
  return out;
}

Matrix HSSMatrix::dense() const {
  Matrix a(n_, n_);
  const int L = max_level_;
  for (index_t i = 0; i < num_nodes(L); ++i) {
    const Node& nd = node(L, i);
    la::copy(nd.diag.view(), a.block(nd.begin, nd.begin, nd.block_size(), nd.block_size()));
  }
  for (int l = 1; l <= L; ++l) {
    for (index_t t = 0; t < num_pairs(l); ++t) {
      const Matrix& s = coupling(l, t);
      if (s.empty()) continue;
      const Node& n0 = node(l, 2 * t);
      const Node& n1 = node(l, 2 * t + 1);
      Matrix u0 = full_basis(l, 2 * t);
      Matrix u1 = full_basis(l, 2 * t + 1);
      // A(I1, I0) = Ũ1 S Ũ0ᵀ ; A(I0, I1) is its transpose.
      Matrix us = la::matmul(u1.view(), la::F64Block(s).view());
      Matrix lower = la::matmul(us.view(), u0.view(), la::Trans::No, la::Trans::Yes);
      la::copy(lower.view(), a.block(n1.begin, n0.begin, n1.block_size(), n0.block_size()));
      Matrix upper = la::transpose(lower.view());
      la::copy(upper.view(), a.block(n0.begin, n1.begin, n0.block_size(), n1.block_size()));
    }
  }
  return a;
}

index_t HSSMatrix::max_rank_used() const {
  index_t r = 0;
  for (int l = 0; l <= max_level_; ++l)
    for (index_t i = 0; i < num_nodes(l); ++i) r = std::max(r, node(l, i).rank);
  return r;
}

std::int64_t HSSMatrix::memory_bytes() const {
  std::int64_t total = 0;
  for (int l = 0; l <= max_level_; ++l) {
    for (index_t i = 0; i < num_nodes(l); ++i) {
      const Node& nd = node(l, i);
      total += nd.basis.bytes() + nd.diag.bytes();
    }
    if (l >= 1)
      for (index_t t = 0; t < num_pairs(l); ++t) total += coupling(l, t).bytes();
  }
  return total;
}

std::int64_t HSSMatrix::lowrank_bytes() const {
  std::int64_t total = 0;
  for (int l = 0; l <= max_level_; ++l) {
    for (index_t i = 0; i < num_nodes(l); ++i) total += node(l, i).basis.bytes();
    if (l >= 1)
      for (index_t t = 0; t < num_pairs(l); ++t) total += coupling(l, t).bytes();
  }
  return total;
}

void HSSMatrix::demote_lowrank() {
  for (int l = 0; l <= max_level_; ++l) {
    for (index_t i = 0; i < num_nodes(l); ++i) node(l, i).basis.demote_storage();
    if (l >= 1)
      for (index_t t = 0; t < num_pairs(l); ++t)
        coupling(l, t).demote_storage();
  }
  mixed_ = true;
}

}  // namespace hatrix::fmt
