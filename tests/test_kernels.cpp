// Tests for the Green's-function kernels (Table 3 of the paper), the Bessel
// functions behind Matérn, and the lazy KernelMatrix generator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "geometry/cluster_tree.hpp"
#include "kernels/bessel.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/norms.hpp"

namespace hatrix::kernels {
namespace {

using geom::Point;

constexpr double kPi = 3.14159265358979323846;

TEST(Bessel, HalfOrderClosedForm) {
  for (double x : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    const double expect = std::sqrt(kPi / (2.0 * x)) * std::exp(-x);
    EXPECT_NEAR(bessel_k(0.5, x), expect, 1e-12 * expect);
  }
}

TEST(Bessel, ThreeHalvesClosedForm) {
  for (double x : {0.2, 1.0, 4.0}) {
    const double expect = std::sqrt(kPi / (2.0 * x)) * std::exp(-x) * (1.0 + 1.0 / x);
    EXPECT_NEAR(bessel_k(1.5, x), expect, 1e-11 * expect);
  }
}

TEST(Bessel, KnownK0K1Values) {
  // Reference values from Abramowitz & Stegun tables.
  EXPECT_NEAR(bessel_k(0.0, 1.0), 0.4210244382, 1e-8);
  EXPECT_NEAR(bessel_k(1.0, 1.0), 0.6019072302, 1e-8);
  EXPECT_NEAR(bessel_k(0.0, 2.0), 0.1138938727, 1e-8);
  EXPECT_NEAR(bessel_k(1.0, 2.0), 0.1398658818, 1e-8);
}

TEST(Bessel, GeneralOrderAgainstRecurrence) {
  // K_{nu+1}(x) = K_{nu-1}(x) + (2 nu / x) K_nu(x) must hold for any nu.
  for (double nu : {0.3, 0.7, 1.2}) {
    for (double x : {0.5, 2.0, 8.0, 25.0}) {
      const double lhs = bessel_k(nu + 1.0, x);
      const double rhs = bessel_k(nu - 1.0, x) + (2.0 * nu / x) * bessel_k(nu, x);
      EXPECT_NEAR(lhs, rhs, 1e-8 * std::abs(lhs));
    }
  }
}

TEST(Bessel, MonotoneDecreasingInX) {
  double prev = bessel_k(0.5, 0.01);
  for (double x = 0.1; x < 30.0; x += 0.37) {
    const double v = bessel_k(0.5, x);
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(Bessel, InvalidArgumentThrows) {
  EXPECT_THROW(bessel_k(0.5, 0.0), Error);
  EXPECT_THROW(bessel_k(0.5, -1.0), Error);
}

TEST(Kernels, LaplaceMatchesFormula) {
  Laplace2D k;
  Point a{{0, 0, 0}}, b{{0.5, 0, 0}};
  EXPECT_DOUBLE_EQ(k(a, b), -std::log(1e-9 + 0.5));
  EXPECT_DOUBLE_EQ(k(a, a), -std::log(1e-9));
}

TEST(Kernels, YukawaMatchesFormula) {
  Yukawa k;
  Point a{{0, 0, 0}}, b{{1.0, 0, 0}};
  const double r = 1e-9 + 1.0;
  EXPECT_DOUBLE_EQ(k(a, b), std::exp(-r) / r);
}

TEST(Kernels, YukawaDiagonalIsHuge) {
  Yukawa k;
  Point a{{0.3, 0.4, 0}};
  EXPECT_GT(k(a, a), 1e8);  // 1/theta with theta = 1e-9
}

TEST(Kernels, MaternHalfIsExponentialCovariance) {
  // For rho = 0.5 the Matérn reduces to sigma^2 exp(-r/mu).
  Matern k(1.0, 0.03, 0.5);
  Point a{{0, 0, 0}};
  for (double r : {0.001, 0.01, 0.05, 0.2}) {
    Point b{{r, 0, 0}};
    EXPECT_NEAR(k(a, b), std::exp(-r / 0.03), 1e-10);
  }
  EXPECT_DOUBLE_EQ(k(a, a), 1.0);
}

TEST(Kernels, MaternLongRangeUnderflowsToZero) {
  Matern k(1.0, 0.03, 0.5);
  Point a{{0, 0, 0}}, b{{50.0, 0, 0}};
  EXPECT_EQ(k(a, b), 0.0);
}

TEST(Kernels, AllSymmetric) {
  Rng rng(31);
  std::vector<std::unique_ptr<Kernel>> ks;
  ks.push_back(std::make_unique<Laplace2D>());
  ks.push_back(std::make_unique<Yukawa>());
  ks.push_back(std::make_unique<Matern>());
  ks.push_back(std::make_unique<Gaussian>());
  for (int t = 0; t < 20; ++t) {
    Point a{{rng.uniform(), rng.uniform(), 0}};
    Point b{{rng.uniform(), rng.uniform(), 0}};
    for (const auto& k : ks) EXPECT_DOUBLE_EQ((*k)(a, b), (*k)(b, a));
  }
}

TEST(Kernels, FactoryKnowsAllNames) {
  for (const char* name : {"laplace2d", "yukawa", "matern", "gaussian"})
    EXPECT_EQ(make_kernel(name)->name(), name);
  EXPECT_THROW(make_kernel("nope"), Error);
}

class KernelSpd : public ::testing::TestWithParam<const char*> {};

// The evaluation relies on Cholesky factorizing these kernel matrices on a
// uniform 2D grid: verify positive definiteness at a representative size.
TEST_P(KernelSpd, PositiveDefiniteOnGrid) {
  auto kernel = make_kernel(GetParam());
  geom::Domain d = geom::grid2d(256);
  geom::ClusterTree tree(d, 32);
  KernelMatrix km(*kernel, tree.points());
  la::Matrix a = km.dense();
  EXPECT_NO_THROW(la::potrf(a.view()));
}

INSTANTIATE_TEST_SUITE_P(PaperKernels, KernelSpd,
                         ::testing::Values("laplace2d", "yukawa", "matern"));

TEST(KernelMatrix, EntryAndBlockAgree) {
  Laplace2D k;
  geom::Domain d = geom::grid2d(64);
  KernelMatrix km(k, d.points);
  la::Matrix blk = km.block(8, 16, 4, 4);
  for (la::index_t j = 0; j < 4; ++j)
    for (la::index_t i = 0; i < 4; ++i)
      EXPECT_DOUBLE_EQ(blk(i, j), km.entry(8 + i, 16 + j));
}

TEST(KernelMatrix, DiagShiftOnlyOnDiagonal) {
  Yukawa k;
  geom::Domain d = geom::grid2d(16);
  KernelMatrix plain(k, d.points, 0.0);
  KernelMatrix shifted(k, d.points, 5.0);
  EXPECT_DOUBLE_EQ(shifted.entry(3, 3), plain.entry(3, 3) + 5.0);
  EXPECT_DOUBLE_EQ(shifted.entry(3, 4), plain.entry(3, 4));
}

TEST(KernelMatrix, MatvecMatchesDense) {
  Matern k;
  geom::Domain d = geom::grid2d(600);  // spans multiple 512-row panels
  KernelMatrix km(k, d.points);
  Rng rng(32);
  std::vector<double> x = rng.normal_vector(600);
  std::vector<double> y;
  km.matvec(x, y);
  la::Matrix a = km.dense();
  std::vector<double> y_ref(600, 0.0);
  la::gemv(1.0, a.view(), la::Trans::No, x.data(), 0.0, y_ref.data());
  double err = 0.0, den = 0.0;
  for (std::size_t i = 0; i < 600; ++i) {
    err += (y[i] - y_ref[i]) * (y[i] - y_ref[i]);
    den += y_ref[i] * y_ref[i];
  }
  EXPECT_LT(std::sqrt(err / den), 1e-13);
}

TEST(KernelMatrix, OutOfRangeBlockThrows) {
  Gaussian k;
  geom::Domain d = geom::grid2d(16);
  KernelMatrix km(k, d.points);
  EXPECT_THROW((void)km.block(10, 0, 10, 4), Error);
}

}  // namespace
}  // namespace hatrix::kernels
