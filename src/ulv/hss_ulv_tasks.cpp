#include "ulv/hss_ulv_tasks.hpp"

#include <limits>
#include <unordered_map>

#include "common/error.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"

namespace hatrix::ulv {

namespace {

// The coupling arrives as an FP64 view: callers promote FP32-demoted
// storage through la::F64Block (mixed-precision mode).
Matrix merge_diag(const Matrix& ss0, const Matrix& ss1,
                  la::ConstMatrixView s_lower) {
  const index_t k0 = ss0.rows(), k1 = ss1.rows();
  Matrix d(k0 + k1, k0 + k1);
  if (k0 > 0) la::copy(ss0.view(), d.block(0, 0, k0, k0));
  if (k1 > 0) la::copy(ss1.view(), d.block(k0, k0, k1, k1));
  if (k0 > 0 && k1 > 0) {
    la::copy(s_lower, d.block(k0, 0, k1, k0));
    Matrix st = la::transpose(s_lower);
    la::copy(st.view(), d.block(0, k0, k0, k1));
  }
  return d;
}

}  // namespace

HSSULVDag emit_hss_ulv_dag(const fmt::HSSMatrix& a, rt::TaskGraph& graph,
                           bool with_work, rt::ReleaseMode release) {
  const int L = a.max_level();
  HSSULVDag dag;
  dag.state = std::make_shared<HSSULVTaskState>();
  auto& st = *dag.state;
  st.a = &a;
  st.diags.resize(static_cast<std::size_t>(L) + 1);
  st.rotated.resize(static_cast<std::size_t>(L) + 1);
  st.factors.resize(static_cast<std::size_t>(L) + 1);
  st.schur.resize(static_cast<std::size_t>(L) + 1);
  dag.diag_data.resize(static_cast<std::size_t>(L) + 1);
  dag.basis_data.resize(static_cast<std::size_t>(L) + 1);
  dag.rotated_data.resize(static_cast<std::size_t>(L) + 1);
  dag.schur_data.resize(static_cast<std::size_t>(L) + 1);
  dag.coupling_data.resize(static_cast<std::size_t>(L) + 1);

  // Register data handles for every level.
  for (int l = 0; l <= L; ++l) {
    const auto nn = static_cast<std::size_t>(a.num_nodes(l));
    st.diags[static_cast<std::size_t>(l)].resize(nn);
    st.rotated[static_cast<std::size_t>(l)].resize(nn);
    st.factors[static_cast<std::size_t>(l)].resize(nn);
    st.schur[static_cast<std::size_t>(l)].resize(nn);
    auto& dd = dag.diag_data[static_cast<std::size_t>(l)];
    auto& bd = dag.basis_data[static_cast<std::size_t>(l)];
    auto& rd = dag.rotated_data[static_cast<std::size_t>(l)];
    auto& sd = dag.schur_data[static_cast<std::size_t>(l)];
    for (index_t i = 0; i < a.num_nodes(l); ++i) {
      const auto& nd = a.node(l, i);
      const std::string tag = "(" + std::to_string(l) + "," + std::to_string(i) + ")";
      // The working diagonal at level l for internal nodes is (k0+k1)^2; at
      // the leaves it is the dense leaf block.
      index_t m = nd.block_size();
      if (l < L)
        m = a.node(l + 1, 2 * i).rank + a.node(l + 1, 2 * i + 1).rank;
      // Byte sizes are computed from the block shapes (not the stored
      // matrices) so costing-only DAGs built from rank skeletons price
      // communication identically to fully materialized ones.
      dd.push_back(graph.register_data("diag" + tag, m * m * 8));
      bd.push_back(graph.register_data("basis" + tag, m * nd.rank * 8));
      rd.push_back(graph.register_data("rotated" + tag, m * m * 8));
      sd.push_back(graph.register_data("schur" + tag, nd.rank * nd.rank * 8));
      // Bases come from the built matrix: no task writes them. Same for the
      // leaf diagonals, seeded from a.node(L,i).diag before the graph runs.
      graph.mark_input(bd.back());
      if (l == L) graph.mark_input(dd.back());
    }
    if (l >= 1) {
      auto& cd = dag.coupling_data[static_cast<std::size_t>(l)];
      for (index_t t = 0; t < a.num_pairs(l); ++t) {
        cd.push_back(graph.register_data(
            "S(" + std::to_string(l) + "," + std::to_string(t) + ")",
            a.node(l, 2 * t).rank * a.node(l, 2 * t + 1).rank * 8));
        graph.mark_input(cd.back());  // read-only piece of the built matrix
      }
    }
  }
  // Root working block: the merged top-level diagonal (dense leaf when the
  // tree has a single node).
  const index_t kroot =
      L >= 1 ? a.node(1, 0).rank + a.node(1, 1).rank : a.size();
  dag.root_data = graph.register_data("root", kroot * kroot * 8);
  graph.mark_output(dag.root_data);  // the factorization's result

  // Early release: the working diagonal / rotated / Schur slots retire at
  // their statically-proven last use instead of living until extraction.
  // The slots the factorization keeps (factors, root_l) have no handles and
  // are never touched; neither are the const built-matrix blocks behind the
  // basis/coupling input handles.
  if (with_work && release != rt::ReleaseMode::None) {
    enum class Slot { Diag, Rotated, Schur };
    std::unordered_map<rt::DataId, std::pair<Slot, std::pair<int, index_t>>> slot_of;
    for (int l = 0; l <= L; ++l)
      for (index_t i = 0; i < a.num_nodes(l); ++i) {
        const auto li = static_cast<std::size_t>(l);
        const auto ii = static_cast<std::size_t>(i);
        slot_of[dag.diag_data[li][ii]] = {Slot::Diag, {l, i}};
        slot_of[dag.rotated_data[li][ii]] = {Slot::Rotated, {l, i}};
        slot_of[dag.schur_data[li][ii]] = {Slot::Schur, {l, i}};
      }
    const bool poison = release == rt::ReleaseMode::Poison;
    auto stp = dag.state;
    graph.set_release_hook([stp, slot_of, poison](rt::DataId d) {
      const auto it = slot_of.find(d);
      if (it == slot_of.end()) return;
      const auto li = static_cast<std::size_t>(it->second.second.first);
      const auto ii = static_cast<std::size_t>(it->second.second.second);
      const double nan = std::numeric_limits<double>::quiet_NaN();
      switch (it->second.first) {
        case Slot::Diag:
          if (poison)
            la::fill(stp->diags[li][ii].view(), nan);
          else
            stp->diags[li][ii] = Matrix();
          break;
        case Slot::Rotated:
          if (poison) {
            la::fill(stp->rotated[li][ii].q_comp.view(), nan);
            la::fill(stp->rotated[li][ii].rotated.view(), nan);
          } else {
            stp->rotated[li][ii] = DiagProductResult();
          }
          break;
        case Slot::Schur:
          if (poison)
            la::fill(stp->schur[li][ii].view(), nan);
          else
            stp->schur[li][ii] = Matrix();
          break;
      }
    });
  }

  if (with_work && L >= 0) {
    // Seed the leaf working diagonals.
    for (index_t i = 0; i < a.num_nodes(L); ++i)
      st.diags[static_cast<std::size_t>(L)][static_cast<std::size_t>(i)] =
          Matrix::from_view(a.node(L, i).diag.view());
  }

  if (L == 0) {
    auto stp = dag.state;
    graph.insert_task(
        "ROOT_FACTOR", "potrf", {a.size()},
        with_work ? std::function<void()>([stp] {
          stp->root_l = Matrix::from_view(stp->a->node(0, 0).diag.view());
          la::potrf(stp->root_l.view());
        })
                  : std::function<void()>(),
        {{dag.root_data, rt::Access::Write}}, /*priority=*/0, /*phase=*/0);
    return dag;
  }

  // Levels leaf..1: diagonal product, partial factorization, merge.
  for (int l = L; l >= 1; --l) {
    const int phase = L - l;
    const int priority = l;  // deeper levels drain first under contention
    for (index_t i = 0; i < a.num_nodes(l); ++i) {
      const auto& nd = a.node(l, i);
      const index_t m = (l < L)
                            ? a.node(l + 1, 2 * i).rank + a.node(l + 1, 2 * i + 1).rank
                            : nd.block_size();
      const std::string tag = "(" + std::to_string(l) + "," + std::to_string(i) + ")";
      auto stp = dag.state;
      const int li = l;
      const index_t ii = i;

      graph.insert_task(
          "DIAG_PRODUCT" + tag, "diag_product", {m, nd.rank},
          with_work ? std::function<void()>([stp, li, ii] {
            const auto& nd2 = stp->a->node(li, ii);
            auto& slot =
                stp->rotated[static_cast<std::size_t>(li)][static_cast<std::size_t>(ii)];
            slot = diag_product(
                stp->diags[static_cast<std::size_t>(li)][static_cast<std::size_t>(ii)]
                    .view(),
                la::F64Block(nd2.basis).view());
          })
                    : std::function<void()>(),
          {{dag.diag_data[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)],
            rt::Access::Read},
           {dag.basis_data[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)],
            rt::Access::Read},
           {dag.rotated_data[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)],
            rt::Access::Write}},
          priority, phase);

      graph.insert_task(
          "PARTIAL_FACTOR" + tag, "partial_factor", {m, nd.rank},
          with_work ? std::function<void()>([stp, li, ii] {
            auto& rot =
                stp->rotated[static_cast<std::size_t>(li)][static_cast<std::size_t>(ii)];
            const index_t k = stp->a->node(li, ii).rank;
            auto res = partial_factor_rotated(rot.rotated.view(), k,
                                              std::move(rot.q_comp));
            stp->factors[static_cast<std::size_t>(li)][static_cast<std::size_t>(ii)] =
                std::move(res.factor);
            stp->schur[static_cast<std::size_t>(li)][static_cast<std::size_t>(ii)] =
                std::move(res.ss_schur);
            rot.rotated = Matrix();  // release working memory
          })
                    : std::function<void()>(),
          // `rotated` is declared ReadWrite, not Read: the task moves the
          // Q factor out of the slot and releases the rotated buffer, so
          // any later reader of this handle would race with it.
          {{dag.rotated_data[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)],
            rt::Access::ReadWrite},
           {dag.schur_data[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)],
            rt::Access::Write}},
          priority, phase);
    }

    for (index_t t = 0; t < a.num_pairs(l); ++t) {
      const std::string tag = "(" + std::to_string(l) + "," + std::to_string(t) + ")";
      auto stp = dag.state;
      const int li = l;
      const index_t tt = t;
      const index_t k0 = a.node(l, 2 * t).rank;
      const index_t k1 = a.node(l, 2 * t + 1).rank;
      graph.insert_task(
          "MERGE" + tag, "merge", {k0, k1},
          with_work ? std::function<void()>([stp, li, tt] {
            auto& lvl = stp->schur[static_cast<std::size_t>(li)];
            stp->diags[static_cast<std::size_t>(li) - 1][static_cast<std::size_t>(tt)] =
                merge_diag(lvl[static_cast<std::size_t>(2 * tt)],
                           lvl[static_cast<std::size_t>(2 * tt + 1)],
                           la::F64Block(stp->a->coupling(li, tt)).view());
          })
                    : std::function<void()>(),
          {{dag.schur_data[static_cast<std::size_t>(l)][static_cast<std::size_t>(2 * t)],
            rt::Access::Read},
           {dag.schur_data[static_cast<std::size_t>(l)]
                          [static_cast<std::size_t>(2 * t + 1)],
            rt::Access::Read},
           {dag.coupling_data[static_cast<std::size_t>(l)][static_cast<std::size_t>(t)],
            rt::Access::Read},
           {dag.diag_data[static_cast<std::size_t>(l) - 1][static_cast<std::size_t>(t)],
            rt::Access::Write}},
          priority, phase);
    }
  }

  // Root factorization.
  {
    auto stp = dag.state;
    const index_t kroot = a.node(1, 0).rank + a.node(1, 1).rank;
    graph.insert_task(
        "ROOT_FACTOR", "potrf", {kroot},
        with_work ? std::function<void()>([stp] {
          stp->root_l = std::move(stp->diags[0][0]);
          la::potrf(stp->root_l.view());
        })
                  : std::function<void()>(),
        {{dag.diag_data[0][0], rt::Access::Read},
         {dag.root_data, rt::Access::Write}},
        /*priority=*/0, /*phase=*/L);
  }

  return dag;
}

HSSULV extract_factorization(const HSSULVDag& dag) {
  auto& st = *dag.state;
  HATRIX_CHECK(st.a != nullptr, "dag state has no matrix");
  return HSSULV(*st.a, std::move(st.factors), std::move(st.root_l));
}

}  // namespace hatrix::ulv
