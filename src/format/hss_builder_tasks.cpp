#include "format/hss_builder_tasks.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "lowrank/adaptive.hpp"
#include "runtime/thread_pool_executor.hpp"

namespace hatrix::fmt {

namespace {

/// Row interpolative decomposition: F ≈ X · F(sel, :) with X(sel, :) = I.
struct RowId {
  std::vector<index_t> sel;  ///< selected (skeleton) row indices into F
  Matrix x;                  ///< interpolation factor, F.rows x rank
  index_t rank = 0;
};

RowId row_id(la::ConstMatrixView f, index_t max_rank, double tol) {
  RowId out;
  Matrix ft = la::transpose(f);
  const double abs_tol = tol > 0.0 ? tol * la::norm_fro(ft.view()) : 0.0;
  auto pq = la::pivoted_qr(ft.view(), max_rank, abs_tol);
  const index_t k = pq.rank;
  out.rank = k;
  out.x = Matrix(f.rows, k);
  if (k == 0) return out;

  // Fᵀ P = Q R  =>  row perm[j] of F is (R11⁻¹ R(:,j))ᵀ times the skeleton
  // rows (the first k pivots).
  Matrix t = Matrix::from_view(pq.r.view());  // k x f.rows
  la::trsm(la::Side::Left, la::UpLo::Upper, la::Trans::No, la::Diag::NonUnit, 1.0,
           pq.r.block(0, 0, k, k), t.view());
  for (index_t j = 0; j < f.rows; ++j)
    for (index_t i = 0; i < k; ++i)
      out.x(pq.perm[static_cast<std::size_t>(j)], i) = t(i, j);
  out.sel.reserve(static_cast<std::size_t>(k));
  for (index_t i = 0; i < k; ++i)
    out.sel.push_back(pq.perm[static_cast<std::size_t>(i)]);
  return out;
}

/// Per-node deterministic seed (splitmix64 finalizer over seed/level/node):
/// every task owns its sampling stream, so execution order cannot change
/// the result.
std::uint64_t node_seed(std::uint64_t seed, int level, index_t i) {
  std::uint64_t z = seed;
  z ^= 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(level) + 1);
  z ^= 0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(i) + 2);
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Incremental sampler over the complement of [begin, end) in [0, n):
/// hands out distinct column indices and remembers what it gave, so probe
/// columns are always fresh and growth never re-evaluates a column.
class ComplementSampler {
 public:
  ComplementSampler(index_t n, index_t begin, index_t end, Rng& rng)
      : n_(n), begin_(begin), end_(end), rng_(&rng) {}

  [[nodiscard]] index_t complement_size() const { return n_ - (end_ - begin_); }
  [[nodiscard]] index_t drawn() const { return static_cast<index_t>(chosen_.size()); }
  [[nodiscard]] bool exhausted() const { return drawn() >= complement_size(); }

  /// Up to `count` new distinct complement columns, uniformly at random
  /// (sorted). Falls back to enumerating the leftovers when the complement
  /// is nearly used up, so it always makes progress.
  std::vector<index_t> draw_random(index_t count) {
    const index_t remaining = complement_size() - drawn();
    count = std::min(count, remaining);
    std::vector<index_t> out;
    if (count <= 0) return out;
    out.reserve(static_cast<std::size_t>(count));
    if (count >= remaining || 4 * drawn() >= 3 * complement_size()) {
      // Dense regime: enumerate what is left, shuffle, take the head.
      std::vector<index_t> left;
      left.reserve(static_cast<std::size_t>(remaining));
      for (index_t j = 0; j < n_; ++j)
        if ((j < begin_ || j >= end_) && !chosen_.count(j)) left.push_back(j);
      std::shuffle(left.begin(), left.end(), rng_->engine());
      left.resize(static_cast<std::size_t>(count));
      for (index_t j : left) chosen_.insert(j);
      out = std::move(left);
    } else {
      while (static_cast<index_t>(out.size()) < count) {
        index_t j = rng_->index(complement_size());
        if (j >= begin_) j += end_ - begin_;  // skip the node's own interval
        if (chosen_.insert(j).second) out.push_back(j);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Up to `count` new columns nearest the interval boundary, walking
  /// outward alternately below `begin` and above `end`. Tree ordering keeps
  /// spatial neighbors index-adjacent, so these columns carry the
  /// near-range interactions a uniform sample is most likely to miss.
  std::vector<index_t> draw_adjacent(index_t count) {
    std::vector<index_t> out;
    index_t lo = begin_ - 1, hi = end_;
    while (static_cast<index_t>(out.size()) < count && (lo >= 0 || hi < n_)) {
      if (lo >= 0) {
        if (chosen_.insert(lo).second) out.push_back(lo);
        --lo;
      }
      if (static_cast<index_t>(out.size()) < count && hi < n_) {
        if (chosen_.insert(hi).second) out.push_back(hi);
        ++hi;
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  index_t n_, begin_, end_;
  Rng* rng_;
  std::unordered_set<index_t> chosen_;
};

/// Outcome of the guarded interpolative compression of one node.
struct Guarded {
  RowId id;
  index_t samples = 0;
  double residual = 0.0;
  index_t growths = 0;
  index_t rank_escapes = 0;
};

/// One-line diagnostic per rank-cap escalation; kept to a single stream
/// write because build tasks run concurrently.
void rank_escape_note(int level, index_t node, index_t new_cap, double residual,
                      double guard_tol) {
  std::cerr << "[hatrix] guard: node (" + std::to_string(level) + "," +
                   std::to_string(node) + ") probe residual " +
                   std::to_string(residual) + " > " + std::to_string(guard_tol) +
                   " is pinned at the rank-truncation floor; raising rank cap to " +
                   std::to_string(new_cap) + "\n";
}

/// Operator diagonal scale max |A(i,i)| over a deterministic subsample. For
/// an SPD matrix |A(i,j)| <= sqrt(A(i,i) A(j,j)), so this bounds every
/// entry and serves as the ||A|| proxy the guard normalizes against.
double diag_scale(const BlockAccessor& acc) {
  const index_t n = acc.size();
  const index_t m = std::min<index_t>(n, 256);
  double s = 0.0;
  for (index_t t = 0; t < m; ++t) {
    const index_t i = t * n / m;
    Matrix e = acc.block(i, i, 1, 1);
    s = std::max(s, std::abs(e(0, 0)));
  }
  return s > 0.0 ? s : 1.0;
}

/// Compress the block row A(rows, complement of [begin, end)) by row-ID,
/// growing the column sample until the accuracy guard's probe passes (see
/// HSSOptions). Exact (full-complement) compressions are always accepted.
Guarded guarded_row_id(const BlockAccessor& acc, const std::vector<index_t>& rows,
                       index_t begin, index_t end, const HSSOptions& opts,
                       double scale, int level, index_t node, Rng& rng) {
  const index_t n = acc.size();
  ComplementSampler sampler(n, begin, end, rng);
  const index_t comp = sampler.complement_size();
  Guarded out;

  if (opts.sample_cols == 0 || opts.sample_cols >= comp) {
    // Exact path: compress against the whole off-diagonal block row.
    Matrix f = acc.gather(rows, sampler.draw_random(comp));
    out.id = row_id(f.view(), opts.max_rank, opts.tol);
    out.samples = comp;
    return out;
  }

  const bool guarded = opts.guard_tol > 0.0;
  const bool escape = guarded && opts.rank_escape;
  const index_t cap =
      opts.max_sample_cols > 0 ? std::min(opts.max_sample_cols, comp) : comp;
  // The rank cap starts at max_rank but may escalate (below) when the probe
  // residual is pinned at the truncation floor; it can never exceed the
  // block row count, which keeps every downstream ULV invariant (k <= m).
  index_t rank_cap = opts.max_rank;
  const index_t rank_limit = static_cast<index_t>(rows.size());
  double prev_residual = std::numeric_limits<double>::infinity();
  Matrix f = acc.gather(rows, sampler.draw_random(std::min(opts.sample_cols, cap)));

  for (;;) {
    out.id = row_id(f.view(), rank_cap, opts.tol);
    out.samples = f.cols();
    if (!guarded) return out;
    if (sampler.exhausted()) {
      // The sample reached the full complement, so coverage is exact and any
      // residual left over is pure rank truncation. If the ID is pinned at
      // the cap while the guard was still failing, raise the cap until the
      // truncation is no longer the binding constraint.
      while (escape && out.id.rank >= rank_cap && rank_cap < rank_limit &&
             prev_residual > opts.guard_tol) {
        rank_cap = std::min(rank_limit, 2 * rank_cap);
        ++out.rank_escapes;
        rank_escape_note(level, node, rank_cap, prev_residual, opts.guard_tol);
        out.id = row_id(f.view(), rank_cap, opts.tol);
      }
      out.residual = 0.0;
      return out;
    }

    // Fresh probe columns: half adjacent to the node's interval (tree order
    // preserves locality, so these expose missed near-range interactions),
    // half uniform over the unseen complement.
    const index_t want = std::max<index_t>(opts.guard_probe_cols, 4);
    std::vector<index_t> probe = sampler.draw_adjacent(want / 2);
    std::vector<index_t> extra =
        sampler.draw_random(want - static_cast<index_t>(probe.size()));
    probe.insert(probe.end(), extra.begin(), extra.end());
    if (probe.empty()) {  // complement fully consumed: exact
      out.residual = 0.0;
      return out;
    }
    Matrix p = acc.gather(rows, probe);
    // Worst per-column interpolation error relative to the operator scale:
    // max_j ||p_j - X p_j(sel)||_2 / max|A(i,i)|. Normalizing by the
    // operator (not the probe norm) keeps the guard from chasing the rank
    // truncation floor of near-boundary columns on strongly diagonally
    // dominant kernels; taking the worst column (not an average) keeps one
    // missed near-field column from hiding among far-field probes — that
    // localized leakage is exactly what pushes eigenvalues below zero.
    out.residual =
        lr::interp_residual_maxcol(p.view(), out.id.x.view(), out.id.sel) / scale;
    if (out.residual <= opts.guard_tol) return out;

    // Probe-floor detection: the ID is pinned at the rank cap and either a
    // growth round barely moved the residual (more columns will not help;
    // more rank will) or the sample cannot grow any further. Escalate the
    // cap and recompress the existing sample before spending more samples.
    if (escape && out.id.rank >= rank_cap && rank_cap < rank_limit &&
        ((out.growths > 0 && out.residual > 0.5 * prev_residual) ||
         out.samples >= cap)) {
      rank_cap = std::min(rank_limit, 2 * rank_cap);
      ++out.rank_escapes;
      rank_escape_note(level, node, rank_cap, out.residual, opts.guard_tol);
      prev_residual = out.residual;
      f = la::hconcat({f.view(), p.view()});  // probe is already evaluated
      continue;
    }
    prev_residual = out.residual;
    if (out.samples >= cap && cap < comp)
      throw BasisUnderResolvedError(level, node, out.samples, out.residual,
                                    opts.guard_tol);

    // Grow: the failed probe joins the sample (its columns are already
    // evaluated), topped up with fresh random columns to the geometric
    // target.
    ++out.growths;
    f = la::hconcat({f.view(), p.view()});
    const auto target = static_cast<index_t>(
        std::llround(opts.sample_growth * static_cast<double>(out.samples)));
    const index_t top_up = std::min(cap, target) - f.cols();
    if (top_up > 0) {
      auto more = sampler.draw_random(top_up);
      if (!more.empty()) f = la::hconcat({f.view(), acc.gather(rows, more).view()});
    }
  }
}

}  // namespace

HSSBuildDag emit_hss_build_dag(const BlockAccessor& acc, const HSSOptions& opts,
                               rt::TaskGraph& graph, rt::ReleaseMode release) {
  const index_t n = acc.size();
  const int L = hss_levels(n, opts.leaf_size);

  HSSBuildDag dag;
  dag.state = std::make_shared<HSSBuildState>();
  auto& st = *dag.state;
  st.acc = &acc;
  st.opts = opts;
  st.scale = opts.guard_tol > 0.0 ? diag_scale(acc) : 1.0;
  st.h = HSSMatrix(n, L);
  assign_hss_intervals(st.h);
  st.st.resize(static_cast<std::size_t>(L) + 1);
  dag.node_data.resize(static_cast<std::size_t>(L) + 1);
  dag.coupling_data.resize(static_cast<std::size_t>(L) + 1);
  for (int l = 0; l <= L; ++l) {
    st.st[static_cast<std::size_t>(l)].resize(
        static_cast<std::size_t>(st.h.num_nodes(l)));
    auto& ndd = dag.node_data[static_cast<std::size_t>(l)];
    for (index_t i = 0; i < st.h.num_nodes(l); ++i) {
      const auto& nd = st.h.node(l, i);
      // Handle bytes are shape estimates (rank is unknown until the task
      // runs); they only feed mapping/communication models, never numerics.
      ndd.push_back(graph.register_data(
          "node(" + std::to_string(l) + "," + std::to_string(i) + ")",
          nd.block_size() * opts.max_rank * 8));
    }
    if (l >= 1) {
      auto& cdd = dag.coupling_data[static_cast<std::size_t>(l)];
      for (index_t t = 0; t < st.h.num_pairs(l); ++t) {
        const rt::DataId cd = graph.register_data(
            "S(" + std::to_string(l) + "," + std::to_string(t) + ")",
            opts.max_rank * opts.max_rank * 8);
        // Couplings are part of the finished matrix: the final MERGE_SAMPLE
        // write is the point of the build, never a dead store, and the
        // block must survive to extraction.
        graph.mark_output(cd);
        cdd.push_back(cd);
      }
    }
  }

  auto stp = dag.state;

  // Early release: a node handle's last use retires the carried-up sampling
  // state (rfac + skeleton indices) — the basis/diag it also guards belong
  // to the finished matrix and are left alone. Couplings are outputs, so
  // the hook never sees them.
  if (release != rt::ReleaseMode::None) {
    std::unordered_map<rt::DataId, std::pair<int, index_t>> node_of;
    for (int l = 0; l <= L; ++l)
      for (index_t i = 0; i < st.h.num_nodes(l); ++i)
        node_of[dag.node_data[static_cast<std::size_t>(l)]
                             [static_cast<std::size_t>(i)]] = {l, i};
    const bool poison = release == rt::ReleaseMode::Poison;
    graph.set_release_hook([stp, node_of, poison](rt::DataId d) {
      const auto it = node_of.find(d);
      if (it == node_of.end()) return;
      auto& s = stp->st[static_cast<std::size_t>(it->second.first)]
                       [static_cast<std::size_t>(it->second.second)];
      if (poison) {
        la::fill(s.rfac.view(), std::numeric_limits<double>::quiet_NaN());
        std::fill(s.skel.begin(), s.skel.end(), index_t{0});
      } else {
        s.rfac = Matrix();
        s.skel.clear();
        s.skel.shrink_to_fit();
      }
    });
  }

  if (L == 0) {
    // The lone leaf IS the finished matrix.
    graph.mark_output(dag.node_data[0][0]);
    graph.insert_task(
        "COMPRESS(0,0)", "compress", {n},
        [stp] {
          auto& nd = stp->h.node(0, 0);
          nd.diag = stp->acc->block(0, 0, nd.block_size(), nd.block_size());
        },
        {{dag.node_data[0][0], rt::Access::ReadWrite}}, /*priority=*/0,
        /*phase=*/0);
    return dag;
  }

  // Cost-model annotation shared by the compress/transfer kinds: the
  // far-field columns a node initially samples (the guard may grow it, but
  // the initial sample prices the common case; 0 sample_cols means exact
  // construction against the full complement).
  auto sample_dim = [&](index_t rows) {
    return opts.sample_cols > 0 ? opts.sample_cols
                                : std::max<index_t>(n - rows, index_t{0});
  };

  // Leaf level: diagonal blocks + guarded shared row bases (Eq. 2).
  for (index_t i = 0; i < st.h.num_nodes(L); ++i) {
    const auto& nd = st.h.node(L, i);
    const std::string tag = "(" + std::to_string(L) + "," + std::to_string(i) + ")";
    const index_t ii = i;
    graph.insert_task(
        "COMPRESS" + tag, "compress",
        {nd.block_size(), opts.max_rank, sample_dim(nd.block_size())},
        [stp, ii] {
          const int lev = stp->h.max_level();
          auto& nd2 = stp->h.node(lev, ii);
          const index_t b = nd2.block_size();
          nd2.diag = stp->acc->block(nd2.begin, nd2.begin, b, b);

          std::vector<index_t> rows(static_cast<std::size_t>(b));
          for (index_t r = 0; r < b; ++r)
            rows[static_cast<std::size_t>(r)] = nd2.begin + r;
          Rng rng(node_seed(stp->opts.seed, lev, ii));
          Guarded g = guarded_row_id(*stp->acc, rows, nd2.begin, nd2.end,
                                     stp->opts, stp->scale, lev, ii, rng);
          auto qf = la::qr(g.id.x.view());
          nd2.basis = std::move(qf.q);
          nd2.rank = g.id.rank;

          auto& s = stp->st[static_cast<std::size_t>(lev)][static_cast<std::size_t>(ii)];
          s.rfac = std::move(qf.r);
          s.skel.reserve(g.id.sel.size());
          for (index_t r : g.id.sel) s.skel.push_back(nd2.begin + r);
          s.samples = g.samples;
          s.residual = g.residual;
          s.growths = g.growths;
          s.rank_escapes = g.rank_escapes;
        },
        {{dag.node_data[static_cast<std::size_t>(L)][static_cast<std::size_t>(i)],
          rt::Access::ReadWrite}},
        /*priority=*/L, /*phase=*/0);
  }

  // Internal levels: transfer bases (children skeletons), then couplings.
  for (int l = L - 1; l >= 1; --l) {
    for (index_t p = 0; p < st.h.num_nodes(l); ++p) {
      const std::string tag = "(" + std::to_string(l) + "," + std::to_string(p) + ")";
      const int li = l;
      const index_t pi = p;
      graph.insert_task(
          "TRANSFER" + tag, "transfer",
          // Rows: the children's stacked skeletons (<= 2 max_rank).
          {2 * opts.max_rank, opts.max_rank, sample_dim(2 * opts.max_rank)},
          [stp, li, pi] {
            auto& nd2 = stp->h.node(li, pi);
            const auto& si =
                stp->st[static_cast<std::size_t>(li) + 1][static_cast<std::size_t>(2 * pi)];
            const auto& sj = stp->st[static_cast<std::size_t>(li) + 1]
                                    [static_cast<std::size_t>(2 * pi + 1)];
            const index_t ki = static_cast<index_t>(si.skel.size());
            const index_t kj = static_cast<index_t>(sj.skel.size());

            std::vector<index_t> usk;
            usk.reserve(static_cast<std::size_t>(ki + kj));
            usk.insert(usk.end(), si.skel.begin(), si.skel.end());
            usk.insert(usk.end(), sj.skel.begin(), sj.skel.end());

            Rng rng(node_seed(stp->opts.seed, li, pi));
            Guarded g = guarded_row_id(*stp->acc, usk, nd2.begin, nd2.end,
                                       stp->opts, stp->scale, li, pi, rng);
            // Raw transfer = blockdiag(R̄_i, R̄_j) · X, then orthonormalize.
            Matrix raw(ki + kj, g.id.rank);
            if (g.id.rank > 0) {
              la::gemm(1.0, si.rfac.view(), la::Trans::No,
                       g.id.x.block(0, 0, ki, g.id.rank), la::Trans::No, 0.0,
                       raw.block(0, 0, ki, g.id.rank));
              la::gemm(1.0, sj.rfac.view(), la::Trans::No,
                       g.id.x.block(ki, 0, kj, g.id.rank), la::Trans::No, 0.0,
                       raw.block(ki, 0, kj, g.id.rank));
            }
            auto qf = la::qr(raw.view());
            nd2.basis = std::move(qf.q);
            nd2.rank = g.id.rank;

            auto& sp =
                stp->st[static_cast<std::size_t>(li)][static_cast<std::size_t>(pi)];
            sp.rfac = std::move(qf.r);
            sp.skel.reserve(static_cast<std::size_t>(g.id.rank));
            for (index_t r : g.id.sel)
              sp.skel.push_back(usk[static_cast<std::size_t>(r)]);
            sp.samples = g.samples;
            sp.residual = g.residual;
            sp.growths = g.growths;
            sp.rank_escapes = g.rank_escapes;
          },
          {{dag.node_data[static_cast<std::size_t>(l) + 1]
                         [static_cast<std::size_t>(2 * p)],
            rt::Access::Read},
           {dag.node_data[static_cast<std::size_t>(l) + 1]
                         [static_cast<std::size_t>(2 * p + 1)],
            rt::Access::Read},
           {dag.node_data[static_cast<std::size_t>(l)][static_cast<std::size_t>(p)],
            rt::Access::ReadWrite}},
          /*priority=*/l, /*phase=*/L - l);
    }
  }

  // Couplings at every level. Leaf pairs: exact U_jᵀ A(I_j, I_i) U_i.
  // Upper pairs: skeleton-compressed R̄_j A(sk_j, sk_i) R̄_iᵀ.
  for (int l = L; l >= 1; --l) {
    for (index_t t = 0; t < st.h.num_pairs(l); ++t) {
      const std::string tag = "(" + std::to_string(l) + "," + std::to_string(t) + ")";
      const int li = l;
      const index_t tt = t;
      const bool leaf = l == L;
      // Leaf couplings are exact U_j^T A U_i products over the dense leaf
      // blocks; upper couplings only touch k x k skeleton gathers — the
      // third dim records the dense block extent so the cost model can tell
      // them apart.
      const std::vector<std::int64_t> ms_dims =
          leaf ? std::vector<std::int64_t>{st.h.node(l, 2 * t).block_size(),
                                           opts.max_rank, opts.max_rank}
               : std::vector<std::int64_t>{opts.max_rank, opts.max_rank};
      graph.insert_task(
          "MERGE_SAMPLE" + tag, "merge_sample", ms_dims,
          leaf ? std::function<void()>([stp, li, tt] {
            const auto& n0 = stp->h.node(li, 2 * tt);
            const auto& n1 = stp->h.node(li, 2 * tt + 1);
            Matrix a10 = stp->acc->block(n1.begin, n0.begin, n1.block_size(),
                                         n0.block_size());
            Matrix tmp = la::matmul(n1.basis.view(), a10.view(), la::Trans::Yes,
                                    la::Trans::No);
            stp->h.coupling(li, tt) = la::matmul(tmp.view(), n0.basis.view());
          })
               : std::function<void()>([stp, li, tt] {
                   const auto& s0 = stp->st[static_cast<std::size_t>(li)]
                                           [static_cast<std::size_t>(2 * tt)];
                   const auto& s1 = stp->st[static_cast<std::size_t>(li)]
                                           [static_cast<std::size_t>(2 * tt + 1)];
                   Matrix a10 = stp->acc->gather(s1.skel, s0.skel);
                   Matrix tmp = la::matmul(s1.rfac.view(), a10.view());
                   stp->h.coupling(li, tt) = la::matmul(
                       tmp.view(), s0.rfac.view(), la::Trans::No, la::Trans::Yes);
                 }),
          {{dag.node_data[static_cast<std::size_t>(l)][static_cast<std::size_t>(2 * t)],
            rt::Access::Read},
           {dag.node_data[static_cast<std::size_t>(l)]
                         [static_cast<std::size_t>(2 * t + 1)],
            rt::Access::Read},
           {dag.coupling_data[static_cast<std::size_t>(l)][static_cast<std::size_t>(t)],
            rt::Access::ReadWrite}},
          /*priority=*/l, /*phase=*/L - l);
    }
  }

  return dag;
}

HSSMatrix extract_built_hss(HSSBuildDag& dag) {
  HATRIX_CHECK(dag.state != nullptr, "build dag has no state");
  return std::move(dag.state->h);
}

HSSBuildReport build_report(const HSSBuildDag& dag) {
  HSSBuildReport rep;
  if (!dag.state) return rep;
  for (const auto& level : dag.state->st) {
    for (const auto& s : level) {
      rep.max_samples = std::max(rep.max_samples, s.samples);
      rep.total_growths += s.growths;
      rep.worst_residual = std::max(rep.worst_residual, s.residual);
      rep.rank_escapes += s.rank_escapes;
    }
  }
  return rep;
}

HSSMatrix build_hss_parallel(const BlockAccessor& acc, const HSSOptions& opts,
                             int workers, HSSBuildReport* report,
                             rt::ReleaseMode release) {
  rt::TaskGraph graph;
  HSSBuildDag dag = emit_hss_build_dag(acc, opts, graph, release);
  rt::ThreadPoolExecutor ex(workers);
  ex.run(graph);
  if (report != nullptr) *report = build_report(dag);
  HSSMatrix h = extract_built_hss(dag);
  // Demote after extraction, exactly as the sequential builder does, so both
  // paths produce bit-identical (demoted) matrices.
  if (opts.precision == PrecisionMode::MixedFP32) h.demote_lowrank();
  return h;
}

}  // namespace hatrix::fmt
