#include "blrchol/blr_cholesky.hpp"

#include "common/error.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "lowrank/compress.hpp"

namespace hatrix::blrchol {

namespace {

using lr::LowRank;

/// term = A_ik · A_jkᵀ as a low-rank block: U_ik (V_ikᵀ V_jk) U_jkᵀ.
LowRank lr_product(const LowRank& aik, const LowRank& ajk) {
  Matrix w = la::matmul(aik.v.view(), ajk.v.view(), la::Trans::Yes, la::Trans::No);
  return LowRank(la::matmul(aik.u.view(), w.view()),
                 Matrix::from_view(ajk.u.view()));
}

}  // namespace

BLRCholesky BLRCholesky::factorize(const BLRMatrix& a, const BLRCholOptions& opts) {
  BLRCholesky out;
  out.l_ = a;  // copy; factorization is in place on the copy
  BLRMatrix& l = out.l_;
  const index_t p = l.num_tiles();

  for (index_t k = 0; k < p; ++k) {
    // POTRF on the diagonal tile.
    la::potrf(l.diag(k).view());

    // TRSM panel: A_ik <- A_ik L_kkᵀ^{-1}; for U Vᵀ this hits the V side.
    for (index_t i = k + 1; i < p; ++i) {
      auto& t = l.tile(i, k);
      if (t.rank() == 0) continue;
      // (U Vᵀ) L^{-T} = U (L^{-1} V)ᵀ
      la::trsm(la::Side::Left, la::UpLo::Lower, la::Trans::No, la::Diag::NonUnit,
               1.0, l.diag(k).view(), t.v.view());
    }

    // Trailing updates.
    for (index_t i = k + 1; i < p; ++i) {
      const auto& aik = l.tile(i, k);
      if (aik.rank() > 0) {
        // SYRK: D_i -= U (VᵀV) Uᵀ, evaluated densely on the diagonal tile.
        Matrix w = la::matmul(aik.v.view(), aik.v.view(), la::Trans::Yes,
                              la::Trans::No);
        Matrix uw = la::matmul(aik.u.view(), w.view());
        la::gemm(-1.0, uw.view(), la::Trans::No, aik.u.view(), la::Trans::Yes, 1.0,
                 l.diag(i).view());
      }
      for (index_t j = k + 1; j < i; ++j) {
        const auto& ajk = l.tile(j, k);
        if (aik.rank() == 0 || ajk.rank() == 0) continue;
        LowRank term = lr_product(aik, ajk);
        l.tile(i, j) = lr::lr_add_round(1.0, l.tile(i, j), -1.0, term,
                                        opts.max_rank, opts.tol);
      }
    }
  }
  return out;
}

std::vector<double> BLRCholesky::solve(const std::vector<double>& b) const {
  const index_t n = l_.size(), p = l_.num_tiles();
  HATRIX_CHECK(static_cast<index_t>(b.size()) == n, "solve: rhs length mismatch");
  std::vector<double> x = b;

  // Forward: L y = b.
  for (index_t i = 0; i < p; ++i) {
    for (index_t j = 0; j < i; ++j) {
      const auto& t = l_.tile(i, j);
      if (t.rank() > 0)
        t.matvec(-1.0, x.data() + l_.tile_begin(j), 1.0, x.data() + l_.tile_begin(i));
    }
    la::MatrixView xi{x.data() + l_.tile_begin(i), l_.tile_size(i), 1, n};
    la::trsm(la::Side::Left, la::UpLo::Lower, la::Trans::No, la::Diag::NonUnit, 1.0,
             l_.diag(i).view(), xi);
  }

  // Backward: Lᵀ x = y.
  for (index_t i = p - 1; i >= 0; --i) {
    for (index_t j = i + 1; j < p; ++j) {
      const auto& t = l_.tile(j, i);  // L_ji, used transposed
      if (t.rank() > 0)
        t.matvec_trans(-1.0, x.data() + l_.tile_begin(j), 1.0,
                       x.data() + l_.tile_begin(i));
    }
    la::MatrixView xi{x.data() + l_.tile_begin(i), l_.tile_size(i), 1, n};
    la::trsm(la::Side::Left, la::UpLo::Lower, la::Trans::Yes, la::Diag::NonUnit, 1.0,
             l_.diag(i).view(), xi);
  }
  return x;
}

}  // namespace hatrix::blrchol
