#pragma once
/// \file blr_cholesky.hpp
/// \brief BLR tile Cholesky — the LORAPO baseline (Cao et al., IPDPS 2022).
///
/// Right-looking tile Cholesky on the flat BLR format: dense POTRF on
/// diagonal tiles, low-rank-aware TRSM on the panel, and Schur updates that
/// recompress via rounded addition to keep per-tile ranks adaptive. The
/// trailing-submatrix updates are exactly the dependency pattern that makes
/// LORAPO's critical path heavy (Sec. 4.3) and its complexity O(N^2)
/// (Table 1).

#include <vector>

#include "format/blr.hpp"

namespace hatrix::blrchol {

using fmt::BLRMatrix;
using la::index_t;
using la::Matrix;

/// Rank-control parameters for the Schur-complement recompression.
struct BLRCholOptions {
  index_t max_rank = 1024;  ///< cap on any tile rank during updates
  double tol = 1e-10;       ///< rounded-addition truncation tolerance
};

/// Factored form: L in BLR representation (diag tiles dense lower-
/// triangular, off-diagonal tiles low-rank).
class BLRCholesky {
 public:
  /// Factorize in a copy of `a`; throws if a diagonal tile loses positive
  /// definiteness.
  static BLRCholesky factorize(const BLRMatrix& a, const BLRCholOptions& opts = {});

  /// Wrap an already-factorized BLR matrix (the task-based path: run the
  /// DAG from emit_blr_cholesky_dag, then adopt its state).
  static BLRCholesky adopt(BLRMatrix factored) {
    BLRCholesky out;
    out.l_ = std::move(factored);
    return out;
  }

  /// Solve A x = b via forward/backward substitution on the BLR factor.
  [[nodiscard]] std::vector<double> solve(const std::vector<double>& b) const;

  /// Largest tile rank in the factor (rank growth diagnostic).
  [[nodiscard]] index_t max_rank_used() const { return l_.max_rank_used(); }

  [[nodiscard]] std::int64_t memory_bytes() const { return l_.memory_bytes(); }

  [[nodiscard]] const BLRMatrix& factor() const { return l_; }

 private:
  BLRMatrix l_;
};

}  // namespace hatrix::blrchol
