// Driving the distributed-cluster model from user code: sweep node counts
// for all three systems and print a weak-scaling table — the programmatic
// version of bench_fig9, showing the public simulation API.
//
//   ./distributed_weak_scaling [--per-node 2048] [--nodes 2,8,32,128]
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "hatrix/drivers.hpp"

using namespace hatrix;
using driver::SimExperiment;
using driver::System;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  auto nodes = cli.get_int_list("nodes", {2, 8, 32, 128});
  const la::index_t per_node = cli.get_int("per-node", 2048);
  cli.reject_unknown();

  std::printf("Simulated weak scaling (Fugaku-like cluster model; see DESIGN.md)\n\n");
  TextTable table({"NODES", "N", "system", "time (s)", "compute/worker",
                   "overhead/worker", "messages", "MB"});
  for (auto p : nodes) {
    SimExperiment e;
    e.n = per_node * p;
    e.leaf_size = 256;
    e.rank = 100;
    e.nodes = static_cast<int>(p);
    for (System s : {System::HatrixDTD, System::StrumpackSim}) {
      auto out = run_simulated(s, e);
      table.add_row({std::to_string(p), std::to_string(e.n), driver::system_name(s),
                     fmt_fixed(out.factor_time, 4), fmt_sci(out.compute_per_worker),
                     fmt_sci(out.overhead_per_worker), std::to_string(out.messages),
                     fmt_fixed(static_cast<double>(out.comm_bytes) / 1e6, 1)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
