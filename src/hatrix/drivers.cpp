#include "hatrix/drivers.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <thread>

#include "blrchol/blr_cholesky_tasks.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "format/accessor.hpp"
#include "format/blr.hpp"
#include "format/hss_builder.hpp"
#include "format/hss_builder_tasks.hpp"
#include "geometry/cluster_tree.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "linalg/matrix.hpp"
#include "runtime/dag_dataflow.hpp"
#include "runtime/thread_pool_executor.hpp"
#include "ulv/hss_ulv_tasks.hpp"

namespace hatrix::driver {

std::string system_name(System s) {
  switch (s) {
    case System::HatrixDTD:
      return "HATRIX-DTD";
    case System::HatrixPTG:
      return "HATRIX-PTG";
    case System::StrumpackSim:
      return "STRUMPACK";
    case System::LorapoSim:
      return "LORAPO";
    case System::DenseDplasmaSim:
      return "DPLASMA";
  }
  throw Error("unknown system");
}

SimOutcome run_simulated(System sys, const SimExperiment& cfg) {
  rt::TaskGraph graph;
  distsim::Mapping mapping;
  distsim::SimConfig sim_cfg;
  sim_cfg.procs = cfg.nodes;
  sim_cfg.cores_per_proc = cfg.cores_per_node;
  sim_cfg.network = cfg.network;
  sim_cfg.overhead = cfg.overhead;

  // Keep skeletons alive for the duration of the simulation: the DAG state
  // references them.
  fmt::HSSMatrix hss_skel;
  fmt::BLRMatrix blr_skel;

  switch (sys) {
    case System::HatrixDTD:
    case System::HatrixPTG: {
      hss_skel = fmt::make_hss_skeleton(cfg.n, cfg.leaf_size, cfg.rank);
      auto dag = ulv::emit_hss_ulv_dag(hss_skel, graph, /*with_work=*/false);
      mapping = distsim::map_hss_row_cyclic(dag, graph, cfg.nodes);
      sim_cfg.model = sys == System::HatrixPTG ? distsim::ExecModel::AsyncPtg
                                               : distsim::ExecModel::AsyncDtd;
      break;
    }
    case System::StrumpackSim: {
      hss_skel = fmt::make_hss_skeleton(cfg.n, cfg.leaf_size, cfg.rank);
      auto dag = ulv::emit_hss_ulv_dag(hss_skel, graph, /*with_work=*/false);
      mapping = distsim::map_hss_block_cyclic(dag, graph, cfg.nodes);
      sim_cfg.model = distsim::ExecModel::ForkJoin;
      // Fork-join runtimes do not pay DTD whole-graph discovery.
      sim_cfg.overhead.discovery_per_task = 0.0;
      break;
    }
    case System::LorapoSim: {
      blr_skel = fmt::make_blr_skeleton(cfg.n, cfg.leaf_size, cfg.rank);
      auto dag = blrchol::emit_blr_cholesky_dag(blr_skel, graph, /*with_work=*/false);
      mapping = distsim::map_blr_block_cyclic(dag, graph, cfg.nodes);
      sim_cfg.model = distsim::ExecModel::AsyncDtd;
      break;
    }
    case System::DenseDplasmaSim: {
      auto dag = blrchol::emit_dense_cholesky_dag({}, cfg.n, cfg.leaf_size, graph,
                                                  /*with_work=*/false);
      mapping = distsim::map_dense_block_cyclic(dag, graph, cfg.nodes);
      sim_cfg.model = distsim::ExecModel::AsyncDtd;
      break;
    }
  }

  distsim::CostModel cost(cfg.gflops_per_core);
  auto res = distsim::simulate(graph, mapping, cost, sim_cfg);

  SimOutcome out;
  out.factor_time = res.makespan;
  out.compute_per_worker = res.compute_per_worker(sim_cfg);
  out.overhead_per_worker = res.overhead_per_worker(sim_cfg);
  out.mpi_per_process = res.mpi_per_process(sim_cfg);
  out.tasks = graph.num_tasks();
  out.messages = res.messages;
  out.comm_bytes = res.bytes;
  for (const auto& t : graph.tasks()) out.flops += distsim::CostModel::task_flops(t);
  return out;
}

ConstructionOutcome run_construction(const ConstructionExperiment& cfg) {
  geom::Domain domain = geom::grid2d(cfg.n);
  geom::ClusterTree tree(domain, cfg.leaf_size);
  auto kernel = kernels::make_kernel(cfg.kernel);
  kernels::KernelMatrix km(*kernel, tree.points());
  fmt::KernelAccessor acc(km);

  const fmt::HSSOptions opts{.leaf_size = cfg.leaf_size,
                             .max_rank = cfg.max_rank,
                             .tol = cfg.tol,
                             .sample_cols = cfg.sample_cols,
                             .seed = cfg.seed,
                             .guard_tol = cfg.guard_tol,
                             .max_sample_cols = cfg.max_sample_cols};

  ConstructionOutcome out;
  rt::ThreadPoolExecutor ex(cfg.workers);
  if (cfg.verify_dag) ex.set_verify_dag(true);
  if (cfg.analyze_dag) ex.set_analyze_dag(true);
  const rt::ReleaseMode release =
      cfg.early_release ? rt::ReleaseMode::Free : rt::ReleaseMode::None;

  // Measure the matrix-allocation high water of the construct+factor chain
  // from here, so the early-release saving is visible in one number.
  la::reset_matrix_peak();

  WallTimer timer;
  rt::TaskGraph build_graph;
  fmt::HSSBuildDag build_dag =
      fmt::emit_hss_build_dag(acc, opts, build_graph, release);
  if (cfg.analyze_dag) {
    WallTimer atimer;
    const rt::DagDataflowReport rep = rt::analyze_dag(build_graph);
    out.analyze_seconds += atimer.seconds();
    out.static_peak_bytes += rep.stats.peak_bytes_serial;
  }
  ex.run(build_graph);
  const fmt::HSSBuildReport rep = fmt::build_report(build_dag);
  fmt::HSSMatrix h = fmt::extract_built_hss(build_dag);
  out.build_seconds = timer.seconds();
  out.build_tasks = build_graph.num_tasks();
  out.rank_used = h.max_rank_used();
  out.max_samples = rep.max_samples;
  out.guard_growths = rep.total_growths;
  out.rank_escapes = rep.rank_escapes;
  out.worst_residual = rep.worst_residual;

  timer.reset();
  rt::TaskGraph factor_graph;
  auto factor_dag =
      ulv::emit_hss_ulv_dag(h, factor_graph, /*with_work=*/true, release);
  if (cfg.analyze_dag) {
    WallTimer atimer;
    const rt::DagDataflowReport rep = rt::analyze_dag(factor_graph);
    out.analyze_seconds += atimer.seconds();
    out.static_peak_bytes += rep.stats.peak_bytes_serial;
  }
  ex.run(factor_graph);
  ulv::HSSULV f = ulv::extract_factorization(factor_dag);
  out.factor_seconds = timer.seconds();
  out.factor_tasks = factor_graph.num_tasks();
  out.peak_matrix_bytes = la::matrix_bytes_peak();

  Rng rng(cfg.seed + 1);
  std::vector<double> b = rng.normal_vector(cfg.n);
  out.solve_error = ulv::ulv_solve_error(h, f, b);
  return out;
}

SolveThroughputOutcome run_solve_throughput(const SolveThroughputExperiment& cfg) {
  geom::Domain domain = geom::grid2d(cfg.n);
  geom::ClusterTree tree(domain, cfg.leaf_size);
  auto kernel = kernels::make_kernel(cfg.kernel);
  kernels::KernelMatrix km(*kernel, tree.points());
  fmt::KernelAccessor acc(km);

  const fmt::HSSOptions opts{.leaf_size = cfg.leaf_size,
                             .max_rank = cfg.max_rank,
                             .sample_cols = cfg.sample_cols,
                             .seed = cfg.seed,
                             .guard_tol = cfg.guard_tol};

  SolveThroughputOutcome out;
  WallTimer timer;
  fmt::HSSMatrix h = fmt::build_hss(acc, opts);
  out.build_seconds = timer.seconds();
  out.rank_used = h.max_rank_used();

  timer.reset();
  const ulv::HSSULV f = ulv::HSSULV::factorize(h);
  out.factor_seconds = timer.seconds();

  Rng rng(cfg.seed + 1);
  const la::index_t batch = std::max<la::index_t>(1, cfg.batch);
  const la::index_t ncols = std::max<la::index_t>(batch, cfg.solves);
  const la::Matrix b = la::Matrix::random_normal(rng, cfg.n, ncols);
  const la::index_t num_panels = (ncols + batch - 1) / batch;
  const auto clients = static_cast<la::index_t>(std::max(1, cfg.clients));

  // Panels round-robin across client threads; every client solves against
  // the one shared factorization with zero synchronization (HSSULV::solve
  // is const and keeps all workspace on the caller's stack).
  auto run_clients = [&](const std::function<void(const la::Matrix&, la::index_t)>&
                             solve_panel) {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(clients));
    for (la::index_t c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        for (la::index_t p = c; p < num_panels; p += clients) {
          const la::index_t c0 = p * batch;
          const la::index_t w = std::min(batch, ncols - c0);
          const la::Matrix panel = la::Matrix::from_view(b.block(0, c0, cfg.n, w));
          solve_panel(panel, p);
        }
      });
    }
    for (auto& t : pool) t.join();
  };

  std::vector<la::Matrix> blocked(static_cast<std::size_t>(num_panels));
  timer.reset();
  run_clients([&](const la::Matrix& panel, la::index_t p) {
    blocked[static_cast<std::size_t>(p)] = f.solve(panel);
  });
  out.blocked_seconds = timer.seconds();
  out.solves_per_second =
      out.blocked_seconds > 0.0 ? static_cast<double>(ncols) / out.blocked_seconds
                                : 0.0;

  if (cfg.compare_oracle) {
    std::vector<la::Matrix> oracle(static_cast<std::size_t>(num_panels));
    timer.reset();
    run_clients([&](const la::Matrix& panel, la::index_t p) {
      oracle[static_cast<std::size_t>(p)] = f.solve_columnwise(panel);
    });
    out.oracle_seconds = timer.seconds();
    out.speedup_vs_oracle =
        out.blocked_seconds > 0.0 ? out.oracle_seconds / out.blocked_seconds : 0.0;
    for (la::index_t p = 0; p < num_panels; ++p) {
      const la::Matrix& xb = blocked[static_cast<std::size_t>(p)];
      const la::Matrix& xo = oracle[static_cast<std::size_t>(p)];
      for (la::index_t j = 0; j < xb.cols(); ++j)
        for (la::index_t i = 0; i < xb.rows(); ++i)
          out.max_col_diff =
              std::max(out.max_col_diff, std::abs(xb(i, j) - xo(i, j)));
    }
  }

  std::vector<double> b0(static_cast<std::size_t>(cfg.n));
  for (la::index_t i = 0; i < cfg.n; ++i) b0[static_cast<std::size_t>(i)] = b(i, 0);
  out.solve_error = ulv::ulv_solve_error(h, f, b0);
  return out;
}

}  // namespace hatrix::driver
