#include "hatrix/solver_cache.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"

namespace hatrix::driver {

namespace {

/// boost::hash_combine-style mixer.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

std::uint64_t bits(double d) { return std::bit_cast<std::uint64_t>(d); }

}  // namespace

std::uint64_t geometry_fingerprint(const std::vector<geom::Point>& points) {
  // FNV-1a over every coordinate's bit pattern, seeded with the count:
  // order-sensitive, so a permuted (differently tree-ordered) point set
  // fingerprints differently — as it must, since the matrix entries differ.
  std::uint64_t h = 1469598103934665603ULL;
  auto absorb = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  absorb(static_cast<std::uint64_t>(points.size()));
  for (const auto& p : points)
    for (std::size_t d = 0; d < 3; ++d) absorb(bits(p[d]));
  return h;
}

std::size_t SolverKeyHash::operator()(const SolverKey& k) const {
  std::uint64_t h = std::hash<std::string>{}(k.kernel);
  h = mix(h, k.geometry);
  h = mix(h, static_cast<std::uint64_t>(k.n));
  h = mix(h, std::hash<std::string>{}(k.admissibility));
  h = mix(h, static_cast<std::uint64_t>(k.leaf_size));
  h = mix(h, static_cast<std::uint64_t>(k.max_rank));
  h = mix(h, bits(k.tol));
  h = mix(h, bits(k.guard_tol));
  h = mix(h, static_cast<std::uint64_t>(k.sample_cols));
  h = mix(h, k.seed);
  h = mix(h, std::hash<std::string>{}(k.precision));
  return static_cast<std::size_t>(h);
}

SolverKey make_solver_key(const std::string& kernel_id,
                          const std::vector<geom::Point>& points,
                          const fmt::HSSOptions& opts) {
  return SolverKey{.kernel = kernel_id,
                   .geometry = geometry_fingerprint(points),
                   .n = static_cast<la::index_t>(points.size()),
                   .admissibility = "hss-weak",
                   .leaf_size = opts.leaf_size,
                   .max_rank = opts.max_rank,
                   .tol = opts.tol,
                   .guard_tol = opts.guard_tol,
                   .sample_cols = opts.sample_cols,
                   .seed = opts.seed,
                   .precision = fmt::precision_name(opts.precision)};
}

SolverCache::SolverCache(std::size_t capacity) : capacity_(capacity) {
  HATRIX_CHECK(capacity >= 1, "solver cache needs capacity >= 1");
}

std::shared_ptr<const FactoredOperator> SolverCache::get_or_build(
    const SolverKey& key, const Builder& build) {
  std::shared_ptr<Entry> e;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      e = it->second;
      auto pos = std::find(lru_.begin(), lru_.end(), key);
      if (pos != lru_.end()) lru_.splice(lru_.begin(), lru_, pos);
    } else {
      ++misses_;
      e = std::make_shared<Entry>();
      map_.emplace(key, e);
      lru_.push_front(key);
    }
  }

  // Per-entry lock: one build per key; requests for other keys never wait
  // here. `op` itself is published under the cache-wide lock so eviction
  // can tell finished entries from in-flight ones.
  std::lock_guard<std::mutex> build_lock(e->build_mu);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (e->op) return e->op;
  }

  std::shared_ptr<const FactoredOperator> op;
  try {
    fmt::HSSBuildReport report;
    fmt::HSSMatrix h = build(report);
    op = std::make_shared<const FactoredOperator>(std::move(h), report);
  } catch (...) {
    // Drop the failed entry so later requests retry; concurrent same-key
    // waiters (queued on build_mu) will find op unset and rebuild.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end() && it->second == e) {
      map_.erase(it);
      lru_.remove(key);
    }
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    e->op = op;
    evict_overflow_locked();
  }
  return op;
}

void SolverCache::evict_overflow_locked() {
  // Walk from the cold end, skipping entries still building (their op is
  // published under mu_, so a null op here really means in-flight).
  auto it = lru_.end();
  while (map_.size() > capacity_ && it != lru_.begin()) {
    --it;
    auto mit = map_.find(*it);
    if (mit == map_.end()) {
      it = lru_.erase(it);
      continue;
    }
    if (!mit->second->op) continue;  // in-flight: never evict
    map_.erase(mit);
    it = lru_.erase(it);
    ++evictions_;
  }
}

SolverCacheStats SolverCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return SolverCacheStats{.hits = hits_,
                          .misses = misses_,
                          .evictions = evictions_,
                          .size = map_.size()};
}

void SolverCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
}

}  // namespace hatrix::driver
