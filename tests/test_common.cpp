// Tests for src/common: flop counting, tables, CLI parsing, RNG determinism.
#include <gtest/gtest.h>

#include <thread>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/flops.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace hatrix {
namespace {

TEST(Flops, AddAndReset) {
  flops::reset();
  flops::add(100);
  flops::add(23);
  EXPECT_EQ(flops::total(), 123u);
  flops::reset();
  EXPECT_EQ(flops::total(), 0u);
}

TEST(Flops, ScopeCountsDelta) {
  flops::reset();
  flops::add(10);
  flops::Scope scope;
  flops::add(32);
  EXPECT_EQ(scope.count(), 32u);
}

TEST(Flops, AggregatesAcrossThreads) {
  flops::reset();
  std::thread t1([] { flops::add(40); });
  std::thread t2([] { flops::add(2); });
  t1.join();
  t2.join();
  EXPECT_EQ(flops::total(), 42u);
}

TEST(TextTable, AlignsAndCsv) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "name,value\nalpha,1\nb,22\n");
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Cli, ParsesFormsAndDefaults) {
  const char* argv[] = {"prog", "--n", "1024", "--tol=1e-8", "--verbose",
                        "--nodes", "2,8,32"};
  Cli cli(7, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 1024);
  EXPECT_DOUBLE_EQ(cli.get_double("tol", 0.0), 1e-8);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("missing"));
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  auto nodes = cli.get_int_list("nodes", {});
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0], 2);
  EXPECT_EQ(nodes[2], 32);
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(Cli(2, const_cast<char**>(argv)), Error);
}

TEST(Cli, RoundTripsValuesThroughFormattedArgv) {
  // Values formatted the way benches emit them must parse back identically.
  const std::string n = std::to_string(int64_t{1} << 40);
  const std::string tol = "--tol=" + fmt_sci(3.25e-11);
  const std::string list = "2,8,32,128,512";
  const char* argv[] = {"prog", "--n", n.c_str(), tol.c_str(), "--nodes", list.c_str()};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), int64_t{1} << 40);
  EXPECT_DOUBLE_EQ(cli.get_double("tol", 0.0), 3.25e-11);
  auto nodes = cli.get_int_list("nodes", {});
  ASSERT_EQ(nodes.size(), 5u);
  EXPECT_EQ(nodes[4], 512);
}

TEST(Cli, EqualsAndSpaceFormsAreEquivalent) {
  const char* eq_argv[] = {"prog", "--leaf=256", "--kernel=matern"};
  const char* sp_argv[] = {"prog", "--leaf", "256", "--kernel", "matern"};
  Cli eq(3, const_cast<char**>(eq_argv));
  Cli sp(5, const_cast<char**>(sp_argv));
  EXPECT_EQ(eq.get_int("leaf", 0), sp.get_int("leaf", 0));
  EXPECT_EQ(eq.get_string("kernel", ""), sp.get_string("kernel", ""));
}

TEST(Cli, NegativeNumberIsAValueNotAFlag) {
  const char* argv[] = {"prog", "--shift", "-3.5", "--quiet"};
  Cli cli(4, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cli.get_double("shift", 0.0), -3.5);
  EXPECT_TRUE(cli.has("quiet"));
  EXPECT_EQ(cli.get_string("quiet", ""), "true");
}

TEST(Cli, RejectUnknownThrowsForUnqueriedFlag) {
  const char* argv[] = {"prog", "--n", "64", "--laef", "128"};  // typo'd --leaf
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 64);
  EXPECT_EQ(cli.get_int("leaf", 256), 256);  // typo silently hits fallback...
  EXPECT_THROW(cli.reject_unknown(), Error); // ...but the audit fails loudly
}

TEST(Cli, RejectUnknownPassesWhenAllFlagsQueried) {
  const char* argv[] = {"prog", "--n", "64", "--verbose"};
  Cli cli(4, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 64);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_NO_THROW(cli.reject_unknown());
}

TEST(Cli, MalformedNumbersFailLoudly) {
  const char* argv[] = {"prog", "--n", "12x", "--tol", "abc", "--nodes", "1,two,3"};
  Cli cli(7, const_cast<char**>(argv));
  EXPECT_THROW((void)cli.get_int("n", 0), Error);
  EXPECT_THROW((void)cli.get_double("tol", 0.0), Error);
  EXPECT_THROW((void)cli.get_int_list("nodes", {}), Error);
}

TEST(Cli, OutOfRangeNumbersFailLoudly) {
  const char* argv[] = {"prog", "--n", "99999999999999999999", "--tol", "1e999"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_THROW((void)cli.get_int("n", 0), Error);       // would saturate LLONG_MAX
  EXPECT_THROW((void)cli.get_double("tol", 0.0), Error);  // would saturate to inf
}

TEST(Cli, SubnormalDoublesAreAccepted) {
  const char* argv[] = {"prog", "--tol", "1e-310"};  // underflows to a denormal
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cli.get_double("tol", 0.0), 1e-310);
}

TEST(Cli, MalformedListsFailLoudly) {
  const char* argv[] = {"prog", "--a", "1,2,", "--b=", "--c", "1,,2"};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_THROW((void)cli.get_int_list("a", {}), Error);  // trailing comma
  EXPECT_THROW((void)cli.get_int_list("b", {}), Error);  // empty value
  EXPECT_THROW((void)cli.get_int_list("c", {}), Error);  // empty segment
}

TEST(TextTable, EmptyTableRendersHeaderAndRule) {
  TextTable t({"n", "time", "err"});
  EXPECT_EQ(t.rows(), 0u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("n | time | err"), std::string::npos);
  EXPECT_NE(s.find("-------"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "n,time,err\n");
}

TEST(TextTable, WideCellsKeepAllLinesEqualWidth) {
  TextTable t({"k", "v"});
  t.add_row({"a-very-wide-cell-name", "1"});
  t.add_row({"b", "another-wide-value"});
  const std::string s = t.to_string();
  std::vector<std::size_t> lengths;
  std::size_t pos = 0;
  while (pos < s.size()) {
    auto nl = s.find('\n', pos);
    lengths.push_back(nl - pos);
    pos = nl + 1;
  }
  ASSERT_EQ(lengths.size(), 4u);  // header, rule, two rows
  for (std::size_t len : lengths) EXPECT_EQ(len, lengths[0]);
}

TEST(TextTable, SingleColumnTable) {
  TextTable t({"only"});
  t.add_row({"x"});
  EXPECT_EQ(t.to_csv(), "only\nx\n");
  const std::string s = t.to_string();
  EXPECT_EQ(s.find('|'), std::string::npos);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(a.normal(), b.normal());
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.index(17);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 17);
  }
}

}  // namespace
}  // namespace hatrix
