#include "kernels/bessel.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hatrix::kernels {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Power series I_nu(x) = (x/2)^nu * sum_k (x^2/4)^k / (k! * Gamma(nu+k+1)).
// Converges fast for x <~ 20, which is where the series route for K is used.
double bessel_i_series(double nu, double x) {
  const double q = 0.25 * x * x;
  double term = 1.0 / std::tgamma(nu + 1.0);
  double sum = term;
  for (int k = 1; k < 200; ++k) {
    term *= q / (static_cast<double>(k) * (nu + static_cast<double>(k)));
    sum += term;
    if (std::abs(term) < 1e-18 * std::abs(sum)) break;
  }
  return std::pow(0.5 * x, nu) * sum;
}

// Asymptotic expansion for large x:
// K_nu(x) ~ sqrt(pi/(2x)) e^{-x} [1 + (mu-1)/(8x) + (mu-1)(mu-9)/(2!(8x)^2)+..]
// with mu = 4 nu^2.
double bessel_k_asymptotic(double nu, double x) {
  const double mu = 4.0 * nu * nu;
  double term = 1.0;
  double sum = 1.0;
  for (int k = 1; k < 30; ++k) {
    const double f = (mu - (2.0 * k - 1.0) * (2.0 * k - 1.0)) /
                     (static_cast<double>(k) * 8.0 * x);
    term *= f;
    sum += term;
    if (std::abs(term) < 1e-17 * std::abs(sum)) break;
  }
  return std::sqrt(kPi / (2.0 * x)) * std::exp(-x) * sum;
}

// Series route via the reflection formula; nu must not be an integer.
double bessel_k_series(double nu, double x) {
  return 0.5 * kPi * (bessel_i_series(-nu, x) - bessel_i_series(nu, x)) /
         std::sin(nu * kPi);
}

bool near_integer(double v, double tol = 1e-9) {
  return std::abs(v - std::round(v)) < tol;
}

bool near_half_integer(double v, double tol = 1e-12) {
  return near_integer(v - 0.5, tol);
}

// Closed forms for half-integer orders:
// K_{1/2}(x) = sqrt(pi/(2x)) e^{-x};
// recurrence K_{n+1} = K_{n-1} + (2n/x) K_n raises the order.
double bessel_k_half_integer(double nu, double x) {
  const double base = std::sqrt(kPi / (2.0 * x)) * std::exp(-x);
  double km = base;           // K_{1/2}
  if (nu < 1.0) return km;
  double k = base * (1.0 + 1.0 / x);  // K_{3/2}
  double order = 1.5;
  while (order + 0.5 < nu + 1e-9) {
    const double kn = km + (2.0 * order / x) * k;
    km = k;
    k = kn;
    order += 1.0;
  }
  return k;
}

}  // namespace

double bessel_i(double nu, double x) {
  HATRIX_CHECK(x >= 0.0, "bessel_i requires x >= 0");
  return bessel_i_series(nu, x);
}

double bessel_k(double nu, double x) {
  HATRIX_CHECK(x > 0.0, "bessel_k requires x > 0");
  nu = std::abs(nu);  // K_{-nu} = K_nu
  if (x > 700.0) return 0.0;  // underflows double range

  if (near_half_integer(nu)) return bessel_k_half_integer(nu, x);

  if (x >= 18.0) return bessel_k_asymptotic(nu, x);

  if (!near_integer(nu)) return bessel_k_series(nu, x);

  // Integer order: compute at the two neighbouring non-integer orders and
  // take the limit by averaging (nudge trick), then refine with the upward
  // recurrence from orders 0 and 1 computed via the nudge.
  const double eps = 1e-6;
  const int n = static_cast<int>(std::round(nu));
  auto k_at = [&](double order) {
    return 0.5 * (bessel_k_series(order - eps, x) + bessel_k_series(order + eps, x));
  };
  if (n == 0) return k_at(0.0);
  if (n == 1) return k_at(1.0);
  double km = k_at(0.0);
  double k = k_at(1.0);
  for (int m = 1; m < n; ++m) {
    const double kn = km + (2.0 * m / x) * k;
    km = k;
    k = kn;
  }
  return k;
}

}  // namespace hatrix::kernels
