#include "common/table.hpp"

#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace hatrix {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  HATRIX_CHECK(row.size() == header_.size(), "table row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(width[c] - row[c].size(), ' ');
      if (c + 1 != row.size()) out << " | ";
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 3 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 != row.size()) out << ',';
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt_sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3e", v);
  return buf;
}

std::string fmt_fixed(double v, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace hatrix
