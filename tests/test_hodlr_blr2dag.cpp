// Tests for the HODLR format (the paper's Sec.-2 contrast to HSS) and the
// BLR²-ULV task DAG (Alg. 1 through the runtime).
#include <gtest/gtest.h>

#include <cmath>

#include "format/accessor.hpp"
#include "format/blr2.hpp"
#include "format/hodlr.hpp"
#include "format/hss_builder.hpp"
#include "geometry/cluster_tree.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "runtime/thread_pool_executor.hpp"
#include "ulv/blr2_ulv_tasks.hpp"

namespace hatrix {
namespace {

using la::index_t;
using la::Matrix;

struct Problem {
  geom::Domain domain;
  std::unique_ptr<geom::ClusterTree> tree;
  std::unique_ptr<kernels::Kernel> kernel;
  std::unique_ptr<kernels::KernelMatrix> km;

  Problem(index_t n, index_t leaf, const std::string& kname = "yukawa") {
    domain = geom::grid2d(n);
    tree = std::make_unique<geom::ClusterTree>(domain, leaf);
    kernel = kernels::make_kernel(kname);
    km = std::make_unique<kernels::KernelMatrix>(*kernel, tree->points());
  }
};

double vec_rel_err(const std::vector<double>& a, const std::vector<double>& b) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - b[i]) * (a[i] - b[i]);
    den += a[i] * a[i];
  }
  return std::sqrt(num / den);
}

TEST(Hodlr, RangesTileEveryLevel) {
  fmt::HODLRMatrix m(1000, 3);
  for (int l = 0; l <= 3; ++l) {
    index_t covered = 0;
    for (index_t i = 0; i < m.num_nodes(l); ++i) {
      auto [b, e] = m.range(l, i);
      EXPECT_EQ(b, covered);
      covered = e;
    }
    EXPECT_EQ(covered, 1000);
  }
}

TEST(Hodlr, RangesMatchHssConvention) {
  Problem p(777, 100);
  auto h = fmt::make_hss_skeleton(777, 100, 10);
  fmt::HODLRMatrix m(777, h.max_level());
  for (int l = 0; l <= h.max_level(); ++l)
    for (index_t i = 0; i < m.num_nodes(l); ++i) {
      auto [b, e] = m.range(l, i);
      EXPECT_EQ(b, h.node(l, i).begin);
      EXPECT_EQ(e, h.node(l, i).end);
    }
}

TEST(Hodlr, ReconstructionAndMatvec) {
  Problem p(1024, 128, "matern");
  fmt::KernelAccessor acc(*p.km);
  auto m = fmt::build_hodlr(acc, {.leaf_size = 128, .max_rank = 64, .tol = 1e-9});
  Matrix a = p.km->dense();
  EXPECT_LT(la::rel_error(a.view(), m.dense().view()), 5e-5);

  Rng rng(401);
  std::vector<double> x = rng.normal_vector(1024);
  std::vector<double> y;
  m.matvec(x, y);
  std::vector<double> y_ref(1024, 0.0);
  la::gemv(1.0, m.dense().view(), la::Trans::No, x.data(), 0.0, y_ref.data());
  EXPECT_LT(vec_rel_err(y_ref, y), 1e-12);
}

TEST(Hodlr, AcaKeepsRanksAdaptive) {
  Problem p(2048, 256, "yukawa");
  fmt::KernelAccessor acc(*p.km);
  auto m = fmt::build_hodlr(acc, {.leaf_size = 256, .max_rank = 256, .tol = 1e-8});
  EXPECT_GT(m.max_rank_used(), 0);
  EXPECT_LT(m.max_rank_used(), 256);  // ACA stopped well before the cap
}

TEST(Hodlr, StorageAboveHssBelowDense) {
  // The paper's Sec.-2 distinction quantified: no shared/nested bases means
  // HODLR stores more than HSS (O(N log N) vs O(N)) at comparable accuracy.
  Problem p(4096, 256, "yukawa");
  fmt::KernelAccessor acc(*p.km);
  auto hodlr = fmt::build_hodlr(acc, {.leaf_size = 256, .max_rank = 128, .tol = 1e-7});
  auto hss = fmt::build_hss(
      acc, {.leaf_size = 256, .max_rank = 64, .tol = 0.0, .sample_cols = 400});
  EXPECT_GT(hodlr.memory_bytes(), hss.memory_bytes());
  EXPECT_LT(hodlr.memory_bytes(), 4096 * 4096 * 8);
}

class Blr2DagWorkers : public ::testing::TestWithParam<int> {};

TEST_P(Blr2DagWorkers, MatchesSequentialAlg1) {
  const int workers = GetParam();
  Problem p(1024, 128, "laplace2d");
  fmt::KernelAccessor acc(*p.km);
  auto m = fmt::build_blr2(acc, {.leaf_size = 128, .max_rank = 40, .tol = 0.0});

  rt::TaskGraph graph;
  auto dag = ulv::emit_blr2_ulv_dag(m, graph, /*with_work=*/true);
  rt::ThreadPoolExecutor ex(workers);
  auto stats = ex.run(graph);
  EXPECT_EQ(rt::validate_trace(graph, stats), "");
  auto f_tasks = ulv::extract_blr2_factorization(dag);
  auto f_seq = ulv::BLR2ULV::factorize(m);

  Rng rng(402);
  std::vector<double> b = rng.normal_vector(1024);
  EXPECT_LT(vec_rel_err(f_seq.solve(b), f_tasks.solve(b)), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Workers, Blr2DagWorkers, ::testing::Values(1, 4));

TEST(Blr2Dag, TaskCountIsLinearInBlocks) {
  Problem p(2048, 256);
  fmt::KernelAccessor acc(*p.km);
  auto m = fmt::build_blr2(
      acc, {.leaf_size = 256, .max_rank = 20, .tol = 0.0, .sample_cols = 200});
  rt::TaskGraph graph;
  (void)ulv::emit_blr2_ulv_dag(m, graph, false);
  EXPECT_EQ(graph.num_tasks(), 2 * m.num_blocks() + 2);
}

TEST(Blr2Dag, MergeBottleneckGrowsWithN) {
  // Alg. 1's defect (Sec. 3.1): the final dense Cholesky is of size
  // (N/leaf)*rank, so its cost grows cubically with N — the HSS-ULV's merge
  // keeps it constant-size per level instead.
  auto root_dim = [](index_t n) {
    Problem p(n, 256, "yukawa");
    fmt::KernelAccessor acc(*p.km);
    auto m = fmt::build_blr2(
        acc, {.leaf_size = 256, .max_rank = 30, .tol = 0.0, .sample_cols = 200});
    rt::TaskGraph graph;
    (void)ulv::emit_blr2_ulv_dag(m, graph, false);
    // Last task is the merged Cholesky; dims[0] is its dimension.
    return graph.tasks().back().dims[0];
  };
  EXPECT_GE(root_dim(4096), 2 * root_dim(2048) - 2);
}

}  // namespace
}  // namespace hatrix
