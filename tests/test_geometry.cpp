// Tests for domains, the cluster tree, and admissibility predicates.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "geometry/cluster_tree.hpp"
#include "geometry/domain.hpp"

namespace hatrix::geom {
namespace {

TEST(Domain, Grid2dSizesAndBounds) {
  for (index_t n : {16, 100, 1024}) {
    Domain d = grid2d(n);
    EXPECT_EQ(d.size(), n);
    for (const auto& p : d.points) {
      EXPECT_GE(p[0], 0.0);
      EXPECT_LE(p[0], 1.0);
      EXPECT_GE(p[1], 0.0);
      EXPECT_LE(p[1], 1.0);
      EXPECT_EQ(p[2], 0.0);
    }
  }
}

TEST(Domain, Grid2dPointsDistinct) {
  Domain d = grid2d(64);
  std::set<std::pair<double, double>> seen;
  for (const auto& p : d.points) seen.insert({p[0], p[1]});
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Domain, Grid3dCoversCube) {
  Domain d = grid3d(27);
  EXPECT_EQ(d.size(), 27);
  double maxz = 0.0;
  for (const auto& p : d.points) maxz = std::max(maxz, p[2]);
  EXPECT_GT(maxz, 0.0);
}

TEST(Domain, CircleOnUnitRadius) {
  Domain d = circle2d(32);
  for (const auto& p : d.points)
    EXPECT_NEAR(p[0] * p[0] + p[1] * p[1], 1.0, 1e-12);
}

TEST(Domain, DistKnownValue) {
  Point a{{0, 0, 0}}, b{{3, 4, 0}};
  EXPECT_DOUBLE_EQ(dist(a, b), 5.0);
}

TEST(Domain, RandomRespectsBounds) {
  Rng rng(3);
  Domain d = random2d(100, rng);
  for (const auto& p : d.points) {
    EXPECT_GE(p[0], 0.0);
    EXPECT_LT(p[0], 1.0);
  }
}

TEST(ClusterTree, LevelsAndNodeCounts) {
  Domain d = grid2d(256);
  ClusterTree tree(d, 32);
  EXPECT_EQ(tree.max_level(), 3);  // 256 / 2^3 = 32
  for (int l = 0; l <= tree.max_level(); ++l)
    EXPECT_EQ(tree.num_nodes(l), index_t{1} << l);
}

TEST(ClusterTree, NodesPartitionEachLevel) {
  Domain d = grid2d(250);  // non power of two
  ClusterTree tree(d, 16);
  for (int l = 0; l <= tree.max_level(); ++l) {
    index_t covered = 0;
    for (index_t i = 0; i < tree.num_nodes(l); ++i) {
      const auto& nd = tree.node(l, i);
      EXPECT_EQ(nd.begin, covered);
      covered = nd.end;
      EXPECT_GE(nd.size(), 0);
    }
    EXPECT_EQ(covered, d.size());
  }
}

TEST(ClusterTree, ChildrenTileParent) {
  Domain d = grid2d(512);
  ClusterTree tree(d, 64);
  for (int l = 0; l < tree.max_level(); ++l)
    for (index_t i = 0; i < tree.num_nodes(l); ++i) {
      const auto& parent = tree.node(l, i);
      const auto& c0 = tree.node(l + 1, 2 * i);
      const auto& c1 = tree.node(l + 1, 2 * i + 1);
      EXPECT_EQ(parent.begin, c0.begin);
      EXPECT_EQ(c0.end, c1.begin);
      EXPECT_EQ(c1.end, parent.end);
    }
}

TEST(ClusterTree, LeafSizesRespectBound) {
  Domain d = grid2d(1000);
  ClusterTree tree(d, 50);
  const int L = tree.max_level();
  for (index_t i = 0; i < tree.num_nodes(L); ++i)
    EXPECT_LE(tree.node(L, i).size(), 50);
}

TEST(ClusterTree, BalancedSizes) {
  Domain d = grid2d(1000);
  ClusterTree tree(d, 50);
  const int L = tree.max_level();
  index_t mn = d.size(), mx = 0;
  for (index_t i = 0; i < tree.num_nodes(L); ++i) {
    mn = std::min(mn, tree.node(L, i).size());
    mx = std::max(mx, tree.node(L, i).size());
  }
  EXPECT_LE(mx - mn, 1);
}

TEST(ClusterTree, PermIsAPermutation) {
  Rng rng(5);
  Domain d = random2d(333, rng);
  ClusterTree tree(d, 20);
  std::vector<index_t> p = tree.perm();
  std::sort(p.begin(), p.end());
  for (index_t i = 0; i < 333; ++i) EXPECT_EQ(p[static_cast<std::size_t>(i)], i);
}

TEST(ClusterTree, PermMapsPointsBack) {
  Rng rng(6);
  Domain d = random2d(100, rng);
  ClusterTree tree(d, 10);
  for (index_t k = 0; k < 100; ++k) {
    const auto& reordered = tree.points()[static_cast<std::size_t>(k)];
    const auto& original = d.points[static_cast<std::size_t>(tree.perm()[static_cast<std::size_t>(k)])];
    EXPECT_EQ(reordered[0], original[0]);
    EXPECT_EQ(reordered[1], original[1]);
  }
}

TEST(ClusterTree, BisectionSeparatesSpace) {
  // After one split of a uniform grid, the two halves should have disjoint
  // bounding boxes along the split axis (distance > 0 between siblings'
  // interiors is not guaranteed, but boxes must not be identical).
  Domain d = grid2d(1024);
  ClusterTree tree(d, 512);
  ASSERT_EQ(tree.max_level(), 1);
  const double diam0 = tree.diameter(1, 0);
  const double root_diam = tree.diameter(0, 0);
  EXPECT_LT(diam0, root_diam);
}

TEST(ClusterTree, BoxDistanceZeroForSelf) {
  Domain d = grid2d(64);
  ClusterTree tree(d, 16);
  EXPECT_EQ(tree.box_distance(2, 1, 1), 0.0);
}

TEST(Admissibility, WeakIsOffDiagonal) {
  EXPECT_TRUE(weakly_admissible(0, 1));
  EXPECT_FALSE(weakly_admissible(2, 2));
}

TEST(Admissibility, StrongRequiresSeparation) {
  Domain d = grid2d(256);
  ClusterTree tree(d, 16);
  const int L = tree.max_level();
  // A node is never strongly admissible with itself.
  EXPECT_FALSE(strongly_admissible(tree, L, 3, 3, 1.0));
  // Far-apart leaves on a grid should be strongly admissible at eta = 1:
  // find the pair with the largest box distance.
  index_t bi = 0, bj = 1;
  double best = -1.0;
  for (index_t i = 0; i < tree.num_nodes(L); ++i)
    for (index_t j = 0; j < tree.num_nodes(L); ++j)
      if (tree.box_distance(L, i, j) > best) {
        best = tree.box_distance(L, i, j);
        bi = i;
        bj = j;
      }
  EXPECT_TRUE(strongly_admissible(tree, L, bi, bj, 1.0));
}

TEST(ClusterTree, SingleNodeTreeWhenLeafCoversAll) {
  Domain d = grid2d(10);
  ClusterTree tree(d, 100);
  EXPECT_EQ(tree.max_level(), 0);
  EXPECT_EQ(tree.node(0, 0).size(), 10);
}

TEST(ClusterTree, ThrowsOnBadArgs) {
  Domain d = grid2d(10);
  EXPECT_THROW(ClusterTree(d, 0), Error);
  ClusterTree tree(d, 4);
  EXPECT_THROW((void)tree.node(99, 0), Error);
  EXPECT_THROW((void)tree.node(0, 5), Error);
}

}  // namespace
}  // namespace hatrix::geom
