#pragma once
/// \file cost_model.hpp
/// \brief Per-task compute-cost model for the discrete-event simulator.
///
/// Maps a task's (kind, dims) to seconds via classical flop counts divided
/// by a sustained flop rate. The rate can be fixed (deterministic tests,
/// Fugaku-like what-if runs) or calibrated by timing this machine's own
/// kernels (so simulated magnitudes track the real implementation that
/// produced the DAG).

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/task_graph.hpp"

namespace hatrix::distsim {

class CostModel {
 public:
  /// Fixed sustained rate in GFLOP/s per core.
  explicit CostModel(double gflops_per_core = 2.0);

  /// Measure this machine: times a mid-size gemm and potrf and uses the
  /// achieved rate. Deterministic models are preferable for tests; this is
  /// for benches that want magnitudes matching the host.
  static CostModel calibrated();

  /// Classical flop count of a task (by kind/dims). Unknown kinds get a
  /// small fixed cost.
  [[nodiscard]] static double task_flops(const rt::Task& t);

  /// Seconds one core needs for the task.
  [[nodiscard]] double seconds(const rt::Task& t) const;

  [[nodiscard]] double gflops_per_core() const { return gflops_; }

 private:
  double gflops_;
};

}  // namespace hatrix::distsim
