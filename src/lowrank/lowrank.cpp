#include "lowrank/lowrank.hpp"

#include <vector>

#include "common/error.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"

namespace hatrix::lr {

LowRank::LowRank(Matrix u_, Matrix v_) : u(std::move(u_)), v(std::move(v_)) {
  HATRIX_CHECK(u.cols() == v.cols(), "LowRank factor rank mismatch");
}

void LowRank::demote_storage() {
  u.demote_storage();
  v.demote_storage();
}

Matrix LowRank::dense() const {
  return la::matmul(la::F64Block(u).view(), la::F64Block(v).view(),
                    la::Trans::No, la::Trans::Yes);
}

void LowRank::matvec(double alpha, const double* x, double beta, double* y) const {
  std::vector<double> t(static_cast<std::size_t>(rank()), 0.0);
  la::gemv(1.0, la::F64Block(v).view(), la::Trans::Yes, x, 0.0, t.data());
  la::gemv(alpha, la::F64Block(u).view(), la::Trans::No, t.data(), beta, y);
}

void LowRank::matvec_trans(double alpha, const double* x, double beta, double* y) const {
  std::vector<double> t(static_cast<std::size_t>(rank()), 0.0);
  la::gemv(1.0, la::F64Block(u).view(), la::Trans::Yes, x, 0.0, t.data());
  la::gemv(alpha, la::F64Block(v).view(), la::Trans::No, t.data(), beta, y);
}

double approx_error(const LowRank& lr, la::ConstMatrixView reference) {
  Matrix d = lr.dense();
  return la::rel_error(reference, d.view());
}

}  // namespace hatrix::lr
