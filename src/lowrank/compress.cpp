#include "lowrank/compress.hpp"

#include <algorithm>

#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"

namespace hatrix::lr {

LowRank compress(la::ConstMatrixView a, index_t max_rank, double tol) {
  const double abs_tol = tol > 0.0 ? tol * la::norm_fro(a) : 0.0;
  auto f = la::pivoted_qr(a, max_rank, abs_tol);
  // A P = Q R  =>  A = Q (R Pᵀ); V rows follow the inverse permutation.
  Matrix v(a.cols, f.rank);
  for (index_t j = 0; j < a.cols; ++j) {
    const index_t orig = f.perm[static_cast<std::size_t>(j)];
    for (index_t i = 0; i < f.rank; ++i) v(orig, i) = f.r(i, j);
  }
  return LowRank(std::move(f.q), std::move(v));
}

LowRank truncated_svd(la::ConstMatrixView a, index_t max_rank, double tol) {
  auto f = la::svd(a);
  const double cutoff = tol > 0.0 && !f.s.empty() ? tol * f.s.front() : 0.0;
  index_t k = 0;
  while (k < static_cast<index_t>(f.s.size()) && k < max_rank &&
         f.s[static_cast<std::size_t>(k)] > cutoff)
    ++k;
  Matrix u(a.rows, k), v(a.cols, k);
  for (index_t j = 0; j < k; ++j) {
    const double s = f.s[static_cast<std::size_t>(j)];
    for (index_t i = 0; i < a.rows; ++i) u(i, j) = f.u(i, j);
    for (index_t i = 0; i < a.cols; ++i) v(i, j) = f.v(i, j) * s;
  }
  return LowRank(std::move(u), std::move(v));
}

LowRank recompress(const LowRank& a, index_t max_rank, double tol) {
  if (a.rank() == 0) return a;
  // A = U Vᵀ = (Qu Ru)(Qv Rv)ᵀ = Qu (Ru Rvᵀ) Qvᵀ; SVD the small core.
  auto fu = la::qr(a.u.view());
  auto fv = la::qr(a.v.view());
  Matrix core = la::matmul(fu.r.view(), fv.r.view(), la::Trans::No, la::Trans::Yes);
  LowRank small = truncated_svd(core.view(), max_rank, tol);
  return LowRank(la::matmul(fu.q.view(), small.u.view()),
                 la::matmul(fv.q.view(), small.v.view()));
}

LowRank lr_add_round(double alpha, const LowRank& a, double beta, const LowRank& b,
                     index_t max_rank, double tol) {
  HATRIX_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
               "lr_add_round shape mismatch");
  // Stack factors: alpha A + beta B = [Ua Ub] [alpha Va beta Vb]ᵀ.
  Matrix u = la::hconcat({a.u.view(), b.u.view()});
  Matrix va = Matrix::from_view(a.v.view());
  la::scale(va.view(), alpha);
  Matrix vb = Matrix::from_view(b.v.view());
  la::scale(vb.view(), beta);
  Matrix v = la::hconcat({va.view(), vb.view()});
  return recompress(LowRank(std::move(u), std::move(v)), max_rank, tol);
}

}  // namespace hatrix::lr
