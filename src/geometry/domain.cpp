#include "geometry/domain.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hatrix::geom {

double dist(const Point& a, const Point& b) {
  const double dx = a.x[0] - b.x[0];
  const double dy = a.x[1] - b.x[1];
  const double dz = a.x[2] - b.x[2];
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

Domain grid2d(index_t n) {
  HATRIX_CHECK(n > 0, "grid2d needs n > 0");
  Domain d;
  d.dim = 2;
  const auto side = static_cast<index_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  const double h = side > 1 ? 1.0 / static_cast<double>(side - 1) : 0.0;
  d.points.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < side && static_cast<index_t>(d.points.size()) < n; ++i)
    for (index_t j = 0; j < side && static_cast<index_t>(d.points.size()) < n; ++j)
      d.points.push_back(Point{{static_cast<double>(i) * h, static_cast<double>(j) * h, 0.0}});
  return d;
}

Domain grid3d(index_t n) {
  HATRIX_CHECK(n > 0, "grid3d needs n > 0");
  Domain d;
  d.dim = 3;
  const auto side = static_cast<index_t>(std::ceil(std::cbrt(static_cast<double>(n))));
  const double h = side > 1 ? 1.0 / static_cast<double>(side - 1) : 0.0;
  d.points.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < side && static_cast<index_t>(d.points.size()) < n; ++i)
    for (index_t j = 0; j < side && static_cast<index_t>(d.points.size()) < n; ++j)
      for (index_t k = 0; k < side && static_cast<index_t>(d.points.size()) < n; ++k)
        d.points.push_back(Point{{static_cast<double>(i) * h, static_cast<double>(j) * h,
                                  static_cast<double>(k) * h}});
  return d;
}

Domain circle2d(index_t n) {
  HATRIX_CHECK(n > 0, "circle2d needs n > 0");
  Domain d;
  d.dim = 2;
  d.points.reserve(static_cast<std::size_t>(n));
  const double two_pi = 2.0 * 3.14159265358979323846;
  for (index_t i = 0; i < n; ++i) {
    const double t = two_pi * static_cast<double>(i) / static_cast<double>(n);
    d.points.push_back(Point{{std::cos(t), std::sin(t), 0.0}});
  }
  return d;
}

Domain line1d(index_t n) {
  HATRIX_CHECK(n > 0, "line1d needs n > 0");
  Domain d;
  d.dim = 1;
  const double h = n > 1 ? 1.0 / static_cast<double>(n - 1) : 0.0;
  d.points.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    d.points.push_back(Point{{static_cast<double>(i) * h, 0.0, 0.0}});
  return d;
}

Domain random2d(index_t n, Rng& rng) {
  Domain d;
  d.dim = 2;
  d.points.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    d.points.push_back(Point{{rng.uniform(), rng.uniform(), 0.0}});
  return d;
}

Domain random3d(index_t n, Rng& rng) {
  Domain d;
  d.dim = 3;
  d.points.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    d.points.push_back(Point{{rng.uniform(), rng.uniform(), rng.uniform()}});
  return d;
}

}  // namespace hatrix::geom
