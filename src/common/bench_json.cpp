#include "common/bench_json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace hatrix {

namespace {

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

}  // namespace

BenchJson::Row& BenchJson::Row::add(const std::string& key, double value) {
  fields_.emplace_back(key, number(value));
  return *this;
}

BenchJson::Row& BenchJson::Row::add(const std::string& key, std::int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

BenchJson::Row& BenchJson::Row::add(const std::string& key,
                                    const std::string& value) {
  fields_.emplace_back(key, quote(value));
  return *this;
}

BenchJson::Row& BenchJson::row() {
  rows_.emplace_back();
  return rows_.back();
}

std::string BenchJson::to_string() const {
  std::string out = "{\n  \"bench\": " + quote(name_) + ",\n  \"rows\": [\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += "    {";
    const auto& fields = rows_[r].fields_;
    for (std::size_t f = 0; f < fields.size(); ++f) {
      out += quote(fields[f].first) + ": " + fields[f].second;
      if (f + 1 < fields.size()) out += ", ";
    }
    out += r + 1 < rows_.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool BenchJson::write(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_string();
  return static_cast<bool>(f);
}

}  // namespace hatrix
