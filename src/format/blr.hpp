#pragma once
/// \file blr.hpp
/// \brief Flat BLR matrix (the LORAPO baseline's format).
///
/// Uniform tiling; every off-diagonal tile is compressed *individually*
/// (no shared bases, unlike BLR²/HSS), diagonal tiles stay dense. LORAPO
/// runs a tile Cholesky on this format with adaptive per-tile ranks, which
/// is what gives it O(N^2) factorization complexity (Table 1).

#include <vector>

#include "format/accessor.hpp"
#include "lowrank/compress.hpp"

namespace hatrix::fmt {

struct BLROptions {
  index_t tile_size = 2048;  ///< paper uses 2048/4096 for LORAPO (Table 2)
  index_t max_rank = 1024;   ///< per-tile rank cap
  double tol = 1e-8;         ///< adaptive-rank truncation tolerance
};

class BLRMatrix {
 public:
  BLRMatrix() = default;
  BLRMatrix(index_t n, index_t num_tiles);

  [[nodiscard]] index_t size() const { return n_; }
  [[nodiscard]] index_t num_tiles() const { return nt_; }
  [[nodiscard]] index_t tile_begin(index_t i) const { return i * n_ / nt_; }
  [[nodiscard]] index_t tile_size(index_t i) const {
    return (i + 1) * n_ / nt_ - i * n_ / nt_;
  }

  /// Dense diagonal tile i.
  [[nodiscard]] Matrix& diag(index_t i);
  [[nodiscard]] const Matrix& diag(index_t i) const;

  /// Low-rank off-diagonal tile (i, j), i > j (lower triangle; the matrix
  /// is symmetric).
  [[nodiscard]] lr::LowRank& tile(index_t i, index_t j);
  [[nodiscard]] const lr::LowRank& tile(index_t i, index_t j) const;

  void matvec(const std::vector<double>& x, std::vector<double>& y) const;
  [[nodiscard]] Matrix dense() const;
  [[nodiscard]] std::int64_t memory_bytes() const;
  /// Largest tile rank (LORAPO's adaptive ranks: reported by benches).
  [[nodiscard]] index_t max_rank_used() const;

 private:
  index_t n_ = 0;
  index_t nt_ = 0;
  std::vector<Matrix> diags_;
  std::vector<lr::LowRank> tiles_;  // packed strict lower triangle
};

/// Build a symmetric BLR approximation with per-tile truncated-QR
/// compression at opts.tol (capped at opts.max_rank).
BLRMatrix build_blr(const BlockAccessor& acc, const BLROptions& opts);

/// Structure-only BLR skeleton: every off-diagonal tile reports `rank`
/// (clipped by the tile size) but no numerical data is allocated — tile
/// factors get 0 x rank shapes. For emitting costing-only LORAPO DAGs at
/// scales where the matrix itself is irrelevant.
BLRMatrix make_blr_skeleton(index_t n, index_t tile_size, index_t rank);

}  // namespace hatrix::fmt
