// Tests for the strongly admissible BLR² extension: admissibility pattern,
// exact near field, matvec consistency, accuracy advantage over weak
// admissibility at equal rank, and the new kernels that exercise it.
#include <gtest/gtest.h>

#include <cmath>

#include "format/accessor.hpp"
#include "format/blr2.hpp"
#include "format/blr2_strong.hpp"
#include "geometry/cluster_tree.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/norms.hpp"

namespace hatrix::fmt {
namespace {

struct Problem {
  geom::Domain domain;
  std::unique_ptr<geom::ClusterTree> tree;
  std::unique_ptr<kernels::Kernel> kernel;
  std::unique_ptr<kernels::KernelMatrix> km;

  Problem(la::index_t n, la::index_t leaf, const std::string& kname) {
    domain = geom::grid2d(n);
    tree = std::make_unique<geom::ClusterTree>(domain, leaf);
    kernel = kernels::make_kernel(kname);
    km = std::make_unique<kernels::KernelMatrix>(*kernel, tree->points());
  }
};

TEST(StrongBlr2, AdmissibilityPatternIsGeometric) {
  Problem p(1024, 64, "yukawa");
  KernelAccessor acc(*p.km);
  auto m = build_strong_blr2(acc, *p.tree, {.leaf_size = 64, .max_rank = 20}, 1.0);
  const int L = p.tree->max_level();
  for (la::index_t i = 0; i < m.num_blocks(); ++i)
    for (la::index_t j = 0; j < i; ++j)
      EXPECT_EQ(m.admissible(i, j),
                geom::strongly_admissible(*p.tree, L, i, j, 1.0));
  // On a 2D grid a sizable far field is admissible while the touching
  // neighbourhood stays dense.
  EXPECT_GT(m.admissible_fraction(), 0.2);
  EXPECT_LT(m.admissible_fraction(), 1.0);
}

TEST(StrongBlr2, NearFieldIsExact) {
  Problem p(512, 64, "laplace2d");
  KernelAccessor acc(*p.km);
  auto m = build_strong_blr2(acc, *p.tree, {.leaf_size = 64, .max_rank = 10}, 1.0);
  for (la::index_t i = 0; i < m.num_blocks(); ++i)
    for (la::index_t j = 0; j < i; ++j) {
      if (m.admissible(i, j)) continue;
      const auto& ni = m.node(i);
      const auto& nj = m.node(j);
      la::Matrix exact =
          acc.block(ni.begin, nj.begin, ni.block_size(), nj.block_size());
      EXPECT_LT(la::rel_error(exact.view(), m.near_block(i, j).view()), 1e-15);
    }
}

TEST(StrongBlr2, MatvecMatchesDense) {
  Problem p(700, 100, "matern");
  KernelAccessor acc(*p.km);
  auto m = build_strong_blr2(acc, *p.tree, {.leaf_size = 100, .max_rank = 25}, 1.0);
  Rng rng(301);
  std::vector<double> x = rng.normal_vector(700);
  std::vector<double> y;
  m.matvec(x, y);
  la::Matrix rec = m.dense();
  std::vector<double> y_ref(700, 0.0);
  la::gemv(1.0, rec.view(), la::Trans::No, x.data(), 0.0, y_ref.data());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < 700; ++i) {
    num += (y[i] - y_ref[i]) * (y[i] - y_ref[i]);
    den += y_ref[i] * y_ref[i];
  }
  EXPECT_LT(std::sqrt(num / den), 1e-12);
}

TEST(StrongBlr2, BeatsWeakAdmissibilityAtEqualRank) {
  // The entire point of strong admissibility: touching clusters are not
  // low-rank; keeping them dense buys accuracy at the same rank budget.
  Problem p(1024, 128, "laplace2d");
  KernelAccessor acc(*p.km);
  HSSOptions opts{.leaf_size = 128, .max_rank = 8, .tol = 0.0};
  auto strong = build_strong_blr2(acc, *p.tree, opts, 1.0);
  auto weak = build_blr2(acc, opts);
  la::Matrix a = p.km->dense();
  const double e_strong = la::rel_error(a.view(), strong.dense().view());
  const double e_weak = la::rel_error(a.view(), weak.dense().view());
  EXPECT_LT(e_strong, e_weak);
  EXPECT_LT(e_strong, 1e-3);
}

TEST(StrongBlr2, EtaControlsCompressionAggressiveness) {
  Problem p(1024, 64, "yukawa");
  KernelAccessor acc(*p.km);
  HSSOptions opts{.leaf_size = 64, .max_rank = 15};
  auto tight = build_strong_blr2(acc, *p.tree, opts, 0.5);  // conservative
  auto loose = build_strong_blr2(acc, *p.tree, opts, 2.0);  // aggressive
  EXPECT_LT(tight.admissible_fraction(), loose.admissible_fraction());
}

TEST(StrongBlr2, MemoryBetweenDenseAndWeak) {
  Problem p(1024, 128, "yukawa");
  KernelAccessor acc(*p.km);
  HSSOptions opts{.leaf_size = 128, .max_rank = 20};
  auto strong = build_strong_blr2(acc, *p.tree, opts, 1.0);
  auto weak = build_blr2(acc, opts);
  EXPECT_GT(strong.memory_bytes(), weak.memory_bytes());
  EXPECT_LT(strong.memory_bytes(), 1024 * 1024 * 8);
}

TEST(NewKernels, Laplace3dOnCube) {
  auto k = kernels::make_kernel("laplace3d");
  geom::Domain d = geom::grid3d(216);
  geom::ClusterTree tree(d, 27);
  kernels::KernelMatrix km(*k, tree.points());
  la::Matrix a = km.dense();
  // Symmetric and positive definite on the cube grid.
  EXPECT_NO_THROW(la::potrf(a.view()));
}

TEST(NewKernels, ImqIsPositiveDefiniteWithoutRegularization) {
  auto k = kernels::make_kernel("imq");
  Rng rng(302);
  geom::Domain d = geom::random2d(300, rng);
  geom::ClusterTree tree(d, 50);
  kernels::KernelMatrix km(*k, tree.points());
  la::Matrix a = km.dense();
  EXPECT_NO_THROW(la::potrf(a.view()));
}

TEST(NewKernels, Laplace3dMatchesFormula) {
  kernels::Laplace3D k(1e-9);
  geom::Point a{{0, 0, 0}}, b{{0, 0, 2.0}};
  EXPECT_DOUBLE_EQ(k(a, b), 1.0 / (1e-9 + 2.0));
}

}  // namespace
}  // namespace hatrix::fmt
