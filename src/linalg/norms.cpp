#include "linalg/norms.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "linalg/blas.hpp"

namespace hatrix::la {

double norm_fro(ConstMatrixView a) {
  double s = 0.0;
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i) s += a(i, j) * a(i, j);
  return std::sqrt(s);
}

double norm_max(ConstMatrixView a) {
  double m = 0.0;
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i) m = std::max(m, std::abs(a(i, j)));
  return m;
}

double norm2(const std::vector<double>& x) {
  double s = 0.0;
  for (double v : x) s += v * v;
  return std::sqrt(s);
}

double rel_error(ConstMatrixView a, ConstMatrixView b) {
  HATRIX_CHECK(a.rows == b.rows && a.cols == b.cols, "rel_error shape mismatch");
  double num = 0.0, den = 0.0;
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i) {
      const double d = a(i, j) - b(i, j);
      num += d * d;
      den += a(i, j) * a(i, j);
    }
  if (den == 0.0) return num == 0.0 ? 0.0 : std::sqrt(num);
  return std::sqrt(num / den);
}

double norm2_estimate(ConstMatrixView a, int iterations) {
  if (a.rows == 0 || a.cols == 0) return 0.0;
  Rng rng(7);
  std::vector<double> x = rng.normal_vector(a.cols);
  std::vector<double> ax(static_cast<std::size_t>(a.rows), 0.0);
  double sigma = 0.0;
  for (int it = 0; it < iterations; ++it) {
    double nx = norm2(x);
    if (nx == 0.0) return 0.0;
    for (auto& v : x) v /= nx;
    gemv(1.0, a, Trans::No, x.data(), 0.0, ax.data());
    gemv(1.0, a, Trans::Yes, ax.data(), 0.0, x.data());
    sigma = std::sqrt(norm2(x));  // ||AᵀA x|| -> sigma^2 after normalization
  }
  return sigma;
}

}  // namespace hatrix::la
