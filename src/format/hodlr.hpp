#pragma once
/// \file hodlr.hpp
/// \brief HODLR matrix — the non-shared-basis contrast to HSS (Sec. 2).
///
/// The paper is explicit that HSS "should not be confused with the recursive
/// hierarchical structure of the HODLR matrix, which does not share the
/// basis but instead uses recursive low rank blocks in the off-diagonals"
/// (Ambikasaran & Darve). This module provides that format so the
/// distinction is testable: same binary tree, but every off-diagonal block
/// carries its own U·Vᵀ factors, giving O(N log N) storage versus HSS's
/// O(N) (a property the tests measure).
///
/// Construction is matrix-free via ACA on each off-diagonal block — the
/// compressor the paper cites for this purpose (Rjasanow 2002).

#include <vector>

#include "format/accessor.hpp"
#include "format/hss.hpp"  // HSSOptions
#include "lowrank/lowrank.hpp"

namespace hatrix::fmt {

/// Symmetric HODLR matrix: binary tree of individually compressed
/// off-diagonal blocks, no basis sharing.
class HODLRMatrix {
 public:
  HODLRMatrix() = default;
  /// Allocate the tree layout for an n x n matrix with the given depth.
  HODLRMatrix(index_t n, int max_level);

  /// Matrix dimension N.
  [[nodiscard]] index_t size() const { return n_; }
  /// Leaf level of the tree (level 0 is the root).
  [[nodiscard]] int max_level() const { return max_level_; }
  /// Nodes at `level` (complete binary tree).
  [[nodiscard]] index_t num_nodes(int level) const { return index_t{1} << level; }
  /// Sibling pairs at `level`.
  [[nodiscard]] index_t num_pairs(int level) const { return num_nodes(level) / 2; }

  /// Index interval of node i at `level` (midpoint splitting, same
  /// convention as HSSMatrix).
  [[nodiscard]] std::pair<index_t, index_t> range(int level, index_t i) const;

  /// Dense leaf diagonal i.
  [[nodiscard]] la::Matrix& diag(index_t i);
  /// Dense leaf diagonal i (read-only).
  [[nodiscard]] const la::Matrix& diag(index_t i) const;

  /// Low-rank block A(I_{2t+1}, I_{2t}) at `level` (the lower sibling
  /// block; symmetry gives the upper one).
  [[nodiscard]] lr::LowRank& block(int level, index_t pair);
  /// Low-rank block A(I_{2t+1}, I_{2t}) at `level` (read-only).
  [[nodiscard]] const lr::LowRank& block(int level, index_t pair) const;

  /// y = A x through the compressed blocks, O(N log N · rank).
  void matvec(const std::vector<double>& x, std::vector<double>& y) const;
  /// Materialize the represented dense matrix (tests).
  [[nodiscard]] la::Matrix dense() const;
  /// Total compressed storage in bytes (O(N log N), unlike HSS's O(N)).
  [[nodiscard]] std::int64_t memory_bytes() const;
  /// Largest block rank anywhere in the tree.
  [[nodiscard]] index_t max_rank_used() const;

 private:
  index_t n_ = 0;
  int max_level_ = 0;
  std::vector<la::Matrix> diags_;                 // [leaf]
  std::vector<std::vector<lr::LowRank>> blocks_;  // [level][pair]
};

/// Build a symmetric HODLR approximation: ACA per off-diagonal block at
/// every level, rank capped at opts.max_rank per block (note: unlike HSS,
/// the top-level blocks typically need larger ranks — measure with
/// max_rank_used()). `opts.tol` is the ACA relative stopping tolerance.
HODLRMatrix build_hodlr(const BlockAccessor& acc, const HSSOptions& opts);

}  // namespace hatrix::fmt
