// Tests for the extension features: multi-RHS and refined solves, the
// synthetic random SPD HSS generator, the task-based solve DAG (Eq. 17),
// PTG-style local task generation, and the trace exports.
#include <gtest/gtest.h>

#include <cmath>

#include "distsim/des.hpp"
#include "format/accessor.hpp"
#include "format/hss_builder.hpp"
#include "geometry/cluster_tree.hpp"
#include "hatrix/drivers.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/norms.hpp"
#include "runtime/fork_join_executor.hpp"
#include "runtime/thread_pool_executor.hpp"
#include "ulv/hss_solve_tasks.hpp"
#include "ulv/hss_ulv.hpp"

namespace hatrix {
namespace {

using la::index_t;
using la::Matrix;

double vec_rel_err(const std::vector<double>& a, const std::vector<double>& b) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - b[i]) * (a[i] - b[i]);
    den += a[i] * a[i];
  }
  return std::sqrt(num / den);
}

class RandomSpdHss : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(RandomSpdHss, RepresentedOperatorIsSpd) {
  auto [n, leaf] = GetParam();
  Rng rng(201);
  auto h = fmt::make_random_spd_hss(n, leaf, 12, rng);
  Matrix dense = h.dense();
  EXPECT_NO_THROW(la::potrf(dense.view()));
}

INSTANTIATE_TEST_SUITE_P(Shapes, RandomSpdHss,
                         ::testing::Values(std::pair<index_t, index_t>{128, 32},
                                           std::pair<index_t, index_t>{200, 25},
                                           std::pair<index_t, index_t>{512, 64}));

TEST(RandomSpdHss, UlvSolvesItExactly) {
  // ULV correctness independent of any kernel/builder: a random SPD HSS
  // operator must be solved to roundoff.
  Rng rng(202);
  auto h = fmt::make_random_spd_hss(640, 80, 16, rng);
  auto f = ulv::HSSULV::factorize(h);
  std::vector<double> b = rng.normal_vector(640);
  std::vector<double> ab;
  h.matvec(b, ab);
  auto x = f.solve(ab);
  EXPECT_LT(vec_rel_err(b, x), 1e-11);
}

TEST(RandomSpdHss, MatvecMatchesDense) {
  Rng rng(203);
  auto h = fmt::make_random_spd_hss(300, 40, 10, rng);
  Matrix dense = h.dense();
  std::vector<double> x = rng.normal_vector(300);
  std::vector<double> y;
  h.matvec(x, y);
  std::vector<double> y_ref(300, 0.0);
  la::gemv(1.0, dense.view(), la::Trans::No, x.data(), 0.0, y_ref.data());
  EXPECT_LT(vec_rel_err(y_ref, y), 1e-12);
}

TEST(MultiRhs, BlockSolveMatchesColumnwise) {
  Rng rng(204);
  auto h = fmt::make_random_spd_hss(256, 32, 8, rng);
  auto f = ulv::HSSULV::factorize(h);
  Matrix b = Matrix::random_normal(rng, 256, 5);
  Matrix x = f.solve(b);
  for (index_t j = 0; j < 5; ++j) {
    std::vector<double> col(256);
    for (index_t i = 0; i < 256; ++i) col[static_cast<std::size_t>(i)] = b(i, j);
    auto xj = f.solve(col);
    for (index_t i = 0; i < 256; ++i)
      EXPECT_EQ(x(i, j), xj[static_cast<std::size_t>(i)]);
  }
}

TEST(Refinement, ImprovesOrMatchesDirectSolve) {
  // On the compressed operator the direct solve is already near-roundoff;
  // refinement must not make it worse, and usually gains a digit.
  Rng rng(205);
  auto h = fmt::make_random_spd_hss(512, 64, 12, rng);
  auto f = ulv::HSSULV::factorize(h);
  std::vector<double> b = rng.normal_vector(512);
  std::vector<double> ab;
  h.matvec(b, ab);
  auto x0 = f.solve(ab);
  auto x1 = f.solve_refined(ab, 2);
  const double e0 = vec_rel_err(b, x0);
  const double e1 = vec_rel_err(b, x1);
  EXPECT_LE(e1, e0 * 2.0 + 1e-15);
  EXPECT_LT(e1, 1e-12);
}

class SolveDagWorkers : public ::testing::TestWithParam<int> {};

TEST_P(SolveDagWorkers, MatchesSequentialSolve) {
  const int workers = GetParam();
  Rng rng(206);
  auto h = fmt::make_random_spd_hss(768, 96, 14, rng);
  auto f = ulv::HSSULV::factorize(h);
  std::vector<double> b = rng.normal_vector(768);
  auto x_ref = f.solve(b);

  rt::TaskGraph graph;
  auto dag = ulv::emit_hss_solve_dag(f, b, graph);
  rt::ThreadPoolExecutor ex(workers);
  auto stats = ex.run(graph);
  EXPECT_EQ(rt::validate_trace(graph, stats), "");
  EXPECT_LT(vec_rel_err(x_ref, dag.state->x_col()), 1e-14);
}

INSTANTIATE_TEST_SUITE_P(Workers, SolveDagWorkers, ::testing::Values(1, 4));

TEST(SolveDag, ForkJoinExecutorWorksToo) {
  Rng rng(207);
  auto h = fmt::make_random_spd_hss(512, 64, 10, rng);
  auto f = ulv::HSSULV::factorize(h);
  std::vector<double> b = rng.normal_vector(512);
  auto x_ref = f.solve(b);
  rt::TaskGraph graph;
  auto dag = ulv::emit_hss_solve_dag(f, b, graph);
  rt::ForkJoinExecutor ex(2);
  (void)ex.run(graph);
  EXPECT_LT(vec_rel_err(x_ref, dag.state->x_col()), 1e-14);
}

TEST(SolveDag, DegenerateSingleLevel) {
  Rng rng(208);
  auto h = fmt::make_random_spd_hss(48, 64, 8, rng);  // leaf covers all: L = 0
  ASSERT_EQ(h.max_level(), 0);
  auto f = ulv::HSSULV::factorize(h);
  std::vector<double> b = rng.normal_vector(48);
  auto x_ref = f.solve(b);
  rt::TaskGraph graph;
  auto dag = ulv::emit_hss_solve_dag(f, b, graph);
  rt::ThreadPoolExecutor ex(1);
  (void)ex.run(graph);
  EXPECT_LT(vec_rel_err(x_ref, dag.state->x_col()), 1e-14);
}

TEST(Ptg, LocalDiscoveryBeatsDtdAtScale) {
  // The paper's PTG argument: local-only task generation removes the
  // whole-graph discovery that limits HATRIX-DTD's scaling.
  driver::SimExperiment e;
  e.n = 262144;
  e.leaf_size = 256;
  e.rank = 100;
  e.nodes = 128;
  auto dtd = run_simulated(driver::System::HatrixDTD, e);
  auto ptg = run_simulated(driver::System::HatrixPTG, e);
  EXPECT_LT(ptg.factor_time, dtd.factor_time);
  // The gap should be substantial at this scale (discovery dominates DTD).
  EXPECT_LT(ptg.factor_time, 0.5 * dtd.factor_time);
}

TEST(Ptg, MatchesDtdOnOneProcess) {
  // With one process, local == global task sets: identical behaviour.
  driver::SimExperiment e;
  e.n = 8192;
  e.leaf_size = 256;
  e.rank = 60;
  e.nodes = 1;
  auto dtd = run_simulated(driver::System::HatrixDTD, e);
  auto ptg = run_simulated(driver::System::HatrixPTG, e);
  EXPECT_NEAR(dtd.factor_time, ptg.factor_time, 1e-12);
}

TEST(TraceExport, ChromeJsonWellFormedish) {
  rt::TaskGraph g;
  rt::DataId d = g.register_data("x");
  g.insert_task("first", "potrf", {8}, [] {}, {{d, rt::Access::ReadWrite}});
  g.insert_task("second", "trsm", {8, 8}, [] {}, {{d, rt::Access::ReadWrite}});
  rt::ThreadPoolExecutor ex(1);
  auto stats = ex.run(g);
  std::string json = rt::to_chrome_trace(g, stats);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"name\":\"first\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TraceExport, DotContainsNodesAndEdges) {
  rt::TaskGraph g;
  rt::DataId d = g.register_data("x");
  g.insert_task("a", "potrf", {}, {}, {{d, rt::Access::ReadWrite}});
  g.insert_task("b", "trsm", {}, {}, {{d, rt::Access::ReadWrite}});
  std::string dot = rt::to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
}

TEST(CostModel, SolveKindsHaveCosts) {
  rt::Task t;
  t.kind = "fwd_solve";
  t.dims = {100, 20};
  EXPECT_GT(distsim::CostModel::task_flops(t), 0.0);
  t.kind = "potrs";
  t.dims = {50};
  EXPECT_NEAR(distsim::CostModel::task_flops(t), 5000.0, 1e-9);
}

TEST(SolveDag, SimulatedDistributedSolveIsFastRelativeToFactor) {
  // End-to-end: simulate both the factorization DAG and the solve DAG at
  // the same scale; the O(N·r) solve must be much cheaper than the O(N·r^2)
  // factorization.
  Rng rng(209);
  auto h = fmt::make_random_spd_hss(4096, 256, 24, rng);
  auto f = ulv::HSSULV::factorize(h);
  std::vector<double> b = rng.normal_vector(4096);

  rt::TaskGraph gf;
  (void)ulv::emit_hss_ulv_dag(h, gf, false);
  rt::TaskGraph gs;
  auto sdag = ulv::emit_hss_solve_dag(f, b, gs);

  // Same topology family: forward+gather+root+backward has exactly the
  // same task count as diag+partial+merge+root.
  EXPECT_EQ(gs.num_tasks(), gf.num_tasks());
  distsim::CostModel cost(2.0);
  double factor_work = 0.0, solve_work = 0.0;
  for (const auto& t : gf.tasks()) factor_work += cost.seconds(t);
  for (const auto& t : gs.tasks()) solve_work += cost.seconds(t);
  EXPECT_LT(solve_work, 0.2 * factor_work);
}

}  // namespace
}  // namespace hatrix
