#include "format/hss_builder.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"

namespace hatrix::fmt {

namespace {

/// Row interpolative decomposition: F ≈ X · F(sel, :) with X(sel, :) = I.
struct RowId {
  std::vector<index_t> sel;  ///< selected (skeleton) row indices into F
  Matrix x;                  ///< interpolation factor, F.rows x rank
  index_t rank = 0;
};

RowId row_id(la::ConstMatrixView f, index_t max_rank, double tol) {
  RowId out;
  Matrix ft = la::transpose(f);
  const double abs_tol = tol > 0.0 ? tol * la::norm_fro(ft.view()) : 0.0;
  auto pq = la::pivoted_qr(ft.view(), max_rank, abs_tol);
  const index_t k = pq.rank;
  out.rank = k;
  out.x = Matrix(f.rows, k);
  if (k == 0) return out;

  // Fᵀ P = Q R  =>  row perm[j] of F is (R11⁻¹ R(:,j))ᵀ times the skeleton
  // rows (the first k pivots).
  Matrix t = Matrix::from_view(pq.r.view());  // k x f.rows
  la::trsm(la::Side::Left, la::UpLo::Upper, la::Trans::No, la::Diag::NonUnit, 1.0,
           pq.r.block(0, 0, k, k), t.view());
  for (index_t j = 0; j < f.rows; ++j)
    for (index_t i = 0; i < k; ++i)
      out.x(pq.perm[static_cast<std::size_t>(j)], i) = t(i, j);
  out.sel.reserve(static_cast<std::size_t>(k));
  for (index_t i = 0; i < k; ++i)
    out.sel.push_back(pq.perm[static_cast<std::size_t>(i)]);
  return out;
}

/// Column sample of the complement of [begin, end) in [0, n):
/// all of it when sample == 0, otherwise `sample` distinct indices.
std::vector<index_t> sample_complement(index_t n, index_t begin, index_t end,
                                       index_t sample, Rng& rng) {
  const index_t comp = n - (end - begin);
  std::vector<index_t> cols;
  if (sample == 0 || sample >= comp) {
    cols.reserve(static_cast<std::size_t>(comp));
    for (index_t j = 0; j < begin; ++j) cols.push_back(j);
    for (index_t j = end; j < n; ++j) cols.push_back(j);
    return cols;
  }
  std::unordered_set<index_t> chosen;
  while (static_cast<index_t>(chosen.size()) < sample) {
    index_t j = rng.index(comp);
    if (j >= begin) j += end - begin;  // skip the node's own interval
    chosen.insert(j);
  }
  cols.assign(chosen.begin(), chosen.end());
  std::sort(cols.begin(), cols.end());
  return cols;
}

/// Per-node construction state carried up the tree.
struct BuildState {
  std::vector<index_t> skel;  ///< global skeleton row indices
  Matrix rfac;                ///< R̄: Ũᵀ A(I, far) ≈ R̄ · A(skel, far)
};

}  // namespace

HSSMatrix make_hss_skeleton(index_t n, index_t leaf_size, index_t rank) {
  const int L = hss_levels(n, leaf_size);
  HSSMatrix h(n, L);
  h.node(0, 0).begin = 0;
  h.node(0, 0).end = n;
  for (int l = 0; l < L; ++l) {
    for (index_t i = 0; i < h.num_nodes(l); ++i) {
      const auto& parent = h.node(l, i);
      const index_t mid = parent.begin + (parent.block_size() + 1) / 2;
      h.node(l + 1, 2 * i).begin = parent.begin;
      h.node(l + 1, 2 * i).end = mid;
      h.node(l + 1, 2 * i + 1).begin = mid;
      h.node(l + 1, 2 * i + 1).end = parent.end;
    }
  }
  // Leaf ranks clip at the block size; internal ranks clip at the stacked
  // children ranks (the transfer basis has k_c0 + k_c1 rows).
  for (index_t i = 0; i < h.num_nodes(L); ++i)
    h.node(L, i).rank = std::min(rank, h.node(L, i).block_size());
  for (int l = L - 1; l >= 1; --l)
    for (index_t i = 0; i < h.num_nodes(l); ++i)
      h.node(l, i).rank = std::min(
          rank, h.node(l + 1, 2 * i).rank + h.node(l + 1, 2 * i + 1).rank);
  return h;
}

HSSMatrix make_random_spd_hss(index_t n, index_t leaf_size, index_t rank, Rng& rng) {
  HSSMatrix h = make_hss_skeleton(n, leaf_size, rank);
  const int L = h.max_level();

  // Random orthonormal bases (leaf and transfer) and random couplings.
  for (index_t i = 0; i < h.num_nodes(L); ++i) {
    auto& nd = h.node(L, i);
    auto qf = la::qr(Matrix::random_normal(rng, nd.block_size(), nd.rank).view());
    nd.basis = std::move(qf.q);
    nd.diag = Matrix::random_spd(rng, nd.block_size());
  }
  for (int l = L - 1; l >= 1; --l) {
    for (index_t i = 0; i < h.num_nodes(l); ++i) {
      auto& nd = h.node(l, i);
      const index_t rows = h.node(l + 1, 2 * i).rank + h.node(l + 1, 2 * i + 1).rank;
      auto qf = la::qr(Matrix::random_normal(rng, rows, nd.rank).view());
      nd.basis = std::move(qf.q);
    }
  }
  double offdiag_bound = 0.0;
  for (int l = 1; l <= L; ++l) {
    double level_max = 0.0;
    for (index_t t = 0; t < h.num_pairs(l); ++t) {
      Matrix s = Matrix::random_normal(rng, h.node(l, 2 * t + 1).rank,
                                       h.node(l, 2 * t).rank);
      level_max = std::max(level_max, la::norm_fro(s.view()));
      h.coupling(l, t) = std::move(s);
    }
    offdiag_bound += level_max;
  }

  // Shift every leaf diagonal beyond the accumulated off-diagonal mass so
  // the whole operator is SPD (Gershgorin-style bound across levels).
  for (index_t i = 0; i < h.num_nodes(L); ++i) {
    auto& d = h.node(L, i).diag;
    for (index_t r = 0; r < d.rows(); ++r) d(r, r) += offdiag_bound + 1.0;
  }
  return h;
}

int hss_levels(index_t n, index_t leaf_size) {
  HATRIX_CHECK(n > 0 && leaf_size > 0, "bad hss_levels arguments");
  int levels = 0;
  while ((n + (index_t{1} << levels) - 1) / (index_t{1} << levels) > leaf_size)
    ++levels;
  return levels;
}

HSSMatrix build_hss(const BlockAccessor& acc, const HSSOptions& opts) {
  const index_t n = acc.size();
  const int L = hss_levels(n, opts.leaf_size);
  HSSMatrix h(n, L);

  // Assign index intervals by recursive midpoint splitting (matches
  // geom::ClusterTree, so tree-ordered kernel matrices line up).
  h.node(0, 0).begin = 0;
  h.node(0, 0).end = n;
  for (int l = 0; l < L; ++l) {
    for (index_t i = 0; i < h.num_nodes(l); ++i) {
      const auto& parent = h.node(l, i);
      const index_t mid = parent.begin + (parent.block_size() + 1) / 2;
      h.node(l + 1, 2 * i).begin = parent.begin;
      h.node(l + 1, 2 * i).end = mid;
      h.node(l + 1, 2 * i + 1).begin = mid;
      h.node(l + 1, 2 * i + 1).end = parent.end;
    }
  }

  if (L == 0) {
    h.node(0, 0).diag = acc.block(0, 0, n, n);
    return h;
  }

  Rng rng(opts.seed);
  std::vector<std::vector<BuildState>> st(static_cast<std::size_t>(L) + 1);
  for (int l = 0; l <= L; ++l)
    st[static_cast<std::size_t>(l)].resize(static_cast<std::size_t>(h.num_nodes(l)));

  // --- Leaf level: bases from the off-diagonal block row (Eq. 2). ---
  for (index_t i = 0; i < h.num_nodes(L); ++i) {
    auto& nd = h.node(L, i);
    const index_t b = nd.block_size();
    nd.diag = acc.block(nd.begin, nd.begin, b, b);

    std::vector<index_t> rows(static_cast<std::size_t>(b));
    for (index_t r = 0; r < b; ++r) rows[static_cast<std::size_t>(r)] = nd.begin + r;
    const auto cols = sample_complement(n, nd.begin, nd.end, opts.sample_cols, rng);
    Matrix f = acc.gather(rows, cols);

    RowId id = row_id(f.view(), opts.max_rank, opts.tol);
    auto qf = la::qr(id.x.view());
    nd.basis = std::move(qf.q);
    nd.rank = id.rank;

    auto& s = st[static_cast<std::size_t>(L)][static_cast<std::size_t>(i)];
    s.rfac = std::move(qf.r);
    s.skel.reserve(id.sel.size());
    for (index_t r : id.sel) s.skel.push_back(nd.begin + r);
  }

  // --- Leaf couplings: exact S = U_jᵀ A(I_j, I_i) U_i. ---
  for (index_t t = 0; t < h.num_pairs(L); ++t) {
    const auto& n0 = h.node(L, 2 * t);
    const auto& n1 = h.node(L, 2 * t + 1);
    Matrix a10 = acc.block(n1.begin, n0.begin, n1.block_size(), n0.block_size());
    Matrix tmp = la::matmul(n1.basis.view(), a10.view(), la::Trans::Yes, la::Trans::No);
    h.coupling(L, t) = la::matmul(tmp.view(), n0.basis.view());
  }

  // --- Internal levels: transfer bases from children skeletons. ---
  for (int l = L - 1; l >= 1; --l) {
    for (index_t p = 0; p < h.num_nodes(l); ++p) {
      auto& nd = h.node(l, p);
      const auto& si = st[static_cast<std::size_t>(l) + 1][static_cast<std::size_t>(2 * p)];
      const auto& sj = st[static_cast<std::size_t>(l) + 1][static_cast<std::size_t>(2 * p + 1)];
      const index_t ki = static_cast<index_t>(si.skel.size());
      const index_t kj = static_cast<index_t>(sj.skel.size());

      std::vector<index_t> usk;
      usk.reserve(static_cast<std::size_t>(ki + kj));
      usk.insert(usk.end(), si.skel.begin(), si.skel.end());
      usk.insert(usk.end(), sj.skel.begin(), sj.skel.end());

      const auto cols = sample_complement(n, nd.begin, nd.end, opts.sample_cols, rng);
      Matrix g = acc.gather(usk, cols);

      RowId id = row_id(g.view(), opts.max_rank, opts.tol);
      // Raw transfer = blockdiag(R̄_i, R̄_j) · X, then orthonormalize.
      Matrix raw(ki + kj, id.rank);
      if (id.rank > 0) {
        la::gemm(1.0, si.rfac.view(), la::Trans::No, id.x.block(0, 0, ki, id.rank),
                 la::Trans::No, 0.0, raw.block(0, 0, ki, id.rank));
        la::gemm(1.0, sj.rfac.view(), la::Trans::No, id.x.block(ki, 0, kj, id.rank),
                 la::Trans::No, 0.0, raw.block(ki, 0, kj, id.rank));
      }
      auto qf = la::qr(raw.view());
      nd.basis = std::move(qf.q);
      nd.rank = id.rank;

      auto& sp = st[static_cast<std::size_t>(l)][static_cast<std::size_t>(p)];
      sp.rfac = std::move(qf.r);
      sp.skel.reserve(static_cast<std::size_t>(id.rank));
      for (index_t r : id.sel) sp.skel.push_back(usk[static_cast<std::size_t>(r)]);
    }

    // Couplings at this level: skeleton-compressed.
    for (index_t t = 0; t < h.num_pairs(l); ++t) {
      const auto& s0 = st[static_cast<std::size_t>(l)][static_cast<std::size_t>(2 * t)];
      const auto& s1 = st[static_cast<std::size_t>(l)][static_cast<std::size_t>(2 * t + 1)];
      Matrix a10 = acc.gather(s1.skel, s0.skel);
      Matrix tmp = la::matmul(s1.rfac.view(), a10.view());
      h.coupling(l, t) = la::matmul(tmp.view(), s0.rfac.view(), la::Trans::No,
                                    la::Trans::Yes);
    }
  }

  return h;
}

}  // namespace hatrix::fmt
