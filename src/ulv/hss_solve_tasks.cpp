#include "ulv/hss_solve_tasks.hpp"

#include "common/error.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"

namespace hatrix::ulv {

HSSSolveDag emit_hss_solve_dag(const HSSULV& factor, const std::vector<double>& b,
                               rt::TaskGraph& graph) {
  const fmt::HSSMatrix& a = factor.matrix();
  const index_t n = a.size();
  HATRIX_CHECK(static_cast<index_t>(b.size()) == n, "solve dag: rhs length mismatch");
  const int L = a.max_level();

  HSSSolveDag dag;
  dag.state = std::make_shared<HSSSolveTaskState>();
  auto& st = *dag.state;
  st.a = &a;
  st.factor = &factor;
  st.rhs.resize(static_cast<std::size_t>(L) + 1);
  st.fwd.resize(static_cast<std::size_t>(L) + 1);
  st.sol.resize(static_cast<std::size_t>(L) + 1);
  st.x.assign(static_cast<std::size_t>(n), 0.0);
  for (int l = 0; l <= L; ++l) {
    st.rhs[static_cast<std::size_t>(l)].resize(static_cast<std::size_t>(a.num_nodes(l)));
    st.fwd[static_cast<std::size_t>(l)].resize(static_cast<std::size_t>(a.num_nodes(l)));
    st.sol[static_cast<std::size_t>(l)].resize(static_cast<std::size_t>(a.num_nodes(l)));
  }

  // Data handles per node: the local RHS (written by gather), the forward
  // result, and the local solution.
  std::vector<std::vector<rt::DataId>> rhs_d(static_cast<std::size_t>(L) + 1);
  std::vector<std::vector<rt::DataId>> fwd_d(static_cast<std::size_t>(L) + 1);
  std::vector<std::vector<rt::DataId>> sol_d(static_cast<std::size_t>(L) + 1);
  for (int l = 0; l <= L; ++l) {
    for (index_t i = 0; i < a.num_nodes(l); ++i) {
      const std::string tag = "(" + std::to_string(l) + "," + std::to_string(i) + ")";
      const index_t k = a.node(l, i).rank;
      rhs_d[static_cast<std::size_t>(l)].push_back(
          graph.register_data("rhs" + tag, 8 * std::max<index_t>(k, 1)));
      fwd_d[static_cast<std::size_t>(l)].push_back(
          graph.register_data("fwd" + tag, 8 * std::max<index_t>(k, 1)));
      sol_d[static_cast<std::size_t>(l)].push_back(
          graph.register_data("sol" + tag, 8 * std::max<index_t>(k, 1)));
    }
  }

  auto stp = dag.state;

  if (L == 0) {
    graph.insert_task(
        "ROOT_SOLVE", "potrs", {n},
        [stp, b] {
          stp->x = b;
          la::MatrixView xv{stp->x.data(), static_cast<index_t>(stp->x.size()), 1,
                            static_cast<index_t>(stp->x.size())};
          la::potrs(stp->factor->root_factor().view(), xv);
        },
        {{sol_d[0][0], rt::Access::ReadWrite}}, 0, 0);
    return dag;
  }

  // Seed leaf RHS segments.
  for (index_t i = 0; i < a.num_nodes(L); ++i) {
    const auto& nd = a.node(L, i);
    st.rhs[static_cast<std::size_t>(L)][static_cast<std::size_t>(i)]
        .assign(b.begin() + nd.begin, b.begin() + nd.end);
  }

  // Forward sweep + gathers, leaves to root.
  for (int l = L; l >= 1; --l) {
    const int phase = L - l;
    for (index_t i = 0; i < a.num_nodes(l); ++i) {
      const std::string tag = "(" + std::to_string(l) + "," + std::to_string(i) + ")";
      const int li = l;
      const index_t ii = i;
      const auto& f = factor.factor(l, i);
      graph.insert_task(
          "FORWARD" + tag, "fwd_solve", {f.m, f.k},
          [stp, li, ii] {
            auto& lvl_rhs = stp->rhs[static_cast<std::size_t>(li)];
            stp->fwd[static_cast<std::size_t>(li)][static_cast<std::size_t>(ii)] =
                forward_step(stp->factor->factor(li, ii),
                             stp->a->node(li, ii).basis.view(),
                             lvl_rhs[static_cast<std::size_t>(ii)].data());
          },
          {{rhs_d[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)],
            rt::Access::Read},
           {fwd_d[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)],
            rt::Access::ReadWrite}},
          l, phase);
    }
    for (index_t t = 0; t < a.num_pairs(l); ++t) {
      const std::string tag = "(" + std::to_string(l) + "," + std::to_string(t) + ")";
      const int li = l;
      const index_t tt = t;
      graph.insert_task(
          "GATHER" + tag, "gather",
          {a.node(l, 2 * t).rank, a.node(l, 2 * t + 1).rank},
          [stp, li, tt] {
            const auto& z0 =
                stp->fwd[static_cast<std::size_t>(li)][static_cast<std::size_t>(2 * tt)].z_s;
            const auto& z1 =
                stp->fwd[static_cast<std::size_t>(li)][static_cast<std::size_t>(2 * tt + 1)].z_s;
            auto& up = stp->rhs[static_cast<std::size_t>(li) - 1][static_cast<std::size_t>(tt)];
            up.clear();
            up.insert(up.end(), z0.begin(), z0.end());
            up.insert(up.end(), z1.begin(), z1.end());
          },
          {{fwd_d[static_cast<std::size_t>(l)][static_cast<std::size_t>(2 * t)],
            rt::Access::Read},
           {fwd_d[static_cast<std::size_t>(l)][static_cast<std::size_t>(2 * t + 1)],
            rt::Access::Read},
           {rhs_d[static_cast<std::size_t>(l) - 1][static_cast<std::size_t>(t)],
            rt::Access::ReadWrite}},
          l, phase);
    }
  }

  // Root dense solve.
  graph.insert_task(
      "ROOT_SOLVE", "potrs", {a.node(1, 0).rank + a.node(1, 1).rank},
      [stp] {
        auto& z = stp->rhs[0][0];
        stp->sol[0][0] = z;
        if (!stp->sol[0][0].empty()) {
          la::MatrixView xv{stp->sol[0][0].data(),
                            static_cast<index_t>(stp->sol[0][0].size()), 1,
                            static_cast<index_t>(stp->sol[0][0].size())};
          la::potrs(stp->factor->root_factor().view(), xv);
        }
      },
      {{rhs_d[0][0], rt::Access::Read}, {sol_d[0][0], rt::Access::ReadWrite}}, 0, L);

  // Backward sweep, root to leaves.
  for (int l = 1; l <= L; ++l) {
    const int phase = L + l;
    for (index_t i = 0; i < a.num_nodes(l); ++i) {
      const std::string tag = "(" + std::to_string(l) + "," + std::to_string(i) + ")";
      const int li = l;
      const index_t ii = i;
      const auto& f = factor.factor(l, i);
      graph.insert_task(
          "BACKWARD" + tag, "bwd_solve", {f.m, f.k},
          [stp, li, ii] {
            const auto& parent = stp->sol[static_cast<std::size_t>(li) - 1]
                                         [static_cast<std::size_t>(ii / 2)];
            const index_t k0 = stp->a->node(li, (ii / 2) * 2).rank;
            const auto& fac = stp->factor->factor(li, ii);
            std::vector<double> xs =
                (ii % 2 == 0)
                    ? std::vector<double>(parent.begin(), parent.begin() + fac.k)
                    : std::vector<double>(parent.begin() + k0, parent.end());
            stp->sol[static_cast<std::size_t>(li)][static_cast<std::size_t>(ii)] =
                backward_step(fac, stp->a->node(li, ii).basis.view(),
                              stp->fwd[static_cast<std::size_t>(li)]
                                      [static_cast<std::size_t>(ii)],
                              xs);
            // Leaves write their segment of the global solution.
            if (li == stp->a->max_level()) {
              const auto& nd = stp->a->node(li, ii);
              const auto& xl =
                  stp->sol[static_cast<std::size_t>(li)][static_cast<std::size_t>(ii)];
              for (index_t r = 0; r < nd.block_size(); ++r)
                stp->x[static_cast<std::size_t>(nd.begin + r)] =
                    xl[static_cast<std::size_t>(r)];
            }
          },
          {{sol_d[static_cast<std::size_t>(l) - 1][static_cast<std::size_t>(i / 2)],
            rt::Access::Read},
           {fwd_d[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)],
            rt::Access::Read},
           {sol_d[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)],
            rt::Access::ReadWrite}},
          -l, phase);
    }
  }
  return dag;
}

}  // namespace hatrix::ulv
