#include "hatrix/drivers.hpp"

#include "blrchol/blr_cholesky_tasks.hpp"
#include "common/error.hpp"
#include "format/blr.hpp"
#include "format/hss_builder.hpp"
#include "ulv/hss_ulv_tasks.hpp"

namespace hatrix::driver {

std::string system_name(System s) {
  switch (s) {
    case System::HatrixDTD:
      return "HATRIX-DTD";
    case System::HatrixPTG:
      return "HATRIX-PTG";
    case System::StrumpackSim:
      return "STRUMPACK";
    case System::LorapoSim:
      return "LORAPO";
    case System::DenseDplasmaSim:
      return "DPLASMA";
  }
  throw Error("unknown system");
}

SimOutcome run_simulated(System sys, const SimExperiment& cfg) {
  rt::TaskGraph graph;
  distsim::Mapping mapping;
  distsim::SimConfig sim_cfg;
  sim_cfg.procs = cfg.nodes;
  sim_cfg.cores_per_proc = cfg.cores_per_node;
  sim_cfg.network = cfg.network;
  sim_cfg.overhead = cfg.overhead;

  // Keep skeletons alive for the duration of the simulation: the DAG state
  // references them.
  fmt::HSSMatrix hss_skel;
  fmt::BLRMatrix blr_skel;

  switch (sys) {
    case System::HatrixDTD:
    case System::HatrixPTG: {
      hss_skel = fmt::make_hss_skeleton(cfg.n, cfg.leaf_size, cfg.rank);
      auto dag = ulv::emit_hss_ulv_dag(hss_skel, graph, /*with_work=*/false);
      mapping = distsim::map_hss_row_cyclic(dag, graph, cfg.nodes);
      sim_cfg.model = sys == System::HatrixPTG ? distsim::ExecModel::AsyncPtg
                                               : distsim::ExecModel::AsyncDtd;
      break;
    }
    case System::StrumpackSim: {
      hss_skel = fmt::make_hss_skeleton(cfg.n, cfg.leaf_size, cfg.rank);
      auto dag = ulv::emit_hss_ulv_dag(hss_skel, graph, /*with_work=*/false);
      mapping = distsim::map_hss_block_cyclic(dag, graph, cfg.nodes);
      sim_cfg.model = distsim::ExecModel::ForkJoin;
      // Fork-join runtimes do not pay DTD whole-graph discovery.
      sim_cfg.overhead.discovery_per_task = 0.0;
      break;
    }
    case System::LorapoSim: {
      blr_skel = fmt::make_blr_skeleton(cfg.n, cfg.leaf_size, cfg.rank);
      auto dag = blrchol::emit_blr_cholesky_dag(blr_skel, graph, /*with_work=*/false);
      mapping = distsim::map_blr_block_cyclic(dag, graph, cfg.nodes);
      sim_cfg.model = distsim::ExecModel::AsyncDtd;
      break;
    }
    case System::DenseDplasmaSim: {
      auto dag = blrchol::emit_dense_cholesky_dag({}, cfg.n, cfg.leaf_size, graph,
                                                  /*with_work=*/false);
      mapping = distsim::map_dense_block_cyclic(dag, graph, cfg.nodes);
      sim_cfg.model = distsim::ExecModel::AsyncDtd;
      break;
    }
  }

  distsim::CostModel cost(cfg.gflops_per_core);
  auto res = distsim::simulate(graph, mapping, cost, sim_cfg);

  SimOutcome out;
  out.factor_time = res.makespan;
  out.compute_per_worker = res.compute_per_worker(sim_cfg);
  out.overhead_per_worker = res.overhead_per_worker(sim_cfg);
  out.mpi_per_process = res.mpi_per_process(sim_cfg);
  out.tasks = graph.num_tasks();
  out.messages = res.messages;
  out.comm_bytes = res.bytes;
  for (const auto& t : graph.tasks()) out.flops += distsim::CostModel::task_flops(t);
  return out;
}

}  // namespace hatrix::driver
