#include "runtime/task_graph.hpp"

#include <algorithm>

namespace hatrix::rt {

DataId TaskGraph::register_data(std::string name, std::int64_t bytes, int owner) {
  const DataId id = static_cast<DataId>(data_.size());
  data_.push_back({id, std::move(name), bytes, owner, false, false});
  state_.emplace_back();
  return id;
}

void TaskGraph::mark_input(DataId d) {
  HATRIX_CHECK(d >= 0 && d < static_cast<DataId>(data_.size()), "bad data id");
  data_[static_cast<std::size_t>(d)].input = true;
}

void TaskGraph::mark_output(DataId d) {
  HATRIX_CHECK(d >= 0 && d < static_cast<DataId>(data_.size()), "bad data id");
  data_[static_cast<std::size_t>(d)].output = true;
}

void TaskGraph::set_owner(DataId d, int owner) {
  HATRIX_CHECK(d >= 0 && d < static_cast<DataId>(data_.size()), "bad data id");
  data_[static_cast<std::size_t>(d)].owner = owner;
}

void TaskGraph::set_bytes(DataId d, std::int64_t bytes) {
  HATRIX_CHECK(d >= 0 && d < static_cast<DataId>(data_.size()), "bad data id");
  data_[static_cast<std::size_t>(d)].bytes = bytes;
}

const DataHandle& TaskGraph::data(DataId d) const {
  HATRIX_CHECK(d >= 0 && d < static_cast<DataId>(data_.size()), "bad data id");
  return data_[static_cast<std::size_t>(d)];
}

void TaskGraph::add_edge(TaskId from, TaskId to) {
  if (from < 0 || from == to) return;
  auto& s = succ_[static_cast<std::size_t>(from)];
  if (std::find(s.begin(), s.end(), to) != s.end()) return;  // dedupe
  s.push_back(to);
  ++in_degree_[static_cast<std::size_t>(to)];
  ++num_edges_;
}

TaskId TaskGraph::insert_task(Task t) {
  const TaskId id = static_cast<TaskId>(tasks_.size());
  t.id = id;
  critical_path_cache_ = -1;
  succ_.emplace_back();
  in_degree_.push_back(0);

  for (const auto& [d, mode] : t.accesses) {
    HATRIX_CHECK(d >= 0 && d < static_cast<DataId>(data_.size()),
                 "task accesses unregistered data");
    auto& st = state_[static_cast<std::size_t>(d)];
    if (mode == Access::Read) {
      add_edge(st.last_writer, id);  // read-after-write
      st.readers_since_write.push_back(id);
    } else {
      add_edge(st.last_writer, id);  // write-after-write
      for (TaskId r : st.readers_since_write) add_edge(r, id);  // write-after-read
      st.last_writer = id;
      st.readers_since_write.clear();
    }
  }
  tasks_.push_back(std::move(t));
  return id;
}

bool TaskGraph::drop_dependency_for_test(TaskId from, TaskId to) {
  if (from < 0 || from >= num_tasks()) return false;
  auto& s = succ_[static_cast<std::size_t>(from)];
  auto it = std::find(s.begin(), s.end(), to);
  if (it == s.end()) return false;
  critical_path_cache_ = -1;
  s.erase(it);
  if (to >= 0 && to < num_tasks()) --in_degree_[static_cast<std::size_t>(to)];
  --num_edges_;
  return true;
}

bool TaskGraph::drop_access_for_test(TaskId t, DataId d) {
  if (t < 0 || t >= num_tasks()) return false;
  auto& acc = tasks_[static_cast<std::size_t>(t)].accesses;
  auto it = std::find_if(acc.begin(), acc.end(),
                         [d](const TaskAccess& a) { return a.first == d; });
  if (it == acc.end()) return false;
  acc.erase(it);
  return true;
}

void TaskGraph::add_dependency_for_test(TaskId from, TaskId to) {
  HATRIX_CHECK(from >= 0 && from < num_tasks(), "bad source task id");
  critical_path_cache_ = -1;
  succ_[static_cast<std::size_t>(from)].push_back(to);
  if (to >= 0 && to < num_tasks()) {
    ++in_degree_[static_cast<std::size_t>(to)];
    ++num_edges_;
  }
}

TaskId TaskGraph::insert_task(std::string name, std::string kind,
                              std::vector<std::int64_t> dims,
                              std::function<void()> work,
                              std::vector<TaskAccess> accesses,
                              int priority, int phase) {
  Task t;
  t.name = std::move(name);
  t.kind = std::move(kind);
  t.dims = std::move(dims);
  t.work = std::move(work);
  t.accesses = std::move(accesses);
  t.priority = priority;
  t.phase = phase;
  return insert_task(std::move(t));
}

std::int64_t TaskGraph::critical_path_length() const {
  if (critical_path_cache_ >= 0) return critical_path_cache_;
  // Tasks are inserted in a valid topological order (edges only point from
  // earlier to later insertions), so one forward sweep suffices. Test-only
  // edge surgery can splice in backward or dangling edges; those are skipped
  // here (the verifier, not this statistic, is responsible for rejecting
  // them).
  std::vector<std::int64_t> depth(tasks_.size(), 1);
  std::int64_t best = tasks_.empty() ? 0 : 1;
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    for (TaskId s : succ_[t]) {
      if (s <= static_cast<TaskId>(t) || s >= num_tasks()) continue;
      auto& d = depth[static_cast<std::size_t>(s)];
      d = std::max(d, depth[t] + 1);
      best = std::max(best, d);
    }
  }
  critical_path_cache_ = best;
  return best;
}

}  // namespace hatrix::rt
