#pragma once
/// \file rng.hpp
/// \brief Deterministic random number generation helpers.
///
/// All randomness in the library flows through explicitly seeded generators so
/// tests and benches are reproducible run to run.

#include <cstdint>
#include <random>
#include <vector>

namespace hatrix {

/// Seeded pseudo-random generator with the distributions the library needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// Standard normal variate.
  double normal() { return normal_(engine_); }

  /// Uniform variate in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return lo + (hi - lo) * uniform01_(engine_);
  }

  /// Uniform integer in [0, n).
  std::int64_t index(std::int64_t n) {
    return static_cast<std::int64_t>(engine_() % static_cast<std::uint64_t>(n));
  }

  /// Vector of standard normal variates.
  std::vector<double> normal_vector(std::int64_t n) {
    std::vector<double> v(static_cast<std::size_t>(n));
    for (auto& x : v) x = normal();
    return v;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<double> normal_{0.0, 1.0};
  std::uniform_real_distribution<double> uniform01_{0.0, 1.0};
};

}  // namespace hatrix
