// Fig. 9: weak scaling of factorization time on up to 128 nodes.
//
// HATRIX-DTD and STRUMPACK: N = 2048 x nodes (constant work per node given
// the O(N) algorithm), nodes 2..128. LORAPO: constant work per node under
// its O(N^2) algorithm means 16x nodes per 4x N: (2, 4096), (32, 16384),
// (512, 65536) — exactly the paper's setup.
//
// Runs the real task DAGs of each system through the discrete-event cluster
// model (see DESIGN.md for the Fugaku substitution). Rank/leaf per kernel
// follow the Table-2 tuning: (100, 256) for Laplace/Yukawa, (200, 512) for
// Matern.
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "hatrix/drivers.hpp"

using namespace hatrix;
using driver::SimExperiment;
using driver::System;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  auto nodes_list = cli.get_int_list("nodes", {2, 4, 8, 16, 32, 64, 128});
  const la::index_t per_node = cli.get_int("per-node", 2048);
  cli.reject_unknown();

  struct KernelCfg {
    const char* name;
    la::index_t rank, leaf;
  };
  const std::vector<KernelCfg> kernels = {
      {"laplace2d", 100, 256}, {"yukawa", 100, 256}, {"matern", 200, 512}};

  for (const auto& kc : kernels) {
    std::printf("Fig. 9 (%s kernel): weak scaling, rank=%lld leaf=%lld\n", kc.name,
                static_cast<long long>(kc.rank), static_cast<long long>(kc.leaf));
    TextTable table({"NODES", "N", "HATRIX-DTD (s)", "STRUMPACK (s)",
                     "LORAPO nodes", "LORAPO N", "LORAPO (s)"});
    for (std::size_t i = 0; i < nodes_list.size(); ++i) {
      const int nodes = static_cast<int>(nodes_list[i]);
      SimExperiment e;
      e.n = per_node * nodes;
      e.leaf_size = kc.leaf;
      e.rank = kc.rank;
      e.nodes = nodes;
      auto hat = run_simulated(System::HatrixDTD, e);
      auto strum = run_simulated(System::StrumpackSim, e);

      // LORAPO series: 16x nodes per 4x N starting at (2, 4096) — the
      // paper's constant-work-per-node scaling for an O(N^2) algorithm.
      std::string lnodes_s = "-", ln_s = "-", lt_s = "-";
      if (i < 3) {
        const int lorapo_nodes = 2 << (4 * static_cast<int>(i));      // 2, 32, 512
        const la::index_t lorapo_n = 4096LL << (2 * static_cast<int>(i));  // 4k,16k,64k
        SimExperiment l;
        l.n = lorapo_n;
        l.leaf_size = 2048;
        l.rank = 512;
        l.nodes = lorapo_nodes;
        auto lor = run_simulated(System::LorapoSim, l);
        lnodes_s = std::to_string(lorapo_nodes);
        ln_s = std::to_string(lorapo_n);
        lt_s = fmt_fixed(lor.factor_time, 4);
      }
      table.add_row({std::to_string(nodes), std::to_string(e.n),
                     fmt_fixed(hat.factor_time, 4), fmt_fixed(strum.factor_time, 4),
                     lnodes_s, ln_s, lt_s});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  std::printf(
      "Expected shape (paper): HATRIX-DTD scales best and is up to ~2x faster\n"
      "than STRUMPACK at high node counts; LORAPO weak-scales worst.\n");
  return 0;
}
