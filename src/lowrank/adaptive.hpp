#pragma once
/// \file adaptive.hpp
/// \brief Adaptive-rank compression with a posteriori accuracy guards.
///
/// The fixed-rank compressors (compress, rsvd, aca) take the target rank as
/// an input; these variants take a relative-error tolerance and *discover*
/// the rank, growing their sample until an independent residual probe
/// certifies the approximation. They are the building blocks of the guarded
/// HSS construction: an under-sampled basis no longer fails silently — it is
/// either grown until the probe passes or reported as under-resolved.

#include "common/rng.hpp"
#include "lowrank/aca.hpp"
#include "lowrank/lowrank.hpp"

namespace hatrix::lr {

/// Result of an adaptive compression: the factorization plus the evidence
/// the stopping rule saw.
struct AdaptiveLowRank {
  LowRank lr;            ///< the discovered factorization
  double residual = 0.0; ///< last probe estimate of the relative error
  index_t rounds = 0;    ///< sample-growth rounds taken before acceptance
};

/// Adaptive randomized range finder + SVD (Halko et al., Alg. 4.2 flavor):
/// grow a Gaussian sketch in blocks of `block` columns, orthogonalizing each
/// block against the basis found so far, until a fresh `probe_cols`-column
/// probe estimates ||A - Q Qᵀ A||_F <= tol · ||A||_F, or the basis reaches
/// `max_rank`. The final factors are SVD-truncated at the same tolerance.
AdaptiveLowRank rsvd_adaptive(la::ConstMatrixView a, index_t max_rank, double tol,
                              Rng& rng, index_t block = 16,
                              index_t probe_cols = 8);

/// Probe-verified ACA: run aca() with its heuristic stopping tolerance, then
/// measure the true residual on a random (probe_rows x probe_cols) entry
/// sample. While the probe residual exceeds `tol`, rerun with a 10x stricter
/// internal tolerance (ACA's incremental stopping rule is a heuristic that
/// can quit early on kernels with localized interactions) up to `max_rank`.
AdaptiveLowRank aca_adaptive(const EntryFn& entry, index_t rows, index_t cols,
                             index_t max_rank, double tol, Rng& rng,
                             index_t probe_rows = 24, index_t probe_cols = 24);

/// Relative residual ||P - X·P(sel, :)||_F / ||P||_F of a row interpolation
/// (row-ID) evaluated on probe columns P. `x` is the interpolation factor
/// (P.rows x k) and `sel` the k skeleton row indices; returns 0 for an empty
/// or zero probe.
double interp_residual(la::ConstMatrixView p, la::ConstMatrixView x,
                       const std::vector<index_t>& sel);

/// Largest per-column 2-norm of the interpolation error P - X·P(sel, :)
/// (absolute, not normalized). A localized miss — one near-field column the
/// sample never saw — cannot hide in this statistic the way it averages
/// away in a Frobenius ratio, which is why the guarded HSS builder checks
/// it against the operator's diagonal scale.
double interp_residual_maxcol(la::ConstMatrixView p, la::ConstMatrixView x,
                              const std::vector<index_t>& sel);

}  // namespace hatrix::lr
