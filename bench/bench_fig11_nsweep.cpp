// Fig. 11: increasing problem size at constant resources (64 nodes).
//
// Expected shape (paper Sec. 5.4): STRUMPACK is almost flat (communication
// dominated); LORAPO grows ~O(N^2); HATRIX-DTD grows O(N) because its DTD
// runtime overhead follows the task count — so STRUMPACK overtakes HATRIX
// at the top of the sweep.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "hatrix/drivers.hpp"

using namespace hatrix;
using driver::SimExperiment;
using driver::System;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int nodes = static_cast<int>(cli.get_int("nodes", 64));
  auto sizes = cli.get_int_list("sizes", {8192, 16384, 32768, 65536, 131072, 262144});
  cli.reject_unknown();

  std::printf("Fig. 11: varying problem size on %d nodes (Yukawa)\n", nodes);
  TextTable table({"N", "LORAPO (s)", "STRUMPACK (s)", "HATRIX-DTD (s)"});
  for (auto n : sizes) {
    SimExperiment e;
    e.n = n;
    e.leaf_size = 256;
    e.rank = 100;
    e.nodes = nodes;
    auto hat = run_simulated(System::HatrixDTD, e);
    auto strum = run_simulated(System::StrumpackSim, e);
    SimExperiment l = e;
    l.leaf_size = std::max<la::index_t>(n / 32, 1024);  // LORAPO tuned tile
    l.rank = l.leaf_size / 4;
    auto lor = run_simulated(System::LorapoSim, l);
    table.add_row({std::to_string(n), fmt_fixed(lor.factor_time, 4),
                   fmt_fixed(strum.factor_time, 4), fmt_fixed(hat.factor_time, 4)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Reference slopes: LORAPO ~O(N^2); HATRIX ~O(N); STRUMPACK ~flat.\n");
  return 0;
}
