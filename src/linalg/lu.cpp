#include "linalg/lu.hpp"

#include <cmath>
#include <utility>

#include "common/flops.hpp"
#include "linalg/blas.hpp"

namespace hatrix::la {

std::vector<index_t> getrf(MatrixView a) {
  HATRIX_CHECK(a.rows == a.cols, "getrf requires a square matrix");
  const index_t n = a.rows;
  flops::add(static_cast<std::uint64_t>(2) * n * n * n / 3);
  std::vector<index_t> piv(static_cast<std::size_t>(n));

  for (index_t k = 0; k < n; ++k) {
    index_t p = k;
    double best = std::abs(a(k, k));
    for (index_t i = k + 1; i < n; ++i) {
      if (std::abs(a(i, k)) > best) {
        best = std::abs(a(i, k));
        p = i;
      }
    }
    HATRIX_CHECK(best > 0.0, "getrf: singular matrix at column " + std::to_string(k));
    piv[static_cast<std::size_t>(k)] = p;
    if (p != k)
      for (index_t j = 0; j < n; ++j) std::swap(a(k, j), a(p, j));

    const double pivot = a(k, k);
    for (index_t i = k + 1; i < n; ++i) a(i, k) /= pivot;
    for (index_t j = k + 1; j < n; ++j) {
      const double akj = a(k, j);
      if (akj == 0.0) continue;
      for (index_t i = k + 1; i < n; ++i) a(i, j) -= a(i, k) * akj;
    }
  }
  return piv;
}

void getrs(ConstMatrixView lu, const std::vector<index_t>& piv, MatrixView b) {
  const index_t n = lu.rows;
  HATRIX_CHECK(b.rows == n, "getrs dimension mismatch");
  for (index_t k = 0; k < n; ++k) {
    const index_t p = piv[static_cast<std::size_t>(k)];
    if (p != k)
      for (index_t j = 0; j < b.cols; ++j) std::swap(b(k, j), b(p, j));
  }
  trsm(Side::Left, UpLo::Lower, Trans::No, Diag::Unit, 1.0, lu, b);
  trsm(Side::Left, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0, lu, b);
}

Matrix solve(ConstMatrixView a, ConstMatrixView b) {
  Matrix lu = Matrix::from_view(a);
  auto piv = getrf(lu.view());
  Matrix x = Matrix::from_view(b);
  getrs(lu.view(), piv, x.view());
  return x;
}

}  // namespace hatrix::la
