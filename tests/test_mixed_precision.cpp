// End-to-end mixed-precision storage test (the Ablation-E-adjacent accuracy
// story): compress the N=8192 Matérn covariance twice from the same
// accessor — once at full FP64 storage, once with
// HSSOptions::precision = MixedFP32, which demotes every low-rank basis and
// coupling block to FP32 after construction. The mixed build must
//
//   (a) cut the resident low-rank footprint by >= 40% (the acceptance
//       floor; FP32 halves the payload, so the headroom is real),
//   (b) after iterative refinement, solve the system with a residual
//       against the TRUE dense kernel operator within 10x of the FP64
//       pipeline's — FP32 storage error (~1e-7 relative) hides beneath the
//       sampled-compression error, so demotion is numerically free at
//       solver accuracy,
//   (c) occupy a distinct SolverCache slot (SolverKey carries the precision
//       mode: same kernel/geometry/options at different storage precisions
//       are different factorizations).
//
// Carries the `slow` label: two guarded sampled builds at N=8192.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "format/accessor.hpp"
#include "format/hss_builder_tasks.hpp"
#include "geometry/cluster_tree.hpp"
#include "hatrix/solver_cache.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "ulv/hss_ulv.hpp"

namespace hatrix {
namespace {

using la::index_t;

constexpr index_t kN = 8192;

struct MaternProblem {
  geom::Domain sites;
  std::unique_ptr<geom::ClusterTree> tree;
  kernels::Matern cov{1.0, 0.03, 0.5};
  std::unique_ptr<kernels::KernelMatrix> km;
  std::vector<double> b;

  MaternProblem() {
    Rng rng(11);
    sites = geom::random2d(kN, rng);
    tree = std::make_unique<geom::ClusterTree>(sites, 256);
    km = std::make_unique<kernels::KernelMatrix>(cov, tree->points(), 1e-4);
    Rng brng(7);
    b = brng.normal_vector(kN);
  }

  /// The kriging_matern setting with the accuracy guard on; `precision`
  /// is the only thing the two builds vary.
  [[nodiscard]] fmt::HSSOptions opts(fmt::PrecisionMode p) const {
    return {.leaf_size = 256,
            .max_rank = 80,
            .sample_cols = 512,
            .guard_tol = 1e-4,
            .precision = p};
  }
};

const MaternProblem& problem() {
  static const MaternProblem p;
  return p;
}

/// ||b - A_dense x|| / ||b|| against the true kernel operator (streamed
/// dense matvec, not the compressed surrogate).
double true_residual(const MaternProblem& p, const std::vector<double>& x) {
  std::vector<double> ax;
  p.km->matvec(x, ax);
  double rn = 0.0, bn = 0.0;
  for (std::size_t i = 0; i < p.b.size(); ++i) {
    const double r = p.b[i] - ax[i];
    rn += r * r;
    bn += p.b[i] * p.b[i];
  }
  return std::sqrt(rn / bn);
}

TEST(MixedPrecision, FootprintAndRefinedResidualOnMatern8192) {
  const auto& p = problem();
  fmt::KernelAccessor acc(*p.km);

  fmt::HSSMatrix h64 =
      fmt::build_hss_parallel(acc, p.opts(fmt::PrecisionMode::FP64), 2);
  fmt::HSSMatrix hm =
      fmt::build_hss_parallel(acc, p.opts(fmt::PrecisionMode::MixedFP32), 2);

  ASSERT_FALSE(h64.mixed());
  ASSERT_TRUE(hm.mixed());

  // (a) Low-rank resident bytes: FP32 storage must cut >= 40%.
  const auto b64 = h64.lowrank_bytes();
  const auto bm = hm.lowrank_bytes();
  ASSERT_GT(b64, 0);
  EXPECT_LE(static_cast<double>(bm), 0.6 * static_cast<double>(b64))
      << "mixed lowrank bytes " << bm << " vs fp64 " << b64;

  // Both modes must factorize (demotion happens after the guard accepted
  // the build; the promoted FP32 operator stays positive definite).
  auto f64 = ulv::HSSULV::factorize(h64);
  auto fm = ulv::HSSULV::factorize(hm);

  // (b) Residuals against the true dense operator.
  const double r64 = true_residual(p, f64.solve(p.b));
  const double rm_direct = true_residual(p, fm.solve(p.b));
  std::vector<double> hist;
  const double rm_ir = true_residual(p, fm.solve_refined(p.b, 2, &hist));

  // Sanity bound on the baseline: the true-operator residual of a
  // compressed solve is the compression error amplified by cond(A) (the
  // 1e-4 nugget puts cond(A) near 1e4, so guard_tol=1e-4 lands around
  // 1e-2) — the meaningful criterion is the ratio below, which shows FP32
  // storage error vanishing beneath the compression error.
  EXPECT_LT(r64, 0.1);
  EXPECT_LE(rm_ir, 10.0 * r64)
      << "mixed+IR residual " << rm_ir << " vs fp64 baseline " << r64
      << " (direct mixed: " << rm_direct << ")";

  // The refinement history instruments the accuracy cost: iterations+1
  // relative residuals against the compressed mixed operator, finite and
  // non-degenerate, ending at the direct-solver level.
  ASSERT_EQ(hist.size(), 3u);
  for (double r : hist) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GE(r, 0.0);
  }
  EXPECT_LT(hist.back(), 1e-8)
      << "refinement failed to converge on the compressed operator";
}

TEST(MixedPrecision, SolverKeyDistinguishesPrecisionModes) {
  const auto& p = problem();
  const driver::SolverKey k64 =
      driver::make_solver_key("matern(sigma=1,mu=0.03,rho=0.5)+nugget=1e-4",
                              p.tree->points(),
                              p.opts(fmt::PrecisionMode::FP64));
  const driver::SolverKey km =
      driver::make_solver_key("matern(sigma=1,mu=0.03,rho=0.5)+nugget=1e-4",
                              p.tree->points(),
                              p.opts(fmt::PrecisionMode::MixedFP32));
  EXPECT_EQ(k64.precision, "fp64");
  EXPECT_EQ(km.precision, "mixed-fp32");
  EXPECT_FALSE(k64 == km);
  EXPECT_NE(driver::SolverKeyHash{}(k64), driver::SolverKeyHash{}(km));

  // Two cache entries, not one: requesting both modes builds twice.
  driver::SolverCache cache(4);
  fmt::KernelAccessor acc(*p.km);
  auto build64 = [&](fmt::HSSBuildReport& rep) {
    return fmt::build_hss_parallel(acc, p.opts(fmt::PrecisionMode::FP64), 2,
                                   &rep);
  };
  auto buildm = [&](fmt::HSSBuildReport& rep) {
    return fmt::build_hss_parallel(acc, p.opts(fmt::PrecisionMode::MixedFP32),
                                   2, &rep);
  };
  auto op64 = cache.get_or_build(k64, build64);
  auto opm = cache.get_or_build(km, buildm);
  EXPECT_FALSE(op64->matrix().mixed());
  EXPECT_TRUE(opm->matrix().mixed());
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.get_or_build(km, buildm), opm);  // hit, no rebuild
  EXPECT_EQ(cache.stats().hits, 1);
}

}  // namespace
}  // namespace hatrix
