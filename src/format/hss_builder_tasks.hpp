#pragma once
/// \file hss_builder_tasks.hpp
/// \brief HSS construction expressed as a task graph, with the sampled
/// accuracy guard.
///
/// Mirrors ulv/hss_ulv_tasks: the construction phase gets the same
/// task-graph treatment as the factorization it feeds. Per node and level:
///
///   COMPRESS(L,i)      leaf: gather the diagonal block and build the
///                      shared row basis U_i from (adaptively grown)
///                      sampled far-field columns.    writes node(L,i)
///   TRANSFER(l,p)      internal: merge the children's skeleton rows and
///                      compress them into the transfer basis W_p.
///                      reads node(l+1,2p), node(l+1,2p+1); writes node(l,p)
///   MERGE_SAMPLE(l,t)  sibling coupling S_{2t+1,2t} from the pair's
///                      skeleton rows (exact U_jᵀ A U_i at the leaves).
///                      reads node(l,2t), node(l,2t+1); writes coupling(l,t)
///
/// Dependencies flow strictly through the cluster tree, so every level's
/// COMPRESS/TRANSFER tasks are independent of their siblings and an
/// asynchronous executor can start a parent as soon as its two children
/// finish — no level barriers, exactly like the ULV factorization DAG.
///
/// Every task draws its column samples from a per-node deterministic RNG
/// stream (seeded from HSSOptions::seed, the level, and the node index), so
/// sequential and parallel execution produce bit-identical matrices
/// regardless of scheduling order.

#include <memory>
#include <vector>

#include "format/accessor.hpp"
#include "format/hss.hpp"
#include "format/hss_builder.hpp"
#include "runtime/dag_dataflow.hpp"
#include "runtime/task_graph.hpp"

namespace hatrix::fmt {

/// Mutable state shared by the construction task closures.
struct HSSBuildState {
  /// Per-node construction bookkeeping carried up the tree.
  struct NodeState {
    std::vector<index_t> skel;  ///< global skeleton row indices
    Matrix rfac;                ///< R̄: Ũᵀ A(I, far) ≈ R̄ · A(skel, far)
    index_t samples = 0;        ///< far-field columns finally sampled
    double residual = 0.0;      ///< last guard probe residual (0: no guard)
    index_t growths = 0;        ///< guard-triggered sample growth rounds
    index_t rank_escapes = 0;   ///< rank-cap escalations past max_rank
  };

  const BlockAccessor* acc = nullptr;  ///< matrix being compressed (not owned)
  HSSOptions opts;                     ///< construction parameters
  HSSMatrix h;                         ///< the matrix under construction
  double scale = 1.0;                  ///< operator diagonal scale the guard normalizes by
  std::vector<std::vector<NodeState>> st;  ///< [level][node] bookkeeping
};

/// The emitted construction DAG plus its data-handle layout (for mapping /
/// inspection) and the shared state the tasks write into.
struct HSSBuildDag {
  std::shared_ptr<HSSBuildState> state;            ///< closures' shared state
  std::vector<std::vector<rt::DataId>> node_data;  ///< [level][node] basis+skeleton handles
  std::vector<std::vector<rt::DataId>> coupling_data;  ///< [level][pair] handles
};

/// Aggregate evidence from the accuracy guard over a finished build.
struct HSSBuildReport {
  index_t max_samples = 0;      ///< largest per-node column sample used
  index_t total_growths = 0;    ///< guard growth rounds over all nodes
  double worst_residual = 0.0;  ///< largest accepted probe residual
  index_t rank_escapes = 0;     ///< rank-cap escalations past max_rank
};

/// Emit the HSS construction DAG into `graph`. Tasks carry real work
/// closures; run them through an executor (or in insertion order for a
/// sequential build), then call extract_built_hss. Closures may throw
/// BasisUnderResolvedError (see hss_builder.hpp); executors rethrow it.
///
/// The emitter annotates handle bytes and marks couplings as graph outputs,
/// so rt::analyze_dag runs clean on the emitted DAG. With `release` !=
/// ReleaseMode::None it installs a release hook that retires a node's
/// carried-up sampling state (NodeState::rfac and ::skel — dead weight once
/// the parent TRANSFER and sibling MERGE_SAMPLE consumed them) at the
/// handle's statically-proven last use: Free drops the storage, Poison
/// overwrites it with NaNs / zeroed indices so a read past the last use
/// corrupts the result detectably. The basis/diag/coupling blocks of the
/// finished matrix are never touched.
HSSBuildDag emit_hss_build_dag(const BlockAccessor& acc, const HSSOptions& opts,
                               rt::TaskGraph& graph,
                               rt::ReleaseMode release = rt::ReleaseMode::None);

/// After every task of the DAG has executed, move the finished matrix out
/// of the shared state.
HSSMatrix extract_built_hss(HSSBuildDag& dag);

/// Guard statistics of a finished build (valid after the DAG executed).
HSSBuildReport build_report(const HSSBuildDag& dag);

/// Convenience: emit the DAG and run it on a ThreadPoolExecutor with
/// `workers` threads. Numerically identical to build_hss for any worker
/// count. `report`, when non-null, receives the guard statistics.
/// `release` forwards to emit_hss_build_dag.
HSSMatrix build_hss_parallel(const BlockAccessor& acc, const HSSOptions& opts,
                             int workers, HSSBuildReport* report = nullptr,
                             rt::ReleaseMode release = rt::ReleaseMode::None);

}  // namespace hatrix::fmt
