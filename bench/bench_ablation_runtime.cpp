// Ablation: runtime/scheduling model on the same HSS-ULV DAG — the paper's
// claim 2 (the runtime, not the format, causes STRUMPACK's slowdown) and its
// Sec. 5.3.3 observation that DTD's whole-graph discovery is HATRIX's own
// scaling limit.
//
// Two halves:
//
//   * Simulated (Ablations A/B): the distributed DES compares AsyncDtd vs
//     ForkJoin exec models at paper scale and sweeps the per-task discovery
//     constant; the discovery=0 row is the PTG-style (local-only task
//     generation) future improvement the paper suggests.
//
//   * Measured (Ablation D): the real shared-memory executors — fork-join,
//     FIFO thread pool, and the critical-path priority scheduler — run the
//     actual ULV factorization DAG over an N sweep. Per run we time DAG
//     emission (the DTD discovery analogue: the sequential whole-graph
//     insertion every process repeats) and the in-executor discovery/
//     ready-queue work (rt::ExecutionStats::discovery_total), and report
//       share   = (emit + discovery/worker) / (emit + wall)
//       cp_util = critical_path_time / wall   (trace-derived; 1.0 = the
//                 schedule is as good as the measured chain bound allows)
//     The summary records, per executor, the largest N whose share is still
//     >= 10% — the regime where task discovery dominates useful work.
//
// --verify-dag additionally times the static race & ordering verifier
// (runtime/dag_verify.hpp) on each emitted DAG and prints an Ablation C
// table: verifier wall time vs DAG size, the overhead figure quoted in
// docs/BENCHMARKS.md. The measured half always verifies one emitted graph
// per N (cheap), so every scheduling comparison runs on a verifier-green DAG.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_json.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "distsim/des.hpp"
#include "format/accessor.hpp"
#include "format/hss_builder.hpp"
#include "format/hss_builder_tasks.hpp"
#include "geometry/cluster_tree.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "linalg/matrix.hpp"
#include "runtime/dag_dataflow.hpp"
#include "runtime/dag_verify.hpp"
#include "runtime/fork_join_executor.hpp"
#include "runtime/priority_executor.hpp"
#include "runtime/thread_pool_executor.hpp"
#include "runtime/trace.hpp"
#include "ulv/hss_ulv.hpp"
#include "ulv/hss_ulv_tasks.hpp"

using namespace hatrix;

namespace {

/// One measured executor run on a freshly emitted ULV factorization DAG.
struct MeasuredRun {
  std::int64_t tasks = 0;
  std::int64_t edges = 0;
  double emit_s = 0.0;   ///< DAG emission = the DTD discovery analogue
  double wall_s = 0.0;
  double disc_s = 0.0;   ///< in-executor discovery, summed over workers
  double share = 0.0;    ///< (emit + disc/worker) / (emit + wall)
  double cp_util = 0.0;  ///< critical_path_time / wall
};

const char* kExecutors[] = {"fork-join", "fifo", "priority"};

MeasuredRun run_measured(int which, int workers, const fmt::HSSMatrix& h,
                         bool verify) {
  MeasuredRun r;
  rt::TaskGraph graph;
  WallTimer emit_timer;
  auto dag = ulv::emit_hss_ulv_dag(h, graph, /*with_work=*/true);
  r.emit_s = emit_timer.seconds();
  r.tasks = graph.num_tasks();
  r.edges = graph.num_edges();
  if (verify) (void)rt::verify_dag(graph);

  rt::ExecutionStats stats;
  switch (which) {
    case 0: {
      rt::ForkJoinExecutor ex(workers);
      stats = ex.run(graph);
      break;
    }
    case 1: {
      rt::ThreadPoolExecutor ex(workers);
      stats = ex.run(graph);
      break;
    }
    default: {
      rt::PriorityExecutor ex(workers);
      ex.set_cost(&distsim::CostModel::task_flops);  // flop-true bottom levels
      stats = ex.run(graph);
      break;
    }
  }
  (void)ulv::extract_factorization(dag);

  r.wall_s = stats.wall_time;
  r.disc_s = stats.discovery_total;
  r.share = (r.emit_s + r.disc_s / workers) / (r.emit_s + r.wall_s);
  r.cp_util = rt::critical_path_time(graph, stats) / stats.wall_time;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const la::index_t leaf = cli.get_int("leaf", 256);
  const la::index_t rank = cli.get_int("rank", 100);
  auto nodes_list = cli.get_int_list("nodes", {2, 8, 32, 128});
  const bool verify = cli.has("verify-dag");
  const bool skip_sim = cli.has("skip-sim");
  auto measured_n = cli.get_int_list("measured-n", {1024, 4096, 16384});
  const la::index_t m_leaf = cli.get_int("measured-leaf", 128);
  const la::index_t m_rank = cli.get_int("measured-rank", 40);
  const la::index_t m_sample = cli.get_int("measured-sample", 200);
  const int workers = static_cast<int>(cli.get_int("workers", 4));
  const int reps = static_cast<int>(cli.get_int("reps", 2));
  const la::index_t mem_n = cli.get_int("mem-n", 8192);
  const std::string json_path = cli.get_string("json", "");
  cli.reject_unknown();

  BenchJson json("ablation_runtime");
  distsim::CostModel cost(40.0);

  if (!skip_sim) {
    std::printf("Ablation A: async vs fork-join, same DAG, same distribution\n");
    TextTable ta({"NODES", "N", "async (s)", "fork-join (s)", "fj/async"});
    for (auto nodes : nodes_list) {
      const la::index_t n = 2048 * nodes;
      fmt::HSSMatrix skel = fmt::make_hss_skeleton(n, leaf, rank);

      auto run = [&](distsim::ExecModel model, double discovery) {
        rt::TaskGraph graph;
        auto dag = ulv::emit_hss_ulv_dag(skel, graph, false);
        auto map = distsim::map_hss_row_cyclic(dag, graph, static_cast<int>(nodes));
        distsim::SimConfig cfg;
        cfg.procs = static_cast<int>(nodes);
        cfg.cores_per_proc = 48;
        cfg.model = model;
        cfg.overhead.discovery_per_task = discovery;
        return distsim::simulate(graph, map, cost, cfg);
      };
      auto async = run(distsim::ExecModel::AsyncDtd, 5e-5);
      auto fj = run(distsim::ExecModel::ForkJoin, 0.0);
      ta.add_row({std::to_string(nodes), std::to_string(n), fmt_fixed(async.makespan, 4),
                  fmt_fixed(fj.makespan, 4),
                  fmt_fixed(fj.makespan / async.makespan, 2)});
      json.row()
          .add("phase", std::string("sim_async_vs_fj"))
          .add("nodes", nodes)
          .add("n", n)
          .add("async_s", async.makespan)
          .add("forkjoin_s", fj.makespan);
    }
    std::printf("%s\n", ta.to_string().c_str());

    std::printf("Ablation B: DTD discovery cost sweep (128 nodes, N=262144)\n");
    TextTable tb({"discovery per task (s)", "sim time (s)", "overhead share"});
    {
      const la::index_t n = 262144;
      fmt::HSSMatrix skel = fmt::make_hss_skeleton(n, leaf, rank);
      for (double d : {0.0, 1e-5, 5e-5, 2e-4, 1e-3}) {
        rt::TaskGraph graph;
        auto dag = ulv::emit_hss_ulv_dag(skel, graph, false);
        auto map = distsim::map_hss_row_cyclic(dag, graph, 128);
        distsim::SimConfig cfg;
        cfg.procs = 128;
        cfg.cores_per_proc = 48;
        cfg.overhead.discovery_per_task = d;
        auto res = distsim::simulate(graph, map, cost, cfg);
        const double share = res.overhead_per_worker(cfg) / res.makespan;
        tb.add_row({fmt_sci(d), fmt_fixed(res.makespan, 4), fmt_fixed(share, 3)});
        json.row()
            .add("phase", std::string("sim_discovery_sweep"))
            .add("discovery_per_task", d)
            .add("sim_s", res.makespan)
            .add("overhead_share", share);
      }
    }
    std::printf("%s\n", tb.to_string().c_str());
    std::printf(
        "A PTG-style interface (local-only task generation) corresponds to the\n"
        "discovery=0 row — the paper's suggested future improvement.\n");

    if (verify) {
      std::printf("\nAblation C: static DAG verifier & dataflow analyzer cost "
                  "vs DAG size\n");
      TextTable tc({"N", "tasks", "edges", "crit path", "max width", "verify (ms)",
                    "analyze (ms)", "us/task", "peak bound (MB)"});
      for (auto nodes : nodes_list) {
        const la::index_t n = 2048 * nodes;
        fmt::HSSMatrix skel = fmt::make_hss_skeleton(n, leaf, rank);
        rt::TaskGraph graph;
        (void)ulv::emit_hss_ulv_dag(skel, graph, false);
        WallTimer t;
        rt::DagStats s = rt::verify_dag(graph);
        const double vms = t.seconds() * 1e3;
        t.reset();
        rt::DagDataflowReport rep = rt::analyze_dag(graph);
        const double ams = t.seconds() * 1e3;
        tc.add_row({std::to_string(n), std::to_string(s.tasks),
                    std::to_string(s.edges), std::to_string(s.critical_path),
                    std::to_string(s.max_width), fmt_fixed(vms, 3),
                    fmt_fixed(ams, 3),
                    fmt_fixed(ams * 1e3 / static_cast<double>(s.tasks), 3),
                    fmt_fixed(static_cast<double>(rep.stats.peak_bytes_serial) /
                                  1048576.0,
                              1)});
        json.row()
            .add("phase", std::string("analyzer_cost"))
            .add("n", n)
            .add("tasks", s.tasks)
            .add("edges", s.edges)
            .add("verify_ms", vms)
            .add("analyze_ms", ams)
            .add("peak_serial_bytes", rep.stats.peak_bytes_serial)
            .add("peak_any_bytes", rep.stats.peak_bytes_any);
      }
      std::printf("%s\n", tc.to_string().c_str());
    }
  }

  // -------------------------------------------------------------------
  // Ablation D: measured executors on the real ULV factorization DAG.
  std::printf("\nAblation D: measured executors, real ULV DAG (%d workers, "
              "best of %d reps)\n", workers, reps);
  TextTable td({"N", "tasks", "edges", "executor", "emit (ms)", "wall (ms)",
                "disc/wkr (ms)", "share", "cp util"});
  // share >= 10%: DAG emission + scheduler bookkeeping eat a tenth of the
  // runtime — the small-task regime where DTD overhead dominates.
  std::int64_t n_exceeds[3] = {-1, -1, -1};
  for (auto n : measured_n) {
    // Sampled O(N) construction. The measured-leaf/rank/sample knobs set the
    // task granularity: at the defaults each ULV task is a ~1 ms dense
    // kernel; shrink them (e.g. 64/8/32) for the paper's fine-grained regime
    // where discovery overhead dominates the useful work.
    geom::Domain domain = geom::grid2d(n);
    geom::ClusterTree tree(domain, m_leaf);
    auto kernel = kernels::make_kernel("yukawa");
    kernels::KernelMatrix km(*kernel, tree.points());
    fmt::KernelAccessor acc(km);
    fmt::HSSOptions opts{.leaf_size = m_leaf, .max_rank = m_rank, .tol = 0.0,
                         .sample_cols = m_sample};
    auto h = fmt::build_hss_parallel(acc, opts, workers);

    for (int which = 0; which < 3; ++which) {
      MeasuredRun best;
      for (int rep = 0; rep < reps; ++rep) {
        // Fresh emission per rep: the factorization DAG owns its state, and
        // re-deriving the graph is exactly the DTD discovery being measured.
        auto r = run_measured(which, workers, h, /*verify=*/rep == 0);
        if (rep == 0 || r.wall_s < best.wall_s) best = r;
      }
      td.add_row({std::to_string(n), std::to_string(best.tasks),
                  std::to_string(best.edges), kExecutors[which],
                  fmt_fixed(best.emit_s * 1e3, 3), fmt_fixed(best.wall_s * 1e3, 3),
                  fmt_fixed(best.disc_s / workers * 1e3, 3),
                  fmt_fixed(best.share, 3), fmt_fixed(best.cp_util, 3)});
      if (best.share >= 0.10) n_exceeds[which] = std::max(n_exceeds[which], n);
      json.row()
          .add("phase", std::string("measured"))
          .add("n", n)
          .add("executor", std::string(kExecutors[which]))
          .add("workers", static_cast<std::int64_t>(workers))
          .add("leaf", m_leaf)
          .add("rank", m_rank)
          .add("sample_cols", m_sample)
          .add("tasks", best.tasks)
          .add("edges", best.edges)
          .add("emit_s", best.emit_s)
          .add("wall_s", best.wall_s)
          .add("discovery_s", best.disc_s)
          .add("discovery_share", best.share)
          .add("cp_util", best.cp_util);
    }
  }
  std::printf("%s\n", td.to_string().c_str());

  std::printf("Discovery-dominated regime (largest N with share >= 10%%):\n");
  TextTable ts({"executor", "largest N with share >= 10%"});
  for (int which = 0; which < 3; ++which) {
    ts.add_row({kExecutors[which], std::to_string(n_exceeds[which])});
    json.row()
        .add("phase", std::string("summary"))
        .add("executor", std::string(kExecutors[which]))
        .add("n_exceeds_10pct", n_exceeds[which]);
  }
  std::printf("%s\n", ts.to_string().c_str());
  std::printf(
      "emit = sequential whole-graph task insertion (what every DTD process\n"
      "repeats); share folds it together with in-executor ready-queue work.\n"
      "cp util = critical_path_time/wall: how close the schedule runs to the\n"
      "measured chain bound (higher is better).\n");

  // -------------------------------------------------------------------
  // Ablation E: analyzer-driven early block release on the real
  // construct+factor chain. Same DAGs, same seeds; the only difference is a
  // release hook that frees retired sampling/panel blocks at their
  // statically-proven last use, so the peaks are comparable and the root
  // factor must stay bit-identical.
  std::printf("\nAblation E: early block release, construct+factor chain "
              "(N=%lld, %d workers)\n",
              static_cast<long long>(mem_n), workers);
  {
    geom::Domain domain = geom::grid2d(mem_n);
    geom::ClusterTree tree(domain, m_leaf);
    auto kernel = kernels::make_kernel("yukawa");
    kernels::KernelMatrix km(*kernel, tree.points());
    fmt::KernelAccessor acc(km);
    fmt::HSSOptions opts{.leaf_size = m_leaf, .max_rank = m_rank, .tol = 0.0,
                         .sample_cols = m_sample};

    TextTable te({"release", "build peak (MB)", "factor peak (MB)",
                  "chain peak (MB)", "root max |diff|"});
    la::Matrix roots[2];
    std::int64_t chain_peak[2] = {0, 0};
    for (int pass = 0; pass < 2; ++pass) {
      const rt::ReleaseMode mode =
          pass == 0 ? rt::ReleaseMode::None : rt::ReleaseMode::Free;
      la::reset_matrix_peak();
      auto h = fmt::build_hss_parallel(acc, opts, workers, nullptr, mode);
      const std::int64_t build_peak = la::matrix_bytes_peak();

      la::reset_matrix_peak();
      rt::TaskGraph graph;
      auto dag = ulv::emit_hss_ulv_dag(h, graph, /*with_work=*/true, mode);
      rt::ThreadPoolExecutor ex(workers);
      ex.run(graph);
      auto f = ulv::extract_factorization(dag);
      const std::int64_t factor_peak = la::matrix_bytes_peak();
      chain_peak[pass] = std::max(build_peak, factor_peak);
      roots[pass] = la::Matrix::from_view(f.root_factor().view());

      double root_diff = 0.0;
      if (pass == 1)
        for (la::index_t j = 0; j < roots[0].cols(); ++j)
          for (la::index_t i = 0; i < roots[0].rows(); ++i)
            root_diff = std::max(root_diff,
                                 std::abs(roots[0](i, j) - roots[1](i, j)));
      te.add_row({pass == 0 ? "off" : "on",
                  fmt_fixed(static_cast<double>(build_peak) / 1048576.0, 1),
                  fmt_fixed(static_cast<double>(factor_peak) / 1048576.0, 1),
                  fmt_fixed(static_cast<double>(chain_peak[pass]) / 1048576.0, 1),
                  pass == 0 ? "-" : fmt_sci(root_diff)});
      json.row()
          .add("phase", std::string("memory_release"))
          .add("n", mem_n)
          .add("release", static_cast<std::int64_t>(pass))
          .add("build_peak_bytes", build_peak)
          .add("factor_peak_bytes", factor_peak)
          .add("root_max_diff", pass == 0 ? 0.0 : root_diff);
    }
    std::printf("%s\n", te.to_string().c_str());
    std::printf("chain peak reduction: %.1f%%\n",
                100.0 * (1.0 - static_cast<double>(chain_peak[1]) /
                                   static_cast<double>(chain_peak[0])));
  }

  // -------------------------------------------------------------------
  // Ablation F: mixed-precision low-rank storage. Same operator built at
  // FP64 and at MixedFP32 (every basis/coupling block demoted to FP32 after
  // construction); the tracking allocator reports the resident low-rank
  // footprint, and the accuracy cost is the solve residual against the FP64
  // compressed operator — directly, and after one refinement step.
  std::printf("\nAblation F: mixed-precision low-rank storage (N=%lld)\n",
              static_cast<long long>(mem_n));
  {
    geom::Domain domain = geom::grid2d(mem_n);
    geom::ClusterTree tree(domain, m_leaf);
    auto kernel = kernels::make_kernel("yukawa");
    kernels::KernelMatrix km(*kernel, tree.points());
    fmt::KernelAccessor acc(km);
    Rng rng(271);
    const std::vector<double> b = rng.normal_vector(mem_n);

    fmt::HSSOptions o64{.leaf_size = m_leaf, .max_rank = m_rank, .tol = 0.0,
                        .sample_cols = m_sample};
    fmt::HSSOptions omx = o64;
    omx.precision = fmt::PrecisionMode::MixedFP32;

    auto h64 = fmt::build_hss_parallel(acc, o64, workers);
    auto hmx = fmt::build_hss_parallel(acc, omx, workers);
    auto f64 = ulv::HSSULV::factorize(h64);
    auto fmx = ulv::HSSULV::factorize(hmx);

    // Residual vs the FP64 compressed operator (the operator both builds
    // approximate identically up to the one FP32 rounding pass).
    auto resid = [&](const std::vector<double>& x) {
      std::vector<double> ax;
      h64.matvec(x, ax);
      double rn = 0.0, bn = 0.0;
      for (std::size_t i = 0; i < b.size(); ++i) {
        rn += (b[i] - ax[i]) * (b[i] - ax[i]);
        bn += b[i] * b[i];
      }
      return std::sqrt(rn / bn);
    };
    const double r64 = resid(f64.solve(b));
    const double rmx = resid(fmx.solve(b));
    const double rmx_ir = resid(fmx.solve_refined(b, 1));

    TextTable tf({"precision", "lowrank (MB)", "residual", "residual+IR"});
    const auto row = [&](const char* name, std::int64_t bytes, double r,
                         double rir) {
      tf.add_row({name, fmt_fixed(static_cast<double>(bytes) / 1048576.0, 1),
                  fmt_sci(r), fmt_sci(rir)});
      json.row()
          .add("phase", std::string("mixed_precision"))
          .add("n", mem_n)
          .add("precision", std::string(name))
          .add("lowrank_bytes", bytes)
          .add("residual", r)
          .add("residual_refined", rir);
    };
    row(fmt::precision_name(fmt::PrecisionMode::FP64), h64.lowrank_bytes(),
        r64, r64);
    row(fmt::precision_name(fmt::PrecisionMode::MixedFP32),
        hmx.lowrank_bytes(), rmx, rmx_ir);
    std::printf("%s\n", tf.to_string().c_str());
    std::printf("low-rank resident reduction: %.1f%%\n",
                100.0 * (1.0 - static_cast<double>(hmx.lowrank_bytes()) /
                                   static_cast<double>(h64.lowrank_bytes())));
  }

  if (!json_path.empty()) {
    if (!json.write(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
