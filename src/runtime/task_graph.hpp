#pragma once
/// \file task_graph.hpp
/// \brief DTD-style task graph with dependencies inferred from data access.
///
/// Mirrors PaRSEC's Dynamic Task Discovery interface (Sec. 4.2): the program
/// inserts tasks in sequential order, declaring which data each task reads
/// or read-writes; the runtime derives the DAG from the access order
/// (read-after-write, write-after-read, write-after-write). Every "process"
/// in the paper's DTD discussion discovers this same full graph — the cost
/// of that redundant discovery is what the overhead model in distsim
/// charges.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace hatrix::rt {

using TaskId = std::int64_t;  ///< index of a task in its graph
using DataId = std::int64_t;  ///< index of a data handle in its graph

/// Access mode of one task-data pair (PaRSEC's INPUT / INOUT / OUTPUT).
enum class Access {
  Read,       ///< the task only reads the block (PaRSEC INPUT)
  ReadWrite,  ///< the task reads then mutates the block (PaRSEC INOUT)
  Write       ///< the task overwrites the block without reading the previous
              ///< value (PaRSEC OUTPUT) — same ordering rules as ReadWrite,
              ///< but dag_dataflow knows the prior value is not consumed
};

/// Whether an access mode mutates the block (ReadWrite or Write). The edge
/// derivation, verifier, mapper and simulator all share this predicate.
constexpr bool is_write(Access a) { return a != Access::Read; }

/// One declared access of a task: an opaque resource id (a registered data
/// handle — a matrix block, a node's basis slot, …) plus the access mode.
/// The graph derives its dependency edges from these declarations, and
/// dag_verify.hpp re-checks the finished DAG against them: every W/W or R/W
/// pair on the same resource must be ordered by a dependency path.
using TaskAccess = std::pair<DataId, Access>;

/// A registered piece of data (a matrix block). `bytes` feeds the
/// communication model; `owner` is the process that holds the block under
/// the chosen distribution.
struct DataHandle {
  DataId id = -1;         ///< handle index in the graph
  std::string name;       ///< display name, e.g. "diag(2,1)"
  std::int64_t bytes = 0; ///< payload size for the communication model
  int owner = 0;          ///< owning process under the chosen distribution
  bool input = false;     ///< pre-initialized before the graph runs — a task
                          ///< may read it before any task wrote it
  bool output = false;    ///< consumed after the graph finishes — a final
                          ///< write that no task reads is not a dead store,
                          ///< and the block stays resident to the end
};

/// Hook an executor fires when a data handle's statically-proven last use
/// has completed (dag_dataflow's release schedule): every task that declared
/// an access to the handle has finished, so the backing storage can be freed
/// or poisoned. Called from worker threads, at most once per handle per run;
/// implementations only touch the state behind the released handle.
using ReleaseHook = std::function<void(DataId)>;

/// One node of the DAG.
struct Task {
  TaskId id = -1;              ///< task index in the graph
  std::string name;            ///< display name, e.g. "POTRF(3)"
  std::string kind;            ///< cost-model key, e.g. "potrf"
  std::vector<std::int64_t> dims;  ///< cost-model dimensions (block sizes)
  std::function<void()> work;  ///< actual computation; may be empty (DES-only)
  std::vector<TaskAccess> accesses;  ///< data touched, in declaration order
  int priority = 0;  ///< larger runs earlier among ready tasks
  int phase = 0;     ///< fork-join phase (HSS level, tile-Cholesky step)
};

/// DAG built by sequential task insertion, PaRSEC-DTD style.
class TaskGraph {
 public:
  /// Register a data block. Returns its handle id.
  DataId register_data(std::string name, std::int64_t bytes = 0, int owner = 0);

  /// Reassign the owner process of a block (set by distribution policies).
  void set_owner(DataId d, int owner);
  /// Update the payload size of a block (set by distribution policies).
  void set_bytes(DataId d, std::int64_t bytes);

  /// Declare a block pre-initialized before the graph runs (a seeded panel,
  /// a block of the already-built matrix): dag_dataflow accepts reads of it
  /// with no in-graph def and counts it resident from the start.
  void mark_input(DataId d);
  /// Declare a block consumed after the graph finishes (the factorization
  /// result, the solution panel): a final un-read write of it is not a dead
  /// store and it is never counted as released.
  void mark_output(DataId d);

  /// Install the release hook executors fire at each handle's last use (see
  /// ReleaseHook). Emitters that can free retired blocks early set this;
  /// executors consume the dag_dataflow release schedule iff it is set.
  void set_release_hook(ReleaseHook hook) { release_hook_ = std::move(hook); }
  /// The installed release hook (empty when early release is off).
  [[nodiscard]] const ReleaseHook& release_hook() const { return release_hook_; }

  /// Insert a task; dependencies are derived from `accesses` against all
  /// previously inserted tasks (last-writer / readers-barrier rules).
  TaskId insert_task(Task t);

  /// Convenience overload.
  TaskId insert_task(std::string name, std::string kind,
                     std::vector<std::int64_t> dims, std::function<void()> work,
                     std::vector<TaskAccess> accesses,
                     int priority = 0, int phase = 0);

  /// All tasks in insertion (sequential-submission) order.
  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }
  /// All registered data handles.
  [[nodiscard]] const std::vector<DataHandle>& data() const { return data_; }
  /// One data handle by id.
  [[nodiscard]] const DataHandle& data(DataId d) const;

  /// successors()[t] = tasks that must wait for t (deduplicated).
  [[nodiscard]] const std::vector<std::vector<TaskId>>& successors() const {
    return succ_;
  }
  /// Number of direct predecessors per task.
  [[nodiscard]] const std::vector<int>& in_degree() const { return in_degree_; }

  /// Number of tasks inserted so far.
  [[nodiscard]] std::int64_t num_tasks() const {
    return static_cast<std::int64_t>(tasks_.size());
  }
  /// Number of dependency edges (deduplicated).
  [[nodiscard]] std::int64_t num_edges() const { return num_edges_; }

  /// Length (in tasks) of the longest chain — the unit-cost critical path.
  /// Memoized: the first call after a mutation (insert_task or the test-only
  /// edge surgery) recomputes in O(V + E); repeated queries are O(1).
  [[nodiscard]] std::int64_t critical_path_length() const;

  /// Test-only mutation: remove the dependency edge `from` → `to`, leaving
  /// the access declarations untouched. Returns false if no such edge
  /// exists. This simulates an emitter bug (a forgotten dependency) so the
  /// static verifier's race detection can be exercised against real DAGs;
  /// never call it outside tests.
  bool drop_dependency_for_test(TaskId from, TaskId to);

  /// Test-only mutation: splice in a raw dependency edge with NO validation
  /// — `to` may equal `from` (self-dependency), point backwards (cycle), or
  /// be an unregistered task id (dangling edge). Exists solely to construct
  /// the malformed graphs dag_verify must reject; never call it outside
  /// tests. In-degree/edge counts are only updated when `to` is a valid
  /// task, so a dangling edge is visible to the verifier as an inconsistent
  /// successor id.
  void add_dependency_for_test(TaskId from, TaskId to);

  /// Test-only mutation: remove task `t`'s declared access to handle `d`,
  /// leaving the already-derived edges untouched. This simulates an emitter
  /// annotation bug (a forgotten read or write declaration) so dag_dataflow's
  /// use-before-def / dead-store detection can be exercised against real
  /// DAGs; never call it outside tests. Returns false if no such access.
  bool drop_access_for_test(TaskId t, DataId d);

 private:
  void add_edge(TaskId from, TaskId to);

  std::vector<Task> tasks_;
  std::vector<DataHandle> data_;
  ReleaseHook release_hook_;
  std::vector<std::vector<TaskId>> succ_;
  std::vector<int> in_degree_;
  std::int64_t num_edges_ = 0;

  // critical_path_length() cache; -1 = stale. Every mutation of the edge set
  // (insert_task, drop_dependency_for_test, add_dependency_for_test) resets
  // it, so a query after graph surgery never returns a stale length.
  mutable std::int64_t critical_path_cache_ = -1;

  // DTD bookkeeping per data block.
  struct DataState {
    TaskId last_writer = -1;
    std::vector<TaskId> readers_since_write;
  };
  std::vector<DataState> state_;
};

}  // namespace hatrix::rt
