#include "linalg/cholesky.hpp"

#include <algorithm>

#include "common/flops.hpp"
#include "linalg/blas_detail.hpp"

namespace hatrix::la {

namespace {

constexpr index_t kBlock = 64;

// Right-looking blocked algorithm: factor the diagonal block, solve the
// panel below it, update the trailing lower triangle. Panel work routes
// through the no-count backend dispatchers so the n³/3 recorded at the entry
// point is the whole story (the old code also re-counted every internal
// trsm/syrk, inflating potrf's flops by ~3x).
template <class T>
void potrf_blocked(MatrixViewT<T> a) {
  const index_t n = a.rows;
  for (index_t k = 0; k < n; k += kBlock) {
    const index_t nb = std::min(kBlock, n - k);
    detail::potrf_unblocked<T>(a.block(k, k, nb, nb));
    const index_t rest = n - k - nb;
    if (rest == 0) continue;
    MatrixViewT<T> panel = a.block(k + nb, k, rest, nb);
    detail::trsm_nc(Side::Right, UpLo::Lower, Trans::Yes, Diag::NonUnit, T(1),
                    ConstMatrixViewT<T>(a.block(k, k, nb, nb)), panel);
    // Trailing update only needs the lower triangle, but syrk writes both;
    // that is harmless because potrf never reads the strict upper triangle.
    detail::syrk_nc(T(-1), ConstMatrixViewT<T>(panel), Trans::No, T(1),
                    a.block(k + nb, k + nb, rest, rest));
  }

  // Zero the strict upper triangle so the output is exactly L as a full
  // matrix (callers reconstruct L·Lᵀ with general matmuls).
  for (index_t j = 1; j < n; ++j)
    for (index_t i = 0; i < j; ++i) a(i, j) = T(0);
}

}  // namespace

void potrf(MatrixView a) {
  HATRIX_CHECK(a.rows == a.cols, "potrf requires a square matrix");
  const index_t n = a.rows;
  flops::add(static_cast<std::uint64_t>(n) * n * n / 3);
  potrf_blocked<double>(a);
}

void potrf(MatrixViewF a) {
  HATRIX_CHECK(a.rows == a.cols, "potrf requires a square matrix");
  const index_t n = a.rows;
  flops::add(static_cast<std::uint64_t>(n) * n * n / 3);
  potrf_blocked<float>(a);
}

void potrs(ConstMatrixView l, MatrixView b) {
  trsm(Side::Left, UpLo::Lower, Trans::No, Diag::NonUnit, 1.0, l, b);
  trsm(Side::Left, UpLo::Lower, Trans::Yes, Diag::NonUnit, 1.0, l, b);
}

Matrix solve_spd(ConstMatrixView a, ConstMatrixView b) {
  Matrix l = Matrix::from_view(a);
  potrf(l.view());
  Matrix x = Matrix::from_view(b);
  potrs(l.view(), x.view());
  return x;
}

}  // namespace hatrix::la
