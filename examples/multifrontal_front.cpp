// Multifrontal fronts (the paper's Sec. 5.5 motivation): the dense Schur
// complements ("fronts") arising in sparse multifrontal factorization are
// structured dense matrices, and the HSS-ULV is a drop-in direct
// factorization for them.
//
// This example builds a genuine front: a 5-point finite-difference Laplacian
// on a g x g grid, split by a one-column vertical separator; eliminating the
// two subdomain interiors leaves the dense Schur complement on the separator
// unknowns. We compress that front with HSS (1D separator geometry), ULV-
// factorize it, and use it to solve the original sparse system by block
// elimination, validated against a full dense solve.
//
//   ./multifrontal_front [--g 48]
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "format/accessor.hpp"
#include "format/hss_builder.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/norms.hpp"
#include "ulv/hss_ulv.hpp"

using namespace hatrix;
using la::index_t;
using la::Matrix;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const index_t g = cli.get_int("g", 48);
  cli.reject_unknown();
  const index_t n = g * g;
  const index_t sep_col = g / 2;

  std::printf("Multifrontal front demo: %lld x %lld grid Laplacian, separator column %lld\n",
              static_cast<long long>(g), static_cast<long long>(g),
              static_cast<long long>(sep_col));

  // Assemble the 5-point Laplacian (Dirichlet), ordered interiors-first and
  // the separator last: index map below.
  std::vector<index_t> order(static_cast<std::size_t>(n));
  index_t at = 0;
  std::vector<index_t> position(static_cast<std::size_t>(n));
  for (index_t x = 0; x < g; ++x)
    for (index_t y = 0; y < g; ++y)
      if (x != sep_col) position[static_cast<std::size_t>(x * g + y)] = at++;
  const index_t interior = at;
  for (index_t y = 0; y < g; ++y)
    position[static_cast<std::size_t>(sep_col * g + y)] = at++;
  (void)order;

  Matrix a(n, n);
  auto idx = [&](index_t x, index_t y) { return position[static_cast<std::size_t>(x * g + y)]; };
  for (index_t x = 0; x < g; ++x)
    for (index_t y = 0; y < g; ++y) {
      const index_t r = idx(x, y);
      a(r, r) = 4.0;
      if (x > 0) a(r, idx(x - 1, y)) = -1.0;
      if (x + 1 < g) a(r, idx(x + 1, y)) = -1.0;
      if (y > 0) a(r, idx(x, y - 1)) = -1.0;
      if (y + 1 < g) a(r, idx(x, y + 1)) = -1.0;
    }

  // Block elimination: A = [A_II  A_IS; A_SI  A_SS]. The front is
  // S = A_SS - A_SI A_II^{-1} A_IS (dense on the separator).
  const index_t sep = n - interior;
  WallTimer timer;
  Matrix a_ii = Matrix::from_view(a.block(0, 0, interior, interior));
  Matrix a_is = Matrix::from_view(a.block(0, interior, interior, sep));
  la::potrf(a_ii.view());
  Matrix w = Matrix::from_view(a_is.view());
  la::potrs(a_ii.view(), w.view());  // W = A_II^{-1} A_IS
  Matrix front = Matrix::from_view(a.block(interior, interior, sep, sep));
  la::gemm(-1.0, a_is.view(), la::Trans::Yes, w.view(), la::Trans::No, 1.0,
           front.view());
  std::printf("front assembly (interior elimination): %.3f s, front size %lld\n",
              timer.seconds(), static_cast<long long>(sep));

  // Compress + ULV-factorize the front. Fronts want SMALL leaf sizes
  // (Sec. 5.5: large leaves ruin multifrontal performance) — use 16.
  timer.reset();
  fmt::DenseAccessor facc(front.view());
  fmt::HSSMatrix h = fmt::build_hss(facc, {.leaf_size = 16, .max_rank = 12});
  auto f = ulv::HSSULV::factorize(h);
  std::printf("front HSS-ULV: %.3f s (levels %d, max rank %lld, %.1f%% of dense storage)\n",
              timer.seconds(), h.max_level(),
              static_cast<long long>(h.max_rank_used()),
              100.0 * static_cast<double>(h.memory_bytes()) /
                  static_cast<double>(front.bytes()));

  // Solve the full sparse system via the factored front and compare with a
  // monolithic dense solve.
  Rng rng(3);
  std::vector<double> b = rng.normal_vector(n);
  // Forward: b_S' = b_S - A_SI A_II^{-1} b_I.
  Matrix b_i(interior, 1);
  for (index_t i = 0; i < interior; ++i) b_i(i, 0) = b[static_cast<std::size_t>(i)];
  Matrix z = Matrix::from_view(b_i.view());
  la::potrs(a_ii.view(), z.view());
  std::vector<double> bs(static_cast<std::size_t>(sep));
  for (index_t i = 0; i < sep; ++i) bs[static_cast<std::size_t>(i)] = b[static_cast<std::size_t>(interior + i)];
  la::MatrixView bsv{bs.data(), sep, 1, sep};
  la::gemm(-1.0, a_is.view(), la::Trans::Yes, z.view(), la::Trans::No, 1.0, bsv);
  // Front solve on the separator.
  std::vector<double> xs = f.solve(bs);
  // Backward: x_I = A_II^{-1} (b_I - A_IS x_S).
  Matrix xsv(sep, 1);
  for (index_t i = 0; i < sep; ++i) xsv(i, 0) = xs[static_cast<std::size_t>(i)];
  Matrix xi = Matrix::from_view(b_i.view());
  la::gemm(-1.0, a_is.view(), la::Trans::No, xsv.view(), la::Trans::No, 1.0, xi.view());
  la::potrs(a_ii.view(), xi.view());

  // Reference dense solve of the whole system.
  Matrix rhs(n, 1);
  for (index_t i = 0; i < n; ++i) rhs(i, 0) = b[static_cast<std::size_t>(i)];
  Matrix x_ref = la::solve_spd(a.view(), rhs.view());
  double num = 0.0, den = 0.0;
  for (index_t i = 0; i < interior; ++i) {
    num += (xi(i, 0) - x_ref(i, 0)) * (xi(i, 0) - x_ref(i, 0));
    den += x_ref(i, 0) * x_ref(i, 0);
  }
  for (index_t i = 0; i < sep; ++i) {
    const double d = xs[static_cast<std::size_t>(i)] - x_ref(interior + i, 0);
    num += d * d;
    den += x_ref(interior + i, 0) * x_ref(interior + i, 0);
  }
  std::printf("multifrontal-vs-dense solution rel diff: %.3e\n", std::sqrt(num / den));
  return 0;
}
