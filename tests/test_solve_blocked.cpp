// The blocked multi-RHS solve paths (HSS-ULV, BLR2-ULV, and the panel solve
// DAG) against the per-column oracle: the blocked code applies the same
// per-column operation sequence through gemm/trsm panels, so every column
// must be BIT-identical to a single-RHS solve — not merely close.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "format/accessor.hpp"
#include "format/blr2.hpp"
#include "format/hss_builder.hpp"
#include "geometry/cluster_tree.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "ulv/blr2_ulv.hpp"
#include "ulv/hss_solve_tasks.hpp"
#include "ulv/hss_ulv.hpp"

namespace hatrix::ulv {
namespace {

using la::index_t;
using la::Matrix;

struct Problem {
  geom::Domain domain;
  std::unique_ptr<geom::ClusterTree> tree;
  std::unique_ptr<kernels::Kernel> kernel;
  std::unique_ptr<kernels::KernelMatrix> km;

  Problem(index_t n, index_t leaf, const std::string& kname = "yukawa") {
    domain = geom::grid2d(n);
    tree = std::make_unique<geom::ClusterTree>(domain, leaf);
    kernel = kernels::make_kernel(kname);
    km = std::make_unique<kernels::KernelMatrix>(*kernel, tree->points());
  }
};

/// Exact equality, entry for entry — blocked vs oracle is a pure blocking
/// change, so even the last bit must match.
void expect_bit_identical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i)
      ASSERT_EQ(a(i, j), b(i, j)) << "mismatch at (" << i << "," << j << ")";
}

TEST(BlockedSolve, HssPanelMatchesColumnwiseOracleBitwise) {
  Problem p(1024, 128);
  fmt::KernelAccessor acc(*p.km);
  auto h = fmt::build_hss(acc, {.leaf_size = 128, .max_rank = 40, .tol = 0.0});
  auto f = HSSULV::factorize(h);
  Rng rng(91);
  for (index_t nrhs : {1, 5, 17, 64}) {
    Matrix b = Matrix::random_normal(rng, 1024, nrhs);
    expect_bit_identical(f.solve(b), f.solve_columnwise(b));
  }
}

TEST(BlockedSolve, HssPanelColumnsMatchVectorSolves) {
  Problem p(512, 64);
  fmt::KernelAccessor acc(*p.km);
  auto h = fmt::build_hss(acc, {.leaf_size = 64, .max_rank = 25, .tol = 0.0});
  auto f = HSSULV::factorize(h);
  Rng rng(92);
  Matrix b = Matrix::random_normal(rng, 512, 7);
  Matrix x = f.solve(b);
  for (index_t j = 0; j < 7; ++j) {
    std::vector<double> bj(512);
    for (index_t i = 0; i < 512; ++i) bj[static_cast<std::size_t>(i)] = b(i, j);
    std::vector<double> xj = f.solve(bj);
    for (index_t i = 0; i < 512; ++i)
      ASSERT_EQ(x(i, j), xj[static_cast<std::size_t>(i)]) << "col " << j;
  }
}

TEST(BlockedSolve, HssSingleLevelRootOnly) {
  // leaf >= n: L = 0, the blocked path reduces to one panel potrs.
  Problem p(64, 64);
  fmt::KernelAccessor acc(*p.km);
  auto h = fmt::build_hss(acc, {.leaf_size = 64, .max_rank = 64, .tol = 0.0});
  auto f = HSSULV::factorize(h);
  Rng rng(93);
  Matrix b = Matrix::random_normal(rng, 64, 9);
  expect_bit_identical(f.solve(b), f.solve_columnwise(b));
}

TEST(BlockedSolve, EmptyPanel) {
  Problem p(256, 64);
  fmt::KernelAccessor acc(*p.km);
  auto h = fmt::build_hss(acc, {.leaf_size = 64, .max_rank = 20, .tol = 0.0});
  auto f = HSSULV::factorize(h);
  Matrix x = f.solve(Matrix(256, 0));
  EXPECT_EQ(x.rows(), 256);
  EXPECT_EQ(x.cols(), 0);
}

TEST(BlockedSolve, Blr2PanelMatchesVectorSolves) {
  Problem p(1024, 128);
  fmt::KernelAccessor acc(*p.km);
  auto m = fmt::build_blr2(acc, {.leaf_size = 128, .max_rank = 40, .tol = 0.0});
  auto f = BLR2ULV::factorize(m);
  Rng rng(94);
  Matrix b = Matrix::random_normal(rng, 1024, 11);
  Matrix x = f.solve(b);
  for (index_t j = 0; j < 11; ++j) {
    std::vector<double> bj(1024);
    for (index_t i = 0; i < 1024; ++i) bj[static_cast<std::size_t>(i)] = b(i, j);
    std::vector<double> xj = f.solve(bj);
    for (index_t i = 0; i < 1024; ++i)
      ASSERT_EQ(x(i, j), xj[static_cast<std::size_t>(i)]) << "col " << j;
  }
}

TEST(BlockedSolve, SolveDagPanelMatchesBlockedSolve) {
  Problem p(1024, 128);
  fmt::KernelAccessor acc(*p.km);
  auto h = fmt::build_hss(acc, {.leaf_size = 128, .max_rank = 30, .tol = 0.0});
  auto f = HSSULV::factorize(h);
  Rng rng(95);
  Matrix b = Matrix::random_normal(rng, 1024, 6);

  rt::TaskGraph graph;
  auto dag = emit_hss_solve_dag(f, b.view(), graph);
  for (const auto& t : graph.tasks())
    if (t.work) t.work();
  expect_bit_identical(dag.state->x, f.solve(b));

  // The single-RHS overload is the nrhs = 1 special case of the same DAG.
  std::vector<double> b0(1024);
  for (index_t i = 0; i < 1024; ++i) b0[static_cast<std::size_t>(i)] = b(i, 0);
  rt::TaskGraph graph1;
  auto dag1 = emit_hss_solve_dag(f, b0, graph1);
  for (const auto& t : graph1.tasks())
    if (t.work) t.work();
  std::vector<double> x0 = dag1.state->x_col();
  for (index_t i = 0; i < 1024; ++i)
    ASSERT_EQ(x0[static_cast<std::size_t>(i)], dag.state->x(i, 0));
}

}  // namespace
}  // namespace hatrix::ulv
