#pragma once
/// \file domain.hpp
/// \brief Point sets the kernel matrices are built on.
///
/// The paper evaluates every implementation on a uniform 2D grid geometry
/// (Sec. 5); we provide that plus the other standard BEM/geostatistics
/// layouts (line, circle boundary, random clouds, 3D grid) so examples can
/// exercise realistic scenarios.

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace hatrix::geom {

using index_t = std::int64_t;

/// A point in up to three dimensions (unused coordinates are zero).
struct Point {
  std::array<double, 3> x{0.0, 0.0, 0.0};

  double operator[](std::size_t d) const { return x[d]; }
  double& operator[](std::size_t d) { return x[d]; }
};

/// Euclidean distance.
double dist(const Point& a, const Point& b);

/// A finite point set plus its intrinsic dimension.
struct Domain {
  std::vector<Point> points;
  int dim = 2;

  [[nodiscard]] index_t size() const { return static_cast<index_t>(points.size()); }
};

/// Uniform grid over the unit square with ~n points (rounded to a full
/// ceil(sqrt(n)) x ... grid truncated to exactly n points, row-major order).
/// This is the geometry of the paper's evaluation.
Domain grid2d(index_t n);

/// Uniform grid over the unit cube with exactly n points.
Domain grid3d(index_t n);

/// n equispaced points on the unit circle (a 2D BEM boundary).
Domain circle2d(index_t n);

/// n equispaced points on the unit interval (1D test geometry).
Domain line1d(index_t n);

/// n uniform random points in the unit square.
Domain random2d(index_t n, Rng& rng);

/// n uniform random points in the unit cube.
Domain random3d(index_t n, Rng& rng);

}  // namespace hatrix::geom
