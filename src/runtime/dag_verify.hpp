#pragma once
/// \file dag_verify.hpp
/// \brief Static race & ordering verifier for task DAGs.
///
/// Every correctness property of the task-based pipeline hinges on the DAG
/// edges being *complete*: a missing TRANSFER→MERGE edge would only surface
/// as a flaky TSan hit on a machine with enough cores to actually hit the
/// window. Jacquelin et al.'s fan-both solver and Lacoste et al.'s
/// task-based PaStiX (PAPERS.md) drive their schedulers from declared
/// per-task data access; we reuse the same declarations (rt::TaskAccess) to
/// verify our graphs statically, before a single thread runs:
///
///  1. structural checks — self-dependencies, dangling successor ids,
///     corrupted in-degree bookkeeping, and cycles are rejected with a
///     typed DagStructureError;
///  2. race detection — reachability is computed over the whole DAG and
///     every pair of tasks with conflicting accesses (W/W or R/W on the
///     same resource) that is NOT ordered by a dependency path raises a
///     typed DagRaceError naming the two tasks and the resource;
///  3. width / critical-path statistics fall out as a by-product.
///
/// Executors run the verifier before execution in debug/verify mode (see
/// ThreadPoolExecutor::set_verify_dag), and the DAG-running benches and
/// examples expose it behind `--verify-dag`.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "runtime/task_graph.hpp"

namespace hatrix::rt {

/// Per-task cost callback for weighted critical-path statistics and
/// priority derivation. Returns the (relative) cost of one task — flops,
/// seconds, any consistent unit. The runtime layer deliberately has no
/// opinion on the unit; distsim::CostModel::task_flops is the flop-true
/// implementation the benches plug in.
using TaskCostFn = std::function<double(const Task&)>;

/// Structural statistics of a verified DAG (verify_dag's by-product).
struct DagStats {
  std::int64_t tasks = 0;          ///< number of tasks
  std::int64_t edges = 0;          ///< number of dependency edges
  std::int64_t critical_path = 0;  ///< longest chain, in tasks (unit cost)
  std::int64_t max_width = 0;      ///< widest depth level (peak task parallelism)
  double avg_width = 0.0;          ///< tasks / critical_path (mean parallelism)
  // Filled by analyze_dag (dag_dataflow.hpp); verify_dag leaves them 0.
  std::int64_t data_bytes = 0;        ///< total bytes of touched data handles
  std::int64_t peak_bytes_serial = 0; ///< exact peak along insertion order
  std::int64_t peak_bytes_any = 0;    ///< bound over any edge-consistent schedule
};

/// A task graph whose structure is malformed: a self-dependency, a dangling
/// successor id, in-degree bookkeeping that disagrees with the edge lists,
/// or a dependency cycle.
class DagStructureError : public Error {
 public:
  using Error::Error;
};

/// Two tasks with conflicting declared accesses (W/W or R/W) on the same
/// resource and no dependency path ordering them — a data race the runtime
/// would be free to schedule concurrently.
class DagRaceError : public Error {
 public:
  /// Build the error from the two unordered tasks and the shared resource.
  DagRaceError(TaskId task_a, std::string task_a_name, TaskId task_b,
               std::string task_b_name, DataId resource,
               std::string resource_name);

  TaskId task_a = -1;          ///< first (earlier-inserted) conflicting task
  TaskId task_b = -1;          ///< second conflicting task
  DataId resource = -1;        ///< the resource both tasks touch
  std::string task_a_name;     ///< display name of task_a
  std::string task_b_name;     ///< display name of task_b
  std::string resource_name;   ///< display name of the resource
};

/// Statically verify `graph`: throws DagStructureError on malformed
/// structure and DagRaceError on the first unordered conflicting task pair;
/// returns the DAG statistics otherwise. Cost is O(V + E) for the
/// structural pass plus O(E·V/64) bit-parallel reachability for the race
/// check — a few milliseconds for the multi-thousand-task production DAGs.
DagStats verify_dag(const TaskGraph& graph);

/// Cost-weighted bottom level of every task: bl[t] = cost(t) plus the most
/// expensive downstream dependency chain. The bottom level is the classical
/// critical-path priority — a task whose subtree carries more remaining work
/// gets a larger value, so a scheduler draining highest-bottom-level-first
/// follows the cost-weighted critical path (top-of-tree ULV tasks win over
/// wide cheap leaves). Assumes insertion order is topological, which
/// TaskGraph::insert_task guarantees; edges spliced backwards by the
/// test-only mutators are ignored.
std::vector<double> bottom_levels(const TaskGraph& graph, const TaskCostFn& cost);

/// Cost-weighted critical path: the largest bottom level, i.e. the cost of
/// the most expensive dependency chain. Generalizes
/// TaskGraph::critical_path_length() (the cost==1 special case) through the
/// same per-task cost hook the priority scheduler uses.
double weighted_critical_path(const TaskGraph& graph, const TaskCostFn& cost);

/// Default verify-before-run policy for executors: the HATRIX_VERIFY_DAG
/// environment variable forces it on ("1"/"true"/"on") or off ("0" etc.);
/// with the variable unset, verification defaults to on in debug builds
/// (NDEBUG not defined) and off in release builds.
bool verify_dag_default();

}  // namespace hatrix::rt
