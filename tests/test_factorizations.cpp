// Tests for dense factorizations: Cholesky, LU, QR (plain and pivoted), SVD.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"

namespace hatrix::la {
namespace {

class PotrfSizes : public ::testing::TestWithParam<index_t> {};

TEST_P(PotrfSizes, ReconstructsSpdMatrix) {
  const index_t n = GetParam();
  Rng rng(21);
  Matrix a = Matrix::random_spd(rng, n);
  Matrix l = Matrix::from_view(a.view());
  potrf(l.view());
  // Zero strict upper, then compare L Lᵀ with A.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < j; ++i) l(i, j) = 0.0;
  Matrix llt(n, n);
  gemm(1.0, l.view(), Trans::No, l.view(), Trans::Yes, 0.0, llt.view());
  EXPECT_LT(rel_error(a.view(), llt.view()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(SmallToBlocked, PotrfSizes,
                         ::testing::Values(1, 2, 17, 64, 65, 130, 200));

TEST(Potrf, RejectsIndefinite) {
  Matrix a = Matrix::identity(4);
  a(2, 2) = -1.0;
  EXPECT_THROW(potrf(a.view()), Error);
}

TEST(Potrf, RejectsNonSquare) {
  Matrix a(3, 4);
  EXPECT_THROW(potrf(a.view()), Error);
}

TEST(Potrs, SolvesSpdSystem) {
  Rng rng(22);
  const index_t n = 40;
  Matrix a = Matrix::random_spd(rng, n);
  Matrix x_true = Matrix::random_normal(rng, n, 3);
  Matrix b = matmul(a.view(), x_true.view());
  Matrix x = solve_spd(a.view(), b.view());
  EXPECT_LT(rel_error(x_true.view(), x.view()), 1e-10);
}

TEST(Lu, ReconstructsAndSolves) {
  Rng rng(23);
  const index_t n = 50;
  Matrix a = Matrix::random_normal(rng, n, n);
  for (index_t i = 0; i < n; ++i) a(i, i) += 10.0;  // well-conditioned
  Matrix x_true = Matrix::random_normal(rng, n, 2);
  Matrix b = matmul(a.view(), x_true.view());
  Matrix x = solve(a.view(), b.view());
  EXPECT_LT(rel_error(x_true.view(), x.view()), 1e-10);
}

TEST(Lu, PivotsOnZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  Matrix b(2, 1);
  b(0, 0) = 3.0;
  b(1, 0) = 5.0;
  Matrix x = solve(a.view(), b.view());
  EXPECT_NEAR(x(0, 0), 5.0, 1e-14);
  EXPECT_NEAR(x(1, 0), 3.0, 1e-14);
}

TEST(Lu, SingularThrows) {
  Matrix a(2, 2);  // all zeros
  EXPECT_THROW(getrf(a.view()), Error);
}

class QrShapes : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(QrShapes, OrthonormalAndReconstructs) {
  auto [m, n] = GetParam();
  Rng rng(24);
  Matrix a = Matrix::random_normal(rng, m, n);
  auto f = qr(a.view());
  const index_t k = std::min(m, n);
  ASSERT_EQ(f.q.cols(), k);
  ASSERT_EQ(f.r.rows(), k);
  // QᵀQ = I
  Matrix qtq = matmul(f.q.view(), f.q.view(), Trans::Yes, Trans::No);
  EXPECT_LT(rel_error(Matrix::identity(k).view(), qtq.view()), 1e-12);
  // QR = A
  Matrix qr_prod = matmul(f.q.view(), f.r.view());
  EXPECT_LT(rel_error(a.view(), qr_prod.view()), 1e-12);
  // R upper-triangular
  for (index_t j = 0; j < f.r.cols(); ++j)
    for (index_t i = j + 1; i < f.r.rows(); ++i) EXPECT_EQ(f.r(i, j), 0.0);
}

INSTANTIATE_TEST_SUITE_P(TallSquareWide, QrShapes,
                         ::testing::Values(std::pair<index_t, index_t>{20, 8},
                                           std::pair<index_t, index_t>{8, 8},
                                           std::pair<index_t, index_t>{8, 20},
                                           std::pair<index_t, index_t>{1, 5},
                                           std::pair<index_t, index_t>{5, 1},
                                           std::pair<index_t, index_t>{100, 37}));

TEST(PivotedQr, ExactRankRecovery) {
  Rng rng(25);
  const index_t m = 40, n = 30, r = 7;
  Matrix u = Matrix::random_normal(rng, m, r);
  Matrix v = Matrix::random_normal(rng, n, r);
  Matrix a = matmul(u.view(), v.view(), Trans::No, Trans::Yes);
  auto f = pivoted_qr(a.view(), std::min(m, n), 1e-8);
  EXPECT_EQ(f.rank, r);
  // Q R Pᵀ must reconstruct A: column perm[j] of A equals (Q R)(:, j).
  Matrix qr_prod = matmul(f.q.view(), f.r.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      EXPECT_NEAR(a(i, f.perm[static_cast<std::size_t>(j)]), qr_prod(i, j), 1e-9);
}

TEST(PivotedQr, MaxRankCapRespected) {
  Rng rng(26);
  Matrix a = Matrix::random_normal(rng, 30, 30);
  auto f = pivoted_qr(a.view(), 5, 0.0);
  EXPECT_EQ(f.rank, 5);
  EXPECT_EQ(f.q.cols(), 5);
  Matrix qtq = matmul(f.q.view(), f.q.view(), Trans::Yes, Trans::No);
  EXPECT_LT(rel_error(Matrix::identity(5).view(), qtq.view()), 1e-12);
}

TEST(PivotedQr, DecreasingDiagonalOfR) {
  Rng rng(27);
  Matrix a = Matrix::random_normal(rng, 25, 25);
  auto f = pivoted_qr(a.view(), 25, 0.0);
  for (index_t i = 1; i < f.rank; ++i)
    EXPECT_LE(std::abs(f.r(i, i)), std::abs(f.r(i - 1, i - 1)) + 1e-12);
}

TEST(PivotedQr, ZeroMatrixHasRankZero) {
  Matrix a(10, 10);
  auto f = pivoted_qr(a.view(), 10, 1e-14);
  EXPECT_EQ(f.rank, 0);
}

class SvdShapes : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(SvdShapes, FactorsAreOrthonormalAndReconstruct) {
  auto [m, n] = GetParam();
  Rng rng(28);
  Matrix a = Matrix::random_normal(rng, m, n);
  auto f = svd(a.view());
  const index_t k = std::min(m, n);
  ASSERT_EQ(static_cast<index_t>(f.s.size()), k);
  Matrix utu = matmul(f.u.view(), f.u.view(), Trans::Yes, Trans::No);
  Matrix vtv = matmul(f.v.view(), f.v.view(), Trans::Yes, Trans::No);
  EXPECT_LT(rel_error(Matrix::identity(k).view(), utu.view()), 1e-10);
  EXPECT_LT(rel_error(Matrix::identity(k).view(), vtv.view()), 1e-10);
  // U diag(s) Vᵀ = A
  Matrix us = Matrix::from_view(f.u.view());
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i < m; ++i) us(i, j) *= f.s[static_cast<std::size_t>(j)];
  Matrix rec = matmul(us.view(), f.v.view(), Trans::No, Trans::Yes);
  EXPECT_LT(rel_error(a.view(), rec.view()), 1e-10);
  // Descending order.
  for (index_t i = 1; i < k; ++i)
    EXPECT_LE(f.s[static_cast<std::size_t>(i)], f.s[static_cast<std::size_t>(i - 1)] + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(TallSquareWide, SvdShapes,
                         ::testing::Values(std::pair<index_t, index_t>{30, 10},
                                           std::pair<index_t, index_t>{12, 12},
                                           std::pair<index_t, index_t>{10, 30},
                                           std::pair<index_t, index_t>{64, 5}));

TEST(Svd, SingularValuesOfKnownMatrix) {
  // diag(3, 2, 1) has singular values 3, 2, 1.
  Matrix a(3, 3);
  a(0, 0) = 3;
  a(1, 1) = 2;
  a(2, 2) = 1;
  auto f = svd(a.view());
  EXPECT_NEAR(f.s[0], 3.0, 1e-12);
  EXPECT_NEAR(f.s[1], 2.0, 1e-12);
  EXPECT_NEAR(f.s[2], 1.0, 1e-12);
}

TEST(Svd, NumericalRankThreshold) {
  std::vector<double> s{10.0, 1.0, 1e-9, 0.0};
  EXPECT_EQ(numerical_rank(s, 1e-6), 2);
  EXPECT_EQ(numerical_rank(s, 1e-12), 3);
}

TEST(Norms, KnownValues) {
  Matrix a(2, 2);
  a(0, 0) = 3;
  a(1, 1) = 4;
  EXPECT_DOUBLE_EQ(norm_fro(a.view()), 5.0);
  EXPECT_DOUBLE_EQ(norm_max(a.view()), 4.0);
  EXPECT_DOUBLE_EQ(norm2(std::vector<double>{3.0, 4.0}), 5.0);
}

TEST(Norms, TwoNormEstimateMatchesLargestSingularValue) {
  Rng rng(29);
  Matrix a = Matrix::random_normal(rng, 20, 15);
  auto f = svd(a.view());
  EXPECT_NEAR(norm2_estimate(a.view(), 100), f.s[0], 1e-6 * f.s[0]);
}

}  // namespace
}  // namespace hatrix::la
