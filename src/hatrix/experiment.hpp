#pragma once
/// \file experiment.hpp
/// \brief Real (numerical) accuracy experiments — Table 2 of the paper.
///
/// Builds the kernel matrix on the uniform 2D grid geometry (Sec. 5),
/// compresses it (HSS for the HATRIX/STRUMPACK rows, BLR for LORAPO),
/// factorizes and measures the paper's two error metrics:
///   construction error (Eq. 18):  ||A_dense b - A b|| / ||A_dense b||
///   solve error        (Eq. 19):  ||b - A^{-1} A b|| / ||b||
/// A_dense·b is evaluated matrix-free in streamed panels, so no experiment
/// ever allocates N^2 doubles.

#include <cstdint>
#include <string>

#include "linalg/matrix.hpp"

namespace hatrix::driver {

struct AccuracySetup {
  std::string kernel = "yukawa";  ///< laplace2d | yukawa | matern | gaussian
  la::index_t n = 8192;
  la::index_t leaf_size = 256;    ///< HSS leaf / BLR tile size
  la::index_t max_rank = 100;
  double tol = 0.0;               ///< truncation tolerance (0 = rank-only)
  la::index_t sample_cols = 0;    ///< HSS construction sampling (0 = exact)
  std::uint64_t seed = 42;
  double guard_tol = 0.0;         ///< sampled-construction accuracy guard (0 = off)
  int workers = 1;                ///< >1: task-parallel HSS construction
};

struct AccuracyOutcome {
  double construct_error = 0.0;  ///< Eq. 18
  double solve_error = 0.0;      ///< Eq. 19
  la::index_t rank_used = 0;     ///< largest rank actually used
  double build_seconds = 0.0;
  double factor_seconds = 0.0;
  double solve_seconds = 0.0;
  std::int64_t compressed_bytes = 0;
};

/// HSS + HSS-ULV (the HATRIX-DTD and STRUMPACK rows of Table 2).
AccuracyOutcome hss_accuracy(const AccuracySetup& setup);

/// Flat BLR + BLR tile Cholesky (the LORAPO rows; `tol` drives the
/// adaptive per-tile ranks like LORAPO's 1e-8 setting).
AccuracyOutcome blr_accuracy(const AccuracySetup& setup);

}  // namespace hatrix::driver
