#pragma once
/// \file thread_pool_executor.hpp
/// \brief Asynchronous task-graph executor (the PaRSEC-style runtime).
///
/// Worker threads drain a priority-ordered ready queue; finishing a task
/// releases its successors as soon as their last dependency clears — no
/// barriers anywhere, which is exactly the property that lets HATRIX-DTD
/// start a parent HSS level before the child level has fully finished
/// (Sec. 4.2).

#include <exception>

#include "runtime/task_graph.hpp"
#include "runtime/trace.hpp"

namespace hatrix::rt {

/// Asynchronous executor: workers drain a priority-ordered ready queue with
/// no barriers anywhere.
class ThreadPoolExecutor {
 public:
  /// `num_workers` worker threads (>= 1). The calling thread coordinates.
  explicit ThreadPoolExecutor(int num_workers = 1);

  /// Run every task in the graph respecting dependencies; returns the
  /// execution statistics (trace + compute/overhead breakdown). Exceptions
  /// thrown by task bodies are captured and rethrown after draining — the
  /// failing task's trace is still end-stamped so compute/overhead
  /// accounting never sees a negative duration. When `error_out` is
  /// non-null, a captured exception is stored there instead of rethrown and
  /// the (partial) statistics are returned.
  ExecutionStats run(const TaskGraph& graph, std::exception_ptr* error_out = nullptr);

  /// Worker thread count this executor was built with.
  [[nodiscard]] int num_workers() const { return num_workers_; }

  /// Toggle static DAG verification (dag_verify.hpp) before execution. When
  /// enabled, run() throws DagStructureError / DagRaceError — directly, never
  /// through `error_out` — before any task body executes. Defaults to
  /// rt::verify_dag_default(): on in debug builds, off in release, always
  /// overridable via the HATRIX_VERIFY_DAG environment variable.
  void set_verify_dag(bool enabled) { verify_dag_ = enabled; }
  /// Whether run() statically verifies the graph before executing it.
  [[nodiscard]] bool verify_dag_enabled() const { return verify_dag_; }

  /// Toggle static dataflow analysis (dag_dataflow.hpp) before execution.
  /// When enabled, run() throws DagUseBeforeDefError — directly, never
  /// through `error_out` — before any task body executes; warnings are not
  /// fatal. Defaults to rt::analyze_dag_default() (HATRIX_ANALYZE_DAG env,
  /// else on in debug builds). Independent of the release schedule: that is
  /// consumed whenever the graph has a release hook installed.
  void set_analyze_dag(bool enabled) { analyze_dag_ = enabled; }
  /// Whether run() runs the dataflow pass before executing the graph.
  [[nodiscard]] bool analyze_dag_enabled() const { return analyze_dag_; }

 private:
  int num_workers_;
  bool verify_dag_;
  bool analyze_dag_;
};

}  // namespace hatrix::rt
