#include "format/blr2.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"

namespace hatrix::fmt {

BLR2Matrix::BLR2Matrix(index_t n, index_t num_blocks) : n_(n) {
  HATRIX_CHECK(n > 0 && num_blocks > 0 && num_blocks <= n, "bad BLR2 dimensions");
  nodes_.resize(static_cast<std::size_t>(num_blocks));
  couplings_.resize(static_cast<std::size_t>(num_blocks * (num_blocks - 1) / 2));
}

BLR2Matrix::Node& BLR2Matrix::node(index_t i) {
  HATRIX_CHECK(i >= 0 && i < num_blocks(), "node out of range");
  return nodes_[static_cast<std::size_t>(i)];
}

const BLR2Matrix::Node& BLR2Matrix::node(index_t i) const {
  return const_cast<BLR2Matrix*>(this)->node(i);
}

Matrix& BLR2Matrix::coupling(index_t i, index_t j) {
  HATRIX_CHECK(i > j && i < num_blocks() && j >= 0, "coupling wants i > j");
  return couplings_[static_cast<std::size_t>(i * (i - 1) / 2 + j)];
}

const Matrix& BLR2Matrix::coupling(index_t i, index_t j) const {
  return const_cast<BLR2Matrix*>(this)->coupling(i, j);
}

void BLR2Matrix::matvec(const std::vector<double>& x, std::vector<double>& y) const {
  HATRIX_CHECK(static_cast<index_t>(x.size()) == n_, "matvec dimension mismatch");
  y.assign(static_cast<std::size_t>(n_), 0.0);
  const index_t p = num_blocks();

  // Compressed inputs per block: xc_i = U_iᵀ x_i. F64Block promotes
  // FP32-demoted bases/couplings on the fly (free for FP64 storage).
  std::vector<std::vector<double>> xc(static_cast<std::size_t>(p));
  for (index_t i = 0; i < p; ++i) {
    const Node& nd = node(i);
    xc[static_cast<std::size_t>(i)].assign(static_cast<std::size_t>(nd.rank), 0.0);
    la::gemv(1.0, la::F64Block(nd.basis).view(), la::Trans::Yes,
             x.data() + nd.begin, 0.0, xc[static_cast<std::size_t>(i)].data());
  }

  for (index_t i = 0; i < p; ++i) {
    const Node& nd = node(i);
    // Diagonal block.
    la::gemv(1.0, nd.diag.view(), la::Trans::No, x.data() + nd.begin, 1.0,
             y.data() + nd.begin);
    // Off-diagonal couplings accumulated in compressed coordinates.
    std::vector<double> yc(static_cast<std::size_t>(nd.rank), 0.0);
    for (index_t j = 0; j < p; ++j) {
      if (j == i) continue;
      const Matrix& s = i > j ? coupling(i, j) : coupling(j, i);
      if (s.empty()) continue;
      const auto& xj = xc[static_cast<std::size_t>(j)];
      la::gemv(1.0, la::F64Block(s).view(), i > j ? la::Trans::No : la::Trans::Yes,
               xj.data(), 1.0, yc.data());
    }
    la::gemv(1.0, la::F64Block(nd.basis).view(), la::Trans::No, yc.data(), 1.0,
             y.data() + nd.begin);
  }
}

Matrix BLR2Matrix::dense() const {
  Matrix a(n_, n_);
  const index_t p = num_blocks();
  for (index_t i = 0; i < p; ++i) {
    const Node& ni = node(i);
    la::copy(ni.diag.view(), a.block(ni.begin, ni.begin, ni.block_size(), ni.block_size()));
    for (index_t j = 0; j < i; ++j) {
      const Node& nj = node(j);
      const Matrix& s = coupling(i, j);
      Matrix us = la::matmul(la::F64Block(ni.basis).view(), la::F64Block(s).view());
      Matrix lower = la::matmul(us.view(), la::F64Block(nj.basis).view(),
                                la::Trans::No, la::Trans::Yes);
      la::copy(lower.view(), a.block(ni.begin, nj.begin, ni.block_size(), nj.block_size()));
      Matrix upper = la::transpose(lower.view());
      la::copy(upper.view(), a.block(nj.begin, ni.begin, nj.block_size(), ni.block_size()));
    }
  }
  return a;
}

std::int64_t BLR2Matrix::memory_bytes() const {
  std::int64_t total = 0;
  for (const auto& nd : nodes_) total += nd.basis.bytes() + nd.diag.bytes();
  for (const auto& s : couplings_) total += s.bytes();
  return total;
}

std::int64_t BLR2Matrix::lowrank_bytes() const {
  std::int64_t total = 0;
  for (const auto& nd : nodes_) total += nd.basis.bytes();
  for (const auto& s : couplings_) total += s.bytes();
  return total;
}

void BLR2Matrix::demote_lowrank() {
  for (auto& nd : nodes_) nd.basis.demote_storage();
  for (auto& s : couplings_) s.demote_storage();
  mixed_ = true;
}

BLR2Matrix build_blr2(const BlockAccessor& acc, const HSSOptions& opts) {
  const index_t n = acc.size();
  const index_t p = (n + opts.leaf_size - 1) / opts.leaf_size;
  BLR2Matrix m(n, p);

  // Even partition into p blocks (sizes differ by at most one).
  for (index_t i = 0; i < p; ++i) {
    m.node(i).begin = i * n / p;
    m.node(i).end = (i + 1) * n / p;
  }

  Rng rng(opts.seed);
  for (index_t i = 0; i < p; ++i) {
    auto& nd = m.node(i);
    const index_t b = nd.block_size();
    nd.diag = acc.block(nd.begin, nd.begin, b, b);

    // Basis of the off-diagonal block row, exactly as Eq. (2): pivoted QR of
    // the (sampled) row block.
    std::vector<index_t> rows(static_cast<std::size_t>(b));
    for (index_t r = 0; r < b; ++r) rows[static_cast<std::size_t>(r)] = nd.begin + r;
    std::vector<index_t> cols;
    const index_t comp = n - b;
    if (opts.sample_cols == 0 || opts.sample_cols >= comp) {
      cols.reserve(static_cast<std::size_t>(comp));
      for (index_t j = 0; j < nd.begin; ++j) cols.push_back(j);
      for (index_t j = nd.end; j < n; ++j) cols.push_back(j);
    } else {
      std::unordered_set<index_t> chosen;
      while (static_cast<index_t>(chosen.size()) < opts.sample_cols) {
        index_t j = rng.index(comp);
        if (j >= nd.begin) j += b;
        chosen.insert(j);
      }
      cols.assign(chosen.begin(), chosen.end());
      std::sort(cols.begin(), cols.end());
    }
    Matrix f = acc.gather(rows, cols);
    const double abs_tol = opts.tol > 0.0 ? opts.tol * la::norm_fro(f.view()) : 0.0;
    auto pq = la::pivoted_qr(f.view(), opts.max_rank, abs_tol);
    nd.basis = std::move(pq.q);
    nd.rank = pq.rank;
  }

  // Exact skeleton couplings S_ij = U_iᵀ A_ij U_j for the strict lower part.
  for (index_t i = 0; i < p; ++i) {
    const auto& ni = m.node(i);
    for (index_t j = 0; j < i; ++j) {
      const auto& nj = m.node(j);
      Matrix aij = acc.block(ni.begin, nj.begin, ni.block_size(), nj.block_size());
      Matrix tmp = la::matmul(ni.basis.view(), aij.view(), la::Trans::Yes, la::Trans::No);
      m.coupling(i, j) = la::matmul(tmp.view(), nj.basis.view());
    }
  }
  // Construction is pure FP64; demotion is a single pass over the finished
  // matrix (same policy as the HSS builders).
  if (opts.precision == PrecisionMode::MixedFP32) m.demote_lowrank();
  return m;
}

}  // namespace hatrix::fmt
