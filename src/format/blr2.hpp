#pragma once
/// \file blr2.hpp
/// \brief BLR² matrix: single-level block low rank with shared bases
/// (Fig. 1 of the paper, weak admissibility, symmetric).
///
/// A_ii = D_i dense; A_ij = U_i S_ij U_jᵀ for i != j with one shared basis
/// per block row. The BLR²-ULV factorization (Alg. 1) runs on this format;
/// an HSS matrix is one BLR² matrix per level (Sec. 2).

#include <vector>

#include "format/accessor.hpp"
#include "format/hss.hpp"  // HSSOptions

namespace hatrix::fmt {

/// Symmetric single-level BLR² matrix with one shared basis per block row.
class BLR2Matrix {
 public:
  /// One block row's stored data.
  struct Node {
    index_t begin = 0;  ///< global index interval [begin, end)
    index_t end = 0;    ///< one past the last global index
    index_t rank = 0;   ///< basis column count
    Matrix basis;  ///< U_i, block_size x rank, orthonormal columns
    Matrix diag;   ///< D_i dense

    /// Number of rows owned by this block.
    [[nodiscard]] index_t block_size() const { return end - begin; }
  };

  BLR2Matrix() = default;
  /// Allocate the node/coupling layout for n rows in num_blocks block rows.
  BLR2Matrix(index_t n, index_t num_blocks);

  /// Matrix dimension N.
  [[nodiscard]] index_t size() const { return n_; }
  /// Number of block rows.
  [[nodiscard]] index_t num_blocks() const { return static_cast<index_t>(nodes_.size()); }

  /// Block row i.
  [[nodiscard]] Node& node(index_t i);
  /// Block row i (read-only).
  [[nodiscard]] const Node& node(index_t i) const;

  /// Skeleton block S_ij for i > j (lower triangle; symmetry gives upper).
  [[nodiscard]] Matrix& coupling(index_t i, index_t j);
  /// Skeleton block S_ij for i > j (read-only).
  [[nodiscard]] const Matrix& coupling(index_t i, index_t j) const;

  /// y = A x in O(N·rank + N·leaf) flops.
  void matvec(const std::vector<double>& x, std::vector<double>& y) const;

  /// Materialize the represented dense matrix (tests).
  [[nodiscard]] Matrix dense() const;

  /// Total compressed storage in bytes.
  [[nodiscard]] std::int64_t memory_bytes() const;

  /// Bytes held by the low-rank data alone (bases + couplings).
  [[nodiscard]] std::int64_t lowrank_bytes() const;

  /// Demote every basis and coupling to FP32 storage (diagonals stay FP64);
  /// see HSSMatrix::demote_lowrank.
  void demote_lowrank();

  /// True when demote_lowrank() has run.
  [[nodiscard]] bool mixed() const { return mixed_; }

 private:
  index_t n_ = 0;
  bool mixed_ = false;
  std::vector<Node> nodes_;
  std::vector<Matrix> couplings_;  // packed strict lower triangle
};

/// Build a symmetric BLR² approximation: bases from the off-diagonal block
/// row (sampled when opts.sample_cols > 0), couplings exact projections.
BLR2Matrix build_blr2(const BlockAccessor& acc, const HSSOptions& opts);

}  // namespace hatrix::fmt
