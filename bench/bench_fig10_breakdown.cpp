// Fig. 10: performance breakdown of the weak-scaling runs (Yukawa kernel).
//
//  (a) LORAPO:    COMPUTE TASK TIME vs RUNTIME OVERHEAD per worker
//  (b) STRUMPACK: COMPUTE TIME vs MPI TIME
//  (c) HATRIX:    COMPUTE TASK TIME vs RUNTIME OVERHEAD per worker
//
// The expected shapes (paper Sec. 5.3): LORAPO is overhead-dominated with
// growing overhead; STRUMPACK's MPI time grows with nodes while compute
// stays near-flat; HATRIX's compute is flat and its overhead (DTD whole-
// graph discovery) grows with the total task count.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "hatrix/drivers.hpp"

using namespace hatrix;
using driver::SimExperiment;
using driver::System;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  auto nodes_list = cli.get_int_list("nodes", {2, 4, 8, 16, 32, 64, 128});
  cli.reject_unknown();

  std::printf("Fig. 10a — LORAPO breakdown (per-worker seconds)\n");
  TextTable ta({"NODES", "N", "COMPUTE TASK TIME", "RUNTIME OVERHEAD"});
  for (std::size_t i = 0; i < std::min<std::size_t>(nodes_list.size(), 3); ++i) {
    const int nodes = 2 << (4 * static_cast<int>(i));
    SimExperiment l;
    l.n = 4096LL << (2 * static_cast<int>(i));
    l.leaf_size = 2048;
    l.rank = 512;
    l.nodes = nodes;
    auto out = run_simulated(System::LorapoSim, l);
    ta.add_row({std::to_string(nodes), std::to_string(l.n),
                fmt_sci(out.compute_per_worker), fmt_sci(out.overhead_per_worker)});
  }
  std::printf("%s\n", ta.to_string().c_str());

  std::printf("Fig. 10b — STRUMPACK breakdown\n");
  TextTable tb({"NODES", "N", "COMPUTE TIME (per worker)", "MPI TIME (per rank)"});
  for (auto nodes : nodes_list) {
    SimExperiment e;
    e.n = 2048 * nodes;
    e.leaf_size = 256;
    e.rank = 100;
    e.nodes = static_cast<int>(nodes);
    auto out = run_simulated(System::StrumpackSim, e);
    tb.add_row({std::to_string(nodes), std::to_string(e.n),
                fmt_sci(out.compute_per_worker), fmt_sci(out.mpi_per_process)});
  }
  std::printf("%s\n", tb.to_string().c_str());

  std::printf("Fig. 10c — HATRIX-DTD breakdown\n");
  TextTable tc({"NODES", "N", "COMPUTE TASK TIME", "RUNTIME OVERHEAD", "TASKS"});
  for (auto nodes : nodes_list) {
    SimExperiment e;
    e.n = 2048 * nodes;
    e.leaf_size = 256;
    e.rank = 100;
    e.nodes = static_cast<int>(nodes);
    auto out = run_simulated(System::HatrixDTD, e);
    tc.add_row({std::to_string(nodes), std::to_string(e.n),
                fmt_sci(out.compute_per_worker), fmt_sci(out.overhead_per_worker),
                std::to_string(out.tasks)});
  }
  std::printf("%s\n", tc.to_string().c_str());

  std::printf(
      "Expected shape (paper): (a) overhead >> compute and growing;\n"
      "(b) MPI grows with nodes, compute near-flat; (c) compute flat,\n"
      "overhead grows with the task count (DTD discovers the whole graph\n"
      "on every node).\n");
  return 0;
}
