// Property and fuzz tests: randomized DAGs through both executors, ULV
// correctness across a (leaf, rank) parameter grid, and cross-format
// consistency sweeps.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "format/accessor.hpp"
#include "format/hss_builder.hpp"
#include "geometry/cluster_tree.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/norms.hpp"
#include "runtime/fork_join_executor.hpp"
#include "runtime/thread_pool_executor.hpp"
#include "ulv/hss_ulv.hpp"

namespace hatrix {
namespace {

using la::index_t;
using la::Matrix;

// ---------------------------------------------------------------- runtime

// Random DAG fuzz: layered random graphs where every task appends its id to
// a per-chain log; dependency order must hold in every interleaving.
TEST(ExecutorFuzz, RandomLayeredGraphsRespectDependencies) {
  Rng rng(501);
  for (int trial = 0; trial < 12; ++trial) {
    rt::TaskGraph g;
    const int chains = 3 + static_cast<int>(rng.index(5));
    const int depth = 2 + static_cast<int>(rng.index(6));
    std::vector<rt::DataId> chain_data;
    for (int c = 0; c < chains; ++c)
      chain_data.push_back(g.register_data("chain" + std::to_string(c)));
    // Shared datum creating random cross-chain edges. Its first toucher may
    // be a pure Read, so it is a graph input as far as dataflow analysis is
    // concerned (the executors analyze before running when
    // HATRIX_ANALYZE_DAG=1).
    rt::DataId shared = g.register_data("shared");
    g.mark_input(shared);

    auto log = std::make_shared<std::vector<std::vector<int>>>(
        static_cast<std::size_t>(chains));
    auto mu = std::make_shared<std::mutex>();
    for (int d = 0; d < depth; ++d) {
      for (int c = 0; c < chains; ++c) {
        std::vector<std::pair<rt::DataId, rt::Access>> acc = {
            {chain_data[static_cast<std::size_t>(c)], rt::Access::ReadWrite}};
        if (rng.uniform() < 0.3)
          acc.push_back({shared, rng.uniform() < 0.5 ? rt::Access::Read
                                                     : rt::Access::ReadWrite});
        g.insert_task("t" + std::to_string(d) + "_" + std::to_string(c), "k", {},
                      [log, mu, c, d] {
                        std::lock_guard<std::mutex> lock(*mu);
                        (*log)[static_cast<std::size_t>(c)].push_back(d);
                      },
                      std::move(acc));
      }
    }
    rt::ThreadPoolExecutor ex(1 + static_cast<int>(rng.index(4)));
    auto stats = ex.run(g);
    ASSERT_EQ(rt::validate_trace(g, stats), "") << "trial " << trial;
    for (int c = 0; c < chains; ++c) {
      const auto& seq = (*log)[static_cast<std::size_t>(c)];
      ASSERT_EQ(static_cast<int>(seq.size()), depth);
      for (int d = 0; d < depth; ++d) EXPECT_EQ(seq[static_cast<std::size_t>(d)], d);
      (*log)[static_cast<std::size_t>(c)].clear();
    }
  }
}

TEST(ExecutorFuzz, ForkJoinAgreesWithAsyncOnPhasedGraphs) {
  Rng rng(502);
  for (int trial = 0; trial < 6; ++trial) {
    auto build = [&](auto&& sink) {
      rt::TaskGraph g;
      rt::DataId d = g.register_data("acc");
      for (int phase = 0; phase < 4; ++phase)
        for (int i = 0; i < 5; ++i) {
          rt::Task t;
          t.name = "p" + std::to_string(phase) + "_" + std::to_string(i);
          t.kind = "k";
          t.work = [&sink, phase, i] { sink(phase * 5 + i); };
          t.accesses = {{d, rt::Access::ReadWrite}};
          t.phase = phase;
          g.insert_task(std::move(t));
        }
      return g;
    };
    // Unsigned: the rolling checksum is meant to wrap, not overflow.
    unsigned long async_result = 0, fj_result = 0;
    {
      auto sink = [&async_result](int v) {
        async_result = async_result * 31 + static_cast<unsigned long>(v);
      };
      auto g = build(sink);
      rt::ThreadPoolExecutor ex(3);
      (void)ex.run(g);
    }
    {
      auto sink = [&fj_result](int v) {
        fj_result = fj_result * 31 + static_cast<unsigned long>(v);
      };
      auto g = build(sink);
      rt::ForkJoinExecutor ex(3);
      (void)ex.run(g);
    }
    // A single RW chain fully serializes both executors: identical order.
    EXPECT_EQ(async_result, fj_result);
  }
}

// ------------------------------------------------------------------- ULV

struct UlvGridCase {
  index_t n, leaf, rank;
};

class UlvParameterGrid : public ::testing::TestWithParam<UlvGridCase> {};

TEST_P(UlvParameterGrid, SolveErrorAtRoundoffAcrossGrid) {
  auto [n, leaf, rank] = GetParam();
  geom::Domain d = geom::grid2d(n);
  geom::ClusterTree tree(d, leaf);
  kernels::Yukawa k;
  kernels::KernelMatrix km(k, tree.points());
  fmt::KernelAccessor acc(km);
  auto h = fmt::build_hss(acc, {.leaf_size = leaf, .max_rank = rank, .tol = 0.0});
  auto f = ulv::HSSULV::factorize(h);
  Rng rng(503);
  std::vector<double> b = rng.normal_vector(n);
  EXPECT_LT(ulv::ulv_solve_error(h, f, b), 1e-10)
      << "n=" << n << " leaf=" << leaf << " rank=" << rank;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UlvParameterGrid,
    ::testing::Values(UlvGridCase{512, 64, 16}, UlvGridCase{512, 64, 48},
                      UlvGridCase{512, 128, 32}, UlvGridCase{1024, 64, 24},
                      UlvGridCase{1024, 128, 24}, UlvGridCase{1024, 256, 64},
                      UlvGridCase{1536, 96, 40}, UlvGridCase{2048, 256, 48}));

TEST(UlvProperty, FactorizationIsDeterministic) {
  Rng rng(504);
  auto h = fmt::make_random_spd_hss(512, 64, 12, rng);
  auto f1 = ulv::HSSULV::factorize(h);
  auto f2 = ulv::HSSULV::factorize(h);
  std::vector<double> b = rng.normal_vector(512);
  auto x1 = f1.solve(b);
  auto x2 = f2.solve(b);
  for (std::size_t i = 0; i < x1.size(); ++i) EXPECT_EQ(x1[i], x2[i]);
}

TEST(UlvProperty, SolveIsLinearInRhs) {
  Rng rng(505);
  auto h = fmt::make_random_spd_hss(384, 48, 10, rng);
  auto f = ulv::HSSULV::factorize(h);
  std::vector<double> b1 = rng.normal_vector(384);
  std::vector<double> b2 = rng.normal_vector(384);
  std::vector<double> combo(384);
  for (std::size_t i = 0; i < 384; ++i) combo[i] = 2.0 * b1[i] - 3.0 * b2[i];
  auto x1 = f.solve(b1);
  auto x2 = f.solve(b2);
  auto xc = f.solve(combo);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < 384; ++i) {
    const double expect = 2.0 * x1[i] - 3.0 * x2[i];
    num += (xc[i] - expect) * (xc[i] - expect);
    den += expect * expect;
  }
  EXPECT_LT(std::sqrt(num / den), 1e-12);
}

TEST(FormatProperty, HssDenseIsSymmetric) {
  geom::Domain d = geom::grid2d(700);
  geom::ClusterTree tree(d, 100);
  kernels::Matern k;
  kernels::KernelMatrix km(k, tree.points());
  fmt::KernelAccessor acc(km);
  auto h = fmt::build_hss(acc, {.leaf_size = 100, .max_rank = 20, .tol = 0.0});
  Matrix a = h.dense();
  Matrix at = la::transpose(a.view());
  EXPECT_LT(la::rel_error(a.view(), at.view()), 1e-13);
}

TEST(FormatProperty, CompressionNeverIncreasesSpectralMass) {
  // ||A_hss||_F <= ~||A||_F: compression only removes energy (up to the
  // skeleton approximations at upper levels).
  geom::Domain d = geom::grid2d(1024);
  geom::ClusterTree tree(d, 128);
  kernels::Yukawa k;
  kernels::KernelMatrix km(k, tree.points());
  fmt::KernelAccessor acc(km);
  Matrix a = km.dense();
  auto h = fmt::build_hss(acc, {.leaf_size = 128, .max_rank = 30, .tol = 0.0});
  Matrix rec = h.dense();
  EXPECT_LT(la::norm_fro(rec.view()), 1.001 * la::norm_fro(a.view()));
}

}  // namespace
}  // namespace hatrix
