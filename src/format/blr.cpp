#include "format/blr.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "linalg/blas.hpp"

namespace hatrix::fmt {

BLRMatrix::BLRMatrix(index_t n, index_t num_tiles) : n_(n), nt_(num_tiles) {
  HATRIX_CHECK(n > 0 && num_tiles > 0 && num_tiles <= n, "bad BLR dimensions");
  diags_.resize(static_cast<std::size_t>(num_tiles));
  tiles_.resize(static_cast<std::size_t>(num_tiles * (num_tiles - 1) / 2));
}

Matrix& BLRMatrix::diag(index_t i) {
  HATRIX_CHECK(i >= 0 && i < nt_, "diag tile out of range");
  return diags_[static_cast<std::size_t>(i)];
}

const Matrix& BLRMatrix::diag(index_t i) const {
  return const_cast<BLRMatrix*>(this)->diag(i);
}

lr::LowRank& BLRMatrix::tile(index_t i, index_t j) {
  HATRIX_CHECK(i > j && i < nt_ && j >= 0, "tile wants i > j");
  return tiles_[static_cast<std::size_t>(i * (i - 1) / 2 + j)];
}

const lr::LowRank& BLRMatrix::tile(index_t i, index_t j) const {
  return const_cast<BLRMatrix*>(this)->tile(i, j);
}

void BLRMatrix::matvec(const std::vector<double>& x, std::vector<double>& y) const {
  HATRIX_CHECK(static_cast<index_t>(x.size()) == n_, "matvec dimension mismatch");
  y.assign(static_cast<std::size_t>(n_), 0.0);
  for (index_t i = 0; i < nt_; ++i) {
    la::gemv(1.0, diags_[static_cast<std::size_t>(i)].view(), la::Trans::No,
             x.data() + tile_begin(i), 1.0, y.data() + tile_begin(i));
    for (index_t j = 0; j < i; ++j) {
      const auto& t = tile(i, j);
      t.matvec(1.0, x.data() + tile_begin(j), 1.0, y.data() + tile_begin(i));
      t.matvec_trans(1.0, x.data() + tile_begin(i), 1.0, y.data() + tile_begin(j));
    }
  }
}

Matrix BLRMatrix::dense() const {
  Matrix a(n_, n_);
  for (index_t i = 0; i < nt_; ++i) {
    la::copy(diags_[static_cast<std::size_t>(i)].view(),
             a.block(tile_begin(i), tile_begin(i), tile_size(i), tile_size(i)));
    for (index_t j = 0; j < i; ++j) {
      Matrix lower = tile(i, j).dense();
      la::copy(lower.view(), a.block(tile_begin(i), tile_begin(j), tile_size(i),
                                     tile_size(j)));
      Matrix upper = la::transpose(lower.view());
      la::copy(upper.view(), a.block(tile_begin(j), tile_begin(i), tile_size(j),
                                     tile_size(i)));
    }
  }
  return a;
}

std::int64_t BLRMatrix::memory_bytes() const {
  std::int64_t total = 0;
  for (const auto& d : diags_) total += d.bytes();
  for (const auto& t : tiles_) total += t.bytes();
  return total;
}

index_t BLRMatrix::max_rank_used() const {
  index_t r = 0;
  for (const auto& t : tiles_) r = std::max(r, t.rank());
  return r;
}

BLRMatrix build_blr(const BlockAccessor& acc, const BLROptions& opts) {
  const index_t n = acc.size();
  const index_t p = (n + opts.tile_size - 1) / opts.tile_size;
  BLRMatrix m(n, p);
  for (index_t i = 0; i < p; ++i) {
    m.diag(i) = acc.block(m.tile_begin(i), m.tile_begin(i), m.tile_size(i),
                          m.tile_size(i));
    for (index_t j = 0; j < i; ++j) {
      Matrix aij = acc.block(m.tile_begin(i), m.tile_begin(j), m.tile_size(i),
                             m.tile_size(j));
      m.tile(i, j) = lr::compress(aij.view(), opts.max_rank, opts.tol);
    }
  }
  return m;
}

BLRMatrix make_blr_skeleton(index_t n, index_t tile_size, index_t rank) {
  const index_t p = (n + tile_size - 1) / tile_size;
  BLRMatrix m(n, p);
  for (index_t i = 0; i < p; ++i)
    for (index_t j = 0; j < i; ++j) {
      const index_t r = std::min({rank, m.tile_size(i), m.tile_size(j)});
      m.tile(i, j) = lr::LowRank(Matrix(0, r), Matrix(0, r));
    }
  return m;
}

}  // namespace hatrix::fmt
