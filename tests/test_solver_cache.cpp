// Unit coverage of the keyed factorization cache: key construction and
// fingerprint sensitivity, hit/miss/eviction accounting, exception handling
// in the builder, and the FactoredOperator wrapper itself.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "hatrix/solver_cache.hpp"

namespace hatrix::driver {
namespace {

using la::index_t;

fmt::HSSMatrix small_hss(std::uint64_t seed = 5) {
  Rng rng(seed);
  return fmt::make_random_spd_hss(256, 64, 12, rng);
}

SolverKey key_for(const std::string& kernel) {
  SolverKey k;
  k.kernel = kernel;
  k.n = 256;
  return k;
}

TEST(GeometryFingerprint, SensitiveToOrderAndPerturbation) {
  Rng rng(17);
  geom::Domain d = geom::random2d(32, rng);
  const std::uint64_t base = geometry_fingerprint(d.points);

  // Same points, same order: identical.
  EXPECT_EQ(geometry_fingerprint(d.points), base);

  // Swapping two points changes the fingerprint (it is order-sensitive —
  // the cluster tree depends on input order).
  std::vector<geom::Point> swapped = d.points;
  std::swap(swapped[3], swapped[19]);
  EXPECT_NE(geometry_fingerprint(swapped), base);

  // A one-ulp-scale perturbation of one coordinate changes it.
  std::vector<geom::Point> nudged = d.points;
  nudged[7][0] += 1e-15;
  EXPECT_NE(geometry_fingerprint(nudged), base);

  // A different point count changes it.
  std::vector<geom::Point> shorter(d.points.begin(), d.points.end() - 1);
  EXPECT_NE(geometry_fingerprint(shorter), base);
}

TEST(SolverKey, EqualityAndHashTrackAllFields) {
  Rng rng(23);
  geom::Domain d = geom::random2d(64, rng);
  fmt::HSSOptions opts{.leaf_size = 32, .max_rank = 16, .tol = 1e-8};
  const SolverKey a = make_solver_key("yukawa", d.points, opts);
  const SolverKey b = make_solver_key("yukawa", d.points, opts);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(SolverKeyHash{}(a), SolverKeyHash{}(b));

  SolverKey c = a;
  c.kernel = "laplace";
  EXPECT_FALSE(a == c);

  opts.tol = 1e-6;
  const SolverKey d2 = make_solver_key("yukawa", d.points, opts);
  EXPECT_FALSE(a == d2);

  opts.tol = 1e-8;
  opts.max_rank = 20;
  const SolverKey e = make_solver_key("yukawa", d.points, opts);
  EXPECT_FALSE(a == e);
}

TEST(SolverCache, MissThenHitReturnsSameOperator) {
  SolverCache cache(2);
  int builds = 0;
  auto build = [&](fmt::HSSBuildReport& rep) {
    ++builds;
    rep.max_samples = 99;  // smoke-check that the report is preserved
    return small_hss();
  };

  auto first = cache.get_or_build(key_for("a"), build);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(first->build_report().max_samples, 99);

  auto second = cache.get_or_build(key_for("a"), build);
  EXPECT_EQ(second.get(), first.get());
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(SolverCache, EvictsLeastRecentlyUsedAtCapacity) {
  SolverCache cache(2);
  int builds = 0;
  auto build = [&](fmt::HSSBuildReport&) {
    ++builds;
    return small_hss();
  };

  cache.get_or_build(key_for("a"), build);
  cache.get_or_build(key_for("b"), build);
  cache.get_or_build(key_for("a"), build);  // touch "a": "b" is now coldest
  EXPECT_EQ(builds, 2);

  cache.get_or_build(key_for("c"), build);  // evicts "b"
  EXPECT_EQ(builds, 3);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.size, 2u);

  cache.get_or_build(key_for("a"), build);  // still resident
  EXPECT_EQ(builds, 3);
  cache.get_or_build(key_for("b"), build);  // was evicted: rebuild
  EXPECT_EQ(builds, 4);
}

TEST(SolverCache, EvictedOperatorStaysAliveThroughSharedPtr) {
  SolverCache cache(1);
  auto build = [&](fmt::HSSBuildReport&) { return small_hss(); };
  auto a = cache.get_or_build(key_for("a"), build);
  cache.get_or_build(key_for("b"), build);  // evicts "a" from the cache
  EXPECT_EQ(cache.stats().evictions, 1);
  // The caller's reference keeps the factorization usable after eviction.
  Rng rng(31);
  std::vector<double> b = rng.normal_vector(256);
  std::vector<double> x = a->factorization().solve(b);
  EXPECT_EQ(static_cast<index_t>(x.size()), a->matrix().size());
}

TEST(SolverCache, BuilderExceptionPropagatesAndRetrySucceeds) {
  SolverCache cache(2);
  int attempts = 0;
  auto flaky = [&](fmt::HSSBuildReport&) -> fmt::HSSMatrix {
    if (++attempts == 1) throw std::runtime_error("builder failed");
    return small_hss();
  };

  EXPECT_THROW(cache.get_or_build(key_for("a"), flaky), std::runtime_error);
  // The failed entry must not poison the key: a retry rebuilds.
  auto op = cache.get_or_build(key_for("a"), flaky);
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(cache.stats().size, 1u);
}

TEST(SolverCache, ClearEmptiesResidency) {
  SolverCache cache(4);
  auto build = [&](fmt::HSSBuildReport&) { return small_hss(); };
  cache.get_or_build(key_for("a"), build);
  cache.get_or_build(key_for("b"), build);
  EXPECT_EQ(cache.stats().size, 2u);
  cache.clear();
  EXPECT_EQ(cache.stats().size, 0u);
  int builds = 0;
  cache.get_or_build(key_for("a"), [&](fmt::HSSBuildReport&) {
    ++builds;
    return small_hss();
  });
  EXPECT_EQ(builds, 1);
}

TEST(FactoredOperator, SolvesAgainstItsMatrix) {
  FactoredOperator op(small_hss(41));
  Rng rng(43);
  std::vector<double> x_true = rng.normal_vector(256);
  std::vector<double> b(256);
  op.matrix().matvec(x_true, b);
  std::vector<double> x = op.factorization().solve(b);
  double err = 0.0, nrm = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    err += (x[i] - x_true[i]) * (x[i] - x_true[i]);
    nrm += x_true[i] * x_true[i];
  }
  EXPECT_LT(std::sqrt(err / nrm), 1e-10);
}

}  // namespace
}  // namespace hatrix::driver
