// Tests for the DTD task graph (dependency inference), the asynchronous and
// fork-join executors, and trace validation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "runtime/fork_join_executor.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/thread_pool_executor.hpp"
#include "runtime/trace.hpp"

namespace hatrix::rt {
namespace {

TEST(TaskGraph, ReadAfterWriteEdge) {
  TaskGraph g;
  DataId d = g.register_data("x");
  TaskId w = g.insert_task("w", "k", {}, {}, {{d, Access::ReadWrite}});
  TaskId r = g.insert_task("r", "k", {}, {}, {{d, Access::Read}});
  ASSERT_EQ(g.successors()[static_cast<std::size_t>(w)].size(), 1u);
  EXPECT_EQ(g.successors()[static_cast<std::size_t>(w)][0], r);
  EXPECT_EQ(g.in_degree()[static_cast<std::size_t>(r)], 1);
}

TEST(TaskGraph, WriteAfterReadEdge) {
  TaskGraph g;
  DataId d = g.register_data("x");
  TaskId r1 = g.insert_task("r1", "k", {}, {}, {{d, Access::Read}});
  TaskId r2 = g.insert_task("r2", "k", {}, {}, {{d, Access::Read}});
  TaskId w = g.insert_task("w", "k", {}, {}, {{d, Access::ReadWrite}});
  // Both readers must precede the writer; the readers are unordered.
  std::set<TaskId> preds;
  for (std::size_t t = 0; t < 2; ++t)
    for (TaskId s : g.successors()[t]) preds.insert(s);
  EXPECT_EQ(preds, std::set<TaskId>{w});
  EXPECT_EQ(g.in_degree()[static_cast<std::size_t>(w)], 2);
  EXPECT_EQ(g.in_degree()[static_cast<std::size_t>(r1)], 0);
  EXPECT_EQ(g.in_degree()[static_cast<std::size_t>(r2)], 0);
}

TEST(TaskGraph, WriteAfterWriteChain) {
  TaskGraph g;
  DataId d = g.register_data("x");
  TaskId w1 = g.insert_task("w1", "k", {}, {}, {{d, Access::ReadWrite}});
  TaskId w2 = g.insert_task("w2", "k", {}, {}, {{d, Access::ReadWrite}});
  TaskId w3 = g.insert_task("w3", "k", {}, {}, {{d, Access::ReadWrite}});
  EXPECT_EQ(g.successors()[static_cast<std::size_t>(w1)],
            std::vector<TaskId>{w2});
  EXPECT_EQ(g.successors()[static_cast<std::size_t>(w2)],
            std::vector<TaskId>{w3});
}

TEST(TaskGraph, ReadersAfterWriteClearOnNextWrite) {
  TaskGraph g;
  DataId d = g.register_data("x");
  g.insert_task("w1", "k", {}, {}, {{d, Access::ReadWrite}});
  TaskId r = g.insert_task("r", "k", {}, {}, {{d, Access::Read}});
  TaskId w2 = g.insert_task("w2", "k", {}, {}, {{d, Access::ReadWrite}});
  TaskId r2 = g.insert_task("r2", "k", {}, {}, {{d, Access::Read}});
  // r2 depends on w2 only; r's edge goes to w2.
  EXPECT_EQ(g.in_degree()[static_cast<std::size_t>(r2)], 1);
  EXPECT_EQ(g.successors()[static_cast<std::size_t>(r)], std::vector<TaskId>{w2});
}

TEST(TaskGraph, EdgesDeduplicated) {
  TaskGraph g;
  DataId d1 = g.register_data("a");
  DataId d2 = g.register_data("b");
  TaskId w = g.insert_task("w", "k", {}, {},
                           {{d1, Access::ReadWrite}, {d2, Access::ReadWrite}});
  TaskId r = g.insert_task("r", "k", {}, {},
                           {{d1, Access::Read}, {d2, Access::Read}});
  EXPECT_EQ(g.successors()[static_cast<std::size_t>(w)].size(), 1u);
  EXPECT_EQ(g.in_degree()[static_cast<std::size_t>(r)], 1);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(TaskGraph, CriticalPathLength) {
  TaskGraph g;
  DataId d = g.register_data("x");
  DataId e = g.register_data("y");
  g.insert_task("w1", "k", {}, {}, {{d, Access::ReadWrite}});
  g.insert_task("w2", "k", {}, {}, {{d, Access::ReadWrite}});
  g.insert_task("w3", "k", {}, {}, {{d, Access::ReadWrite}});
  g.insert_task("solo", "k", {}, {}, {{e, Access::ReadWrite}});
  EXPECT_EQ(g.critical_path_length(), 3);
}

TEST(TaskGraph, RejectsUnregisteredData) {
  TaskGraph g;
  EXPECT_THROW(g.insert_task("bad", "k", {}, {}, {{7, Access::Read}}), Error);
}

class Executors : public ::testing::TestWithParam<int> {};

TEST_P(Executors, RunsEveryTaskOnceRespectingDeps) {
  const int workers = GetParam();
  TaskGraph g;
  // Chain of accumulating writes: order-sensitive result.
  DataId d = g.register_data("acc");
  auto value = std::make_shared<std::atomic<long>>(0);
  for (int i = 1; i <= 20; ++i) {
    g.insert_task("mul_add" + std::to_string(i), "k", {},
                  [value, i] { value->store(value->load() * 2 + i); },
                  {{d, Access::ReadWrite}});
  }
  ThreadPoolExecutor ex(workers);
  auto stats = ex.run(g);
  // Sequential reference.
  long ref = 0;
  for (int i = 1; i <= 20; ++i) ref = ref * 2 + i;
  EXPECT_EQ(value->load(), ref);
  EXPECT_EQ(validate_trace(g, stats), "");
  EXPECT_EQ(stats.workers, workers);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, Executors, ::testing::Values(1, 2, 4));

TEST(ThreadPoolExecutor, IndependentTasksAllRun) {
  TaskGraph g;
  auto counter = std::make_shared<std::atomic<int>>(0);
  for (int i = 0; i < 100; ++i) {
    DataId d = g.register_data("d" + std::to_string(i));
    g.insert_task("t" + std::to_string(i), "k", {},
                  [counter] { counter->fetch_add(1); }, {{d, Access::ReadWrite}});
  }
  ThreadPoolExecutor ex(4);
  auto stats = ex.run(g);
  EXPECT_EQ(counter->load(), 100);
  EXPECT_EQ(validate_trace(g, stats), "");
}

TEST(ThreadPoolExecutor, DiamondDependency) {
  TaskGraph g;
  DataId a = g.register_data("a"), b = g.register_data("b"),
         c = g.register_data("c");
  std::vector<int> order;
  std::mutex mu;
  auto log = [&](int id) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(id);
  };
  g.insert_task("src", "k", {}, [&] { log(0); }, {{a, Access::ReadWrite}});
  g.insert_task("left", "k", {}, [&] { log(1); },
                {{a, Access::Read}, {b, Access::ReadWrite}});
  g.insert_task("right", "k", {}, [&] { log(2); },
                {{a, Access::Read}, {c, Access::ReadWrite}});
  g.insert_task("sink", "k", {}, [&] { log(3); },
                {{b, Access::Read}, {c, Access::Read}});
  ThreadPoolExecutor ex(2);
  auto stats = ex.run(g);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 0);
  EXPECT_EQ(order.back(), 3);
  EXPECT_EQ(validate_trace(g, stats), "");
}

TEST(ThreadPoolExecutor, PropagatesTaskExceptions) {
  TaskGraph g;
  DataId d = g.register_data("x");
  g.insert_task("boom", "k", {}, [] { throw Error("boom"); },
                {{d, Access::ReadWrite}});
  ThreadPoolExecutor ex(2);
  EXPECT_THROW((void)ex.run(g), Error);
}

TEST(ThreadPoolExecutor, ThrowingTaskStillGetsEndStamped) {
  // Regression: the exception path used to return without stamping the
  // failing task's trace.end, leaving a negative duration that poisoned the
  // compute/overhead accounting. error_out lets the caller observe the
  // statistics instead of losing them to the rethrow.
  TaskGraph g;
  DataId d = g.register_data("x");
  g.insert_task("slow_boom", "k", {},
                [] {
                  std::this_thread::sleep_for(std::chrono::milliseconds(5));
                  throw Error("boom");
                },
                {{d, Access::ReadWrite}});
  ThreadPoolExecutor ex(1);
  std::exception_ptr err;
  auto stats = ex.run(g, &err);
  ASSERT_TRUE(err != nullptr);
  EXPECT_THROW(std::rethrow_exception(err), Error);
  ASSERT_EQ(stats.traces.size(), 1u);
  const auto& tr = stats.traces[0];
  EXPECT_GE(tr.end, tr.start);
  EXPECT_GT(tr.duration(), 0.0);
  EXPECT_GT(stats.wall_time, 0.0);
  EXPECT_GE(stats.compute_total, 0.0);
}

TEST(ThreadPoolExecutor, EmptyGraph) {
  TaskGraph g;
  ThreadPoolExecutor ex(2);
  auto stats = ex.run(g);
  EXPECT_EQ(stats.traces.size(), 0u);
  EXPECT_EQ(stats.wall_time, 0.0);
}

TEST(ThreadPoolExecutor, PriorityOrderWithSingleWorker) {
  TaskGraph g;
  std::vector<int> order;
  // All independent; single worker must drain by priority.
  for (int i = 0; i < 5; ++i) {
    DataId d = g.register_data("d" + std::to_string(i));
    Task t;
    t.name = "t" + std::to_string(i);
    t.kind = "k";
    t.work = [&order, i] { order.push_back(i); };
    t.accesses = {{d, Access::ReadWrite}};
    t.priority = i;  // later tasks have higher priority
    g.insert_task(std::move(t));
  }
  ThreadPoolExecutor ex(1);
  (void)ex.run(g);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order.front(), 4);  // highest priority first
}

TEST(ForkJoinExecutor, BarrierBetweenPhases) {
  TaskGraph g;
  std::atomic<int> phase0_done{0};
  std::atomic<bool> violated{false};
  for (int i = 0; i < 8; ++i) {
    DataId d = g.register_data("a" + std::to_string(i));
    Task t;
    t.name = "p0_" + std::to_string(i);
    t.kind = "k";
    t.work = [&phase0_done] { phase0_done.fetch_add(1); };
    t.accesses = {{d, Access::ReadWrite}};
    t.phase = 0;
    g.insert_task(std::move(t));
  }
  for (int i = 0; i < 8; ++i) {
    DataId d = g.register_data("b" + std::to_string(i));
    Task t;
    t.name = "p1_" + std::to_string(i);
    t.kind = "k";
    t.work = [&phase0_done, &violated] {
      if (phase0_done.load() != 8) violated.store(true);
    };
    t.accesses = {{d, Access::ReadWrite}};
    t.phase = 1;
    g.insert_task(std::move(t));
  }
  ForkJoinExecutor ex(4);
  auto stats = ex.run(g);
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(validate_trace(g, stats), "");
}

TEST(ForkJoinExecutor, RejectsBackwardPhaseEdges) {
  TaskGraph g;
  DataId d = g.register_data("x");
  Task t1;
  t1.name = "late";
  t1.kind = "k";
  t1.accesses = {{d, Access::ReadWrite}};
  t1.phase = 1;
  g.insert_task(std::move(t1));
  Task t2;
  t2.name = "early";
  t2.kind = "k";
  t2.accesses = {{d, Access::Read}};  // depends on phase-1 task
  t2.phase = 0;
  g.insert_task(std::move(t2));
  ForkJoinExecutor ex(1);
  EXPECT_THROW((void)ex.run(g), Error);
}

TEST(Stats, OverheadIsWallMinusCompute) {
  TaskGraph g;
  DataId d = g.register_data("x");
  g.insert_task("t", "k", {}, [] {}, {{d, Access::ReadWrite}});
  ThreadPoolExecutor ex(3);
  auto stats = ex.run(g);
  EXPECT_NEAR(stats.overhead_total,
              stats.wall_time * 3 - stats.compute_total, 1e-12);
  EXPECT_GE(stats.overhead_per_worker(), 0.0);
}

}  // namespace
}  // namespace hatrix::rt
