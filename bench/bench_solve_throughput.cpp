// Solve-phase throughput: one shared HSS-ULV factorization served to many
// concurrent clients, swept over RHS batch width x client threads. The
// blocked multi-RHS path applies every level's rotations and triangular
// solves to whole panels via gemm/trsm, so its per-column cost drops as the
// batch widens; the column-loop oracle (the pre-blocked code path) is timed
// on the same workload to report the speedup, and its output is compared
// entry-for-entry (the blocked path is bit-identical by construction).
//
//   ./bench_solve_throughput [--n 2048] [--leaf 256] [--rank 60]
//                            [--kernel yukawa] [--samples 256]
//                            [--guard-tol 1e-4] [--solves 64]
//                            [--max-clients 4] [--json BENCH_solve.json]
//                            [--csv]
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_json.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "hatrix/drivers.hpp"

using namespace hatrix;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  driver::SolveThroughputExperiment cfg;
  cfg.n = cli.get_int("n", 2048);
  cfg.leaf_size = cli.get_int("leaf", 256);
  cfg.max_rank = cli.get_int("rank", 60);
  cfg.kernel = cli.get_string("kernel", "yukawa");
  cfg.sample_cols = cli.get_int("samples", 256);
  cfg.guard_tol = cli.get_double("guard-tol", 1e-4);
  cfg.solves = cli.get_int("solves", 64);
  const int max_clients = static_cast<int>(cli.get_int("max-clients", 4));
  const std::string json_path = cli.get_string("json", "BENCH_solve.json");
  const bool csv = cli.has("csv");
  cli.reject_unknown();

  std::printf(
      "Solve throughput: %s kernel, N=%lld leaf=%lld rank=%lld, %lld RHS "
      "columns per cell\n",
      cfg.kernel.c_str(), static_cast<long long>(cfg.n),
      static_cast<long long>(cfg.leaf_size), static_cast<long long>(cfg.max_rank),
      static_cast<long long>(cfg.solves));

  const std::vector<la::index_t> widths{1, 4, 16, 64};
  TextTable table({"batch", "clients", "solves/s", "blocked (s)", "oracle (s)",
                   "speedup", "max |diff|", "solve err"});
  BenchJson json("solve_throughput");

  for (la::index_t w : widths) {
    for (int c = 1; c <= max_clients; c *= 2) {
      cfg.batch = w;
      cfg.clients = c;
      // The oracle repeats the whole workload column by column; measuring it
      // once per batch width (at 1 client) keeps the sweep fast while still
      // reporting the blocked-vs-oracle speedup where it matters.
      cfg.compare_oracle = c == 1;
      auto out = driver::run_solve_throughput(cfg);
      table.add_row({std::to_string(w), std::to_string(c),
                     fmt_fixed(out.solves_per_second, 1),
                     fmt_fixed(out.blocked_seconds, 4),
                     cfg.compare_oracle ? fmt_fixed(out.oracle_seconds, 4) : "-",
                     cfg.compare_oracle ? fmt_fixed(out.speedup_vs_oracle, 2) : "-",
                     cfg.compare_oracle ? fmt_sci(out.max_col_diff) : "-",
                     fmt_sci(out.solve_error)});
      json.row()
          .add("batch", static_cast<std::int64_t>(w))
          .add("clients", static_cast<std::int64_t>(c))
          .add("solves_per_second", out.solves_per_second)
          .add("blocked_seconds", out.blocked_seconds)
          .add("oracle_seconds", out.oracle_seconds)
          .add("speedup_vs_oracle", out.speedup_vs_oracle)
          .add("max_col_diff", out.max_col_diff)
          .add("solve_error", out.solve_error)
          .add("n", static_cast<std::int64_t>(cfg.n))
          .add("rank_used", static_cast<std::int64_t>(out.rank_used));
      std::printf("  batch %3lld x %d client(s): %.1f solves/s%s\n",
                  static_cast<long long>(w), c, out.solves_per_second,
                  cfg.compare_oracle
                      ? (" (vs oracle: " + fmt_fixed(out.speedup_vs_oracle, 2) +
                         "x, max diff " + fmt_sci(out.max_col_diff) + ")")
                            .c_str()
                      : "");
    }
  }

  std::printf("%s\n", csv ? table.to_csv().c_str() : table.to_string().c_str());
  if (!json_path.empty()) {
    if (json.write(json_path))
      std::printf("wrote %s\n", json_path.c_str());
    else
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
  }
  return 0;
}
