// Tests for the top-level drivers: simulated system runs (shapes of
// Figs. 9/11/12 at reduced scale) and the real accuracy experiments
// (Table 2 at reduced N).
#include <gtest/gtest.h>

#include <cmath>

#include "hatrix/drivers.hpp"
#include "hatrix/experiment.hpp"

namespace hatrix::driver {
namespace {

SimExperiment small_exp(la::index_t n, int nodes) {
  SimExperiment e;
  e.n = n;
  e.leaf_size = 256;
  e.rank = 60;
  e.nodes = nodes;
  e.cores_per_node = 8;
  return e;
}

TEST(Drivers, SystemNames) {
  EXPECT_EQ(system_name(System::HatrixDTD), "HATRIX-DTD");
  EXPECT_EQ(system_name(System::StrumpackSim), "STRUMPACK");
  EXPECT_EQ(system_name(System::LorapoSim), "LORAPO");
  EXPECT_EQ(system_name(System::DenseDplasmaSim), "DPLASMA");
}

TEST(Drivers, AllSystemsProduceSaneOutcomes) {
  for (System s : {System::HatrixDTD, System::StrumpackSim, System::LorapoSim,
                   System::DenseDplasmaSim}) {
    auto out = run_simulated(s, small_exp(8192, 4));
    EXPECT_GT(out.factor_time, 0.0) << system_name(s);
    EXPECT_GT(out.tasks, 0) << system_name(s);
    EXPECT_GT(out.flops, 0.0) << system_name(s);
    EXPECT_GE(out.overhead_per_worker, 0.0) << system_name(s);
  }
}

TEST(Drivers, HssFlopsLinearLorapoQuadraticDenseCubic) {
  // The complexity column of Table 1, measured from the modeled DAGs.
  auto exponent = [](System s, la::index_t tile) {
    SimExperiment e1 = small_exp(16384, 2), e2 = small_exp(65536, 2);
    e1.leaf_size = e2.leaf_size = tile;
    e1.rank = e2.rank = 50;
    auto o1 = run_simulated(s, e1);
    auto o2 = run_simulated(s, e2);
    return std::log(o2.flops / o1.flops) / std::log(4.0);
  };
  const double hss = exponent(System::HatrixDTD, 256);
  const double lorapo = exponent(System::LorapoSim, 1024);
  const double dense = exponent(System::DenseDplasmaSim, 2048);
  EXPECT_LT(hss, 1.35);
  // BLR sits strictly between HSS and dense; its exact exponent depends on
  // how the tile size is tuned with N (the paper tunes it per problem).
  EXPECT_GT(lorapo, 1.6);
  EXPECT_LT(lorapo, 2.95);
  EXPECT_GT(dense, 2.6);
  EXPECT_LT(hss, lorapo);
  EXPECT_LT(lorapo, dense);
}

TEST(Drivers, WeakScalingHatrixBeatsBaselinesAtScale) {
  // Fig. 9's headline: at high node counts HATRIX-DTD is fastest.
  const int nodes = 64;
  const la::index_t n = 2048 * nodes;
  SimExperiment h = small_exp(n, nodes);
  h.cores_per_node = 48;
  auto hatrix = run_simulated(System::HatrixDTD, h);
  auto strumpack = run_simulated(System::StrumpackSim, h);
  SimExperiment l = h;
  l.leaf_size = 2048;
  l.rank = 512;
  auto lorapo = run_simulated(System::LorapoSim, l);
  EXPECT_LT(hatrix.factor_time, strumpack.factor_time);
  EXPECT_LT(hatrix.factor_time, lorapo.factor_time);
}

TEST(Drivers, StrumpackCatchesUpAtLargeNOnFixedNodes) {
  // Fig. 11 / Sec. 5.4: at a fixed node count, HATRIX's time grows O(N)
  // because its DTD discovery overhead follows the task count, while
  // STRUMPACK stays roughly flat (communication-bound) — so STRUMPACK's
  // relative position improves as N grows.
  SimExperiment e = small_exp(8192, 64);
  e.cores_per_node = 48;
  auto hatrix = run_simulated(System::HatrixDTD, e);
  auto strumpack = run_simulated(System::StrumpackSim, e);
  SimExperiment big = small_exp(262144, 64);
  big.cores_per_node = 48;
  auto hatrix_big = run_simulated(System::HatrixDTD, big);
  auto strumpack_big = run_simulated(System::StrumpackSim, big);
  const double small_ratio = strumpack.factor_time / hatrix.factor_time;
  const double big_ratio = strumpack_big.factor_time / hatrix_big.factor_time;
  EXPECT_LT(big_ratio, small_ratio);
  // And STRUMPACK's absolute time stays near-flat across a 32x size sweep.
  EXPECT_LT(strumpack_big.factor_time, 4.0 * strumpack.factor_time);
}

TEST(Drivers, HatrixComputePerWorkerFlatUnderWeakScaling) {
  double first = -1.0;
  for (int nodes : {2, 8, 32}) {
    auto out = run_simulated(System::HatrixDTD, small_exp(2048 * nodes, nodes));
    if (first < 0)
      first = out.compute_per_worker;
    else
      EXPECT_NEAR(out.compute_per_worker, first, 0.35 * first);
  }
}

TEST(Drivers, StrumpackMpiTimeGrowsWithNodes) {
  double prev = -1.0;
  for (int nodes : {2, 8, 32}) {
    auto out = run_simulated(System::StrumpackSim, small_exp(2048 * nodes, nodes));
    EXPECT_GT(out.mpi_per_process, prev);
    prev = out.mpi_per_process;
  }
}

TEST(Accuracy, HssTable2RowShape) {
  AccuracySetup s;
  s.kernel = "yukawa";
  s.n = 2048;
  s.leaf_size = 256;
  s.max_rank = 60;
  auto out = hss_accuracy(s);
  EXPECT_LT(out.construct_error, 1e-5);
  EXPECT_LT(out.solve_error, 1e-10);
  EXPECT_LE(out.rank_used, 60);
  EXPECT_GT(out.compressed_bytes, 0);
}

TEST(Accuracy, HssRankImprovesConstructionError) {
  AccuracySetup lo, hi;
  lo.kernel = hi.kernel = "matern";
  lo.n = hi.n = 2048;
  lo.leaf_size = hi.leaf_size = 256;
  lo.max_rank = 20;
  hi.max_rank = 80;
  auto out_lo = hss_accuracy(lo);
  auto out_hi = hss_accuracy(hi);
  EXPECT_LT(out_hi.construct_error, out_lo.construct_error);
}

TEST(Accuracy, BlrAdaptiveRankMeetsTolerance) {
  AccuracySetup s;
  s.kernel = "yukawa";
  s.n = 2048;
  s.leaf_size = 512;
  s.max_rank = 512;
  s.tol = 1e-8;  // LORAPO's construction tolerance from Table 2
  auto out = blr_accuracy(s);
  EXPECT_LT(out.construct_error, 1e-6);
  EXPECT_LT(out.solve_error, 1e-6);
  EXPECT_LT(out.rank_used, 512);  // adaptivity engaged
}

}  // namespace
}  // namespace hatrix::driver
