#pragma once
/// \file blr.hpp
/// \brief Flat BLR matrix (the LORAPO baseline's format).
///
/// Uniform tiling; every off-diagonal tile is compressed *individually*
/// (no shared bases, unlike BLR²/HSS), diagonal tiles stay dense. LORAPO
/// runs a tile Cholesky on this format with adaptive per-tile ranks, which
/// is what gives it O(N^2) factorization complexity (Table 1).

#include <vector>

#include "format/accessor.hpp"
#include "lowrank/compress.hpp"

namespace hatrix::fmt {

/// Construction parameters of the flat BLR builder.
struct BLROptions {
  index_t tile_size = 2048;  ///< paper uses 2048/4096 for LORAPO (Table 2)
  index_t max_rank = 1024;   ///< per-tile rank cap
  double tol = 1e-8;         ///< adaptive-rank truncation tolerance
};

/// Symmetric flat BLR matrix: dense diagonal tiles, individually compressed
/// low-rank off-diagonal tiles (lower triangle stored).
class BLRMatrix {
 public:
  BLRMatrix() = default;
  /// Allocate the tile layout for an n x n matrix cut into num_tiles rows.
  BLRMatrix(index_t n, index_t num_tiles);

  /// Matrix dimension N.
  [[nodiscard]] index_t size() const { return n_; }
  /// Number of tile rows/columns.
  [[nodiscard]] index_t num_tiles() const { return nt_; }
  /// First global index of tile row i.
  [[nodiscard]] index_t tile_begin(index_t i) const { return i * n_ / nt_; }
  /// Number of rows in tile row i.
  [[nodiscard]] index_t tile_size(index_t i) const {
    return (i + 1) * n_ / nt_ - i * n_ / nt_;
  }

  /// Dense diagonal tile i.
  [[nodiscard]] Matrix& diag(index_t i);
  /// Dense diagonal tile i (read-only).
  [[nodiscard]] const Matrix& diag(index_t i) const;

  /// Low-rank off-diagonal tile (i, j), i > j (lower triangle; the matrix
  /// is symmetric).
  [[nodiscard]] lr::LowRank& tile(index_t i, index_t j);
  /// Low-rank off-diagonal tile (i, j), i > j (read-only).
  [[nodiscard]] const lr::LowRank& tile(index_t i, index_t j) const;

  /// y = A x through the compressed tiles.
  void matvec(const std::vector<double>& x, std::vector<double>& y) const;
  /// Materialize the represented dense matrix (tests / small problems).
  [[nodiscard]] Matrix dense() const;
  /// Total compressed storage in bytes.
  [[nodiscard]] std::int64_t memory_bytes() const;
  /// Largest tile rank (LORAPO's adaptive ranks: reported by benches).
  [[nodiscard]] index_t max_rank_used() const;

 private:
  index_t n_ = 0;
  index_t nt_ = 0;
  std::vector<Matrix> diags_;
  std::vector<lr::LowRank> tiles_;  // packed strict lower triangle
};

/// Build a symmetric BLR approximation with per-tile truncated-QR
/// compression at opts.tol (capped at opts.max_rank).
BLRMatrix build_blr(const BlockAccessor& acc, const BLROptions& opts);

/// Structure-only BLR skeleton: every off-diagonal tile reports `rank`
/// (clipped by the tile size) but no numerical data is allocated — tile
/// factors get 0 x rank shapes. For emitting costing-only LORAPO DAGs at
/// scales where the matrix itself is irrelevant.
BLRMatrix make_blr_skeleton(index_t n, index_t tile_size, index_t rank);

}  // namespace hatrix::fmt
