#include "distsim/mapping.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hatrix::distsim {

namespace {

/// Owner-computes: a task runs on the process of its first ReadWrite block.
void assign_tasks_by_output(const rt::TaskGraph& graph, Mapping& m) {
  m.task_owner.assign(static_cast<std::size_t>(graph.num_tasks()), 0);
  for (const auto& t : graph.tasks()) {
    int owner = 0;
    for (const auto& [d, mode] : t.accesses) {
      if (rt::is_write(mode)) {
        owner = graph.data(d).owner;
        break;
      }
    }
    m.task_owner[static_cast<std::size_t>(t.id)] = owner;
  }
}

/// Process grid as square as possible: pr x pc = P with pr <= pc.
std::pair<int, int> process_grid(int p) {
  int pr = static_cast<int>(std::sqrt(static_cast<double>(p)));
  while (pr > 1 && p % pr != 0) --pr;
  return {pr, p / pr};
}

}  // namespace

Mapping map_hss_row_cyclic(const ulv::HSSULVDag& dag, rt::TaskGraph& graph,
                           int num_procs) {
  HATRIX_CHECK(num_procs >= 1, "need at least one process");
  Mapping m;
  m.num_procs = num_procs;
  const auto& a = *dag.state->a;
  const int L = a.max_level();

  for (int l = 0; l <= L; ++l) {
    for (la::index_t i = 0; i < a.num_nodes(l); ++i) {
      const int owner = static_cast<int>(i % num_procs);
      graph.set_owner(dag.diag_data[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)], owner);
      graph.set_owner(dag.basis_data[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)], owner);
      graph.set_owner(dag.rotated_data[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)], owner);
      graph.set_owner(dag.schur_data[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)], owner);
    }
    if (l >= 1) {
      // The coupling block is produced alongside the odd sibling's basis.
      for (la::index_t t = 0; t < a.num_pairs(l); ++t)
        graph.set_owner(
            dag.coupling_data[static_cast<std::size_t>(l)][static_cast<std::size_t>(t)],
            static_cast<int>((2 * t + 1) % num_procs));
    }
  }
  graph.set_owner(dag.root_data, 0);
  assign_tasks_by_output(graph, m);
  return m;
}

Mapping map_hss_block_cyclic(const ulv::HSSULVDag& dag, rt::TaskGraph& graph,
                             int num_procs) {
  HATRIX_CHECK(num_procs >= 1, "need at least one process");
  Mapping m;
  m.num_procs = num_procs;
  const auto& a = *dag.state->a;
  const int L = a.max_level();

  int counter = 0;
  auto next = [&] { return counter++ % num_procs; };
  for (int l = L; l >= 0; --l) {  // ScaLAPACK-style: deal blocks round-robin
    for (la::index_t i = 0; i < a.num_nodes(l); ++i) {
      graph.set_owner(dag.diag_data[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)], next());
      graph.set_owner(dag.basis_data[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)], next());
      graph.set_owner(dag.rotated_data[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)], next());
      graph.set_owner(dag.schur_data[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)], next());
    }
    if (l >= 1)
      for (la::index_t t = 0; t < a.num_pairs(l); ++t)
        graph.set_owner(
            dag.coupling_data[static_cast<std::size_t>(l)][static_cast<std::size_t>(t)],
            next());
  }
  graph.set_owner(dag.root_data, 0);
  assign_tasks_by_output(graph, m);
  return m;
}

Mapping map_blr_block_cyclic(const blrchol::BLRCholDag& dag, rt::TaskGraph& graph,
                             int num_procs) {
  HATRIX_CHECK(num_procs >= 1, "need at least one process");
  Mapping m;
  m.num_procs = num_procs;
  auto [pr, pc] = process_grid(num_procs);
  const auto p = static_cast<la::index_t>(dag.diag_data.size());
  for (la::index_t i = 0; i < p; ++i) {
    graph.set_owner(dag.diag_data[static_cast<std::size_t>(i)],
                    static_cast<int>((i % pr) * pc + (i % pc)));
    for (la::index_t j = 0; j < i; ++j)
      graph.set_owner(
          dag.tile_data[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
          static_cast<int>((i % pr) * pc + (j % pc)));
  }
  assign_tasks_by_output(graph, m);
  return m;
}

Mapping map_dense_block_cyclic(const blrchol::DenseCholDag& dag,
                               rt::TaskGraph& graph, int num_procs) {
  HATRIX_CHECK(num_procs >= 1, "need at least one process");
  Mapping m;
  m.num_procs = num_procs;
  auto [pr, pc] = process_grid(num_procs);
  for (la::index_t i = 0; i < dag.tiles; ++i)
    for (la::index_t j = 0; j <= i; ++j)
      graph.set_owner(
          dag.tile_data[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
          static_cast<int>((i % pr) * pc + (j % pc)));
  assign_tasks_by_output(graph, m);
  return m;
}

}  // namespace hatrix::distsim
