#pragma once
/// \file hss_solve_tasks.hpp
/// \brief The HSS-ULV solve (Eq. 17) expressed as a task graph.
///
/// The solve has the same level-parallel structure as the factorization:
/// per node, FORWARD(l,i) rotates and eliminates the local RHS; the two
/// children's skeleton RHS pieces merge into the parent (GATHER); after the
/// dense root solve, SCATTER/BACKWARD walk back down. Dependencies again
/// only cross levels through the gather/scatter, so an asynchronous runtime
/// overlaps the sweeps of independent subtrees.

#include <memory>

#include "runtime/task_graph.hpp"
#include "ulv/hss_ulv.hpp"

namespace hatrix::ulv {

/// Mutable state shared by the solve task closures.
struct HSSSolveTaskState {
  const fmt::HSSMatrix* a = nullptr;
  const HSSULV* factor = nullptr;
  std::vector<std::vector<std::vector<double>>> rhs;   // [level][node] local b
  std::vector<std::vector<NodeForward>> fwd;           // [level][node]
  std::vector<std::vector<std::vector<double>>> sol;   // [level][node] local x
  std::vector<double> x;                               // final solution
};

struct HSSSolveDag {
  std::shared_ptr<HSSSolveTaskState> state;
};

/// Emit the solve DAG for `b` into `graph`; run it with any executor, then
/// read `dag.state->x`. The result is identical to `factor.solve(b)`.
HSSSolveDag emit_hss_solve_dag(const HSSULV& factor, const std::vector<double>& b,
                               rt::TaskGraph& graph);

}  // namespace hatrix::ulv
