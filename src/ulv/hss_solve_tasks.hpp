#pragma once
/// \file hss_solve_tasks.hpp
/// \brief The HSS-ULV solve (Eq. 17) expressed as a task graph.
///
/// The solve has the same level-parallel structure as the factorization:
/// per node, FORWARD(l,i) rotates and eliminates the local RHS; the two
/// children's skeleton RHS pieces merge into the parent (GATHER); after the
/// dense root solve, SCATTER/BACKWARD walk back down. Dependencies again
/// only cross levels through the gather/scatter, so an asynchronous runtime
/// overlaps the sweeps of independent subtrees.
///
/// Tasks operate on whole RHS panels (n x nrhs): the single-vector overload
/// is the nrhs = 1 special case of the same DAG, so the task path shares the
/// blocked gemm/trsm kernels with HSSULV::solve(const Matrix&).

#include <memory>

#include "runtime/task_graph.hpp"
#include "ulv/hss_ulv.hpp"

namespace hatrix::ulv {

/// Mutable state shared by the solve task closures. One state per emitted
/// DAG; the shared factorization itself is only ever read.
struct HSSSolveTaskState {
  const fmt::HSSMatrix* a = nullptr;
  const HSSULV* factor = nullptr;
  std::vector<std::vector<Matrix>> rhs;            // [level][node] local B panel
  std::vector<std::vector<NodeForwardPanel>> fwd;  // [level][node]
  std::vector<std::vector<Matrix>> sol;            // [level][node] local X panel
  Matrix x;                                        // final solution (n x nrhs)

  /// Column `j` of the solution panel as a plain vector (convenience for
  /// the single-RHS overload and tests).
  [[nodiscard]] std::vector<double> x_col(la::index_t j = 0) const;
};

struct HSSSolveDag {
  std::shared_ptr<HSSSolveTaskState> state;
};

/// Emit the blocked multi-RHS solve DAG for the panel `b` (n x nrhs) into
/// `graph`; run it with any executor, then read `dag.state->x`. The result
/// is bit-identical to `factor.solve(b)`.
HSSSolveDag emit_hss_solve_dag(const HSSULV& factor, la::ConstMatrixView b,
                               rt::TaskGraph& graph);

/// Single-RHS convenience overload: the nrhs = 1 panel DAG. Read the
/// solution via `dag.state->x_col()`.
HSSSolveDag emit_hss_solve_dag(const HSSULV& factor, const std::vector<double>& b,
                               rt::TaskGraph& graph);

}  // namespace hatrix::ulv
