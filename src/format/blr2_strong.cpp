#include "format/blr2_strong.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"

namespace hatrix::fmt {

StrongBLR2Matrix::StrongBLR2Matrix(index_t n, index_t num_blocks) : n_(n) {
  HATRIX_CHECK(n > 0 && num_blocks > 0 && num_blocks <= n,
               "bad StrongBLR2 dimensions");
  nodes_.resize(static_cast<std::size_t>(num_blocks));
  const std::size_t pairs =
      static_cast<std::size_t>(num_blocks * (num_blocks - 1) / 2);
  admissible_.assign(pairs, false);
  couplings_.resize(pairs);
  near_.resize(pairs);
}

std::size_t StrongBLR2Matrix::pair_index(index_t i, index_t j) const {
  HATRIX_CHECK(i > j && i < num_blocks() && j >= 0, "pair wants i > j");
  return static_cast<std::size_t>(i * (i - 1) / 2 + j);
}

StrongBLR2Matrix::Node& StrongBLR2Matrix::node(index_t i) {
  HATRIX_CHECK(i >= 0 && i < num_blocks(), "node out of range");
  return nodes_[static_cast<std::size_t>(i)];
}

const StrongBLR2Matrix::Node& StrongBLR2Matrix::node(index_t i) const {
  return const_cast<StrongBLR2Matrix*>(this)->node(i);
}

bool StrongBLR2Matrix::admissible(index_t i, index_t j) const {
  if (i == j) return false;
  return admissible_[pair_index(std::max(i, j), std::min(i, j))];
}

void StrongBLR2Matrix::set_admissible(index_t i, index_t j, bool value) {
  admissible_[pair_index(std::max(i, j), std::min(i, j))] = value;
}

Matrix& StrongBLR2Matrix::coupling(index_t i, index_t j) {
  return couplings_[pair_index(i, j)];
}

const Matrix& StrongBLR2Matrix::coupling(index_t i, index_t j) const {
  return couplings_[pair_index(i, j)];
}

Matrix& StrongBLR2Matrix::near_block(index_t i, index_t j) {
  return near_[pair_index(i, j)];
}

const Matrix& StrongBLR2Matrix::near_block(index_t i, index_t j) const {
  return near_[pair_index(i, j)];
}

void StrongBLR2Matrix::matvec(const std::vector<double>& x,
                              std::vector<double>& y) const {
  HATRIX_CHECK(static_cast<index_t>(x.size()) == n_, "matvec dimension mismatch");
  y.assign(static_cast<std::size_t>(n_), 0.0);
  const index_t p = num_blocks();

  std::vector<std::vector<double>> xc(static_cast<std::size_t>(p));
  for (index_t i = 0; i < p; ++i) {
    const Node& nd = node(i);
    xc[static_cast<std::size_t>(i)].assign(static_cast<std::size_t>(nd.rank), 0.0);
    // F64Block promotes FP32-demoted far-field data on the fly (free for
    // FP64 storage); diagonals and near-field blocks are always FP64.
    if (nd.rank > 0)
      la::gemv(1.0, la::F64Block(nd.basis).view(), la::Trans::Yes,
               x.data() + nd.begin, 0.0, xc[static_cast<std::size_t>(i)].data());
  }

  for (index_t i = 0; i < p; ++i) {
    const Node& ni = node(i);
    la::gemv(1.0, ni.diag.view(), la::Trans::No, x.data() + ni.begin, 1.0,
             y.data() + ni.begin);
    std::vector<double> yc(static_cast<std::size_t>(ni.rank), 0.0);
    for (index_t j = 0; j < p; ++j) {
      if (j == i) continue;
      const Node& nj = node(j);
      if (admissible(i, j)) {
        const Matrix& s = i > j ? coupling(i, j) : coupling(j, i);
        if (s.empty()) continue;
        la::gemv(1.0, la::F64Block(s).view(), i > j ? la::Trans::No : la::Trans::Yes,
                 xc[static_cast<std::size_t>(j)].data(), 1.0, yc.data());
      } else {
        const Matrix& d = i > j ? near_block(i, j) : near_block(j, i);
        if (d.empty()) continue;
        la::gemv(1.0, d.view(), i > j ? la::Trans::No : la::Trans::Yes,
                 x.data() + nj.begin, 1.0, y.data() + ni.begin);
      }
    }
    if (ni.rank > 0)
      la::gemv(1.0, la::F64Block(ni.basis).view(), la::Trans::No, yc.data(),
               1.0, y.data() + ni.begin);
  }
}

Matrix StrongBLR2Matrix::dense() const {
  Matrix a(n_, n_);
  const index_t p = num_blocks();
  for (index_t i = 0; i < p; ++i) {
    const Node& ni = node(i);
    la::copy(ni.diag.view(),
             a.block(ni.begin, ni.begin, ni.block_size(), ni.block_size()));
    for (index_t j = 0; j < i; ++j) {
      const Node& nj = node(j);
      Matrix lower;
      if (admissible(i, j)) {
        Matrix us = la::matmul(la::F64Block(ni.basis).view(),
                               la::F64Block(coupling(i, j)).view());
        lower = la::matmul(us.view(), la::F64Block(nj.basis).view(),
                           la::Trans::No, la::Trans::Yes);
      } else {
        lower = Matrix::from_view(near_block(i, j).view());
      }
      la::copy(lower.view(),
               a.block(ni.begin, nj.begin, ni.block_size(), nj.block_size()));
      Matrix upper = la::transpose(lower.view());
      la::copy(upper.view(),
               a.block(nj.begin, ni.begin, nj.block_size(), ni.block_size()));
    }
  }
  return a;
}

std::int64_t StrongBLR2Matrix::memory_bytes() const {
  std::int64_t total = 0;
  for (const auto& nd : nodes_) total += nd.basis.bytes() + nd.diag.bytes();
  for (const auto& s : couplings_) total += s.bytes();
  for (const auto& d : near_) total += d.bytes();
  return total;
}

std::int64_t StrongBLR2Matrix::lowrank_bytes() const {
  std::int64_t total = 0;
  for (const auto& nd : nodes_) total += nd.basis.bytes();
  for (const auto& s : couplings_) total += s.bytes();
  return total;
}

void StrongBLR2Matrix::demote_lowrank() {
  for (auto& nd : nodes_) nd.basis.demote_storage();
  for (auto& s : couplings_) s.demote_storage();
  mixed_ = true;
}

double StrongBLR2Matrix::admissible_fraction() const {
  if (admissible_.empty()) return 0.0;
  std::size_t count = 0;
  for (bool a : admissible_)
    if (a) ++count;
  return static_cast<double>(count) / static_cast<double>(admissible_.size());
}

StrongBLR2Matrix build_strong_blr2(const BlockAccessor& acc,
                                   const geom::ClusterTree& tree,
                                   const HSSOptions& opts, double eta) {
  const index_t n = acc.size();
  HATRIX_CHECK(tree.size() == n, "tree/accessor size mismatch");
  const int L = tree.max_level();
  const index_t p = tree.num_nodes(L);
  StrongBLR2Matrix m(n, p);

  for (index_t i = 0; i < p; ++i) {
    m.node(i).begin = tree.node(L, i).begin;
    m.node(i).end = tree.node(L, i).end;
  }

  // Geometric admissibility pattern.
  for (index_t i = 0; i < p; ++i)
    for (index_t j = 0; j < i; ++j)
      m.set_admissible(i, j, geom::strongly_admissible(tree, L, i, j, eta));

  // Bases from the admissible (far-field) columns of each block row.
  for (index_t i = 0; i < p; ++i) {
    auto& nd = m.node(i);
    const index_t b = nd.block_size();
    nd.diag = acc.block(nd.begin, nd.begin, b, b);

    std::vector<index_t> rows(static_cast<std::size_t>(b));
    for (index_t r = 0; r < b; ++r) rows[static_cast<std::size_t>(r)] = nd.begin + r;
    std::vector<index_t> cols;
    for (index_t j = 0; j < p; ++j) {
      if (j == i || !m.admissible(i, j)) continue;
      for (index_t c = m.node(j).begin; c < m.node(j).end; ++c) cols.push_back(c);
    }
    if (cols.empty()) {
      nd.rank = 0;
      nd.basis = Matrix(b, 0);
      continue;
    }
    Matrix f = acc.gather(rows, cols);
    const double abs_tol = opts.tol > 0.0 ? opts.tol * la::norm_fro(f.view()) : 0.0;
    auto pq = la::pivoted_qr(f.view(), opts.max_rank, abs_tol);
    nd.basis = std::move(pq.q);
    nd.rank = pq.rank;
  }

  // Couplings on admissible pairs, dense storage on the near field.
  for (index_t i = 0; i < p; ++i) {
    const auto& ni = m.node(i);
    for (index_t j = 0; j < i; ++j) {
      const auto& nj = m.node(j);
      Matrix aij = acc.block(ni.begin, nj.begin, ni.block_size(), nj.block_size());
      if (m.admissible(i, j)) {
        Matrix tmp = la::matmul(ni.basis.view(), aij.view(), la::Trans::Yes,
                                la::Trans::No);
        m.coupling(i, j) = la::matmul(tmp.view(), nj.basis.view());
      } else {
        m.near_block(i, j) = std::move(aij);
      }
    }
  }
  if (opts.precision == PrecisionMode::MixedFP32) m.demote_lowrank();
  return m;
}

}  // namespace hatrix::fmt
