#pragma once
/// \file hss_ulv_tasks.hpp
/// \brief HSS-ULV expressed as a task graph (Fig. 8 of the paper).
///
/// Per node and level:
///   DIAG_PRODUCT(l,i)    reads  diag(l,i), basis(l,i)   writes rotated(l,i)
///   PARTIAL_FACTOR(l,i)  reads  rotated(l,i)            writes factor+schur
///   MERGE(l,t)           reads  schur(l,2t), schur(l,2t+1), coupling(l,t)
///                        writes diag(l-1,t)
///   ROOT_FACTOR          reads  diag(0,0)               writes root
///
/// Dependencies only flow through the merge step (Sec. 4.2): within a level
/// everything is embarrassingly parallel, which is what the asynchronous
/// executor exploits and the fork-join executor (phase = L - l) deliberately
/// serializes at level boundaries.

#include <memory>

#include "format/hss.hpp"
#include "runtime/dag_dataflow.hpp"
#include "runtime/task_graph.hpp"
#include "ulv/hss_ulv.hpp"

namespace hatrix::ulv {

/// Mutable state shared by the task closures.
struct HSSULVTaskState {
  const fmt::HSSMatrix* a = nullptr;
  std::vector<std::vector<Matrix>> diags;             // [level][node]
  std::vector<std::vector<DiagProductResult>> rotated;
  std::vector<std::vector<NodeFactor>> factors;
  std::vector<std::vector<Matrix>> schur;
  Matrix root_l;
};

/// The emitted DAG plus the data-handle layout (used by the distribution
/// policies to assign block owners) and the shared state (used to recover
/// the factorization after execution).
struct HSSULVDag {
  std::shared_ptr<HSSULVTaskState> state;
  std::vector<std::vector<rt::DataId>> diag_data;      // [level][node]
  std::vector<std::vector<rt::DataId>> basis_data;     // [level][node]
  std::vector<std::vector<rt::DataId>> rotated_data;   // [level][node]
  std::vector<std::vector<rt::DataId>> schur_data;     // [level][node]
  std::vector<std::vector<rt::DataId>> coupling_data;  // [level][pair]
  rt::DataId root_data = -1;
};

/// Emit the HSS-ULV factorization DAG into `graph`.
/// `with_work == true` attaches real computation closures (run the graph,
/// then call `extract_factorization`); `false` emits a costing-only DAG for
/// the discrete-event simulator (kinds/dims populated, no closures).
///
/// Handles carry real byte sizes and input/output marks (leaf diagonals,
/// bases and couplings are graph inputs — they come from the built matrix;
/// the root factor is the output), so rt::analyze_dag runs clean. With
/// `release` != ReleaseMode::None (with_work only) a release hook retires
/// the working diag / rotated / Schur slots at their statically-proven last
/// use: Free drops the storage (the seed kept every slot alive to
/// extraction), Poison NaN-fills it so a read past the last use corrupts
/// the result detectably. The extracted factors and root are never touched.
HSSULVDag emit_hss_ulv_dag(const fmt::HSSMatrix& a, rt::TaskGraph& graph,
                           bool with_work,
                           rt::ReleaseMode release = rt::ReleaseMode::None);

/// After an executor ran the with-work DAG, package the computed pieces into
/// the same HSSULV object the sequential path produces.
HSSULV extract_factorization(const HSSULVDag& dag);

}  // namespace hatrix::ulv
