// Regenerate the paper's DAG figures from the real task graphs:
//
//  * Fig. 6 — the POTRF/TRSM/SYRK/GEMM DAG of a 3x3 tile Cholesky,
//  * Fig. 8 — the DIAG_PRODUCT/PARTIAL_FACTOR/MERGE DAG of a 2-level
//    HSS-ULV factorization.
//
// Emits Graphviz DOT (render with `dot -Tpng`). The point: these are not
// hand-drawn illustrations — the same emitters that execute and simulate
// also produce the figures, so the figures are guaranteed to match the
// implementation.
//
//   ./fig6_fig8_dags [--out-dir .]
#include <cstdio>
#include <fstream>

#include "common/cli.hpp"
#include "blrchol/blr_cholesky_tasks.hpp"
#include "format/hss_builder.hpp"
#include "runtime/trace.hpp"
#include "ulv/hss_ulv_tasks.hpp"

using namespace hatrix;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string dir = cli.get_string("out-dir", ".");
  cli.reject_unknown();

  // Fig. 6: dense tile Cholesky on a 3x3 tiling.
  {
    rt::TaskGraph g;
    (void)blrchol::emit_dense_cholesky_dag({}, 3 * 32, 32, g, /*with_work=*/false);
    const std::string path = dir + "/fig6_tile_cholesky.dot";
    std::ofstream(path) << rt::to_dot(g);
    std::printf("Fig. 6 DAG: %lld tasks, %lld edges, critical path %lld -> %s\n",
                static_cast<long long>(g.num_tasks()),
                static_cast<long long>(g.num_edges()),
                static_cast<long long>(g.critical_path_length()), path.c_str());
  }

  // Fig. 8: HSS-ULV for a 2-level HSS matrix (4 leaves).
  {
    auto skel = fmt::make_hss_skeleton(1024, 256, 64);
    rt::TaskGraph g;
    (void)ulv::emit_hss_ulv_dag(skel, g, /*with_work=*/false);
    const std::string path = dir + "/fig8_hss_ulv.dot";
    std::ofstream(path) << rt::to_dot(g);
    std::printf("Fig. 8 DAG: %lld tasks, %lld edges, critical path %lld -> %s\n",
                static_cast<long long>(g.num_tasks()),
                static_cast<long long>(g.num_edges()),
                static_cast<long long>(g.critical_path_length()), path.c_str());
  }

  std::printf("Render with: dot -Tpng <file>.dot -o <file>.png\n");
  return 0;
}
