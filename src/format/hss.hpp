#pragma once
/// \file hss.hpp
/// \brief Hierarchically Semi-Separable (HSS) matrix (symmetric, weak
/// admissibility).
///
/// Structure follows the paper's notation (Sec. 2, Fig. 2): a complete
/// binary tree of index intervals; level 0 is the root, level `max_level()`
/// holds the leaves. Per leaf: a dense diagonal block and a shared row basis
/// U. Per internal node: a transfer basis W that nests the children's bases
/// (Eq. 6). Per sibling pair at every level: one skeleton coupling block
/// S (we store the lower block S_{2t+1,2t}; symmetry gives the upper).
///
/// The matrix represented is:
///   A(I_i, I_i)   = diag_i                          (leaf)
///   A(I_j, I_i)   = Ũ_j · S_{j,i} · Ũ_iᵀ            (sibling pairs, j = i+1)
/// with Ũ the nested basis: Ũ_leaf = U, Ũ_p = blockdiag(Ũ_c0, Ũ_c1) · W_p.

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace hatrix::fmt {

using la::index_t;
using la::Matrix;

/// Storage precision of the off-diagonal low-rank data (bases U/W, skeleton
/// couplings S). Dense diagonal blocks always stay FP64 — they carry the
/// conditioning. MixedFP32 rounds each low-rank entry through FP32 once at
/// the end of construction (compression error dominates the ~1e-7 rounding
/// whenever tol/guard_tol >= 1e-6), halving the resident low-rank footprint;
/// solves promote blocks on the fly and recover FP64 accuracy with iterative
/// refinement (HSSULV::solve_refined).
enum class PrecisionMode { FP64, MixedFP32 };

/// Human-readable name ("fp64" / "mixed-fp32") for reports and cache keys.
[[nodiscard]] const char* precision_name(PrecisionMode p);

/// Construction parameters shared by the HSS and BLR2 builders.
struct HSSOptions {
  index_t leaf_size = 256;  ///< maximum leaf block size (paper Table 2)
  index_t max_rank = 100;   ///< rank cap for every basis (paper "Max Rank")
  double tol = 0.0;         ///< relative truncation tolerance (0: rank-only)
  /// Number of sampled far-field columns per node used to find the basis;
  /// 0 means exact construction (compress against the full off-diagonal
  /// block row — O(N^2 k / leaf) work, only sensible for modest N). With the
  /// accuracy guard enabled this is the *initial* sample, grown per node
  /// until the guard's residual probe passes.
  index_t sample_cols = 0;
  std::uint64_t seed = 42;  ///< RNG seed for column sampling
  /// Residual tolerance of the sampled-construction accuracy guard; 0
  /// disables the guard (the pre-guard behavior: a fixed sample is trusted
  /// blindly). When > 0 and sample_cols > 0, every node's interpolation
  /// basis is validated on fresh probe columns and the column sample grows
  /// geometrically until the probe passes. The residual is measured
  /// *relative to the operator's diagonal scale* (max |A(i,i)|, which for
  /// an SPD kernel matrix bounds every entry): it approximates the
  /// compression error relative to ||A||, so positive definiteness is
  /// protected by choosing guard_tol at or below lambda_min/lambda_max —
  /// e.g. the nugget for a unit-variance covariance. A sample that reaches
  /// the full off-diagonal complement is exact and always accepted.
  double guard_tol = 0.0;
  /// Cap on the grown per-node column sample (0: uncapped — the sample may
  /// grow to the full complement). With a cap, a node that exhausts it
  /// without passing the guard throws BasisUnderResolvedError instead of
  /// silently producing an under-resolved basis.
  index_t max_sample_cols = 0;
  /// Geometric growth factor applied to the column sample each time the
  /// guard's probe fails (must be > 1).
  double sample_growth = 2.0;
  /// Probe columns drawn per guard check. Half are taken adjacent to the
  /// node's index interval (tree order preserves spatial locality, so these
  /// catch missed near-range interactions), half uniformly at random.
  index_t guard_probe_cols = 32;
  /// Let the guard raise a node's rank cap past max_rank when the probe
  /// residual is pinned at the rank-truncation floor rather than limited by
  /// sample coverage. Without the escape, a node whose required rank exceeds
  /// max_rank keeps growing its column sample — all the way to the full
  /// off-diagonal complement, silently degrading that node to exact O(N^2)
  /// sampling — and still comes back with a basis that cannot meet
  /// guard_tol. Each escalation doubles the node's rank cap (bounded by the
  /// node's block row count), emits a one-line stderr diagnostic, and is
  /// counted in HSSBuildReport::rank_escapes. Only active when the guard is
  /// on (guard_tol > 0).
  bool rank_escape = true;
  /// Storage precision of the built matrix's low-rank data. Construction
  /// itself always runs in FP64 (so every executor produces bit-identical
  /// factors); with MixedFP32 the finished matrix is demoted once at the end
  /// of the build.
  PrecisionMode precision = PrecisionMode::FP64;
};

/// Symmetric HSS matrix: complete binary tree of intervals with nested
/// shared bases and per-pair skeleton couplings.
class HSSMatrix {
 public:
  /// One tree node's stored data.
  struct Node {
    index_t begin = 0;  ///< global index interval [begin, end)
    index_t end = 0;    ///< one past the last global index
    index_t rank = 0;   ///< basis column count k
    /// Leaf: U (block_size x k). Internal: W ((k_c0 + k_c1) x k).
    /// Orthonormal columns. Empty at the root.
    Matrix basis;
    /// Dense diagonal block (leaf level only).
    Matrix diag;

    /// Number of rows owned by this node.
    [[nodiscard]] index_t block_size() const { return end - begin; }
  };

  HSSMatrix() = default;
  /// Allocate the tree layout for an n x n matrix with the given depth.
  HSSMatrix(index_t n, int max_level);

  /// Matrix dimension N.
  [[nodiscard]] index_t size() const { return n_; }
  /// Leaf level of the tree (level 0 is the root).
  [[nodiscard]] int max_level() const { return max_level_; }
  /// Nodes at `level` (complete binary tree).
  [[nodiscard]] index_t num_nodes(int level) const { return index_t{1} << level; }
  /// Sibling pairs at `level`.
  [[nodiscard]] index_t num_pairs(int level) const { return num_nodes(level) / 2; }

  /// Node i at `level`.
  [[nodiscard]] Node& node(int level, index_t i);
  /// Node i at `level` (read-only).
  [[nodiscard]] const Node& node(int level, index_t i) const;

  /// Sibling coupling S_{2t+1, 2t} at `level` (k_{2t+1} x k_{2t}).
  [[nodiscard]] Matrix& coupling(int level, index_t pair);
  /// Sibling coupling S_{2t+1, 2t} at `level` (read-only).
  [[nodiscard]] const Matrix& coupling(int level, index_t pair) const;

  /// y = A x using the compressed representation, O(N·k) flops.
  void matvec(const std::vector<double>& x, std::vector<double>& y) const;

  /// Materialize the represented dense matrix (tests / small problems).
  [[nodiscard]] Matrix dense() const;

  /// Explicit nested basis Ũ of a node (block_size x rank), formed
  /// recursively; used by dense() and by tests checking the nesting
  /// property.
  [[nodiscard]] Matrix full_basis(int level, index_t i) const;

  /// Largest basis rank anywhere in the tree.
  [[nodiscard]] index_t max_rank_used() const;

  /// Total compressed storage in bytes (diagonals + bases + couplings).
  [[nodiscard]] std::int64_t memory_bytes() const;

  /// Bytes held by the low-rank data alone (bases + couplings, excluding
  /// the dense diagonal blocks) — the part MixedFP32 halves.
  [[nodiscard]] std::int64_t lowrank_bytes() const;

  /// Demote every basis and coupling to FP32 backing storage (diagonals
  /// stay FP64). Idempotent; called by the builders when
  /// HSSOptions::precision == MixedFP32. Readers promote through
  /// la::F64Block, so matvec/dense/ULV keep working on a demoted matrix.
  void demote_lowrank();

  /// True when demote_lowrank() has run (any low-rank block is FP32).
  [[nodiscard]] bool mixed() const { return mixed_; }

 private:
  index_t n_ = 0;
  int max_level_ = 0;
  bool mixed_ = false;
  std::vector<std::vector<Node>> nodes_;         // [level][i]
  std::vector<std::vector<Matrix>> couplings_;   // [level][pair], level >= 1
};

}  // namespace hatrix::fmt
