#include "ulv/hss_solve_tasks.hpp"

#include "common/error.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"

namespace hatrix::ulv {

std::vector<double> HSSSolveTaskState::x_col(la::index_t j) const {
  HATRIX_CHECK(j >= 0 && j < x.cols(), "x_col: column out of range");
  std::vector<double> out(static_cast<std::size_t>(x.rows()));
  for (index_t i = 0; i < x.rows(); ++i) out[static_cast<std::size_t>(i)] = x(i, j);
  return out;
}

HSSSolveDag emit_hss_solve_dag(const HSSULV& factor, la::ConstMatrixView b,
                               rt::TaskGraph& graph) {
  const fmt::HSSMatrix& a = factor.matrix();
  const index_t n = a.size();
  HATRIX_CHECK(b.rows == n, "solve dag: rhs row count mismatch");
  const index_t nrhs = b.cols;
  const int L = a.max_level();

  HSSSolveDag dag;
  dag.state = std::make_shared<HSSSolveTaskState>();
  auto& st = *dag.state;
  st.a = &a;
  st.factor = &factor;
  st.rhs.resize(static_cast<std::size_t>(L) + 1);
  st.fwd.resize(static_cast<std::size_t>(L) + 1);
  st.sol.resize(static_cast<std::size_t>(L) + 1);
  st.x = Matrix(n, nrhs);
  for (int l = 0; l <= L; ++l) {
    st.rhs[static_cast<std::size_t>(l)].resize(static_cast<std::size_t>(a.num_nodes(l)));
    st.fwd[static_cast<std::size_t>(l)].resize(static_cast<std::size_t>(a.num_nodes(l)));
    st.sol[static_cast<std::size_t>(l)].resize(static_cast<std::size_t>(a.num_nodes(l)));
  }

  // Data handles per node: the local RHS panel (written by gather), the
  // forward result, and the local solution panel.
  std::vector<std::vector<rt::DataId>> rhs_d(static_cast<std::size_t>(L) + 1);
  std::vector<std::vector<rt::DataId>> fwd_d(static_cast<std::size_t>(L) + 1);
  std::vector<std::vector<rt::DataId>> sol_d(static_cast<std::size_t>(L) + 1);
  for (int l = 0; l <= L; ++l) {
    for (index_t i = 0; i < a.num_nodes(l); ++i) {
      const std::string tag = "(" + std::to_string(l) + "," + std::to_string(i) + ")";
      // Panel row count: leaf panels span the node's rows, internal panels
      // hold the children's gathered skeleton rows.
      const index_t rows =
          l == L ? a.node(l, i).block_size()
                 : a.node(l + 1, 2 * i).rank + a.node(l + 1, 2 * i + 1).rank;
      const index_t bytes =
          8 * std::max<index_t>(rows, 1) * std::max<index_t>(nrhs, 1);
      rhs_d[static_cast<std::size_t>(l)].push_back(
          graph.register_data("rhs" + tag, bytes));
      fwd_d[static_cast<std::size_t>(l)].push_back(
          graph.register_data("fwd" + tag, bytes));
      sol_d[static_cast<std::size_t>(l)].push_back(
          graph.register_data("sol" + tag, bytes));
      if (l == L) {
        // Leaf RHS panels are seeded from `b` before the graph runs; leaf
        // solution panels are the rows of the global solution.
        graph.mark_input(rhs_d[static_cast<std::size_t>(l)].back());
        graph.mark_output(sol_d[static_cast<std::size_t>(l)].back());
      }
    }
  }

  auto stp = dag.state;

  if (L == 0) {
    st.x = Matrix::from_view(b);
    // The lone panel is preloaded with b and solved in place.
    graph.mark_input(sol_d[0][0]);
    graph.mark_output(sol_d[0][0]);
    graph.insert_task(
        "ROOT_SOLVE", "potrs", {n, nrhs},
        [stp] {
          if (stp->x.rows() > 0 && stp->x.cols() > 0)
            la::potrs(stp->factor->root_factor().view(), stp->x.view());
        },
        {{sol_d[0][0], rt::Access::ReadWrite}}, 0, 0);
    return dag;
  }

  // Seed leaf RHS panels.
  for (index_t i = 0; i < a.num_nodes(L); ++i) {
    const auto& nd = a.node(L, i);
    st.rhs[static_cast<std::size_t>(L)][static_cast<std::size_t>(i)] =
        Matrix::from_view(b.block(nd.begin, 0, nd.block_size(), nrhs));
  }

  // Forward sweep + gathers, leaves to root.
  for (int l = L; l >= 1; --l) {
    const int phase = L - l;
    for (index_t i = 0; i < a.num_nodes(l); ++i) {
      const std::string tag = "(" + std::to_string(l) + "," + std::to_string(i) + ")";
      const int li = l;
      const index_t ii = i;
      const auto& f = factor.factor(l, i);
      graph.insert_task(
          "FORWARD" + tag, "fwd_solve", {f.m, f.k},
          [stp, li, ii] {
            auto& lvl_rhs = stp->rhs[static_cast<std::size_t>(li)];
            stp->fwd[static_cast<std::size_t>(li)][static_cast<std::size_t>(ii)] =
                forward_step_panel(stp->factor->factor(li, ii),
                                   la::F64Block(stp->a->node(li, ii).basis).view(),
                                   lvl_rhs[static_cast<std::size_t>(ii)].view());
          },
          {{rhs_d[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)],
            rt::Access::Read},
           {fwd_d[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)],
            rt::Access::Write}},
          l, phase);
    }
    for (index_t t = 0; t < a.num_pairs(l); ++t) {
      const std::string tag = "(" + std::to_string(l) + "," + std::to_string(t) + ")";
      const int li = l;
      const index_t tt = t;
      graph.insert_task(
          "GATHER" + tag, "gather",
          {a.node(l, 2 * t).rank, a.node(l, 2 * t + 1).rank},
          [stp, li, tt] {
            const Matrix& z0 =
                stp->fwd[static_cast<std::size_t>(li)][static_cast<std::size_t>(2 * tt)].z_s;
            const Matrix& z1 =
                stp->fwd[static_cast<std::size_t>(li)][static_cast<std::size_t>(2 * tt + 1)].z_s;
            Matrix up(z0.rows() + z1.rows(), stp->x.cols());
            if (z0.rows() > 0)
              la::copy(z0.view(), up.block(0, 0, z0.rows(), up.cols()));
            if (z1.rows() > 0)
              la::copy(z1.view(), up.block(z0.rows(), 0, z1.rows(), up.cols()));
            stp->rhs[static_cast<std::size_t>(li) - 1][static_cast<std::size_t>(tt)] =
                std::move(up);
          },
          {{fwd_d[static_cast<std::size_t>(l)][static_cast<std::size_t>(2 * t)],
            rt::Access::Read},
           {fwd_d[static_cast<std::size_t>(l)][static_cast<std::size_t>(2 * t + 1)],
            rt::Access::Read},
           {rhs_d[static_cast<std::size_t>(l) - 1][static_cast<std::size_t>(t)],
            rt::Access::Write}},
          l, phase);
    }
  }

  // Root dense solve on the whole panel.
  graph.insert_task(
      "ROOT_SOLVE", "potrs", {a.node(1, 0).rank + a.node(1, 1).rank, nrhs},
      [stp] {
        Matrix z = Matrix::from_view(stp->rhs[0][0].view());
        if (z.rows() > 0 && z.cols() > 0)
          la::potrs(stp->factor->root_factor().view(), z.view());
        stp->sol[0][0] = std::move(z);
      },
      {{rhs_d[0][0], rt::Access::Read}, {sol_d[0][0], rt::Access::Write}}, 0, L);

  // Backward sweep, root to leaves.
  for (int l = 1; l <= L; ++l) {
    const int phase = L + l;
    for (index_t i = 0; i < a.num_nodes(l); ++i) {
      const std::string tag = "(" + std::to_string(l) + "," + std::to_string(i) + ")";
      const int li = l;
      const index_t ii = i;
      const auto& f = factor.factor(l, i);
      graph.insert_task(
          "BACKWARD" + tag, "bwd_solve", {f.m, f.k},
          [stp, li, ii] {
            const Matrix& parent = stp->sol[static_cast<std::size_t>(li) - 1]
                                           [static_cast<std::size_t>(ii / 2)];
            const auto& fac = stp->factor->factor(li, ii);
            const index_t w = parent.cols();
            const la::ConstMatrixView xs =
                (ii % 2 == 0)
                    ? parent.block(0, 0, fac.k, w)
                    : parent.block(parent.rows() - fac.k, 0, fac.k, w);
            const auto& fw = stp->fwd[static_cast<std::size_t>(li)]
                                     [static_cast<std::size_t>(ii)];
            if (li == stp->a->max_level()) {
              // Leaves write their row block of the global solution.
              const auto& nd = stp->a->node(li, ii);
              backward_step_panel(fac,
                                  la::F64Block(stp->a->node(li, ii).basis).view(),
                                  fw, xs,
                                  stp->x.block(nd.begin, 0, nd.block_size(), w));
            } else {
              Matrix xl(fac.m, w);
              backward_step_panel(fac,
                                  la::F64Block(stp->a->node(li, ii).basis).view(),
                                  fw, xs, xl.view());
              stp->sol[static_cast<std::size_t>(li)][static_cast<std::size_t>(ii)] =
                  std::move(xl);
            }
          },
          {{sol_d[static_cast<std::size_t>(l) - 1][static_cast<std::size_t>(i / 2)],
            rt::Access::Read},
           {fwd_d[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)],
            rt::Access::Read},
           {sol_d[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)],
            rt::Access::Write}},
          -l, phase);
    }
  }
  return dag;
}

HSSSolveDag emit_hss_solve_dag(const HSSULV& factor, const std::vector<double>& b,
                               rt::TaskGraph& graph) {
  const la::ConstMatrixView bv{b.data(), static_cast<index_t>(b.size()), 1,
                               static_cast<index_t>(b.size())};
  return emit_hss_solve_dag(factor, bv, graph);
}

}  // namespace hatrix::ulv
