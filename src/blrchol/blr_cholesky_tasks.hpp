#pragma once
/// \file blr_cholesky_tasks.hpp
/// \brief Tile-Cholesky task graphs: dense (DPLASMA, Fig. 6) and BLR
/// (LORAPO).
///
/// The dense DAG is the paper's Fig. 6 POTRF/TRSM/SYRK/GEMM pattern. The
/// BLR DAG has the same shape but with low-rank-aware task bodies; its
/// trailing-submatrix updates are the O(N^2)-deep dependency structure that
/// limits LORAPO's weak scaling (Sec. 4.3, 5.3.1).

#include <memory>

#include "blrchol/blr_cholesky.hpp"
#include "runtime/task_graph.hpp"

namespace hatrix::blrchol {

/// Emitted BLR-Cholesky DAG: handles to the tile data (for distribution
/// policies) and the shared factor state.
struct BLRCholDag {
  std::shared_ptr<BLRMatrix> state;            ///< factor-in-progress
  std::vector<rt::DataId> diag_data;           ///< per diagonal tile
  std::vector<std::vector<rt::DataId>> tile_data;  ///< [i][j], i > j
};

/// Emit the LORAPO-style BLR tile Cholesky DAG. With work closures the graph
/// factorizes a copy of `a` in place (then read `dag.state`); without, the
/// DAG carries kinds/dims for the simulator.
BLRCholDag emit_blr_cholesky_dag(const BLRMatrix& a, rt::TaskGraph& graph,
                                 bool with_work, const BLRCholOptions& opts = {});

/// Emitted dense tile Cholesky DAG (DPLASMA baseline / Fig. 6).
struct DenseCholDag {
  std::shared_ptr<la::Matrix> state;
  std::vector<std::vector<rt::DataId>> tile_data;  ///< [i][j], i >= j
  la::index_t tiles = 0;
};

/// Emit the dense tile Cholesky DAG over an n x n matrix with `tile`-sized
/// blocks. With work closures it factorizes a copy of `a`; `a` may be empty
/// when `with_work == false` (costing-only DAG for the simulator).
DenseCholDag emit_dense_cholesky_dag(la::ConstMatrixView a, la::index_t n,
                                     la::index_t tile, rt::TaskGraph& graph,
                                     bool with_work);

}  // namespace hatrix::blrchol
