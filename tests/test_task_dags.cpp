// Tests for the task-decomposed factorizations: the HSS-ULV DAG (Fig. 8)
// and the tile-Cholesky DAGs (Fig. 6 / LORAPO), executed through both the
// asynchronous and fork-join executors, against the sequential references.
#include <gtest/gtest.h>

#include <cmath>

#include "blrchol/blr_cholesky_tasks.hpp"
#include "blrchol/tile_cholesky.hpp"
#include "format/accessor.hpp"
#include "format/hss_builder.hpp"
#include "geometry/cluster_tree.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "linalg/norms.hpp"
#include "runtime/fork_join_executor.hpp"
#include "runtime/thread_pool_executor.hpp"
#include "ulv/hss_ulv_tasks.hpp"

namespace hatrix {
namespace {

using la::index_t;
using la::Matrix;

struct Problem {
  geom::Domain domain;
  std::unique_ptr<geom::ClusterTree> tree;
  std::unique_ptr<kernels::Kernel> kernel;
  std::unique_ptr<kernels::KernelMatrix> km;

  Problem(index_t n, index_t leaf, const std::string& kname = "yukawa") {
    domain = geom::grid2d(n);
    tree = std::make_unique<geom::ClusterTree>(domain, leaf);
    kernel = kernels::make_kernel(kname);
    km = std::make_unique<kernels::KernelMatrix>(*kernel, tree->points());
  }
};

double vec_rel_err(const std::vector<double>& a, const std::vector<double>& b) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - b[i]) * (a[i] - b[i]);
    den += a[i] * a[i];
  }
  return std::sqrt(num / den);
}

class HssUlvDagExec : public ::testing::TestWithParam<int> {};

TEST_P(HssUlvDagExec, MatchesSequentialFactorization) {
  const int workers = GetParam();
  Problem p(1024, 128, "yukawa");
  fmt::KernelAccessor acc(*p.km);
  auto h = fmt::build_hss(acc, {.leaf_size = 128, .max_rank = 40, .tol = 0.0});

  rt::TaskGraph graph;
  auto dag = ulv::emit_hss_ulv_dag(h, graph, /*with_work=*/true);
  rt::ThreadPoolExecutor ex(workers);
  auto stats = ex.run(graph);
  EXPECT_EQ(rt::validate_trace(graph, stats), "");
  auto f_tasks = ulv::extract_factorization(dag);

  auto f_seq = ulv::HSSULV::factorize(h);
  Rng rng(101);
  std::vector<double> b = rng.normal_vector(1024);
  auto x1 = f_tasks.solve(b);
  auto x2 = f_seq.solve(b);
  EXPECT_LT(vec_rel_err(x2, x1), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Workers, HssUlvDagExec, ::testing::Values(1, 2, 4));

TEST(HssUlvDag, ForkJoinExecutorSameResult) {
  Problem p(512, 64, "matern");
  fmt::KernelAccessor acc(*p.km);
  auto h = fmt::build_hss(acc, {.leaf_size = 64, .max_rank = 25, .tol = 0.0});

  rt::TaskGraph graph;
  auto dag = ulv::emit_hss_ulv_dag(h, graph, true);
  rt::ForkJoinExecutor ex(2);
  auto stats = ex.run(graph);
  EXPECT_EQ(rt::validate_trace(graph, stats), "");
  auto f_tasks = ulv::extract_factorization(dag);

  auto f_seq = ulv::HSSULV::factorize(h);
  Rng rng(102);
  std::vector<double> b = rng.normal_vector(512);
  EXPECT_LT(vec_rel_err(f_seq.solve(b), f_tasks.solve(b)), 1e-13);
}

TEST(HssUlvDag, TaskCountIsLinearInNodes) {
  Problem p(2048, 128, "yukawa");
  fmt::KernelAccessor acc(*p.km);
  auto h = fmt::build_hss(
      acc, {.leaf_size = 128, .max_rank = 20, .tol = 0.0, .sample_cols = 200});
  rt::TaskGraph graph;
  (void)ulv::emit_hss_ulv_dag(h, graph, false);
  // 2 tasks per node at levels L..1 + 1 merge per pair + root.
  std::int64_t expect = 0;
  for (int l = h.max_level(); l >= 1; --l)
    expect += 2 * h.num_nodes(l) + h.num_pairs(l);
  expect += 1;
  EXPECT_EQ(graph.num_tasks(), expect);
}

TEST(HssUlvDag, CriticalPathGrowsWithLevelsNotNodes) {
  // The HSS-ULV critical path is O(levels): diag->factor->merge per level.
  Problem p1(1024, 128, "yukawa");
  Problem p2(4096, 128, "yukawa");
  fmt::KernelAccessor a1(*p1.km), a2(*p2.km);
  fmt::HSSOptions opts{.leaf_size = 128, .max_rank = 15, .tol = 0.0,
                       .sample_cols = 150};
  auto h1 = fmt::build_hss(a1, opts);
  auto h2 = fmt::build_hss(a2, opts);
  rt::TaskGraph g1, g2;
  (void)ulv::emit_hss_ulv_dag(h1, g1, false);
  (void)ulv::emit_hss_ulv_dag(h2, g2, false);
  // 4x the nodes, only +2 levels: critical path grows by exactly 3 per level.
  EXPECT_EQ(g2.critical_path_length() - g1.critical_path_length(),
            3 * (h2.max_level() - h1.max_level()));
}

class DenseCholDagExec : public ::testing::TestWithParam<int> {};

TEST_P(DenseCholDagExec, MatchesTileCholesky) {
  const int workers = GetParam();
  Rng rng(103);
  Matrix a = Matrix::random_spd(rng, 160);
  rt::TaskGraph graph;
  auto dag = blrchol::emit_dense_cholesky_dag(a.view(), 160, 48, graph, true);
  rt::ThreadPoolExecutor ex(workers);
  auto stats = ex.run(graph);
  EXPECT_EQ(rt::validate_trace(graph, stats), "");

  Matrix ref = Matrix::from_view(a.view());
  blrchol::tile_cholesky(ref.view(), 48);
  // The DAG path leaves the strict upper triangle untouched; compare lower.
  for (index_t j = 0; j < 160; ++j)
    for (index_t i = j; i < 160; ++i)
      EXPECT_NEAR((*dag.state)(i, j), ref(i, j), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Workers, DenseCholDagExec, ::testing::Values(1, 3));

TEST(DenseCholDag, TaskAndEdgeCounts) {
  rt::TaskGraph graph;
  (void)blrchol::emit_dense_cholesky_dag({}, 4 * 32, 32, graph, false);
  // p=4 tiles: POTRF p + TRSM p(p-1)/2 + SYRK p(p-1)/2 + GEMM p(p-1)(p-2)/6.
  EXPECT_EQ(graph.num_tasks(), 4 + 6 + 6 + 4);
  EXPECT_GT(graph.num_edges(), 0);
}

class BlrCholDagExec : public ::testing::TestWithParam<int> {};

TEST_P(BlrCholDagExec, MatchesSequentialBlrCholesky) {
  const int workers = GetParam();
  Problem p(1024, 256, "yukawa");
  fmt::KernelAccessor acc(*p.km);
  auto blr = fmt::build_blr(acc, {.tile_size = 256, .max_rank = 256, .tol = 1e-9});

  rt::TaskGraph graph;
  blrchol::BLRCholOptions opts{.max_rank = 256, .tol = 1e-12};
  auto dag = blrchol::emit_blr_cholesky_dag(blr, graph, true, opts);
  rt::ThreadPoolExecutor ex(workers);
  auto stats = ex.run(graph);
  EXPECT_EQ(rt::validate_trace(graph, stats), "");

  auto f_seq = blrchol::BLRCholesky::factorize(blr, opts);
  // Compare factors via a solve.
  Rng rng(104);
  std::vector<double> b = rng.normal_vector(1024);
  std::vector<double> ab;
  blr.matvec(b, ab);
  blrchol::BLRCholesky from_dag = blrchol::BLRCholesky::adopt(std::move(*dag.state));
  auto x1 = from_dag.solve(ab);
  auto x2 = f_seq.solve(ab);
  EXPECT_LT(vec_rel_err(x2, x1), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Workers, BlrCholDagExec, ::testing::Values(1, 4));

TEST(BlrCholDag, DeepTrailingUpdateDependencies) {
  // LORAPO's weakness: the GEMM update chain makes the critical path grow
  // with the tile count (contrast with HssUlvDag.CriticalPathGrows...).
  Problem p(2048, 128, "yukawa");
  fmt::KernelAccessor acc(*p.km);
  auto blr = fmt::build_blr(acc, {.tile_size = 128, .max_rank = 64, .tol = 1e-6});
  rt::TaskGraph graph;
  (void)blrchol::emit_blr_cholesky_dag(blr, graph, false);
  // p = 16 tiles: critical path >= 3 p - 2 (POTRF->TRSM->SYRK/GEMM per step).
  EXPECT_GE(graph.critical_path_length(), 3 * 16 - 2);
}

}  // namespace
}  // namespace hatrix
