// Geostatistics: kriging (Gaussian-process interpolation) with the Matérn
// covariance from Table 3 — the statistics application the paper's
// evaluation targets.
//
// Synthetic truth f(x, y) is sampled at N scattered sites with noise; the
// kriging predictor at M held-out targets needs  K^{-1} (solves against the
// N x N Matérn covariance), done here through the HSS-ULV factorization.
//
//   ./kriging_matern [--n 8192] [--targets 500] [--nugget 1e-4] [--samples 512]
//                    [--guard-tol 1e-4] [--workers 1]
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "format/accessor.hpp"
#include "format/hss_builder_tasks.hpp"
#include "geometry/cluster_tree.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "ulv/hss_ulv.hpp"

using namespace hatrix;

namespace {

double truth(const geom::Point& p) {
  return std::sin(6.0 * p[0]) * std::cos(4.0 * p[1]) + 0.5 * p[0] * p[1];
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const la::index_t n = cli.get_int("n", 8192);
  const la::index_t m = cli.get_int("targets", 500);
  const double nugget = cli.get_double("nugget", 1e-4);
  // The short correlation length (mu=0.03) means a fixed column sample can
  // miss near-range interactions and silently destroy positive definiteness
  // of the compressed covariance. The accuracy guard grows the sample per
  // node until its residual probe passes, so the initial 512 is just a
  // starting point, not a correctness knob. The guard tolerance must sit at
  // or below the smallest eigenvalue scale of the covariance — the nugget —
  // or compression error can push eigenvalues below zero.
  const la::index_t samples = cli.get_int("samples", 512);
  const double guard_tol = cli.get_double("guard-tol", std::min(1e-4, nugget));
  const int workers = static_cast<int>(cli.get_int("workers", 1));
  cli.reject_unknown();

  std::printf("Kriging with Matérn(sigma=1, mu=0.03, rho=0.5), %lld sites, %lld targets\n",
              static_cast<long long>(n), static_cast<long long>(m));

  Rng rng(11);
  geom::Domain sites = geom::random2d(n, rng);
  geom::ClusterTree tree(sites, 256);

  kernels::Matern cov(1.0, 0.03, 0.5);
  // The nugget models measurement noise and regularizes the covariance.
  kernels::KernelMatrix km(cov, tree.points(), nugget);
  fmt::KernelAccessor acc(km);

  // Observations y_i = f(x_i) + noise.
  std::vector<double> y(static_cast<std::size_t>(n));
  for (la::index_t i = 0; i < n; ++i)
    y[static_cast<std::size_t>(i)] =
        truth(tree.points()[static_cast<std::size_t>(i)]) +
        std::sqrt(nugget) * rng.normal();

  WallTimer timer;
  fmt::HSSBuildReport rep;
  fmt::HSSMatrix k = fmt::build_hss_parallel(
      acc,
      {.leaf_size = 256, .max_rank = 80, .sample_cols = samples,
       .guard_tol = guard_tol},
      workers, &rep);
  auto f = ulv::HSSULV::factorize(k);
  std::vector<double> alpha = f.solve(y);  // K^{-1} y, the kriging weights
  std::printf("covariance build + ULV factor + solve: %.3f s (max rank %lld)\n",
              timer.seconds(), static_cast<long long>(k.max_rank_used()));
  std::printf("accuracy guard: sample grew %lld -> %lld cols over %lld rounds "
              "(worst probe residual %.2e)\n",
              static_cast<long long>(samples),
              static_cast<long long>(rep.max_samples),
              static_cast<long long>(rep.total_growths), rep.worst_residual);

  // Predict at held-out targets: f̂(t) = k_*ᵀ alpha.
  geom::Domain targets = geom::random2d(m, rng);
  double se = 0.0, var = 0.0, mean = 0.0;
  for (la::index_t t = 0; t < m; ++t)
    mean += truth(targets.points[static_cast<std::size_t>(t)]);
  mean /= static_cast<double>(m);
  for (la::index_t t = 0; t < m; ++t) {
    const auto& pt = targets.points[static_cast<std::size_t>(t)];
    double pred = 0.0;
    for (la::index_t i = 0; i < n; ++i)
      pred += cov(pt, tree.points()[static_cast<std::size_t>(i)]) *
              alpha[static_cast<std::size_t>(i)];
    const double tv = truth(pt);
    se += (pred - tv) * (pred - tv);
    var += (tv - mean) * (tv - mean);
  }
  std::printf("prediction RMSE: %.4f (truth std %.4f) — R^2 = %.4f\n",
              std::sqrt(se / static_cast<double>(m)),
              std::sqrt(var / static_cast<double>(m)), 1.0 - se / var);
  return 0;
}
