/// \file blas.cpp
/// \brief Public kernel entry points: shape checks, flop accounting, backend
/// dispatch. The arithmetic lives in blas_detail.hpp (naive + blocked) and
/// blas_vendor.cpp (optional external BLAS).

#include "linalg/blas.hpp"

#include <cstdlib>

#include "common/flops.hpp"
#include "linalg/blas_detail.hpp"
#include "linalg/blas_vendor.hpp"

namespace hatrix::la {

namespace {

Backend initial_backend() {
  if (const char* env = std::getenv("HATRIX_LA_BACKEND")) {
    const Backend b = backend_from_name(env);
    if (b == Backend::Vendor && !vendor_available())
      throw Error("HATRIX_LA_BACKEND=vendor but built without HATRIX_WITH_BLAS");
    return b;
  }
  return Backend::Blocked;
}

std::atomic<Backend>& backend_state() {
  static std::atomic<Backend> state{initial_backend()};
  return state;
}

}  // namespace

Backend backend() noexcept { return backend_state().load(std::memory_order_relaxed); }

void set_backend(Backend b) {
  if (b == Backend::Vendor && !vendor_available())
    throw Error("vendor BLAS backend requested but built without HATRIX_WITH_BLAS");
  backend_state().store(b, std::memory_order_relaxed);
}

bool vendor_available() noexcept {
#if defined(HATRIX_WITH_BLAS)
  return true;
#else
  return false;
#endif
}

const char* backend_name(Backend b) noexcept {
  switch (b) {
    case Backend::Naive:
      return "naive";
    case Backend::Blocked:
      return "blocked";
    case Backend::Vendor:
      return "vendor";
  }
  return "unknown";
}

Backend backend_from_name(const std::string& name) {
  if (name == "naive") return Backend::Naive;
  if (name == "blocked") return Backend::Blocked;
  if (name == "vendor") return Backend::Vendor;
  throw Error("unknown linalg backend '" + name +
              "' (expected naive | blocked | vendor)");
}

namespace {

template <class T>
void check_gemm(ConstMatrixViewT<T> a, Trans ta, ConstMatrixViewT<T> b, Trans tb,
                MatrixViewT<T> c) {
  HATRIX_CHECK(detail::op_rows(b, tb) == detail::op_cols(a, ta),
               "gemm inner dimension mismatch");
  HATRIX_CHECK(c.rows == detail::op_rows(a, ta) && c.cols == detail::op_cols(b, tb),
               "gemm output shape mismatch");
}

template <class T>
void check_syrk(ConstMatrixViewT<T> a, Trans trans, MatrixViewT<T> c) {
  HATRIX_CHECK(c.rows == detail::op_rows(a, trans) && c.cols == c.rows,
               "syrk output shape mismatch");
}

template <class T>
void check_tr(Side side, ConstMatrixViewT<T> t, MatrixViewT<T> b, const char* who) {
  HATRIX_CHECK(t.rows == t.cols, std::string(who) + " triangular matrix must be square");
  if (side == Side::Left) {
    HATRIX_CHECK(b.rows == t.rows, std::string(who) + " dimension mismatch");
  } else {
    HATRIX_CHECK(b.cols == t.rows, std::string(who) + " dimension mismatch");
  }
}

template <class T>
void gemm_dispatch(T alpha, ConstMatrixViewT<T> a, Trans ta, ConstMatrixViewT<T> b,
                   Trans tb, T beta, MatrixViewT<T> c) {
  switch (backend()) {
    case Backend::Naive:
      detail::gemm_naive<T>(alpha, a, ta, b, tb, beta, c);
      return;
    case Backend::Vendor:
#if defined(HATRIX_WITH_BLAS)
      vendor::gemm(alpha, a, ta, b, tb, beta, c);
      return;
#else
      [[fallthrough]];
#endif
    case Backend::Blocked:
      detail::gemm_blocked<T>(alpha, a, ta, b, tb, beta, c);
      return;
  }
}

template <class T>
void syrk_dispatch(T alpha, ConstMatrixViewT<T> a, Trans trans, T beta,
                   MatrixViewT<T> c) {
  switch (backend()) {
    case Backend::Naive:
      detail::syrk_naive<T>(alpha, a, trans, beta, c);
      return;
    case Backend::Vendor:
#if defined(HATRIX_WITH_BLAS)
      vendor::syrk(alpha, a, trans, beta, c);
      return;
#else
      [[fallthrough]];
#endif
    case Backend::Blocked:
      detail::syrk_blocked<T>(alpha, a, trans, beta, c);
      return;
  }
}

template <class T>
void trsm_dispatch(Side side, UpLo uplo, Trans trans, Diag diag, T alpha,
                   ConstMatrixViewT<T> t, MatrixViewT<T> b) {
  switch (backend()) {
    case Backend::Naive:
      detail::trsm_naive<T>(side, uplo, trans, diag, alpha, t, b);
      return;
    case Backend::Vendor:
#if defined(HATRIX_WITH_BLAS)
      vendor::trsm(side, uplo, trans, diag, alpha, t, b);
      return;
#else
      [[fallthrough]];
#endif
    case Backend::Blocked:
      detail::trsm_blocked<T>(side, uplo, trans, diag, alpha, t, b);
      return;
  }
}

// Flop accounting happens here, at the public entry points, and only when
// the call performs arithmetic: no-op calls (alpha == 0 or an empty
// dimension) previously inflated the counters the benches and the distsim
// cost model consume.
template <class T>
void gemm_entry(T alpha, ConstMatrixViewT<T> a, Trans ta, ConstMatrixViewT<T> b,
                Trans tb, T beta, MatrixViewT<T> c) {
  check_gemm(a, ta, b, tb, c);
  const index_t m = c.rows, n = c.cols, k = detail::op_cols(a, ta);
  if (alpha != T(0) && m != 0 && n != 0 && k != 0)
    flops::add(static_cast<std::uint64_t>(2) * m * n * k);
  gemm_dispatch<T>(alpha, a, ta, b, tb, beta, c);
}

template <class T>
void syrk_entry(T alpha, ConstMatrixViewT<T> a, Trans trans, T beta,
                MatrixViewT<T> c) {
  check_syrk(a, trans, c);
  const index_t n = c.rows, k = detail::op_cols(a, trans);
  if (alpha != T(0) && n != 0 && k != 0)
    flops::add(static_cast<std::uint64_t>(n) * n * k);  // symmetric half counted
  syrk_dispatch<T>(alpha, a, trans, beta, c);
}

template <class T>
void trsm_entry(Side side, UpLo uplo, Trans trans, Diag diag, T alpha,
                ConstMatrixViewT<T> t, MatrixViewT<T> b) {
  check_tr(side, t, b, "trsm");
  const index_t n = t.rows;
  const index_t rhs = side == Side::Left ? b.cols : b.rows;
  if (alpha != T(0) && n != 0 && rhs != 0)
    flops::add(static_cast<std::uint64_t>(n) * n * rhs);
  trsm_dispatch<T>(side, uplo, trans, diag, alpha, t, b);
}

template <class T>
void trmm_entry(Side side, UpLo uplo, Trans trans, Diag diag, T alpha,
                ConstMatrixViewT<T> t, MatrixViewT<T> b) {
  check_tr(side, t, b, "trmm");
  const index_t n = t.rows;
  const index_t rhs = side == Side::Left ? b.cols : b.rows;
  if (alpha != T(0) && n != 0 && rhs != 0)
    flops::add(static_cast<std::uint64_t>(n) * n * rhs);
  // trmm is off the hot path: every backend uses the reference loops.
  detail::trmm_naive<T>(side, uplo, trans, diag, alpha, t, b);
}

}  // namespace

void gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb,
          double beta, MatrixView c) {
  gemm_entry<double>(alpha, a, ta, b, tb, beta, c);
}
void gemm(float alpha, ConstMatrixViewF a, Trans ta, ConstMatrixViewF b, Trans tb,
          float beta, MatrixViewF c) {
  gemm_entry<float>(alpha, a, ta, b, tb, beta, c);
}

Matrix matmul(ConstMatrixView a, ConstMatrixView b, Trans ta, Trans tb) {
  Matrix c(detail::op_rows(a, ta), detail::op_cols(b, tb));
  gemm(1.0, a, ta, b, tb, 0.0, c.view());
  return c;
}

void syrk(double alpha, ConstMatrixView a, Trans trans, double beta, MatrixView c) {
  syrk_entry<double>(alpha, a, trans, beta, c);
}
void syrk(float alpha, ConstMatrixViewF a, Trans trans, float beta, MatrixViewF c) {
  syrk_entry<float>(alpha, a, trans, beta, c);
}

void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b) {
  trsm_entry<double>(side, uplo, trans, diag, alpha, t, b);
}
void trsm(Side side, UpLo uplo, Trans trans, Diag diag, float alpha,
          ConstMatrixViewF t, MatrixViewF b) {
  trsm_entry<float>(side, uplo, trans, diag, alpha, t, b);
}

void trmm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b) {
  trmm_entry<double>(side, uplo, trans, diag, alpha, t, b);
}
void trmm(Side side, UpLo uplo, Trans trans, Diag diag, float alpha,
          ConstMatrixViewF t, MatrixViewF b) {
  trmm_entry<float>(side, uplo, trans, diag, alpha, t, b);
}

void gemv(double alpha, ConstMatrixView a, Trans ta, const double* x, double beta,
          double* y) {
  // One-column gemm so vector and panel calls stay bit-identical per column
  // (the solve layer's determinism contract).
  const index_t m = detail::op_rows(a, ta), n = detail::op_cols(a, ta);
  const ConstMatrixView xv{x, n, 1, n > 0 ? n : 1};
  const MatrixView yv{y, m, 1, m > 0 ? m : 1};
  gemm(alpha, a, ta, xv, Trans::No, beta, yv);
}

void add_scaled(MatrixView y, double alpha, ConstMatrixView x) {
  HATRIX_CHECK(y.rows == x.rows && y.cols == x.cols, "add_scaled shape mismatch");
  flops::add(static_cast<std::uint64_t>(2) * y.rows * y.cols);
  for (index_t j = 0; j < y.cols; ++j)
    for (index_t i = 0; i < y.rows; ++i) y(i, j) += alpha * x(i, j);
}

void scale(MatrixView a, double alpha) { detail::scale_impl<double>(a, alpha); }
void scale(MatrixViewF a, float alpha) { detail::scale_impl<float>(a, alpha); }

double dot(ConstMatrixView a, ConstMatrixView b) {
  HATRIX_CHECK(a.rows == b.rows && a.cols == b.cols, "dot shape mismatch");
  double s = 0.0;
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i) s += a(i, j) * b(i, j);
  return s;
}

// --- Internal no-count dispatchers (composite kernels count at the top). ---

namespace detail {

void gemm_nc(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b,
             Trans tb, double beta, MatrixView c) {
  gemm_dispatch<double>(alpha, a, ta, b, tb, beta, c);
}
void gemm_nc(float alpha, ConstMatrixViewF a, Trans ta, ConstMatrixViewF b,
             Trans tb, float beta, MatrixViewF c) {
  gemm_dispatch<float>(alpha, a, ta, b, tb, beta, c);
}
void syrk_nc(double alpha, ConstMatrixView a, Trans trans, double beta,
             MatrixView c) {
  syrk_dispatch<double>(alpha, a, trans, beta, c);
}
void syrk_nc(float alpha, ConstMatrixViewF a, Trans trans, float beta,
             MatrixViewF c) {
  syrk_dispatch<float>(alpha, a, trans, beta, c);
}
void trsm_nc(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
             ConstMatrixView t, MatrixView b) {
  trsm_dispatch<double>(side, uplo, trans, diag, alpha, t, b);
}
void trsm_nc(Side side, UpLo uplo, Trans trans, Diag diag, float alpha,
             ConstMatrixViewF t, MatrixViewF b) {
  trsm_dispatch<float>(side, uplo, trans, diag, alpha, t, b);
}

}  // namespace detail

// --- The retained naive reference (conformance oracle). ---

namespace ref {

void gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb,
          double beta, MatrixView c) {
  check_gemm(a, ta, b, tb, c);
  detail::gemm_naive<double>(alpha, a, ta, b, tb, beta, c);
}
void gemm(float alpha, ConstMatrixViewF a, Trans ta, ConstMatrixViewF b, Trans tb,
          float beta, MatrixViewF c) {
  check_gemm(a, ta, b, tb, c);
  detail::gemm_naive<float>(alpha, a, ta, b, tb, beta, c);
}
void syrk(double alpha, ConstMatrixView a, Trans trans, double beta, MatrixView c) {
  check_syrk(a, trans, c);
  detail::syrk_naive<double>(alpha, a, trans, beta, c);
}
void syrk(float alpha, ConstMatrixViewF a, Trans trans, float beta, MatrixViewF c) {
  check_syrk(a, trans, c);
  detail::syrk_naive<float>(alpha, a, trans, beta, c);
}
void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b) {
  check_tr(side, t, b, "trsm");
  detail::trsm_naive<double>(side, uplo, trans, diag, alpha, t, b);
}
void trsm(Side side, UpLo uplo, Trans trans, Diag diag, float alpha,
          ConstMatrixViewF t, MatrixViewF b) {
  check_tr(side, t, b, "trsm");
  detail::trsm_naive<float>(side, uplo, trans, diag, alpha, t, b);
}
void trmm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b) {
  check_tr(side, t, b, "trmm");
  detail::trmm_naive<double>(side, uplo, trans, diag, alpha, t, b);
}
void trmm(Side side, UpLo uplo, Trans trans, Diag diag, float alpha,
          ConstMatrixViewF t, MatrixViewF b) {
  check_tr(side, t, b, "trmm");
  detail::trmm_naive<float>(side, uplo, trans, diag, alpha, t, b);
}
void potrf(MatrixView a) {
  HATRIX_CHECK(a.rows == a.cols, "potrf requires a square matrix");
  detail::potrf_unblocked<double>(a);
  for (index_t j = 1; j < a.cols; ++j)
    for (index_t i = 0; i < j; ++i) a(i, j) = 0.0;
}
void potrf(MatrixViewF a) {
  HATRIX_CHECK(a.rows == a.cols, "potrf requires a square matrix");
  detail::potrf_unblocked<float>(a);
  for (index_t j = 1; j < a.cols; ++j)
    for (index_t i = 0; i < j; ++i) a(i, j) = 0.0F;
}

}  // namespace ref

}  // namespace hatrix::la
