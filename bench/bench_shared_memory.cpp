// Shared-memory execution of the real HSS-ULV task DAG (Fig. 8) on this
// machine: sequential vs asynchronous runtime vs fork-join runtime, with the
// runtime's own instrumentation (compute vs overhead per worker).
//
// This is the non-simulated counterpart of the cluster experiments: the same
// emit_hss_ulv_dag tasks execute real kernels through the thread-pool
// executor, and the result is verified against the sequential factorization.
// Optional outputs: --trace-json FILE dumps a Chrome/Perfetto trace of the
// async execution; --dot FILE dumps the DAG as Graphviz (small N advised);
// --verify-dag statically verifies the DAG (runtime/dag_verify.hpp) before
// each executor runs it.
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "format/accessor.hpp"
#include "format/hss_builder.hpp"
#include "geometry/cluster_tree.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "runtime/fork_join_executor.hpp"
#include "runtime/thread_pool_executor.hpp"
#include "ulv/hss_ulv_tasks.hpp"

using namespace hatrix;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const la::index_t n = cli.get_int("n", 8192);
  const la::index_t leaf = cli.get_int("leaf", 256);
  const la::index_t rank = cli.get_int("rank", 60);
  const int workers = static_cast<int>(cli.get_int("workers", 4));
  // Bare `--trace-json` / `--dot` (no value) fall back to default filenames.
  auto out_path = [&](const char* flag, const char* fallback) {
    std::string v = cli.get_string(flag, "");
    return v == "true" ? std::string(fallback) : v;
  };
  const std::string trace_json = out_path("trace-json", "trace.json");
  const std::string dot_file = out_path("dot", "dag.dot");
  const bool verify = cli.has("verify-dag");
  cli.reject_unknown();

  std::printf("Shared-memory HSS-ULV: N=%lld leaf=%lld rank=%lld, %d workers\n",
              static_cast<long long>(n), static_cast<long long>(leaf),
              static_cast<long long>(rank), workers);

  geom::Domain domain = geom::grid2d(n);
  geom::ClusterTree tree(domain, leaf);
  auto kernel = kernels::make_kernel("yukawa");
  kernels::KernelMatrix km(*kernel, tree.points());
  fmt::KernelAccessor acc(km);

  WallTimer timer;
  auto h = fmt::build_hss(acc, {.leaf_size = leaf, .max_rank = rank,
                                .sample_cols = 512});
  std::printf("construction: %.3f s (max rank used %lld)\n", timer.seconds(),
              static_cast<long long>(h.max_rank_used()));

  TextTable table({"executor", "wall (s)", "compute/worker (s)",
                   "overhead/worker (s)", "tasks"});

  timer.reset();
  auto f_seq = ulv::HSSULV::factorize(h);
  table.add_row({"sequential", fmt_fixed(timer.seconds(), 4), "-", "-", "-"});

  Rng rng(7);
  std::vector<double> b = rng.normal_vector(n);
  auto x_ref = f_seq.solve(b);

  auto run_with = [&](const char* name, auto&& executor) {
    if (verify) executor.set_verify_dag(true);
    rt::TaskGraph graph;
    auto dag = ulv::emit_hss_ulv_dag(h, graph, /*with_work=*/true);
    WallTimer t;
    auto stats = executor.run(graph);
    auto f = ulv::extract_factorization(dag);
    const double wall = t.seconds();
    if (std::string(name) == "async-dtd") {
      if (!trace_json.empty()) {
        std::ofstream out(trace_json);
        out << rt::to_chrome_trace(graph, stats);
        std::printf("  wrote Chrome trace to %s\n", trace_json.c_str());
      }
      if (!dot_file.empty()) {
        std::ofstream out(dot_file);
        out << rt::to_dot(graph);
        std::printf("  wrote DAG to %s\n", dot_file.c_str());
      }
    }
    // Verify the parallel result against the sequential factorization.
    auto x = f.solve(b);
    double err = 0.0, den = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      err += (x[i] - x_ref[i]) * (x[i] - x_ref[i]);
      den += x_ref[i] * x_ref[i];
    }
    std::printf("  %s vs sequential solve: rel diff %.2e\n", name,
                std::sqrt(err / den));
    table.add_row({name, fmt_fixed(wall, 4),
                   fmt_sci(stats.compute_total / stats.workers),
                   fmt_sci(stats.overhead_total / stats.workers),
                   std::to_string(graph.num_tasks())});
  };

  {
    rt::ThreadPoolExecutor ex(workers);
    run_with("async-dtd", ex);
  }
  {
    rt::ForkJoinExecutor ex(workers);
    run_with("fork-join", ex);
  }

  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
