#pragma once
/// \file bessel.hpp
/// \brief Modified Bessel function of the second kind K_nu(x).
///
/// Needed by the Matérn covariance kernel (Table 3 of the paper). The
/// paper's evaluation uses nu = 0.5 (the exponential covariance), which has
/// a closed form; the general-nu path (series + asymptotic expansion) is
/// provided so the library covers the whole Matérn family.

namespace hatrix::kernels {

/// K_nu(x) for x > 0 and nu >= 0. Accuracy ~1e-10 for nu in [0, 5] over the
/// ranges a covariance kernel evaluates (x up to ~700, underflows to 0
/// beyond). Throws hatrix::Error for x <= 0.
double bessel_k(double nu, double x);

/// Modified Bessel function of the first kind I_nu(x), for the series route
/// of K_nu (exposed for tests).
double bessel_i(double nu, double x);

}  // namespace hatrix::kernels
