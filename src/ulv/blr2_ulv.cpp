#include "ulv/blr2_ulv.hpp"

#include "common/error.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"

namespace hatrix::ulv {

BLR2ULV::BLR2ULV(const fmt::BLR2Matrix& a, std::vector<NodeFactor> factors,
                 Matrix merged_l)
    : a_(&a), factors_(std::move(factors)), merged_l_(std::move(merged_l)) {
  const index_t p = a.num_blocks();
  skel_offset_.assign(static_cast<std::size_t>(p) + 1, 0);
  for (index_t i = 0; i < p; ++i)
    skel_offset_[static_cast<std::size_t>(i) + 1] =
        skel_offset_[static_cast<std::size_t>(i)] + a.node(i).rank;
}

BLR2ULV BLR2ULV::factorize(const fmt::BLR2Matrix& a) {
  BLR2ULV out;
  out.a_ = &a;
  const index_t p = a.num_blocks();
  out.factors_.resize(static_cast<std::size_t>(p));
  out.skel_offset_.assign(static_cast<std::size_t>(p) + 1, 0);

  // Per-block diagonal product + partial factorization (lines 1-2 of Alg. 1).
  // F64Block promotes FP32-demoted bases/couplings for the FP64 kernels.
  std::vector<Matrix> schur(static_cast<std::size_t>(p));
  for (index_t i = 0; i < p; ++i) {
    const auto& nd = a.node(i);
    auto res = partial_factor(nd.diag.view(), la::F64Block(nd.basis).view());
    out.factors_[static_cast<std::size_t>(i)] = std::move(res.factor);
    schur[static_cast<std::size_t>(i)] = std::move(res.ss_schur);
    out.skel_offset_[static_cast<std::size_t>(i) + 1] =
        out.skel_offset_[static_cast<std::size_t>(i)] + nd.rank;
  }

  // Merge (permute) all skeleton blocks into one dense matrix (line 3,
  // Fig. 4) and Cholesky-factorize it.
  const index_t total = out.skel_offset_[static_cast<std::size_t>(p)];
  Matrix merged(total, total);
  for (index_t i = 0; i < p; ++i) {
    const index_t oi = out.skel_offset_[static_cast<std::size_t>(i)];
    const index_t ki = a.node(i).rank;
    if (ki > 0)
      la::copy(schur[static_cast<std::size_t>(i)].view(), merged.block(oi, oi, ki, ki));
    for (index_t j = 0; j < i; ++j) {
      const index_t oj = out.skel_offset_[static_cast<std::size_t>(j)];
      const index_t kj = a.node(j).rank;
      if (ki == 0 || kj == 0) continue;
      la::F64Block sb(a.coupling(i, j));
      la::copy(sb.view(), merged.block(oi, oj, ki, kj));
      Matrix st = la::transpose(sb.view());
      la::copy(st.view(), merged.block(oj, oi, kj, ki));
    }
  }
  la::potrf(merged.view());
  out.merged_l_ = std::move(merged);
  return out;
}

std::vector<double> BLR2ULV::solve(const std::vector<double>& b) const {
  const fmt::BLR2Matrix& a = *a_;
  const index_t n = a.size(), p = a.num_blocks();
  HATRIX_CHECK(static_cast<index_t>(b.size()) == n, "solve: rhs length mismatch");

  // Forward: per-block rotate + eliminate; gather skeleton RHS.
  std::vector<NodeForward> fwd(static_cast<std::size_t>(p));
  const index_t total = skel_offset_[static_cast<std::size_t>(p)];
  std::vector<double> z(static_cast<std::size_t>(total), 0.0);
  for (index_t i = 0; i < p; ++i) {
    const auto& nd = a.node(i);
    fwd[static_cast<std::size_t>(i)] = forward_step(
        factors_[static_cast<std::size_t>(i)], la::F64Block(nd.basis).view(),
        b.data() + nd.begin);
    const auto& zs = fwd[static_cast<std::size_t>(i)].z_s;
    std::copy(zs.begin(), zs.end(),
              z.begin() + skel_offset_[static_cast<std::size_t>(i)]);
  }

  // Coupled skeleton solve.
  if (total > 0) {
    la::MatrixView zv{z.data(), total, 1, total};
    la::potrs(merged_l_.view(), zv);
  }

  // Backward: reconstruct block-local solutions.
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  for (index_t i = 0; i < p; ++i) {
    const auto& nd = a.node(i);
    std::vector<double> xs(
        z.begin() + skel_offset_[static_cast<std::size_t>(i)],
        z.begin() + skel_offset_[static_cast<std::size_t>(i) + 1]);
    std::vector<double> xl = backward_step(
        factors_[static_cast<std::size_t>(i)], la::F64Block(nd.basis).view(),
        fwd[static_cast<std::size_t>(i)], xs);
    for (index_t r = 0; r < nd.block_size(); ++r)
      x[static_cast<std::size_t>(nd.begin + r)] = xl[static_cast<std::size_t>(r)];
  }
  return x;
}

Matrix BLR2ULV::solve(const Matrix& b) const {
  const fmt::BLR2Matrix& a = *a_;
  const index_t n = a.size(), p = a.num_blocks();
  HATRIX_CHECK(b.rows() == n, "solve: rhs row count mismatch");
  const index_t nrhs = b.cols();
  if (nrhs == 0) return Matrix(n, 0);

  // Forward: per-block panel rotate + eliminate; gather skeleton panels.
  std::vector<NodeForwardPanel> fwd(static_cast<std::size_t>(p));
  const index_t total = skel_offset_[static_cast<std::size_t>(p)];
  Matrix z(total, nrhs);
  for (index_t i = 0; i < p; ++i) {
    const auto& nd = a.node(i);
    fwd[static_cast<std::size_t>(i)] = forward_step_panel(
        factors_[static_cast<std::size_t>(i)], la::F64Block(nd.basis).view(),
        b.block(nd.begin, 0, nd.block_size(), nrhs));
    const Matrix& zs = fwd[static_cast<std::size_t>(i)].z_s;
    if (zs.rows() > 0)
      la::copy(zs.view(),
               z.block(skel_offset_[static_cast<std::size_t>(i)], 0, zs.rows(), nrhs));
  }

  // Coupled skeleton solve on the whole panel.
  if (total > 0) la::potrs(merged_l_.view(), z.view());

  // Backward: reconstruct block-local solution panels in place.
  Matrix x(n, nrhs);
  for (index_t i = 0; i < p; ++i) {
    const auto& nd = a.node(i);
    const index_t oi = skel_offset_[static_cast<std::size_t>(i)];
    const index_t ki = a.node(i).rank;
    backward_step_panel(factors_[static_cast<std::size_t>(i)],
                        la::F64Block(nd.basis).view(),
                        fwd[static_cast<std::size_t>(i)], z.block(oi, 0, ki, nrhs),
                        x.block(nd.begin, 0, nd.block_size(), nrhs));
  }
  return x;
}

std::int64_t BLR2ULV::memory_bytes() const {
  std::int64_t total = merged_l_.bytes();
  for (const auto& f : factors_)
    total += f.q_comp.bytes() + f.l_rr.bytes() + f.l_sr.bytes();
  return total;
}

}  // namespace hatrix::ulv
