#include "ulv/hss_ulv.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/norms.hpp"

namespace hatrix::ulv {

namespace {

/// Assemble a parent's dense diagonal from its children's skeleton Schur
/// complements and the sibling coupling (the Merge step, line 4 of Alg. 2):
///   D_p = [ SS_0  Sᵀ ; S  SS_1 ]  with S = coupling between (2t+1, 2t).
/// The coupling arrives as an FP64 view (callers promote demoted storage
/// through la::F64Block).
Matrix merge_diag(const Matrix& ss0, const Matrix& ss1,
                  la::ConstMatrixView s_lower) {
  const index_t k0 = ss0.rows(), k1 = ss1.rows();
  HATRIX_CHECK(s_lower.rows == k1 && s_lower.cols == k0,
               "merge: coupling shape mismatch");
  Matrix d(k0 + k1, k0 + k1);
  if (k0 > 0) la::copy(ss0.view(), d.block(0, 0, k0, k0));
  if (k1 > 0) la::copy(ss1.view(), d.block(k0, k0, k1, k1));
  if (k0 > 0 && k1 > 0) {
    la::copy(s_lower, d.block(k0, 0, k1, k0));
    Matrix st = la::transpose(s_lower);
    la::copy(st.view(), d.block(0, k0, k0, k1));
  }
  return d;
}

}  // namespace

HSSULV HSSULV::factorize(const fmt::HSSMatrix& a) {
  HSSULV out;
  out.a_ = &a;
  const int L = a.max_level();
  out.factors_.resize(static_cast<std::size_t>(L) + 1);

  if (L == 0) {
    // Degenerate single-block HSS: plain dense Cholesky.
    out.root_l_ = Matrix::from_view(a.node(0, 0).diag.view());
    la::potrf(out.root_l_.view());
    return out;
  }

  // Working diagonals for the current level; leaf diagonals to start.
  std::vector<Matrix> diags(static_cast<std::size_t>(a.num_nodes(L)));
  for (index_t i = 0; i < a.num_nodes(L); ++i)
    diags[static_cast<std::size_t>(i)] =
        Matrix::from_view(a.node(L, i).diag.view());

  for (int l = L; l >= 1; --l) {
    auto& level_factors = out.factors_[static_cast<std::size_t>(l)];
    level_factors.resize(static_cast<std::size_t>(a.num_nodes(l)));
    std::vector<Matrix> schur(static_cast<std::size_t>(a.num_nodes(l)));

    // Diagonal product + partial factorization: independent per node.
    // F64Block promotes FP32-demoted bases/couplings for the kernels.
    for (index_t i = 0; i < a.num_nodes(l); ++i) {
      auto res = partial_factor(diags[static_cast<std::size_t>(i)].view(),
                                la::F64Block(a.node(l, i).basis).view());
      level_factors[static_cast<std::size_t>(i)] = std::move(res.factor);
      schur[static_cast<std::size_t>(i)] = std::move(res.ss_schur);
    }

    // Merge into the parent level (or into the root block).
    std::vector<Matrix> parent_diags(static_cast<std::size_t>(a.num_nodes(l - 1)));
    for (index_t t = 0; t < a.num_pairs(l); ++t) {
      parent_diags[static_cast<std::size_t>(t)] =
          merge_diag(schur[static_cast<std::size_t>(2 * t)],
                     schur[static_cast<std::size_t>(2 * t + 1)],
                     la::F64Block(a.coupling(l, t)).view());
    }
    diags = std::move(parent_diags);
  }

  out.root_l_ = std::move(diags[0]);
  la::potrf(out.root_l_.view());
  return out;
}

std::vector<double> HSSULV::solve(const std::vector<double>& b) const {
  const fmt::HSSMatrix& a = *a_;
  const index_t n = a.size();
  HATRIX_CHECK(static_cast<index_t>(b.size()) == n, "solve: rhs length mismatch");
  const int L = a.max_level();

  if (L == 0) {
    std::vector<double> x = b;
    la::MatrixView xv{x.data(), n, 1, n};
    la::potrs(root_l_.view(), xv);
    return x;
  }

  // Forward sweep, leaves to root: rotate, eliminate redundant part, pass
  // the skeleton RHS up (the inner summation of Eq. 17).
  std::vector<std::vector<NodeForward>> fwd(static_cast<std::size_t>(L) + 1);
  std::vector<std::vector<double>> carried(static_cast<std::size_t>(a.num_nodes(L)));
  for (index_t i = 0; i < a.num_nodes(L); ++i) {
    const auto& nd = a.node(L, i);
    carried[static_cast<std::size_t>(i)].assign(
        b.begin() + nd.begin, b.begin() + nd.end);
  }
  for (int l = L; l >= 1; --l) {
    auto& level_fwd = fwd[static_cast<std::size_t>(l)];
    level_fwd.resize(static_cast<std::size_t>(a.num_nodes(l)));
    for (index_t i = 0; i < a.num_nodes(l); ++i) {
      level_fwd[static_cast<std::size_t>(i)] =
          forward_step(factors_[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)],
                       la::F64Block(a.node(l, i).basis).view(),
                       carried[static_cast<std::size_t>(i)].data());
    }
    std::vector<std::vector<double>> parent(static_cast<std::size_t>(a.num_nodes(l - 1)));
    for (index_t t = 0; t < a.num_pairs(l); ++t) {
      auto& up = parent[static_cast<std::size_t>(t)];
      const auto& z0 = level_fwd[static_cast<std::size_t>(2 * t)].z_s;
      const auto& z1 = level_fwd[static_cast<std::size_t>(2 * t + 1)].z_s;
      up.reserve(z0.size() + z1.size());
      up.insert(up.end(), z0.begin(), z0.end());
      up.insert(up.end(), z1.begin(), z1.end());
    }
    carried = std::move(parent);
  }

  // Root: dense Cholesky solve.
  std::vector<double> x_root = carried[0];
  if (!x_root.empty()) {
    la::MatrixView xv{x_root.data(), static_cast<index_t>(x_root.size()), 1,
                      static_cast<index_t>(x_root.size())};
    la::potrs(root_l_.view(), xv);
  }

  // Backward sweep, root to leaves: split the parent's solution into the
  // children's skeleton solutions and reconstruct node-local solutions.
  std::vector<std::vector<double>> down(static_cast<std::size_t>(1), std::move(x_root));
  for (int l = 1; l <= L; ++l) {
    std::vector<std::vector<double>> next(static_cast<std::size_t>(a.num_nodes(l)));
    for (index_t t = 0; t < a.num_pairs(l); ++t) {
      const auto& parent_x = down[static_cast<std::size_t>(t)];
      const auto& f0 = factors_[static_cast<std::size_t>(l)][static_cast<std::size_t>(2 * t)];
      const auto& f1 = factors_[static_cast<std::size_t>(l)][static_cast<std::size_t>(2 * t + 1)];
      std::vector<double> xs0(parent_x.begin(), parent_x.begin() + f0.k);
      std::vector<double> xs1(parent_x.begin() + f0.k, parent_x.end());
      next[static_cast<std::size_t>(2 * t)] = backward_step(
          f0, la::F64Block(a.node(l, 2 * t).basis).view(),
          fwd[static_cast<std::size_t>(l)][static_cast<std::size_t>(2 * t)], xs0);
      next[static_cast<std::size_t>(2 * t + 1)] = backward_step(
          f1, la::F64Block(a.node(l, 2 * t + 1).basis).view(),
          fwd[static_cast<std::size_t>(l)][static_cast<std::size_t>(2 * t + 1)], xs1);
    }
    down = std::move(next);
  }

  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  for (index_t i = 0; i < a.num_nodes(L); ++i) {
    const auto& nd = a.node(L, i);
    const auto& xl = down[static_cast<std::size_t>(i)];
    for (index_t r = 0; r < nd.block_size(); ++r)
      x[static_cast<std::size_t>(nd.begin + r)] = xl[static_cast<std::size_t>(r)];
  }
  return x;
}

Matrix HSSULV::solve(const Matrix& b) const {
  const fmt::HSSMatrix& a = *a_;
  const index_t n = a.size();
  HATRIX_CHECK(b.rows() == n, "solve: rhs row count mismatch");
  const index_t nrhs = b.cols();
  const int L = a.max_level();
  if (nrhs == 0) return Matrix(n, 0);

  if (L == 0) {
    Matrix x = Matrix::from_view(b.view());
    la::potrs(root_l_.view(), x.view());
    return x;
  }

  // Forward sweep on whole panels, leaves to root: one gemm/trsm pass per
  // node handles every RHS column (the blocked form of Eq. 17's inner sum).
  std::vector<std::vector<NodeForwardPanel>> fwd(static_cast<std::size_t>(L) + 1);
  std::vector<Matrix> carried(static_cast<std::size_t>(a.num_nodes(L)));
  for (index_t i = 0; i < a.num_nodes(L); ++i) {
    const auto& nd = a.node(L, i);
    carried[static_cast<std::size_t>(i)] =
        Matrix::from_view(b.block(nd.begin, 0, nd.block_size(), nrhs));
  }
  for (int l = L; l >= 1; --l) {
    auto& level_fwd = fwd[static_cast<std::size_t>(l)];
    level_fwd.resize(static_cast<std::size_t>(a.num_nodes(l)));
    for (index_t i = 0; i < a.num_nodes(l); ++i) {
      level_fwd[static_cast<std::size_t>(i)] = forward_step_panel(
          factors_[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)],
          la::F64Block(a.node(l, i).basis).view(),
          carried[static_cast<std::size_t>(i)].view());
    }
    std::vector<Matrix> parent(static_cast<std::size_t>(a.num_nodes(l - 1)));
    for (index_t t = 0; t < a.num_pairs(l); ++t) {
      const Matrix& z0 = level_fwd[static_cast<std::size_t>(2 * t)].z_s;
      const Matrix& z1 = level_fwd[static_cast<std::size_t>(2 * t + 1)].z_s;
      Matrix up(z0.rows() + z1.rows(), nrhs);
      if (z0.rows() > 0) la::copy(z0.view(), up.block(0, 0, z0.rows(), nrhs));
      if (z1.rows() > 0)
        la::copy(z1.view(), up.block(z0.rows(), 0, z1.rows(), nrhs));
      parent[static_cast<std::size_t>(t)] = std::move(up);
    }
    carried = std::move(parent);
  }

  // Root: dense Cholesky solve of the whole skeleton panel.
  Matrix x_root = std::move(carried[0]);
  if (x_root.rows() > 0) la::potrs(root_l_.view(), x_root.view());

  // Backward sweep, root to leaves: split each parent panel into the
  // children's skeleton panels and reconstruct node-local solution panels.
  Matrix x(n, nrhs);
  std::vector<Matrix> down(1);
  down[0] = std::move(x_root);
  for (int l = 1; l <= L; ++l) {
    std::vector<Matrix> next(static_cast<std::size_t>(a.num_nodes(l)));
    for (index_t t = 0; t < a.num_pairs(l); ++t) {
      const Matrix& parent_x = down[static_cast<std::size_t>(t)];
      for (int c = 0; c < 2; ++c) {
        const index_t i = 2 * t + c;
        const auto& f =
            factors_[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)];
        const la::ConstMatrixView xs =
            c == 0 ? parent_x.block(0, 0, f.k, nrhs)
                   : parent_x.block(parent_x.rows() - f.k, 0, f.k, nrhs);
        const auto& fw =
            fwd[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)];
        if (l == L) {
          // Leaves write their row block of the global solution directly.
          const auto& nd = a.node(l, i);
          backward_step_panel(f, la::F64Block(a.node(l, i).basis).view(), fw, xs,
                              x.block(nd.begin, 0, nd.block_size(), nrhs));
        } else {
          Matrix xl(f.m, nrhs);
          backward_step_panel(f, la::F64Block(a.node(l, i).basis).view(), fw, xs,
                              xl.view());
          next[static_cast<std::size_t>(i)] = std::move(xl);
        }
      }
    }
    down = std::move(next);
  }
  return x;
}

Matrix HSSULV::solve_columnwise(const Matrix& b) const {
  HATRIX_CHECK(b.rows() == a_->size(), "solve: rhs row count mismatch");
  Matrix x(b.rows(), b.cols());
  std::vector<double> col(static_cast<std::size_t>(b.rows()));
  for (index_t j = 0; j < b.cols(); ++j) {
    for (index_t i = 0; i < b.rows(); ++i) col[static_cast<std::size_t>(i)] = b(i, j);
    std::vector<double> xj = solve(col);
    for (index_t i = 0; i < b.rows(); ++i) x(i, j) = xj[static_cast<std::size_t>(i)];
  }
  return x;
}

std::vector<double> HSSULV::solve_refined(
    const std::vector<double>& b, int iterations,
    std::vector<double>* residual_history) const {
  if (residual_history != nullptr) residual_history->clear();
  double bnorm = 0.0;
  if (residual_history != nullptr) {
    for (double v : b) bnorm += v * v;
    bnorm = std::sqrt(bnorm);
    if (bnorm == 0.0) bnorm = 1.0;
  }
  std::vector<double> x = solve(b);
  std::vector<double> ax;
  auto residual = [&](std::vector<double>& r) {
    a_->matvec(x, ax);
    r.resize(b.size());
    double rn = 0.0;
    for (std::size_t i = 0; i < b.size(); ++i) {
      r[i] = b[i] - ax[i];
      rn += r[i] * r[i];
    }
    if (residual_history != nullptr)
      residual_history->push_back(std::sqrt(rn) / bnorm);
  };
  std::vector<double> r;
  for (int it = 0; it < iterations; ++it) {
    residual(r);
    std::vector<double> dx = solve(r);
    for (std::size_t i = 0; i < b.size(); ++i) x[i] += dx[i];
  }
  // One extra matvec to log the converged residual (skipped when nobody is
  // listening — the hot path pays nothing).
  if (residual_history != nullptr) residual(r);
  return x;
}

std::int64_t HSSULV::memory_bytes() const {
  std::int64_t total = root_l_.bytes();
  for (const auto& level : factors_)
    for (const auto& f : level)
      total += f.q_comp.bytes() + f.l_rr.bytes() + f.l_sr.bytes();
  return total;
}

double ulv_solve_error(const fmt::HSSMatrix& a, const HSSULV& f,
                       const std::vector<double>& b) {
  std::vector<double> ab;
  a.matvec(b, ab);
  std::vector<double> x = f.solve(ab);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double d = b[i] - x[i];
    num += d * d;
    den += b[i] * b[i];
  }
  return std::sqrt(num / den);
}

}  // namespace hatrix::ulv
