#pragma once
/// \file network_model.hpp
/// \brief α-β interconnect model with per-NIC serialization.
///
/// Stand-in for the Fugaku TofuD interconnect in the discrete-event
/// simulation: a point-to-point message of `bytes` costs
/// latency + bytes/bandwidth, and each process can drive only one send and
/// one receive at a time (NIC serialization), which the simulator enforces.

#include <cstdint>

namespace hatrix::distsim {

struct NetworkModel {
  double latency = 1.0e-6;     ///< α: per-message latency (s)
  double bandwidth = 6.8e9;    ///< β: bytes per second (TofuD-like injection)
  double barrier_alpha = 5e-6; ///< per-log2(P) step of a barrier/collective

  /// Point-to-point transfer time for a message of `bytes`.
  [[nodiscard]] double transfer_time(std::int64_t bytes) const {
    return latency + static_cast<double>(bytes) / bandwidth;
  }

  /// Barrier (tree) latency across `procs` processes.
  [[nodiscard]] double barrier_time(int procs) const {
    int steps = 0;
    for (int p = 1; p < procs; p *= 2) ++steps;
    return barrier_alpha * steps;
  }
};

}  // namespace hatrix::distsim
