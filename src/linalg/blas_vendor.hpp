#pragma once
/// \file blas_vendor.hpp
/// \brief Internal declarations for the optional vendor-BLAS backend.
///
/// Implemented in blas_vendor.cpp, whose body is compiled only when the
/// build sets HATRIX_WITH_BLAS (CMake option of the same name, linking an
/// external Fortran-ABI BLAS such as OpenBLAS). Without it these functions
/// are never referenced: the dispatcher in blas.cpp guards every call behind
/// the same preprocessor flag, and set_backend(Backend::Vendor) throws.
///
/// The wrappers adapt semantics, not just names: syrk mirrors the vendor's
/// lower triangle into the upper one to honor la::syrk's full-symmetric
/// contract. No bit-identity promise is made for this backend.

#include "linalg/blas.hpp"

#if defined(HATRIX_WITH_BLAS)

namespace hatrix::la::vendor {

void gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb,
          double beta, MatrixView c);
void gemm(float alpha, ConstMatrixViewF a, Trans ta, ConstMatrixViewF b, Trans tb,
          float beta, MatrixViewF c);
void syrk(double alpha, ConstMatrixView a, Trans trans, double beta, MatrixView c);
void syrk(float alpha, ConstMatrixViewF a, Trans trans, float beta, MatrixViewF c);
void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b);
void trsm(Side side, UpLo uplo, Trans trans, Diag diag, float alpha,
          ConstMatrixViewF t, MatrixViewF b);

}  // namespace hatrix::la::vendor

#endif  // HATRIX_WITH_BLAS
