// Quickstart: compress a kernel matrix into HSS form, factorize it with the
// O(N) ULV algorithm, and solve a linear system — the library's core loop
// in ~40 lines.
//
//   ./quickstart [--n 16384] [--leaf 256] [--rank 100] [--kernel yukawa]
#include <cstdio>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "format/accessor.hpp"
#include "format/hss_builder.hpp"
#include "geometry/cluster_tree.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "ulv/hss_ulv.hpp"

using namespace hatrix;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const la::index_t n = cli.get_int("n", 16384);
  const la::index_t leaf = cli.get_int("leaf", 256);
  const la::index_t rank = cli.get_int("rank", 100);
  const std::string kname = cli.get_string("kernel", "yukawa");
  cli.reject_unknown();

  // 1. Geometry: a uniform 2D grid, reordered by a cluster tree so that
  //    every tree node owns a contiguous index range.
  geom::Domain domain = geom::grid2d(n);
  geom::ClusterTree tree(domain, leaf);

  // 2. The (never materialized) kernel matrix A_ij = K(x_i, x_j).
  auto kernel = kernels::make_kernel(kname);
  kernels::KernelMatrix km(*kernel, tree.points());
  fmt::KernelAccessor acc(km);

  // 3. Compress into HSS form (nested bases, weak admissibility).
  WallTimer timer;
  fmt::HSSMatrix a = fmt::build_hss(
      acc, {.leaf_size = leaf, .max_rank = rank, .sample_cols = 512});
  std::printf("HSS construction:  %.3f s  (N=%lld, levels=%d, max rank %lld)\n",
              timer.seconds(), static_cast<long long>(n), a.max_level(),
              static_cast<long long>(a.max_rank_used()));
  std::printf("compressed size:   %.1f MB (dense would be %.1f MB)\n",
              a.memory_bytes() / 1e6, 8.0 * n * n / 1e6);

  // 4. Factorize with the HSS-ULV (Alg. 2) — O(N).
  timer.reset();
  auto f = ulv::HSSULV::factorize(a);
  std::printf("ULV factorization: %.3f s\n", timer.seconds());

  // 5. Solve A x = b and report the Eq. (19) solve error.
  Rng rng(1);
  std::vector<double> b = rng.normal_vector(n);
  timer.reset();
  std::vector<double> ab;
  a.matvec(b, ab);
  std::vector<double> x = f.solve(ab);
  std::printf("solve:             %.3f s\n", timer.seconds());

  double err = 0.0, den = 0.0;
  for (la::index_t i = 0; i < n; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    err += (b[iu] - x[iu]) * (b[iu] - x[iu]);
    den += b[iu] * b[iu];
  }
  std::printf("solve error (Eq.19): %.3e\n", std::sqrt(err / den));
  return 0;
}
