#include "lowrank/rsvd.hpp"

#include <algorithm>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "lowrank/compress.hpp"

namespace hatrix::lr {

LowRank rsvd(la::ConstMatrixView a, index_t rank, Rng& rng, index_t oversample,
             int power_iters) {
  const index_t n = a.cols;
  const index_t l = std::min(n, rank + oversample);

  // Sketch the range: Y = A Omega, orthonormalize.
  Matrix omega = Matrix::random_normal(rng, n, l);
  Matrix y = la::matmul(a, omega.view());
  auto qy = la::qr(y.view());

  // Power iterations sharpen the subspace for flat spectra.
  for (int it = 0; it < power_iters; ++it) {
    Matrix z = la::matmul(a, qy.q.view(), la::Trans::Yes, la::Trans::No);
    auto qz = la::qr(z.view());
    Matrix w = la::matmul(a, qz.q.view());
    qy = la::qr(w.view());
  }

  // B = Qᵀ A (l x n); SVD of the small B gives the final factors.
  Matrix b = la::matmul(qy.q.view(), a, la::Trans::Yes, la::Trans::No);
  LowRank small = truncated_svd(b.view(), rank, 0.0);
  return LowRank(la::matmul(qy.q.view(), small.u.view()), std::move(small.v));
}

}  // namespace hatrix::lr
