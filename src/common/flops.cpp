#include "common/flops.hpp"

#include <atomic>
#include <mutex>
#include <vector>

namespace hatrix::flops {
namespace {

// Per-thread counters avoid cache-line ping-pong on the hot path; `total()`
// walks the registry under a lock (cold path, benches only).
struct Counter {
  std::atomic<std::uint64_t> value{0};
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::vector<Counter*>& registry() {
  static std::vector<Counter*> r;
  return r;
}

Counter& local_counter() {
  thread_local Counter* c = [] {
    auto* counter = new Counter();  // leaked deliberately: threads may outlive us
    std::lock_guard<std::mutex> lock(registry_mutex());
    registry().push_back(counter);
    return counter;
  }();
  return *c;
}

}  // namespace

void add(std::uint64_t n) noexcept {
  local_counter().value.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t total() noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::uint64_t sum = 0;
  for (const Counter* c : registry()) sum += c->value.load(std::memory_order_relaxed);
  return sum;
}

void reset() noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (Counter* c : registry()) c->value.store(0, std::memory_order_relaxed);
}

}  // namespace hatrix::flops
