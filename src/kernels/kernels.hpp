#pragma once
/// \file kernels.hpp
/// \brief Green's-function kernels from Table 3 of the paper.
///
/// Each kernel maps a pair of points to a matrix entry. The constants
/// default to the paper's values. All kernels are symmetric; the geometries
/// and constants used in the evaluation make the resulting matrices
/// symmetric positive definite (tests assert this).

#include <memory>
#include <string>

#include "geometry/domain.hpp"

namespace hatrix::kernels {

/// Interface for a radial Green's-function kernel entry generator.
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Matrix entry for the point pair (x, y).
  [[nodiscard]] virtual double operator()(const geom::Point& x,
                                          const geom::Point& y) const = 0;

  /// Human-readable kernel name for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Laplace 2D: f(x,y) = -ln(eps + dist(x,y)), eps = 1e-9 (paper Table 3).
class Laplace2D final : public Kernel {
 public:
  explicit Laplace2D(double eps = 1e-9) : eps_(eps) {}
  double operator()(const geom::Point& x, const geom::Point& y) const override;
  [[nodiscard]] std::string name() const override { return "laplace2d"; }

 private:
  double eps_;
};

/// Yukawa (screened Coulomb): f(x,y) = e^{-alpha (theta + r)} / (theta + r),
/// alpha = 1, theta = 1e-9 (paper Table 3).
class Yukawa final : public Kernel {
 public:
  explicit Yukawa(double alpha = 1.0, double theta = 1e-9)
      : alpha_(alpha), theta_(theta) {}
  double operator()(const geom::Point& x, const geom::Point& y) const override;
  [[nodiscard]] std::string name() const override { return "yukawa"; }

 private:
  double alpha_;
  double theta_;
};

/// Matérn covariance:
/// f(r) = sigma^2 / (2^{rho-1} Gamma(rho)) * (r/mu)^rho * K_rho(r/mu) for
/// r > 0, and sigma^2 at r = 0. Paper constants: sigma = 1, mu = 0.03,
/// rho = 0.5 (the exponential covariance).
class Matern final : public Kernel {
 public:
  explicit Matern(double sigma = 1.0, double mu = 0.03, double rho = 0.5)
      : sigma_(sigma), mu_(mu), rho_(rho) {}
  double operator()(const geom::Point& x, const geom::Point& y) const override;
  [[nodiscard]] std::string name() const override { return "matern"; }

 private:
  double sigma_;
  double mu_;
  double rho_;
};

/// Gaussian (squared-exponential) covariance: f(r) = exp(-r^2 / (2 l^2)).
/// Not in the paper's evaluation; provided for the geostatistics example.
class Gaussian final : public Kernel {
 public:
  explicit Gaussian(double length_scale = 0.1) : l_(length_scale) {}
  double operator()(const geom::Point& x, const geom::Point& y) const override;
  [[nodiscard]] std::string name() const override { return "gaussian"; }

 private:
  double l_;
};

/// Laplace 3D Green's function: f(r) = 1 / (eps + r). The 3D counterpart of
/// the paper's Laplace 2D kernel (used by the H²/3D line of work the paper
/// builds on); enables the grid3d geometry in examples and tests.
class Laplace3D final : public Kernel {
 public:
  explicit Laplace3D(double eps = 1e-9) : eps_(eps) {}
  double operator()(const geom::Point& x, const geom::Point& y) const override;
  [[nodiscard]] std::string name() const override { return "laplace3d"; }

 private:
  double eps_;
};

/// Inverse multiquadric: f(r) = 1 / sqrt(c^2 + r^2) — a standard RBF that is
/// positive definite in every dimension (no regularization needed).
class InverseMultiquadric final : public Kernel {
 public:
  explicit InverseMultiquadric(double c = 0.1) : c_(c) {}
  double operator()(const geom::Point& x, const geom::Point& y) const override;
  [[nodiscard]] std::string name() const override { return "imq"; }

 private:
  double c_;
};

/// Factory by name ("laplace2d", "yukawa", "matern", "gaussian", "laplace3d",
/// "imq") with the paper's default constants; used by bench CLI flags.
std::unique_ptr<Kernel> make_kernel(const std::string& name);

}  // namespace hatrix::kernels
