#pragma once
/// \file blr2_strong.hpp
/// \brief BLR² with strong admissibility (dense off-diagonal near-field).
///
/// Sec. 2 of the paper distinguishes weakly admissible formats (dense blocks
/// only on the diagonal — the HSS/BLR² used by its evaluation) from strongly
/// admissible ones (dense blocks wherever clusters touch — the H/H² family,
/// and the BLR² format of Ashcraft-Buttari-Mary that the paper cites).
/// This module provides the strongly admissible BLR²: shared bases are
/// built from *far-field* rows only, near-field blocks stay dense. It is
/// the stepping stone toward the Ma et al. H²-ULV extension the paper
/// discusses; factorizing it requires the fill-in precomputation of that
/// paper and is out of scope here (the format supports construction,
/// storage accounting and matvec, with the admissibility pattern taken from
/// the geometry).

#include <vector>

#include "format/accessor.hpp"
#include "format/hss.hpp"  // HSSOptions
#include "geometry/cluster_tree.hpp"

namespace hatrix::fmt {

/// Symmetric strongly admissible BLR² matrix: far-field blocks compressed
/// against per-row shared bases, near-field blocks stored dense.
class StrongBLR2Matrix {
 public:
  /// One block row's stored data.
  struct Node {
    index_t begin = 0;  ///< global index interval [begin, end)
    index_t end = 0;    ///< one past the last global index
    index_t rank = 0;   ///< basis column count
    Matrix basis;  ///< U_i from far-field rows, orthonormal columns
    Matrix diag;   ///< D_i dense diagonal block

    /// Number of rows owned by this block.
    [[nodiscard]] index_t block_size() const { return end - begin; }
  };

  StrongBLR2Matrix() = default;
  /// Allocate the node/coupling layout for n rows in num_blocks block rows.
  StrongBLR2Matrix(index_t n, index_t num_blocks);

  /// Matrix dimension N.
  [[nodiscard]] index_t size() const { return n_; }
  /// Number of block rows.
  [[nodiscard]] index_t num_blocks() const {
    return static_cast<index_t>(nodes_.size());
  }

  /// Block row i.
  [[nodiscard]] Node& node(index_t i);
  /// Block row i (read-only).
  [[nodiscard]] const Node& node(index_t i) const;

  /// True if block (i, j) is admissible (compressed); i != j.
  [[nodiscard]] bool admissible(index_t i, index_t j) const;
  /// Mark block (i, j) admissible or not (set by the builder's geometry).
  void set_admissible(index_t i, index_t j, bool value);

  /// Compressed coupling S_ij for admissible i > j.
  [[nodiscard]] Matrix& coupling(index_t i, index_t j);
  /// Compressed coupling S_ij for admissible i > j (read-only).
  [[nodiscard]] const Matrix& coupling(index_t i, index_t j) const;

  /// Dense near-field block for inadmissible i > j.
  [[nodiscard]] Matrix& near_block(index_t i, index_t j);
  /// Dense near-field block for inadmissible i > j (read-only).
  [[nodiscard]] const Matrix& near_block(index_t i, index_t j) const;

  /// y = A x through the mixed dense/compressed blocks.
  void matvec(const std::vector<double>& x, std::vector<double>& y) const;
  /// Materialize the represented dense matrix (tests).
  [[nodiscard]] Matrix dense() const;
  /// Total storage in bytes (dense near-field + compressed far-field).
  [[nodiscard]] std::int64_t memory_bytes() const;
  /// Fraction of off-diagonal blocks that are admissible (compressed).
  [[nodiscard]] double admissible_fraction() const;

  /// Bytes held by the compressed far-field alone (bases + couplings).
  [[nodiscard]] std::int64_t lowrank_bytes() const;
  /// Demote bases and couplings to FP32 storage (diagonals and dense
  /// near-field blocks stay FP64); see HSSMatrix::demote_lowrank.
  void demote_lowrank();
  /// True when demote_lowrank() has run.
  [[nodiscard]] bool mixed() const { return mixed_; }

 private:
  [[nodiscard]] std::size_t pair_index(index_t i, index_t j) const;

  index_t n_ = 0;
  bool mixed_ = false;
  std::vector<Node> nodes_;
  std::vector<bool> admissible_;   // packed strict lower triangle
  std::vector<Matrix> couplings_;  // same packing (empty when inadmissible)
  std::vector<Matrix> near_;       // same packing (empty when admissible)
};

/// Build from a cluster tree's leaf level with the geometric strong
/// admissibility condition at parameter `eta` (Sec. 2): blocks whose
/// clusters are separated get compressed, touching blocks stay dense.
/// The basis of each block row is computed from its admissible columns only.
StrongBLR2Matrix build_strong_blr2(const BlockAccessor& acc,
                                   const geom::ClusterTree& tree,
                                   const HSSOptions& opts, double eta = 1.0);

}  // namespace hatrix::fmt
