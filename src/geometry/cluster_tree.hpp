#pragma once
/// \file cluster_tree.hpp
/// \brief Binary cluster tree over a point set.
///
/// HSS matrices need a hierarchical, contiguous index partition. The tree is
/// built by recursive coordinate bisection (split the widest bounding-box
/// axis at the median), which reorders the points once; thereafter every tree
/// node is a contiguous index interval of the reordered set.
///
/// Level convention follows the paper: level 0 is the root (one node), level
/// `max_level()` is the leaf level with `2^max_level` nodes; node `i` at
/// level `l` has children `2i` and `2i+1` at level `l+1`.

#include <vector>

#include "geometry/domain.hpp"

namespace hatrix::geom {

/// Contiguous index interval [begin, end) of the reordered point set.
struct ClusterNode {
  index_t begin = 0;
  index_t end = 0;

  [[nodiscard]] index_t size() const { return end - begin; }
};

class ClusterTree {
 public:
  /// Partition `domain` until every leaf holds at most `leaf_size` points.
  /// The tree is a complete binary tree: all leaves are on the same level
  /// (intervals are split at the midpoint, so sizes differ by at most one).
  ClusterTree(const Domain& domain, index_t leaf_size);

  /// Leaf level index (0 = root only, i.e. no partitioning happened).
  [[nodiscard]] int max_level() const { return max_level_; }

  /// Number of nodes at `level` (== 2^level).
  [[nodiscard]] index_t num_nodes(int level) const { return index_t{1} << level; }

  /// The index interval of node `i` at `level`.
  [[nodiscard]] const ClusterNode& node(int level, index_t i) const;

  /// Points in tree order (reordered copy of the input domain).
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

  /// `perm()[k]` is the original index of reordered point k.
  [[nodiscard]] const std::vector<index_t>& perm() const { return perm_; }

  [[nodiscard]] index_t size() const { return static_cast<index_t>(points_.size()); }

  /// Geometric diameter of a node's point set (max pairwise distance bound
  /// via the bounding box diagonal).
  [[nodiscard]] double diameter(int level, index_t i) const;

  /// Distance between the bounding boxes of two nodes (0 if they overlap).
  [[nodiscard]] double box_distance(int level, index_t i, index_t j) const;

 private:
  int max_level_ = 0;
  std::vector<std::vector<ClusterNode>> levels_;  // levels_[l][i]
  std::vector<Point> points_;
  std::vector<index_t> perm_;
};

/// Weak admissibility: a block (i, j) at a level is admissible iff i != j.
/// This is the condition HSS uses (dense blocks only on the diagonal).
bool weakly_admissible(index_t i, index_t j);

/// Strong admissibility for completeness (H/H² formats; used by the strong
/// BLR2 extension): min(diam_i, diam_j) <= eta * dist(box_i, box_j).
bool strongly_admissible(const ClusterTree& tree, int level, index_t i, index_t j,
                         double eta);

}  // namespace hatrix::geom
