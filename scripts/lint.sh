#!/usr/bin/env sh
# clang-tidy over every translation unit in src/, using the .clang-tidy
# config at the repo root (bugprone-*, concurrency-*, performance-*, ...).
#
#   scripts/lint.sh             -> configure a lint build dir, run clang-tidy
#   CLANG_TIDY=clang-tidy-18 scripts/lint.sh   -> pick a specific binary
#
# Exits non-zero if clang-tidy is missing or reports any finding promoted to
# error by WarningsAsErrors (concurrency-*, use-after-move, ...).
set -eu

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "scripts/lint.sh: '$TIDY' not found; install clang-tidy or set CLANG_TIDY" >&2
  exit 1
fi

# A dedicated build dir keeps lint configuration (no tests/benches, just the
# library TUs) from invalidating the main build cache. compile_commands.json
# is exported by the top-level CMakeLists unconditionally.
BUILD_DIR="${LINT_BUILD_DIR:-build-tidy}"
cmake -B "$BUILD_DIR" -S . \
  -DHATRIX_BUILD_TESTS=OFF -DHATRIX_BUILD_BENCH=OFF -DHATRIX_BUILD_EXAMPLES=OFF \
  >/dev/null

JOBS="$(nproc 2>/dev/null || echo 4)"
echo "clang-tidy ($("$TIDY" --version | head -n 1 | sed 's/^ *//')) over src/ with $JOBS jobs"
# shellcheck disable=SC2046  # file list is intentionally word-split
find src -name '*.cpp' -print0 |
  xargs -0 -P "$JOBS" -n 4 "$TIDY" -p "$BUILD_DIR" --quiet
echo "clang-tidy: clean"
