// Micro-benchmarks of the dense kernels behind every factorization, plus
// the cost-model calibration data (the sustained flop rate the simulator's
// CostModel::calibrated() would pick on this host).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "lowrank/compress.hpp"

namespace {

using namespace hatrix;
using la::Matrix;

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<la::index_t>(state.range(0));
  Rng rng(1);
  Matrix a = Matrix::random_normal(rng, n, n);
  Matrix b = Matrix::random_normal(rng, n, n);
  Matrix c(n, n);
  for (auto _ : state) {
    la::gemm(1.0, a.view(), la::Trans::No, b.view(), la::Trans::No, 0.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Potrf(benchmark::State& state) {
  const auto n = static_cast<la::index_t>(state.range(0));
  Rng rng(2);
  Matrix a = Matrix::random_spd(rng, n);
  for (auto _ : state) {
    Matrix work = Matrix::from_view(a.view());
    la::potrf(work.view());
    benchmark::DoNotOptimize(work.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      n * n * n / 3.0 * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Potrf)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_Trsm(benchmark::State& state) {
  const auto n = static_cast<la::index_t>(state.range(0));
  Rng rng(3);
  Matrix a = Matrix::random_spd(rng, n);
  la::potrf(a.view());
  Matrix b = Matrix::random_normal(rng, n, n);
  for (auto _ : state) {
    Matrix x = Matrix::from_view(b.view());
    la::trsm(la::Side::Left, la::UpLo::Lower, la::Trans::No, la::Diag::NonUnit, 1.0,
             a.view(), x.view());
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_Trsm)->Arg(128)->Arg(256);

void BM_PivotedQr(benchmark::State& state) {
  const auto n = static_cast<la::index_t>(state.range(0));
  Rng rng(4);
  Matrix a = Matrix::random_normal(rng, n, 4 * n);
  for (auto _ : state) {
    auto f = la::pivoted_qr(a.view(), n / 4, 0.0);
    benchmark::DoNotOptimize(f.q.data());
  }
}
BENCHMARK(BM_PivotedQr)->Arg(128)->Arg(256);

void BM_Svd(benchmark::State& state) {
  const auto n = static_cast<la::index_t>(state.range(0));
  Rng rng(5);
  Matrix a = Matrix::random_normal(rng, n, n);
  for (auto _ : state) {
    auto f = la::svd(a.view());
    benchmark::DoNotOptimize(f.s.data());
  }
}
BENCHMARK(BM_Svd)->Arg(32)->Arg(64)->Arg(128);

void BM_LrAddRound(benchmark::State& state) {
  const auto n = static_cast<la::index_t>(state.range(0));
  Rng rng(6);
  lr::LowRank a(Matrix::random_normal(rng, n, 32), Matrix::random_normal(rng, n, 32));
  lr::LowRank b(Matrix::random_normal(rng, n, 32), Matrix::random_normal(rng, n, 32));
  for (auto _ : state) {
    auto s = lr::lr_add_round(1.0, a, -1.0, b, 32, 1e-10);
    benchmark::DoNotOptimize(s.u.data());
  }
}
BENCHMARK(BM_LrAddRound)->Arg(256)->Arg(1024);

}  // namespace
