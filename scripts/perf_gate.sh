#!/usr/bin/env sh
# Performance regression gate for the dense kernel layer.
#
# Re-runs bench_micro_linalg and compares every flop-rated case (kernel, n)
# against the committed baseline BENCH_linalg.json. A case fails when its
# fresh GFLOP/s drops more than PERF_GATE_TOL (default 35% — micro-bench
# noise on a shared machine is real, a kernel regression is much larger)
# below the committed number. Independently of the relative check, the
# flagship case carries a hard floor: gemm n=256 must sustain at least
# 6.83 GFLOP/s (2x the pre-blocking 3.41 baseline), so the tuned kernels
# can never silently fall back to naive-era rates even if someone commits
# a slower baseline file.
#
#   scripts/perf_gate.sh [build-dir]      (default: build)
#
# Env knobs: PERF_GATE_TOL (fractional drop allowed, default 0.35),
#            PERF_GATE_MIN_TIME (seconds per case, default 0.2).
set -eu

cd "$(dirname "$0")/.."

BUILD="${1:-build}"
BENCH="$BUILD/bench/bench_micro_linalg"
BASELINE="BENCH_linalg.json"

if [ ! -x "$BENCH" ]; then
  echo "perf_gate: $BENCH not built (cmake --build $BUILD --target bench_micro_linalg)" >&2
  exit 2
fi
if [ ! -f "$BASELINE" ]; then
  echo "perf_gate: no committed baseline $BASELINE" >&2
  exit 2
fi

FRESH="$(mktemp /tmp/hatrix_perf_gate.XXXXXX.json)"
trap 'rm -f "$FRESH"' EXIT INT TERM

"$BENCH" --min-time "${PERF_GATE_MIN_TIME:-0.2}" --json "$FRESH" > /dev/null

PERF_GATE_TOL="${PERF_GATE_TOL:-0.35}" python3 - "$FRESH" "$BASELINE" <<'PYEOF'
import json, os, sys

fresh_path, base_path = sys.argv[1], sys.argv[2]
tol = float(os.environ["PERF_GATE_TOL"])

def load(path):
    with open(path) as f:
        rows = json.load(f)["rows"]
    return {(r["kernel"], r["n"]): r["gflops"] for r in rows if r.get("gflops", 0) > 0}

fresh, base = load(fresh_path), load(base_path)

# Hard floor, independent of the baseline file's contents.
FLOORS = {("gemm", 256): 6.83}

failures = []
print(f"{'kernel':<12} {'n':>5} {'baseline':>9} {'fresh':>9} {'ratio':>6}")
for key in sorted(base):
    if key not in fresh:
        failures.append(f"{key[0]} n={key[1]}: case missing from fresh run")
        continue
    ratio = fresh[key] / base[key]
    flag = ""
    if ratio < 1.0 - tol:
        failures.append(
            f"{key[0]} n={key[1]}: {fresh[key]:.2f} GFLOP/s is "
            f"{100 * (1 - ratio):.0f}% below baseline {base[key]:.2f}")
        flag = "  <-- REGRESSION"
    print(f"{key[0]:<12} {key[1]:>5} {base[key]:>9.2f} {fresh[key]:>9.2f} {ratio:>6.2f}{flag}")

for key, floor in FLOORS.items():
    got = fresh.get(key, 0.0)
    if got < floor:
        failures.append(f"{key[0]} n={key[1]}: {got:.2f} GFLOP/s under hard floor {floor}")

if failures:
    print("\nperf_gate FAILED:", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print(f"\nperf_gate OK (tolerance {100 * tol:.0f}%, floor gemm n=256 >= 6.83 GFLOP/s)")
PYEOF
