// Tests for the adaptive (guarded) HSS construction: the adaptive low-rank
// compressors, the accuracy guard's probe, the typed under-resolution
// error, the construction task graph, and sequential/parallel equivalence.
// The full-scale N=8192 regression lives in test_hss_guard_regression.cpp
// (slow label).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "format/accessor.hpp"
#include "format/hss_builder.hpp"
#include "format/hss_builder_tasks.hpp"
#include "geometry/cluster_tree.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "lowrank/adaptive.hpp"
#include "runtime/thread_pool_executor.hpp"
#include "runtime/trace.hpp"

namespace hatrix {
namespace {

using la::index_t;
using la::Matrix;

TEST(AdaptiveRsvd, DiscoversRankAndMeetsTolerance) {
  Rng rng(17);
  // Exactly rank-12 matrix plus noise well below the tolerance.
  Matrix u = Matrix::random_normal(rng, 120, 12);
  Matrix v = Matrix::random_normal(rng, 90, 12);
  Matrix a = la::matmul(u.view(), v.view(), la::Trans::No, la::Trans::Yes);
  auto res = lr::rsvd_adaptive(a.view(), 64, 1e-8, rng);
  EXPECT_LE(res.lr.rank(), 40);  // did not blow through the budget
  EXPECT_GE(res.lr.rank(), 12);
  EXPECT_LT(lr::approx_error(res.lr, a.view()), 1e-7);
  EXPECT_LE(res.residual, 1e-8);
}

TEST(AdaptiveRsvd, ReportsResidualWhenRankCapped) {
  Rng rng(18);
  // Full-rank random matrix, cap far below: the probe must report failure.
  Matrix a = Matrix::random_normal(rng, 80, 80);
  auto res = lr::rsvd_adaptive(a.view(), 10, 1e-10, rng);
  EXPECT_EQ(res.lr.rank(), 10);
  EXPECT_GT(res.residual, 1e-3);  // honest: tolerance was not reached
}

TEST(AdaptiveAca, ProbeVerifiedResidual) {
  geom::Domain d = geom::grid2d(400);
  auto kernel = kernels::make_kernel("yukawa");
  kernels::KernelMatrix km(*kernel, d.points);
  // Off-diagonal block [0,100) x [200, 400): admissible, low rank.
  lr::EntryFn entry = [&](index_t i, index_t j) { return km.entry(i, 200 + j); };
  Rng rng(19);
  auto res = lr::aca_adaptive(entry, 100, 200, 60, 1e-6, rng);
  Matrix ref(100, 200);
  for (index_t i = 0; i < 100; ++i)
    for (index_t j = 0; j < 200; ++j) ref(i, j) = entry(i, j);
  EXPECT_LT(lr::approx_error(res.lr, ref.view()), 1e-5);
  EXPECT_LE(res.residual, 1e-6);
}

TEST(InterpResidual, ExactInterpolationIsZero) {
  Rng rng(20);
  Matrix p = Matrix::random_normal(rng, 6, 9);
  // X = identity, sel = all rows: interpolation reproduces P exactly.
  Matrix x = Matrix::identity(6);
  std::vector<index_t> sel{0, 1, 2, 3, 4, 5};
  EXPECT_NEAR(lr::interp_residual(p.view(), x.view(), sel), 0.0, 1e-14);
  // Empty selection: residual is 1 (nothing explained).
  EXPECT_NEAR(lr::interp_residual(p.view(), Matrix(6, 0).view(), {}), 1.0, 1e-14);
}

// Shared kernel-matrix fixture on a tree-ordered geometry.
struct Problem {
  std::unique_ptr<geom::ClusterTree> tree;
  std::unique_ptr<kernels::Kernel> kernel;
  std::unique_ptr<kernels::KernelMatrix> km;

  Problem(index_t n, index_t leaf, const std::string& kname,
          double nugget = 0.0, bool scattered = false, std::uint64_t seed = 11) {
    geom::Domain domain;
    if (scattered) {
      Rng rng(seed);
      domain = geom::random2d(n, rng);
    } else {
      domain = geom::grid2d(n);
    }
    tree = std::make_unique<geom::ClusterTree>(domain, leaf);
    kernel = kernels::make_kernel(kname);
    km = std::make_unique<kernels::KernelMatrix>(*kernel, tree->points(), nugget);
  }
};

TEST(GuardedBuild, SmoothKernelPassesWithoutGrowth) {
  Problem p(2048, 256, "yukawa");
  fmt::KernelAccessor acc(*p.km);
  rt::TaskGraph graph;
  fmt::HSSBuildDag dag = fmt::emit_hss_build_dag(
      acc,
      {.leaf_size = 256, .max_rank = 40, .sample_cols = 400, .guard_tol = 1e-4},
      graph);
  for (const auto& t : graph.tasks()) t.work();
  auto rep = fmt::build_report(dag);
  fmt::HSSMatrix h = fmt::extract_built_hss(dag);
  // The smooth kernel is well captured by the initial sample: the guard
  // should accept everywhere without (much) growth, and accuracy holds.
  EXPECT_LE(rep.total_growths, 2);
  EXPECT_LE(rep.worst_residual, 1e-4);
  Matrix a = p.km->dense();
  EXPECT_LT(la::rel_error(a.view(), h.dense().view()), 1e-4);
}

TEST(GuardedBuild, GrowthTriggersOnShortCorrelationMatern) {
  // Scattered sites + short correlation: the fixed sample misses near-range
  // interactions; the guard must detect it and grow the sample.
  Problem p(2048, 256, "matern", 1e-4, /*scattered=*/true);
  fmt::KernelAccessor acc(*p.km);
  rt::TaskGraph graph;
  fmt::HSSBuildDag dag = fmt::emit_hss_build_dag(
      acc,
      {.leaf_size = 256, .max_rank = 60, .sample_cols = 128, .guard_tol = 1e-4},
      graph);
  for (const auto& t : graph.tasks()) t.work();
  auto rep = fmt::build_report(dag);
  EXPECT_GT(rep.total_growths, 0);
  fmt::HSSMatrix h = fmt::extract_built_hss(dag);
  EXPECT_GT(rep.max_samples, 128);
  EXPECT_EQ(h.size(), 2048);
}

TEST(GuardedBuild, TypedErrorWhenCapReached) {
  Problem p(2048, 256, "matern", 1e-4, /*scattered=*/true);
  fmt::KernelAccessor acc(*p.km);
  try {
    fmt::HSSMatrix h = fmt::build_hss(
        acc, {.leaf_size = 256, .max_rank = 60, .sample_cols = 64,
              .guard_tol = 1e-8, .max_sample_cols = 128});
    FAIL() << "expected BasisUnderResolvedError";
  } catch (const fmt::BasisUnderResolvedError& e) {
    EXPECT_GE(e.sample_cols(), 64);
    EXPECT_GT(e.residual(), e.tol());
    EXPECT_DOUBLE_EQ(e.tol(), 1e-8);
    EXPECT_NE(std::string(e.what()).find("under-resolved"), std::string::npos);
  }
}

TEST(GuardedBuild, TypedErrorPropagatesThroughExecutor) {
  Problem p(2048, 256, "matern", 1e-4, /*scattered=*/true);
  fmt::KernelAccessor acc(*p.km);
  EXPECT_THROW(
      fmt::build_hss_parallel(acc,
                              {.leaf_size = 256, .max_rank = 60, .sample_cols = 64,
                               .guard_tol = 1e-8, .max_sample_cols = 128},
                              4),
      fmt::BasisUnderResolvedError);
}

TEST(GuardedBuild, RankEscapeLiftsRankPastCapWhenFloorBinds) {
  // max_rank far below what the matern blocks need: the probe residual pins
  // at the rank-truncation floor no matter how many columns are sampled.
  // With the escape enabled the guard raises the offending nodes' rank caps
  // and the build succeeds; with it disabled the same configuration runs the
  // sample to its cap and throws.
  Problem p(2048, 256, "matern", 1e-4, /*scattered=*/true);
  fmt::KernelAccessor acc(*p.km);
  const fmt::HSSOptions opts{.leaf_size = 256, .max_rank = 20,
                             .sample_cols = 256, .guard_tol = 1e-4,
                             .max_sample_cols = 1024};

  rt::TaskGraph graph;
  fmt::HSSBuildDag dag = fmt::emit_hss_build_dag(acc, opts, graph);
  for (const auto& t : graph.tasks()) t.work();
  auto rep = fmt::build_report(dag);
  fmt::HSSMatrix h = fmt::extract_built_hss(dag);

  EXPECT_GT(rep.rank_escapes, 0);
  EXPECT_GT(h.max_rank_used(), opts.max_rank);
  // The escaped build must actually deliver guard-level accuracy.
  Matrix a = p.km->dense();
  EXPECT_LT(la::rel_error(a.view(), h.dense().view()), 1e-3);

  fmt::HSSOptions no_escape = opts;
  no_escape.rank_escape = false;
  EXPECT_THROW(fmt::build_hss(acc, no_escape), fmt::BasisUnderResolvedError);
}

TEST(BuildDag, StructureMatchesTree) {
  Problem p(1024, 128, "yukawa");
  fmt::KernelAccessor acc(*p.km);
  rt::TaskGraph graph;
  fmt::HSSBuildDag dag = fmt::emit_hss_build_dag(
      acc, {.leaf_size = 128, .max_rank = 20}, graph);
  // L = 3: 8 leaf COMPRESS, 6 internal TRANSFER (levels 1-2), 7 MERGE_SAMPLE
  // couplings (levels 1-3).
  EXPECT_EQ(graph.num_tasks(), 8 + 6 + 7);
  // Longest chain: COMPRESS -> TRANSFER(2) -> TRANSFER(1) -> MERGE_SAMPLE(1).
  EXPECT_EQ(graph.critical_path_length(), 4);
  ASSERT_TRUE(dag.state != nullptr);
}

TEST(BuildDag, ParallelExecutionMatchesSequentialExactly) {
  Problem p(1024, 128, "matern", 1e-4, /*scattered=*/true);
  fmt::KernelAccessor acc(*p.km);
  const fmt::HSSOptions opts{.leaf_size = 128, .max_rank = 30,
                             .sample_cols = 200, .guard_tol = 1e-4};
  fmt::HSSMatrix seq = fmt::build_hss(acc, opts);
  fmt::HSSMatrix par = fmt::build_hss_parallel(acc, opts, 4);
  // Per-node deterministic sampling streams: the parallel build must be the
  // same matrix, independent of scheduling.
  EXPECT_EQ(seq.max_rank_used(), par.max_rank_used());
  EXPECT_LT(la::rel_error(seq.dense().view(), par.dense().view()), 1e-15);
}

TEST(BuildDag, TraceIsConsistentAcrossWorkers) {
  Problem p(1024, 128, "yukawa");
  fmt::KernelAccessor acc(*p.km);
  rt::TaskGraph graph;
  fmt::HSSBuildDag dag = fmt::emit_hss_build_dag(
      acc, {.leaf_size = 128, .max_rank = 20, .sample_cols = 200}, graph);
  rt::ThreadPoolExecutor ex(4);
  auto stats = ex.run(graph);
  EXPECT_EQ(rt::validate_trace(graph, stats), "");
  fmt::HSSMatrix h = fmt::extract_built_hss(dag);
  EXPECT_EQ(h.size(), 1024);
}

}  // namespace
}  // namespace hatrix
