#pragma once
/// \file aca.hpp
/// \brief Adaptive Cross Approximation (ACA) with partial pivoting.
///
/// Matrix-free compressor: builds a low-rank approximation of a block from
/// O((m+n)·k) entry evaluations instead of the full m·n block. This is the
/// compression algorithm the paper cites alongside RSVD (Rjasanow 2002) and
/// is the workhorse of the matrix-free HSS builder for far-field blocks.

#include <functional>

#include "lowrank/lowrank.hpp"

namespace hatrix::lr {

/// Entry generator for the (i, j) element of the virtual block.
using EntryFn = std::function<double(index_t, index_t)>;

/// ACA with partial pivoting. Stops when the rank-1 update's Frobenius
/// contribution falls below tol times the running approximation norm, or at
/// max_rank. Suitable for asymptotically smooth kernels; not guaranteed for
/// arbitrary matrices (use compress() on an explicit block then).
LowRank aca(const EntryFn& entry, index_t rows, index_t cols, index_t max_rank,
            double tol);

}  // namespace hatrix::lr
