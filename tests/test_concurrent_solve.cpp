// Concurrency contract of the solve path: a factorization is immutable once
// built, every solve entry point is const with caller-local workspace, and
// the SolverCache builds each key exactly once under concurrent demand.
// scripts/check.sh additionally builds and runs this suite under
// ThreadSanitizer — the assertions here double as the race detector's
// workload.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "format/accessor.hpp"
#include "format/hss_builder.hpp"
#include "geometry/cluster_tree.hpp"
#include "hatrix/solver_cache.hpp"
#include "kernels/kernel_matrix.hpp"
#include "kernels/kernels.hpp"
#include "ulv/hss_ulv.hpp"

namespace hatrix {
namespace {

using la::index_t;
using la::Matrix;

struct Problem {
  geom::Domain domain;
  std::unique_ptr<geom::ClusterTree> tree;
  std::unique_ptr<kernels::Kernel> kernel;
  std::unique_ptr<kernels::KernelMatrix> km;

  explicit Problem(index_t n, index_t leaf = 128) {
    domain = geom::grid2d(n);
    tree = std::make_unique<geom::ClusterTree>(domain, leaf);
    kernel = kernels::make_kernel("yukawa");
    km = std::make_unique<kernels::KernelMatrix>(*kernel, tree->points());
  }
};

TEST(ConcurrentSolve, ManyThreadsShareOneFactorizationBitIdentically) {
  Problem p(1024);
  fmt::KernelAccessor acc(*p.km);
  auto h = fmt::build_hss(acc, {.leaf_size = 128, .max_rank = 30, .tol = 0.0});
  const ulv::HSSULV f = ulv::HSSULV::factorize(h);

  constexpr int kThreads = 8;
  Rng rng(123);
  // Every thread gets its own RHS panel; the serial reference is computed
  // first, then all threads solve concurrently against the shared factor.
  std::vector<Matrix> rhs, reference;
  for (int t = 0; t < kThreads; ++t) {
    rhs.push_back(Matrix::random_normal(rng, 1024, 4));
    reference.push_back(f.solve(rhs.back()));
  }

  std::vector<Matrix> concurrent(kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&, t] {
      concurrent[static_cast<std::size_t>(t)] =
          f.solve(rhs[static_cast<std::size_t>(t)]);
    });
  for (auto& th : pool) th.join();

  for (int t = 0; t < kThreads; ++t) {
    const Matrix& a = reference[static_cast<std::size_t>(t)];
    const Matrix& b = concurrent[static_cast<std::size_t>(t)];
    for (index_t j = 0; j < a.cols(); ++j)
      for (index_t i = 0; i < a.rows(); ++i)
        ASSERT_EQ(a(i, j), b(i, j)) << "thread " << t;
  }
}

TEST(ConcurrentSolve, MixedVectorAndPanelSolvesShareOneFactorization) {
  Problem p(512, 64);
  fmt::KernelAccessor acc(*p.km);
  auto h = fmt::build_hss(acc, {.leaf_size = 64, .max_rank = 25, .tol = 0.0});
  const ulv::HSSULV f = ulv::HSSULV::factorize(h);

  Rng rng(321);
  std::vector<double> bv = rng.normal_vector(512);
  Matrix bp = Matrix::random_normal(rng, 512, 3);
  const std::vector<double> xv_ref = f.solve(bv);
  const Matrix xp_ref = f.solve(bp);

  constexpr int kThreads = 6;
  std::vector<std::thread> pool;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&, t] {
      if (t % 2 == 0) {
        std::vector<double> x = f.solve(bv);
        for (std::size_t i = 0; i < x.size(); ++i)
          if (x[i] != xv_ref[i]) mismatches.fetch_add(1);
      } else {
        Matrix x = f.solve(bp);
        for (index_t j = 0; j < x.cols(); ++j)
          for (index_t i = 0; i < x.rows(); ++i)
            if (x(i, j) != xp_ref(i, j)) mismatches.fetch_add(1);
      }
    });
  for (auto& th : pool) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentSolve, SolverCacheBuildsEachKeyOnce) {
  driver::SolverCache cache(4);
  Rng key_rng(7);
  geom::Domain pts = geom::random2d(64, key_rng);
  const fmt::HSSOptions opts{.leaf_size = 32, .max_rank = 16};
  const driver::SolverKey key = driver::make_solver_key("test", pts.points, opts);

  std::atomic<int> builds{0};
  auto builder = [&](fmt::HSSBuildReport&) {
    builds.fetch_add(1);
    Rng rng(5);
    return fmt::make_random_spd_hss(256, 64, 16, rng);
  };

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const driver::FactoredOperator>> got(kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back(
        [&, t] { got[static_cast<std::size_t>(t)] = cache.get_or_build(key, builder); });
  for (auto& th : pool) th.join();

  EXPECT_EQ(builds.load(), 1);
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(got[0].get(), got[static_cast<std::size_t>(t)].get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, kThreads - 1);

  // And the shared operator solves concurrently, bit-identically.
  Rng rng(9);
  std::vector<double> b = rng.normal_vector(256);
  const std::vector<double> x_ref = got[0]->factorization().solve(b);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> solvers;
  for (int t = 0; t < 4; ++t)
    solvers.emplace_back([&] {
      std::vector<double> x = got[0]->factorization().solve(b);
      for (std::size_t i = 0; i < x.size(); ++i)
        if (x[i] != x_ref[i]) mismatches.fetch_add(1);
    });
  for (auto& th : solvers) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentSolve, DistinctKeysBuildInParallel) {
  driver::SolverCache cache(8);
  std::atomic<int> builds{0};
  constexpr int kKeys = 4;
  std::vector<std::thread> pool;
  std::atomic<int> failures{0};
  for (int k = 0; k < kKeys; ++k)
    pool.emplace_back([&, k] {
      driver::SolverKey key;
      key.kernel = "k" + std::to_string(k);
      key.n = 128;
      auto op = cache.get_or_build(key, [&](fmt::HSSBuildReport&) {
        builds.fetch_add(1);
        Rng rng(static_cast<std::uint64_t>(k));
        return fmt::make_random_spd_hss(128, 64, 8, rng);
      });
      if (op == nullptr) failures.fetch_add(1);
    });
  for (auto& th : pool) th.join();
  EXPECT_EQ(builds.load(), kKeys);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cache.stats().size, static_cast<std::size_t>(kKeys));
}

}  // namespace
}  // namespace hatrix
