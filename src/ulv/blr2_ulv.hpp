#pragma once
/// \file blr2_ulv.hpp
/// \brief BLR²-ULV factorization with weak admissibility (Alg. 1, Eq. 14-15).
///
/// Single-level variant of the ULV: every block's diagonal is rotated and
/// partially factorized, then the merge step permutes all skeleton blocks
/// into one dense matrix of size (Σ rank) which gets a plain Cholesky
/// (Fig. 4). This is the per-level building block of the HSS-ULV; it is also
/// where the O(N^2) cost of stopping at one level shows (Sec. 3.1),
/// motivating the multi-level HSS-ULV.

#include <vector>

#include "format/blr2.hpp"
#include "ulv/ulv_common.hpp"

namespace hatrix::ulv {

/// Factored form of an SPD BLR² matrix.
///
/// Immutable once factorized: all solve entry points are const and keep
/// their workspace on the caller's stack frame, so threads may share one
/// factorization and solve concurrently (same contract as HSSULV).
class BLR2ULV {
 public:
  BLR2ULV() = default;

  /// Assemble from externally computed pieces (the task-based path).
  BLR2ULV(const fmt::BLR2Matrix& a, std::vector<NodeFactor> factors,
          Matrix merged_l);

  /// Factorize; throws hatrix::Error if not positive definite.
  static BLR2ULV factorize(const fmt::BLR2Matrix& a);

  /// Solve A x = b (Eq. 15).
  [[nodiscard]] std::vector<double> solve(const std::vector<double>& b) const;

  /// Blocked multi-RHS solve A X = B: per-block rotations and triangular
  /// solves applied to the whole RHS panel (gemm/trsm), merged skeleton
  /// solve on the full panel. Column j is bit-identical to solve(column j).
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  [[nodiscard]] std::int64_t memory_bytes() const;

 private:
  const fmt::BLR2Matrix* a_ = nullptr;
  std::vector<NodeFactor> factors_;
  std::vector<index_t> skel_offset_;  ///< prefix sum of ranks into the merge
  Matrix merged_l_;                   ///< Cholesky factor of the merged block
};

}  // namespace hatrix::ulv
