#include "common/cli.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace hatrix {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    HATRIX_CHECK(arg.rfind("--", 0) == 0, "expected --flag, got: " + arg);
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag
    }
  }
}

bool Cli::has(const std::string& name) const { return values_.count(name) != 0; }

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

std::string Cli::get_string(const std::string& name, const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::vector<std::int64_t> Cli::get_int_list(
    const std::string& name, const std::vector<std::int64_t>& fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<std::int64_t> out;
  const std::string& s = it->second;
  std::size_t pos = 0;
  while (pos < s.size()) {
    auto comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::strtoll(s.substr(pos, comma - pos).c_str(), nullptr, 10));
    pos = comma + 1;
  }
  return out;
}

}  // namespace hatrix
